// HSS behaviour: the network-wide registration view across systems.
#include <gtest/gtest.h>

#include <functional>

#include "stack/testbed.h"

namespace cnv::stack {
namespace {

void RunUntil(Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) tb.Run(Millis(100));
}

TEST(HssTest, SubscriberIsProvisioned) {
  Testbed tb({});
  EXPECT_TRUE(tb.hss().IsProvisioned(tb.imsi()));
  EXPECT_FALSE(tb.hss().IsProvisioned(nas::Imsi{42}));
}

TEST(HssTest, AttachRegistersIn4g) {
  Testbed tb({});
  EXPECT_EQ(tb.hss().CurrentSystem(tb.imsi()), nas::System::kNone);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  EXPECT_EQ(tb.hss().CurrentSystem(tb.imsi()), nas::System::k4G);
  EXPECT_GE(tb.hss().updates_processed(), 1u);
}

TEST(HssTest, InterSystemSwitchMovesTheRegistration) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
  tb.Run(Seconds(10));
  EXPECT_EQ(tb.hss().CurrentSystem(tb.imsi()), nas::System::k3G);
  tb.ue().SwitchTo4g();
  tb.Run(Seconds(2));
  EXPECT_EQ(tb.hss().CurrentSystem(tb.imsi()), nas::System::k4G);
}

TEST(HssTest, PowerOffPurgesTheLocation) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().PowerOff();
  tb.Run(Seconds(1));
  EXPECT_EQ(tb.hss().CurrentSystem(tb.imsi()), nas::System::kNone);
}

TEST(HssTest, S1DetachShowsUpAsDeregisteredWindow) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
  tb.Run(Seconds(10));
  tb.sgsn().DeactivatePdp(nas::PdpDeactCause::kOperatorDeterminedBarring);
  tb.Run(Seconds(1));
  const SimDuration before = tb.hss().DeregisteredTime(tb.imsi());
  tb.ue().SwitchTo4g();
  RunUntil(tb, [&] { return tb.ue().recovery_seconds().Count() == 1; },
           Minutes(2));
  const SimDuration window = tb.hss().DeregisteredTime(tb.imsi()) - before;
  // The HSS-visible out-of-service window matches the measured recovery.
  EXPECT_GT(ToSeconds(window), 1.0);
  EXPECT_NEAR(ToSeconds(window), tb.ue().recovery_seconds().Values()[0],
              1.5);
  tb.Run(Seconds(1));  // let the Attach Complete reach the MME
  EXPECT_EQ(tb.hss().CurrentSystem(tb.imsi()), nas::System::k4G);
}

TEST(HssTest, NoDeregistrationWithRemedies) {
  TestbedConfig cfg;
  cfg.solutions.reactivate_bearer = true;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  const SimDuration initial = tb.hss().DeregisteredTime(tb.imsi());
  tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
  tb.Run(Seconds(10));
  tb.sgsn().DeactivatePdp(nas::PdpDeactCause::kOperatorDeterminedBarring);
  tb.Run(Seconds(1));
  tb.ue().SwitchTo4g();
  tb.Run(Seconds(5));
  EXPECT_EQ(tb.hss().DeregisteredTime(tb.imsi()), initial);
}

TEST(HssTest, NeverRegisteredCountsAllTimeAsDeregistered) {
  Testbed tb({});
  tb.Run(Seconds(10));
  EXPECT_EQ(tb.hss().DeregisteredTime(tb.imsi()), Seconds(10));
}

}  // namespace
}  // namespace cnv::stack
