#include "obs/span.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "trace/record.h"
#include "util/time.h"

namespace cnv::obs {
namespace {

trace::TraceRecord Rec(SimTime t, const std::string& module,
                       const std::string& desc,
                       trace::TraceType type = trace::TraceType::kMsg) {
  trace::TraceRecord r;
  r.time = t;
  r.type = type;
  r.module = module;
  r.description = desc;
  return r;
}

TEST(SpanStitchTest, AttachWithRetransmitSucceeds) {
  const std::vector<trace::TraceRecord> log = {
      Rec(Seconds(1), "EMM", "Attach Request sent"),
      Rec(Seconds(16), "EMM", "T3410 expiry; Attach Request retransmitted"),
      Rec(Seconds(17), "EMM", "Attach Accept received"),
  };
  const auto spans = StitchSpans(log);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, SpanKind::kAttach);
  EXPECT_EQ(spans[0].outcome, SpanOutcome::kSuccess);
  EXPECT_EQ(spans[0].retries, 1);
  EXPECT_EQ(spans[0].start, Seconds(1));
  EXPECT_EQ(spans[0].end, Seconds(17));
  EXPECT_EQ(spans[0].Duration(), Seconds(16));
}

TEST(SpanStitchTest, RejectClosesAsFailure) {
  const std::vector<trace::TraceRecord> log = {
      Rec(Seconds(1), "EMM", "Attach Request sent"),
      Rec(Seconds(2), "EMM", "Attach Reject received (cause 11)"),
  };
  const auto spans = StitchSpans(log);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].outcome, SpanOutcome::kFailure);
  EXPECT_EQ(spans[0].detail, "Attach Reject received (cause 11)");
}

TEST(SpanStitchTest, RestartSupersedesOpenSpan) {
  const std::vector<trace::TraceRecord> log = {
      Rec(Seconds(1), "EMM", "Attach Request sent"),
      Rec(Seconds(60), "EMM", "Attach Request sent"),
      Rec(Seconds(61), "EMM", "Attach Accept received"),
  };
  const auto spans = StitchSpans(log);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].outcome, SpanOutcome::kFailure);
  EXPECT_EQ(spans[0].detail, "superseded by restarted procedure");
  EXPECT_EQ(spans[0].end, Seconds(60));
  EXPECT_EQ(spans[1].outcome, SpanOutcome::kSuccess);
}

TEST(SpanStitchTest, ModuleDisambiguatesAttachFlavors) {
  // GMM "GPRS Attach Request sent" contains the EMM needle "Attach Request
  // sent" as a substring; module matching must keep them apart.
  const std::vector<trace::TraceRecord> log = {
      Rec(Seconds(1), "GMM", "GPRS Attach Request sent"),
      Rec(Seconds(2), "GMM", "GPRS Attach Accept received"),
  };
  const auto spans = StitchSpans(log);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, SpanKind::kGprsAttach);
  EXPECT_EQ(spans[0].outcome, SpanOutcome::kSuccess);
}

TEST(SpanStitchTest, CsfbDialStartsCallSpan) {
  const std::vector<trace::TraceRecord> log = {
      Rec(Seconds(5), "EMM", "Extended Service Request (CSFB) sent"),
      Rec(Seconds(9), "CM/CC", "a call is established"),
  };
  const auto spans = StitchSpans(log);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, SpanKind::kCall);
  EXPECT_EQ(spans[0].outcome, SpanOutcome::kSuccess);
  EXPECT_EQ(spans[0].Duration(), Seconds(4));
}

TEST(SpanStitchTest, OutagePairsBeginAndRecovery) {
  const std::vector<trace::TraceRecord> log = {
      Rec(Seconds(2), "MONITOR", "voice-reachable outage begins",
          trace::TraceType::kRecovery),
      Rec(Seconds(3), "MONITOR", "data-usable outage begins",
          trace::TraceType::kRecovery),
      Rec(Seconds(12), "MONITOR", "voice-reachable recovered after 10.0 s",
          trace::TraceType::kRecovery),
  };
  const auto spans = StitchSpans(log);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, SpanKind::kOutage);
  EXPECT_EQ(spans[0].detail, "voice-reachable");
  EXPECT_EQ(spans[0].outcome, SpanOutcome::kSuccess);
  EXPECT_EQ(spans[0].Duration(), Seconds(10));
  // The unrecovered outage flushes as open at the last record time.
  EXPECT_EQ(spans[1].detail, "data-usable");
  EXPECT_EQ(spans[1].outcome, SpanOutcome::kOpen);
  EXPECT_EQ(spans[1].end, Seconds(12));
}

TEST(SpanStitchTest, UnfinishedProcedureFlushesAsOpen) {
  const std::vector<trace::TraceRecord> log = {
      Rec(Seconds(1), "MM", "Location Updating Request sent"),
      Rec(Seconds(5), "MM", "something unrelated"),
  };
  const auto spans = StitchSpans(log);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, SpanKind::kLocationUpdate);
  EXPECT_EQ(spans[0].outcome, SpanOutcome::kOpen);
  EXPECT_EQ(spans[0].end, Seconds(5));
}

TEST(SpanStitchTest, EmptyLogYieldsNoSpans) {
  EXPECT_TRUE(StitchSpans({}).empty());
}

TEST(ChromeTraceTest, FragmentHasMetadataAndCompleteEvents) {
  ProcedureSpan s;
  s.kind = SpanKind::kAttach;
  s.start = Seconds(1);
  s.end = Seconds(3);
  s.outcome = SpanOutcome::kSuccess;
  s.retries = 2;
  const std::string frag = ChromeTraceEvents({s}, "seed=1", 7);
  EXPECT_NE(frag.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(frag.find("\"name\":\"seed=1\""), std::string::npos);
  EXPECT_NE(frag.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(frag.find("\"ts\":1000000"), std::string::npos);
  EXPECT_NE(frag.find("\"dur\":2000000"), std::string::npos);
  EXPECT_NE(frag.find("\"pid\":7"), std::string::npos);
  EXPECT_NE(frag.find("\"retries\":2"), std::string::npos);

  const std::string doc = ChromeTraceDocument({frag});
  EXPECT_EQ(doc.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(ChromeTraceTest, OutageEventsCarryPropertyName) {
  ProcedureSpan s;
  s.kind = SpanKind::kOutage;
  s.detail = "data-usable";
  s.start = 0;
  s.end = Seconds(1);
  s.outcome = SpanOutcome::kSuccess;
  const std::string frag = ChromeTraceEvents({s}, "run", 1);
  EXPECT_NE(frag.find("\"name\":\"outage:data-usable\""), std::string::npos);
}

TEST(RecordSpansTest, CountsOutcomesRetriesAndLatencies) {
  ProcedureSpan ok;
  ok.kind = SpanKind::kAttach;
  ok.start = 0;
  ok.end = Seconds(2);
  ok.outcome = SpanOutcome::kSuccess;
  ok.retries = 3;
  ProcedureSpan open;
  open.kind = SpanKind::kAttach;
  open.start = 0;
  open.end = Seconds(9);
  open.outcome = SpanOutcome::kOpen;

  Registry reg;
  RecordSpans(reg, {ok, open});
  EXPECT_EQ(reg.GetCounter("span.attach.count").value(), 2u);
  EXPECT_EQ(reg.GetCounter("span.attach.success").value(), 1u);
  EXPECT_EQ(reg.GetCounter("span.attach.open").value(), 1u);
  EXPECT_EQ(reg.GetCounter("span.attach.retries").value(), 3u);
  // Open spans never contribute a latency sample.
  EXPECT_EQ(reg.GetHistogram("span.attach.latency_s").Count(), 1u);
  EXPECT_DOUBLE_EQ(reg.GetHistogram("span.attach.latency_s").Sum(), 2.0);
}

}  // namespace
}  // namespace cnv::obs
