#include "model/s4_model.h"

#include <gtest/gtest.h>

#include "mck/explorer.h"

namespace cnv::model {
namespace {

using mck::Explore;

TEST(S4ModelTest, CoupledDesignViolatesBothServiceProperties) {
  S4Model m;
  const auto r = Explore(m, S4Model::Properties());
  EXPECT_FALSE(r.Holds(kCallServiceOk));
  EXPECT_FALSE(r.Holds(kPacketServiceOk));
}

TEST(S4ModelTest, CounterexampleShowsHolBlocking) {
  S4Model m;
  const auto r = Explore(m, S4Model::Properties());
  const auto* v = r.FindViolation(kCallServiceOk);
  ASSERT_NE(v, nullptr);
  // Shortest: trigger LU, dial, defer — the call waits behind the update.
  bool saw_lu = false;
  bool saw_dial = false;
  for (const auto& a : v->trace) {
    saw_lu |= a.kind == S4Model::Kind::kTriggerLu;
    saw_dial |= a.kind == S4Model::Kind::kUserDialsCall;
  }
  EXPECT_TRUE(saw_lu);
  EXPECT_TRUE(saw_dial);
  EXPECT_TRUE(v->state.call_delayed || v->state.call_rejected);
}

TEST(S4ModelTest, WaitNetCmdChainEffectAlsoBlocks) {
  // §6.1.2: even after the update completes, MM sits in
  // MM-WAIT-FOR-NET-CMD and keeps deferring call requests.
  S4Model m;
  auto s = m.initial();
  s = m.apply(s, {S4Model::Kind::kTriggerLu});
  s = m.apply(s, {S4Model::Kind::kLuComplete});
  EXPECT_EQ(s.mm, S4Model::Mm::kWaitNetCmd);
  s = m.apply(s, {S4Model::Kind::kUserDialsCall});
  bool can_serve = false, can_defer = false;
  for (const auto& a : m.enabled(s)) {
    can_serve |= a.kind == S4Model::Kind::kServeCall;
    can_defer |= a.kind == S4Model::Kind::kDeferCall;
  }
  EXPECT_FALSE(can_serve);
  EXPECT_TRUE(can_defer);
}

TEST(S4ModelTest, CallServedNormallyWhenMmIdle) {
  S4Model m;
  auto s = m.initial();
  s = m.apply(s, {S4Model::Kind::kUserDialsCall});
  bool can_serve = false;
  for (const auto& a : m.enabled(s)) {
    can_serve |= a.kind == S4Model::Kind::kServeCall;
    EXPECT_NE(a.kind, S4Model::Kind::kDeferCall);
  }
  EXPECT_TRUE(can_serve);
  s = m.apply(s, {S4Model::Kind::kServeCall});
  EXPECT_TRUE(s.call_active);
  EXPECT_FALSE(s.call_delayed);
}

TEST(S4ModelTest, DecoupledDesignIsViolationFree) {
  S4Model::Config cfg;
  cfg.decoupled = true;
  S4Model m(cfg);
  const auto r = Explore(m, S4Model::Properties());
  EXPECT_TRUE(r.Holds(kCallServiceOk));
  EXPECT_TRUE(r.Holds(kPacketServiceOk));
  EXPECT_FALSE(r.stats.truncated);
}

TEST(S4ModelTest, DecoupledServesCallDuringUpdate) {
  S4Model::Config cfg;
  cfg.decoupled = true;
  S4Model m(cfg);
  auto s = m.initial();
  s = m.apply(s, {S4Model::Kind::kTriggerLu});
  s = m.apply(s, {S4Model::Kind::kUserDialsCall});
  bool can_serve = false;
  for (const auto& a : m.enabled(s)) {
    can_serve |= a.kind == S4Model::Kind::kServeCall;
    EXPECT_NE(a.kind, S4Model::Kind::kDeferCall);
    EXPECT_NE(a.kind, S4Model::Kind::kRejectCall);
  }
  EXPECT_TRUE(can_serve);
}

TEST(S4ModelTest, PsDomainRauBlocksDataRequests) {
  S4Model::Config cfg;
  cfg.model_cs = false;  // isolate the GMM/SM pair
  S4Model m(cfg);
  const auto r = Explore(m, S4Model::Properties());
  EXPECT_FALSE(r.Holds(kPacketServiceOk));
  EXPECT_TRUE(r.Holds(kCallServiceOk));  // no CS activity modeled
}

TEST(S4ModelTest, CsDomainOnlyBlocksCalls) {
  S4Model::Config cfg;
  cfg.model_ps = false;
  S4Model m(cfg);
  const auto r = Explore(m, S4Model::Properties());
  EXPECT_FALSE(r.Holds(kCallServiceOk));
  EXPECT_TRUE(r.Holds(kPacketServiceOk));
}

TEST(S4ModelTest, RejectionIsAlsoAViolation) {
  S4Model m;
  auto s = m.initial();
  s = m.apply(s, {S4Model::Kind::kTriggerLu});
  s = m.apply(s, {S4Model::Kind::kUserDialsCall});
  s = m.apply(s, {S4Model::Kind::kRejectCall});
  EXPECT_TRUE(s.call_rejected);
  EXPECT_FALSE(s.call_pending);
  const auto props = S4Model::Properties();
  EXPECT_FALSE(props[0].holds(s));  // CallService_OK
}

TEST(S4ModelTest, StateSpaceIsExhaustable) {
  S4Model m;
  const auto r = Explore(m, S4Model::Properties());
  EXPECT_FALSE(r.stats.truncated);
  EXPECT_LT(r.stats.states_visited, 100'000u);
}

}  // namespace
}  // namespace cnv::model
