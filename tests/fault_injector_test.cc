// FaultInjector: each scheduled action must reach the right testbed hook
// at the right simulation time and leave a FAULT record in the trace log.
#include <gtest/gtest.h>

#include "fault/injector.h"
#include "trace/qxdm.h"

namespace cnv::fault {
namespace {

// Counts FAULT records in the testbed's trace log.
std::size_t FaultRecords(stack::Testbed& tb) {
  std::size_t n = 0;
  for (const auto& r : tb.traces().records()) {
    if (r.type == trace::TraceType::kFault) ++n;
  }
  return n;
}

TEST(FaultInjectorTest, DropActionArmsTheTargetLink) {
  stack::Testbed tb({});
  FaultInjector inj(tb);
  inj.Apply({.name = "t",
             .description = "",
             .actions = {{.at = Millis(20),
                         .kind = FaultKind::kDropNext,
                         .target = FaultTarget::kUl4g,
                         .count = 1}}});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(1));
  // The Attach Request (t=0) got through; the Attach Complete was eaten.
  EXPECT_EQ(tb.ul4g().dropped(), 1u);
  EXPECT_EQ(inj.injected(), 1u);
  EXPECT_EQ(FaultRecords(tb), 1u);
}

TEST(FaultInjectorTest, OutageAndRestartReachTheElement) {
  stack::Testbed tb({});
  FaultInjector inj(tb);
  inj.Apply({.name = "t",
             .description = "",
             .actions = {{.at = Seconds(10),
                         .kind = FaultKind::kElementOutage,
                         .target = FaultTarget::kMme},
                        {.at = Seconds(20),
                         .kind = FaultKind::kElementRestart,
                         .target = FaultTarget::kMme,
                         .lose_state = true}}});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(15));
  EXPECT_FALSE(tb.mme().available());
  // The attach completed before the outage; the lossy restart forgets it.
  EXPECT_EQ(tb.mme().state(), stack::Mme::EmmState::kRegistered);
  tb.Run(Seconds(10));
  EXPECT_TRUE(tb.mme().available());
  EXPECT_EQ(tb.mme().state(), stack::Mme::EmmState::kDeregistered);
  EXPECT_EQ(inj.injected(), 2u);
}

TEST(FaultInjectorTest, TimerSkewReachesTheDevice) {
  stack::Testbed tb({});
  FaultInjector inj(tb);
  inj.Apply({.name = "t",
             .description = "",
             .actions = {{.at = Seconds(5),
                         .kind = FaultKind::kTimerSkew,
                         .target = FaultTarget::kUe,
                         .value = 2.5}}});
  tb.Run(Seconds(6));
  EXPECT_DOUBLE_EQ(tb.ue().timer_scale(), 2.5);
}

TEST(FaultInjectorTest, ForceSgsRaceArmsTheMme) {
  stack::Testbed tb({});
  FaultInjector inj(tb);
  inj.Apply({.name = "t",
             .description = "",
             .actions = {{.at = 0,
                         .kind = FaultKind::kForceSgsRace,
                         .target = FaultTarget::kMme}}});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(30));
  // The armed race fires on the next SGs update after a CSFB round trip.
  tb.ue().Dial();
  tb.Run(Seconds(60));
  tb.ue().HangUp();
  tb.Run(Seconds(120));
  EXPECT_EQ(tb.mme().sgs_update_failures(), 1u);
}

TEST(FaultInjectorTest, PastActionsExecuteImmediately) {
  stack::Testbed tb({});
  tb.Run(Seconds(100));  // now > action time
  FaultInjector inj(tb);
  inj.Apply({.name = "t",
             .description = "",
             .actions = {{.at = Seconds(10),
                         .kind = FaultKind::kExtraDelay,
                         .target = FaultTarget::kDl4g,
                         .value = 1.0}}});
  tb.Run(Millis(1));
  EXPECT_EQ(tb.dl4g().extra_delay(), Seconds(1));
}

TEST(FaultInjectorTest, PlansCompose) {
  stack::Testbed tb({});
  FaultInjector inj(tb);
  inj.Apply(plans::RadioBurstLoss());
  inj.Apply(plans::TimerSkew());
  tb.Run(Seconds(20));
  EXPECT_DOUBLE_EQ(tb.ue().timer_scale(), 2.5);
  EXPECT_EQ(inj.injected(), 7u);  // 6 loss settings at 10 s + skew at 0 s
}

TEST(FaultInjectorTest, FaultRecordsRenderInQxdmFormat) {
  stack::Testbed tb({});
  FaultInjector inj(tb);
  inj.Apply(plans::TimerSkew());
  tb.Run(Seconds(1));
  const std::string log = trace::FormatLog(tb.traces().records());
  EXPECT_NE(log.find("[FAULT]"), std::string::npos);
  EXPECT_NE(log.find("timer-skew on UE"), std::string::npos);
}

}  // namespace
}  // namespace cnv::fault
