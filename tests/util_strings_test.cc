#include "util/strings.h"

#include <gtest/gtest.h>

#include "util/time.h"

namespace cnv {
namespace {

TEST(StringsTest, JoinBasics) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split(",", ',').size(), 2u);
  EXPECT_EQ(Split("", ',').size(), 1u);
  const auto parts = Split("a,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, SplitJoinRoundTrip) {
  const std::string s = "x|y||z";
  EXPECT_EQ(Join(Split(s, '|'), "|"), s);
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringsTest, FormatWorksLikePrintf) {
  EXPECT_EQ(Format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(Format("%.2f", 1.005), "1.00");  // printf rounding semantics
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcd", 2), "abcd");
  EXPECT_EQ(PadRight("abcd", 2), "abcd");
}

TEST(TimeFormatTest, FormatClockMatchesPaperTraceFormat) {
  EXPECT_EQ(FormatClock(0), "00:00:00.000");
  EXPECT_EQ(FormatClock(Millis(1234)), "00:00:01.234");
  EXPECT_EQ(FormatClock(kHour + Minutes(2) + Seconds(3) + Millis(45)),
            "01:02:03.045");
}

TEST(TimeFormatTest, FormatDurationPicksUnit) {
  EXPECT_EQ(FormatDuration(500), "500us");
  EXPECT_EQ(FormatDuration(Millis(20)), "20ms");
  EXPECT_EQ(FormatDuration(Millis(2400)), "2.40s");
}

TEST(TimeTest, ConversionHelpers) {
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_EQ(FromSeconds(1.5), Millis(1500));
  EXPECT_EQ(Seconds(1), 1000 * Millis(1));
}

}  // namespace
}  // namespace cnv
