// Differential reduction-equivalence suite for partial-order reduction:
// for every model the full exploration and the reduced explorations must
// agree on the set of reachable property violations (up to orbit
// representatives when symmetry is on), and the reduction factor on the
// models built for it must clear the asserted floor. Also pins the C3
// cycle proviso with a model where skipping it would lose a violation, and
// serial-vs-parallel byte-identity of reduced runs at several job counts.
#include "mck/por.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "mck/explorer.h"
#include "mck/parallel_explorer.h"
#include "mck/toy_models.h"
#include "model/combined_model.h"
#include "model/s1_model.h"
#include "model/s2_model.h"
#include "model/s3_model.h"
#include "model/s4_model.h"

namespace cnv::mck {
namespace {

using model::CombinedModel;
using toys::IndepWorkersModel;

template <typename M>
std::set<std::string> ViolatedProps(const std::vector<Violation<M>>& vs) {
  std::set<std::string> names;
  for (const auto& v : vs) names.insert(v.property);
  return names;
}

ExploreOptions Reduced(bool por, bool symmetry) {
  ExploreOptions opt;
  opt.reduction.por = por;
  opt.reduction.symmetry = symmetry;
  return opt;
}

// --- IndepWorkers: the engineered reduction-factor floor --------------------

TEST(PorTest, IndepWorkersFullProductSize) {
  IndepWorkersModel m;  // 4 workers x 4 steps
  const auto full = Explore(m, {});
  EXPECT_EQ(full.stats.states_visited, 625u);  // (L+1)^K
  EXPECT_EQ(full.stats.ample_states, 0u);
  EXPECT_EQ(full.stats.represented_states, 625u);
}

TEST(PorTest, IndepWorkersPorCollapsesToOneSchedule) {
  IndepWorkersModel m;
  const auto full = Explore(m, {});
  const auto por = Explore(m, {}, Reduced(true, false));
  // All actions are local and invisible and counters are monotone (every
  // ample successor is fresh), so exactly one interleaving survives.
  EXPECT_EQ(por.stats.states_visited, 17u);  // K*L + 1
  EXPECT_GT(por.stats.ample_states, 0u);
  // The >= 10x reduction-factor floor the bench report also asserts.
  EXPECT_GE(full.stats.states_visited, 10 * por.stats.states_visited);
  EXPECT_EQ(ViolatedProps<IndepWorkersModel>(full.violations),
            ViolatedProps<IndepWorkersModel>(por.violations));
}

TEST(PorTest, IndepWorkersPorPlusSymmetryAgree) {
  IndepWorkersModel m;
  const auto por = Explore(m, {}, Reduced(true, false));
  const auto both = Explore(m, {}, Reduced(true, true));
  // The single surviving schedule's prefixes are already canonical up to
  // the sort direction, so combining the reductions stays exhaustive.
  EXPECT_LE(both.stats.states_visited, por.stats.states_visited);
  EXPECT_GE(both.stats.represented_states, both.stats.states_visited);
}

// --- Models without a spec: the flags must be inert -------------------------

TEST(PorTest, NonReducibleModelsIgnoreTheFlags) {
  toys::PetersonModel peterson;
  peterson.use_turn_variable = false;
  PropertySet<toys::PetersonModel::State> props = {
      {"mutex",
       [](const toys::PetersonModel::State& s) {
         return !toys::PetersonModel::BothCritical(s);
       },
       "mutual exclusion"}};
  const auto full = Explore(peterson, props);
  const auto red = Explore(peterson, props, Reduced(true, true));
  EXPECT_EQ(DeterministicView(full.stats), DeterministicView(red.stats));
  ASSERT_EQ(full.violations.size(), red.violations.size());
  for (std::size_t i = 0; i < full.violations.size(); ++i) {
    EXPECT_EQ(full.violations[i].trace.size(), red.violations[i].trace.size());
  }
}

// --- S1-S4: trivial specs, identical results with the flags on --------------

template <typename M>
void ExpectReductionIsNoOp(const M& m, const PropertySet<typename M::State>& props) {
  const auto full = Explore(m, props);
  const auto red = Explore(m, props, Reduced(true, true));
  EXPECT_EQ(DeterministicView(full.stats), DeterministicView(red.stats));
  EXPECT_EQ(ViolatedProps<M>(full.violations), ViolatedProps<M>(red.violations));
  ASSERT_EQ(full.violations.size(), red.violations.size());
  for (std::size_t i = 0; i < full.violations.size(); ++i) {
    EXPECT_EQ(full.violations[i].trace.size(), red.violations[i].trace.size());
  }
}

TEST(PorTest, ScreeningModelsUnchangedUnderReductionFlags) {
  ExpectReductionIsNoOp(model::S1Model{}, model::S1Model::Properties());
  ExpectReductionIsNoOp(model::S2Model{}, model::S2Model::Properties());
  const model::S3Model s3;
  ExpectReductionIsNoOp(s3, s3.Properties());
  ExpectReductionIsNoOp(model::S4Model{}, model::S4Model::Properties());
}

// --- Combined model: counterexamples survive the reductions -----------------

TEST(PorTest, CombinedModelViolationSetSurvivesPor) {
  const CombinedModel m;
  const auto props = m.Properties();
  const auto full = Explore(m, props);
  const auto por = Explore(m, props, Reduced(true, false));
  const auto expected = ViolatedProps<CombinedModel>(full.violations);
  // Default config reaches the S1 detach and the cross-UE dropped call.
  EXPECT_TRUE(expected.contains(model::kPacketServiceOk));
  EXPECT_TRUE(expected.contains(model::kCallServiceOk));
  EXPECT_EQ(expected, ViolatedProps<CombinedModel>(por.violations));
  EXPECT_LT(por.stats.states_visited, full.stats.states_visited);
}

TEST(PorTest, CombinedModelViolationSetSurvivesPorPlusSymmetry) {
  const CombinedModel m;
  const auto props = m.Properties();
  const auto full = Explore(m, props);
  const auto both = Explore(m, props, Reduced(true, true));
  EXPECT_EQ(ViolatedProps<CombinedModel>(full.violations),
            ViolatedProps<CombinedModel>(both.violations));
  EXPECT_LT(both.stats.states_visited, full.stats.states_visited);
  // Orbit accounting covers at least the representatives themselves.
  EXPECT_GE(both.stats.represented_states, both.stats.states_visited);
}

TEST(PorTest, CombinedModelStuckIn3GFoundUnderReduction) {
  CombinedModel::Config cfg;
  cfg.switch_back = false;
  const CombinedModel m(cfg);
  const auto red = Explore(m, m.Properties(), Reduced(true, true));
  EXPECT_FALSE(red.Holds(model::kMmOk));
}

TEST(PorTest, CombinedModelAllFixesCleanUnderReduction) {
  CombinedModel::Config cfg;
  cfg.fix_reactivate_bearer = true;
  cfg.fix_queue_call = true;
  const CombinedModel m(cfg);
  const auto full = Explore(m, m.Properties());
  const auto red = Explore(m, m.Properties(), Reduced(true, true));
  EXPECT_TRUE(full.violations.empty());
  EXPECT_TRUE(red.violations.empty());
}

// --- C3 cycle proviso -------------------------------------------------------

// Two components: component 0 flips a private bit forever (an invisible
// local cycle), component 1 has a single shared action that breaks the
// property. Without the cycle proviso the flip action would be ample in
// every state, the BFS would close the 2-cycle and terminate, and the
// violation would never be seen. With C3 the second wave finds every flip
// successor stale, falls back to full expansion, and reaches the bug.
struct CycleTrapModel {
  struct State {
    std::uint8_t bit = 0;
    bool bad = false;
    bool operator==(const State&) const = default;
  };
  struct Action {
    int comp = 0;
  };

  State initial() const { return {}; }
  std::vector<Action> enabled(const State& s) const {
    std::vector<Action> acts;
    acts.push_back({0});                  // flip: always enabled
    if (!s.bad) acts.push_back({1});      // break: sets bad once
    return acts;
  }
  State apply(const State& s, const Action& a) const {
    State next = s;
    if (a.comp == 0) {
      next.bit ^= 1;
    } else {
      next.bad = true;
    }
    return next;
  }
  std::string describe(const Action& a) const {
    return a.comp == 0 ? "flip" : "break";
  }
  ReductionSpec<CycleTrapModel> reduction() const {
    ReductionSpec<CycleTrapModel> spec;
    spec.components = 2;
    spec.owner = [](const State&, const Action& a) { return a.comp; };
    spec.local = [](const State&, const Action& a) { return a.comp == 0; };
    spec.visible = [](const State&, const Action& a) { return a.comp != 0; };
    return spec;
  }
};

std::size_t HashValue(const CycleTrapModel::State& s) {
  return Hasher().Mix(s.bit).Mix(s.bad).Digest();
}

TEST(PorTest, CycleProvisoKeepsVisibleActionReachable) {
  const CycleTrapModel m;
  PropertySet<CycleTrapModel::State> props = {
      {"ok", [](const CycleTrapModel::State& s) { return !s.bad; }, "no bad"}};
  const auto full = Explore(m, props);
  const auto red = Explore(m, props, Reduced(true, false));
  ASSERT_FALSE(full.Holds("ok"));
  EXPECT_FALSE(red.Holds("ok"));  // lost if C3 were skipped
  EXPECT_EQ(ViolatedProps<CycleTrapModel>(full.violations),
            ViolatedProps<CycleTrapModel>(red.violations));
}

// --- Serial-vs-parallel byte-identity of reduced runs -----------------------

TEST(PorTest, ReducedExplorationByteIdenticalAtAnyJobCount) {
  const CombinedModel m;
  const auto props = m.Properties();
  ExploreOptions base = Reduced(true, true);
  const auto serial = Explore(m, props, base);
  for (const int jobs : {1, 2, 4}) {
    ParallelExploreOptions popt;
    popt.base = base;
    popt.jobs = jobs;
    const auto par = ParallelExplore(m, props, popt);
    EXPECT_EQ(DeterministicView(serial.stats, /*include_occupancy=*/false),
              DeterministicView(par.stats, /*include_occupancy=*/false))
        << "jobs=" << jobs;
    ASSERT_EQ(serial.violations.size(), par.violations.size());
    for (std::size_t i = 0; i < serial.violations.size(); ++i) {
      EXPECT_EQ(serial.violations[i].property, par.violations[i].property);
      EXPECT_EQ(serial.violations[i].trace.size(),
                par.violations[i].trace.size());
      EXPECT_EQ(serial.violations[i].state, par.violations[i].state);
    }
  }
}

TEST(PorTest, ReducedParallelShardOccupancyIdenticalAcrossJobs) {
  const IndepWorkersModel m;
  ParallelExploreOptions popt;
  popt.base = Reduced(true, true);
  popt.jobs = 1;
  const auto p1 = ParallelExplore(m, {}, popt);
  popt.jobs = 4;
  const auto p4 = ParallelExplore(m, {}, popt);
  EXPECT_EQ(DeterministicView(p1.stats), DeterministicView(p4.stats));
  EXPECT_EQ(DeterministicView(p1.par), DeterministicView(p4.par));
}

// --- Checkpoint/resume mid-reduced-run --------------------------------------

TEST(PorTest, ResumeMidReducedRunIsByteIdentical) {
  const CombinedModel m;
  const auto props = m.Properties();
  ParallelExploreOptions popt;
  popt.base = Reduced(true, true);
  popt.jobs = 2;

  std::vector<ExploreSnapshot<CombinedModel>> snaps;
  SnapshotHooks<CombinedModel> hooks;
  hooks.every_waves = 1;
  hooks.on_snapshot = [&](const ExploreSnapshot<CombinedModel>& s) {
    snaps.push_back(s);
  };
  const auto uninterrupted = ParallelExplore(m, props, popt, nullptr, &hooks);
  ASSERT_GE(snaps.size(), 2u);

  SnapshotHooks<CombinedModel> resume_hooks;
  resume_hooks.resume = &snaps[1];
  const auto resumed = ParallelExplore(m, props, popt, nullptr, &resume_hooks);
  EXPECT_EQ(DeterministicView(uninterrupted.stats),
            DeterministicView(resumed.stats));
  ASSERT_EQ(uninterrupted.violations.size(), resumed.violations.size());
  for (std::size_t i = 0; i < uninterrupted.violations.size(); ++i) {
    EXPECT_EQ(uninterrupted.violations[i].property,
              resumed.violations[i].property);
  }
}

}  // namespace
}  // namespace cnv::mck
