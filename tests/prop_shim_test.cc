// Property sweep for the §8 reliable shim layer: for every loss rate and
// traffic size, delivery is exactly-once and in order.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sim/link.h"
#include "solution/shim.h"

namespace cnv::solution {
namespace {

class ShimSweep
    : public ::testing::TestWithParam<std::tuple<double, int, int>> {};

TEST_P(ShimSweep, ExactlyOnceInOrderDelivery) {
  const double loss = std::get<0>(GetParam());
  const int messages = std::get<1>(GetParam());
  const int seed = std::get<2>(GetParam());

  sim::Simulator sim;
  Rng rng(static_cast<std::uint64_t>(seed));
  sim::Link ab(sim, rng,
               {.delay = Millis(30), .loss_prob = loss, .reliable = false},
               "a->b");
  sim::Link ba(sim, rng,
               {.delay = Millis(30), .loss_prob = loss, .reliable = false},
               "b->a");
  ShimEndpoint a(sim, "A");
  ShimEndpoint b(sim, "B");
  a.SetTransmit([&](const nas::Message& m) { ab.Send(m); });
  b.SetTransmit([&](const nas::Message& m) { ba.Send(m); });
  ab.SetReceiver([&](const nas::Message& m) { b.OnRaw(m); });
  ba.SetReceiver([&](const nas::Message& m) { a.OnRaw(m); });

  std::vector<std::uint64_t> delivered;
  b.SetDeliver([&](const nas::Message& m) { delivered.push_back(m.uid); });

  for (int i = 0; i < messages; ++i) {
    nas::Message m;
    m.kind = nas::MsgKind::kTauRequest;
    m.uid = static_cast<std::uint64_t>(i + 1);
    a.Send(m);
  }
  sim.RunAll(Minutes(60 * 5));

  // Exactly once, in order, none lost.
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(messages));
  for (int i = 0; i < messages; ++i) {
    EXPECT_EQ(delivered[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_TRUE(a.idle());
  // Retransmissions only happen when the link actually loses frames.
  if (loss == 0.0) {
    EXPECT_EQ(a.retransmissions(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossAndVolume, ShimSweep,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7),
                       ::testing::Values(1, 10, 40),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace cnv::solution
