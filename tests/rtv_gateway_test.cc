// End-to-end tests of the runtime-verification gateway: byte-stream ingest
// through the SPSC ring to the online monitors, the determinism contract
// (same bytes => byte-identical alert log at any chunking), backpressure
// accounting, the live testbed tap, and the metrics/snapshot surface.
#include "rtv/gateway.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rtv/monitors.h"
#include "stack/testbed.h"
#include "trace/qxdm.h"

namespace cnv::rtv {
namespace {

std::string ReadGolden(const std::string& name) {
  const std::string path = std::string(CNV_GOLDEN_DIR) + "/" + name + ".log";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden: " << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

std::string AllGoldens() {
  std::string all;
  for (const char* name :
       {"s1_context_loss_opi", "s2_lost_attach_complete_opi",
        "s3_stuck_in_3g_opii", "s4_hol_blocking_opi",
        "s5_call_data_coupling_opi", "s6_lu_failure_detach_opi",
        "congestion_attach_storm_opi"}) {
    all += ReadGolden(name);
  }
  return all;
}

std::string RunChunked(const std::string& bytes, std::size_t chunk,
                       GatewayConfig config = {}) {
  Gateway gw(config);
  gw.Start();
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    gw.Feed(0, std::string_view(bytes).substr(off, chunk));
  }
  gw.Finish();
  return gw.AlertLog();
}

TEST(GatewayTest, ThreadedEndToEndRaisesTheExpectedAlerts) {
  const std::string log = ReadGolden("s1_context_loss_opi");
  Gateway gw;
  int callbacks = 0;
  gw.set_alert_callback([&](const Alert& a) {
    EXPECT_EQ(a.kind, AlertKind::kS1);
    ++callbacks;
  });
  gw.Start();
  gw.Feed(0, log);
  gw.Finish();
  ASSERT_EQ(gw.alerts().size(), 1u);
  EXPECT_EQ(gw.alerts()[0].kind, AlertKind::kS1);
  EXPECT_EQ(callbacks, 1);
  const auto stats = gw.stats();
  EXPECT_EQ(stats.records_in, trace::ParseLog(log).size());
  EXPECT_EQ(stats.records_processed, stats.records_in);
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(stats.alerts, 1u);
  EXPECT_EQ(stats.streams, 1u);
}

TEST(GatewayTest, AlertLogIsByteIdenticalAtAnyChunking) {
  const std::string bytes = AllGoldens();
  const std::string whole = RunChunked(bytes, bytes.size());
  EXPECT_FALSE(whole.empty());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{4096}}) {
    EXPECT_EQ(RunChunked(bytes, chunk), whole) << "chunk=" << chunk;
  }
}

TEST(GatewayTest, InlineModeMatchesThreadedMode) {
  const std::string bytes = AllGoldens();
  GatewayConfig inline_cfg;
  inline_cfg.threaded = false;
  EXPECT_EQ(RunChunked(bytes, 333, inline_cfg), RunChunked(bytes, 333));
}

TEST(GatewayTest, StreamsAreMonitoredIndependently) {
  // Interleave two goldens chunk-by-chunk on two streams: each stream
  // raises exactly its own finding, tagged with its stream id.
  const std::string a = ReadGolden("s1_context_loss_opi");
  const std::string b = ReadGolden("s2_lost_attach_complete_opi");
  Gateway gw;
  gw.Start();
  constexpr std::size_t kChunk = 64;
  for (std::size_t off = 0; off < a.size() || off < b.size();
       off += kChunk) {
    if (off < a.size()) {
      gw.Feed(1, std::string_view(a).substr(off, kChunk));
    }
    if (off < b.size()) {
      gw.Feed(2, std::string_view(b).substr(off, kChunk));
    }
  }
  gw.Finish();
  ASSERT_EQ(gw.alerts().size(), 2u);
  for (const auto& alert : gw.alerts()) {
    if (alert.stream == 1) {
      EXPECT_EQ(alert.kind, AlertKind::kS1);
    } else {
      EXPECT_EQ(alert.stream, 2u);
      EXPECT_EQ(alert.kind, AlertKind::kS2);
    }
  }
  EXPECT_EQ(gw.stats().streams, 2u);
}

TEST(GatewayTest, DropNewestCountsWhatItSheds) {
  // A tiny ring in drop mode with a consumer that cannot keep up: the
  // gateway must stay bounded and account for every dropped record.
  GatewayConfig config;
  config.ring_capacity = 4;
  config.backpressure = Backpressure::kDropNewest;
  Gateway gw(config);
  gw.Start();
  const std::string bytes = AllGoldens();
  for (std::size_t off = 0; off < bytes.size(); off += 4096) {
    gw.Feed(0, std::string_view(bytes).substr(off, 4096));
  }
  gw.Finish();
  const auto stats = gw.stats();
  EXPECT_EQ(stats.records_processed + stats.records_dropped,
            stats.records_in);
}

TEST(GatewayTest, LiveTapMatchesOfflineReplay) {
  // Tap a running testbed into the gateway (the rtv::FeedRecord glue) and
  // replay the same collected records offline: identical alert logs, and
  // every collected record crossed the byte-stream boundary.
  stack::TestbedConfig cfg;
  cfg.seed = 7;
  stack::Testbed tb(cfg);
  Gateway gw;
  gw.Start();
  tb.TapTraces([&gw](const trace::TraceRecord& r) { FeedRecord(gw, 0, r); });
  tb.storm().MassAttach(Millis(10), 50, Millis(2));
  tb.sim().ScheduleAt(Millis(100),
                      [&tb] { tb.ue().PowerOn(nas::System::k4G); });
  tb.Run(Seconds(5));
  tb.TapTraces(nullptr);
  gw.Finish();

  // The offline twin replays the same byte-stream representation the tap
  // produced (FormatRecord truncates to milliseconds), not the raw
  // collector records.
  FindingMonitors offline;
  std::vector<Alert> offline_alerts;
  std::uint64_t ordinal = 0;
  for (const auto& r :
       trace::ParseLog(trace::FormatLog(tb.traces().records()))) {
    offline.Step(r, ordinal++, &offline_alerts);
  }
  EXPECT_EQ(gw.AlertLog(), FormatAlertLog(offline_alerts));
  EXPECT_EQ(gw.stats().records_in, tb.traces().records().size());
  // The mass-attach storm must have tripped the overload monitor live.
  ASSERT_FALSE(gw.alerts().empty());
  EXPECT_EQ(gw.alerts()[0].kind, AlertKind::kOverload);
}

TEST(GatewayTest, RegistryExportsCountersGaugesAndLatency) {
  Gateway gw;
  gw.Start();
  gw.Feed(0, AllGoldens());
  gw.Finish();
  const std::string json = gw.registry().ToJson(gw.last_record_time());
  for (const char* name :
       {"rtv.bytes_in", "rtv.lines_in", "rtv.records_in",
        "rtv.records_processed", "rtv.alerts", "rtv.alerts.S1",
        "rtv.streams", "rtv.record_latency_us"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  EXPECT_EQ(gw.stats().lines_skipped, 0u);
}

TEST(GatewayTest, PeriodicSnapshotWritesJson) {
  const std::string path = ::testing::TempDir() + "rtv_snapshot_test.json";
  std::remove(path.c_str());
  GatewayConfig config;
  config.snapshot_every = 50;
  config.snapshot_path = path;
  Gateway gw(config);
  gw.Start();
  gw.Feed(0, AllGoldens());
  gw.Finish();
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "no snapshot written to " << path;
  const std::string json(std::istreambuf_iterator<char>(in), {});
  EXPECT_NE(json.find("rtv.records_processed"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GatewayTest, MalformedLinesAreCountedNotFatal) {
  Gateway gw;
  gw.Start();
  gw.Feed(0, "complete garbage\n");
  gw.Feed(0, ReadGolden("s4_hol_blocking_opi"));
  gw.Feed(0, "more garbage with no newline");
  gw.Finish();
  const auto stats = gw.stats();
  EXPECT_EQ(stats.lines_skipped, 2u);
  ASSERT_EQ(gw.alerts().size(), 1u);
  EXPECT_EQ(gw.alerts()[0].kind, AlertKind::kS4);
}

}  // namespace
}  // namespace cnv::rtv
