#include "util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cnv {
namespace {

TEST(SamplesTest, EmptyQueriesThrow) {
  Samples s;
  EXPECT_TRUE(s.Empty());
  EXPECT_THROW(s.Min(), std::logic_error);
  EXPECT_THROW(s.Max(), std::logic_error);
  EXPECT_THROW(s.Mean(), std::logic_error);
  EXPECT_THROW(s.Percentile(50), std::logic_error);
  EXPECT_THROW(s.CdfAt(0), std::logic_error);
}

TEST(SamplesTest, SingleValue) {
  Samples s({7.0});
  EXPECT_EQ(s.Min(), 7.0);
  EXPECT_EQ(s.Max(), 7.0);
  EXPECT_EQ(s.Mean(), 7.0);
  EXPECT_EQ(s.Median(), 7.0);
  EXPECT_EQ(s.Percentile(0), 7.0);
  EXPECT_EQ(s.Percentile(100), 7.0);
  EXPECT_EQ(s.Stddev(), 0.0);
}

TEST(SamplesTest, BasicOrderStatistics) {
  Samples s({5, 1, 4, 2, 3});
  EXPECT_EQ(s.Count(), 5u);
  EXPECT_EQ(s.Min(), 1);
  EXPECT_EQ(s.Max(), 5);
  EXPECT_EQ(s.Median(), 3);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
}

TEST(SamplesTest, PercentileInterpolates) {
  Samples s({0, 10});
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 2.5);
  EXPECT_DOUBLE_EQ(s.Percentile(90), 9.0);
}

TEST(SamplesTest, PercentileClampsArgument) {
  Samples s({1, 2, 3});
  EXPECT_EQ(s.Percentile(-10), 1);
  EXPECT_EQ(s.Percentile(200), 3);
}

TEST(SamplesTest, AddInvalidatesSortCache) {
  Samples s({2, 4});
  EXPECT_EQ(s.Median(), 3);
  s.Add(100);
  EXPECT_EQ(s.Max(), 100);
  EXPECT_EQ(s.Median(), 4);
}

TEST(SamplesTest, CdfAtCountsInclusive) {
  Samples s({1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(s.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.CdfAt(2.0), 0.75);
  EXPECT_DOUBLE_EQ(s.CdfAt(3.0), 1.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(99.0), 1.0);
}

TEST(SamplesTest, StddevOfKnownSet) {
  Samples s({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_NEAR(s.Stddev(), 2.138, 0.001);  // sample stddev
}

TEST(SamplesTest, ClearResets) {
  Samples s({1, 2});
  s.Clear();
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
}

TEST(RenderCdfTest, ProducesMonotoneCurve) {
  Samples s;
  for (int i = 100; i >= 1; --i) s.Add(i);
  const auto curve = RenderCdf(s, 11);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front().percent, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().percent, 100.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].value, curve[i - 1].value);
    EXPECT_GT(curve[i].percent, curve[i - 1].percent);
  }
  EXPECT_DOUBLE_EQ(curve.front().value, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().value, 100.0);
}

TEST(RenderCdfTest, EmptyInputsGiveEmptyCurve) {
  Samples s;
  EXPECT_TRUE(RenderCdf(s, 10).empty());
  Samples one({1.0});
  EXPECT_TRUE(RenderCdf(one, 0).empty());
}

TEST(RenderCdfTest, SinglePointCollapsesToMaximum) {
  // points == 1 cannot space quantiles; the documented behavior is one
  // 100th-percentile point.
  Samples s({3.0, 9.0, 6.0});
  const auto curve = RenderCdf(s, 1);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].percent, 100.0);
  EXPECT_DOUBLE_EQ(curve[0].value, 9.0);
}

TEST(RenderCdfTest, SingleSampleAnyPointCount) {
  Samples s({42.0});
  const auto curve = RenderCdf(s, 5);
  ASSERT_EQ(curve.size(), 5u);
  for (const auto& p : curve) EXPECT_DOUBLE_EQ(p.value, 42.0);
}

TEST(SamplesTest, StddevOfSingleSampleIsZeroNotNan) {
  Samples s({123.0});
  EXPECT_EQ(s.Stddev(), 0.0);
  s.Add(123.0);
  EXPECT_EQ(s.Stddev(), 0.0);  // two identical samples: zero spread
}

TEST(SummaryLineTest, ContainsKeyNumbers) {
  Samples s({1, 2, 3, 4, 5});
  const auto line = SummaryLine(s, "s");
  EXPECT_NE(line.find("1.0s"), std::string::npos);
  EXPECT_NE(line.find("3.0s"), std::string::npos);
  EXPECT_NE(line.find("5.0s"), std::string::npos);
}

TEST(SummaryLineTest, HandlesEmpty) {
  Samples s;
  EXPECT_EQ(SummaryLine(s, "s"), "(no samples)");
}

}  // namespace
}  // namespace cnv
