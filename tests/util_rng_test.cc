#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace cnv {
namespace {

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(1);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.UniformInt(2, 1), std::invalid_argument);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1'000'000) == b.UniformInt(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliClampsOutOfRange) {
  Rng rng(7);
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(7);
  int heads = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (rng.Bernoulli(0.5)) ++heads;
  }
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) sum += rng.Uniform(0.0, 10.0);
  EXPECT_NEAR(sum / 10'000, 5.0, 0.2);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20'000; ++i) sum += rng.Exponential(2.5);
  EXPECT_NEAR(sum / 20'000, 2.5, 0.1);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(5);
  EXPECT_THROW(rng.Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.Exponential(-1.0), std::invalid_argument);
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, PickCoversAllElements) {
  Rng rng(13);
  const std::vector<int> items = {1, 2, 3};
  std::array<int, 4> counts{};
  for (int i = 0; i < 3000; ++i) {
    ++counts[static_cast<std::size_t>(rng.Pick(items))];
  }
  EXPECT_EQ(counts[0], 0);
  for (int v = 1; v <= 3; ++v) EXPECT_GT(counts[static_cast<std::size_t>(v)], 800);
}

TEST(RngTest, PickRejectsEmpty) {
  Rng rng(13);
  const std::vector<int> empty;
  EXPECT_THROW(rng.Pick(empty), std::invalid_argument);
}

TEST(RngTest, PickWeightedHonorsWeights) {
  Rng rng(17);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 8000; ++i) ++counts[rng.PickWeighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.6);
}

TEST(RngTest, PickWeightedRejectsAllZero) {
  Rng rng(17);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.PickWeighted(weights), std::invalid_argument);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.UniformInt(0, 1'000'000) == child.UniformInt(0, 1'000'000)) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace cnv
