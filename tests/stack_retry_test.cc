// Robustness machinery: NAS retries with exponential backoff, bounded CM
// re-requests, attach backoff cycles, timer skew, and core-element outage /
// restart with optional queue-and-replay. The baseline (RobustnessConfig
// all-off) must keep the standards-mandated fragile behaviour the S1-S6
// experiments rely on; these tests pin down both sides.
#include <gtest/gtest.h>

#include "stack/testbed.h"

namespace cnv::stack {
namespace {

TestbedConfig WithRetries() {
  TestbedConfig cfg;
  cfg.robustness.nas_retry = true;
  return cfg;
}

// --- MM: location update ------------------------------------------------

TEST(NasRetryTest, LostLocationUpdateIsRetransmittedAfterT3210) {
  Testbed tb(WithRetries());
  tb.ul3g_cs().ForceDropNext(1);  // the initial LU request vanishes
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(30));  // T3210 (20 s) + round trip
  EXPECT_TRUE(tb.msc().registered());
  EXPECT_EQ(tb.ue().lu_retries(), 1u);
}

TEST(NasRetryTest, BaselineStaysStuckWhenLocationUpdateIsLost) {
  Testbed tb({});
  tb.ul3g_cs().ForceDropNext(1);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(120));
  // No guard timer: the MM state machine waits forever (the fragility the
  // fault campaigns measure).
  EXPECT_EQ(tb.ue().mm_state(), UeDevice::MmState::kLuInProgress);
  EXPECT_FALSE(tb.msc().registered());
  EXPECT_EQ(tb.ue().lu_retries(), 0u);
}

TEST(NasRetryTest, LocationUpdateRejectTriggersBackoffRetry) {
  Testbed tb(WithRetries());
  tb.msc().DisruptNextLocationUpdate();
  tb.ue().PowerOn(nas::System::k3G);
  // The disrupted update never completes; the guard expires, retransmits,
  // and eventually restarts the procedure, which then succeeds.
  tb.Run(Seconds(300));
  EXPECT_TRUE(tb.msc().registered());
  EXPECT_GE(tb.ue().lu_retries(), 1u);
}

// --- GMM / SM: GPRS attach, PDP activation ------------------------------

TEST(NasRetryTest, LostGprsAttachIsRetransmittedAfterT3330) {
  Testbed tb(WithRetries());
  tb.ul3g_ps().ForceDropNext(1);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(30));  // T3330 (15 s) + round trip
  EXPECT_TRUE(tb.sgsn().registered());
  EXPECT_EQ(tb.ue().gmm_retries(), 1u);
}

TEST(NasRetryTest, LostPdpActivationIsRetransmittedAfterT3380) {
  Testbed tb(WithRetries());
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(10));
  ASSERT_TRUE(tb.sgsn().registered());
  tb.ul3g_ps().ForceDropNext(1);
  tb.ue().StartDataSession(0.1);
  tb.Run(Seconds(45));  // T3380 (30 s) + round trip
  EXPECT_TRUE(tb.ue().pdp_active());
  EXPECT_EQ(tb.ue().pdp_retries(), 1u);
}

// --- CM service ---------------------------------------------------------

TEST(CmReattemptTest, LostCmServiceRequestIsReRequested) {
  TestbedConfig cfg;
  cfg.robustness.cm_reattempt = true;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(30));  // LU + MM-WAIT dwell complete
  tb.ul3g_cs().ForceDropNext(1);
  tb.ue().Dial();
  tb.Run(Seconds(60));  // T3230 (15 s) re-request + call setup
  EXPECT_EQ(tb.ue().call_state(), UeDevice::CallState::kActive);
  EXPECT_EQ(tb.ue().cm_retries(), 1u);
  EXPECT_EQ(tb.ue().cm_abandoned(), 0u);
}

TEST(CmReattemptTest, CmServiceIsAbandonedAfterBoundedReRequests) {
  TestbedConfig cfg;
  cfg.robustness.cm_reattempt = true;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(30));
  tb.ul3g_cs().ForceDropNext(10);  // every request (and re-request) dies
  tb.ue().Dial();
  tb.Run(Seconds(120));
  EXPECT_EQ(tb.ue().call_state(), UeDevice::CallState::kNone);
  EXPECT_EQ(tb.ue().cm_abandoned(), 1u);
  EXPECT_EQ(tb.ue().cm_retries(), 3u);
}

// --- EMM: attach backoff ------------------------------------------------

TEST(AttachBackoffTest, ReattachCycleRunsAfterMaxAttemptsExhausted) {
  TestbedConfig cfg;
  cfg.robustness.attach_backoff = true;
  Testbed tb(cfg);
  tb.ul4g().ForceDropNext(5);  // all five T3410-guarded attempts die
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(100));  // 5 x 15 s + 10 s backoff + the successful cycle
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_GE(tb.ue().attach_backoff_cycles(), 1u);
}

TEST(AttachBackoffTest, BaselineStaysOutOfServiceForever) {
  Testbed tb({});
  tb.ul4g().ForceDropNext(5);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(600));
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kOutOfService);
  EXPECT_EQ(tb.ue().attach_backoff_cycles(), 0u);
}

// --- Timer skew ---------------------------------------------------------

TEST(TimerSkewTest, ScaleStretchesNasGuardTimers) {
  Testbed tb({});
  tb.ue().set_timer_scale(3.0);  // T3410: 15 s -> 45 s
  tb.ul4g().ForceDropNext(1);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(30));
  // The nominal guard would have fired at 15 s; the skewed one has not.
  EXPECT_EQ(tb.ue().attach_attempts_total(), 1u);
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kWaitAttachAccept);
  tb.Run(Seconds(30));  // t = 60 s: the 45 s guard fired, retry went through
  EXPECT_EQ(tb.ue().attach_attempts_total(), 2u);
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
}

// --- Core element outage / restart --------------------------------------

TEST(CoreOutageTest, MmeOutageLosesUplinksWithoutQueueReplay) {
  Testbed tb({});
  tb.mme().BeginOutage();
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(100));  // all five attach attempts land on a dead MME
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kOutOfService);
  EXPECT_EQ(tb.mme().queued_while_down(), 0u);
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kDeregistered);
}

TEST(CoreOutageTest, MmeQueueAndReplayCompletesAttachAfterRestart) {
  TestbedConfig cfg;
  cfg.robustness.core_queue_replay = true;
  Testbed tb(cfg);
  tb.mme().BeginOutage();
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(10));  // inside the first T3410 window: one queued request
  EXPECT_EQ(tb.mme().queued_while_down(), 1u);
  tb.mme().Restart(/*lose_state=*/false);
  tb.Run(Seconds(5));
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);
  EXPECT_EQ(tb.mme().queued_while_down(), 0u);
}

TEST(CoreOutageTest, LossyMmeRestartForgetsRegistrationButNotHssView) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(5));
  ASSERT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);
  tb.mme().BeginOutage();
  tb.mme().Restart(/*lose_state=*/true);
  // The MME forgot the UE; the UE does not know (stale registration) and
  // the HSS still shows the 4G registration — the mismatch the chaos
  // campaigns probe with a follow-up TAU.
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kDeregistered);
  EXPECT_FALSE(tb.mme().bearer_active());
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_EQ(tb.hss().CurrentSystem(tb.imsi()), nas::System::k4G);
}

TEST(CoreOutageTest, HssOutageQueuesLocationReportsForReplay) {
  Testbed tb({});
  tb.hss().set_queue_while_down(true);
  tb.hss().BeginOutage();
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(5));
  // The attach completed (MME path is up); the location report queued.
  ASSERT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_EQ(tb.hss().CurrentSystem(tb.imsi()), nas::System::kNone);
  EXPECT_GE(tb.hss().queued_while_down(), 1u);
  tb.hss().Restart(/*lose_state=*/false);
  EXPECT_EQ(tb.hss().CurrentSystem(tb.imsi()), nas::System::k4G);
}

TEST(CoreOutageTest, MscOutageDropsLocationUpdateBaseline) {
  Testbed tb({});
  tb.msc().BeginOutage();
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(60));
  EXPECT_FALSE(tb.msc().registered());
  EXPECT_EQ(tb.ue().mm_state(), UeDevice::MmState::kLuInProgress);
}

TEST(CoreOutageTest, MscQueueReplayPlusRetryRecoversRegistration) {
  TestbedConfig cfg;
  cfg.robustness.nas_retry = true;
  cfg.robustness.core_queue_replay = true;
  Testbed tb(cfg);
  tb.msc().BeginOutage();
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(10));
  EXPECT_GE(tb.msc().queued_while_down(), 1u);
  tb.msc().Restart(/*lose_state=*/false);
  tb.Run(Seconds(60));
  EXPECT_TRUE(tb.msc().registered());
  EXPECT_NE(tb.ue().mm_state(), UeDevice::MmState::kLuInProgress);
}

}  // namespace
}  // namespace cnv::stack
