// Validation-phase reproduction of S5 (PS rate drop during CS calls) and S6
// (3G location-update failures propagated to 4G).
#include <gtest/gtest.h>

#include <functional>

#include "stack/testbed.h"
#include "trace/analyze.h"

namespace cnv::stack {
namespace {

void RunUntil(Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) {
    tb.Run(Millis(100));
  }
}

void SetupCallWithDataIn3g(Testbed& tb) {
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.ue().StartDataSession(50.0);  // saturating transfer (speed test)
  tb.Run(Seconds(2));
  ASSERT_TRUE(tb.ue().pdp_active());
  tb.ue().Dial();
  RunUntil(tb,
           [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
           Minutes(2));
  ASSERT_EQ(tb.ue().call_state(), UeDevice::CallState::kActive);
}

TEST(StackS5Test, DownlinkRateDropsDuringCall) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.ue().StartDataSession(50.0);
  tb.Run(Seconds(2));
  const double before =
      tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12);
  tb.ue().Dial();
  RunUntil(tb,
           [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
           Minutes(2));
  const double during =
      tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12);
  const double drop = 1.0 - during / before;
  EXPECT_NEAR(drop, 0.74, 0.03);  // §6.2: 73.9% (OP-I) / 74.8% (OP-II)
}

TEST(StackS5Test, OpIIUplinkCollapsesDuringCall) {
  TestbedConfig cfg;
  cfg.profile = OpII();
  Testbed tb(cfg);
  SetupCallWithDataIn3g(tb);
  const double during = tb.ue().CurrentPsRateMbps(sim::Direction::kUplink, 12);
  tb.ue().HangUp();
  tb.Run(Seconds(2));
  const double after = tb.ue().CurrentPsRateMbps(sim::Direction::kUplink, 12);
  EXPECT_NEAR(1.0 - during / after, 0.96, 0.03);  // §6.2: 96.1% drop
}

TEST(StackS5Test, TraceShowsModulationDowngrade) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  Testbed tb(cfg);
  SetupCallWithDataIn3g(tb);
  // Figure 10: the trace shows 64QAM disabled once the voice call starts.
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "64QAM disabled during CS voice call"),
            1u);
  tb.ue().HangUp();
  tb.Run(Seconds(1));
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "64QAM re-enabled"),
            1u);
}

TEST(StackS5Test, DomainDecouplingKeepsRateUp) {
  TestbedConfig cfg;
  cfg.profile = OpII();
  cfg.solutions.domain_decoupled = true;
  Testbed tb(cfg);
  SetupCallWithDataIn3g(tb);
  const double during =
      tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12);
  tb.ue().HangUp();
  tb.Run(Seconds(2));
  const double after =
      tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12);
  EXPECT_DOUBLE_EQ(during, after);  // no degradation at all
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "dedicated CS channel"),
            1u);
}

// ----------------------------------------------------------------- S6 ---

void RunCsfbCallAndHangUp(Testbed& tb) {
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().Dial();
  RunUntil(tb,
           [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
           Minutes(2));
  ASSERT_EQ(tb.ue().call_state(), UeDevice::CallState::kActive);
  tb.Run(Seconds(10));
  tb.ue().HangUp();
  RunUntil(tb, [&] { return tb.ue().serving() == nas::System::k4G; },
           Minutes(2));
  ASSERT_EQ(tb.ue().serving(), nas::System::k4G);
}

TEST(StackS6Test, OpILuFailurePropagatesAsImplicitDetach) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  cfg.profile.lu_failure_prob = 1.0;  // force the §6.3 race
  Testbed tb(cfg);
  RunCsfbCallAndHangUp(tb);
  RunUntil(tb, [&] { return tb.ue().oos_events() > 0; }, Seconds(10));
  EXPECT_GE(tb.ue().oos_events(), 1u);
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "implicitly detached"),
            1u);
}

TEST(StackS6Test, OpIIMscRejectionDetachesUe) {
  TestbedConfig cfg;
  cfg.profile = OpII();
  cfg.profile.lu_failure_prob = 1.0;
  Testbed tb(cfg);
  // Avoid the S3 stuck condition: no data session during the call.
  RunCsfbCallAndHangUp(tb);
  RunUntil(tb, [&] { return tb.ue().oos_events() > 0; }, Seconds(10));
  EXPECT_GE(tb.ue().oos_events(), 1u);
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "MSC temporarily not reachable"),
            1u);
}

TEST(StackS6Test, NoRaceMeansNoDetach) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  cfg.profile.lu_failure_prob = 0.0;
  Testbed tb(cfg);
  RunCsfbCallAndHangUp(tb);
  tb.Run(Seconds(10));
  EXPECT_EQ(tb.ue().oos_events(), 0u);
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
}

TEST(StackS6Test, MmeRecoveryRemedyAbsorbsTheFailure) {
  TestbedConfig cfg;
  cfg.profile = OpII();
  cfg.profile.lu_failure_prob = 1.0;
  cfg.solutions.mme_lu_recovery = true;
  Testbed tb(cfg);
  RunCsfbCallAndHangUp(tb);
  tb.Run(Seconds(10));
  // §9.3: the MME does not detach the UE; it recovers the update itself.
  EXPECT_EQ(tb.ue().oos_events(), 0u);
  EXPECT_GE(tb.mme().lu_recoveries(), 1u);
  EXPECT_TRUE(tb.msc().registered());
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
}

TEST(StackS6Test, DirectSgsFailureInjection) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.mme().RunSgsLocationUpdate(/*race_hit=*/true);
  tb.Run(Seconds(2));
  EXPECT_GE(tb.mme().detaches_sent(), 1u);
  EXPECT_TRUE(tb.ue().out_of_service() ||
              tb.ue().emm_state() == UeDevice::EmmState::kWaitAttachAccept ||
              tb.ue().emm_state() == UeDevice::EmmState::kRegistered);
  EXPECT_GE(tb.ue().oos_events(), 1u);
}

}  // namespace
}  // namespace cnv::stack
