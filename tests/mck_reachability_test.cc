#include "mck/reachability.h"

#include <gtest/gtest.h>

#include "mck/toy_models.h"
#include "model/s1_model.h"
#include "model/s3_model.h"

namespace cnv::mck {
namespace {

using toys::CounterModel;
using toys::LossyPingModel;

TEST(ReachabilityTest, CounterAlwaysReachesCap) {
  CounterModel m;
  const auto r = CheckRecoverable<CounterModel>(
      m, [&](const CounterModel::State& s) { return s.value < m.cap; },
      [&](const CounterModel::State& s) { return s.value == m.cap; });
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.stats.states_visited, 5u);
}

TEST(ReachabilityTest, LossyPingWithoutRetransmitIsUnrecoverable) {
  LossyPingModel m;
  m.retransmit = false;
  const auto r = CheckRecoverable<LossyPingModel>(
      m,
      [](const LossyPingModel::State& s) { return !s.sender_got_ack; },
      [](const LossyPingModel::State& s) { return s.sender_got_ack; });
  ASSERT_FALSE(r.holds);
  // The unrecoverable state: the single allowed PING was dropped.
  EXPECT_EQ(r.state.sends, 1);
  EXPECT_FALSE(r.state.ping_in_flight);
  EXPECT_FALSE(r.state.receiver_got_ping);
  // The trace leads from the initial state to it.
  LossyPingModel::State s = m.initial();
  for (const auto& a : r.trace) s = m.apply(s, a);
  EXPECT_TRUE(s == r.state);
}

TEST(ReachabilityTest, RetransmissionShrinksButKeepsTheDeadEnd) {
  LossyPingModel m;
  m.retransmit = true;
  const auto r = CheckRecoverable<LossyPingModel>(
      m,
      [](const LossyPingModel::State& s) { return !s.sender_got_ack; },
      [](const LossyPingModel::State& s) { return s.sender_got_ack; });
  // Bounded retries: all three sends can drop, still a dead end.
  ASSERT_FALSE(r.holds);
  EXPECT_GE(r.state.sends, 3);
}

TEST(ReachabilityTest, S1OutOfServiceIsAlwaysRecoverable) {
  // Figure 4's premise: the detach is temporary; re-attach always exists.
  model::S1Model m;
  const auto r = CheckRecoverable<model::S1Model>(
      m, [](const model::S1Model::State& s) { return s.out_of_service; },
      [](const model::S1Model::State& s) { return !s.out_of_service; });
  EXPECT_TRUE(r.holds);
}

TEST(ReachabilityTest, S3StuckIsSessionBoundedNotPermanent) {
  // Table 6's framing: the stuck period lasts as long as the data session;
  // stopping the session always frees the device — the stuck state is
  // recoverable, the harm is the (unbounded) delay caught by MM_OK.
  model::S3Model m;
  const auto r = CheckRecoverable<model::S3Model>(
      m, [&m](const model::S3Model::State& s) { return m.StuckIn3g(s); },
      [](const model::S3Model::State& s) {
        return s.serving == model::S3Model::Sys::k4G;
      });
  EXPECT_TRUE(r.holds);
}

TEST(ReachabilityTest, VacuousPendingHolds) {
  CounterModel m;
  const auto r = CheckRecoverable<CounterModel>(
      m, [](const CounterModel::State&) { return false; },
      [](const CounterModel::State&) { return false; });
  EXPECT_TRUE(r.holds);
}

TEST(ReachabilityTest, UnreachableGoalIsDetectedImmediately) {
  CounterModel m;
  const auto r = CheckRecoverable<CounterModel>(
      m, [](const CounterModel::State&) { return true; },
      [](const CounterModel::State& s) { return s.value > 100; });
  ASSERT_FALSE(r.holds);
  EXPECT_TRUE(r.trace.empty());  // already unrecoverable at the initial state
}

}  // namespace
}  // namespace cnv::mck
