// Storm-generator unit tests: deterministic bursts, injected accounting,
// trace markers, and state safety of the adversarial corpus.
#include <gtest/gtest.h>

#include <string>

#include "stack/testbed.h"
#include "trace/qxdm.h"

namespace cnv::stack {
namespace {

std::string RunStormScenario(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  cfg.seed = seed;
  cfg.overload.enabled = true;
  cfg.overload.policy = AdmissionPolicy::kRejectBackoff;
  cfg.overload.queue_capacity = 4;
  Testbed tb(cfg);
  tb.storm().MassAttach(Millis(10), 200, Millis(2));
  tb.storm().AdversarialNas(Seconds(1), 14, Millis(10));
  tb.sim().ScheduleAt(Millis(50),
                      [&tb] { tb.ue().PowerOn(nas::System::k4G); });
  tb.Run(Seconds(30));
  return trace::FormatLog(tb.traces().records());
}

TEST(StormTest, SameSeedSameStormSameTrace) {
  EXPECT_EQ(RunStormScenario(3), RunStormScenario(3));
}

TEST(StormTest, MassAttachInjectsExactlyCount) {
  Testbed tb({.profile = OpI(), .seed = 7});
  tb.storm().MassAttach(Millis(10), 123, Millis(1));
  tb.Run(Seconds(2));
  EXPECT_EQ(tb.storm().injected(), 123u);
  EXPECT_EQ(tb.mme().overload_stats().background_served, 123u);
}

TEST(StormTest, AdversarialReplaySlotsCountTwice) {
  Testbed tb({.profile = OpI(), .seed = 7});
  // Corpus slots 3 and 6 of every 7 are replays (two injections each):
  // 7 slots -> 9 messages.
  tb.storm().AdversarialNas(Millis(10), 7, Millis(10));
  tb.Run(Seconds(2));
  EXPECT_EQ(tb.storm().injected(), 9u);
}

TEST(StormTest, LastInjectionAtIsTheLatestBurstSlot) {
  Testbed tb({.profile = OpI(), .seed = 7});
  EXPECT_EQ(tb.storm().last_injection_at(), 0);
  tb.storm().MassAttach(Seconds(1), 10, Millis(100));  // ends at 1.9 s
  tb.storm().PagingFlood(Seconds(3), 5, Millis(10));   // ends at 3.04 s
  EXPECT_EQ(tb.storm().last_injection_at(), Seconds(3) + Millis(40));
}

TEST(StormTest, BurstsAnnounceThemselvesInTheTrace) {
  Testbed tb({.profile = OpI(), .seed = 7});
  tb.storm().MassAttach(Millis(10), 5, Millis(1));
  tb.storm().TaPingPong(Millis(100), 5, Millis(1));
  tb.storm().PagingFlood(Millis(200), 5, Millis(1));
  tb.storm().AdversarialNas(Millis(300), 2, Millis(1));
  tb.Run(Seconds(1));
  const std::string log = trace::FormatLog(tb.traces().records());
  EXPECT_NE(log.find("Mass attach storm begins"), std::string::npos);
  EXPECT_NE(log.find("TA ping-pong burst begins"), std::string::npos);
  EXPECT_NE(log.find("Paging flood begins"), std::string::npos);
  EXPECT_NE(log.find("Adversarial NAS burst begins"), std::string::npos);
}

TEST(StormTest, AdversarialCorpusIsScreenedWithoutStateCorruption) {
  Testbed tb({.profile = OpI(), .seed = 7});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(5));
  ASSERT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  ASSERT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);

  tb.storm().AdversarialNas(tb.sim().now() + Millis(10), 70, Millis(5));
  tb.Run(Seconds(10));

  // Every malformed / truncated / wrong-protocol / replayed entry was
  // screened somewhere; none perturbed the registered session.
  std::uint64_t screened = 0;
  for (const OverloadStats* s :
       {&tb.mme().overload_stats(), &tb.msc().overload_stats(),
        &tb.sgsn().overload_stats()}) {
    screened += s->integrity_rejected + s->replay_dropped;
  }
  EXPECT_GT(screened, 0u);
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);
  EXPECT_EQ(tb.ue().serving(), nas::System::k4G);
}

TEST(StormTest, TaPingPongAlternatesTrackingAreas) {
  Testbed tb({.profile = OpI(), .seed = 7});
  tb.storm().TaPingPong(Millis(10), 50, Millis(1));
  tb.Run(Seconds(2));
  EXPECT_EQ(tb.storm().injected(), 50u);
  EXPECT_EQ(tb.mme().overload_stats().background_served, 50u);
}

}  // namespace
}  // namespace cnv::stack
