// Acceptance: for each screening finding S1–S4, compiling the mck
// counterexample into a simulator script and replaying it on the paper's
// affected carrier profile must (a) reproduce the same finding probe via
// fault::RecoveryMonitor and (b) yield a concrete trace whose abstraction
// refines the model counterexample. This closes the screening -> validation
// loop end to end.
#include <string>

#include "conf/abstract.h"
#include "conf/compile.h"
#include "conf/script.h"
#include "core/conformance.h"
#include "gtest/gtest.h"
#include "mck/explorer.h"
#include "model/s1_model.h"
#include "model/s2_model.h"
#include "model/s3_model.h"
#include "model/s4_model.h"
#include "stack/carrier.h"

namespace cnv::conf {
namespace {

template <typename M>
mck::Violation<M> FirstViolation(const M& m, const std::string& property) {
  auto props = [&] {
    if constexpr (requires { M::Properties(); }) {
      return M::Properties();
    } else {
      return m.Properties();
    }
  }();
  const auto result = mck::Explore(m, props, {});
  const auto* v = result.FindViolation(property);
  EXPECT_NE(v, nullptr) << property;
  return v == nullptr ? mck::Violation<M>{} : *v;
}

// Replays a compiled script and asserts probe + refinement.
void AssertReproduces(const ScenarioScript& script,
                      const stack::CarrierProfile& profile) {
  const ReplayOutcome outcome = Replay(script, profile);
  EXPECT_TRUE(outcome.awaits_satisfied) << outcome.first_missed_await;
  EXPECT_TRUE(outcome.HasProbe(script.scenario))
      << "probe " << ToString(script.scenario) << " not reproduced on "
      << profile.name;
  const auto check =
      CheckRefinement(AbstractTrace(outcome.records), script.expected);
  EXPECT_TRUE(check.refines) << "first unmatched expected event: "
                             << (check.missing.empty()
                                     ? std::string("<none>")
                                     : ToString(check.missing[0]));
}

TEST(ConfReplayTest, S1CounterexampleReproducesOnOpI) {
  const model::S1Model m;
  const auto v = FirstViolation(m, model::kPacketServiceOk);
  const auto r = CompileS1(m, v);
  ASSERT_TRUE(r.ok) << r.error;
  AssertReproduces(r.script, stack::OpI());
}

TEST(ConfReplayTest, S2CounterexampleReproducesOnOpI) {
  const model::S2Model m;
  const auto v = FirstViolation(m, model::kPacketServiceOk);
  const auto r = CompileS2(m, v);
  ASSERT_TRUE(r.ok) << r.error;
  AssertReproduces(r.script, stack::OpI());
}

TEST(ConfReplayTest, S3CounterexampleReproducesOnOpII) {
  // S3 is carrier-specific: only the cell-reselection carrier (OP-II in the
  // paper) strands the device in 3G after the CSFB call.
  model::S3Model::Config cfg;
  cfg.policy = model::SwitchPolicy::kCellReselection;
  const model::S3Model m(cfg);
  const auto v = FirstViolation(m, model::kMmOk);
  const auto r = CompileS3(m, v);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(stack::OpII().csfb_return_policy,
            model::SwitchPolicy::kCellReselection);
  AssertReproduces(r.script, stack::OpII());
}

TEST(ConfReplayTest, S4CounterexampleReproducesOnOpI) {
  const model::S4Model m;
  const auto v = FirstViolation(m, model::kCallServiceOk);
  const auto r = CompileS4(m, v);
  ASSERT_TRUE(r.ok) << r.error;
  AssertReproduces(r.script, stack::OpI());
}

TEST(ConfReplayTest, ReplayIsDeterministicForFixedSeed) {
  const model::S1Model m;
  const auto v = FirstViolation(m, model::kPacketServiceOk);
  const auto r = CompileS1(m, v);
  ASSERT_TRUE(r.ok) << r.error;
  const auto a = Replay(r.script, stack::OpI());
  const auto b = Replay(r.script, stack::OpI());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i], b.records[i]) << "record " << i;
  }
}

// The same loop through the top-level runner: every screening finding ends
// in a confirmed cross-check on its affected carrier.
TEST(ConfReplayTest, ConformanceRunnerConfirmsAllScreeningFindings) {
  const core::ConformanceRunner runner;
  const struct {
    core::FindingId id;
    stack::CarrierProfile profile;
  } kCases[] = {
      {core::FindingId::kS1, stack::OpI()},
      {core::FindingId::kS2, stack::OpI()},
      {core::FindingId::kS3, stack::OpII()},
      {core::FindingId::kS4, stack::OpI()},
  };
  for (const auto& c : kCases) {
    const auto res = runner.CrossCheck(c.id, c.profile);
    EXPECT_EQ(res.verdict, Verdict::kConfirmed)
        << core::ToString(c.id) << " on " << c.profile.name << ": "
        << res.detail;
    EXPECT_TRUE(res.model_violation);
    EXPECT_TRUE(res.probe_reproduced);
    EXPECT_TRUE(res.refined);
    EXPECT_FALSE(res.counterexample.empty());
  }
}

}  // namespace
}  // namespace cnv::conf
