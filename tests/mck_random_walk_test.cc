#include "mck/random_walk.h"

#include <gtest/gtest.h>

#include "mck/toy_models.h"

namespace cnv::mck {
namespace {

using toys::CounterModel;
using toys::PetersonModel;

PropertySet<CounterModel::State> BelowCap(int cap) {
  return {{"below_cap",
           [cap](const CounterModel::State& s) { return s.value <= cap; },
           ""}};
}

TEST(RandomWalkTest, FindsEasyViolation) {
  CounterModel m;
  m.buggy = true;
  Rng rng(1);
  const auto r = RandomWalk(m, BelowCap(m.cap), rng);
  EXPECT_FALSE(r.Holds("below_cap"));
  const auto* v = r.FindViolation("below_cap");
  ASSERT_NE(v, nullptr);
  // The returned trace must replay to the violating state.
  CounterModel::State s = m.initial();
  for (const auto& a : v->trace) s = m.apply(s, a);
  EXPECT_TRUE(s == v->state);
}

TEST(RandomWalkTest, CleanModelProducesNoViolation) {
  CounterModel m;
  Rng rng(2);
  WalkOptions opt;
  opt.walks = 200;
  const auto r = RandomWalk(m, BelowCap(m.cap), rng, opt);
  EXPECT_TRUE(r.Holds("below_cap"));
  EXPECT_EQ(r.stats.walks_done, 200u);
}

TEST(RandomWalkTest, StopsEarlyOnceAllPropertiesViolated) {
  CounterModel m;
  m.buggy = true;
  Rng rng(3);
  WalkOptions opt;
  opt.walks = 100'000;
  const auto r = RandomWalk(m, BelowCap(m.cap), rng, opt);
  EXPECT_LT(r.stats.walks_done, 100'000u);
}

TEST(RandomWalkTest, RespectsStepBound) {
  CounterModel m;
  m.cap = 1'000'000;  // effectively unbounded chain
  Rng rng(4);
  WalkOptions opt;
  opt.walks = 3;
  opt.max_steps_per_walk = 10;
  const auto r = RandomWalk(m, BelowCap(m.cap), rng, opt);
  EXPECT_LE(r.stats.steps_taken, 30u);
  EXPECT_LE(r.stats.distinct_states, 31u);
}

TEST(RandomWalkTest, CountsDeadEnds) {
  CounterModel m;  // cap 4: every walk hits value==4 and stops
  Rng rng(5);
  WalkOptions opt;
  opt.walks = 10;
  opt.max_steps_per_walk = 100;
  const auto r = RandomWalk(m, BelowCap(m.cap), rng, opt);
  EXPECT_EQ(r.stats.dead_ends, 10u);
}

TEST(RandomWalkTest, MoreWalksCoverMoreStates) {
  PetersonModel m;
  Rng rng1(6);
  Rng rng2(6);
  WalkOptions few;
  few.walks = 2;
  few.max_steps_per_walk = 5;
  WalkOptions many;
  many.walks = 200;
  many.max_steps_per_walk = 50;
  const auto small = RandomWalk(m, {}, rng1, few);
  const auto big = RandomWalk(m, {}, rng2, many);
  // The paper's sampling-rate claim (§3.2.1): higher sampling exposes more
  // of the behaviour space.
  EXPECT_GT(big.stats.distinct_states, small.stats.distinct_states);
}

TEST(RandomWalkTest, DeterministicGivenSeed) {
  CounterModel m;
  m.buggy = true;
  Rng rng_a(7);
  Rng rng_b(7);
  const auto a = RandomWalk(m, BelowCap(m.cap), rng_a);
  const auto b = RandomWalk(m, BelowCap(m.cap), rng_b);
  EXPECT_EQ(a.stats.steps_taken, b.stats.steps_taken);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  if (!a.violations.empty()) {
    EXPECT_EQ(a.violations[0].trace.size(), b.violations[0].trace.size());
  }
}

}  // namespace
}  // namespace cnv::mck
