// Property-based sweeps over the screening models: for every configuration
// cell, structural invariants must hold in EVERY reachable state, and every
// counterexample must replay. The reachable sets are enumerated with the
// explorer itself (a recording property).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "mck/explorer.h"
#include "model/s1_model.h"
#include "model/s2_model.h"
#include "model/s3_model.h"
#include "model/s4_model.h"

namespace cnv::model {
namespace {

template <typename M>
std::vector<typename M::State> ReachableStates(const M& m) {
  std::vector<typename M::State> seen;
  mck::PropertySet<typename M::State> collect = {
      {"collect",
       [&seen](const typename M::State& s) {
         seen.push_back(s);
         return true;
       },
       ""}};
  const auto r = mck::Explore(m, collect);
  EXPECT_FALSE(r.stats.truncated);
  return seen;
}

// ------------------------------------------------------------------- S1 --

class S1Sweep : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {
 protected:
  S1Model MakeModel() const {
    S1Model::Config cfg;
    cfg.fix_keep_context = std::get<0>(GetParam());
    cfg.fix_reactivate_bearer = std::get<1>(GetParam());
    cfg.allow_user_data_toggle = std::get<2>(GetParam());
    return S1Model(cfg);
  }
};

TEST_P(S1Sweep, StructuralInvariantsHoldEverywhere) {
  const auto m = MakeModel();
  for (const auto& s : ReachableStates(m)) {
    // The contexts are translations of each other: never both active.
    EXPECT_FALSE(s.eps_active && s.pdp_active);
    // An EPS bearer context only exists while camped on 4G.
    if (s.eps_active) {
      EXPECT_EQ(s.serving, S1Model::Sys::k4G);
    }
    // A PDP context only exists while camped on 3G.
    if (s.pdp_active) {
      EXPECT_EQ(s.serving, S1Model::Sys::k3G);
    }
    // Out of service means deregistered everywhere.
    if (s.out_of_service) {
      EXPECT_FALSE(s.emm_registered);
      EXPECT_FALSE(s.gmm_registered);
      EXPECT_FALSE(s.eps_active);
    }
  }
}

TEST_P(S1Sweep, CounterexamplesAlwaysReplay) {
  const auto m = MakeModel();
  const auto r = mck::Explore(m, S1Model::Properties());
  for (const auto& v : r.violations) {
    auto s = m.initial();
    for (const auto& a : v.trace) s = m.apply(s, a);
    EXPECT_TRUE(s == v.state);
  }
}

TEST_P(S1Sweep, ReactivateBearerFixDecidesTheProperty) {
  const auto m = MakeModel();
  const auto r = mck::Explore(m, S1Model::Properties());
  if (std::get<1>(GetParam())) {
    EXPECT_TRUE(r.Holds(kPacketServiceOk));
  } else {
    // Without the reactivation remedy, unavoidable deactivation causes
    // always leave a detach path regardless of the other knobs.
    EXPECT_FALSE(r.Holds(kPacketServiceOk));
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, S1Sweep,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

// ------------------------------------------------------------------- S2 --

class S2Sweep : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {
 protected:
  S2Model MakeModel() const {
    S2Model::Config cfg;
    cfg.reliable_shim = std::get<0>(GetParam());
    cfg.allow_loss = std::get<1>(GetParam());
    cfg.allow_duplicate = std::get<2>(GetParam());
    return S2Model(cfg);
  }
};

TEST_P(S2Sweep, StructuralInvariantsHoldEverywhere) {
  const auto m = MakeModel();
  for (const auto& s : ReachableStates(m)) {
    // The MME only holds a bearer for a completed registration.
    if (s.mme_bearer) {
      EXPECT_EQ(s.mme, S2Model::MmeEmm::kRegistered);
    }
    // A detached UE is out of service and has no bearer.
    if (s.ue == S2Model::UeEmm::kDetached) {
      EXPECT_TRUE(s.out_of_service);
      EXPECT_FALSE(s.ue_bearer);
    }
    // Only Attach Requests are ever deferred by a loaded BS.
    EXPECT_TRUE(s.deferred == S2Model::Msg::kNone ||
                s.deferred == S2Model::Msg::kAttachRequest);
    // The UE never sends more attach requests than the retry budget.
    EXPECT_LE(s.attach_sends, 2);
  }
}

TEST_P(S2Sweep, ShimDecidesBothProperties) {
  const auto m = MakeModel();
  const auto r = mck::Explore(m, S2Model::Properties());
  const bool shim = std::get<0>(GetParam());
  const bool loss = std::get<1>(GetParam());
  const bool dup = std::get<2>(GetParam());
  if (shim || (!loss && !dup)) {
    EXPECT_TRUE(r.Holds(kPacketServiceOk));
    EXPECT_TRUE(r.Holds("PacketService_NoTransientLoss"));
  } else {
    EXPECT_FALSE(r.Holds(kPacketServiceOk));
  }
  // The transient-teardown path needs the duplicate mechanism.
  if (!dup || shim) {
    EXPECT_TRUE(r.Holds("PacketService_NoTransientLoss"));
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, S2Sweep,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

// ------------------------------------------------------------------- S3 --

class S3Sweep
    : public ::testing::TestWithParam<std::tuple<SwitchPolicy, bool>> {
 protected:
  S3Model MakeModel() const {
    S3Model::Config cfg;
    cfg.policy = std::get<0>(GetParam());
    cfg.fix_csfb_tag = std::get<1>(GetParam());
    return S3Model(cfg);
  }
};

TEST_P(S3Sweep, StructuralInvariantsHoldEverywhere) {
  const auto m = MakeModel();
  for (const auto& s : ReachableStates(m)) {
    // A call exists only while fallen back to 3G.
    if (s.call != S3Model::Call::kNone) {
      EXPECT_EQ(s.serving, S3Model::Sys::k3G);
    }
    // Camped on 4G: the 3G radio is idle.
    if (s.serving == S3Model::Sys::k4G) {
      EXPECT_EQ(s.rrc3g, Rrc3g::kIdle);
    }
    // An active call always holds DCH.
    if (s.call == S3Model::Call::kActive) {
      EXPECT_EQ(s.rrc3g, Rrc3g::kDch);
    }
    // The stuck condition requires ongoing data.
    if (m.StuckIn3g(s)) {
      EXPECT_NE(s.data, DataRate::kNone);
      EXPECT_EQ(std::get<0>(GetParam()), SwitchPolicy::kCellReselection);
      EXPECT_FALSE(std::get<1>(GetParam()));
    }
  }
}

TEST_P(S3Sweep, OnlyUnfixedCellReselectionViolatesMmOk) {
  const auto m = MakeModel();
  const auto r = mck::Explore(m, m.Properties());
  const bool expect_violation =
      std::get<0>(GetParam()) == SwitchPolicy::kCellReselection &&
      !std::get<1>(GetParam());
  EXPECT_EQ(!r.Holds(kMmOk), expect_violation);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, S3Sweep,
    ::testing::Combine(::testing::Values(SwitchPolicy::kReleaseWithRedirect,
                                         SwitchPolicy::kHandover,
                                         SwitchPolicy::kCellReselection),
                       ::testing::Bool()));

// ------------------------------------------------------------------- S4 --

class S4Sweep : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {
 protected:
  S4Model MakeModel() const {
    S4Model::Config cfg;
    cfg.decoupled = std::get<0>(GetParam());
    cfg.model_cs = std::get<1>(GetParam());
    cfg.model_ps = std::get<2>(GetParam());
    return S4Model(cfg);
  }
};

TEST_P(S4Sweep, StructuralInvariantsHoldEverywhere) {
  const auto m = MakeModel();
  for (const auto& s : ReachableStates(m)) {
    EXPECT_FALSE(s.call_pending && s.call_active);
    EXPECT_FALSE(s.data_pending && s.data_active);
    // HOL blocking flags can only arise in the coupled design.
    if (std::get<0>(GetParam())) {
      EXPECT_FALSE(s.call_delayed);
      EXPECT_FALSE(s.call_rejected);
      EXPECT_FALSE(s.data_delayed);
    }
    // Domain isolation: no CS activity when CS is not modeled, etc.
    if (!std::get<1>(GetParam())) {
      EXPECT_FALSE(s.call_pending || s.call_active || s.call_delayed);
    }
    if (!std::get<2>(GetParam())) {
      EXPECT_FALSE(s.data_pending || s.data_active || s.data_delayed);
    }
  }
}

TEST_P(S4Sweep, DecouplingDecidesTheProperties) {
  const auto m = MakeModel();
  const auto r = mck::Explore(m, S4Model::Properties());
  const bool decoupled = std::get<0>(GetParam());
  const bool cs = std::get<1>(GetParam());
  const bool ps = std::get<2>(GetParam());
  EXPECT_EQ(!r.Holds(kCallServiceOk), !decoupled && cs);
  EXPECT_EQ(!r.Holds(kPacketServiceOk), !decoupled && ps);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, S4Sweep,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

}  // namespace
}  // namespace cnv::model
