// NAS ingress fuzzing: randomized bit-flipped / truncated / wrong-protocol
// / replayed / reordered messages blasted at every core element under every
// admission policy. The properties under test: no crash, the accounting
// identity holds (everything offered is admitted, rejected, shed, screened
// or replay-dropped), the service queue always drains, and an already
// registered foreground session is never corrupted by the garbage.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "stack/testbed.h"
#include "util/rng.h"

namespace cnv::stack {
namespace {

constexpr int kKinds = static_cast<int>(nas::MsgKind::kHssUpdateLocationAck);
constexpr int kProtocols = static_cast<int>(nas::Protocol::kRrc4g);

nas::Message RandomMessage(Rng& rng, std::uint64_t* next_uid) {
  nas::Message m;
  m.kind = static_cast<nas::MsgKind>(rng.UniformInt(0, kKinds));
  m.protocol = static_cast<nas::Protocol>(rng.UniformInt(0, kProtocols));
  m.imsi = nas::Imsi{static_cast<std::uint64_t>(
      rng.UniformInt(901'000'000'000'000LL, 901'000'000'000'999LL))};
  switch (rng.UniformInt(0, 3)) {
    case 0:
      m.integrity = nas::MsgIntegrity::kMalformed;  // bit flips
      break;
    case 1:
      m.integrity = nas::MsgIntegrity::kTruncated;
      break;
    case 2:
      m.integrity = nas::MsgIntegrity::kWrongProtocol;
      break;
    default:
      m.integrity = nas::MsgIntegrity::kOk;
      break;
  }
  // Half of the valid-integrity messages carry a uid so replays are
  // detectable (and re-sending them below actually exercises the cache).
  if (m.integrity == nas::MsgIntegrity::kOk && rng.Bernoulli(0.5)) {
    m.uid = ++*next_uid;
  }
  // The fuzzer is an adversarial *background* UE: synthetic keeps the core
  // from pushing replies at the foreground device's links.
  m.synthetic = true;
  return m;
}

class NasIngressFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NasIngressFuzz, GarbageNeverCrashesNorCorruptsTheSession) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kUnbounded, AdmissionPolicy::kRejectBackoff,
        AdmissionPolicy::kPriorityShed}) {
    TestbedConfig cfg;
    cfg.profile = OpI();
    cfg.seed = seed;
    cfg.overload.enabled = (seed % 2) == 0;  // also fuzz the legacy core
    cfg.overload.policy = policy;
    cfg.overload.queue_capacity = 4;
    cfg.overload.service_time = Millis(2);
    Testbed tb(cfg);

    // A healthy registered session first; the fuzz must not disturb it.
    tb.ue().PowerOn(nas::System::k4G);
    tb.Run(Seconds(5));
    ASSERT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);

    // Generate a batch, then deliver it in a random order (reordering) with
    // random replays (duplicate uids) at randomized instants.
    Rng rng(seed * 1'000'003 + static_cast<std::uint64_t>(policy));
    std::uint64_t next_uid = 0;
    std::vector<nas::Message> batch;
    for (int i = 0; i < 400; ++i) batch.push_back(RandomMessage(rng, &next_uid));
    for (int i = static_cast<int>(batch.size()) - 1; i > 0; --i) {
      std::swap(batch[static_cast<std::size_t>(i)],
                batch[static_cast<std::size_t>(rng.UniformInt(0, i))]);
    }
    const SimTime t0 = tb.sim().now();
    for (const nas::Message& m : batch) {
      const SimTime at = t0 + Millis(rng.UniformInt(1, 2000));
      const int replays = m.uid != 0 && rng.Bernoulli(0.3) ? 2 : 1;
      for (int r = 0; r < replays; ++r) {
        tb.sim().ScheduleAt(at + Millis(r), [&tb, m, &rng] {
          switch (rng.UniformInt(0, 2)) {
            case 0: tb.mme().OnUplink(m); break;
            case 1: tb.msc().OnUplink(m); break;
            default: tb.sgsn().OnUplink(m); break;
          }
        });
      }
    }
    tb.Run(Seconds(60));

    // Queues fully drained, and every injected message is accounted for:
    // screened out or offered to the admission layer.
    std::uint64_t accounted = 0;
    for (const CoreElement* e :
         {static_cast<const CoreElement*>(&tb.mme()),
          static_cast<const CoreElement*>(&tb.msc()),
          static_cast<const CoreElement*>(&tb.sgsn())}) {
      EXPECT_EQ(e->queue_depth(), 0u);
      const OverloadStats& s = e->overload_stats();
      accounted += s.offered() + s.integrity_rejected + s.replay_dropped;
    }
    // >= because the foreground session's own signalling counts too.
    EXPECT_GE(accounted, 400u);
    // The foreground session survived 400+ garbage messages untouched.
    EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered)
        << "policy=" << ToString(policy) << " seed=" << seed;
    EXPECT_EQ(tb.ue().serving(), nas::System::k4G);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NasIngressFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace cnv::stack
