// Carrier profile facts: the OP-I / OP-II policy splits the experiments
// depend on, and the latency-distribution sampling contract.
#include <gtest/gtest.h>

#include "stack/carrier.h"
#include "util/stats.h"

namespace cnv::stack {
namespace {

TEST(CarrierTest, PolicySplitMatchesThePaper) {
  const auto op1 = OpI();
  const auto op2 = OpII();
  // §5.3.2: OP-I redirects (fast), OP-II reselects (stuck while data).
  EXPECT_EQ(op1.csfb_return_policy, model::SwitchPolicy::kReleaseWithRedirect);
  EXPECT_EQ(op2.csfb_return_policy, model::SwitchPolicy::kCellReselection);
  // §6.3: OP-I defers the first CSFB update, OP-II does not.
  EXPECT_TRUE(op1.defer_csfb_lu);
  EXPECT_FALSE(op2.defer_csfb_lu);
  EXPECT_EQ(op1.lu_failure_mode, LuFailureMode::kFirstUpdateDisrupted);
  EXPECT_EQ(op2.lu_failure_mode, LuFailureMode::kSecondUpdateRejected);
  // §6.2: only OP-II collapses the uplink during calls.
  EXPECT_GT(op1.channel_policy.ul_call_penalty, 0.9);
  EXPECT_LT(op2.channel_policy.ul_call_penalty, 0.2);
  // Neither deployed VoLTE in the paper's timeframe.
  EXPECT_FALSE(op1.volte_enabled);
  EXPECT_FALSE(op2.volte_enabled);
}

TEST(CarrierTest, UpdateLatencyOrderingMatchesFigure8) {
  Rng rng(5);
  Samples lau1, lau2;
  for (int i = 0; i < 400; ++i) {
    lau1.Add(ToSeconds(OpI().lau_processing.Sample(rng)));
    lau2.Add(ToSeconds(OpII().lau_processing.Sample(rng)));
  }
  // OP-I: all > 2 s, average ~3 s. OP-II: average ~1.9 s.
  EXPECT_GT(lau1.Min(), 2.0);
  EXPECT_NEAR(lau1.Mean(), 3.0, 0.4);
  EXPECT_NEAR(lau2.Mean(), 1.9, 0.3);
  EXPECT_LT(lau2.Mean(), lau1.Mean());
}

TEST(CarrierTest, ReattachTailsMatchFigure4) {
  Rng rng(6);
  Samples r1, r2;
  for (int i = 0; i < 400; ++i) {
    r1.Add(ToSeconds(OpI().reattach_delay.Sample(rng)));
    r2.Add(ToSeconds(OpII().reattach_delay.Sample(rng)));
  }
  EXPECT_GE(r1.Min(), 2.4);
  EXPECT_LE(r1.Max(), 15.0);
  EXPECT_LE(r2.Max(), 24.7);
  EXPECT_GT(r2.Median(), r1.Median());  // OP-II recovers slower
}

class LatencyDistSweep : public ::testing::TestWithParam<int> {};

TEST_P(LatencyDistSweep, SamplesRespectTheClampAndCenter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const LatencyDist d{.median_s = 2.0, .sigma = 0.5, .min_s = 0.8,
                      .max_s = 6.0};
  Samples s;
  for (int i = 0; i < 2000; ++i) {
    const double v = ToSeconds(d.Sample(rng));
    EXPECT_GE(v, 0.8);
    EXPECT_LE(v, 6.0);
    s.Add(v);
  }
  // Log-normal: the median of samples sits near the configured median.
  EXPECT_NEAR(s.Median(), 2.0, 0.25);
}

TEST_P(LatencyDistSweep, DegenerateDistributionIsConstant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const LatencyDist d{.median_s = 3.0, .sigma = 1e-9, .min_s = 3.0,
                      .max_s = 3.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(d.Sample(rng), Seconds(3));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyDistSweep, ::testing::Range(1, 6));

}  // namespace
}  // namespace cnv::stack
