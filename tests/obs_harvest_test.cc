// Harvest-layer byte-identity for the city kernel metrics. The scale PR's
// contract is that telemetry is a pure function of the deterministic run:
// harvesting two byte-identical runs — serial and parallel — must render
// byte-identical metric tables, down to every wheel-tier counter.

#include <string>

#include <gtest/gtest.h>

#include "obs/harvest.h"
#include "obs/metrics.h"
#include "par/pool.h"
#include "stack/city.h"

namespace cnv::obs {
namespace {

stack::CityConfig TestCity() {
  stack::CityConfig cfg;
  cfg.ues = 12'000;
  cfg.cells = 48;
  cfg.horizon = Minutes(3);
  cfg.seed = 11;
  cfg.sample_every = 512;
  return cfg;
}

TEST(HarvestCityTest, SerialAndParallelRunsHarvestByteIdentical) {
  const stack::CityConfig cfg = TestCity();

  stack::CityEngine serial(cfg, stack::CityKernelMode::kWheel);
  const stack::CityReport sr = serial.Run(nullptr);

  par::WorkerPool pool(3);
  stack::CityEngine parallel(cfg, stack::CityKernelMode::kWheel);
  const stack::CityReport pr = parallel.Run(&pool);

  Registry a, b;
  HarvestCity(a, sr);
  HarvestCity(b, pr);
  EXPECT_EQ(a.SummaryTable(), b.SummaryTable());
}

TEST(HarvestCityTest, ExportsKernelScaleMetrics) {
  stack::CityEngine eng(TestCity(), stack::CityKernelMode::kWheel);
  const stack::CityReport r = eng.Run(nullptr);

  Registry reg;
  HarvestCity(reg, r);
  // The scale metrics the perf work is judged on: wheel occupancy per tier,
  // lookahead stalls, arena footprint, sampled-vs-dropped trace records,
  // and the reaper's pre-pop tombstone kills.
  for (const char* name :
       {"city.wheel.l0.inserts", "city.wheel.l0.occupancy_peak",
        "city.wheel.l1.inserts", "city.wheel.l2.inserts",
        "city.wheel.overflow.inserts", "city.wheel.sorted_ticks",
        "city.wheel.cascaded", "city.wheel.reaped", "city.shard_stalls",
        "city.windows", "city.arena_bytes", "city.bytes_per_ue",
        "city.trace_emitted", "city.trace_dropped", "city.stale_events"}) {
    EXPECT_TRUE(reg.Has(name)) << name;
  }
}

TEST(HarvestCityTest, HarvestIsAPureFunctionOfTheReport) {
  stack::CityEngine eng(TestCity(), stack::CityKernelMode::kWheel);
  const stack::CityReport r = eng.Run(nullptr);
  Registry a, b;
  HarvestCity(a, r);
  HarvestCity(b, r);
  EXPECT_EQ(a.SummaryTable(), b.SummaryTable());
}

}  // namespace
}  // namespace cnv::obs
