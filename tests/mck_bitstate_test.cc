#include "mck/bitstate.h"

#include <gtest/gtest.h>

#include "mck/toy_models.h"
#include "model/s1_model.h"
#include "model/s2_model.h"
#include "model/s4_model.h"

namespace cnv::mck {
namespace {

using toys::CounterModel;
using toys::PetersonModel;

PropertySet<CounterModel::State> BelowCap(int cap) {
  return {{"below_cap",
           [cap](const CounterModel::State& s) { return s.value <= cap; },
           ""}};
}

TEST(BitstateTest, AgreesWithExactSearchOnCleanModel) {
  CounterModel m;
  const auto exact = Explore(m, BelowCap(m.cap));
  const auto bit = BitstateExplore(m, BelowCap(m.cap));
  EXPECT_TRUE(exact.Holds("below_cap"));
  EXPECT_TRUE(bit.Holds("below_cap"));
  EXPECT_EQ(bit.stats.states_stored, exact.stats.states_visited);
  EXPECT_FALSE(bit.stats.truncated);
}

TEST(BitstateTest, FindsTheBugWithAReplayableTrace) {
  CounterModel m;
  m.buggy = true;
  const auto bit = BitstateExplore(m, BelowCap(m.cap));
  ASSERT_FALSE(bit.Holds("below_cap"));
  const auto& v = bit.violations.front();
  // Counterexamples come from executed paths: they always replay.
  CounterModel::State s = m.initial();
  for (const auto& a : v.trace) s = m.apply(s, a);
  EXPECT_TRUE(s == v.state);
  EXPECT_GT(s.value, m.cap);
}

TEST(BitstateTest, PetersonMutexHoldsUnderBitstate) {
  PetersonModel m;
  PropertySet<PetersonModel::State> props = {
      {"mutex",
       [](const PetersonModel::State& s) {
         return !PetersonModel::BothCritical(s);
       },
       ""}};
  const auto bit = BitstateExplore(m, props);
  EXPECT_TRUE(bit.Holds("mutex"));
  // The exact reachable count is 109; the bloom filter may merge a few.
  const auto exact = Explore(m, props);
  EXPECT_LE(bit.stats.states_stored, exact.stats.states_visited);
  EXPECT_GE(bit.stats.states_stored, exact.stats.states_visited * 9 / 10);
}

TEST(BitstateTest, ScreeningModelsGiveTheSameVerdicts) {
  {
    model::S1Model m;
    const auto bit = BitstateExplore(m, model::S1Model::Properties());
    EXPECT_FALSE(bit.Holds(model::kPacketServiceOk));
  }
  {
    model::S2Model::Config cfg;
    cfg.reliable_shim = true;
    model::S2Model m(cfg);
    const auto bit = BitstateExplore(m, model::S2Model::Properties());
    EXPECT_TRUE(bit.Holds(model::kPacketServiceOk));
  }
  {
    model::S4Model m;
    const auto bit = BitstateExplore(m, model::S4Model::Properties());
    EXPECT_FALSE(bit.Holds(model::kCallServiceOk));
  }
}

TEST(BitstateTest, TinyFilterTruncatesGracefully) {
  // An absurdly small filter saturates: the search misses states but never
  // crashes or reports spurious violations.
  CounterModel m;
  m.cap = 5000;
  BitstateOptions opt;
  opt.log2_bits = 8;  // 256 bits for 5000 states
  const auto bit = BitstateExplore(m, BelowCap(m.cap), opt);
  EXPECT_TRUE(bit.Holds("below_cap"));
  EXPECT_LT(bit.stats.states_stored, 5000u);
  // Saturated enough that SPIN's hash-factor warning would fire.
  EXPECT_GT(bit.stats.fill_ratio, 0.2);
}

TEST(BitstateTest, DepthBoundTruncates) {
  CounterModel m;
  m.cap = 1000;
  BitstateOptions opt;
  opt.max_depth = 10;
  const auto bit = BitstateExplore(m, BelowCap(m.cap), opt);
  EXPECT_TRUE(bit.stats.truncated);
  EXPECT_LE(bit.stats.max_depth_reached, 11u);
}

TEST(BitstateTest, TransitionBudgetTruncates) {
  CounterModel m;
  m.cap = 100000;
  BitstateOptions opt;
  opt.max_transitions = 50;
  const auto bit = BitstateExplore(m, BelowCap(m.cap), opt);
  EXPECT_TRUE(bit.stats.truncated);
  EXPECT_LE(bit.stats.transitions, 50u);
}

}  // namespace
}  // namespace cnv::mck
