#include "stack/scenarios.h"

#include <gtest/gtest.h>

namespace cnv::stack {
namespace {

TEST(ScenariosTest, AttachIn4gSettlesRegistered) {
  Testbed tb({});
  EXPECT_TRUE(scenario::AttachIn4g(tb));
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);
}

TEST(ScenariosTest, AttachIn3gRegistersBothDomains) {
  Testbed tb({});
  EXPECT_TRUE(scenario::AttachIn3g(tb));
  EXPECT_TRUE(tb.msc().registered());
  EXPECT_TRUE(tb.sgsn().registered());
}

TEST(ScenariosTest, ProvokeS1LeavesNoPdpContext) {
  Testbed tb({});
  ASSERT_TRUE(scenario::ProvokeS1(tb));
  EXPECT_FALSE(tb.ue().pdp_active());
  EXPECT_FALSE(tb.sgsn().pdp_active());
  EXPECT_EQ(tb.ue().serving(), nas::System::k3G);
  // The detach then follows on the next return to 4G.
  tb.ue().SwitchTo4g();
  scenario::RunUntil(tb, [&] { return tb.ue().oos_events() > 0; },
                     Seconds(5));
  EXPECT_GE(tb.ue().oos_events(), 1u);
}

TEST(ScenariosTest, CsfbRoundTripReturnsTo4gOnBothCarriers) {
  for (const auto& profile : {OpI(), OpII()}) {
    TestbedConfig cfg;
    cfg.profile = profile;
    cfg.profile.lu_failure_prob = 0;
    Testbed tb(cfg);
    ASSERT_TRUE(scenario::AttachIn4g(tb)) << profile.name;
    tb.ue().StartDataSession(0.2);
    tb.Run(Seconds(1));
    EXPECT_TRUE(scenario::CsfbCallRoundTrip(tb)) << profile.name;
    EXPECT_EQ(tb.ue().serving(), nas::System::k4G) << profile.name;
    EXPECT_EQ(tb.ue().stuck_in_3g_seconds().Count(), 1u) << profile.name;
  }
}

TEST(ScenariosTest, RunUntilReportsTimeout) {
  Testbed tb({});
  EXPECT_FALSE(scenario::RunUntil(tb, [] { return false; }, Seconds(1)));
  EXPECT_TRUE(scenario::RunUntil(tb, [] { return true; }, Seconds(1)));
}

TEST(ScenariosTest, EstablishCallWorksIn3g) {
  Testbed tb({});
  ASSERT_TRUE(scenario::AttachIn3g(tb));
  tb.Run(Seconds(10));  // clear MM-WAIT-FOR-NET-CMD
  EXPECT_TRUE(scenario::EstablishCall(tb));
  EXPECT_EQ(tb.ue().call_state(), UeDevice::CallState::kActive);
}

}  // namespace
}  // namespace cnv::stack
