#include "model/s1_model.h"

#include <gtest/gtest.h>

#include "mck/explorer.h"

namespace cnv::model {
namespace {

using mck::Explore;
using mck::ExploreOptions;

TEST(S1ModelTest, DefectiveDesignViolatesPacketServiceOk) {
  S1Model m;
  const auto r = Explore(m, S1Model::Properties());
  ASSERT_FALSE(r.Holds(kPacketServiceOk));
  const auto* v = r.FindViolation(kPacketServiceOk);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->state.out_of_service);
  EXPECT_FALSE(v->state.user_initiated_detach);
}

TEST(S1ModelTest, ShortestCounterexampleIsSwitchDeactivateSwitch) {
  S1Model m;
  const auto r = Explore(m, S1Model::Properties());
  const auto* v = r.FindViolation(kPacketServiceOk);
  ASSERT_NE(v, nullptr);
  // BFS: 4G->3G, PDP deactivated (or data off), 3G->4G detach = 3 steps.
  EXPECT_EQ(v->trace.size(), 3u);
  EXPECT_EQ(v->trace.front().kind, S1Model::Kind::kSwitchTo3G);
  EXPECT_EQ(v->trace.back().kind, S1Model::Kind::kSwitchTo4G);
}

TEST(S1ModelTest, TraceReplayReproducesOutOfService) {
  S1Model m;
  const auto r = Explore(m, S1Model::Properties());
  const auto* v = r.FindViolation(kPacketServiceOk);
  ASSERT_NE(v, nullptr);
  S1Model::State s = m.initial();
  for (const auto& a : v->trace) s = m.apply(s, a);
  EXPECT_TRUE(s == v->state);
}

TEST(S1ModelTest, SwitchBackWithActivePdpIsFine) {
  // Manually drive the happy path: switch to 3G with data, no deactivation,
  // switch back: the EPS bearer is reconstructed from the PDP context.
  S1Model m;
  auto s = m.initial();
  s = m.apply(s, {S1Model::Kind::kSwitchTo3G, SwitchReason::kCsfbCall, {}});
  EXPECT_TRUE(s.pdp_active);
  EXPECT_FALSE(s.eps_active);
  s = m.apply(s, {S1Model::Kind::kSwitchTo4G, {}, {}});
  EXPECT_TRUE(s.eps_active);
  EXPECT_TRUE(s.emm_registered);
  EXPECT_FALSE(s.out_of_service);
}

TEST(S1ModelTest, EveryTable3CauseIsExplored) {
  S1Model m;
  auto s = m.initial();
  s = m.apply(s, {S1Model::Kind::kSwitchTo3G, SwitchReason::kMobility, {}});
  const auto actions = m.enabled(s);
  int deact_count = 0;
  for (const auto& a : actions) {
    if (a.kind == S1Model::Kind::kDeactivatePdp) ++deact_count;
  }
  EXPECT_EQ(deact_count, 6);  // all Table 3 causes enumerated
}

TEST(S1ModelTest, ReattachRecoversService) {
  S1Model m;
  auto s = m.initial();
  s = m.apply(s, {S1Model::Kind::kSwitchTo3G, SwitchReason::kMobility, {}});
  s = m.apply(s, {S1Model::Kind::kDeactivatePdp, {},
                  nas::PdpDeactCause::kOperatorDeterminedBarring});
  s = m.apply(s, {S1Model::Kind::kSwitchTo4G, {}, {}});
  ASSERT_TRUE(s.out_of_service);
  const auto actions = m.enabled(s);
  ASSERT_EQ(actions.size(), 1u);  // only recovery is possible while detached
  EXPECT_EQ(actions[0].kind, S1Model::Kind::kReattach);
  s = m.apply(s, actions[0]);
  EXPECT_FALSE(s.out_of_service);
  EXPECT_TRUE(s.emm_registered);
}

TEST(S1ModelTest, KeepContextFixAloneStillViolates) {
  // Unavoidable causes (e.g. operator barring) still delete the context, so
  // the keep-context remedy alone cannot prevent the detach (§5.1.2).
  S1Model::Config cfg;
  cfg.fix_keep_context = true;
  S1Model m(cfg);
  const auto r = Explore(m, S1Model::Properties());
  EXPECT_FALSE(r.Holds(kPacketServiceOk));
}

TEST(S1ModelTest, ReactivateBearerFixAloneIsSufficient) {
  S1Model::Config cfg;
  cfg.fix_reactivate_bearer = true;
  S1Model m(cfg);
  const auto r = Explore(m, S1Model::Properties());
  EXPECT_TRUE(r.Holds(kPacketServiceOk));
  EXPECT_GT(r.stats.states_visited, 5u);
}

TEST(S1ModelTest, BothFixesAreViolationFree) {
  S1Model::Config cfg;
  cfg.fix_keep_context = true;
  cfg.fix_reactivate_bearer = true;
  S1Model m(cfg);
  const auto r = Explore(m, S1Model::Properties());
  EXPECT_TRUE(r.Holds(kPacketServiceOk));
}

TEST(S1ModelTest, UserDataToggleVariantAlsoDetaches) {
  // The WiFi/mobile-data-off variant (§5.1.3): disabling data deactivates
  // the PDP contexts and the later 3G->4G switch detaches the device.
  S1Model::Config cfg;
  S1Model m(cfg);
  auto s = m.initial();
  s = m.apply(s, {S1Model::Kind::kSwitchTo3G, SwitchReason::kMobility, {}});
  s = m.apply(s, {S1Model::Kind::kUserDataOff, {}, {}});
  s = m.apply(s, {S1Model::Kind::kSwitchTo4G, {}, {}});
  EXPECT_TRUE(s.out_of_service);
  // The user asked to stop *data*, never to be deregistered.
  EXPECT_FALSE(s.user_initiated_detach);
}

TEST(S1ModelTest, WithoutDataToggleStillViolatesViaNetworkCauses) {
  S1Model::Config cfg;
  cfg.allow_user_data_toggle = false;
  S1Model m(cfg);
  const auto r = Explore(m, S1Model::Properties());
  EXPECT_FALSE(r.Holds(kPacketServiceOk));
}

TEST(S1ModelTest, StateSpaceIsSmallAndExhaustable) {
  S1Model m;
  const auto r = Explore(m, S1Model::Properties());
  EXPECT_FALSE(r.stats.truncated);
  EXPECT_LT(r.stats.states_visited, 2000u);
}

TEST(S1ModelTest, DescribeMentionsCause) {
  S1Model m;
  const auto text = m.describe(
      {S1Model::Kind::kDeactivatePdp, {}, nas::PdpDeactCause::kQosNotAccepted});
  EXPECT_NE(text.find("QoS not accepted"), std::string::npos);
}

}  // namespace
}  // namespace cnv::model
