#include "core/validation.h"

#include <gtest/gtest.h>

namespace cnv::core {
namespace {

TEST(ValidationTest, AllSixObservedWithoutSolutionsOnOpII) {
  ValidationRunner runner;
  const auto results = runner.RunAll(stack::OpII());
  ASSERT_EQ(results.size(), 6u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.observed) << ToString(r.id) << ": " << r.evidence;
    EXPECT_FALSE(r.evidence.empty());
  }
}

TEST(ValidationTest, OpIObservesAllButS3) {
  // §5.3.2: on OP-I the device returns to 4G within seconds (via release
  // with redirect), so S3's stuck condition is not observed there.
  ValidationRunner runner;
  const auto results = runner.RunAll(stack::OpI());
  for (const auto& r : results) {
    if (r.id == FindingId::kS3) {
      EXPECT_FALSE(r.observed) << r.evidence;
    } else {
      EXPECT_TRUE(r.observed) << ToString(r.id) << ": " << r.evidence;
    }
  }
}

TEST(ValidationTest, S1EvidenceQuotesTheRejectCause) {
  ValidationRunner runner;
  const auto r = runner.RunS1(stack::OpI());
  EXPECT_TRUE(r.observed);
  EXPECT_NE(r.evidence.find("No EPS Bearer Context Activated"),
            std::string::npos);
}

TEST(ValidationTest, S5EvidenceShowsLargeDownlinkDrop) {
  ValidationRunner runner;
  const auto r = runner.RunS5(stack::OpII());
  EXPECT_TRUE(r.observed);
  EXPECT_NE(r.evidence.find("drop"), std::string::npos);
}

TEST(ValidationTest, SolutionsSuppressEveryFinding) {
  ValidationOptions opt;
  opt.solutions = {.shim_layer = true,
                   .mm_decoupled = true,
                   .domain_decoupled = true,
                   .csfb_tag = true,
                   .reactivate_bearer = true,
                   .mme_lu_recovery = true};
  ValidationRunner runner(opt);
  for (const auto& profile : {stack::OpI(), stack::OpII()}) {
    const auto results = runner.RunAll(profile);
    for (const auto& r : results) {
      EXPECT_FALSE(r.observed)
          << profile.name << " " << ToString(r.id) << ": " << r.evidence;
    }
  }
}

TEST(ValidationTest, FormatRendersOneLinePerFinding) {
  ValidationRunner runner;
  const auto results = runner.RunAll(stack::OpII());
  const auto text = ValidationRunner::Format(results);
  for (const char* code : {"S1", "S2", "S3", "S4", "S5", "S6"}) {
    EXPECT_NE(text.find(code), std::string::npos);
  }
  EXPECT_NE(text.find("OBSERVED"), std::string::npos);
}

TEST(ValidationTest, S6FailureShapeDiffersPerCarrier) {
  ValidationRunner runner;
  const auto op1 = runner.RunS6(stack::OpI());
  const auto op2 = runner.RunS6(stack::OpII());
  EXPECT_TRUE(op1.observed);
  EXPECT_TRUE(op2.observed);
  EXPECT_NE(op1.evidence.find("implicitly detach"), std::string::npos);
  EXPECT_NE(op2.evidence.find("MSC temporarily not reachable"),
            std::string::npos);
}

}  // namespace
}  // namespace cnv::core
