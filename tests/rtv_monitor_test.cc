// The acceptance bar for the online monitors: replaying each committed
// golden trace raises exactly the expected finding alerts — its own finding
// and nothing else (no misses, no spurious cross-fires anywhere in the
// catalog).
#include "rtv/monitors.h"

#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rtv/alert.h"
#include "trace/qxdm.h"

namespace cnv::rtv {
namespace {

std::string ReadGolden(const std::string& name) {
  const std::string path = std::string(CNV_GOLDEN_DIR) + "/" + name + ".log";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden: " << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

std::vector<Alert> Replay(const std::string& log) {
  FindingMonitors monitors;
  std::vector<Alert> alerts;
  std::uint64_t ordinal = 0;
  for (const auto& r : trace::ParseLog(log)) {
    monitors.Step(r, ordinal++, &alerts);
  }
  return alerts;
}

struct GoldenExpectation {
  std::string golden;
  std::vector<AlertKind> expected;
};

const std::vector<GoldenExpectation>& Expectations() {
  static const std::vector<GoldenExpectation> kExpectations = {
      {"s1_context_loss_opi", {AlertKind::kS1}},
      {"s2_lost_attach_complete_opi", {AlertKind::kS2}},
      {"s3_stuck_in_3g_opii", {AlertKind::kS3}},
      {"s4_hol_blocking_opi", {AlertKind::kS4}},
      {"s5_call_data_coupling_opi", {AlertKind::kS5}},
      {"s6_lu_failure_detach_opi", {AlertKind::kS6}},
      {"congestion_attach_storm_opi",
       {AlertKind::kOverload, AlertKind::kOverload, AlertKind::kOverload}},
  };
  return kExpectations;
}

TEST(FindingMonitorsTest, EveryGoldenRaisesExactlyItsExpectedAlerts) {
  for (const auto& e : Expectations()) {
    SCOPED_TRACE(e.golden);
    const auto alerts = Replay(ReadGolden(e.golden));
    ASSERT_EQ(alerts.size(), e.expected.size())
        << FormatAlertLog(alerts);
    for (std::size_t i = 0; i < alerts.size(); ++i) {
      EXPECT_EQ(alerts[i].kind, e.expected[i]) << FormatAlert(alerts[i]);
    }
  }
}

TEST(FindingMonitorsTest, NoFindingAlertFiresOnAnotherFindingsGolden) {
  // The cross matrix: S<i>'s alert must never fire while replaying S<j>'s
  // golden (i != j), and no S alert may fire on the congestion golden.
  for (const auto& e : Expectations()) {
    SCOPED_TRACE(e.golden);
    std::map<AlertKind, int> counts;
    for (const auto& a : Replay(ReadGolden(e.golden))) ++counts[a.kind];
    std::map<AlertKind, int> want;
    for (const auto k : e.expected) ++want[k];
    EXPECT_EQ(counts, want);
  }
}

TEST(FindingMonitorsTest, AlertsCarryTimeOrdinalAndDetail) {
  const auto alerts = Replay(ReadGolden("s1_context_loss_opi"));
  ASSERT_EQ(alerts.size(), 1u);
  const Alert& a = alerts[0];
  EXPECT_EQ(a.stream, 0u);
  EXPECT_GT(a.time, 0);
  EXPECT_GT(a.record_index, 0u);
  EXPECT_FALSE(a.detail.empty());
  EXPECT_NE(FormatAlert(a).find("[ALERT] [S1] [stream 0]"),
            std::string::npos);
}

TEST(FindingMonitorsTest, StreamIdTagsEveryAlert) {
  FindingMonitors monitors(7);
  std::vector<Alert> alerts;
  std::uint64_t ordinal = 0;
  for (const auto& r :
       trace::ParseLog(ReadGolden("s2_lost_attach_complete_opi"))) {
    monitors.Step(r, ordinal++, &alerts);
  }
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].stream, 7u);
  EXPECT_NE(FormatAlert(alerts[0]).find("[stream 7]"), std::string::npos);
}

TEST(FindingMonitorsTest, ConcatenatedCatalogStillRaisesEverySignature) {
  // Back-to-back captures in one stream: the power-on at the head of each
  // scenario is a session boundary, so no finding is masked by state left
  // over from the previous capture.
  std::string all;
  std::map<AlertKind, int> want;
  for (const auto& e : Expectations()) {
    all += ReadGolden(e.golden);
    for (const auto k : e.expected) ++want[k];
  }
  std::map<AlertKind, int> counts;
  for (const auto& a : Replay(all)) ++counts[a.kind];
  EXPECT_EQ(counts, want);
}

TEST(FindingMonitorsTest, ReplayingTwiceRaisesEverySignatureTwice) {
  for (const auto& e : Expectations()) {
    SCOPED_TRACE(e.golden);
    const std::string log = ReadGolden(e.golden);
    const auto alerts = Replay(log + log);
    EXPECT_EQ(alerts.size(), 2 * e.expected.size())
        << FormatAlertLog(alerts);
  }
}

TEST(AlertKindTest, NamesAreDistinctAndNonEmpty) {
  std::vector<AlertKind> kinds = {AlertKind::kS1, AlertKind::kS2,
                                  AlertKind::kS3, AlertKind::kS4,
                                  AlertKind::kS5, AlertKind::kS6,
                                  AlertKind::kOverload};
  std::map<std::string, int> seen;
  for (const auto k : kinds) {
    const std::string name = ToString(k);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(seen[name]++, 0) << "duplicate name " << name;
  }
}

}  // namespace
}  // namespace cnv::rtv
