// Differential driver: the seeds × carriers sweep must agree between model
// and stack (zero unexplained divergences), render byte-identically at any
// --jobs count, and checkpoint/resume to the exact same report.
#include "conf/diff.h"

#include <filesystem>
#include <string>

#include "ckpt/manifest.h"
#include "gtest/gtest.h"

namespace cnv::conf {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / "conf_diff" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

DiffOptions SmallOptions() {
  DiffOptions opt;
  opt.seeds = 3;
  opt.walks = 8;
  opt.jobs = 1;
  return opt;
}

TEST(DiffDriverTest, SmallSweepHasNoUnexplainedDivergences) {
  const DiffReport report = DifferentialDriver(SmallOptions()).Run();
  EXPECT_TRUE(report.complete);
  // 4 scenarios x 2 carriers x 3 seeds.
  EXPECT_EQ(report.cells.size(), 24u);
  EXPECT_EQ(report.unexplained_divergences, 0u);
  EXPECT_EQ(report.agreements + report.explained_divergences +
                report.unexplained_divergences,
            report.cells.size());
  for (const auto& cell : report.cells) {
    EXPECT_TRUE(cell.explained) << ToString(cell.scenario) << " x "
                                << cell.carrier << " seed " << cell.seed
                                << ": " << cell.note;
  }
}

TEST(DiffDriverTest, ReportIsByteIdenticalAcrossJobCounts) {
  DiffOptions serial = SmallOptions();
  DiffOptions parallel = SmallOptions();
  parallel.jobs = 4;
  const DiffReport a = DifferentialDriver(serial).Run();
  const DiffReport b = DifferentialDriver(parallel).Run();
  EXPECT_EQ(DifferentialDriver::FormatText(a),
            DifferentialDriver::FormatText(b));
  EXPECT_EQ(DifferentialDriver::FormatJson(a),
            DifferentialDriver::FormatJson(b));
}

TEST(DiffDriverTest, ResumedSweepIsByteIdentical) {
  const std::string dir = FreshDir("resume");
  DiffOptions opt = SmallOptions();
  opt.checkpoint_dir = dir;
  const DiffReport baseline = DifferentialDriver(opt).Run();
  ASSERT_TRUE(baseline.complete);
  EXPECT_EQ(baseline.exec.cells_run, baseline.cells.size());

  opt.resume = true;
  const DiffReport resumed = DifferentialDriver(opt).Run();
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.exec.cells_resumed, resumed.cells.size());
  EXPECT_EQ(resumed.exec.cells_run, 0u);
  EXPECT_EQ(DifferentialDriver::FormatText(baseline),
            DifferentialDriver::FormatText(resumed));
  EXPECT_EQ(DifferentialDriver::FormatJson(baseline),
            DifferentialDriver::FormatJson(resumed));
}

TEST(DiffDriverTest, CancelledSweepReportsIncomplete) {
  const std::string dir = FreshDir("cancel");
  DiffOptions opt = SmallOptions();
  opt.checkpoint_dir = dir;
  ckpt::CancelToken cancel;
  cancel.Cancel();  // fire before the first cell: nothing should run
  opt.cancel = &cancel;
  const DiffReport report = DifferentialDriver(opt).Run();
  EXPECT_FALSE(report.complete);
  EXPECT_TRUE(report.exec.interrupted);
  EXPECT_EQ(report.exec.cells_run, 0u);
}

TEST(DiffDriverTest, ConfigDigestSeparatesSweepShapes) {
  DiffOptions a = SmallOptions();
  DiffOptions b = SmallOptions();
  b.seeds = 4;
  DiffOptions c = SmallOptions();
  c.walks = 16;
  const auto da = DifferentialDriver(a).ConfigDigest();
  EXPECT_NE(da, DifferentialDriver(b).ConfigDigest());
  EXPECT_NE(da, DifferentialDriver(c).ConfigDigest());
  EXPECT_EQ(da, DifferentialDriver(a).ConfigDigest());
}

TEST(DiffDriverTest, JsonReportIsWellFormed) {
  const DiffReport report = DifferentialDriver(SmallOptions()).Run();
  const std::string json = DifferentialDriver::FormatJson(report);
  // Structural sanity (CI additionally validates with a real JSON parser):
  // balanced braces/brackets outside strings, expected top-level keys.
  long depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
    } else if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"conformance_report\""), std::string::npos);
  EXPECT_NE(json.find("\"unexplained_divergences\""), std::string::npos);
}

}  // namespace
}  // namespace cnv::conf
