#include "sim/link.h"

#include <gtest/gtest.h>

#include "sim/radio.h"

namespace cnv::sim {
namespace {

nas::Message AttachReq() {
  nas::Message m;
  m.kind = nas::MsgKind::kAttachRequest;
  m.protocol = nas::Protocol::kEmm;
  return m;
}

TEST(LinkTest, DeliversAfterDelay) {
  Simulator sim;
  Rng rng(1);
  Link link(sim, rng, {.delay = Millis(30)}, "radio");
  SimTime delivered_at = -1;
  nas::MsgKind kind{};
  link.SetReceiver([&](const nas::Message& m) {
    delivered_at = sim.now();
    kind = m.kind;
  });
  link.Send(AttachReq());
  sim.RunAll();
  EXPECT_EQ(delivered_at, Millis(30));
  EXPECT_EQ(kind, nas::MsgKind::kAttachRequest);
  EXPECT_EQ(link.sent(), 1u);
  EXPECT_EQ(link.delivered(), 1u);
}

TEST(LinkTest, ThrowsWithoutReceiver) {
  Simulator sim;
  Rng rng(1);
  Link link(sim, rng, {}, "radio");
  EXPECT_THROW(link.Send(AttachReq()), std::logic_error);
}

TEST(LinkTest, ReliableLinkIgnoresLossProbability) {
  Simulator sim;
  Rng rng(2);
  Link link(sim, rng, {.delay = Millis(1), .loss_prob = 0.99, .reliable = true},
            "backhaul");
  int got = 0;
  link.SetReceiver([&](const nas::Message&) { ++got; });
  for (int i = 0; i < 100; ++i) link.Send(AttachReq());
  sim.RunAll();
  EXPECT_EQ(got, 100);
  EXPECT_EQ(link.dropped(), 0u);
}

TEST(LinkTest, UnreliableLinkDropsAtConfiguredRate) {
  Simulator sim;
  Rng rng(3);
  Link link(sim, rng,
            {.delay = Millis(1), .loss_prob = 0.3, .reliable = false},
            "radio");
  int got = 0;
  link.SetReceiver([&](const nas::Message&) { ++got; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) link.Send(AttachReq());
  sim.RunAll();
  EXPECT_NEAR(static_cast<double>(link.dropped()) / n, 0.3, 0.03);
  EXPECT_EQ(link.delivered() + link.dropped(), static_cast<std::uint64_t>(n));
}

TEST(LinkTest, ForceDropOverridesReliability) {
  Simulator sim;
  Rng rng(4);
  Link link(sim, rng, {.delay = Millis(1), .reliable = true}, "radio");
  int got = 0;
  link.SetReceiver([&](const nas::Message&) { ++got; });
  link.ForceDropNext(2);
  for (int i = 0; i < 5; ++i) link.Send(AttachReq());
  sim.RunAll();
  EXPECT_EQ(got, 3);
  EXPECT_EQ(link.dropped(), 2u);
}

TEST(LinkTest, DeferNextDelaysExactlyOneMessage) {
  Simulator sim;
  Rng rng(5);
  Link link(sim, rng, {.delay = Millis(10)}, "radio");
  std::vector<SimTime> arrivals;
  link.SetReceiver([&](const nas::Message&) { arrivals.push_back(sim.now()); });
  link.DeferNext(Millis(100));
  link.Send(AttachReq());  // deferred: arrives at 110ms
  link.Send(AttachReq());  // normal: arrives at 10ms
  sim.RunAll();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], Millis(10));
  EXPECT_EQ(arrivals[1], Millis(110));
}

TEST(LinkTest, JitterStaysWithinBound) {
  Simulator sim;
  Rng rng(6);
  Link link(sim, rng, {.delay = Millis(10), .jitter = Millis(5)}, "radio");
  std::vector<SimTime> arrivals;
  SimTime sent_at = 0;
  link.SetReceiver([&](const nas::Message&) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 200; ++i) {
    sent_at = sim.now();
    link.Send(AttachReq());
    sim.RunAll();
    const SimTime d = arrivals.back() - sent_at;
    EXPECT_GE(d, Millis(10));
    EXPECT_LE(d, Millis(15));
  }
}

TEST(RadioTest, LossGrowsAsSignalWeakens) {
  EXPECT_LT(LossFromRssi(-60), 0.01);
  EXPECT_LT(LossFromRssi(-95), 0.01);  // paper's good-signal range edge
  EXPECT_GT(LossFromRssi(-111), LossFromRssi(-100));
  EXPECT_GT(LossFromRssi(-120), 0.5);
}

TEST(RadioTest, RssiProfileInterpolatesAndClamps) {
  RssiProfile p({{0.0, -60.0}, {10.0, -80.0}});
  EXPECT_DOUBLE_EQ(p.At(-5.0), -60.0);
  EXPECT_DOUBLE_EQ(p.At(0.0), -60.0);
  EXPECT_DOUBLE_EQ(p.At(5.0), -70.0);
  EXPECT_DOUBLE_EQ(p.At(10.0), -80.0);
  EXPECT_DOUBLE_EQ(p.At(99.0), -80.0);
}

TEST(RadioTest, ProfileValidation) {
  EXPECT_THROW(RssiProfile({}), std::invalid_argument);
  EXPECT_THROW(RssiProfile({{5.0, -60.0}, {1.0, -70.0}}),
               std::invalid_argument);
}

TEST(RadioTest, Route1MatchesFigure7Shape) {
  const auto p = Route1Profile();
  EXPECT_DOUBLE_EQ(p.StartMile(), 0.0);
  EXPECT_DOUBLE_EQ(p.EndMile(), 15.0);
  // The paper reports -73 dBm at 9.5 mi and -87 dBm at 13.2 mi.
  EXPECT_NEAR(p.At(9.5), -73.0, 0.1);
  EXPECT_NEAR(p.At(13.2), -87.0, 0.1);
  // Whole route stays within the good-signal band [-95, -51].
  for (double mile = 0; mile <= 15.0; mile += 0.1) {
    EXPECT_LE(p.At(mile), -51.0);
    EXPECT_GE(p.At(mile), -95.0);
  }
}

}  // namespace
}  // namespace cnv::sim
