// Validation-phase reproduction of findings S1 (unprotected shared context)
// and S2 (out-of-sequenced signaling) on the simulated testbed.
#include <gtest/gtest.h>

#include <functional>

#include "stack/testbed.h"
#include "trace/analyze.h"

namespace cnv::stack {
namespace {

void RunUntil(Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) {
    tb.Run(Millis(100));
  }
}

// Drives the device into 3G with mobile data on and the PDP context
// deactivated by the network — the S1 precondition.
void SetupS1Precondition(Testbed& tb) {
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  ASSERT_TRUE(tb.ue().eps_bearer_active());
  tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
  tb.Run(Seconds(10));
  ASSERT_TRUE(tb.ue().pdp_active());
  ASSERT_TRUE(tb.sgsn().pdp_active());
  tb.sgsn().DeactivatePdp(nas::PdpDeactCause::kOperatorDeterminedBarring);
  tb.Run(Seconds(1));
  ASSERT_FALSE(tb.ue().pdp_active());
}

TEST(StackS1Test, ContextMigratesAcrossSwitches) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
  tb.Run(Seconds(10));
  // EPS bearer -> PDP: alive in 3G, 4G reservation released.
  EXPECT_TRUE(tb.ue().pdp_active());
  EXPECT_FALSE(tb.mme().bearer_active());
  tb.ue().SwitchTo4g();
  tb.Run(Seconds(2));
  // PDP -> EPS bearer: service continues, no detach.
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_TRUE(tb.ue().eps_bearer_active());
  EXPECT_EQ(tb.ue().oos_events(), 0u);
}

TEST(StackS1Test, MissingPdpContextCausesDetachOnReturnTo4g) {
  Testbed tb({});
  SetupS1Precondition(tb);
  tb.ue().SwitchTo4g();
  RunUntil(tb, [&] { return tb.ue().out_of_service(); }, Seconds(5));
  EXPECT_TRUE(tb.ue().out_of_service());
  EXPECT_EQ(tb.ue().oos_events(), 1u);
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "no EPS bearer context activated"),
            1u);
}

TEST(StackS1Test, RecoveryTimeIsOperatorControlled) {
  Testbed tb({});
  SetupS1Precondition(tb);
  tb.ue().SwitchTo4g();
  RunUntil(tb, [&] { return tb.ue().recovery_seconds().Count() == 1; },
           Minutes(2));
  ASSERT_EQ(tb.ue().recovery_seconds().Count(), 1u);
  const double r = tb.ue().recovery_seconds().Values()[0];
  // Figure 4: 2.4 s - 24.7 s.
  EXPECT_GE(r, 2.0);
  EXPECT_LE(r, 26.0);
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
}

TEST(StackS1Test, UserDataOffVariantAlsoDetaches) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
  tb.Run(Seconds(10));
  tb.ue().EnableData(false);  // phone deactivates all PDP contexts (§5.1.3)
  tb.Run(Seconds(1));
  // The user later roams back to 4G (e.g. leaving WiFi coverage).
  tb.ue().SwitchTo4g();
  RunUntil(tb, [&] { return tb.ue().out_of_service(); }, Seconds(5));
  EXPECT_TRUE(tb.ue().out_of_service());
}

TEST(StackS1Test, ReactivateBearerRemedyPreventsDetach) {
  TestbedConfig cfg;
  cfg.solutions.reactivate_bearer = true;
  Testbed tb(cfg);
  SetupS1Precondition(tb);
  tb.ue().SwitchTo4g();
  tb.Run(Seconds(5));
  EXPECT_FALSE(tb.ue().out_of_service());
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_TRUE(tb.ue().eps_bearer_active());
  EXPECT_EQ(tb.mme().bearer_reactivations(), 1u);
  EXPECT_EQ(tb.ue().oos_events(), 0u);
}

TEST(StackS1Test, RemedyMakesSwitchMuchFasterThanRecovery) {
  // §9.3: with the remedy the 3G->4G change takes ~0.1-0.4 s; without it the
  // device re-attaches, taking seconds to tens of seconds.
  TestbedConfig with;
  with.solutions.reactivate_bearer = true;
  Testbed tb_fix(with);
  SetupS1Precondition(tb_fix);
  const SimTime start_fix = tb_fix.sim().now();
  tb_fix.ue().SwitchTo4g();
  RunUntil(tb_fix,
           [&] {
             return tb_fix.ue().emm_state() ==
                    UeDevice::EmmState::kRegistered;
           },
           Minutes(2));
  const double fix_s = ToSeconds(tb_fix.sim().now() - start_fix);

  Testbed tb_bug({});
  SetupS1Precondition(tb_bug);
  const SimTime start_bug = tb_bug.sim().now();
  tb_bug.ue().SwitchTo4g();
  RunUntil(tb_bug,
           [&] { return tb_bug.ue().recovery_seconds().Count() == 1; },
           Minutes(2));
  const double bug_s = ToSeconds(tb_bug.sim().now() - start_bug);

  EXPECT_LT(fix_s, 1.0);
  EXPECT_GT(bug_s, 2.0);
  EXPECT_GT(bug_s / fix_s, 3.0);
}

// ----------------------------------------------------------------- S2 ---

TEST(StackS2Test, LostAttachCompleteCausesImplicitDetachAtNextTau) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);  // Attach Request already sent
  tb.ul4g().ForceDropNext(1);         // ... so this drops Attach Complete
  tb.Run(Seconds(2));
  // Inconsistent EMM states (Figure 5a): UE registered, MME waiting.
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kWaitComplete);

  tb.ue().CrossAreaBoundary();  // tracking area update
  RunUntil(tb, [&] { return tb.ue().oos_events() > 0; }, Seconds(5));
  EXPECT_GE(tb.ue().oos_events(), 1u);
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "implicitly detached"),
            1u);
}

TEST(StackS2Test, DuplicateAttachRequestRejectedDetachesUe) {
  Testbed tb({});
  tb.mme().set_duplicate_attach_rejects(true);
  // BS1 under heavy load defers the first Attach Request past T3410.
  tb.ul4g().DeferNext(Seconds(16));
  tb.ue().PowerOn(nas::System::k4G);
  RunUntil(tb, [&] { return tb.ue().oos_events() > 0; }, Seconds(30));
  EXPECT_GE(tb.ue().oos_events(), 1u);
  EXPECT_GE(
      trace::CountContaining(tb.traces().records(), "Attach Reject"), 1u);
}

TEST(StackS2Test, DuplicateAttachRequestAcceptedRebuildsBearer) {
  Testbed tb({});
  tb.mme().set_duplicate_attach_rejects(false);
  tb.ul4g().DeferNext(Seconds(16));
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(30));
  // No detach, but the attach ran twice and the bearer was rebuilt.
  EXPECT_EQ(tb.ue().oos_events(), 0u);
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);
  EXPECT_TRUE(tb.mme().bearer_active());
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "Attach Complete sent"),
            2u);
}

TEST(StackS2Test, ShimLayerPreventsLostCompleteDetach) {
  TestbedConfig cfg;
  cfg.solutions.shim_layer = true;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.ul4g().ForceDropNext(1);  // drops the shim frame; it retransmits
  tb.Run(Seconds(2));
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);
  tb.ue().CrossAreaBoundary();
  tb.Run(Seconds(5));
  EXPECT_EQ(tb.ue().oos_events(), 0u);
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
}

TEST(StackS2Test, ShimLayerSurvivesSustainedLoss) {
  TestbedConfig cfg;
  cfg.solutions.shim_layer = true;
  cfg.radio_loss = 0.3;
  cfg.seed = 11;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Minutes(1));
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  for (int i = 0; i < 5; ++i) {
    tb.ue().CrossAreaBoundary();
    tb.Run(Seconds(20));
  }
  EXPECT_EQ(tb.ue().oos_events(), 0u);
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);
}

}  // namespace
}  // namespace cnv::stack
