// Determinism: a chaos run is fully determined by (seed, plan, profile).
// Re-running the same triple must yield a byte-identical QXDM trace and an
// identical report; different seeds may diverge but must stay deterministic
// individually.
#include <gtest/gtest.h>

#include "fault/campaign.h"

namespace cnv::fault {
namespace {

RunOutcome RunTriple(std::uint64_t seed, const FaultPlan& plan,
                     const stack::CarrierProfile& profile) {
  CampaignConfig cfg;
  cfg.duration = Seconds(600);
  return CampaignRunner(cfg, /*keep_traces=*/true).RunOne(seed, plan, profile);
}

TEST(FaultDeterminismTest, SameTripleYieldsByteIdenticalTraces) {
  for (const FaultPlan& plan :
       {plans::S2AttachDisruption(), plans::MmeCrashRestart(),
        plans::RadioBurstLoss()}) {
    const RunOutcome a = RunTriple(7, plan, stack::OpI());
    const RunOutcome b = RunTriple(7, plan, stack::OpI());
    ASSERT_FALSE(a.trace_log.empty()) << plan.name;
    EXPECT_EQ(a.trace_log, b.trace_log) << plan.name;
    EXPECT_EQ(a.faults_injected, b.faults_injected) << plan.name;
    ASSERT_EQ(a.report.properties.size(), b.report.properties.size());
    for (std::size_t i = 0; i < a.report.properties.size(); ++i) {
      const auto& pa = a.report.properties[i];
      const auto& pb = b.report.properties[i];
      EXPECT_EQ(pa.outages, pb.outages) << plan.name << " " << pa.name;
      EXPECT_EQ(pa.total_outage, pb.total_outage) << plan.name << " " << pa.name;
      EXPECT_EQ(pa.longest_outage, pb.longest_outage)
          << plan.name << " " << pa.name;
    }
    ASSERT_EQ(a.report.findings.size(), b.report.findings.size()) << plan.name;
    for (std::size_t i = 0; i < a.report.findings.size(); ++i) {
      EXPECT_EQ(a.report.findings[i].id, b.report.findings[i].id);
      EXPECT_EQ(a.report.findings[i].detail, b.report.findings[i].detail);
    }
  }
}

TEST(FaultDeterminismTest, ProfilesSelectDifferentBehaviour) {
  // Same seed and plan, different carrier: OP-I releases with redirect,
  // OP-II reselects — the traces must not be identical.
  const FaultPlan plan = plans::S3StuckIn3g();
  const RunOutcome i = RunTriple(7, plan, stack::OpI());
  const RunOutcome ii = RunTriple(7, plan, stack::OpII());
  EXPECT_NE(i.trace_log, ii.trace_log);
}

TEST(FaultDeterminismTest, EntireCampaignIsReproducible) {
  CampaignConfig cfg;
  cfg.seeds = {1, 2};
  cfg.plans = {plans::S1MissingBearerContext(), plans::S6LuFailurePropagation()};
  cfg.duration = Seconds(600);
  const std::string a = CampaignRunner(cfg).Run().Summary();
  const std::string b = CampaignRunner(cfg).Run().Summary();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cnv::fault
