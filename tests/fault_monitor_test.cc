// RecoveryMonitor: property establishment, outage/recovery accounting
// against SLO bounds, and the counter-based finding probes.
#include <gtest/gtest.h>

#include "fault/injector.h"
#include "fault/monitor.h"

namespace cnv::fault {
namespace {

const PropertyReport* Prop(const MonitorReport& r, const std::string& name) {
  for (const auto& p : r.properties) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

TEST(RecoveryMonitorTest, CleanRunEstablishesAllPropertiesWithinSlo) {
  stack::Testbed tb({});
  RecoveryMonitor monitor(tb);
  monitor.Start();
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(60));
  const MonitorReport report = monitor.Finalize();
  ASSERT_EQ(report.properties.size(), 3u);
  for (const auto& p : report.properties) {
    EXPECT_TRUE(p.established) << p.name;
    EXPECT_TRUE(p.ok_at_end) << p.name;
    EXPECT_EQ(p.outages, 0) << p.name;
  }
  EXPECT_TRUE(report.all_within_slo());
  EXPECT_TRUE(report.findings.empty());
}

TEST(RecoveryMonitorTest, NeverEstablishedCountsAsOneFullRunOutage) {
  stack::Testbed tb({});
  RecoveryMonitor monitor(tb);
  monitor.Start();
  tb.Run(Seconds(50));  // UE never powers on
  const MonitorReport report = monitor.Finalize();
  for (const auto& p : report.properties) {
    EXPECT_FALSE(p.established) << p.name;
    EXPECT_EQ(p.outages, 1) << p.name;
    EXPECT_EQ(p.total_outage, Seconds(50)) << p.name;
    EXPECT_FALSE(p.within_slo()) << p.name;
  }
  EXPECT_FALSE(report.all_within_slo());
}

TEST(RecoveryMonitorTest, MmeOutageShowsUpAsPacketServiceOutage) {
  stack::Testbed tb({});
  RecoveryMonitor monitor(tb);
  monitor.Start();
  FaultInjector inj(tb);
  inj.Apply(plans::MmeCrashRestart());  // down 60-90 s, lossy restart
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(300));
  const MonitorReport report = monitor.Finalize();
  const PropertyReport* ps = Prop(report, "PacketService_OK");
  ASSERT_NE(ps, nullptr);
  EXPECT_GE(ps->outages, 1);
  EXPECT_GE(ps->longest_outage, Seconds(30));
  // The periodic TAU (or a detach/reattach) brings service back well
  // inside the default 120 s bound only if something re-registers the UE;
  // with no periodic updates scheduled here, recovery happens lazily, so
  // just check the accounting is self-consistent.
  EXPECT_GE(ps->total_outage, ps->longest_outage);
}

TEST(RecoveryMonitorTest, RecoveryWithinSloAfterShortOutage) {
  stack::TestbedConfig cfg;
  cfg.robustness.core_queue_replay = true;
  stack::Testbed tb(cfg);
  SloBounds slo;  // 120 s per property
  RecoveryMonitor monitor(tb, slo);
  monitor.Start();
  FaultInjector inj(tb);
  // Outage window before the attach even starts; queued uplinks replay.
  inj.Apply({.name = "t",
             .description = "",
             .actions = {{.at = Millis(1),
                         .kind = FaultKind::kElementOutage,
                         .target = FaultTarget::kMme},
                        {.at = Seconds(20),
                         .kind = FaultKind::kElementRestart,
                         .target = FaultTarget::kMme,
                         .lose_state = false}}});
  tb.sim().ScheduleAt(Millis(10), [&tb] { tb.ue().PowerOn(nas::System::k4G); });
  tb.Run(Seconds(120));
  const MonitorReport report = monitor.Finalize();
  for (const auto& p : report.properties) {
    EXPECT_TRUE(p.established) << p.name;
    EXPECT_TRUE(p.ok_at_end) << p.name;
  }
  EXPECT_TRUE(report.all_within_slo());
}

TEST(RecoveryMonitorTest, TransitionsEmitRecoveryTraceRecords) {
  stack::Testbed tb({});
  RecoveryMonitor monitor(tb);
  monitor.Start();
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(30));
  monitor.Finalize();
  std::size_t recov = 0;
  for (const auto& r : tb.traces().records()) {
    if (r.type == trace::TraceType::kRecovery) ++recov;
  }
  EXPECT_GE(recov, 3u);  // at least the three "established" records
}

TEST(RecoveryMonitorTest, ProbeFindingsIsQuietOnAHealthyRun) {
  stack::Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(60));
  EXPECT_TRUE(RecoveryMonitor::ProbeFindings(tb).empty());
}

TEST(RecoveryMonitorTest, ProbeFindingsReportsForcedSgsFailureAsS6) {
  stack::Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(30));
  tb.mme().ForceNextSgsRace();
  tb.ue().Dial();
  tb.Run(Seconds(60));
  tb.ue().HangUp();
  tb.Run(Seconds(120));
  const auto findings = RecoveryMonitor::ProbeFindings(tb);
  bool has_s6 = false;
  for (const auto& f : findings) has_s6 |= (f.id == "S6");
  EXPECT_TRUE(has_s6);
}

}  // namespace
}  // namespace cnv::fault
