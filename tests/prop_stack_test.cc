// End-to-end property sweep on the validation stack: for every carrier and
// seed, a mixed usage scenario must leave the device in a consistent state,
// and the collected trace must round-trip through the QXDM serializer.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>

#include "stack/testbed.h"
#include "trace/qxdm.h"

namespace cnv::stack {
namespace {

void RunUntil(Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) {
    tb.Run(Millis(100));
  }
}

enum class Carrier { kOpI, kOpII };

class StackSweep
    : public ::testing::TestWithParam<std::tuple<Carrier, int, bool>> {
 protected:
  TestbedConfig MakeConfig() const {
    TestbedConfig cfg;
    cfg.profile = std::get<0>(GetParam()) == Carrier::kOpI ? OpI() : OpII();
    cfg.seed = static_cast<std::uint64_t>(std::get<1>(GetParam()));
    if (std::get<2>(GetParam())) {
      cfg.solutions = {.shim_layer = true,
                       .mm_decoupled = true,
                       .domain_decoupled = true,
                       .csfb_tag = true,
                       .reactivate_bearer = true,
                       .mme_lu_recovery = true};
    }
    return cfg;
  }
};

void CheckConsistency(Testbed& tb) {
  const auto& ue = tb.ue();
  // Single radio: states of the system not being served are quiescent.
  if (ue.serving() == nas::System::k4G) {
    EXPECT_EQ(ue.rrc3g(), model::Rrc3g::kIdle);
    EXPECT_FALSE(ue.pdp_active());
  }
  if (ue.serving() == nas::System::k3G) {
    EXPECT_FALSE(ue.eps_bearer_active());
  }
  // The shared channel carries a call exactly when a 3G call is up.
  if (ue.call_state() == UeDevice::CallState::kNone) {
    EXPECT_FALSE(tb.channel3g().cs_call_active());
  }
  // A registered device is not out of service and vice versa.
  if (ue.emm_state() == UeDevice::EmmState::kRegistered) {
    EXPECT_FALSE(ue.out_of_service() &&
                 ue.emm_state() == UeDevice::EmmState::kOutOfService);
  }
}

TEST_P(StackSweep, MixedScenarioEndsConsistent) {
  Testbed tb(MakeConfig());
  Rng rng(static_cast<std::uint64_t>(std::get<1>(GetParam())) * 31 + 7);

  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(3));
  CheckConsistency(tb);

  for (int step = 0; step < 12; ++step) {
    switch (rng.UniformInt(0, 6)) {
      case 0:
        tb.ue().StartDataSession(rng.Uniform(0.05, 3.0));
        break;
      case 1:
        tb.ue().StopDataSession();
        break;
      case 2: {
        tb.ue().Dial();
        RunUntil(tb,
                 [&] {
                   return tb.ue().call_state() ==
                              UeDevice::CallState::kActive ||
                          tb.ue().call_state() == UeDevice::CallState::kNone;
                 },
                 Minutes(2));
        tb.Run(Seconds(rng.UniformInt(5, 40)));
        tb.ue().HangUp();
        break;
      }
      case 3:
        tb.ue().CrossAreaBoundary();
        break;
      case 4:
        if (tb.ue().serving() == nas::System::k4G) {
          tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
        } else {
          tb.ue().SwitchTo4g();
        }
        break;
      case 5:
        if (tb.sgsn().pdp_active()) {
          tb.sgsn().DeactivatePdp(nas::PdpDeactCause::kRegularDeactivation);
        }
        break;
      case 6:
        tb.ue().EnableData(!tb.ue().data_session_active());
        break;
    }
    tb.Run(Seconds(20));
    RunUntil(tb, [&] { return !tb.ue().out_of_service(); }, Minutes(2));
  }

  // Settle: end sessions, let CSFB returns and recoveries finish.
  tb.ue().HangUp();
  tb.ue().StopDataSession();
  RunUntil(tb, [&] { return !tb.ue().out_of_service(); }, Minutes(3));
  tb.Run(Minutes(1));
  CheckConsistency(tb);

  // With all remedies on, the scenario must never have lost service.
  if (std::get<2>(GetParam())) {
    EXPECT_EQ(tb.ue().oos_events(), 0u);
    EXPECT_EQ(tb.ue().deferred_service_requests(), 0u);
  }

  // The collected log round-trips through the QXDM text format, modulo the
  // format's millisecond timestamp granularity.
  const auto& records = tb.traces().records();
  ASSERT_FALSE(records.empty());
  const auto parsed = trace::ParseLog(trace::FormatLog(records));
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].time, records[i].time / kMillisecond * kMillisecond);
    EXPECT_EQ(parsed[i].type, records[i].type);
    EXPECT_EQ(parsed[i].system, records[i].system);
    EXPECT_EQ(parsed[i].module, records[i].module);
    EXPECT_EQ(parsed[i].description, records[i].description);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CarriersSeedsSolutions, StackSweep,
    ::testing::Combine(::testing::Values(Carrier::kOpI, Carrier::kOpII),
                       ::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Bool()));

}  // namespace
}  // namespace cnv::stack
