// Symmetry-reduction suite: canonicalization units (SortBlocks /
// MultisetOrbitSize), the differential guarantee that symmetry-reduced
// exploration reaches the same violations as the full product, and the
// orbit accounting identity — for a fully symmetric model the sum of orbit
// sizes over reached representatives equals the unreduced reachable-set
// size exactly.
#include "mck/symmetry.h"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>

#include "mck/explorer.h"
#include "mck/parallel_explorer.h"
#include "mck/toy_models.h"
#include "model/combined_model.h"

namespace cnv::mck {
namespace {

using model::CombinedModel;
using toys::IndepWorkersModel;

template <typename M>
std::set<std::string> ViolatedProps(const std::vector<Violation<M>>& vs) {
  std::set<std::string> names;
  for (const auto& v : vs) names.insert(v.property);
  return names;
}

ExploreOptions SymOnly() {
  ExploreOptions opt;
  opt.reduction.symmetry = true;
  return opt;
}

// --- canonicalization units -------------------------------------------------

TEST(SymmetryTest, SortBlocksSortsOnlyTheActivePrefix) {
  std::array<int, 4> blocks{3, 1, 2, 0};
  SortBlocks(blocks, 3);
  EXPECT_EQ(blocks, (std::array<int, 4>{1, 2, 3, 0}));
}

TEST(SymmetryTest, MultisetOrbitSizes) {
  EXPECT_EQ(MultisetOrbitSize(std::array<int, 4>{7, 0, 0, 0}, 1), 1u);
  EXPECT_EQ(MultisetOrbitSize(std::array<int, 4>{1, 1, 0, 0}, 2), 1u);
  EXPECT_EQ(MultisetOrbitSize(std::array<int, 4>{1, 2, 0, 0}, 2), 2u);
  EXPECT_EQ(MultisetOrbitSize(std::array<int, 4>{1, 1, 2, 0}, 3), 3u);
  EXPECT_EQ(MultisetOrbitSize(std::array<int, 4>{1, 2, 3, 0}, 3), 6u);
  EXPECT_EQ(MultisetOrbitSize(std::array<int, 4>{1, 2, 3, 4}, 4), 24u);
  EXPECT_EQ(MultisetOrbitSize(std::array<int, 4>{5, 5, 5, 5}, 4), 1u);
  EXPECT_EQ(MultisetOrbitSize(std::array<int, 4>{1, 1, 2, 2}, 4), 6u);
}

TEST(SymmetryTest, CombinedModelCanonicalizeIsIdempotent) {
  const CombinedModel m;
  const auto spec = m.reduction();
  CombinedModel::State s;
  s.ue[0].cm = CombinedModel::Cm::kDone;
  s.ue[0].serving = CombinedModel::Sys::k3G;
  const auto once = spec.canonicalize(s);
  const auto twice = spec.canonicalize(once);
  EXPECT_EQ(once, twice);
  // The busy UE sorts behind the idle one, whichever slot it started in.
  CombinedModel::State swapped;
  swapped.ue[1] = s.ue[0];
  swapped.ue[0] = s.ue[1];
  EXPECT_EQ(spec.canonicalize(swapped), once);
}

// --- orbit accounting: representatives stand for the full product -----------

TEST(SymmetryTest, IndepWorkersOrbitSumEqualsFullProduct) {
  const IndepWorkersModel m;  // 4 workers x 4 steps
  const auto full = Explore(m, {});
  const auto sym = Explore(m, {}, SymOnly());
  // Multisets of 4 counters over 0..4: C(8, 4) representatives.
  EXPECT_EQ(sym.stats.states_visited, 70u);
  // Every concrete state is in exactly one orbit, so the orbit sizes sum
  // back to the unreduced reachable-set size.
  EXPECT_EQ(sym.stats.represented_states, full.stats.states_visited);
  EXPECT_EQ(full.stats.represented_states, full.stats.states_visited);
}

TEST(SymmetryTest, CombinedModelOrbitSumEqualsFullProduct) {
  const CombinedModel m;
  const auto props = m.Properties();
  const auto full = Explore(m, props);
  const auto sym = Explore(m, props, SymOnly());
  EXPECT_LT(sym.stats.states_visited, full.stats.states_visited);
  EXPECT_EQ(sym.stats.represented_states, full.stats.states_visited);
  EXPECT_EQ(ViolatedProps<CombinedModel>(full.violations),
            ViolatedProps<CombinedModel>(sym.violations));
}

TEST(SymmetryTest, CombinedModelFourUesStillAgree) {
  CombinedModel::Config cfg;
  cfg.ues = 3;
  const CombinedModel m(cfg);
  const auto props = m.Properties();
  const auto full = Explore(m, props);
  const auto sym = Explore(m, props, SymOnly());
  EXPECT_EQ(sym.stats.represented_states, full.stats.states_visited);
  EXPECT_EQ(ViolatedProps<CombinedModel>(full.violations),
            ViolatedProps<CombinedModel>(sym.violations));
  // Three interchangeable UEs buy a substantial factor on their own.
  EXPECT_GE(full.stats.states_visited, 3 * sym.stats.states_visited);
}

// --- serial/parallel agreement under symmetry -------------------------------

TEST(SymmetryTest, SymmetryReducedParallelMatchesSerial) {
  const CombinedModel m;
  const auto props = m.Properties();
  const auto serial = Explore(m, props, SymOnly());
  for (const int jobs : {1, 2, 4}) {
    ParallelExploreOptions popt;
    popt.base = SymOnly();
    popt.jobs = jobs;
    const auto par = ParallelExplore(m, props, popt);
    EXPECT_EQ(DeterministicView(serial.stats, /*include_occupancy=*/false),
              DeterministicView(par.stats, /*include_occupancy=*/false))
        << "jobs=" << jobs;
    EXPECT_EQ(ViolatedProps<CombinedModel>(serial.violations),
              ViolatedProps<CombinedModel>(par.violations));
  }
}

// --- combined N=2 exhaustive with both reductions (the acceptance gate) -----

TEST(SymmetryTest, CombinedN2ExhaustiveUnderBothReductions) {
  const CombinedModel m;
  const auto props = m.Properties();
  ExploreOptions opt;
  opt.reduction.por = true;
  opt.reduction.symmetry = true;
  const auto r = Explore(m, props, opt);
  EXPECT_FALSE(r.stats.truncated);  // exhausted, not capped
  EXPECT_FALSE(r.Holds(model::kPacketServiceOk));
  EXPECT_FALSE(r.Holds(model::kCallServiceOk));
  EXPECT_TRUE(r.Holds(model::kMmOk));
  EXPECT_GT(r.stats.represented_states, r.stats.states_visited);
}

}  // namespace
}  // namespace cnv::mck
