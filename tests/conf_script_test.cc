// The script layer under the compiler: step formatting, the replay
// executor's full op vocabulary, and the missed-await reporting that keeps
// an undriveable script from masquerading as a divergence.
#include "conf/script.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "stack/carrier.h"

namespace cnv::conf {
namespace {

ScriptStep Step(Op op) {
  ScriptStep s;
  s.op = op;
  return s;
}

ScriptStep RunFor(std::int64_t millis) {
  ScriptStep s;
  s.op = Op::kRun;
  s.millis = millis;
  return s;
}

TEST(ScriptToStringTest, EveryOpHasADescription) {
  for (int i = 0; i <= static_cast<int>(Op::kRun); ++i) {
    ScriptStep s;
    s.op = static_cast<Op>(i);
    s.millis = 125;
    s.count = 2;
    s.demand_mbps = 0.5;
    EXPECT_FALSE(ToString(s).empty());
    EXPECT_NE(ToString(s), "?") << "op " << i;
  }
  EXPECT_EQ(ToString(Scenario::kS1), "S1");
  EXPECT_EQ(ToString(Scenario::kS4), "S4");
}

TEST(ScriptToStringTest, DuplicatePolicyStepNamesBothDirections) {
  ScriptStep s = Step(Op::kDuplicateAttachRejects);
  s.flag = true;
  const std::string rejects = ToString(s);
  s.flag = false;
  const std::string accepts = ToString(s);
  EXPECT_NE(rejects, accepts);
}

TEST(FormatScriptTest, IncludesStepsAndRequiredPolicy) {
  ScenarioScript script;
  script.scenario = Scenario::kS3;
  script.required_policy = model::SwitchPolicy::kCellReselection;
  script.steps = {Step(Op::kPowerOn4g), Step(Op::kDial), RunFor(5'000)};
  const std::string text = FormatScript(script);
  EXPECT_NE(text.find("S3"), std::string::npos);
  EXPECT_NE(text.find("dial"), std::string::npos);
  EXPECT_NE(text.find("requires"), std::string::npos);
}

// The duplicate-attach recipe (Figure 5b) as a hand-built script: hold the
// first Attach Request past its retransmission, let the MME reject the
// reprocessed stale copy.
TEST(ReplayTest, DuplicateAttachScriptReproducesS2) {
  ScenarioScript script;
  script.scenario = Scenario::kS2;
  ScriptStep policy = Step(Op::kDuplicateAttachRejects);
  policy.flag = true;
  ScriptStep defer = Step(Op::kDeferNextUplink4g);
  defer.millis = 16'000;
  script.steps = {policy, defer, Step(Op::kPowerOn4g), RunFor(30'000)};
  script.expected = {AbstractKind::kAttachRequest, AbstractKind::kAttachAccept,
                     AbstractKind::kAttachComplete};

  const ReplayOutcome outcome = Replay(script, stack::OpI());
  EXPECT_TRUE(outcome.awaits_satisfied);
  EXPECT_TRUE(outcome.HasProbe(Scenario::kS2));
  EXPECT_GT(outcome.counters.stale_attach_detaches, 0u);
  EXPECT_TRUE(
      CheckRefinement(AbstractTrace(outcome.records), script.expected)
          .refines);
}

// Data toggling and 3G power-on drive their UE entry points; the S1 defect
// also reproduces via the user-toggle variant (§5.1.3): data off in 3G
// deactivates all PDP contexts, and with the toggle still off the 3G->4G
// switch finds no context and the network detaches the device. Re-enabling
// data afterwards exercises the recovery entry point.
TEST(ReplayTest, UserDataToggleVariantReproducesS1) {
  ScenarioScript script;
  script.scenario = Scenario::kS1;
  ScriptStep sw = Step(Op::kSwitchTo3g);
  sw.reason = model::SwitchReason::kMobility;
  script.steps = {Step(Op::kPowerOn4g), Step(Op::kAwaitAttach4g),
                  sw,        RunFor(10'000), Step(Op::kDataOff), RunFor(1'000),
                  Step(Op::kSwitchTo4g),  RunFor(5'000),
                  Step(Op::kDataOn),      RunFor(1'000)};
  script.expected = {AbstractKind::kSwitch4gTo3g, AbstractKind::kUserDataOff,
                     AbstractKind::kSwitch3gTo4g, AbstractKind::kUserDataOn};

  const ReplayOutcome outcome = Replay(script, stack::OpI());
  EXPECT_TRUE(outcome.awaits_satisfied);
  EXPECT_TRUE(outcome.HasProbe(Scenario::kS1));
  EXPECT_GT(outcome.counters.detaches_no_eps_bearer, 0u);
  EXPECT_TRUE(
      CheckRefinement(AbstractTrace(outcome.records), script.expected)
          .refines);
}

TEST(ReplayTest, StartStopDataRoundTrip) {
  ScenarioScript script;
  script.scenario = Scenario::kS3;
  ScriptStep start = Step(Op::kStartData);
  start.demand_mbps = 0.2;
  script.steps = {Step(Op::kPowerOn4g), Step(Op::kAwaitAttach4g), start,
                  RunFor(2'000), Step(Op::kStopData), RunFor(1'000)};
  script.expected = {AbstractKind::kDataSessionStart,
                     AbstractKind::kDataSessionStop};

  const ReplayOutcome outcome = Replay(script, stack::OpI());
  EXPECT_TRUE(outcome.awaits_satisfied);
  EXPECT_FALSE(outcome.HasProbe(Scenario::kS3));
  EXPECT_TRUE(
      CheckRefinement(AbstractTrace(outcome.records), script.expected)
          .refines);
}

// A wait that cannot be satisfied is reported via first_missed_await, not
// silently swallowed — the cross-check needs to distinguish "stack diverged"
// from "script could not be driven".
TEST(ReplayTest, UnsatisfiableAwaitIsReported) {
  ScenarioScript script;
  script.scenario = Scenario::kS4;
  script.steps = {Step(Op::kPowerOn4g), Step(Op::kAwaitCallActive)};
  const ReplayOutcome outcome = Replay(script, stack::OpI());
  EXPECT_FALSE(outcome.awaits_satisfied);
  EXPECT_EQ(outcome.first_missed_await, "await active call");
}

TEST(ReplayTest, PowerOn3gRegistersInThreeG) {
  ScenarioScript script;
  script.scenario = Scenario::kS4;
  script.steps = {Step(Op::kPowerOn3g), RunFor(15'000)};
  const ReplayOutcome outcome = Replay(script, stack::OpI());
  EXPECT_TRUE(outcome.awaits_satisfied);
  EXPECT_FALSE(outcome.HasProbe(Scenario::kS4));
  EXPECT_FALSE(outcome.records.empty());
}

}  // namespace
}  // namespace cnv::conf
