// FaultPlan catalogue: the canned plans are plain data, so these tests pin
// their shape — names, kinds, targets and the alignment of their times with
// the standard campaign workload — plus the human-readable formatting that
// ends up in FAULT trace records.
#include <gtest/gtest.h>

#include <set>

#include "fault/plan.h"

namespace cnv::fault {
namespace {

TEST(FaultPlanTest, KindAndTargetNamesAreStable) {
  EXPECT_EQ(ToString(FaultKind::kDropNext), "drop-next");
  EXPECT_EQ(ToString(FaultKind::kElementRestart), "element-restart");
  EXPECT_EQ(ToString(FaultKind::kForceSgsRace), "force-sgs-race");
  EXPECT_EQ(ToString(FaultKind::kTimerSkew), "timer-skew");
  EXPECT_EQ(ToString(FaultTarget::kUl4g), "UE->MME");
  EXPECT_EQ(ToString(FaultTarget::kDl3gCs), "MSC->UE");
  EXPECT_EQ(ToString(FaultTarget::kHss), "HSS");
}

TEST(FaultPlanTest, DescribeRendersCountValueAndStateLoss) {
  EXPECT_EQ(Describe({.at = 0,
                      .kind = FaultKind::kDropNext,
                      .target = FaultTarget::kUl4g,
                      .count = 3}),
            "drop-next on UE->MME (n=3)");
  EXPECT_EQ(Describe({.at = 0,
                      .kind = FaultKind::kExtraDelay,
                      .target = FaultTarget::kDl4g,
                      .value = 2.0}),
            "extra-delay on MME->UE (2.000 s)");
  EXPECT_EQ(Describe({.at = 0,
                      .kind = FaultKind::kElementRestart,
                      .target = FaultTarget::kMme,
                      .lose_state = true}),
            "element-restart of MME (state lost)");
  EXPECT_EQ(Describe({.at = 0,
                      .kind = FaultKind::kForceSgsRace,
                      .target = FaultTarget::kMme}),
            "force-sgs-race on MME");
}

TEST(FaultPlanTest, FindingsSetCoversS1ThroughS6) {
  const auto plans = plans::Findings();
  ASSERT_EQ(plans.size(), 6u);
  EXPECT_EQ(plans[0].name, "s1-missing-bearer-context");
  EXPECT_EQ(plans[1].name, "s2-attach-disruption");
  EXPECT_EQ(plans[2].name, "s3-stuck-in-3g");
  EXPECT_EQ(plans[3].name, "s4-mm-hol-blocking");
  EXPECT_EQ(plans[4].name, "s5-shared-channel-drop");
  EXPECT_EQ(plans[5].name, "s6-lu-failure-propagation");
}

TEST(FaultPlanTest, AllPlansHaveUniqueNamesAndDescriptions) {
  std::set<std::string> names;
  for (const auto& p : plans::All()) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.description.empty());
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate: " << p.name;
  }
  EXPECT_GE(names.size(), 14u);
}

TEST(FaultPlanTest, ActionTimesAreNonNegative) {
  for (const auto& p : plans::All()) {
    for (const auto& a : p.actions) {
      EXPECT_GE(a.at, 0) << p.name;
    }
  }
}

TEST(FaultPlanTest, ControlPlansCarryNoActions) {
  EXPECT_TRUE(plans::S3StuckIn3g().actions.empty());
  EXPECT_TRUE(plans::S5SharedChannelDrop().actions.empty());
}

TEST(FaultPlanTest, OutagePlansPairOutageWithRestart) {
  for (const auto& p : {plans::MmeCrashRestart(), plans::MscOutage(),
                        plans::SgsnFlap(), plans::HssBlackout()}) {
    ASSERT_EQ(p.actions.size(), 2u) << p.name;
    EXPECT_EQ(p.actions[0].kind, FaultKind::kElementOutage) << p.name;
    EXPECT_EQ(p.actions[1].kind, FaultKind::kElementRestart) << p.name;
    EXPECT_EQ(p.actions[0].target, p.actions[1].target) << p.name;
    EXPECT_LT(p.actions[0].at, p.actions[1].at) << p.name;
  }
}

}  // namespace
}  // namespace cnv::fault
