#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <ios>
#include <stdexcept>
#include <string>

#include "obs/json.h"

namespace cnv::obs {
namespace {

TEST(RegistryTest, CountersAccumulateAndPersistByName) {
  Registry reg;
  reg.GetCounter("a.events").Increment();
  reg.GetCounter("a.events").Increment(4);
  EXPECT_EQ(reg.GetCounter("a.events").value(), 5u);
  EXPECT_TRUE(reg.Has("a.events"));
  EXPECT_FALSE(reg.Has("a.other"));
}

TEST(RegistryTest, GaugesSetAndAdd) {
  Registry reg;
  reg.GetGauge("q.depth").Set(12.5);
  reg.GetGauge("q.depth").Add(-2.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("q.depth").value(), 10.0);
}

TEST(HistogramTest, BucketsCountBoundariesInclusively) {
  Histogram h({1.0, 2.0, 5.0});
  h.Observe(0.5);  // <= 1
  h.Observe(1.0);  // <= 1 (boundary is inclusive)
  h.Observe(1.5);  // <= 2
  h.Observe(9.0);  // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 12.0);
}

TEST(HistogramTest, PercentileUsesRawSamplesNotBucketBounds) {
  Histogram h({100.0});  // one coarse bucket: quantization would be useless
  for (int i = 1; i <= 100; ++i) h.Observe(i);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
  // Linear interpolation over the raw series, exactly as util::Samples.
  EXPECT_NEAR(h.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(h.Percentile(95), 95.05, 1e-9);
}

TEST(HistogramTest, EmptyPercentileThrows) {
  Histogram h({1.0});
  EXPECT_THROW(h.Percentile(50), std::logic_error);
}

TEST(RegistryTest, JsonSnapshotIsNameSortedAndDeterministic) {
  const auto populate = [](Registry& reg) {
    // Registration order deliberately differs from name order.
    reg.GetGauge("z.gauge").Set(1.5);
    reg.GetCounter("b.count").Increment(2);
    reg.GetCounter("a.count").Increment(1);
    reg.GetHistogram("m.hist", {1.0, 10.0}).Observe(0.25);
    reg.GetHistogram("m.hist", {1.0, 10.0}).Observe(3.0);
  };
  Registry r1, r2;
  populate(r1);
  populate(r2);
  const std::string j1 = r1.ToJson(42);
  EXPECT_EQ(j1, r2.ToJson(42));

  EXPECT_NE(j1.find("\"sim_time_us\":42"), std::string::npos);
  // a.count must serialize before b.count regardless of registration order.
  EXPECT_LT(j1.find("\"a.count\":1"), j1.find("\"b.count\":2"));
  EXPECT_NE(j1.find("\"bucket_counts\":[1,1,0]"), std::string::npos);
}

TEST(RegistryTest, SummaryTableListsEveryMetric) {
  Registry reg;
  reg.GetCounter("runs.total").Increment(3);
  reg.GetGauge("frontier.peak").Set(17);
  reg.GetHistogram("lat", {1.0}).Observe(0.5);
  const std::string table = reg.SummaryTable();
  EXPECT_NE(table.find("runs.total"), std::string::npos);
  EXPECT_NE(table.find("frontier.peak"), std::string::npos);
  EXPECT_NE(table.find("lat"), std::string::npos);
  EXPECT_NE(table.find("n=1"), std::string::npos);
}

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, EveryControlCharacterEscapesToItsCodePoint) {
  // The full 0x00-0x1F range must come out as a valid JSON escape: the
  // named short forms where JSON has them, "\u00XX" with the *unsigned*
  // byte value everywhere else (a signed-char sign extension would print
  // "￿ff83"-style garbage).
  for (int c = 0x00; c < 0x20; ++c) {
    const std::string escaped = JsonEscape(std::string(1, static_cast<char>(c)));
    std::string want;
    switch (c) {
      case '\n': want = "\\n"; break;
      case '\r': want = "\\r"; break;
      case '\t': want = "\\t"; break;
      default: {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        want = buf;
      }
    }
    EXPECT_EQ(escaped, want) << "control char 0x" << std::hex << c;
  }
  // Bytes >= 0x80 (negative when char is signed) pass through untouched.
  const std::string high(1, static_cast<char>(0x83));
  EXPECT_EQ(JsonEscape(high), high);
}

TEST(JsonTest, NumberFormattingIsStable) {
  EXPECT_EQ(JsonNumber(3.0), "3");
  EXPECT_EQ(JsonNumber(-2.0), "-2");
  EXPECT_EQ(JsonNumber(0.25), "0.25");
  EXPECT_EQ(JsonNumber(1.0 / 3.0), "0.333333");
}

TEST(JsonTest, WriterNestsObjectsAndArrays) {
  JsonWriter w;
  w.BeginObject()
      .Key("xs")
      .BeginArray()
      .Int(1)
      .Int(2)
      .EndArray()
      .Key("ok")
      .Bool(true)
      .EndObject();
  EXPECT_EQ(w.Take(), "{\"xs\":[1,2],\"ok\":true}");
}

}  // namespace
}  // namespace cnv::obs
