// Golden-trace regression suite: each S1–S6 catalog scenario regenerates
// its QXDM-formatted trace and byte-compares it against the committed
// golden under tests/golden/. Any behaviour change in the stack, simulator
// or trace formatting shows up here as a readable log diff.
//
// After an *intentional* change, regenerate with
//
//   ./build/examples/golden_traces --out tests/golden
//
// and review the diff like any other code change. The goldens are tied to
// the CI toolchain (libstdc++'s distribution sampling); see conf/golden.h.
#include "conf/golden.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "trace/qxdm.h"

namespace cnv::conf {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(CNV_GOLDEN_DIR) + "/" + name + ".log";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden: " << path
                            << " (regenerate with examples/golden_traces)";
  return std::string(std::istreambuf_iterator<char>(in), {});
}

// One readable failure per scenario, with the first differing line.
void ExpectGoldenMatch(const GoldenScenario& g) {
  SCOPED_TRACE(g.name + ": " + g.description);
  const std::string regenerated = g.generate();
  const std::string golden = ReadFile(GoldenPath(g.name));
  if (regenerated == golden) return;
  std::istringstream a(golden);
  std::istringstream b(regenerated);
  std::string la;
  std::string lb;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool more_a = static_cast<bool>(std::getline(a, la));
    const bool more_b = static_cast<bool>(std::getline(b, lb));
    if (!more_a && !more_b) break;
    if (!more_a) la.clear();
    if (!more_b) lb.clear();
    ASSERT_EQ(la, lb) << g.name << " first differs at line " << line;
  }
  FAIL() << g.name << ": traces differ";  // e.g. trailing bytes only
}

TEST(TraceGoldenTest, CatalogCoversAllSixFindingsPlusCongestion) {
  const auto& scenarios = GoldenScenarios();
  ASSERT_EQ(scenarios.size(), 7u);
  std::set<std::string> names;
  for (const auto& g : scenarios) {
    EXPECT_TRUE(names.insert(g.name).second) << "duplicate " << g.name;
    EXPECT_FALSE(g.description.empty());
    EXPECT_NE(g.generate, nullptr);
  }
  for (int i = 1; i <= 6; ++i) {
    const std::string prefix = "s" + std::to_string(i) + "_";
    EXPECT_TRUE(std::any_of(names.begin(), names.end(),
                            [&](const std::string& n) {
                              return n.rfind(prefix, 0) == 0;
                            }))
        << "no golden for S" << i;
  }
  EXPECT_TRUE(names.count("congestion_attach_storm_opi"))
      << "no golden for the overload-control congestion scenario";
}

TEST(TraceGoldenTest, RegeneratedTracesMatchCommittedGoldens) {
  for (const auto& g : GoldenScenarios()) {
    ExpectGoldenMatch(g);
  }
}

TEST(TraceGoldenTest, GoldensRoundTripThroughTheQxdmParser) {
  // The committed goldens must stay parseable: FormatLog(ParseLog(x)) == x.
  for (const auto& g : GoldenScenarios()) {
    SCOPED_TRACE(g.name);
    const std::string golden = ReadFile(GoldenPath(g.name));
    ASSERT_FALSE(golden.empty());
    const auto parsed = trace::ParseLog(golden);
    EXPECT_EQ(trace::FormatLog(parsed), golden);
  }
}

}  // namespace
}  // namespace cnv::conf
