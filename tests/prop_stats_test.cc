// Property sweeps for the statistics utilities over random datasets.
#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace cnv {
namespace {

class StatsSweep : public ::testing::TestWithParam<int> {
 protected:
  Samples RandomSamples(std::size_t n) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    Samples s;
    for (std::size_t i = 0; i < n; ++i) {
      s.Add(rng.LogNormal(0.5, 1.2));
    }
    return s;
  }
};

TEST_P(StatsSweep, PercentileIsMonotoneInP) {
  const auto s = RandomSamples(257);
  double prev = s.Percentile(0);
  for (double p = 1; p <= 100; p += 1) {
    const double v = s.Percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), s.Min());
  EXPECT_DOUBLE_EQ(s.Percentile(100), s.Max());
}

TEST_P(StatsSweep, CdfAndPercentileAgree) {
  const auto s = RandomSamples(100);
  for (double p = 5; p <= 100; p += 5) {
    // At least p% of the mass lies at or below the p-th percentile.
    EXPECT_GE(s.CdfAt(s.Percentile(p)) * 100.0, p - 1e-9);
  }
}

TEST_P(StatsSweep, CdfIsMonotoneAndBounded) {
  const auto s = RandomSamples(64);
  double prev = 0;
  for (double x = 0; x < 30; x += 0.25) {
    const double c = s.CdfAt(x);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(StatsSweep, MeanLiesWithinRange) {
  const auto s = RandomSamples(128);
  EXPECT_GE(s.Mean(), s.Min());
  EXPECT_LE(s.Mean(), s.Max());
  EXPECT_GE(s.Stddev(), 0.0);
}

TEST_P(StatsSweep, RenderCdfMatchesPercentiles) {
  const auto s = RandomSamples(99);
  const auto curve = RenderCdf(s, 21);
  ASSERT_EQ(curve.size(), 21u);
  for (const auto& pt : curve) {
    EXPECT_DOUBLE_EQ(pt.value, s.Percentile(pt.percent));
  }
}

TEST_P(StatsSweep, SortedIsAPermutation) {
  const auto s = RandomSamples(50);
  auto sorted = s.Sorted();
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  auto values = s.Values();
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, sorted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsSweep, ::testing::Range(1, 11));

}  // namespace
}  // namespace cnv
