// Kill-schedule fuzzer: the tentpole invariant of the distributed core is
// that the merged grid output is byte-identical across backends, worker
// counts, and ANY injected worker-kill schedule. Each fuzz round draws a
// random kill plan (which slot dies after how many merged results, possibly
// repeatedly) and a random worker count, runs the process backend, and
// byte-compares against the serial baseline. A second leg kills the
// "coordinator" mid-run by checkpointing a prefix, then resumes with a
// different schedule and compares again.
#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/grid.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace cnv::dist {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const fs::path dir =
      fs::path(testing::TempDir()) / "dist_killfuzz_test" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// Payloads mix the index into a few rounds of FNV so a merge bug (wrong
// index, truncated payload, doubled cell) cannot collide into a pass.
class HashGrid : public CellGrid {
 public:
  explicit HashGrid(std::size_t n) : n_(n) {}
  std::size_t size() const override { return n_; }
  CellOutcome RunCell(std::size_t i, std::string_view) override {
    std::uint64_t h = 0xcbf29ce484222325ull ^ (i * 0x9e3779b97f4a7c15ull);
    std::string payload = "cell " + std::to_string(i) + ":";
    for (int round = 0; round < 4; ++round) {
      h = (h ^ (h >> 29)) * 0x100000001b3ull;
      payload += " " + std::to_string(h);
    }
    CellOutcome out;
    out.payload = std::move(payload);
    return out;
  }

 private:
  std::size_t n_;
};

KillPlan RandomPlan(Rng& rng, std::uint64_t cells, int workers) {
  KillPlan plan;
  const int kills = static_cast<int>(rng.UniformInt(1, 5));
  for (int k = 0; k < kills; ++k) {
    KillEvent ev;
    // Leave a few cells of slack after the last threshold, so every event
    // reliably fires before the grid completes.
    ev.after_results = static_cast<std::uint64_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(cells) - 5));
    ev.slot = static_cast<int>(rng.UniformInt(0, workers - 1));
    plan.events.push_back(ev);
  }
  return plan;
}

TEST(KillFuzzTest, AnyKillScheduleIsByteIdenticalToSerial) {
  constexpr std::size_t kCells = 20;
  HashGrid grid(kCells);
  const DistOptions serial_opt;
  const GridResult serial = RunGrid(grid, serial_opt);
  ASSERT_TRUE(serial.complete);

  Rng rng(20260808);
  for (int round = 0; round < 8; ++round) {
    DistOptions opt;
    opt.backend = Backend::kProcess;
    opt.workers = static_cast<int>(rng.UniformInt(1, 4));
    // Kills must never quarantine here: the schedule may hammer one cell.
    opt.quarantine_after = 1000;
    opt.kill_plan = RandomPlan(rng, kCells, opt.workers);
    const GridResult result = RunGrid(grid, opt);
    ASSERT_TRUE(result.complete)
        << "round " << round << " workers=" << opt.workers;
    EXPECT_EQ(result.payloads, serial.payloads)
        << "round " << round << " workers=" << opt.workers
        << " kills=" << opt.kill_plan.events.size();
    EXPECT_GE(result.worker_deaths, 1u);
  }
}

TEST(KillFuzzTest, CoordinatorKillPlusResumeIsByteIdenticalToSerial) {
  constexpr std::size_t kCells = 16;
  HashGrid grid(kCells);
  const DistOptions serial_opt;
  const GridResult serial = RunGrid(grid, serial_opt);

  Rng rng(4242);
  for (int round = 0; round < 4; ++round) {
    const std::string dir = TempDir("resume_round_" + std::to_string(round));
    ckpt::ManifestStore store(dir, 99);

    // Leg 1: run under a kill schedule, then "kill the coordinator" by
    // cancelling after a random number of merged results. The cancel lands
    // mid-run, so an arbitrary subset of cells is checkpointed.
    std::atomic<bool> cancel{false};
    std::atomic<std::uint64_t> merged{0};
    // Keep enough undone cells that in-flight stragglers (at most one per
    // worker) cannot finish the whole grid after the cancel lands.
    const std::uint64_t stop_after =
        static_cast<std::uint64_t>(rng.UniformInt(1, kCells - 6));
    class CountingGrid : public HashGrid {
     public:
      CountingGrid(std::size_t n, std::atomic<std::uint64_t>* merged,
                   std::atomic<bool>* cancel, std::uint64_t stop_after)
          : HashGrid(n),
            merged_(merged),
            cancel_(cancel),
            stop_after_(stop_after) {}
      CellOutcome RunCell(std::size_t i, std::string_view carry) override {
        CellOutcome out = HashGrid::RunCell(i, carry);
        if (merged_->fetch_add(1) + 1 >= stop_after_) cancel_->store(true);
        return out;
      }

     private:
      std::atomic<std::uint64_t>* merged_;
      std::atomic<bool>* cancel_;
      std::uint64_t stop_after_;
    };
    // Thread backend for the interrupted leg: the cancel flag lives in the
    // test process, so it must be visible to the code running the cells.
    CountingGrid interrupted_grid(kCells, &merged, &cancel, stop_after);
    DistOptions first_opt;
    first_opt.workers = static_cast<int>(rng.UniformInt(1, 4));
    first_opt.cancel = &cancel;
    first_opt.store = &store;
    const GridResult first = RunGrid(interrupted_grid, first_opt);
    EXPECT_FALSE(first.complete);

    // Leg 2: resume on the process backend under a fresh kill schedule.
    DistOptions second_opt;
    second_opt.backend = Backend::kProcess;
    second_opt.workers = static_cast<int>(rng.UniformInt(1, 4));
    second_opt.quarantine_after = 1000;
    second_opt.kill_plan = RandomPlan(rng, kCells, second_opt.workers);
    second_opt.store = &store;
    second_opt.resume = true;
    const GridResult resumed = RunGrid(grid, second_opt);
    ASSERT_TRUE(resumed.complete) << "round " << round;
    EXPECT_EQ(resumed.payloads, serial.payloads) << "round " << round;
    EXPECT_GT(resumed.exec.cells_resumed, 0u) << "round " << round;
  }
}

}  // namespace
}  // namespace cnv::dist
