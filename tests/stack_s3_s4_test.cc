// Validation-phase reproduction of S3 (stuck in 3G after CSFB) and S4
// (HOL blocking of outgoing calls behind location updates).
#include <gtest/gtest.h>

#include <functional>

#include "stack/testbed.h"
#include "trace/analyze.h"

namespace cnv::stack {
namespace {

void RunUntil(Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) {
    tb.Run(Millis(100));
  }
}

void AttachAndStartHighRateData(Testbed& tb) {
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  ASSERT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  tb.ue().StartDataSession(0.2);  // the paper's 200 kbps UDP session
  tb.Run(Seconds(1));
}

void RunCsfbCallUntilActive(Testbed& tb) {
  tb.ue().Dial();
  RunUntil(tb,
           [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
           Minutes(2));
  ASSERT_EQ(tb.ue().call_state(), UeDevice::CallState::kActive);
  ASSERT_EQ(tb.ue().serving(), nas::System::k3G);
}

TEST(StackS3Test, CsfbCallFallsBackTo3g) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  Testbed tb(cfg);
  AttachAndStartHighRateData(tb);
  RunCsfbCallUntilActive(tb);
  EXPECT_TRUE(tb.ue().in_csfb_call());
  EXPECT_EQ(tb.ue().rrc3g(), model::Rrc3g::kDch);
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "redirect to 3G"),
            1u);
}

TEST(StackS3Test, OpIReturnsQuicklyButDisruptsData) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  Testbed tb(cfg);
  AttachAndStartHighRateData(tb);
  RunCsfbCallUntilActive(tb);
  tb.Run(Seconds(30));
  tb.ue().HangUp();
  RunUntil(tb, [&] { return tb.ue().serving() == nas::System::k4G; },
           Minutes(1));
  EXPECT_EQ(tb.ue().serving(), nas::System::k4G);
  ASSERT_EQ(tb.ue().stuck_in_3g_seconds().Count(), 1u);
  // Table 6, OP-I: seconds, not minutes.
  EXPECT_LT(tb.ue().stuck_in_3g_seconds().Max(), 5.0);
  EXPECT_EQ(tb.ue().data_disruptions(), 1u);
}

TEST(StackS3Test, OpIIGetsStuckIn3gWhileDataLasts) {
  TestbedConfig cfg;
  cfg.profile = OpII();
  cfg.profile.lu_failure_prob = 0.0;  // isolate S3 from S6
  Testbed tb(cfg);
  AttachAndStartHighRateData(tb);
  RunCsfbCallUntilActive(tb);
  tb.Run(Seconds(10));
  tb.ue().HangUp();
  tb.Run(Minutes(5));
  // Still in 3G: the high-rate session pins DCH and cell reselection needs
  // IDLE (§5.3.1).
  EXPECT_EQ(tb.ue().serving(), nas::System::k3G);
  EXPECT_TRUE(tb.ue().awaiting_cell_reselection());
  EXPECT_EQ(tb.ue().rrc3g(), model::Rrc3g::kDch);

  // The stuck period ends with the data session.
  tb.ue().StopDataSession();
  RunUntil(tb, [&] { return tb.ue().serving() == nas::System::k4G; },
           Minutes(2));
  EXPECT_EQ(tb.ue().serving(), nas::System::k4G);
  ASSERT_EQ(tb.ue().stuck_in_3g_seconds().Count(), 1u);
  EXPECT_GT(tb.ue().stuck_in_3g_seconds().Max(), 300.0);  // ~5 min stuck
}

TEST(StackS3Test, OpIIWithoutDataReturnsAfterRrcDecay) {
  TestbedConfig cfg;
  cfg.profile = OpII();
  cfg.profile.lu_failure_prob = 0.0;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  RunCsfbCallUntilActive(tb);
  tb.Run(Seconds(10));
  tb.ue().HangUp();
  RunUntil(tb, [&] { return tb.ue().serving() == nas::System::k4G; },
           Minutes(2));
  EXPECT_EQ(tb.ue().serving(), nas::System::k4G);
  ASSERT_EQ(tb.ue().stuck_in_3g_seconds().Count(), 1u);
  // DCH->FACH (5s) + FACH->IDLE (12s): around 17 s.
  EXPECT_NEAR(tb.ue().stuck_in_3g_seconds().Max(), 17.0, 2.0);
}

TEST(StackS3Test, CsfbTagRemedyUnsticksOpII) {
  TestbedConfig cfg;
  cfg.profile = OpII();
  cfg.profile.lu_failure_prob = 0.0;
  cfg.solutions.csfb_tag = true;
  Testbed tb(cfg);
  AttachAndStartHighRateData(tb);
  RunCsfbCallUntilActive(tb);
  tb.Run(Seconds(10));
  tb.ue().HangUp();
  RunUntil(tb, [&] { return tb.ue().serving() == nas::System::k4G; },
           Minutes(1));
  EXPECT_EQ(tb.ue().serving(), nas::System::k4G);
  ASSERT_EQ(tb.ue().stuck_in_3g_seconds().Count(), 1u);
  EXPECT_LT(tb.ue().stuck_in_3g_seconds().Max(), 1.0);
  EXPECT_EQ(tb.ue().data_disruptions(), 0u);
}

// ----------------------------------------------------------------- S4 ---

double MeasureCallSetupWithLuCollision(const SolutionConfig& sol) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  cfg.solutions = sol;
  cfg.seed = 5;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.ue().CrossAreaBoundary();  // location update starts
  tb.Run(Millis(200));
  tb.ue().Dial();               // call collides with the update
  RunUntil(tb,
           [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
           Minutes(2));
  EXPECT_EQ(tb.ue().call_state(), UeDevice::CallState::kActive);
  return tb.ue().call_setup_seconds().Values().back();
}

TEST(StackS4Test, LocationUpdateDelaysOutgoingCall) {
  const double blocked = MeasureCallSetupWithLuCollision({});
  // Baseline setup without a colliding update.
  TestbedConfig cfg;
  cfg.profile = OpI();
  cfg.seed = 5;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.ue().Dial();
  RunUntil(tb,
           [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
           Minutes(2));
  const double base = tb.ue().call_setup_seconds().Values().back();
  // Figure 7: ~11.4 s average setup, ~8.3 s extra when colliding with an
  // update (~3 s LAU + ~4.3 s MM-WAIT-FOR-NET-CMD chain effect).
  EXPECT_GT(base, 8.0);
  EXPECT_LT(base, 15.0);
  EXPECT_GT(blocked - base, 4.0);
  EXPECT_LT(blocked - base, 12.0);
}

TEST(StackS4Test, DeferralIsTraced) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.ue().CrossAreaBoundary();
  tb.Run(Millis(200));
  tb.ue().Dial();
  tb.Run(Seconds(1));
  EXPECT_GE(tb.ue().deferred_service_requests(), 1u);
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "CM service request deferred"),
            1u);
}

TEST(StackS4Test, DecouplingRemovesTheDelay) {
  SolutionConfig sol;
  sol.mm_decoupled = true;
  const double decoupled = MeasureCallSetupWithLuCollision(sol);
  const double coupled = MeasureCallSetupWithLuCollision({});
  EXPECT_GT(coupled - decoupled, 4.0);
  EXPECT_LT(decoupled, 15.0);
}

TEST(StackS4Test, WaitForNetCmdKeepsBlockingAfterAccept) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.ue().CrossAreaBoundary();
  // Wait until the update finished but MM still processes net commands.
  RunUntil(tb,
           [&] { return tb.ue().mm_state() == UeDevice::MmState::kWaitNetCmd; },
           Minutes(1));
  ASSERT_EQ(tb.ue().mm_state(), UeDevice::MmState::kWaitNetCmd);
  tb.ue().Dial();
  tb.Run(Millis(500));
  EXPECT_GE(tb.ue().deferred_service_requests(), 1u);
  EXPECT_EQ(tb.ue().call_state(), UeDevice::CallState::kPending);
}

}  // namespace
}  // namespace cnv::stack
