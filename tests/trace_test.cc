#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "trace/analyze.h"
#include "trace/collector.h"
#include "trace/qxdm.h"

namespace cnv::trace {
namespace {

TEST(CollectorTest, StampsRecordsWithSimulatedTime) {
  sim::Simulator sim;
  Collector c(sim);
  c.Msg(nas::System::k4G, "EMM", "Attach Request sent");
  sim.RunUntil(Millis(1234));
  c.State(nas::System::k4G, "EMM", "EMM-REGISTERED");
  ASSERT_EQ(c.records().size(), 2u);
  EXPECT_EQ(c.records()[0].time, 0);
  EXPECT_EQ(c.records()[1].time, Millis(1234));
  EXPECT_EQ(c.records()[0].type, TraceType::kMsg);
  EXPECT_EQ(c.records()[1].type, TraceType::kState);
}

TEST(CollectorTest, ClearEmptiesTheLog) {
  sim::Simulator sim;
  Collector c(sim);
  c.Event(nas::System::k3G, "MM", "x");
  c.Clear();
  EXPECT_TRUE(c.records().empty());
}

TEST(QxdmTest, FormatContainsAllFiveFields) {
  TraceRecord r{Millis(61'250), TraceType::kMsg, nas::System::k3G, "MM",
                "Location Updating Request sent"};
  const auto line = FormatRecord(r);
  EXPECT_EQ(line,
            "00:01:01.250 [MSG] [3G] [MM] Location Updating Request sent");
}

TEST(QxdmTest, ParseRoundTrip) {
  TraceRecord r{kHour + Minutes(2) + Seconds(3) + Millis(45), TraceType::kState,
                nas::System::k4G, "4G-RRC", "RRC CONNECTED -> IDLE"};
  const auto parsed = ParseRecord(FormatRecord(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r);
}

TEST(QxdmTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(ParseRecord("").has_value());
  EXPECT_FALSE(ParseRecord("garbage").has_value());
  EXPECT_FALSE(ParseRecord("12:00:00.000 missing brackets").has_value());
  EXPECT_FALSE(ParseRecord("12:00:00.000 [BOGUS] [3G] [MM] x").has_value());
  EXPECT_FALSE(ParseRecord("12:00:00.000 [MSG] [5G] [MM] x").has_value());
  EXPECT_FALSE(ParseRecord("12:99:00.000 [MSG] [3G] [MM] x").has_value());
}

TEST(QxdmTest, FastAndPermissivePathsAgree) {
  // Non-canonical shapes sscanf tolerates must still parse — the fast path
  // declines them and the permissive scanner produces the same record a
  // canonical spelling would.
  const auto canonical =
      ParseRecord("00:01:01.250 [MSG] [3G] [MM] Location Updating Request");
  ASSERT_TRUE(canonical.has_value());
  for (const char* variant : {
           "0:01:01.250 [MSG] [3G] [MM] Location Updating Request",
           "00:01:01.250  [MSG]  [3G]  [MM]  Location Updating Request",
           "00:01:01.250 [MSG] [3G] [MM]   Location Updating Request  ",
       }) {
    const auto parsed = ParseRecord(variant);
    ASSERT_TRUE(parsed.has_value()) << variant;
    EXPECT_EQ(*parsed, *canonical) << variant;
  }
  // Descriptions may contain brackets; everything after the third field
  // belongs to the description on both paths.
  const auto bracketed =
      ParseRecord("00:00:01.000 [EVENT] [4G] [STORM] begins [x] (n=3)");
  ASSERT_TRUE(bracketed.has_value());
  EXPECT_EQ(bracketed->description, "begins [x] (n=3)");
}

TEST(QxdmTest, ParseLogStrictReportsSkippedLineNumbers) {
  const std::string text =
      "00:00:01.000 [MSG] [4G] [EMM] Attach Request sent\n"
      "not a record\n"
      "\n"
      "00:00:02.000 [MSG] [4G] [EMM] Attach Accept received\n"
      "also garbage\n";
  ParseLogStats stats;
  const auto records = ParseLogStrict(text, &stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(stats.lines, 5u);
  EXPECT_EQ(stats.parsed, 2u);
  EXPECT_EQ(stats.blank, 1u);
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(stats.skipped_lines, (std::vector<std::size_t>{2, 5}));
}

TEST(QxdmTest, ParseLogStrictMatchesParseLog) {
  const std::string text =
      "junk\n00:00:01.000 [MSG] [4G] [EMM] Attach Request sent\n\nmore junk";
  ParseLogStats stats;
  EXPECT_EQ(ParseLogStrict(text, &stats), ParseLog(text));
  // The trailing '\n'-less segment is a line; a trailing '\n' is not.
  EXPECT_EQ(stats.lines, 4u);
  ParseLogStats with_newline;
  ParseLogStrict(text + "\n", &with_newline);
  EXPECT_EQ(with_newline.lines, 4u);
  EXPECT_EQ(with_newline.blank, stats.blank);
}

TEST(QxdmTest, ParseLogStrictCapsTheSkippedLineList) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += "garbage line\n";
  ParseLogStats stats;
  ParseLogStrict(text, &stats);
  EXPECT_EQ(stats.skipped, 100u);
  EXPECT_EQ(stats.skipped_lines.size(), ParseLogStats::kMaxSkippedLines);
  EXPECT_EQ(stats.skipped_lines.front(), 1u);
  EXPECT_EQ(stats.skipped_lines.back(), ParseLogStats::kMaxSkippedLines);
}

TEST(QxdmTest, LogRoundTripSkipsBlankLines) {
  sim::Simulator sim;
  Collector c(sim);
  c.Msg(nas::System::k4G, "EMM", "Attach Request sent");
  c.Msg(nas::System::k4G, "EMM", "Attach Accept received");
  c.State(nas::System::k4G, "ESM", "EPS bearer activated");
  const auto text = FormatLog(c.records()) + "\n\n";
  const auto parsed = ParseLog(text);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[2].module, "ESM");
  EXPECT_EQ(parsed, c.records());
}

std::vector<TraceRecord> SampleTrace() {
  return {
      {Seconds(1), TraceType::kMsg, nas::System::k3G, "MM",
       "Location Updating Request sent"},
      {Seconds(4), TraceType::kMsg, nas::System::k3G, "MM",
       "Location Updating Accept received"},
      {Seconds(5), TraceType::kMsg, nas::System::k3G, "CM/CC",
       "call dialed"},
      {Seconds(9), TraceType::kMsg, nas::System::k3G, "CM/CC",
       "call connected"},
      {Seconds(20), TraceType::kMsg, nas::System::k3G, "MM",
       "Location Updating Request sent"},
      {Seconds(22), TraceType::kMsg, nas::System::k3G, "MM",
       "Location Updating Accept received"},
  };
}

TEST(AnalyzeTest, TimeOfFirstHonorsFromBound) {
  const auto t = SampleTrace();
  EXPECT_EQ(TimeOfFirst(t, "Location Updating Request"), Seconds(1));
  EXPECT_EQ(TimeOfFirst(t, "Location Updating Request", Seconds(2)),
            Seconds(20));
  EXPECT_FALSE(TimeOfFirst(t, "not there").has_value());
}

TEST(AnalyzeTest, CountContaining) {
  const auto t = SampleTrace();
  EXPECT_EQ(CountContaining(t, "Location Updating"), 4u);
  EXPECT_EQ(CountContaining(t, "call"), 2u);
  EXPECT_EQ(CountContaining(t, "zzz"), 0u);
}

TEST(AnalyzeTest, IntervalsPairStartsWithNextEnd) {
  const auto t = SampleTrace();
  const auto updates = IntervalsBetween(t, "Location Updating Request",
                                        "Location Updating Accept");
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_EQ(updates[0], Seconds(3));
  EXPECT_EQ(updates[1], Seconds(2));
  const auto setups = IntervalsBetween(t, "call dialed", "call connected");
  ASSERT_EQ(setups.size(), 1u);
  EXPECT_EQ(setups[0], Seconds(4));
}

TEST(AnalyzeTest, UnmatchedStartIsDropped) {
  std::vector<TraceRecord> t = {
      {Seconds(1), TraceType::kMsg, nas::System::k3G, "MM", "start"},
  };
  EXPECT_TRUE(IntervalsBetween(t, "start", "end").empty());
}

TEST(AnalyzeTest, IntervalSecondsFeedsStats) {
  const auto s = IntervalSecondsBetween(SampleTrace(),
                                        "Location Updating Request",
                                        "Location Updating Accept");
  ASSERT_EQ(s.Count(), 2u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
}

TEST(AnalyzeTest, FilterByModuleIsExact) {
  const auto t = SampleTrace();
  EXPECT_EQ(FilterByModule(t, "MM").size(), 4u);
  EXPECT_EQ(FilterByModule(t, "CM/CC").size(), 2u);
  EXPECT_TRUE(FilterByModule(t, "M").empty());
}

}  // namespace
}  // namespace cnv::trace
