// Streaming-boundary fuzz: a randomized log (valid records, garbage lines,
// blank lines, CRLF endings, embedded brackets) is split at random chunk
// sizes and fed through the incremental StreamParser; the record stream
// must match a whole-buffer ParseLog record for record, at every chunking.
// Runs under ASan in CI via the `fuzz` label.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rtv/stream.h"
#include "trace/qxdm.h"
#include "util/rng.h"

namespace cnv::rtv {
namespace {

std::string RandomLine(Rng& rng) {
  switch (rng.UniformInt(0, 5)) {
    case 0:
      return "";  // blank
    case 1: {
      // Garbage of random printable bytes (may contain brackets/colons).
      std::string s;
      const int len = rng.UniformInt(0, 40);
      for (int i = 0; i < len; ++i) {
        s += static_cast<char>(rng.UniformInt(32, 126));
      }
      return s;
    }
    case 2:
      return "00:0x:bad [MSG] [4G] [EMM] malformed timestamp";
    default: {
      // A valid record with randomized fields.
      const char* types[] = {"STATE", "MSG", "EVENT", "FAULT", "RECOV"};
      const char* systems[] = {"3G", "4G", "none"};
      const char* modules[] = {"EMM", "MM", "GMM", "SM", "CM/CC", "3G-RRC"};
      std::string desc = "fuzz record " + std::to_string(rng.UniformInt(0, 999));
      if (rng.UniformInt(0, 3) == 0) desc += " [with] brackets]";
      return std::to_string(rng.UniformInt(0, 23)) + ":" +
             (rng.UniformInt(0, 1) ? "05" : "59") + ":" +
             (rng.UniformInt(0, 1) ? "00" : "42") + "." +
             std::to_string(rng.UniformInt(100, 999)) + " [" +
             types[rng.UniformInt(0, 4)] + "] [" +
             systems[rng.UniformInt(0, 2)] + "] [" +
             modules[rng.UniformInt(0, 5)] + "] " + desc;
    }
  }
}

std::string RandomLog(Rng& rng) {
  std::string log;
  const int lines = rng.UniformInt(0, 60);
  for (int i = 0; i < lines; ++i) {
    log += RandomLine(rng);
    log += rng.UniformInt(0, 9) == 0 ? "\r\n" : "\n";
  }
  if (rng.UniformInt(0, 2) == 0) log += RandomLine(rng);  // no trailing \n
  return log;
}

TEST(StreamParserFuzzTest, RandomChunkingsMatchWholeBufferParse) {
  Rng rng(20260808);
  for (int round = 0; round < 300; ++round) {
    const std::string log = RandomLog(rng);
    const auto want = trace::ParseLog(log);

    StreamParser parser;
    std::vector<trace::TraceRecord> got;
    const auto sink = [&](trace::TraceRecord&& r, std::uint64_t ordinal) {
      ASSERT_EQ(ordinal, got.size());
      got.push_back(std::move(r));
    };
    std::size_t off = 0;
    while (off < log.size()) {
      const auto chunk = static_cast<std::size_t>(
          rng.UniformInt(1, 1 + static_cast<int>(log.size() / 4)));
      parser.Feed(std::string_view(log).substr(off, chunk), sink);
      off += chunk;
    }
    parser.Finish(sink);

    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(trace::FormatRecord(got[i]), trace::FormatRecord(want[i]))
          << "round " << round << " record " << i;
    }
  }
}

TEST(StreamParserFuzzTest, OneByteChunksOnRandomLogs) {
  Rng rng(77);
  for (int round = 0; round < 40; ++round) {
    const std::string log = RandomLog(rng);
    const auto want = trace::ParseLog(log);
    StreamParser parser;
    std::vector<trace::TraceRecord> got;
    const auto sink = [&](trace::TraceRecord&& r, std::uint64_t) {
      got.push_back(std::move(r));
    };
    for (std::size_t i = 0; i < log.size(); ++i) {
      parser.Feed(std::string_view(log).substr(i, 1), sink);
    }
    parser.Finish(sink);
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(trace::FormatRecord(got[i]), trace::FormatRecord(want[i]));
    }
  }
}

TEST(StreamParserFuzzTest, HostileUnterminatedStreamStaysBounded) {
  Rng rng(404);
  StreamParser parser(/*max_line_bytes=*/256);
  const auto sink = [&](trace::TraceRecord&&, std::uint64_t) {};
  // Megabytes of newline-free noise must be discarded at the cap, not
  // buffered.
  std::string blob(1024, 'x');
  for (int i = 0; i < 2048; ++i) parser.Feed(blob, sink);
  parser.Finish(sink);
  EXPECT_EQ(parser.stats().records, 0u);
  EXPECT_EQ(parser.stats().overlong, 1u);
  EXPECT_EQ(parser.stats().bytes, blob.size() * 2048);
}

}  // namespace
}  // namespace cnv::rtv
