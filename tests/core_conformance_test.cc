// Divergence paths of the conformance cross-check: every way the model and
// the stack can disagree — sim-side fix the model doesn't know, model-side
// fix the stack doesn't have, wrong carrier policy, damaged counterexample —
// must land in its own machine-readable verdict, never a silent pass.
#include "core/conformance.h"

#include <set>
#include <string>

#include "gtest/gtest.h"
#include "stack/carrier.h"

namespace cnv::core {
namespace {

TEST(ClassifyTest, CoversTheDivergenceLattice) {
  EXPECT_EQ(ConformanceRunner::Classify(true, true, true),
            conf::Verdict::kConfirmed);
  EXPECT_EQ(ConformanceRunner::Classify(true, true, false),
            conf::Verdict::kRefinementMismatch);
  EXPECT_EQ(ConformanceRunner::Classify(true, false, false),
            conf::Verdict::kModelOnlyDivergence);
  EXPECT_EQ(ConformanceRunner::Classify(true, false, true),
            conf::Verdict::kModelOnlyDivergence);
  EXPECT_EQ(ConformanceRunner::Classify(false, true, true),
            conf::Verdict::kSimOnlyDivergence);
  EXPECT_EQ(ConformanceRunner::Classify(false, true, false),
            conf::Verdict::kSimOnlyDivergence);
  EXPECT_EQ(ConformanceRunner::Classify(false, false, false),
            conf::Verdict::kAgreedAbsent);
}

TEST(VerdictTest, AllVerdictsHaveDistinctMachineReadableNames) {
  std::set<std::string> names;
  for (const auto v :
       {conf::Verdict::kConfirmed, conf::Verdict::kAgreedAbsent,
        conf::Verdict::kModelOnlyDivergence, conf::Verdict::kSimOnlyDivergence,
        conf::Verdict::kRefinementMismatch, conf::Verdict::kCarrierMismatch,
        conf::Verdict::kBadCounterexample}) {
    const std::string name = conf::ToString(v);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate: " << name;
  }
  EXPECT_EQ(names.size(), 7u);
}

// Model says violation, the replayed stack carries the §8 remedy and
// recovers: a model-only divergence, the expected shape when a fix is
// deployed sim-side first.
TEST(ConformanceRunnerTest, SimSideFixYieldsModelOnlyDivergence) {
  ConformanceOptions opt;
  opt.solutions.reactivate_bearer = true;  // S1 remedy
  opt.solutions.shim_layer = true;         // S2 remedy
  opt.solutions.mm_decoupled = true;       // S4 remedy
  const ConformanceRunner runner(opt);
  for (const auto id : {FindingId::kS1, FindingId::kS2, FindingId::kS4}) {
    const auto res = runner.CrossCheck(id, stack::OpI());
    EXPECT_EQ(res.verdict, conf::Verdict::kModelOnlyDivergence)
        << ToString(id) << ": " << res.detail;
    EXPECT_TRUE(res.model_violation);
    EXPECT_FALSE(res.probe_reproduced);
  }
}

// The reverse: the model checks the fixed design but the stack still runs
// the standards-mandated defect — a sim-only divergence.
TEST(ConformanceRunnerTest, ModelSideFixYieldsSimOnlyDivergence) {
  ConformanceOptions opt;
  opt.model_solutions = true;
  const ConformanceRunner runner(opt);
  for (const auto id : {FindingId::kS1, FindingId::kS2, FindingId::kS4}) {
    const auto res = runner.CrossCheck(id, stack::OpI());
    EXPECT_EQ(res.verdict, conf::Verdict::kSimOnlyDivergence)
        << ToString(id) << ": " << res.detail;
    EXPECT_FALSE(res.model_violation);
    EXPECT_TRUE(res.probe_reproduced);
  }
}

// S3 modeled with the cell-reselection policy but replayed on the
// release-with-redirect carrier: the counterexample cannot reproduce there
// and the mismatch is reported as such, not as a divergence.
TEST(ConformanceRunnerTest, WrongCarrierPolicyYieldsCarrierMismatch) {
  ConformanceOptions opt;
  opt.s3_policy = model::SwitchPolicy::kCellReselection;
  const ConformanceRunner runner(opt);
  ASSERT_NE(stack::OpI().csfb_return_policy,
            model::SwitchPolicy::kCellReselection);
  const auto res = runner.CrossCheck(FindingId::kS3, stack::OpI());
  EXPECT_EQ(res.verdict, conf::Verdict::kCarrierMismatch) << res.detail;
  EXPECT_TRUE(res.model_violation);
  EXPECT_NE(res.detail.find("policy"), std::string::npos);
}

// A truncated counterexample no longer ends in a violating state; the
// compiler must refuse it and the runner must surface that refusal.
TEST(ConformanceRunnerTest, TruncatedCounterexampleYieldsBadCounterexample) {
  ConformanceOptions opt;
  opt.truncate_trace = 1;
  const ConformanceRunner runner(opt);
  for (const auto id : {FindingId::kS1, FindingId::kS3, FindingId::kS4}) {
    const auto res = runner.CrossCheck(id, stack::OpI());
    EXPECT_EQ(res.verdict, conf::Verdict::kBadCounterexample)
        << ToString(id) << ": " << res.detail;
    EXPECT_FALSE(res.detail.empty());
  }
}

// S3 on OP-I with matching model policy: both sides agree the defect is
// absent on this carrier.
TEST(ConformanceRunnerTest, S3OnReleaseWithRedirectCarrierAgreesAbsent) {
  const ConformanceRunner runner;
  const auto res = runner.CrossCheck(FindingId::kS3, stack::OpI());
  EXPECT_EQ(res.verdict, conf::Verdict::kAgreedAbsent) << res.detail;
  EXPECT_FALSE(res.model_violation);
  EXPECT_FALSE(res.probe_reproduced);
}

TEST(ConformanceRunnerTest, ValidationOnlyFindingsAreReportedNotCrossChecked) {
  const ConformanceRunner runner;
  for (const auto id : {FindingId::kS5, FindingId::kS6}) {
    const auto res = runner.CrossCheck(id, stack::OpI());
    EXPECT_EQ(res.verdict, conf::Verdict::kAgreedAbsent);
    EXPECT_NE(res.detail.find("validation-only"), std::string::npos)
        << res.detail;
  }
}

TEST(ConformanceRunnerTest, RunAllCoversS1ThroughS4) {
  const ConformanceRunner runner;
  const auto results = runner.RunAll(stack::OpII());
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].id, FindingId::kS1);
  EXPECT_EQ(results[3].id, FindingId::kS4);
  // On OP-II all four screening findings reproduce (S3's affected carrier).
  for (const auto& r : results) {
    EXPECT_EQ(r.verdict, conf::Verdict::kConfirmed)
        << ToString(r.id) << ": " << r.detail;
  }
  const std::string text = ConformanceRunner::Format(results);
  EXPECT_NE(text.find("confirmed"), std::string::npos);
  EXPECT_NE(text.find("S4"), std::string::npos);
}

}  // namespace
}  // namespace cnv::core
