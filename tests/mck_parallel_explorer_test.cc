// Determinism suite for the parallel exploration engine: at any worker
// count, ParallelExplore must return byte-identical results to the serial
// wave-BFS of mck::Explore — same stats, same violations in the same order
// with the same counterexample traces — on every toy and screening model,
// bounded or not.
#include "mck/parallel_explorer.h"

#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "mck/toy_models.h"
#include "model/s1_model.h"
#include "model/s2_model.h"
#include "model/s3_model.h"
#include "model/s4_model.h"

namespace cnv::mck {
namespace {

// Runs serial Explore and ParallelExplore at jobs 1, 2 and 8, asserting the
// deterministic outputs match exactly via the canonical views: every
// deterministic field at once, no hand-picked subsets a new field could
// slip past. hash_occupancy is excluded from the serial comparison (a
// sharded table has a different load factor than a single one) but the full
// views — occupancy included — must be identical across job counts.
template <typename M>
void ExpectMatchesSerial(const M& m,
                         const PropertySet<typename M::State>& props,
                         ExploreOptions base = {}) {
  base.order = SearchOrder::kBreadthFirst;
  const ExploreResult<M> serial = Explore(m, props, base);

  std::optional<ExploreStatsView> stats_ref;
  std::optional<ParallelStatsView> par_ref;
  for (const int jobs : {1, 2, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    ParallelExploreOptions opt;
    opt.base = base;
    opt.jobs = jobs;
    const ParallelExploreResult<M> par = ParallelExplore(m, props, opt);

    EXPECT_EQ(DeterministicView(par.stats, /*include_occupancy=*/false),
              DeterministicView(serial.stats, /*include_occupancy=*/false));

    ASSERT_EQ(par.violations.size(), serial.violations.size());
    for (std::size_t i = 0; i < par.violations.size(); ++i) {
      SCOPED_TRACE("violation #" + std::to_string(i));
      EXPECT_EQ(par.violations[i].property, serial.violations[i].property);
      EXPECT_TRUE(par.violations[i].state == serial.violations[i].state);
      EXPECT_EQ(FormatTrace(m, par.violations[i]),
                FormatTrace(m, serial.violations[i]));
    }

    EXPECT_EQ(par.par.jobs, jobs);
    EXPECT_EQ(par.par.shards, 64u);
    const ExploreStatsView stats_view = DeterministicView(par.stats);
    const ParallelStatsView par_view = DeterministicView(par.par);
    if (!stats_ref.has_value()) {
      stats_ref = stats_view;
      par_ref = par_view;
    } else {
      EXPECT_EQ(stats_view, *stats_ref);
      EXPECT_EQ(par_view, *par_ref);
    }
  }
}

TEST(ParallelExploreTest, CorrectCounterMatchesSerial) {
  toys::CounterModel m{4, false};
  PropertySet<toys::CounterModel::State> props{
      {"below_cap", [](const auto& s) { return s.value <= 4; }, ""}};
  ExpectMatchesSerial(m, props);
}

TEST(ParallelExploreTest, BuggyCounterMatchesSerial) {
  toys::CounterModel m{20, true};
  PropertySet<toys::CounterModel::State> props{
      {"below_cap", [](const auto& s) { return s.value <= 20; }, ""}};
  ExpectMatchesSerial(m, props);
}

TEST(ParallelExploreTest, PetersonMatchesSerial) {
  toys::PetersonModel good{true};
  toys::PetersonModel broken{false};
  PropertySet<toys::PetersonModel::State> props{
      {"mutex",
       [](const auto& s) { return !toys::PetersonModel::BothCritical(s); },
       ""}};
  ExpectMatchesSerial(good, props);
  ExpectMatchesSerial(broken, props);
}

TEST(ParallelExploreTest, LossyPingDeadlockMatchesSerial) {
  ExploreOptions base;
  base.detect_deadlock = true;
  PropertySet<toys::LossyPingModel::State> no_props;
  ExpectMatchesSerial(toys::LossyPingModel{true}, no_props, base);
  ExpectMatchesSerial(toys::LossyPingModel{false}, no_props, base);
}

TEST(ParallelExploreTest, DeadlockModelMatchesSerial) {
  ExploreOptions base;
  base.detect_deadlock = true;
  PropertySet<toys::DeadlockModel::State> no_props;
  ExpectMatchesSerial(toys::DeadlockModel{}, no_props, base);
}

TEST(ParallelExploreTest, AllViolationsModeMatchesSerial) {
  // first_violation_per_property = false reports every violating state.
  toys::CounterModel m{6, true};
  PropertySet<toys::CounterModel::State> props{
      {"below_cap", [](const auto& s) { return s.value <= 6; }, ""}};
  ExploreOptions base;
  base.first_violation_per_property = false;
  ExpectMatchesSerial(m, props, base);
}

TEST(ParallelExploreTest, MaxStatesTruncationMatchesSerial) {
  toys::PetersonModel m{true};
  PropertySet<toys::PetersonModel::State> props{
      {"mutex",
       [](const auto& s) { return !toys::PetersonModel::BothCritical(s); },
       ""}};
  for (const std::uint64_t cap : {1u, 2u, 7u, 10u, 25u}) {
    SCOPED_TRACE("max_states=" + std::to_string(cap));
    ExploreOptions base;
    base.max_states = cap;
    ExpectMatchesSerial(m, props, base);
  }
}

TEST(ParallelExploreTest, MaxDepthTruncationMatchesSerial) {
  toys::PetersonModel m{true};
  PropertySet<toys::PetersonModel::State> props{
      {"mutex",
       [](const auto& s) { return !toys::PetersonModel::BothCritical(s); },
       ""}};
  for (const std::uint64_t depth : {1u, 3u, 6u}) {
    SCOPED_TRACE("max_depth=" + std::to_string(depth));
    ExploreOptions base;
    base.max_depth = depth;
    ExpectMatchesSerial(m, props, base);
  }
}

TEST(ParallelExploreTest, S1ModelMatchesSerial) {
  {
    model::S1Model m{model::S1Model::Config{}};
    ExpectMatchesSerial(m, model::S1Model::Properties());
  }
  {
    model::S1Model::Config cfg;
    cfg.allow_user_data_toggle = false;
    model::S1Model m(cfg);
    ExpectMatchesSerial(m, model::S1Model::Properties());
  }
}

TEST(ParallelExploreTest, S2ModelMatchesSerial) {
  // Loss-only, duplication-only, and the combined cell.
  for (const bool allow_loss : {true, false}) {
    for (const bool allow_duplicate : {true, false}) {
      if (!allow_loss && !allow_duplicate) continue;
      model::S2Model::Config cfg;
      cfg.allow_loss = allow_loss;
      cfg.allow_duplicate = allow_duplicate;
      model::S2Model m(cfg);
      ExpectMatchesSerial(m, model::S2Model::Properties());
    }
  }
}

TEST(ParallelExploreTest, S3ModelMatchesSerialForEveryPolicy) {
  for (const auto policy : {model::SwitchPolicy::kReleaseWithRedirect,
                            model::SwitchPolicy::kHandover,
                            model::SwitchPolicy::kCellReselection}) {
    model::S3Model::Config cfg;
    cfg.policy = policy;
    model::S3Model m(cfg);
    ExpectMatchesSerial(m, m.Properties());
  }
}

TEST(ParallelExploreTest, S4ModelMatchesSerial) {
  model::S4Model m{model::S4Model::Config{}};
  ExpectMatchesSerial(m, model::S4Model::Properties());
}

TEST(ParallelExploreTest, RepeatedRunsAreByteIdentical) {
  model::S3Model m;
  ParallelExploreOptions opt;
  opt.jobs = 8;
  const auto a = ParallelExplore(m, m.Properties(), opt);
  const auto b = ParallelExplore(m, m.Properties(), opt);
  EXPECT_EQ(a.stats.states_visited, b.stats.states_visited);
  EXPECT_EQ(a.stats.transitions, b.stats.transitions);
  EXPECT_DOUBLE_EQ(a.stats.hash_occupancy, b.stats.hash_occupancy);
  EXPECT_EQ(a.par.waves, b.par.waves);
  EXPECT_EQ(a.par.largest_shard, b.par.largest_shard);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(FormatTrace(m, a.violations[i]), FormatTrace(m, b.violations[i]));
  }
}

TEST(ParallelExploreTest, SharedExecutorReusesWorkersAcrossModels) {
  dist::Executor exec(4);
  model::S3Model s3;
  const auto first = ParallelExplore(s3, s3.Properties(), {}, &exec);
  const auto second = ParallelExplore(s3, s3.Properties(), {}, &exec);
  EXPECT_EQ(first.stats.states_visited, second.stats.states_visited);
  EXPECT_EQ(first.par.jobs, 4);
  // Busy time accrued before the second run must not leak into its figures.
  EXPECT_GE(second.par.worker_busy_seconds, 0.0);
}

TEST(ParallelExploreTest, ShardBitsZeroStillMatchesSerial) {
  toys::PetersonModel m{false};
  PropertySet<toys::PetersonModel::State> props{
      {"mutex",
       [](const auto& s) { return !toys::PetersonModel::BothCritical(s); },
       ""}};
  const auto serial = Explore(m, props);
  ParallelExploreOptions opt;
  opt.jobs = 4;
  opt.shard_bits = 0;  // single shard: the striping degenerates gracefully
  const auto par = ParallelExplore(m, props, opt);
  EXPECT_EQ(par.par.shards, 1u);
  EXPECT_EQ(par.stats.states_visited, serial.stats.states_visited);
  ASSERT_EQ(par.violations.size(), serial.violations.size());
  for (std::size_t i = 0; i < par.violations.size(); ++i) {
    EXPECT_EQ(FormatTrace(m, par.violations[i]),
              FormatTrace(m, serial.violations[i]));
  }
}

// Regression for the shard-merge rollback: when max_states lands mid-wave
// the merge phase must undo the over-cap insertions, and the undo now reuses
// the hash cached at insert time instead of re-hashing the state. If the
// erased hash ever disagreed with the inserted one the table would retain a
// ghost entry and hash_occupancy would drift between job counts. Pin full
// byte-identity — occupancy included — across jobs for caps that force a
// rollback in every shard layout.
TEST(ParallelExploreTest, RollbackLeavesHashOccupancyByteIdentical) {
  toys::PetersonModel m{true};
  PropertySet<toys::PetersonModel::State> props{
      {"mutex",
       [](const auto& s) { return !toys::PetersonModel::BothCritical(s); },
       ""}};
  for (const std::uint64_t cap : {3u, 5u, 9u, 13u, 21u}) {
    SCOPED_TRACE("max_states=" + std::to_string(cap));
    std::optional<ExploreStatsView> ref;
    std::optional<ParallelStatsView> par_ref;
    for (const int jobs : {1, 2, 4, 8}) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs));
      ParallelExploreOptions opt;
      opt.base.max_states = cap;
      opt.jobs = jobs;
      const auto r = ParallelExplore(m, props, opt);
      EXPECT_TRUE(r.stats.truncated);
      EXPECT_EQ(r.stats.states_visited, cap);
      const auto view = DeterministicView(r.stats);  // occupancy included
      if (!ref.has_value()) {
        ref = view;
        par_ref = DeterministicView(r.par);
      } else {
        EXPECT_EQ(view, *ref);
        EXPECT_EQ(DeterministicView(r.par), *par_ref);
      }
    }
  }
}

}  // namespace
}  // namespace cnv::mck
