#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "fault/campaign.h"
#include "sim/simulator.h"

namespace cnv::obs {
namespace {

TEST(SnapshotSchedulerTest, SnapshotsFollowTheSimulatorClock) {
  sim::Simulator sim;
  int refreshes = 0;
  SnapshotScheduler snaps(
      sim,
      [&](Registry& reg) {
        ++refreshes;
        reg.GetGauge("now_us").Set(static_cast<double>(sim.now()));
      },
      Seconds(10));
  snaps.Start();
  snaps.Start();  // idempotent: must not double-arm
  // The scheduler perpetually re-arms itself, so the run must be bounded.
  sim.RunAll(Seconds(35));
  // Snapshots at t=10,20,30s; the 40s arming is past the bound.
  ASSERT_EQ(snaps.snapshots().size(), 3u);
  EXPECT_EQ(refreshes, 3);
  EXPECT_NE(snaps.snapshots()[0].find("\"sim_time_us\":10000000"),
            std::string::npos);
  EXPECT_NE(snaps.snapshots()[2].find("\"sim_time_us\":30000000"),
            std::string::npos);
}

TEST(SnapshotSchedulerTest, SnapshotNowUsesCurrentTime) {
  sim::Simulator sim;
  SnapshotScheduler snaps(sim, [](Registry&) {}, Seconds(60));
  snaps.SnapshotNow();
  ASSERT_EQ(snaps.snapshots().size(), 1u);
  EXPECT_NE(snaps.snapshots()[0].find("\"sim_time_us\":0"), std::string::npos);
}

TEST(RunReportTest, JsonShapeAndLabel) {
  RunReport r;
  r.meta = {{"seed", "7"}, {"plan", "s2-attach-disruption"}};
  r.snapshots = {"{\"sim_time_us\":1}"};
  r.final_metrics = "{\"sim_time_us\":2}";
  ProcedureSpan s;
  s.kind = SpanKind::kAttach;
  s.start = 0;
  s.end = Seconds(1);
  s.outcome = SpanOutcome::kSuccess;
  r.spans = {s};

  const std::string json = r.ToJson();
  EXPECT_NE(json.find("\"meta\":{\"seed\":\"7\""), std::string::npos);
  EXPECT_NE(json.find("\"snapshots\":[{\"sim_time_us\":1}]"),
            std::string::npos);
  EXPECT_NE(json.find("\"final\":{\"sim_time_us\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"attach\""), std::string::npos);
  EXPECT_EQ(r.Label(), "seed=7 plan=s2-attach-disruption");
}

// The acceptance bar for the telemetry layer: two runs of the same
// (seed, plan, profile) triple must export byte-identical reports —
// snapshots, final metrics, spans, and the Chrome fragment.
TEST(TelemetryDeterminismTest, RepeatedRunsExportIdenticalBytes) {
  fault::CampaignConfig cfg;
  cfg.collect_telemetry = true;
  cfg.snapshot_period = Seconds(120);
  fault::CampaignRunner runner(cfg);
  const auto a =
      runner.RunOne(5, fault::plans::S2AttachDisruption(), stack::OpI());
  const auto b =
      runner.RunOne(5, fault::plans::S2AttachDisruption(), stack::OpI());
  ASSERT_TRUE(a.telemetry.has_value());
  ASSERT_TRUE(b.telemetry.has_value());
  EXPECT_FALSE(a.telemetry->snapshots.empty());
  EXPECT_FALSE(a.telemetry->final_metrics.empty());
  EXPECT_FALSE(a.telemetry->spans.empty());
  EXPECT_EQ(a.telemetry->ToJson(), b.telemetry->ToJson());
  EXPECT_EQ(a.telemetry->ChromeFragment(1), b.telemetry->ChromeFragment(1));
}

TEST(TelemetryTest, DisabledByDefault) {
  fault::CampaignConfig cfg;
  fault::CampaignRunner runner(cfg);
  const auto run =
      runner.RunOne(1, fault::plans::S2AttachDisruption(), stack::OpI());
  EXPECT_FALSE(run.telemetry.has_value());
}

TEST(WriteFileTest, CreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "cnv_obs_export";
  std::filesystem::remove_all(dir);
  const auto path = dir / "nested" / "report.json";
  ASSERT_TRUE(WriteFile(path.string(), "{\"ok\":true}"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"ok\":true}");
  std::filesystem::remove_all(dir);
}

TEST(SanitizeFilenameTest, ReplacesAwkwardCharacters) {
  EXPECT_EQ(SanitizeFilename("OP-I (release/redirect)"),
            "OP-I--release-redirect-");
  EXPECT_EQ(SanitizeFilename("plain_name-1.json"), "plain_name-1.json");
}

}  // namespace
}  // namespace cnv::obs
