#include <gtest/gtest.h>

#include "nas/causes.h"
#include "nas/context.h"
#include "nas/ids.h"
#include "nas/messages.h"
#include "nas/timers.h"

namespace cnv::nas {
namespace {

TEST(IdsTest, SystemNames) {
  EXPECT_EQ(ToString(System::k3G), "3G");
  EXPECT_EQ(ToString(System::k4G), "4G");
  EXPECT_EQ(ToString(System::kNone), "none");
}

TEST(IdsTest, AreaIdentityOrderingAndEquality) {
  const Lai a{{310}, 1};
  const Lai b{{310}, 2};
  EXPECT_LT(a, b);
  EXPECT_EQ(a, (Lai{{310}, 1}));
  const Rai ra{a, 7};
  EXPECT_NE(ra, (Rai{b, 7}));
  const Tai ta{{310}, 100};
  EXPECT_EQ(ta, (Tai{{310}, 100}));
}

TEST(IdsTest, ToStringIsInformative) {
  EXPECT_EQ(ToString(Lai{{310}, 5}), "LAI(310,5)");
  EXPECT_EQ(ToString(Rai{{{310}, 5}, 2}), "RAI(310,5,2)");
  EXPECT_EQ(ToString(Tai{{310}, 9}), "TAI(310,9)");
  EXPECT_EQ(ToString(CellId{System::k4G, 12}), "4G-cell-12");
  EXPECT_EQ(ToString(Imsi{99}), "IMSI99");
}

TEST(IdsTest, ImsiHashSpreads) {
  EXPECT_NE(HashValue(Imsi{1}), HashValue(Imsi{2}));
}

TEST(CausesTest, Table3HasAllSixRows) {
  const auto& causes = AllPdpDeactCauses();
  ASSERT_EQ(causes.size(), 6u);
  // Paper Table 3 originators.
  EXPECT_EQ(causes[0].originator, CauseOriginator::kUserDevice);
  EXPECT_EQ(causes[1].originator, CauseOriginator::kUserDevice);
  EXPECT_EQ(causes[2].originator, CauseOriginator::kEither);
  EXPECT_EQ(causes[3].originator, CauseOriginator::kEither);
  EXPECT_EQ(causes[4].originator, CauseOriginator::kNetwork);
  EXPECT_EQ(causes[5].originator, CauseOriginator::kNetwork);
}

TEST(CausesTest, AvoidableCausesMatchPaperArgument) {
  // §5.1.2 argues QoS-not-accepted, incompatible-context and regular
  // deactivation need not delete the context.
  for (const auto& info : AllPdpDeactCauses()) {
    const bool expect_avoidable =
        info.cause == PdpDeactCause::kQosNotAccepted ||
        info.cause == PdpDeactCause::kRegularDeactivation ||
        info.cause == PdpDeactCause::kIncompatiblePdpContext;
    EXPECT_EQ(info.avoidable, expect_avoidable) << info.description;
  }
}

TEST(CausesTest, CauseNamesAreHuman) {
  EXPECT_EQ(ToString(EmmCause::kNoEpsBearerContextActive),
            "no EPS bearer context activated");
  EXPECT_EQ(ToString(MmCause::kMscTemporarilyNotReachable),
            "MSC temporarily not reachable");
  EXPECT_EQ(ToString(PdpDeactCause::kQosNotAccepted), "QoS not accepted");
}

TEST(ContextTest, EpsToPdpPreservesSessionState) {
  EpsBearerContext eps;
  eps.ip_address = 0x0A000001;
  eps.qos.max_bitrate_kbps = 5000;
  eps.qos.qci = 6;
  eps.active = true;
  const PdpContext pdp = ToPdpContext(eps);
  EXPECT_EQ(pdp.ip_address, eps.ip_address);
  EXPECT_EQ(pdp.qos, eps.qos);
  EXPECT_TRUE(pdp.active);
}

TEST(ContextTest, PdpToEpsRoundTripKeepsIpAddress) {
  PdpContext pdp;
  pdp.ip_address = 42;
  pdp.active = true;
  const auto eps = ToEpsBearerContext(pdp);
  ASSERT_TRUE(eps.has_value());
  EXPECT_EQ(eps->ip_address, 42u);
  EXPECT_TRUE(eps->active);
  EXPECT_EQ(ToPdpContext(*eps).ip_address, 42u);
}

TEST(ContextTest, InactivePdpCannotBecomeEpsBearer) {
  PdpContext pdp;
  pdp.active = false;  // the S1 failure condition
  EXPECT_FALSE(ToEpsBearerContext(pdp).has_value());
}

TEST(ContextTest, RetainOnDeactivationKeepsAvoidableCauses) {
  PdpContext pdp;
  pdp.active = true;
  pdp.qos.max_bitrate_kbps = 8000;

  const auto kept_qos =
      RetainOnDeactivation(pdp, PdpDeactCause::kQosNotAccepted);
  ASSERT_TRUE(kept_qos.has_value());
  EXPECT_LT(kept_qos->qos.max_bitrate_kbps, 8000u);  // downgraded, kept

  const auto kept_reg =
      RetainOnDeactivation(pdp, PdpDeactCause::kRegularDeactivation);
  ASSERT_TRUE(kept_reg.has_value());
  EXPECT_EQ(kept_reg->qos.max_bitrate_kbps, 8000u);  // kept unchanged

  EXPECT_FALSE(
      RetainOnDeactivation(pdp, PdpDeactCause::kOperatorDeterminedBarring)
          .has_value());
  EXPECT_FALSE(RetainOnDeactivation(pdp, PdpDeactCause::kLowLayerFailure)
                   .has_value());
}

TEST(MessagesTest, ProtocolNamesMatchTable2) {
  EXPECT_EQ(ToString(Protocol::kCm), "CM/CC");
  EXPECT_EQ(ToString(Protocol::kEmm), "EMM");
  EXPECT_EQ(ToString(Protocol::kRrc3g), "3G-RRC");
  EXPECT_EQ(ToString(Protocol::kRrc4g), "4G-RRC");
}

TEST(MessagesTest, DescribeIncludesCauses) {
  Message m;
  m.kind = MsgKind::kTauReject;
  m.protocol = Protocol::kEmm;
  m.emm_cause = EmmCause::kImplicitlyDetached;
  const auto text = m.Describe();
  EXPECT_NE(text.find("Tracking Area Update Reject"), std::string::npos);
  EXPECT_NE(text.find("implicitly detached"), std::string::npos);
}

TEST(MessagesTest, DescribeChannelConfigShowsModulation) {
  Message m;
  m.kind = MsgKind::kRrcChannelConfig;
  m.protocol = Protocol::kRrc3g;
  m.use_64qam = false;
  EXPECT_NE(m.Describe().find("64QAM disabled"), std::string::npos);
  m.use_64qam = true;
  EXPECT_NE(m.Describe().find("64QAM enabled"), std::string::npos);
}

TEST(MessagesTest, AllKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(MsgKind::kHssUpdateLocationAck); ++k) {
    EXPECT_NE(ToString(static_cast<MsgKind>(k)), "?") << k;
  }
}

TEST(TimersTest, SaneOrderings) {
  using namespace timers;
  EXPECT_LT(kRadioLegDelay, kT3410AttachGuard);
  EXPECT_LT(kRrc3gDchToFach, kRrc3gFachToIdle);
  EXPECT_GT(kMaxAttachAttempts, 1);
  EXPECT_GT(kT3212PeriodicLu, kT3210LuGuard);
}

}  // namespace
}  // namespace cnv::nas
