// Strict CLI parsing: every malformed input — unknown flag, non-numeric
// value, missing value, out-of-range count, excess positional — must be a
// hard error with the usage text on stderr and exit status 2, never a
// silently swallowed misconfiguration.
#include "util/args.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace cnv::args {
namespace {

// Owns the backing storage for a fake argv.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    ptrs_.reserve(strings_.size());
    for (auto& s : strings_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char* const* argv() const { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

constexpr char kUsage[] = "usage: prog [seeds] [--jobs N]";

TEST(ParseI64Test, AcceptsWholeBase10Integers) {
  std::int64_t v = 0;
  EXPECT_TRUE(ParseI64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseI64("-5", &v));
  EXPECT_EQ(v, -5);
  EXPECT_TRUE(ParseI64("9223372036854775807", &v));
  EXPECT_EQ(v, std::numeric_limits<std::int64_t>::max());
  EXPECT_TRUE(ParseI64("-9223372036854775808", &v));
  EXPECT_EQ(v, std::numeric_limits<std::int64_t>::min());
}

TEST(ParseI64Test, RejectsEverythingElse) {
  std::int64_t v = 0;
  for (const char* bad : {"", " ", "12x", "x12", "4.5", "1 ", " 1", "--3",
                          "0x10", "1e3", "9223372036854775808"}) {
    EXPECT_FALSE(ParseI64(bad, &v)) << "'" << bad << "'";
  }
}

TEST(ParseU64Test, AcceptsUnsignedRange) {
  std::uint64_t v = 0;
  EXPECT_TRUE(ParseU64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseU64("18446744073709551615", &v));
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64Test, RejectsNegativesAndGarbage) {
  std::uint64_t v = 0;
  for (const char* bad :
       {"-3", "-0", "", "4.5", "12x", "18446744073709551616"}) {
    EXPECT_FALSE(ParseU64(bad, &v)) << "'" << bad << "'";
  }
}

TEST(ArgParserTest, FlagsValuesAndPositionalsParse) {
  const Argv a({"prog", "--robust", "12", "--jobs", "4", "--out", "x.json",
                "--seed", "7", "plan"});
  ArgParser p(a.argc(), a.argv(), kUsage);
  EXPECT_TRUE(p.Flag("--robust"));
  EXPECT_FALSE(p.Flag("--quiet"));
  int jobs = 0;
  EXPECT_TRUE(p.IntValue("--jobs", &jobs, 0));
  EXPECT_EQ(jobs, 4);
  std::uint64_t seed = 0;
  EXPECT_TRUE(p.U64Value("--seed", &seed));
  EXPECT_EQ(seed, 7u);
  std::string out;
  EXPECT_TRUE(p.StrValue("--out", &out));
  EXPECT_EQ(out, "x.json");
  EXPECT_EQ(p.Finish(2), (std::vector<std::string>{"12", "plan"}));
}

TEST(ArgParserTest, AbsentValuedFlagLeavesDefaultUntouched) {
  const Argv a({"prog"});
  ArgParser p(a.argc(), a.argv(), kUsage);
  int jobs = 3;
  EXPECT_FALSE(p.IntValue("--jobs", &jobs, 0));
  EXPECT_EQ(jobs, 3);
  std::int64_t timeout = -1;
  EXPECT_FALSE(p.I64Value("--timeout-ms", &timeout));
  EXPECT_EQ(timeout, -1);
  EXPECT_TRUE(p.Finish(0).empty());
}

TEST(ArgParserTest, LastOccurrenceWins) {
  const Argv a({"prog", "--jobs", "2", "--jobs", "5"});
  ArgParser p(a.argc(), a.argv(), kUsage);
  int jobs = 0;
  EXPECT_TRUE(p.IntValue("--jobs", &jobs, 0));
  EXPECT_EQ(jobs, 5);
  EXPECT_TRUE(p.Finish(0).empty());  // both occurrences were consumed
}

TEST(ArgParserTest, EqualsFormParsesEveryValuedFlavor) {
  const Argv a({"prog", "--jobs=4", "--seed=7", "--timeout-ms=-250",
                "--out=x.json", "--rate=0.25", "plan"});
  ArgParser p(a.argc(), a.argv(), kUsage);
  int jobs = 0;
  EXPECT_TRUE(p.IntValue("--jobs", &jobs, 0));
  EXPECT_EQ(jobs, 4);
  std::uint64_t seed = 0;
  EXPECT_TRUE(p.U64Value("--seed", &seed));
  EXPECT_EQ(seed, 7u);
  std::int64_t timeout = 0;
  EXPECT_TRUE(p.I64Value("--timeout-ms", &timeout));
  EXPECT_EQ(timeout, -250);
  std::string out;
  EXPECT_TRUE(p.StrValue("--out", &out));
  EXPECT_EQ(out, "x.json");
  double rate = 0.0;
  EXPECT_TRUE(p.DoubleValue("--rate", &rate));
  EXPECT_DOUBLE_EQ(rate, 0.25);
  EXPECT_EQ(p.Finish(1), (std::vector<std::string>{"plan"}));
}

TEST(ArgParserTest, EqualsFormValueMayContainEquals) {
  // Only the first '=' separates flag from value.
  const Argv a({"prog", "--out=key=value"});
  ArgParser p(a.argc(), a.argv(), kUsage);
  std::string out;
  EXPECT_TRUE(p.StrValue("--out", &out));
  EXPECT_EQ(out, "key=value");
  EXPECT_TRUE(p.Finish(0).empty());
}

TEST(ArgParserTest, EqualsAndSpaceFormsMixWithLastWins) {
  const Argv a({"prog", "--jobs", "2", "--jobs=9"});
  ArgParser p(a.argc(), a.argv(), kUsage);
  int jobs = 0;
  EXPECT_TRUE(p.IntValue("--jobs", &jobs, 0));
  EXPECT_EQ(jobs, 9);
  EXPECT_TRUE(p.Finish(0).empty());
}

TEST(ArgParserTest, EqualsFormDoesNotMatchFlagPrefixes) {
  // "--j=4" must not be consumed by "--jobs", and a bare Flag() never
  // consumes an "=" spelling.
  const Argv a({"prog", "--jobs-max=4"});
  ArgParser p(a.argc(), a.argv(), kUsage);
  int jobs = 0;
  EXPECT_FALSE(p.IntValue("--jobs", &jobs, 0));
  EXPECT_FALSE(p.Flag("--jobs-max"));
  std::int64_t jobs_max = 0;
  EXPECT_TRUE(p.I64Value("--jobs-max", &jobs_max));
  EXPECT_EQ(jobs_max, 4);
  EXPECT_TRUE(p.Finish(0).empty());
}

// Fatal paths: the parser prints usage and exits with status 2.
int ParseAndFinish(const std::vector<std::string>& args,
                   std::size_t max_positional = 0) {
  const Argv a(args);
  ArgParser p(a.argc(), a.argv(), kUsage);
  int jobs = 0;
  p.IntValue("--jobs", &jobs, 0);
  std::uint64_t seed = 0;
  p.U64Value("--seed", &seed);
  p.Finish(max_positional);
  return jobs;
}

TEST(ArgParserDeathTest, UnknownFlagIsFatal) {
  EXPECT_EXIT(ParseAndFinish({"prog", "--jbos", "4"}),
              testing::ExitedWithCode(2), "usage: prog");
}

TEST(ArgParserDeathTest, NonNumericJobsIsFatal) {
  EXPECT_EXIT(ParseAndFinish({"prog", "--jobs", "four"}),
              testing::ExitedWithCode(2), "usage: prog");
}

TEST(ArgParserDeathTest, NegativeJobsIsFatal) {
  EXPECT_EXIT(ParseAndFinish({"prog", "--jobs", "-2"}),
              testing::ExitedWithCode(2), "usage: prog");
}

TEST(ArgParserDeathTest, NegativeSeedIsFatal) {
  EXPECT_EXIT(ParseAndFinish({"prog", "--seed", "-1"}),
              testing::ExitedWithCode(2), "usage: prog");
}

TEST(ArgParserDeathTest, MissingValueIsFatal) {
  EXPECT_EXIT(ParseAndFinish({"prog", "--jobs"}),
              testing::ExitedWithCode(2), "usage: prog");
}

TEST(ArgParserDeathTest, EqualsFormNonNumericIsFatal) {
  EXPECT_EXIT(ParseAndFinish({"prog", "--jobs=four"}),
              testing::ExitedWithCode(2), "usage: prog");
}

TEST(ArgParserDeathTest, EqualsFormEmptyValueIsFatal) {
  EXPECT_EXIT(ParseAndFinish({"prog", "--seed="}),
              testing::ExitedWithCode(2), "usage: prog");
}

TEST(ArgParserDeathTest, ExcessPositionalsAreFatal) {
  EXPECT_EXIT(ParseAndFinish({"prog", "one", "two"}, /*max_positional=*/1),
              testing::ExitedWithCode(2), "usage: prog");
}

TEST(ArgParserDeathTest, ExplicitFailExitsWithUsage) {
  const Argv a({"prog"});
  const ArgParser p(a.argc(), a.argv(), kUsage);
  EXPECT_EXIT(p.Fail("--resume requires --checkpoint-dir"),
              testing::ExitedWithCode(2),
              "--resume requires --checkpoint-dir");
}

}  // namespace
}  // namespace cnv::args
