// Storm campaigns and the admission-policy sweep dimension: storm plans
// exist and execute, graceful degradation is measured and differentiates
// the admission policies, the sweep crosses admission with seeds x plans x
// profiles, summaries and digests reflect the new dimension, parallel runs
// stay byte-identical, and the outcome codec round-trips degradation.
#include "fault/campaign.h"

#include <string>

#include "fault/checkpoint.h"
#include "gtest/gtest.h"

namespace cnv::fault {
namespace {

// A scaled-down mass-attach storm overlapping the 240 s area-crossing TAU,
// small enough for unit-test budgets but heavy enough to backlog the core.
FaultPlan SmallStorm() {
  FaultPlan p = plans::MassAttachStorm();
  for (FaultAction& a : p.actions) a.count = 3000;
  return p;
}

stack::OverloadConfig Admission(stack::AdmissionPolicy policy) {
  stack::OverloadConfig cfg;
  cfg.enabled = true;
  cfg.policy = policy;
  return cfg;
}

TEST(StormPlansTest, FiveCannedStormsAreRegistered) {
  const auto storms = plans::Storms();
  ASSERT_EQ(storms.size(), 5u);
  for (const auto& p : storms) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.actions.empty());
  }
  // And they ride along in All() for name-based selection.
  const auto all = plans::All();
  for (const auto& s : storms) {
    bool found = false;
    for (const auto& p : all) found = found || p.name == s.name;
    EXPECT_TRUE(found) << s.name;
  }
}

TEST(DegradationTest, LegacyRunsReportInactiveDegradation) {
  CampaignConfig cfg;
  const CampaignRunner runner(cfg);
  const RunOutcome out =
      runner.RunOne(1, plans::Findings()[0], stack::OpI());
  EXPECT_FALSE(out.report.degradation.active);
  EXPECT_TRUE(out.report.degradation.within_slo());
  EXPECT_TRUE(out.admission.empty());
}

TEST(DegradationTest, UnboundedAdmissionBlowsTheDrainSlo) {
  CampaignConfig cfg;
  const CampaignRunner runner(cfg);
  const RunOutcome out = runner.RunOne(
      1, plans::MassAttachStorm(), stack::OpI(),
      Admission(stack::AdmissionPolicy::kUnbounded));
  const DegradationReport& d = out.report.degradation;
  ASSERT_TRUE(d.active);
  EXPECT_EQ(d.storm_injected, 30'000u);
  EXPECT_GT(d.queue_peak, 10'000u);
  ASSERT_TRUE(d.drained);  // it does drain eventually...
  EXPECT_GT(d.time_to_drain, d.drain_slo);  // ...but far too late
  EXPECT_FALSE(d.within_slo());
  EXPECT_EQ(out.admission, "unbounded");
}

TEST(DegradationTest, RejectBackoffDegradesWithinSlo) {
  CampaignConfig cfg;
  const CampaignRunner runner(cfg);
  const RunOutcome out = runner.RunOne(
      1, plans::MassAttachStorm(), stack::OpI(),
      Admission(stack::AdmissionPolicy::kRejectBackoff));
  const DegradationReport& d = out.report.degradation;
  ASSERT_TRUE(d.active);
  EXPECT_GT(d.rejected_congestion, 0u);
  EXPECT_LE(d.queue_peak, 16u);
  ASSERT_TRUE(d.drained);
  EXPECT_LE(d.time_to_drain, d.drain_slo);
  EXPECT_TRUE(d.within_slo());
  EXPECT_EQ(out.admission, "reject-backoff");
}

TEST(DegradationTest, PriorityShedDegradesWithinSlo) {
  CampaignConfig cfg;
  const CampaignRunner runner(cfg);
  const RunOutcome out = runner.RunOne(
      1, plans::MassAttachStorm(), stack::OpI(),
      Admission(stack::AdmissionPolicy::kPriorityShed));
  const DegradationReport& d = out.report.degradation;
  ASSERT_TRUE(d.active);
  EXPECT_GT(d.shed, 0u);
  EXPECT_TRUE(d.within_slo());
  EXPECT_EQ(out.admission, "priority-shed");
}

TEST(AdmissionSweepTest, AdmissionMultipliesTheSweep) {
  CampaignConfig cfg;
  cfg.seeds = {1};
  cfg.plans = {SmallStorm()};
  cfg.admission = {stack::OverloadConfig{},  // legacy off
                   Admission(stack::AdmissionPolicy::kRejectBackoff)};
  const CampaignResult result = CampaignRunner(cfg).Run();
  ASSERT_EQ(result.runs.size(), 2u);  // 1 seed x 1 plan x 1 profile x 2
  EXPECT_TRUE(result.runs[0].admission.empty());
  EXPECT_EQ(result.runs[1].admission, "reject-backoff");

  const std::string summary = result.Summary();
  EXPECT_NE(summary.find("admission=reject-backoff"), std::string::npos);
  EXPECT_NE(summary.find("storm"), std::string::npos);
  EXPECT_NE(summary.find("injected=3000"), std::string::npos);
}

TEST(AdmissionSweepTest, UnsweptCampaignSummaryHasNoAdmissionColumn) {
  CampaignConfig cfg;
  cfg.seeds = {1};
  const CampaignResult result = CampaignRunner(cfg).Run();
  EXPECT_EQ(result.Summary().find("admission="), std::string::npos);
}

TEST(AdmissionSweepTest, DigestCoversTheAdmissionDimension) {
  CampaignConfig base;
  base.seeds = {1};
  base.plans = {SmallStorm()};
  const std::uint64_t plain = CampaignRunner(base).ConfigDigest();

  CampaignConfig swept = base;
  swept.admission = {Admission(stack::AdmissionPolicy::kRejectBackoff)};
  const std::uint64_t with_admission = CampaignRunner(swept).ConfigDigest();
  EXPECT_NE(plain, with_admission);

  // An explicit single disabled entry is the documented legacy default and
  // digests identically, so old checkpoints stay resumable.
  CampaignConfig explicit_off = base;
  explicit_off.admission = {stack::OverloadConfig{}};
  EXPECT_EQ(plain, CampaignRunner(explicit_off).ConfigDigest());

  // Policy changes inside the sweep change the digest too.
  CampaignConfig other = swept;
  other.admission = {Admission(stack::AdmissionPolicy::kPriorityShed)};
  EXPECT_NE(with_admission, CampaignRunner(other).ConfigDigest());
}

TEST(AdmissionSweepTest, ParallelStormSweepIsByteIdenticalToSerial) {
  CampaignConfig cfg;
  cfg.seeds = {1, 2};
  cfg.plans = {SmallStorm()};
  cfg.admission = {Admission(stack::AdmissionPolicy::kUnbounded),
                   Admission(stack::AdmissionPolicy::kRejectBackoff)};
  cfg.collect_telemetry = true;

  CampaignConfig serial = cfg;
  serial.parallelism = 1;
  CampaignConfig parallel = cfg;
  parallel.parallelism = 4;
  const CampaignResult a = CampaignRunner(serial).Run();
  const CampaignResult b = CampaignRunner(parallel).Run();
  EXPECT_EQ(a.Summary(), b.Summary());
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].admission, b.runs[i].admission);
    ASSERT_TRUE(a.runs[i].telemetry.has_value());
    ASSERT_TRUE(b.runs[i].telemetry.has_value());
    EXPECT_EQ(a.runs[i].telemetry->ToJson(), b.runs[i].telemetry->ToJson());
  }
}

TEST(StormCodecTest, RoundTripsAdmissionAndDegradation) {
  CampaignConfig cfg;
  cfg.collect_telemetry = true;
  const CampaignRunner runner(cfg, /*keep_traces=*/true);
  const RunOutcome out = runner.RunOne(
      1, SmallStorm(), stack::OpI(),
      Admission(stack::AdmissionPolicy::kRejectBackoff));
  ASSERT_TRUE(out.report.degradation.active);

  const std::string payload = EncodeRunOutcome(out);
  RunOutcome decoded;
  ASSERT_TRUE(DecodeRunOutcome(payload, &decoded));
  EXPECT_EQ(decoded.admission, out.admission);
  const DegradationReport& d = decoded.report.degradation;
  const DegradationReport& e = out.report.degradation;
  EXPECT_EQ(d.active, e.active);
  EXPECT_EQ(d.storm_injected, e.storm_injected);
  EXPECT_EQ(d.offered, e.offered);
  EXPECT_EQ(d.rejected_congestion, e.rejected_congestion);
  EXPECT_EQ(d.shed, e.shed);
  EXPECT_EQ(d.queue_peak, e.queue_peak);
  EXPECT_EQ(d.shed_fraction, e.shed_fraction);
  EXPECT_EQ(d.attach_p99_s, e.attach_p99_s);
  EXPECT_EQ(d.drained, e.drained);
  EXPECT_EQ(d.time_to_drain, e.time_to_drain);
  // Strongest lossless check: identical re-encoding.
  EXPECT_EQ(EncodeRunOutcome(decoded), payload);
}

}  // namespace
}  // namespace cnv::fault
