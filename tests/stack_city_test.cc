// City-scale engine suite: determinism, kernel equivalence, and memory
// bounds for the population-scale discrete-event core.
//
//   * Serial-vs-parallel byte-identity: the same config run with no pool
//     and with a WorkerPool must produce the same digest, the same counter
//     block, and the same trace stream, record for record.
//   * Wheel-vs-heap equivalence: the sharded wheel kernel and the seed
//     binary-heap kernel drive the identical workload; every protocol
//     counter and the productive event count must agree exactly.
//   * Struct-of-arrays footprint: bytes/UE is measured off the arena and
//     must stay small and flat as the population grows.
//   * Overload model: a capacity-starved config must reject attaches into
//     T3346 backoff and flag signalling storms in the always-on trace.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "par/pool.h"
#include "stack/city.h"
#include "trace/record.h"

namespace cnv::stack {
namespace {

CityConfig SmallCity(std::uint32_t ues = 20'000) {
  CityConfig cfg;
  cfg.ues = ues;
  cfg.cells = 64;
  cfg.horizon = Minutes(3);
  cfg.seed = 7;
  cfg.sample_every = 512;
  return cfg;
}

struct Capture {
  CityReport report;
  std::vector<trace::TraceRecord> records;
};

Capture RunCapture(const CityConfig& cfg, CityKernelMode mode,
                   par::WorkerPool* pool) {
  Capture cap;
  CityEngine eng(cfg, mode);
  eng.set_trace_sink(
      [&cap](const trace::TraceRecord& r) { cap.records.push_back(r); });
  cap.report = eng.Run(pool);
  return cap;
}

void ExpectCountersEqual(const CityReport& a, const CityReport& b) {
  EXPECT_EQ(a.attaches_started, b.attaches_started);
  EXPECT_EQ(a.attaches_completed, b.attaches_completed);
  EXPECT_EQ(a.attaches_rejected, b.attaches_rejected);
  EXPECT_EQ(a.guard_expiries, b.guard_expiries);
  EXPECT_EQ(a.backoffs_armed, b.backoffs_armed);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.pagings, b.pagings);
  EXPECT_EQ(a.handovers, b.handovers);
  EXPECT_EQ(a.location_updates, b.location_updates);
  EXPECT_EQ(a.taus, b.taus);
  EXPECT_EQ(a.storms_flagged, b.storms_flagged);
}

TEST(CityDeterminismTest, SerialAndParallelAreByteIdentical) {
  const CityConfig cfg = SmallCity();
  const Capture serial = RunCapture(cfg, CityKernelMode::kWheel, nullptr);
  par::WorkerPool pool(4);
  const Capture parallel = RunCapture(cfg, CityKernelMode::kWheel, &pool);

  EXPECT_EQ(serial.report.digest, parallel.report.digest);
  EXPECT_EQ(serial.report.events_executed, parallel.report.events_executed);
  EXPECT_EQ(serial.report.events_scheduled, parallel.report.events_scheduled);
  EXPECT_EQ(serial.report.stale_events, parallel.report.stale_events);
  EXPECT_EQ(serial.report.shard_stalls, parallel.report.shard_stalls);
  EXPECT_EQ(serial.report.cross_cell_messages,
            parallel.report.cross_cell_messages);
  EXPECT_EQ(serial.report.trace_emitted, parallel.report.trace_emitted);
  EXPECT_EQ(serial.report.trace_dropped, parallel.report.trace_dropped);
  ExpectCountersEqual(serial.report, parallel.report);

  // The trace stream — the externally visible artifact — must match record
  // for record, not just in count.
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    ASSERT_EQ(serial.records[i], parallel.records[i]) << "record " << i;
  }
}

TEST(CityDeterminismTest, RepeatedRunsAreByteIdentical) {
  const CityConfig cfg = SmallCity(10'000);
  const Capture a = RunCapture(cfg, CityKernelMode::kWheel, nullptr);
  const Capture b = RunCapture(cfg, CityKernelMode::kWheel, nullptr);
  EXPECT_EQ(a.report.digest, b.report.digest);
  EXPECT_EQ(a.records.size(), b.records.size());
}

TEST(CityDeterminismTest, SeedChangesTheRun) {
  CityConfig cfg = SmallCity(10'000);
  const Capture a = RunCapture(cfg, CityKernelMode::kWheel, nullptr);
  cfg.seed = 8;
  const Capture b = RunCapture(cfg, CityKernelMode::kWheel, nullptr);
  EXPECT_NE(a.report.digest, b.report.digest);
}

TEST(CityKernelTest, WheelMatchesHeapOnProtocolOutcomes) {
  const CityConfig cfg = SmallCity(10'000);
  const Capture wheel = RunCapture(cfg, CityKernelMode::kWheel, nullptr);
  const Capture heap = RunCapture(cfg, CityKernelMode::kHeap, nullptr);

  // Tombstone handling differs by design (the heap pops what the wheel
  // reaps), so executed counts differ — but the productive event stream
  // and every protocol outcome must agree exactly.
  EXPECT_EQ(wheel.report.events_executed - wheel.report.stale_events,
            heap.report.events_executed - heap.report.stale_events);
  ExpectCountersEqual(wheel.report, heap.report);
  EXPECT_EQ(wheel.report.trace_emitted, heap.report.trace_emitted);
}

TEST(CityKernelTest, WheelStatsAccountForTheRun) {
  const CityConfig cfg = SmallCity();
  const Capture cap = RunCapture(cfg, CityKernelMode::kWheel, nullptr);
  const auto& w = cap.report.wheel;
  std::uint64_t inserts = w.overflow_inserts;
  for (int l = 0; l < sim::TimerWheel::kLevels; ++l) inserts += w.inserts[l];
  EXPECT_GT(inserts, cap.report.events_executed / 2);
  EXPECT_GT(w.sorted_ticks, 0u);
  // Guard cancellations must show up as reaped or stale, and the reaper
  // should keep the stale tail small relative to cancellations.
  EXPECT_GT(w.reaped, 0u);
  EXPECT_LT(cap.report.stale_events, cap.report.events_cancelled);
  // Windows advanced to the horizon.
  EXPECT_EQ(cap.report.windows,
            static_cast<std::uint64_t>(
                (cfg.horizon + cfg.lookahead - 1) / cfg.lookahead));
}

TEST(CityMemoryTest, BytesPerUeIsSmallAndFlat) {
  const Capture small = RunCapture(SmallCity(10'000),
                                   CityKernelMode::kWheel, nullptr);
  const Capture big = RunCapture(SmallCity(40'000),
                                 CityKernelMode::kWheel, nullptr);
  // Struct-of-arrays per-UE state is a handful of primitive fields; the
  // arena measurement must stay well under 64 B/UE and must not grow with
  // the population (arena chunk slack shrinks relatively as UEs grow).
  EXPECT_GT(small.report.bytes_per_ue, 0.0);
  EXPECT_LT(small.report.bytes_per_ue, 64.0);
  EXPECT_LE(big.report.bytes_per_ue, small.report.bytes_per_ue * 1.5);
  EXPECT_GT(big.report.arena_bytes, 0u);
}

TEST(CityOverloadTest, CapacityStarvedCellsRejectIntoBackoffAndFlagStorms) {
  CityConfig cfg = SmallCity(20'000);
  cfg.cells = 16;             // concentrate the attach front
  cfg.attach_capacity = 8;    // starve admission
  cfg.storm_threshold = 30;
  cfg.storm_fraction = 0.9;
  cfg.sample_every = 1;       // record everything: assertions read the trace
  const Capture cap = RunCapture(cfg, CityKernelMode::kWheel, nullptr);

  EXPECT_GT(cap.report.attaches_rejected, 0u);
  EXPECT_GT(cap.report.backoffs_armed, 0u);
  EXPECT_GT(cap.report.storms_flagged, 0u);

  bool saw_backoff = false;
  bool saw_storm = false;
  for (const auto& r : cap.records) {
    if (r.description.find("T3346 armed") != std::string::npos) {
      saw_backoff = true;
    }
    if (r.module == "STORM" &&
        r.description.find("storm begins") != std::string::npos) {
      saw_storm = true;
    }
  }
  EXPECT_TRUE(saw_backoff) << "no T3346 record in the trace";
  EXPECT_TRUE(saw_storm) << "no storm-onset record in the trace";
}

}  // namespace
}  // namespace cnv::stack
