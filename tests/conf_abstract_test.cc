// The trace abstraction layer maps concrete modem-style records back into
// the screening models' vocabulary; these tests pin the mapping table
// (module + description substring -> AbstractKind) and the in-order
// subsequence semantics of the refinement check.
#include "conf/abstract.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "trace/record.h"

namespace cnv::conf {
namespace {

trace::TraceRecord Rec(const std::string& module,
                       const std::string& description) {
  trace::TraceRecord r;
  r.module = module;
  r.description = description;
  return r;
}

TEST(AbstractTraceTest, MapsCoreVocabulary) {
  const std::vector<trace::TraceRecord> records = {
      Rec("EMM", "Attach Request sent"),
      Rec("EMM", "Attach Accept received"),
      Rec("EMM", "Attach Complete sent"),
      Rec("UE", "4G->3G switch (user mobility)"),
      Rec("SM", "PDP context deactivated"),
      Rec("UE", "3G->4G switch"),
      Rec("EMM", "detached by network via MME (cause: no EPS bearer)"),
  };
  const auto events = AbstractTrace(records);
  ASSERT_EQ(events.size(), 7u);
  EXPECT_EQ(events[0].kind, AbstractKind::kAttachRequest);
  EXPECT_EQ(events[1].kind, AbstractKind::kAttachAccept);
  EXPECT_EQ(events[2].kind, AbstractKind::kAttachComplete);
  EXPECT_EQ(events[3].kind, AbstractKind::kSwitch4gTo3g);
  EXPECT_EQ(events[4].kind, AbstractKind::kPdpDeactivated);
  EXPECT_EQ(events[5].kind, AbstractKind::kSwitch3gTo4g);
  EXPECT_EQ(events[6].kind, AbstractKind::kNetworkDetach);
  // Provenance: each event points back at its source record.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].record_index, i);
  }
}

TEST(AbstractTraceTest, CsfbSwitchIsDistinctFromMobilitySwitch) {
  const auto events = AbstractTrace({
      Rec("UE", "4G->3G switch (CSFB call)"),
      Rec("UE", "4G->3G switch (user mobility)"),
  });
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, AbstractKind::kCsfbFallback);
  EXPECT_EQ(events[1].kind, AbstractKind::kSwitch4gTo3g);
}

TEST(AbstractTraceTest, DialInEitherSystemAbstractsToCallDialed) {
  // Serving 3G the CM layer logs the dial; serving 4G only the Extended
  // Service Request is visible. Both must abstract to the same model event.
  const auto events = AbstractTrace({
      Rec("CM/CC", "user dials an outgoing call"),
      Rec("EMM", "Extended Service Request (CSFB) sent"),
  });
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, AbstractKind::kCallDialed);
  EXPECT_EQ(events[1].kind, AbstractKind::kCallDialed);
}

TEST(AbstractTraceTest, ModuleMustMatchNotJustDescription) {
  // "GPRS Attach Request sent" comes from GMM; it must not be swallowed by
  // the EMM attach rules.
  const auto events = AbstractTrace({Rec("GMM", "GPRS Attach Request sent")});
  for (const auto& e : events) {
    EXPECT_NE(e.kind, AbstractKind::kAttachRequest);
  }
}

TEST(AbstractTraceTest, UnmappedRecordsAreDropped) {
  const auto events = AbstractTrace({
      Rec("4G-RRC", "RRC IDLE -> CONNECTED"),
      Rec("EMM", "Attach Request sent"),
      Rec("3G-RRC", "RAB established"),
  });
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, AbstractKind::kAttachRequest);
  EXPECT_EQ(events[0].record_index, 1u);
}

TEST(AbstractTraceTest, MmAndReselectionVocabulary) {
  const auto events = AbstractTrace({
      Rec("MM", "Location Updating Request sent"),
      Rec("MM", "CM Service Request sent"),
      Rec("MM", "CM service request deferred: location update in progress"),
      Rec("3G-RRC", "awaiting RRC IDLE for inter-system cell reselection"),
      Rec("3G-RRC", "inter-system cell reselection to 4G"),
  });
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, AbstractKind::kLocationUpdateStart);
  EXPECT_EQ(events[1].kind, AbstractKind::kCmServiceRequest);
  EXPECT_EQ(events[2].kind, AbstractKind::kCallDeferred);
  EXPECT_EQ(events[3].kind, AbstractKind::kAwaitReselection);
  EXPECT_EQ(events[4].kind, AbstractKind::kCellReselection);
}

TEST(AbstractTraceTest, LuCouplingAndChannelVocabulary) {
  const auto events = AbstractTrace({
      Rec("MM", "location update deferred until the CSFB call completes"),
      Rec("MM", "location update disrupted by inter-system switch"),
      Rec("3G-RRC",
          "RRC Channel Config: 64QAM disabled during CS voice call (16QAM)"),
      Rec("3G-RRC", "RRC Channel Config: 64QAM re-enabled after voice call"),
  });
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, AbstractKind::kLuDeferred);
  EXPECT_EQ(events[1].kind, AbstractKind::kLuDisrupted);
  EXPECT_EQ(events[2].kind, AbstractKind::kChannelDegraded);
  EXPECT_EQ(events[3].kind, AbstractKind::kChannelRestored);
}

TEST(MatchAbstractKindTest, AgreesWithAbstractTraceRecordByRecord) {
  const std::vector<trace::TraceRecord> records = {
      Rec("EMM", "Attach Request sent"),
      Rec("4G-RRC", "RRC IDLE -> CONNECTED"),  // unmapped
      Rec("UE", "4G->3G switch (CSFB call)"),
      Rec("MM", "location update disrupted by inter-system switch"),
      Rec("STORM", "Mass attach storm begins (count=3 spacing=2ms)"),
      Rec("ESM", "nothing in the vocabulary"),  // unmapped
  };
  const auto events = AbstractTrace(records);
  std::size_t next = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto kind = MatchAbstractKind(records[i]);
    if (kind) {
      ASSERT_LT(next, events.size());
      EXPECT_EQ(events[next].kind, *kind);
      EXPECT_EQ(events[next].record_index, i);
      ++next;
    }
  }
  EXPECT_EQ(next, events.size());
}

TEST(ToStringTest, AllKindsHaveDistinctNonEmptyNames) {
  std::vector<std::string> names;
  for (int i = 0; i <= static_cast<int>(AbstractKind::kChannelRestored);
       ++i) {
    names.push_back(ToString(static_cast<AbstractKind>(i)));
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]) << i << " vs " << j;
    }
  }
}

std::vector<AbstractEvent> Events(std::vector<AbstractKind> kinds) {
  std::vector<AbstractEvent> out;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    out.push_back({kinds[i], 0, i});
  }
  return out;
}

TEST(CheckRefinementTest, ExactSequenceRefines) {
  const auto check = CheckRefinement(
      Events({AbstractKind::kAttachRequest, AbstractKind::kAttachAccept}),
      {AbstractKind::kAttachRequest, AbstractKind::kAttachAccept});
  EXPECT_TRUE(check.refines);
  EXPECT_TRUE(check.missing.empty());
}

TEST(CheckRefinementTest, SubsequenceWithExtraConcreteEventsRefines) {
  const auto check = CheckRefinement(
      Events({AbstractKind::kAttachRequest, AbstractKind::kDataSessionStart,
              AbstractKind::kAttachAccept, AbstractKind::kAttachComplete}),
      {AbstractKind::kAttachRequest, AbstractKind::kAttachComplete});
  EXPECT_TRUE(check.refines);
}

TEST(CheckRefinementTest, OutOfOrderDoesNotRefine) {
  const auto check = CheckRefinement(
      Events({AbstractKind::kAttachAccept, AbstractKind::kAttachRequest}),
      {AbstractKind::kAttachRequest, AbstractKind::kAttachAccept});
  EXPECT_FALSE(check.refines);
  EXPECT_EQ(check.failed_index, 1u);
  ASSERT_EQ(check.missing.size(), 1u);
  EXPECT_EQ(check.missing[0], AbstractKind::kAttachAccept);
}

TEST(CheckRefinementTest, MissingEventsReportedInOrder) {
  const auto check =
      CheckRefinement(Events({AbstractKind::kAttachRequest}),
                      {AbstractKind::kAttachRequest, AbstractKind::kTauRequest,
                       AbstractKind::kNetworkDetach});
  EXPECT_FALSE(check.refines);
  EXPECT_EQ(check.failed_index, 1u);
  ASSERT_EQ(check.missing.size(), 2u);
  EXPECT_EQ(check.missing[0], AbstractKind::kTauRequest);
  EXPECT_EQ(check.missing[1], AbstractKind::kNetworkDetach);
}

TEST(CheckRefinementTest, EmptyExpectationTriviallyRefines) {
  EXPECT_TRUE(CheckRefinement({}, {}).refines);
  EXPECT_TRUE(
      CheckRefinement(Events({AbstractKind::kAttachRequest}), {}).refines);
}

}  // namespace
}  // namespace cnv::conf
