#include "core/user_study.h"

#include <gtest/gtest.h>

namespace cnv::core {
namespace {

// A reduced population keeps the test fast while still exercising every
// mechanism; the full-scale study is the table5 bench.
UserStudyConfig SmallStudy() {
  UserStudyConfig cfg;
  cfg.users = 8;
  cfg.users_with_4g = 5;
  cfg.days = 4;
  cfg.seed = 7;
  return cfg;
}

TEST(UserStudyTest, ProducesActivityOfTheRightShape) {
  UserStudy study(SmallStudy());
  const auto r = study.Run();
  EXPECT_GT(r.csfb_calls, 5);
  EXPECT_GT(r.cs_calls_3g, 2);
  EXPECT_GT(r.inter_system_switches, 2 * r.csfb_calls - 5);
  EXPECT_GE(r.attaches, 8);  // at least one power-on per user
}

TEST(UserStudyTest, S3DominatesTheOccurrenceRates) {
  // Table 5's ordering: S5 (77%) and S3 (62%) are common; S1/S4/S6 are rare.
  UserStudyConfig cfg;
  cfg.users = 12;
  cfg.users_with_4g = 7;
  cfg.days = 6;
  cfg.seed = 3;
  UserStudy study(cfg);
  const auto r = study.Run();
  const auto& s3 = r.Stats(FindingId::kS3);
  const auto& s5 = r.Stats(FindingId::kS5);
  ASSERT_GT(s3.opportunities, 0);
  ASSERT_GT(s5.opportunities, 0);
  EXPECT_GT(s3.Rate(), 0.25);  // OP-II's share of CSFB-with-data calls
  EXPECT_GT(s5.Rate(), 0.5);
  // The rare findings stay rare.
  EXPECT_LT(r.Stats(FindingId::kS1).Rate(), 0.25);
  EXPECT_LT(r.Stats(FindingId::kS6).Rate(), 0.25);
  EXPECT_EQ(r.Stats(FindingId::kS2).occurrences, 0);  // good coverage: 0/N
}

TEST(UserStudyTest, StuckDurationsSplitByCarrier) {
  UserStudy study(SmallStudy());
  const auto r = study.Run();
  // OP-I returns within seconds; OP-II's tail is much longer (Table 6).
  if (!r.stuck_seconds_op1.Empty()) {
    EXPECT_LT(r.stuck_seconds_op1.Median(), 10.0);
  }
  if (!r.stuck_seconds_op2.Empty()) {
    EXPECT_GT(r.stuck_seconds_op2.Max(), 10.0);
  }
  ASSERT_FALSE(r.stuck_seconds_op1.Empty() && r.stuck_seconds_op2.Empty());
}

TEST(UserStudyTest, DeterministicForSameSeed) {
  UserStudy a(SmallStudy());
  UserStudy b(SmallStudy());
  const auto ra = a.Run();
  const auto rb = b.Run();
  EXPECT_EQ(ra.csfb_calls, rb.csfb_calls);
  EXPECT_EQ(ra.attaches, rb.attaches);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(ra.per_finding[i].occurrences, rb.per_finding[i].occurrences);
    EXPECT_EQ(ra.per_finding[i].opportunities,
              rb.per_finding[i].opportunities);
  }
}

TEST(UserStudyTest, TablesRenderAllRows) {
  UserStudy study(SmallStudy());
  const auto r = study.Run();
  const auto t5 = UserStudy::FormatTable5(r);
  for (const char* code : {"S1", "S2", "S3", "S4", "S5", "S6"}) {
    EXPECT_NE(t5.find(code), std::string::npos);
  }
  const auto t6 = UserStudy::FormatTable6(r);
  EXPECT_NE(t6.find("OP-I"), std::string::npos);
  EXPECT_NE(t6.find("OP-II"), std::string::npos);
}

}  // namespace
}  // namespace cnv::core
