#include "solution/shim.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/link.h"

namespace cnv::solution {
namespace {

// Two shim endpoints over a pair of lossy links — the §8 layer-extension
// deployment shape (UE shim <-> radio <-> MME shim).
struct Pair {
  sim::Simulator sim;
  Rng rng{7};
  sim::Link ab;
  sim::Link ba;
  ShimEndpoint a;
  ShimEndpoint b;
  std::vector<nas::MsgKind> delivered_at_b;

  explicit Pair(double loss)
      : ab(sim, rng, {.delay = Millis(30), .loss_prob = loss, .reliable = false},
           "a->b"),
        ba(sim, rng, {.delay = Millis(30), .loss_prob = loss, .reliable = false},
           "b->a"),
        a(sim, "A"),
        b(sim, "B") {
    a.SetTransmit([this](const nas::Message& m) { ab.Send(m); });
    b.SetTransmit([this](const nas::Message& m) { ba.Send(m); });
    ab.SetReceiver([this](const nas::Message& m) { b.OnRaw(m); });
    ba.SetReceiver([this](const nas::Message& m) { a.OnRaw(m); });
    b.SetDeliver([this](const nas::Message& m) {
      delivered_at_b.push_back(m.kind);
    });
  }

  nas::Message Msg(nas::MsgKind k) {
    nas::Message m;
    m.kind = k;
    return m;
  }
};

TEST(ShimTest, DeliversOverPerfectLink) {
  Pair p(0.0);
  p.a.Send(p.Msg(nas::MsgKind::kAttachRequest));
  p.sim.RunAll();
  ASSERT_EQ(p.delivered_at_b.size(), 1u);
  EXPECT_EQ(p.delivered_at_b[0], nas::MsgKind::kAttachRequest);
  EXPECT_TRUE(p.a.idle());
  EXPECT_EQ(p.a.retransmissions(), 0u);
}

TEST(ShimTest, RecoversFromSingleLoss) {
  Pair p(0.0);
  p.ab.ForceDropNext(1);
  p.a.Send(p.Msg(nas::MsgKind::kAttachComplete));
  p.sim.RunAll();
  ASSERT_EQ(p.delivered_at_b.size(), 1u);
  EXPECT_GE(p.a.retransmissions(), 1u);
  EXPECT_TRUE(p.a.idle());
}

TEST(ShimTest, RecoversFromLostAckWithoutDuplicateDelivery) {
  Pair p(0.0);
  p.ba.ForceDropNext(1);  // the ack is lost; the data must not re-deliver
  p.a.Send(p.Msg(nas::MsgKind::kAttachRequest));
  p.sim.RunAll();
  EXPECT_EQ(p.delivered_at_b.size(), 1u);
  EXPECT_GE(p.b.duplicates_discarded(), 1u);
  EXPECT_TRUE(p.a.idle());
}

TEST(ShimTest, PreservesOrderUnderHeavyLoss) {
  Pair p(0.4);
  const std::vector<nas::MsgKind> sent = {
      nas::MsgKind::kAttachRequest, nas::MsgKind::kAttachComplete,
      nas::MsgKind::kTauRequest,    nas::MsgKind::kServiceRequest,
      nas::MsgKind::kDetachRequest,
  };
  for (auto k : sent) p.a.Send(p.Msg(k));
  p.sim.RunAll(Minutes(10));
  EXPECT_EQ(p.delivered_at_b, sent);
  EXPECT_TRUE(p.a.idle());
}

TEST(ShimTest, BidirectionalTrafficDoesNotInterfere) {
  Pair p(0.2);
  std::vector<nas::MsgKind> delivered_at_a;
  p.a.SetDeliver([&](const nas::Message& m) {
    delivered_at_a.push_back(m.kind);
  });
  p.a.Send(p.Msg(nas::MsgKind::kAttachRequest));
  p.b.Send(p.Msg(nas::MsgKind::kAttachAccept));
  p.a.Send(p.Msg(nas::MsgKind::kAttachComplete));
  p.sim.RunAll(Minutes(10));
  EXPECT_EQ(p.delivered_at_b,
            (std::vector<nas::MsgKind>{nas::MsgKind::kAttachRequest,
                                       nas::MsgKind::kAttachComplete}));
  EXPECT_EQ(delivered_at_a,
            (std::vector<nas::MsgKind>{nas::MsgKind::kAttachAccept}));
}

TEST(ShimTest, QueuesWhileInflight) {
  Pair p(0.0);
  for (int i = 0; i < 10; ++i) {
    p.a.Send(p.Msg(nas::MsgKind::kTauRequest));
  }
  EXPECT_FALSE(p.a.idle());
  p.sim.RunAll();
  EXPECT_EQ(p.delivered_at_b.size(), 10u);
  EXPECT_EQ(p.b.delivered(), 10u);
  EXPECT_TRUE(p.a.idle());
}

TEST(ShimTest, ManyMessagesOverVeryLossyLinkAllArrive) {
  Pair p(0.6);
  for (int i = 0; i < 50; ++i) {
    p.a.Send(p.Msg(nas::MsgKind::kTauRequest));
  }
  p.sim.RunAll(Minutes(60));
  EXPECT_EQ(p.delivered_at_b.size(), 50u);
  EXPECT_GT(p.a.retransmissions(), 0u);
}

TEST(ShimTest, ThrowsWithoutTransmit) {
  sim::Simulator sim;
  ShimEndpoint e(sim, "lonely");
  nas::Message m;
  EXPECT_THROW(e.Send(m), std::logic_error);
}

}  // namespace
}  // namespace cnv::solution
