#include "mck/explorer.h"

#include <gtest/gtest.h>

#include "mck/toy_models.h"

namespace cnv::mck {
namespace {

using toys::CounterModel;
using toys::DeadlockModel;
using toys::LossyPingModel;
using toys::PetersonModel;

PropertySet<CounterModel::State> BelowCap(int cap) {
  return {{"below_cap",
           [cap](const CounterModel::State& s) { return s.value <= cap; },
           "counter never exceeds the cap"}};
}

TEST(ExplorerTest, CorrectCounterSatisfiesInvariant) {
  CounterModel m;
  const auto r = Explore(m, BelowCap(m.cap));
  EXPECT_TRUE(r.Holds("below_cap"));
  EXPECT_EQ(r.stats.states_visited, 5u);  // 0..4
  EXPECT_FALSE(r.stats.truncated);
}

TEST(ExplorerTest, BuggyCounterYieldsCounterexample) {
  CounterModel m;
  m.buggy = true;
  const auto r = Explore(m, BelowCap(m.cap));
  ASSERT_FALSE(r.Holds("below_cap"));
  const auto* v = r.FindViolation("below_cap");
  ASSERT_NE(v, nullptr);
  EXPECT_GT(v->state.value, m.cap);
}

TEST(ExplorerTest, BfsFindsShortestCounterexample) {
  CounterModel m;
  m.buggy = true;
  ExploreOptions opt;
  opt.order = SearchOrder::kBreadthFirst;
  const auto r = Explore(m, BelowCap(m.cap), opt);
  const auto* v = r.FindViolation("below_cap");
  ASSERT_NE(v, nullptr);
  // Shortest: 3 normal increments to reach cap-1, then the double bump.
  EXPECT_EQ(v->trace.size(), 4u);
}

TEST(ExplorerTest, DfsFindsSameViolation) {
  CounterModel m;
  m.buggy = true;
  ExploreOptions opt;
  opt.order = SearchOrder::kDepthFirst;
  const auto r = Explore(m, BelowCap(m.cap), opt);
  EXPECT_FALSE(r.Holds("below_cap"));
}

TEST(ExplorerTest, TraceReplayReachesViolatingState) {
  CounterModel m;
  m.buggy = true;
  const auto r = Explore(m, BelowCap(m.cap));
  const auto* v = r.FindViolation("below_cap");
  ASSERT_NE(v, nullptr);
  CounterModel::State s = m.initial();
  for (const auto& a : v->trace) s = m.apply(s, a);
  EXPECT_TRUE(s == v->state);
}

TEST(ExplorerTest, MaxStatesTruncates) {
  CounterModel m;
  m.cap = 1000;
  ExploreOptions opt;
  opt.max_states = 10;
  const auto r = Explore(m, BelowCap(m.cap), opt);
  EXPECT_TRUE(r.stats.truncated);
  EXPECT_LE(r.stats.states_visited, 10u);
}

TEST(ExplorerTest, MaxDepthTruncates) {
  CounterModel m;
  m.cap = 1000;
  ExploreOptions opt;
  opt.max_depth = 5;
  const auto r = Explore(m, BelowCap(m.cap), opt);
  EXPECT_TRUE(r.stats.truncated);
  EXPECT_EQ(r.stats.states_visited, 6u);  // values 0..5 discovered
}

TEST(ExplorerTest, PetersonGuaranteesMutualExclusion) {
  PetersonModel m;
  PropertySet<PetersonModel::State> props = {
      {"mutex",
       [](const PetersonModel::State& s) {
         return !PetersonModel::BothCritical(s);
       },
       "never both in the critical section"}};
  const auto r = Explore(m, props);
  EXPECT_TRUE(r.Holds("mutex"));
  EXPECT_GT(r.stats.states_visited, 10u);
}

TEST(ExplorerTest, BrokenPetersonViolatesMutualExclusion) {
  PetersonModel m;
  m.use_turn_variable = false;
  PropertySet<PetersonModel::State> props = {
      {"mutex",
       [](const PetersonModel::State& s) {
         return !PetersonModel::BothCritical(s);
       },
       ""}};
  const auto r = Explore(m, props);
  ASSERT_FALSE(r.Holds("mutex"));
  EXPECT_FALSE(r.FindViolation("mutex")->trace.empty());
}

TEST(ExplorerTest, LossyPingWithoutRetransmitDeadlocks) {
  LossyPingModel m;
  m.retransmit = false;
  ExploreOptions opt;
  opt.detect_deadlock = true;
  const auto r = Explore(m, {}, opt);
  const auto* v = r.FindViolation("deadlock");
  ASSERT_NE(v, nullptr);
  // The deadlock is: the single allowed PING was dropped.
  EXPECT_FALSE(v->state.sender_got_ack);
  EXPECT_FALSE(v->state.receiver_got_ping);
}

TEST(ExplorerTest, LossyPingWithRetransmitHasBoundedDeadlockToo) {
  // Even with 3 sends, all may be dropped; deadlock detection still fires,
  // demonstrating the bounded-retry limit rather than true liveness.
  LossyPingModel m;
  m.retransmit = true;
  ExploreOptions opt;
  opt.detect_deadlock = true;
  const auto r = Explore(m, {}, opt);
  ASSERT_FALSE(r.Holds("deadlock"));
  EXPECT_GE(r.FindViolation("deadlock")->state.sends, 3);
}

TEST(ExplorerTest, ClassicLockOrderDeadlockDetected) {
  DeadlockModel m;
  ExploreOptions opt;
  opt.detect_deadlock = true;
  const auto r = Explore(m, {}, opt);
  const auto* v = r.FindViolation("deadlock");
  ASSERT_NE(v, nullptr);
  // Both processes hold their first lock and wait for the other's.
  EXPECT_EQ(v->state.progress[0], 1);
  EXPECT_EQ(v->state.progress[1], 1);
  EXPECT_EQ(v->trace.size(), 2u);  // BFS: shortest path is two acquisitions
}

TEST(ExplorerTest, FirstViolationPerPropertyDeduplicates) {
  CounterModel m;
  m.buggy = true;
  const auto r = Explore(m, BelowCap(m.cap));
  int below_cap_violations = 0;
  for (const auto& v : r.violations) {
    if (v.property == "below_cap") ++below_cap_violations;
  }
  EXPECT_EQ(below_cap_violations, 1);
}

TEST(ExplorerTest, StatsCarryThroughputAndOccupancyFigures) {
  PetersonModel m;
  PropertySet<PetersonModel::State> props = {
      {"mutex",
       [](const PetersonModel::State& s) {
         return !PetersonModel::BothCritical(s);
       },
       ""}};
  const auto r = Explore(m, props);
  EXPECT_GE(r.stats.frontier_peak, 1u);
  EXPECT_LE(r.stats.frontier_peak, r.stats.states_visited);
  EXPECT_GT(r.stats.hash_occupancy, 0.0);
  // Wall-clock figures are measurement-only; they must be present and sane
  // but are never folded into deterministic outputs.
  EXPECT_GE(r.stats.elapsed_wall_seconds, 0.0);
  EXPECT_GE(r.stats.StatesPerSecond(), 0.0);
}

TEST(ExplorerTest, FormatTraceListsSteps) {
  CounterModel m;
  m.buggy = true;
  const auto r = Explore(m, BelowCap(m.cap));
  const auto* v = r.FindViolation("below_cap");
  ASSERT_NE(v, nullptr);
  const auto text = FormatTrace(m, *v);
  EXPECT_NE(text.find("counterexample for below_cap"), std::string::npos);
  EXPECT_NE(text.find("1. increment by"), std::string::npos);
}

TEST(ExplorerTest, MultiplePropertiesCheckedIndependently) {
  CounterModel m;
  m.buggy = true;
  PropertySet<CounterModel::State> props = BelowCap(m.cap);
  props.push_back({"nonnegative",
                   [](const CounterModel::State& s) { return s.value >= 0; },
                   ""});
  const auto r = Explore(m, props);
  EXPECT_FALSE(r.Holds("below_cap"));
  EXPECT_TRUE(r.Holds("nonnegative"));
}

TEST(ExplorerTest, InitialStateViolationHasEmptyTrace) {
  CounterModel m;
  PropertySet<CounterModel::State> props = {
      {"never_zero",
       [](const CounterModel::State& s) { return s.value != 0; },
       ""}};
  const auto r = Explore(m, props);
  const auto* v = r.FindViolation("never_zero");
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->trace.empty());
}

}  // namespace
}  // namespace cnv::mck
