#include "sim/cell.h"

#include <gtest/gtest.h>

namespace cnv::sim {
namespace {

constexpr double kLoad = 0.62;

std::vector<CellUser> DataUsers(int n, double rssi = -70.0) {
  std::vector<CellUser> users;
  for (int i = 0; i < n; ++i) {
    users.push_back({.cs_call = false, .data_demand_mbps = 50.0,
                     .rssi_dbm = rssi});
  }
  return users;
}

TEST(CellTest, FeasibleModulationTracksRssi) {
  EXPECT_EQ(FeasibleModulation(-60, Direction::kDownlink),
            Modulation::k64Qam);
  EXPECT_EQ(FeasibleModulation(-85, Direction::kDownlink),
            Modulation::k16Qam);
  EXPECT_EQ(FeasibleModulation(-100, Direction::kDownlink),
            Modulation::kQpsk);
  // Uplink caps at 16QAM even in good conditions.
  EXPECT_EQ(FeasibleModulation(-60, Direction::kUplink), Modulation::k16Qam);
}

TEST(CellTest, CapacitySplitsEvenlyAmongPsUsers) {
  Cell cell(SharingScheme::kClusteredByDomain);
  cell.SetUsers(DataUsers(4));
  const double each = cell.PsThroughputMbps(0, Direction::kDownlink, kLoad);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(cell.PsThroughputMbps(i, Direction::kDownlink, kLoad),
                     each);
  }
  EXPECT_NEAR(each * 4, 21.1 * kLoad, 1e-9);
}

TEST(CellTest, CoupledSchemeCollapsesWhenAnyCallIsActive) {
  auto users = DataUsers(3);
  users.push_back({.cs_call = true, .data_demand_mbps = 0, .rssi_dbm = -75});

  Cell coupled(SharingScheme::kCoupledSharedChannel);
  coupled.SetUsers(users);
  Cell clustered(SharingScheme::kClusteredByDomain);
  clustered.SetUsers(users);

  const double c = coupled.TotalPsThroughputMbps(Direction::kDownlink, kLoad);
  const double d =
      clustered.TotalPsThroughputMbps(Direction::kDownlink, kLoad);
  // Coupled: 16QAM + CS penalty; clustered: 64QAM untouched.
  EXPECT_NEAR(1.0 - c / d, 0.74, 0.02);
}

TEST(CellTest, NoCallMakesCoupledAndClusteredEquivalent) {
  Cell coupled(SharingScheme::kCoupledSharedChannel);
  coupled.SetUsers(DataUsers(5));
  Cell clustered(SharingScheme::kClusteredByDomain);
  clustered.SetUsers(DataUsers(5));
  EXPECT_DOUBLE_EQ(
      coupled.TotalPsThroughputMbps(Direction::kDownlink, kLoad),
      clustered.TotalPsThroughputMbps(Direction::kDownlink, kLoad));
}

TEST(CellTest, WeakMemberDragsDownTheClusterButNotPerUser) {
  auto users = DataUsers(3);
  users.push_back({.cs_call = false, .data_demand_mbps = 50.0,
                   .rssi_dbm = -100.0});  // edge-of-cell user

  Cell clustered(SharingScheme::kClusteredByDomain);
  clustered.SetUsers(users);
  Cell per_user(SharingScheme::kPerUserModulation);
  per_user.SetUsers(users);

  // Clustered: everyone at QPSK. Per-user: only the weak user is at QPSK.
  EXPECT_EQ(clustered.PsModulationFor(0, Direction::kDownlink),
            Modulation::kQpsk);
  EXPECT_EQ(per_user.PsModulationFor(0, Direction::kDownlink),
            Modulation::k64Qam);
  EXPECT_EQ(per_user.PsModulationFor(3, Direction::kDownlink),
            Modulation::kQpsk);
  EXPECT_GT(per_user.TotalPsThroughputMbps(Direction::kDownlink, kLoad),
            clustered.TotalPsThroughputMbps(Direction::kDownlink, kLoad));
}

TEST(CellTest, VoiceAlwaysSatisfiedInEveryScheme) {
  auto users = DataUsers(2);
  users.push_back({.cs_call = true});
  for (const auto scheme : {SharingScheme::kCoupledSharedChannel,
                            SharingScheme::kClusteredByDomain,
                            SharingScheme::kPerUserModulation}) {
    Cell cell(scheme);
    cell.SetUsers(users);
    EXPECT_DOUBLE_EQ(cell.CsThroughputKbps(2), kCsVoiceRateKbps);
    EXPECT_DOUBLE_EQ(cell.CsThroughputKbps(0), 0.0);
  }
}

TEST(CellTest, DemandCapsTheRate) {
  Cell cell(SharingScheme::kPerUserModulation);
  cell.SetUsers({{.cs_call = false, .data_demand_mbps = 0.2,
                  .rssi_dbm = -65.0}});
  EXPECT_DOUBLE_EQ(cell.PsThroughputMbps(0, Direction::kDownlink, kLoad),
                   0.2);
}

TEST(CellTest, UsersWithoutDataGetZeroAndDontConsumeShare) {
  Cell cell(SharingScheme::kClusteredByDomain);
  std::vector<CellUser> users = DataUsers(2);
  users.push_back({.cs_call = false, .data_demand_mbps = 0});
  cell.SetUsers(users);
  EXPECT_DOUBLE_EQ(cell.PsThroughputMbps(2, Direction::kDownlink, kLoad),
                   0.0);
  // The two active users still split the channel in half each.
  EXPECT_NEAR(cell.PsThroughputMbps(0, Direction::kDownlink, kLoad),
              21.1 * kLoad / 2, 1e-9);
}

TEST(CellTest, InvalidLoadThrows) {
  Cell cell(SharingScheme::kPerUserModulation);
  cell.SetUsers(DataUsers(1));
  EXPECT_THROW(cell.PsThroughputMbps(0, Direction::kDownlink, 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace cnv::sim
