// Coordinator tests on toy grids (no worker processes): serial/thread
// byte-identity, retry + quarantine on the thread backend, chained carry
// threading, checkpoint/resume with blob validation, and graceful drain.
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/grid.h"
#include "gtest/gtest.h"

namespace cnv::dist {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / "dist_grid_test" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// Unchained toy grid: payload is a pure function of the index.
class SquareGrid : public CellGrid {
 public:
  explicit SquareGrid(std::size_t n) : n_(n) {}
  std::size_t size() const override { return n_; }
  CellOutcome RunCell(std::size_t i, std::string_view) override {
    ++calls_;
    CellOutcome out;
    out.payload = "cell " + std::to_string(i) + " -> " + std::to_string(i * i);
    return out;
  }
  int calls() const { return calls_.load(); }

 private:
  std::size_t n_;
  std::atomic<int> calls_{0};
};

// Chained toy grid: the carry is a running sum, so any break in the chain
// (wrong order, lost carry) corrupts every later payload.
class SumChainGrid : public CellGrid {
 public:
  explicit SumChainGrid(std::size_t n) : n_(n) {}
  std::size_t size() const override { return n_; }
  bool chained() const override { return true; }
  std::string InitialCarry() const override { return "0"; }
  bool CarryFromPayload(std::string_view payload,
                        std::string* carry) const override {
    const std::size_t colon = payload.find(':');
    if (colon == std::string_view::npos) return false;
    *carry = std::string(payload.substr(colon + 1));
    return true;
  }
  CellOutcome RunCell(std::size_t i, std::string_view carry_in) override {
    CellOutcome out;
    const std::uint64_t sum =
        std::stoull(std::string(carry_in)) + (i + 1) * (i + 1);
    out.carry = std::to_string(sum);
    out.payload = "sum after " + std::to_string(i) + ":" + out.carry;
    return out;
  }

 private:
  std::size_t n_;
};

TEST(GridTest, SerialAndThreadBackendsAreByteIdentical) {
  SquareGrid serial_grid(16);
  DistOptions serial_opt;
  serial_opt.workers = 1;
  const GridResult serial = RunGrid(serial_grid, serial_opt);
  ASSERT_TRUE(serial.complete);
  EXPECT_EQ(serial.exec.cells_run, 16u);

  SquareGrid pooled_grid(16);
  DistOptions pooled_opt;
  pooled_opt.workers = 4;
  const GridResult pooled = RunGrid(pooled_grid, pooled_opt);
  ASSERT_TRUE(pooled.complete);
  EXPECT_EQ(serial.payloads, pooled.payloads);
  EXPECT_EQ(pooled_grid.calls(), 16);
}

TEST(GridTest, ChainedGridThreadsCarryInOrder) {
  SumChainGrid grid(8);
  DistOptions opt;
  opt.workers = 4;  // chained grids run in order regardless of workers
  const GridResult result = RunGrid(grid, opt);
  ASSERT_TRUE(result.complete);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    sum += (i + 1) * (i + 1);
    EXPECT_EQ(result.payloads[i],
              "sum after " + std::to_string(i) + ":" + std::to_string(sum));
  }
}

// Fails the first `failures` attempts of every cell, then succeeds.
class FlakyGrid : public CellGrid {
 public:
  FlakyGrid(std::size_t n, int failures) : n_(n), failures_(failures) {}
  std::size_t size() const override { return n_; }
  CellOutcome RunCell(std::size_t i, std::string_view) override {
    int seen;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seen = attempts_[i]++;
    }
    CellOutcome out;
    if (seen < failures_) {
      out.ok = false;
      out.error = "transient failure " + std::to_string(seen);
      return out;
    }
    out.payload = "cell " + std::to_string(i);
    return out;
  }

 private:
  std::size_t n_;
  int failures_;
  std::mutex mu_;
  std::map<std::size_t, int> attempts_;
};

TEST(GridTest, ThreadBackendRetriesCleanFailures) {
  FlakyGrid grid(6, 2);
  DistOptions opt;
  opt.workers = 3;
  opt.retry.max_retries = 2;
  opt.retry.sleep_ms_for_test = [](std::int64_t) {};
  const GridResult result = RunGrid(grid, opt);
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(result.quarantined.empty());
  EXPECT_EQ(result.exec.retries, 12u);  // 2 extra attempts per cell
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result.payloads[i], "cell " + std::to_string(i));
  }
}

TEST(GridTest, ThreadBackendQuarantinesCellsThatExhaustRetries) {
  FlakyGrid grid(4, 100);  // never succeeds
  DistOptions opt;
  opt.workers = 2;
  opt.retry.max_retries = 1;
  opt.retry.sleep_ms_for_test = [](std::int64_t) {};
  opt.quarantine_after = 3;
  const GridResult result = RunGrid(grid, opt);
  // Every cell quarantined: the grid is "complete" (nothing pending) but
  // nothing produced a payload.
  EXPECT_TRUE(result.complete);
  ASSERT_EQ(result.quarantined.size(), 4u);
  std::set<std::size_t> indices;
  for (const auto& q : result.quarantined) {
    indices.insert(q.index);
    EXPECT_EQ(q.strikes, 2u);  // 1 attempt + 1 retry
    EXPECT_FALSE(q.last_error.empty());
  }
  EXPECT_EQ(indices.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.states[i], CellState::kQuarantined);
    EXPECT_TRUE(result.payloads[i].empty());
  }
}

TEST(GridTest, ResumeReplaysCompletedCellsWithoutRerunning) {
  const std::string dir = TempDir("resume");
  ckpt::ManifestStore store(dir, /*config_digest=*/42);

  SquareGrid first(10);
  DistOptions opt;
  opt.workers = 2;
  opt.store = &store;
  const GridResult full = RunGrid(first, opt);
  ASSERT_TRUE(full.complete);
  EXPECT_EQ(full.exec.checkpoints_written, 10u);

  SquareGrid second(10);
  opt.resume = true;
  const GridResult resumed = RunGrid(second, opt);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.exec.cells_resumed, 10u);
  EXPECT_EQ(resumed.exec.cells_run, 0u);
  EXPECT_EQ(second.calls(), 0);
  EXPECT_EQ(resumed.payloads, full.payloads);
}

TEST(GridTest, ResumeDiscardsBlobsTheValidatorRejects) {
  const std::string dir = TempDir("validate");
  ckpt::ManifestStore store(dir, 42);

  SquareGrid first(6);
  DistOptions opt;
  opt.workers = 1;
  opt.store = &store;
  ASSERT_TRUE(RunGrid(first, opt).complete);

  SquareGrid second(6);
  opt.resume = true;
  opt.validate_payload = [](std::size_t index, std::string_view) {
    return index != 3;  // pretend cell 3's blob no longer decodes
  };
  const GridResult resumed = RunGrid(second, opt);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.exec.cells_resumed, 5u);
  EXPECT_EQ(resumed.exec.cells_run, 1u);
  EXPECT_EQ(resumed.exec.corrupt_cells_discarded, 1u);
  EXPECT_EQ(second.calls(), 1);
  EXPECT_EQ(resumed.payloads[3], "cell 3 -> 9");
}

TEST(GridTest, ChainedResumeReentersTheChainMidway) {
  const std::string dir = TempDir("chained_resume");
  ckpt::ManifestStore store(dir, 7);

  // Run the full chain once to populate the store.
  SumChainGrid first(8);
  DistOptions opt;
  opt.store = &store;
  const GridResult full = RunGrid(first, opt);
  ASSERT_TRUE(full.complete);

  // Truncate the manifest to "done through cell 4" by re-saving it with the
  // tail cleared; the resumed run must fold carries from the prefix blobs
  // and produce byte-identical tail payloads.
  ckpt::Manifest m;
  ASSERT_EQ(store.LoadManifest(&m), ckpt::LoadStatus::kOk);
  for (std::size_t i = 5; i < 8; ++i) m.cells[i] = {};
  ASSERT_TRUE(store.SaveManifest(m));

  SumChainGrid second(8);
  opt.resume = true;
  const GridResult resumed = RunGrid(second, opt);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.exec.cells_resumed, 5u);
  EXPECT_EQ(resumed.exec.cells_run, 3u);
  EXPECT_EQ(resumed.payloads, full.payloads);
}

TEST(GridTest, PreCancelledRunCompletesNothing) {
  SquareGrid grid(8);
  DistOptions opt;
  opt.workers = 2;
  std::atomic<bool> cancel{true};
  opt.cancel = &cancel;
  const GridResult result = RunGrid(grid, opt);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.exec.interrupted);
  EXPECT_EQ(grid.calls(), 0);
}

TEST(GridTest, ChainedDrainStopsBetweenCells) {
  // Cancel after cell 2 completes: the chain must stop cleanly with the
  // completed prefix intact.
  class DrainingGrid : public SumChainGrid {
   public:
    DrainingGrid(std::size_t n, std::atomic<bool>* cancel)
        : SumChainGrid(n), cancel_(cancel) {}
    CellOutcome RunCell(std::size_t i, std::string_view carry) override {
      if (i == 2) cancel_->store(true);
      return SumChainGrid::RunCell(i, carry);
    }

   private:
    std::atomic<bool>* cancel_;
  };

  std::atomic<bool> cancel{false};
  DrainingGrid grid(8, &cancel);
  DistOptions opt;
  opt.cancel = &cancel;
  const GridResult result = RunGrid(grid, opt);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.exec.interrupted);
  EXPECT_EQ(result.exec.cells_run, 3u);  // cells 0, 1, 2 finished
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(result.Done(i));
  for (std::size_t i = 3; i < 8; ++i) {
    EXPECT_EQ(result.states[i], CellState::kPending);
  }
}

TEST(GridTest, BackendNamesRoundTrip) {
  EXPECT_EQ(ToString(Backend::kThread), "thread");
  EXPECT_EQ(ToString(Backend::kProcess), "process");
  Backend b = Backend::kProcess;
  EXPECT_TRUE(ParseBackend("thread", &b));
  EXPECT_EQ(b, Backend::kThread);
  EXPECT_TRUE(ParseBackend("process", &b));
  EXPECT_EQ(b, Backend::kProcess);
  EXPECT_FALSE(ParseBackend("carrier-pigeon", &b));
}

}  // namespace
}  // namespace cnv::dist
