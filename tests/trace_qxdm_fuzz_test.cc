// Fuzz the QXDM parser: arbitrary byte soup must never crash or produce a
// record from garbage; near-miss lines must be rejected; valid records with
// adversarial descriptions must round-trip.
#include <gtest/gtest.h>

#include <string>

#include "trace/qxdm.h"
#include "util/rng.h"

namespace cnv::trace {
namespace {

class QxdmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(QxdmFuzz, RandomBytesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 500; ++i) {
    std::string line;
    const auto len = rng.UniformInt(0, 120);
    for (int c = 0; c < len; ++c) {
      line += static_cast<char>(rng.UniformInt(32, 126));
    }
    (void)ParseRecord(line);  // must not crash; result may be anything
  }
}

TEST_P(QxdmFuzz, MutatedValidLinesParseOrRejectCleanly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  const std::string valid =
      "01:02:03.045 [MSG] [3G] [MM] Location Updating Request sent";
  for (int i = 0; i < 500; ++i) {
    std::string line = valid;
    const auto pos = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(line.size()) - 1));
    line[pos] = static_cast<char>(rng.UniformInt(32, 126));
    const auto r = ParseRecord(line);
    if (r.has_value()) {
      // Whatever parsed must re-serialize to a parseable line.
      const auto again = ParseRecord(FormatRecord(*r));
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, *r);
    }
  }
}

TEST_P(QxdmFuzz, AdversarialDescriptionsRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  for (int i = 0; i < 200; ++i) {
    TraceRecord r;
    r.time = rng.UniformInt(0, 86'400'000) * kMillisecond;
    // All five trace types, including the fault-injection additions
    // kFault and kRecovery.
    r.type = static_cast<TraceType>(rng.UniformInt(0, 4));
    r.system = rng.Bernoulli(0.5) ? nas::System::k3G : nas::System::k4G;
    r.module = "EMM";
    // Descriptions containing brackets, colons and digits must survive.
    std::string desc;
    const auto len = rng.UniformInt(1, 60);
    const std::string alphabet =
        "abc [](){}:.->0123456789QAM% \"quoted\" / ,";
    for (int c = 0; c < len; ++c) {
      desc += alphabet[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    }
    // The parser trims surrounding whitespace, so normalize expectations.
    r.description = "x" + desc + "x";
    const auto parsed = ParseRecord(FormatRecord(r));
    ASSERT_TRUE(parsed.has_value()) << FormatRecord(r);
    EXPECT_EQ(*parsed, r) << FormatRecord(r);
  }
}

TEST_P(QxdmFuzz, FaultAndRecoveryRecordsRoundTrip) {
  // The chaos-campaign trace types carry injector/monitor text (property
  // names, durations, percentages); their [FAULT]/[RECOV] tags and bodies
  // must survive format -> parse unchanged.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 3571);
  const std::string bodies[] = {
      "link ue->mme: drop next 1 message(s)",
      "voice-reachable outage begins",
      "data-usable recovered after 12.5 s",
      "MME crash (state wiped)",
      "timer T3410 scaled by 250%",
  };
  for (int i = 0; i < 200; ++i) {
    TraceRecord r;
    r.time = rng.UniformInt(0, 86'400'000) * kMillisecond;
    r.type = rng.Bernoulli(0.5) ? TraceType::kFault : TraceType::kRecovery;
    r.system = rng.Bernoulli(0.5) ? nas::System::k3G : nas::System::k4G;
    r.module = rng.Bernoulli(0.5) ? "INJECT" : "MONITOR";
    r.description = bodies[static_cast<std::size_t>(rng.UniformInt(0, 4))];
    const std::string line = FormatRecord(r);
    EXPECT_NE(line.find(r.type == TraceType::kFault ? "[FAULT]" : "[RECOV]"),
              std::string::npos)
        << line;
    const auto parsed = ParseRecord(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(*parsed, r) << line;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QxdmFuzz, ::testing::Range(1, 6));

}  // namespace
}  // namespace cnv::trace
