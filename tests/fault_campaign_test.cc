// CampaignRunner end-to-end: the S1-S6 canned plans must reproduce their
// findings on the carrier profile where the paper observed them, and the
// sweep bookkeeping (runs, SLO counts, summary) must hold together.
#include <gtest/gtest.h>

#include <set>

#include "fault/campaign.h"

namespace cnv::fault {
namespace {

bool HasFinding(const RunOutcome& run, const std::string& id) {
  for (const auto& f : run.report.findings) {
    if (f.id == id) return true;
  }
  return false;
}

RunOutcome RunPlan(const FaultPlan& plan, const stack::CarrierProfile& profile,
                   std::uint64_t seed = 1) {
  CampaignConfig cfg;
  CampaignRunner runner(cfg);
  return runner.RunOne(seed, plan, profile);
}

TEST(CampaignFindingsTest, S1PdpLossMidCsfbReproducesOnOpI) {
  const RunOutcome run = RunPlan(plans::S1MissingBearerContext(), stack::OpI());
  EXPECT_TRUE(HasFinding(run, "S1")) << run.report.findings.size();
  EXPECT_EQ(run.faults_injected, 1u);
}

TEST(CampaignFindingsTest, S2LostAttachCompleteReproduces) {
  const RunOutcome run = RunPlan(plans::S2AttachDisruption(), stack::OpI());
  EXPECT_TRUE(HasFinding(run, "S2"));
}

TEST(CampaignFindingsTest, S3StuckIn3gReproducesOnCellReselection) {
  const RunOutcome run = RunPlan(plans::S3StuckIn3g(), stack::OpII());
  EXPECT_TRUE(HasFinding(run, "S3"));
}

TEST(CampaignFindingsTest, S3DoesNotFireOnReleaseWithRedirect) {
  // OP-I releases with redirect: the device comes straight back to 4G, so
  // the same control plan must stay quiet on S3.
  const RunOutcome run = RunPlan(plans::S3StuckIn3g(), stack::OpI());
  EXPECT_FALSE(HasFinding(run, "S3"));
}

TEST(CampaignFindingsTest, S4HolBlockingReproducesOnOpII) {
  const RunOutcome run = RunPlan(plans::S4MmHolBlocking(), stack::OpII());
  EXPECT_TRUE(HasFinding(run, "S4"));
}

TEST(CampaignFindingsTest, S5SharedChannelDropReproducesOnOpI) {
  const RunOutcome run = RunPlan(plans::S5SharedChannelDrop(), stack::OpI());
  EXPECT_TRUE(HasFinding(run, "S5"));
}

TEST(CampaignFindingsTest, S6SgsRaceReproducesOnOpI) {
  // OP-II cannot hit the race under this workload: the pinned data session
  // strands the device in 3G (S3), so the return TAU that would carry the
  // SGs update never happens. OP-II coverage lives in stack_s5_s6_test.
  EXPECT_TRUE(
      HasFinding(RunPlan(plans::S6LuFailurePropagation(), stack::OpI()), "S6"));
}

TEST(CampaignFindingsTest, SweepAcrossBothCarriersReproducesAllSixFindings) {
  CampaignConfig cfg;
  cfg.seeds = {1};
  cfg.profiles = {stack::OpI(), stack::OpII()};
  const CampaignResult result = CampaignRunner(cfg).Run();
  std::set<std::string> ids;
  for (const auto& run : result.runs) {
    for (const auto& f : run.report.findings) ids.insert(f.id);
  }
  for (const std::string id : {"S1", "S2", "S3", "S4", "S5", "S6"}) {
    EXPECT_TRUE(ids.count(id)) << id << " never reproduced in the sweep";
  }
}

TEST(CampaignFindingsTest, FindingsAreStableAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    EXPECT_TRUE(HasFinding(
        RunPlan(plans::S2AttachDisruption(), stack::OpI(), seed), "S2"))
        << "seed " << seed;
    EXPECT_TRUE(HasFinding(
        RunPlan(plans::S6LuFailurePropagation(), stack::OpI(), seed), "S6"))
        << "seed " << seed;
  }
}

TEST(CampaignSweepTest, RunSweepsSeedsTimesPlansTimesProfiles) {
  CampaignConfig cfg;
  cfg.seeds = {1, 2};
  cfg.plans = {plans::S1MissingBearerContext(), plans::TimerSkew()};
  cfg.profiles = {stack::OpI(), stack::OpII()};
  cfg.duration = Seconds(300);
  const CampaignResult result = CampaignRunner(cfg).Run();
  EXPECT_EQ(result.runs.size(), 8u);
  EXPECT_LE(result.runs_within_slo, result.runs.size());
  EXPECT_LE(result.runs_with_findings, result.runs.size());
  // Every run is labelled with its coordinates.
  for (const auto& r : result.runs) {
    EXPECT_FALSE(r.plan.empty());
    EXPECT_FALSE(r.profile.empty());
  }
}

TEST(CampaignSweepTest, SummaryListsEveryRun) {
  CampaignConfig cfg;
  cfg.seeds = {3};
  cfg.plans = {plans::S2AttachDisruption()};
  cfg.duration = Seconds(300);
  const CampaignResult result = CampaignRunner(cfg).Run();
  const std::string summary = result.Summary();
  EXPECT_NE(summary.find("1 run(s)"), std::string::npos);
  EXPECT_NE(summary.find("s2-attach-disruption"), std::string::npos);
  EXPECT_NE(summary.find("seed=3"), std::string::npos);
}

TEST(CampaignSweepTest, TracesAreKeptOnlyWhenAskedFor) {
  CampaignConfig cfg;
  cfg.duration = Seconds(60);
  const FaultPlan plan = plans::TimerSkew();
  const RunOutcome without =
      CampaignRunner(cfg, /*keep_traces=*/false).RunOne(1, plan, stack::OpI());
  const RunOutcome with =
      CampaignRunner(cfg, /*keep_traces=*/true).RunOne(1, plan, stack::OpI());
  EXPECT_TRUE(without.trace_log.empty());
  EXPECT_FALSE(with.trace_log.empty());
}

TEST(CampaignSweepTest, RobustRunsRecoverWhereBaselineViolatesSlo) {
  // The MME crash plan wipes the registration; a baseline device that
  // never notices stays broken, while the robust stack's periodic TAU plus
  // attach backoff brings service back.
  CampaignConfig base;
  base.seeds = {1};
  base.plans = {plans::MmeCrashRestart()};
  const CampaignResult baseline = CampaignRunner(base).Run();

  CampaignConfig robust = base;
  robust.robustness.nas_retry = true;
  robust.robustness.attach_backoff = true;
  robust.robustness.cm_reattempt = true;
  robust.robustness.core_queue_replay = true;
  const CampaignResult fixed = CampaignRunner(robust).Run();

  ASSERT_EQ(baseline.runs.size(), 1u);
  ASSERT_EQ(fixed.runs.size(), 1u);
  EXPECT_GE(fixed.runs_within_slo, baseline.runs_within_slo);
}

}  // namespace
}  // namespace cnv::fault
