// Fuzz the CLI parser: random flag soups — valid flags, misspellings, bare
// dashes, numbers, garbage bytes — must either parse cleanly (exit 0 from
// the harness) or die with exit status 2 and the usage text. Never a crash,
// never another exit path. Runs under ASan in CI.
#include "util/args.h"

#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace cnv::args {
namespace {

constexpr char kUsage[] = "usage: fuzzprog [--jobs N] [--seed S] [--name X]";

// Owns the backing storage for a fake argv.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    ptrs_.reserve(strings_.size());
    for (auto& s : strings_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char* const* argv() const { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

// Runs a canonical parse sequence over the tokens. Either every accessor
// succeeds and we _exit(0), or ArgParser::Fail prints usage and exits 2.
// (_exit, not return: the EXPECT_EXIT child must not run test teardown.)
[[noreturn]] void ParseAndExit(std::vector<std::string> tokens) {
  tokens.insert(tokens.begin(), "fuzzprog");
  Argv argv(std::move(tokens));
  ArgParser parser(argv.argc(), argv.argv(), kUsage);
  int jobs = 0;
  std::uint64_t seed = 0;
  std::string name;
  parser.Flag("--verbose");
  parser.IntValue("--jobs", &jobs, 0);
  parser.U64Value("--seed", &seed);
  parser.StrValue("--name", &name);
  parser.Finish(/*max_positional=*/1);
  _exit(0);
}

// Random token built from a vocabulary of valid flags, near-misses and
// byte garbage.
std::string RandomToken(cnv::Rng& rng) {
  static const std::vector<std::string> kVocabulary = {
      "--jobs",  "--seed", "--name",   "--verbose", "--jbos", "--seed=4",
      "--",      "-",      "---jobs",  "4",         "-7",     "0x10",
      "18446744073709551616",  // one past uint64 max
      "99999999999999999999999999",
      "",        "porridge", "--name",
      // "=" spellings: valid, empty value, garbage value, "=" in the value,
      // near-miss flag, and a bare "=".
      "--jobs=2", "--seed=",  "--jobs=four", "--name=a=b", "--jbos=1", "=",
      "--name=",  "--verbose=1",
  };
  const auto pick = static_cast<std::size_t>(rng.UniformInt(
      0, static_cast<std::int64_t>(kVocabulary.size()) + 1));
  if (pick < kVocabulary.size()) return kVocabulary[pick];
  // Raw bytes, including non-printables.
  std::string s;
  const std::int64_t len = rng.UniformInt(0, 5);
  for (std::int64_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  return s;
}

bool ExitedCleanlyOrUsage(int status) {
  if (!WIFEXITED(status)) return false;
  const int code = WEXITSTATUS(status);
  return code == 0 || code == 2;
}

TEST(ArgsFuzzTest, RandomFlagSoupsNeverCrash) {
  cnv::Rng rng(0x5eedf1a6);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::string> tokens;
    const std::int64_t n = rng.UniformInt(0, 5);
    for (std::int64_t i = 0; i < n; ++i) tokens.push_back(RandomToken(rng));
    std::string label = "round " + std::to_string(round) + ":";
    for (const auto& t : tokens) label += " [" + t + "]";
    SCOPED_TRACE(label);
    EXPECT_EXIT(ParseAndExit(tokens), ExitedCleanlyOrUsage, "");
  }
}

TEST(ArgsFuzzTest, MalformedInputsDieWithUsageOnStderr) {
  const std::vector<std::vector<std::string>> kMalformed = {
      {"--jbos", "4"},          // unknown flag
      {"--jobs"},               // missing value
      {"--jobs", "four"},       // non-numeric
      {"--jobs", "-3"},         // below minimum
      {"--seed", "-1"},         // negative for unsigned
      {"--seed", "99999999999999999999"},  // overflow
      {"--name"},               // missing string value
      {"pos1", "pos2"},         // excess positional (max 1)
      {"---jobs", "1"},         // triple dash is not a flag we know
      {"--jobs=four"},          // non-numeric in "=" form
      {"--seed="},              // empty value in "=" form
      {"--jbos=1"},             // unknown flag in "=" form
      {"--verbose=1", "a", "b"},  // Flag() never consumes "=", so this is
                                  // an unknown --flag at Finish()
  };
  for (const auto& tokens : kMalformed) {
    std::string label;
    for (const auto& t : tokens) label += " [" + t + "]";
    SCOPED_TRACE(label);
    EXPECT_EXIT(ParseAndExit(tokens), testing::ExitedWithCode(2),
                "usage: fuzzprog");
  }
}

TEST(ArgsFuzzTest, ValidCombinationsExitZero) {
  EXPECT_EXIT(ParseAndExit({"--jobs", "4", "--seed", "9", "--verbose"}),
              testing::ExitedWithCode(0), "");
  EXPECT_EXIT(ParseAndExit({"--jobs=4", "--seed=9", "--name=a=b"}),
              testing::ExitedWithCode(0), "");
  EXPECT_EXIT(ParseAndExit({"--name", "value", "positional"}),
              testing::ExitedWithCode(0), "");
  EXPECT_EXIT(ParseAndExit({}), testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace cnv::args
