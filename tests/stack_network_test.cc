// Direct unit tests of the network-side elements (MME / MSC / SGSN),
// exercised through the Testbed wiring.
#include <gtest/gtest.h>

#include "stack/scenarios.h"
#include "stack/testbed.h"

namespace cnv::stack {
namespace {

TEST(SgsnTest, ContextTransferIsOneShot) {
  Testbed tb({});
  nas::PdpContext pdp;
  pdp.active = true;
  pdp.ip_address = 77;
  tb.sgsn().StoreMigratedContext(pdp);
  EXPECT_TRUE(tb.sgsn().registered());
  const auto taken = tb.sgsn().TakeContextFor4g();
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->ip_address, 77u);
  // Resources released: a second take finds nothing (the S1 condition).
  EXPECT_FALSE(tb.sgsn().TakeContextFor4g().has_value());
  EXPECT_FALSE(tb.sgsn().pdp_active());
}

TEST(SgsnTest, DeactivateWithoutContextIsNoOp) {
  Testbed tb({});
  tb.sgsn().DeactivatePdp(nas::PdpDeactCause::kRegularDeactivation);
  tb.Run(Seconds(1));
  EXPECT_FALSE(tb.sgsn().pdp_active());  // nothing sent, nothing crashed
}

TEST(MscTest, CallSetupLatencyIsConfigurable) {
  Testbed tb({});
  tb.msc().set_call_setup_latency(
      {.median_s = 2.0, .sigma = 0.001, .min_s = 2.0, .max_s = 2.0});
  ASSERT_TRUE(scenario::AttachIn3g(tb));
  tb.Run(Seconds(10));
  ASSERT_TRUE(scenario::EstablishCall(tb));
  // Setup = CM service (~0.1s) + Setup leg + configured 2s connect.
  EXPECT_LT(tb.ue().call_setup_seconds().Values().back(), 3.5);
}

TEST(MscTest, DisruptNextLocationUpdateSwallowsTheAccept) {
  Testbed tb({});
  tb.msc().DisruptNextLocationUpdate();
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(10));
  EXPECT_FALSE(tb.msc().last_lu_completed());
  EXPECT_FALSE(tb.msc().registered());
  // The device keeps waiting: the MM state never saw an accept.
  EXPECT_EQ(tb.ue().mm_state(), UeDevice::MmState::kLuInProgress);
}

TEST(MscTest, SgsFailureModesFollowTheCarrierProfile) {
  {
    Testbed tb({.profile = OpI(), .solutions = {}});
    // OP-I: a disrupted first update propagates as such.
    EXPECT_EQ(tb.msc().OnSgsLocationUpdate(/*first_update_completed=*/false),
              nas::MmCause::kUpdateDisrupted);
    // A completed first update is fine.
    EXPECT_EQ(tb.msc().OnSgsLocationUpdate(true), nas::MmCause::kNone);
  }
  {
    Testbed tb({.profile = OpII(), .solutions = {}});
    // OP-II: the MSC refuses the second update once already registered.
    EXPECT_EQ(tb.msc().OnSgsLocationUpdate(true), nas::MmCause::kNone);
    EXPECT_EQ(tb.msc().OnSgsLocationUpdate(true),
              nas::MmCause::kMscTemporarilyNotReachable);
  }
}

TEST(MmeTest, ReattachDelayOnlyAppliesAfterADetach) {
  Testbed tb({});
  const SimTime start = tb.sim().now();
  ASSERT_TRUE(scenario::AttachIn4g(tb));
  // A fresh attach is fast: core processing + RTTs only.
  EXPECT_LT(ToSeconds(tb.sim().now() - start), 1.0);

  // Force a detach; the next attach is operator-delayed (Figure 4).
  tb.mme().RunSgsLocationUpdate(/*race_hit=*/true);
  const SimTime detach_at = tb.sim().now();
  scenario::RunUntil(tb, [&] { return tb.ue().oos_events() > 0; },
                     Seconds(10));
  scenario::RunUntil(tb, [&] { return !tb.ue().out_of_service(); },
                     Minutes(2));
  EXPECT_FALSE(tb.ue().out_of_service());
  EXPECT_GT(ToSeconds(tb.sim().now() - detach_at), 1.0);
}

TEST(MmeTest, BearerSurvivesTauButNotSwitchAway) {
  Testbed tb({});
  ASSERT_TRUE(scenario::AttachIn4g(tb));
  tb.ue().CrossAreaBoundary();
  tb.Run(Seconds(2));
  EXPECT_TRUE(tb.mme().bearer_active());
  tb.mme().ReleaseBearerOnSwitchAway();
  EXPECT_FALSE(tb.mme().bearer_active());
  // The registration itself survives the inter-system switch.
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);
}

TEST(MmeTest, EsmActivatesFreshBearerOnRequest) {
  Testbed tb({});
  ASSERT_TRUE(scenario::AttachIn4g(tb));
  tb.mme().ReleaseBearerOnSwitchAway();
  ASSERT_FALSE(tb.mme().bearer_active());
  // An ESM bearer activation request rebuilds the default bearer and the
  // accept reaches the device.
  nas::Message m;
  m.kind = nas::MsgKind::kEsmActivateBearerRequest;
  m.protocol = nas::Protocol::kEsm;
  tb.mme().OnUplink(m);
  tb.Run(Seconds(1));
  EXPECT_TRUE(tb.mme().bearer_active());
  EXPECT_TRUE(tb.ue().eps_bearer_active());
}

}  // namespace
}  // namespace cnv::stack
