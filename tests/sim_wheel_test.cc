// Queue-discipline suite for the hierarchical timer wheel kernel.
//
// Two halves:
//   1. PendingEvents / cancellation regression — pins the live-event count
//      through every schedule/cancel/fire interleaving that skewed the
//      seed's derived (queue size minus tombstone set) accounting.
//   2. Differential property tests — randomized schedule / cancel /
//      equal-timestamp / guard-timer workloads replayed through the
//      reference heap kernel (sim/heap_ref.h) and the wheel-backed
//      Simulator side by side, asserting identical execution order, clock
//      positions, accounting, and TimerStats.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "sim/heap_ref.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "sim/wheel.h"
#include "util/rng.h"
#include "util/time.h"

namespace cnv::sim {
namespace {

// ---------------------------------------------------------------------------
// Satellite 1: PendingEvents accounting through interleavings.

TEST(WheelPendingTest, ScheduleCancelFireInterleavings) {
  Simulator sim;
  EXPECT_EQ(sim.PendingEvents(), 0u);

  auto a = sim.ScheduleAt(10, [] {});
  auto b = sim.ScheduleAt(10, [] {});
  auto c = sim.ScheduleAt(20, [] {});
  EXPECT_EQ(sim.PendingEvents(), 3u);

  sim.Cancel(b);
  EXPECT_EQ(sim.PendingEvents(), 2u);
  sim.Cancel(b);  // idempotent: must not double-decrement
  EXPECT_EQ(sim.PendingEvents(), 2u);

  EXPECT_TRUE(sim.Step());  // fires a
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Cancel(a);  // already fired: no-op
  EXPECT_EQ(sim.PendingEvents(), 1u);

  sim.Cancel(c);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

// The seed kernel's PendingEvents drifted when a handler cancelled a
// not-yet-pruned sibling, because the tombstone set and the heap disagreed
// until the next prune. The live counter cannot drift: every transition is
// counted at the moment it happens.
TEST(WheelPendingTest, HandlerCancellingSiblingKeepsCountExact) {
  Simulator sim;
  Simulator::EventId victim = Simulator::kInvalidEvent;
  std::size_t pending_inside = 0;
  sim.ScheduleAt(5, [&] {
    sim.Cancel(victim);
    pending_inside = sim.PendingEvents();
  });
  victim = sim.ScheduleAt(5, [] { FAIL() << "cancelled event fired"; });
  sim.ScheduleAt(7, [] {});
  EXPECT_EQ(sim.PendingEvents(), 3u);
  sim.RunAll();
  // Inside the first handler: it is no longer pending, the victim was just
  // cancelled, only the t=7 event remains.
  EXPECT_EQ(pending_inside, 1u);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.ExecutedEvents(), 2u);
  EXPECT_EQ(sim.CancelledEvents(), 1u);
}

TEST(WheelPendingTest, CancelledStragglersNeverLingerInCount) {
  Simulator sim;
  std::vector<Simulator::EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.ScheduleAt(100 + i, [] {}));
  }
  // Cancel every other event without ever stepping: the wheel still holds
  // 1000 entries (500 tombstones), but only 500 are live.
  for (std::size_t i = 0; i < ids.size(); i += 2) sim.Cancel(ids[i]);
  EXPECT_EQ(sim.PendingEvents(), 500u);
  sim.RunAll();
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.ExecutedEvents(), 500u);
  EXPECT_EQ(sim.CancelledEvents(), 500u);
}

TEST(WheelPendingTest, RandomizedCountMatchesShadowLedger) {
  Rng rng(20260808);
  Simulator sim;
  std::vector<Simulator::EventId> open;
  std::size_t live = 0;
  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.Uniform();
    if (roll < 0.5) {
      open.push_back(sim.ScheduleIn(
          static_cast<SimTime>(rng.UniformInt(0, 5000)), [] {}));
      ++live;
    } else if (roll < 0.75 && !open.empty()) {
      const std::size_t k =
          static_cast<std::size_t>(rng.UniformInt(0, open.size() - 1));
      // May already have fired or been cancelled; Cancel must only decrement
      // the count when the event was actually live.
      const auto before = sim.CancelledEvents();
      sim.Cancel(open[k]);
      if (sim.CancelledEvents() != before) --live;
    } else {
      if (sim.Step()) --live;
    }
    ASSERT_EQ(sim.PendingEvents(), live) << "at step " << step;
  }
  sim.RunAll();
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

// ---------------------------------------------------------------------------
// Raw wheel coverage: tiers, cascades, overflow calendar, position jumps.

TEST(TimerWheelTest, PopsAcrossAllTiersInOrder) {
  TimerWheel w;
  // One entry per tier plus two in the overflow calendar. Scheduled in
  // scrambled order; must pop sorted by time.
  const SimTime times[] = {
      200,                        // level 0
      Millis(10),                 // level 0, same tick
      Seconds(100),               // level 0, late slot
      Minutes(30),                // level 1
      Minutes(600),               // level 2
      Minutes(5'000),             // overflow (~83 h), bucket 139
      Minutes(9'000),             // overflow (~150 h), later bucket
  };
  std::uint64_t seq = 1;
  for (int i = 6; i >= 0; --i) w.Schedule(times[i], seq++, 100 + i);
  EXPECT_EQ(w.Size(), 7u);
  EXPECT_GT(w.stats().overflow_inserts, 0u);

  WheelEntry e;
  SimTime prev = -1;
  std::vector<SimTime> popped;
  while (w.PopUntil(std::numeric_limits<SimTime>::max(), &e)) {
    EXPECT_GT(e.time, prev);
    prev = e.time;
    popped.push_back(e.time);
  }
  ASSERT_EQ(popped.size(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(popped[i], times[i]);
  EXPECT_TRUE(w.Empty());
  EXPECT_GT(w.stats().cascaded, 0u);
  EXPECT_EQ(w.stats().migrated, 2u);
}

TEST(TimerWheelTest, EqualTimesPopInSeqOrderAcrossCascades) {
  TimerWheel w;
  // Same absolute time reached via different tiers: one direct level-0
  // insert after the position advances, the others cascading down from
  // higher tiers. Seq order must survive.
  const SimTime t = Minutes(10);
  w.Schedule(t, 1, 11);          // level 1 at insert time
  w.Schedule(Millis(1), 2, 12);  // something to advance past first
  WheelEntry e;
  ASSERT_TRUE(w.PopUntil(Millis(1), &e));
  EXPECT_EQ(e.payload, 12u);
  w.Schedule(t, 3, 13);  // same slot, later seq
  w.Schedule(t, 4, 14);
  std::vector<std::uint64_t> order;
  while (w.PopUntil(t, &e)) order.push_back(e.payload);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{11, 13, 14}));
}

TEST(TimerWheelTest, PopUntilLimitIsExact) {
  TimerWheel w;
  w.Schedule(100, 1, 1);
  w.Schedule(101, 2, 2);
  WheelEntry e;
  EXPECT_FALSE(w.PopUntil(99, &e));
  ASSERT_TRUE(w.PopUntil(100, &e));
  EXPECT_EQ(e.time, 100);
  EXPECT_FALSE(w.PopUntil(100, &e));
  ASSERT_TRUE(w.PopUntil(101, &e));
  EXPECT_EQ(e.time, 101);
  EXPECT_TRUE(w.Empty());
}

TEST(TimerWheelTest, SparseFarJumpsSkipEmptyTicks) {
  TimerWheel w;
  // Hours of virtual time with a handful of events: per-tick walking would
  // time out; bitmap jumps make this instant.
  std::uint64_t seq = 1;
  for (int i = 1; i <= 8; ++i) w.Schedule(Minutes(8 * i), seq++, i);
  WheelEntry e;
  int popped = 0;
  while (w.PopUntil(std::numeric_limits<SimTime>::max(), &e)) {
    ++popped;
    EXPECT_EQ(e.time, Minutes(8 * popped));
  }
  EXPECT_EQ(popped, 8);
}

TEST(TimerWheelTest, OccupancyStatsBalance) {
  TimerWheel w;
  Rng rng(7);
  std::uint64_t seq = 1;
  for (int i = 0; i < 5000; ++i) {
    w.Schedule(rng.UniformInt(0, Minutes(100)), seq++, i);
  }
  WheelEntry e;
  while (w.PopUntil(std::numeric_limits<SimTime>::max(), &e)) {
  }
  const auto& s = w.stats();
  for (int level = 0; level < TimerWheel::kLevels; ++level) {
    EXPECT_EQ(s.occupancy[level], 0u) << "level " << level;
  }
  EXPECT_EQ(s.overflow_occupancy, 0u);
  EXPECT_TRUE(w.Empty());
}

// ---------------------------------------------------------------------------
// Satellite 2: differential property tests, heap oracle vs wheel kernel.

// Drives an identical randomized workload through both kernels and asserts
// the observable execution is the same: same events in the same order at the
// same clock readings, same final accounting.
void RunDifferentialWorkload(std::uint64_t seed, int steps, SimTime max_delay,
                             double cancel_bias) {
  ReferenceHeapSimulator heap;
  Simulator wheel;
  std::vector<int> heap_log, wheel_log;
  std::vector<ReferenceHeapSimulator::EventId> heap_ids;
  std::vector<Simulator::EventId> wheel_ids;

  // Two RNG streams with the same seed make identical decisions.
  Rng rng_a(seed), rng_b(seed);
  const auto drive = [&](auto& sim, auto& ids, std::vector<int>& log,
                         Rng& rng) {
    for (int step = 0; step < steps; ++step) {
      const double roll = rng.Uniform();
      if (roll < 0.45) {
        const SimTime d = rng.UniformInt(0, max_delay);
        const int tag = step;
        ids.push_back(sim.ScheduleIn(d, [&log, tag] { log.push_back(tag); }));
      } else if (roll < 0.45 + cancel_bias && !ids.empty()) {
        sim.Cancel(ids[static_cast<std::size_t>(
            rng.UniformInt(0, ids.size() - 1))]);
      } else if (roll < 0.9) {
        sim.Step();
      } else {
        sim.RunUntil(sim.now() + rng.UniformInt(0, max_delay / 2));
      }
    }
    sim.RunAll();
  };
  drive(heap, heap_ids, heap_log, rng_a);
  drive(wheel, wheel_ids, wheel_log, rng_b);

  ASSERT_EQ(heap_log, wheel_log) << "seed " << seed;
  EXPECT_EQ(heap.now(), wheel.now());
  EXPECT_EQ(heap.ExecutedEvents(), wheel.ExecutedEvents());
  EXPECT_EQ(heap.ScheduledEvents(), wheel.ScheduledEvents());
  EXPECT_EQ(heap.CancelledEvents(), wheel.CancelledEvents());
  EXPECT_EQ(heap.PendingEvents(), wheel.PendingEvents());
}

TEST(WheelPropertyTest, MatchesHeapOnShortDelays) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunDifferentialWorkload(seed, 4000, 300, 0.2);
  }
}

TEST(WheelPropertyTest, MatchesHeapAcrossTiers) {
  for (std::uint64_t seed = 100; seed <= 104; ++seed) {
    RunDifferentialWorkload(seed, 2000, Seconds(90), 0.2);
  }
}

TEST(WheelPropertyTest, MatchesHeapWithFarFutureGuards) {
  // Delays beyond the top wheel horizon (~76 h) exercise the overflow
  // calendar the way T3412/T3346 guard timers do on long-lived populations.
  for (std::uint64_t seed = 200; seed <= 203; ++seed) {
    RunDifferentialWorkload(seed, 1200, Minutes(6'000), 0.35);
  }
}

TEST(WheelPropertyTest, MatchesHeapOnEqualTimestampBursts) {
  // Many events at few distinct timestamps: the FIFO tie-break carries all
  // of the ordering information.
  ReferenceHeapSimulator heap;
  Simulator wheel;
  std::vector<int> heap_log, wheel_log;
  Rng rng_a(42), rng_b(42);
  const auto drive = [](auto& sim, std::vector<int>& log, Rng& rng) {
    for (int i = 0; i < 3000; ++i) {
      const SimTime t = rng.UniformInt(0, 9) * 100;
      sim.ScheduleAt(t, [&log, i] { log.push_back(i); });
    }
    sim.RunAll();
  };
  drive(heap, heap_log, rng_a);
  drive(wheel, wheel_log, rng_b);
  ASSERT_EQ(heap_log, wheel_log);
}

TEST(WheelPropertyTest, MatchesHeapOnReentrantChains) {
  // Handlers that reschedule at zero and small delays — the attach-retry
  // pattern — through both kernels.
  const auto drive = [](auto& sim, std::vector<int>& log) {
    for (int chain = 0; chain < 50; ++chain) {
      auto step = std::make_shared<std::function<void(int)>>();
      *step = [&sim, &log, chain, step](int depth) {
        log.push_back(chain * 100 + depth);
        if (depth < 20) {
          sim.ScheduleIn(depth % 3 == 0 ? 0 : depth,
                         [step, depth] { (*step)(depth + 1); });
        }
      };
      sim.ScheduleAt(chain * 7, [step] { (*step)(0); });
    }
    sim.RunAll();
  };
  ReferenceHeapSimulator heap;
  Simulator wheel;
  std::vector<int> heap_log, wheel_log;
  drive(heap, heap_log);
  drive(wheel, wheel_log);
  ASSERT_EQ(heap_log, wheel_log);
  EXPECT_EQ(heap.now(), wheel.now());
}

TEST(WheelPropertyTest, TimerStatsMatchHeapUnderRestartStorms) {
  // BasicTimer bound to each kernel: arm / restart / stop / expire storms
  // must produce identical TimerStats on both sides.
  const auto drive = [](auto& sim) {
    using SimT = std::remove_reference_t<decltype(sim)>;
    Rng rng(9001);
    std::vector<std::unique_ptr<BasicTimer<SimT>>> timers;
    for (int i = 0; i < 32; ++i) {
      timers.push_back(std::make_unique<BasicTimer<SimT>>(
          sim, "T" + std::to_string(i)));
    }
    for (int step = 0; step < 3000; ++step) {
      auto& t = *timers[static_cast<std::size_t>(
          rng.UniformInt(0, timers.size() - 1))];
      const double roll = rng.Uniform();
      if (roll < 0.5) {
        t.Start(rng.UniformInt(1, Seconds(10)), [] {});
      } else if (roll < 0.7) {
        t.Stop();
      } else {
        sim.RunUntil(sim.now() + rng.UniformInt(0, Millis(500)));
      }
    }
    sim.RunAll(sim.now() + Seconds(20));
    timers.clear();  // destructors stop running timers
  };
  ReferenceHeapSimulator heap;
  Simulator wheel;
  drive(heap);
  drive(wheel);
  EXPECT_EQ(heap.timer_stats().armed, wheel.timer_stats().armed);
  EXPECT_EQ(heap.timer_stats().fired, wheel.timer_stats().fired);
  EXPECT_EQ(heap.timer_stats().cancelled, wheel.timer_stats().cancelled);
  EXPECT_EQ(heap.now(), wheel.now());
  EXPECT_EQ(heap.ExecutedEvents(), wheel.ExecutedEvents());
}

}  // namespace
}  // namespace cnv::sim
