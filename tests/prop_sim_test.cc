// Randomized-fuzz properties of the discrete-event kernel: for arbitrary
// schedule/cancel sequences, exactly the non-cancelled events fire, in
// non-decreasing time order, at their scheduled timestamps.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace cnv::sim {
namespace {

class SimFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SimFuzz, ScheduleCancelFuzz) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Simulator sim;

  std::map<Simulator::EventId, SimTime> scheduled;
  std::set<Simulator::EventId> cancelled;
  std::vector<std::pair<Simulator::EventId, SimTime>> fired;

  const int n = 200;
  std::vector<Simulator::EventId> ids;
  for (int i = 0; i < n; ++i) {
    const SimTime t = rng.UniformInt(0, 10'000) * kMillisecond;
    auto idp = std::make_shared<Simulator::EventId>(0);
    const Simulator::EventId id = sim.ScheduleAt(
        t, [&fired, &sim, idp] { fired.push_back({*idp, sim.now()}); });
    *idp = id;  // set before RunAll, so the handler reads the real id
    ids.push_back(id);
    scheduled[id] = t;
  }
  // Cancel a random ~third, including repeated and bogus cancels.
  for (int i = 0; i < n / 3; ++i) {
    const auto id = ids[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(ids.size()) - 1))];
    sim.Cancel(id);
    sim.Cancel(id);
    cancelled.insert(id);
  }
  sim.Cancel(999'999'999);  // unknown id: no-op

  sim.RunAll();

  // Exactly the non-cancelled events fired.
  EXPECT_EQ(fired.size(), scheduled.size() - cancelled.size());
  SimTime prev = -1;
  std::set<Simulator::EventId> fired_ids;
  for (const auto& [id, at] : fired) {
    EXPECT_FALSE(cancelled.contains(id));
    EXPECT_EQ(scheduled.at(id), at);  // fired at its scheduled time
    EXPECT_GE(at, prev);              // time is monotone
    prev = at;
    EXPECT_TRUE(fired_ids.insert(id).second);  // fired exactly once
  }
}

TEST_P(SimFuzz, NestedSchedulingKeepsOrder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  Simulator sim;
  std::vector<SimTime> fire_times;
  int remaining = 100;
  std::function<void()> spawn = [&] {
    fire_times.push_back(sim.now());
    if (remaining-- > 0) {
      sim.ScheduleIn(rng.UniformInt(0, 50) * kMillisecond, spawn);
      if (rng.Bernoulli(0.4)) {
        sim.ScheduleIn(rng.UniformInt(0, 50) * kMillisecond, spawn);
      }
    }
  };
  sim.ScheduleIn(0, spawn);
  sim.RunAll();
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
  EXPECT_GT(fire_times.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace cnv::sim
