// Wire-protocol tests: frame round-trips over arbitrary stream chunkings,
// the full poisoning taxonomy (bad magic, unknown version, unknown type,
// oversized declared payload, checksum mismatch), fd-level WriteFrame, and
// the result-payload codec.
#include "dist/frame.h"

#include <unistd.h>

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace cnv::dist {
namespace {

Frame MakeFrame(FrameType type, std::uint32_t worker, std::uint64_t cell,
                std::string payload) {
  Frame f;
  f.type = type;
  f.worker = worker;
  f.cell = cell;
  f.payload = std::move(payload);
  return f;
}

TEST(FrameTest, RoundTripsOneFrame) {
  const Frame in = MakeFrame(FrameType::kResult, 3, 17, "outcome-bytes");
  FrameParser parser;
  parser.Feed(EncodeFrame(in));
  Frame out;
  ASSERT_EQ(parser.Next(&out), FrameParser::Status::kFrame);
  EXPECT_EQ(out.type, FrameType::kResult);
  EXPECT_EQ(out.worker, 3u);
  EXPECT_EQ(out.cell, 17u);
  EXPECT_EQ(out.payload, "outcome-bytes");
  EXPECT_EQ(parser.Next(&out), FrameParser::Status::kNeedMore);
  EXPECT_FALSE(parser.poisoned());
}

TEST(FrameTest, RoundTripsEmptyPayload) {
  FrameParser parser;
  parser.Feed(EncodeFrame(MakeFrame(FrameType::kHeartbeat, 1, kNoCell, "")));
  Frame out;
  ASSERT_EQ(parser.Next(&out), FrameParser::Status::kFrame);
  EXPECT_EQ(out.type, FrameType::kHeartbeat);
  EXPECT_EQ(out.cell, kNoCell);
  EXPECT_TRUE(out.payload.empty());
}

TEST(FrameTest, DecodesByteAtATime) {
  // The parser must tolerate any chunking of the stream, down to one byte
  // at a time, and pop frames in order.
  std::string stream;
  for (int i = 0; i < 5; ++i) {
    stream += EncodeFrame(MakeFrame(FrameType::kLease, kCoordinatorSlot,
                                    static_cast<std::uint64_t>(i),
                                    std::string(i, 'x')));
  }
  FrameParser parser;
  std::vector<Frame> got;
  for (char c : stream) {
    parser.Feed(std::string_view(&c, 1));
    Frame f;
    while (parser.Next(&f) == FrameParser::Status::kFrame) got.push_back(f);
  }
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i].cell, static_cast<std::uint64_t>(i));
    EXPECT_EQ(got[i].payload, std::string(i, 'x'));
  }
}

TEST(FrameTest, BadMagicPoisons) {
  std::string bytes = EncodeFrame(MakeFrame(FrameType::kHello, 0, kNoCell, ""));
  bytes[0] ^= 0x40;
  FrameParser parser;
  parser.Feed(bytes);
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Status::kBad);
  EXPECT_TRUE(parser.poisoned());
  EXPECT_FALSE(parser.error().empty());
  // A poisoned parser stays poisoned even when fed valid bytes.
  parser.Feed(EncodeFrame(MakeFrame(FrameType::kHello, 0, kNoCell, "")));
  EXPECT_EQ(parser.Next(&out), FrameParser::Status::kBad);
}

TEST(FrameTest, UnknownVersionPoisons) {
  std::string bytes = EncodeFrame(MakeFrame(FrameType::kHello, 0, kNoCell, ""));
  bytes[4] ^= 0x01;  // version field follows the magic
  FrameParser parser;
  parser.Feed(bytes);
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Status::kBad);
  EXPECT_TRUE(parser.poisoned());
}

TEST(FrameTest, UnknownTypePoisons) {
  std::string bytes = EncodeFrame(MakeFrame(FrameType::kHello, 0, kNoCell, ""));
  bytes[8] = 0x7f;  // type field: no FrameType has value 0x7f
  FrameParser parser;
  parser.Feed(bytes);
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Status::kBad);
}

TEST(FrameTest, OversizedDeclaredPayloadPoisonsWithoutAllocating) {
  // A corrupt size field must poison immediately, not wait for (or try to
  // buffer) a terabyte of payload.
  std::string bytes =
      EncodeFrame(MakeFrame(FrameType::kResult, 0, 0, "abc"));
  // payload_size is the u64 at offset 24 (magic, version, type, worker = 16
  // bytes; cell = 8 bytes).
  bytes[24 + 5] = 0x7f;  // declared size now > kMaxFramePayload
  FrameParser parser;
  parser.Feed(bytes);
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Status::kBad);
  EXPECT_TRUE(parser.poisoned());
}

TEST(FrameTest, ChecksumMismatchPoisons) {
  std::string bytes =
      EncodeFrame(MakeFrame(FrameType::kResult, 2, 5, "payload"));
  bytes[bytes.size() - 1] ^= 0x01;  // flip a payload byte
  FrameParser parser;
  parser.Feed(bytes);
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Status::kBad);
  EXPECT_TRUE(parser.poisoned());
}

TEST(FrameTest, TruncatedStreamIsNeedMoreNotBad) {
  const std::string bytes =
      EncodeFrame(MakeFrame(FrameType::kResult, 2, 5, "payload"));
  FrameParser parser;
  parser.Feed(std::string_view(bytes).substr(0, bytes.size() - 1));
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Status::kNeedMore);
  EXPECT_FALSE(parser.poisoned());
  parser.Feed(std::string_view(bytes).substr(bytes.size() - 1));
  EXPECT_EQ(parser.Next(&out), FrameParser::Status::kFrame);
  EXPECT_EQ(out.payload, "payload");
}

TEST(FrameTest, WriteFrameRoundTripsThroughAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const Frame in = MakeFrame(FrameType::kError, 1, 9, "worker exploded");
  ASSERT_TRUE(WriteFrame(fds[1], in));
  close(fds[1]);
  FrameParser parser;
  char buf[256];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof buf)) > 0) {
    parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
  close(fds[0]);
  Frame out;
  ASSERT_EQ(parser.Next(&out), FrameParser::Status::kFrame);
  EXPECT_EQ(out.type, FrameType::kError);
  EXPECT_EQ(out.payload, "worker exploded");
}

TEST(FrameTest, WriteFrameToClosedPipeFailsInsteadOfRaisingSigpipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[0]);
  // The fleet ignores SIGPIPE while running; the test harness does too so a
  // dead-peer write surfaces as `false`, not a killed process.
  signal(SIGPIPE, SIG_IGN);
  EXPECT_FALSE(WriteFrame(fds[1], MakeFrame(FrameType::kDrain, 0, 0, "")));
  close(fds[1]);
}

TEST(ResultPayloadTest, RoundTrips) {
  const std::string payload = EncodeResultPayload("outcome\0bytes", "carry");
  std::string outcome;
  std::string carry;
  ASSERT_TRUE(DecodeResultPayload(payload, &outcome, &carry));
  EXPECT_EQ(outcome, "outcome");  // literal embedded NUL truncates the char*
  EXPECT_EQ(carry, "carry");

  const std::string binary = std::string("a\0b", 3);
  std::string outcome2;
  std::string carry2;
  ASSERT_TRUE(
      DecodeResultPayload(EncodeResultPayload(binary, ""), &outcome2, &carry2));
  EXPECT_EQ(outcome2, binary);
  EXPECT_TRUE(carry2.empty());
}

TEST(ResultPayloadTest, RejectsTruncatedAndTrailingBytes) {
  const std::string payload = EncodeResultPayload("outcome", "carry");
  std::string outcome;
  std::string carry;
  EXPECT_FALSE(DecodeResultPayload(
      std::string_view(payload).substr(0, payload.size() - 1), &outcome,
      &carry));
  EXPECT_FALSE(DecodeResultPayload(payload + "x", &outcome, &carry));
  EXPECT_FALSE(DecodeResultPayload("", &outcome, &carry));
}

TEST(FrameTest, ToStringCoversAllTypes) {
  EXPECT_EQ(ToString(FrameType::kHello), "hello");
  EXPECT_EQ(ToString(FrameType::kLease), "lease");
  EXPECT_EQ(ToString(FrameType::kResult), "result");
  EXPECT_EQ(ToString(FrameType::kError), "error");
  EXPECT_EQ(ToString(FrameType::kHeartbeat), "heartbeat");
  EXPECT_EQ(ToString(FrameType::kDrain), "drain");
  EXPECT_EQ(ToString(FrameType::kBye), "bye");
}

}  // namespace
}  // namespace cnv::dist
