// Fuzz the checkpoint envelope loader: random single-bit flips over a valid
// checkpoint file, truncations and garbage files must always land in the
// typed LoadStatus taxonomy — never a crash, never a silently accepted
// damaged payload. Runs under ASan in CI.
#include "ckpt/io.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace cnv::ckpt {
namespace {

namespace fs = std::filesystem;

constexpr PayloadType kType = PayloadType::kConformanceCell;
constexpr std::uint32_t kPayloadVersion = 3;
constexpr std::uint64_t kDigest = 0x00d1ce5ull;

// Envelope layout offsets (see the Envelope struct in ckpt/io.cc): magic 8,
// format_version 4, payload_type 4, payload_version 4, reserved 4,
// config_digest 8, payload_size 8, payload_sum 8 = 48 bytes.
constexpr std::size_t kEnvelopeSize = 48;
constexpr std::size_t kReservedBegin = 20;
constexpr std::size_t kReservedEnd = 24;

std::string TestPath(const std::string& name) {
  return (fs::path(testing::TempDir()) / ("ckpt_fuzz_" + name)).string();
}

std::string MakePayload() {
  BinaryWriter w;
  w.U64(42);
  w.Str("conformance cell payload");
  for (int i = 0; i < 64; ++i) w.F64(i * 0.5);
  return w.Take();
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

LoadStatus Load(const std::string& path, std::string* payload = nullptr) {
  return ReadCheckpointFile(path, kType, kPayloadVersion, kDigest, payload);
}

TEST(CkptFuzzTest, IntactFileLoadsOk) {
  const std::string path = TestPath("intact");
  const std::string payload = MakePayload();
  ASSERT_TRUE(WriteCheckpointFile(path, kType, kPayloadVersion, kDigest,
                                  payload));
  std::string loaded;
  ASSERT_EQ(Load(path, &loaded), LoadStatus::kOk);
  EXPECT_EQ(loaded, payload);
  ASSERT_EQ(ReadBytes(path).size(), kEnvelopeSize + payload.size());
}

TEST(CkptFuzzTest, EverySingleBitFlipIsClassified) {
  const std::string path = TestPath("bitflip");
  const std::string payload = MakePayload();
  ASSERT_TRUE(WriteCheckpointFile(path, kType, kPayloadVersion, kDigest,
                                  payload));
  const std::string pristine = ReadBytes(path);
  ASSERT_EQ(pristine.size(), kEnvelopeSize + payload.size());

  cnv::Rng rng(0xb17f11b5);
  for (int round = 0; round < 400; ++round) {
    const auto offset = static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(pristine.size()) - 1));
    const int bit = static_cast<int>(rng.UniformInt(0, 7));
    SCOPED_TRACE("offset " + std::to_string(offset) + " bit " +
                 std::to_string(bit));
    std::string damaged = pristine;
    damaged[offset] = static_cast<char>(damaged[offset] ^ (1 << bit));
    WriteBytes(path, damaged);

    std::string loaded;
    const LoadStatus status = Load(path, &loaded);
    if (offset >= kReservedBegin && offset < kReservedEnd) {
      // The reserved field is not validated; the payload must still be
      // delivered intact.
      EXPECT_EQ(status, LoadStatus::kOk);
      EXPECT_EQ(loaded, payload);
    } else {
      EXPECT_NE(status, LoadStatus::kOk) << ToString(status);
    }
  }
}

TEST(CkptFuzzTest, EnvelopeFieldDamageMapsToItsStatus) {
  const std::string path = TestPath("fields");
  const std::string payload = MakePayload();
  ASSERT_TRUE(WriteCheckpointFile(path, kType, kPayloadVersion, kDigest,
                                  payload));
  const std::string pristine = ReadBytes(path);

  const struct {
    std::size_t offset;
    LoadStatus expected;
  } kCases[] = {
      {0, LoadStatus::kBadMagic},          // magic
      {7, LoadStatus::kBadMagic},
      {8, LoadStatus::kBadVersion},        // format_version
      {12, LoadStatus::kBadType},          // payload_type
      {16, LoadStatus::kBadVersion},       // payload_version
      {24, LoadStatus::kConfigMismatch},   // config_digest
      {32, LoadStatus::kTruncated},        // payload_size
      {40, LoadStatus::kChecksumMismatch},  // payload_sum
      {kEnvelopeSize, LoadStatus::kChecksumMismatch},      // payload bytes
      {pristine.size() - 1, LoadStatus::kChecksumMismatch},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE("offset " + std::to_string(c.offset));
    std::string damaged = pristine;
    damaged[c.offset] = static_cast<char>(damaged[c.offset] ^ 0x01);
    WriteBytes(path, damaged);
    EXPECT_EQ(Load(path), c.expected);
  }
}

TEST(CkptFuzzTest, RandomTruncationsAreTruncatedNeverOk) {
  const std::string path = TestPath("truncate");
  const std::string payload = MakePayload();
  ASSERT_TRUE(WriteCheckpointFile(path, kType, kPayloadVersion, kDigest,
                                  payload));
  const std::string pristine = ReadBytes(path);

  cnv::Rng rng(0x7a11);
  for (int round = 0; round < 100; ++round) {
    const auto keep = static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(pristine.size()) - 1));
    SCOPED_TRACE("keep " + std::to_string(keep));
    WriteBytes(path, pristine.substr(0, keep));
    EXPECT_EQ(Load(path), LoadStatus::kTruncated);
  }
  // Trailing garbage counts as damage too (size mismatch).
  WriteBytes(path, pristine + "extra");
  EXPECT_EQ(Load(path), LoadStatus::kTruncated);
}

TEST(CkptFuzzTest, GarbageFilesNeverLoad) {
  const std::string path = TestPath("garbage");
  cnv::Rng rng(0x6a5ba6e);
  for (int round = 0; round < 100; ++round) {
    const auto len =
        static_cast<std::size_t>(rng.UniformInt(0, 256));
    std::string garbage;
    garbage.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    SCOPED_TRACE("len " + std::to_string(len));
    WriteBytes(path, garbage);
    const LoadStatus status = Load(path);
    EXPECT_NE(status, LoadStatus::kOk);
    EXPECT_FALSE(ToString(status).empty());
  }
}

TEST(CkptFuzzTest, MissingFileIsMissing) {
  EXPECT_EQ(Load(TestPath("does_not_exist")), LoadStatus::kMissing);
}

TEST(CkptFuzzTest, EveryStatusHasAName) {
  for (const auto s :
       {LoadStatus::kOk, LoadStatus::kMissing, LoadStatus::kTruncated,
        LoadStatus::kBadMagic, LoadStatus::kBadVersion, LoadStatus::kBadType,
        LoadStatus::kConfigMismatch, LoadStatus::kChecksumMismatch}) {
    EXPECT_FALSE(ToString(s).empty());
    EXPECT_NE(ToString(s), "unknown");
  }
}

}  // namespace
}  // namespace cnv::ckpt
