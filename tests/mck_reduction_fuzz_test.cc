// Randomized soundness fuzz for the state-space reductions: generate small
// random products of K identical components (a private program counter each
// plus one shared bounded counter), explore each with no reduction, with
// POR, with POR+symmetry, and in parallel — the reachable-violation sets
// must agree on every seed, and reduced runs must stay byte-identical
// across job counts. Components are generated identical by construction so
// the symmetry spec is sound; the shared-counter rules exercise the unsafe
// (pending-shared-guard) oracle, and random pc cycles exercise the C3
// proviso. Runs under ASan in the fuzz CI step.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "mck/explorer.h"
#include "mck/hash.h"
#include "mck/parallel_explorer.h"
#include "mck/symmetry.h"

namespace cnv::mck {
namespace {

struct FuzzModel {
  static constexpr std::size_t kMaxComps = 4;

  // One rule set, replicated across all components (keeps them symmetric).
  struct LocalRule {
    std::uint8_t from = 0;
    std::uint8_t to = 0;
  };
  struct SharedRule {
    std::uint8_t from_pc = 0;
    std::uint8_t to_pc = 0;
    std::int8_t delta = 0;        // applied to the shared counter, clamped
    std::uint8_t min_shared = 0;  // enabled only when shared in range
    std::uint8_t max_shared = 0;
  };

  int comps = 2;
  std::uint8_t shared_max = 1;
  std::uint8_t bad_pc = 1;  // property: no component parks here
  std::vector<LocalRule> locals;
  std::vector<SharedRule> shareds;

  struct State {
    std::array<std::uint8_t, kMaxComps> pc{};
    std::uint8_t shared = 0;
    bool operator==(const State&) const = default;
  };
  struct Action {
    std::uint8_t comp = 0;
    bool is_shared = false;
    std::uint8_t rule = 0;
  };

  State initial() const { return {}; }

  std::vector<Action> enabled(const State& s) const {
    std::vector<Action> acts;
    for (int c = 0; c < comps; ++c) {
      const std::uint8_t pc = s.pc[static_cast<std::size_t>(c)];
      for (std::size_t r = 0; r < locals.size(); ++r) {
        if (locals[r].from == pc) {
          acts.push_back({static_cast<std::uint8_t>(c), false,
                          static_cast<std::uint8_t>(r)});
        }
      }
      for (std::size_t r = 0; r < shareds.size(); ++r) {
        const SharedRule& sr = shareds[r];
        if (sr.from_pc == pc && s.shared >= sr.min_shared &&
            s.shared <= sr.max_shared) {
          acts.push_back({static_cast<std::uint8_t>(c), true,
                          static_cast<std::uint8_t>(r)});
        }
      }
    }
    return acts;
  }

  State apply(const State& s, const Action& a) const {
    State next = s;
    std::uint8_t& pc = next.pc[a.comp];
    if (a.is_shared) {
      const SharedRule& sr = shareds[a.rule];
      pc = sr.to_pc;
      const int v = static_cast<int>(next.shared) + sr.delta;
      next.shared = static_cast<std::uint8_t>(
          v < 0 ? 0 : (v > shared_max ? shared_max : v));
    } else {
      pc = locals[a.rule].to;
    }
    return next;
  }

  std::string describe(const Action& a) const {
    return "c" + std::to_string(a.comp) + (a.is_shared ? " shared " : " local ") +
           std::to_string(a.rule);
  }

  ReductionSpec<FuzzModel> reduction() const {
    ReductionSpec<FuzzModel> spec;
    spec.components = comps;
    spec.owner = [](const State&, const Action& a) {
      return static_cast<int>(a.comp);
    };
    spec.local = [](const State&, const Action& a) { return !a.is_shared; };
    const std::uint8_t bad = bad_pc;
    const std::vector<LocalRule> lr = locals;
    const std::vector<SharedRule> sr = shareds;
    // A rule is visible iff it can move a pc onto or off the bad location —
    // either direction can flip the property valuation.
    spec.visible = [bad, lr, sr](const State&, const Action& a) {
      if (a.is_shared) {
        return sr[a.rule].from_pc == bad || sr[a.rule].to_pc == bad;
      }
      return lr[a.rule].from == bad || lr[a.rule].to == bad;
    };
    spec.unsafe = [sr](const State& s, int c) {
      // Conservative: the component is unsafe whenever any shared rule
      // matches its pc — such a rule's guard also reads the shared counter
      // and another component's move could enable it.
      const std::uint8_t pc = s.pc[static_cast<std::size_t>(c)];
      for (const SharedRule& r : sr) {
        if (r.from_pc == pc) return true;
      }
      return false;
    };
    const std::size_t n = static_cast<std::size_t>(comps);
    spec.canonicalize = [n](const State& s) {
      State canon = s;
      SortBlocks(canon.pc, n);
      return canon;
    };
    spec.orbit_size = [n](const State& s) {
      return MultisetOrbitSize(s.pc, n);
    };
    return spec;
  }
};

std::size_t HashValue(const FuzzModel::State& s) {
  Hasher h;
  for (const std::uint8_t pc : s.pc) h.Mix(pc);
  h.Mix(s.shared);
  return h.Digest();
}

FuzzModel RandomModel(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto pick = [&rng](int lo, int hi) {
    return static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1)) +
           lo;
  };
  FuzzModel m;
  m.comps = pick(2, 4);
  const int pcs = pick(2, 4);
  m.shared_max = static_cast<std::uint8_t>(pick(1, 3));
  m.bad_pc = static_cast<std::uint8_t>(pcs - 1);
  const int n_local = pick(2, 5);
  for (int i = 0; i < n_local; ++i) {
    m.locals.push_back({static_cast<std::uint8_t>(pick(0, pcs - 1)),
                        static_cast<std::uint8_t>(pick(0, pcs - 1))});
  }
  const int n_shared = pick(0, 3);
  for (int i = 0; i < n_shared; ++i) {
    FuzzModel::SharedRule r;
    r.from_pc = static_cast<std::uint8_t>(pick(0, pcs - 1));
    r.to_pc = static_cast<std::uint8_t>(pick(0, pcs - 1));
    r.delta = static_cast<std::int8_t>(pick(-1, 1));
    r.min_shared = static_cast<std::uint8_t>(pick(0, m.shared_max));
    r.max_shared = static_cast<std::uint8_t>(
        pick(r.min_shared, m.shared_max));
    m.shareds.push_back(r);
  }
  return m;
}

PropertySet<FuzzModel::State> BadPcProps(const FuzzModel& m) {
  const std::uint8_t bad = m.bad_pc;
  const int comps = m.comps;
  return {{"no_bad_pc",
           [bad, comps](const FuzzModel::State& s) {
             for (int c = 0; c < comps; ++c) {
               if (s.pc[static_cast<std::size_t>(c)] == bad) return false;
             }
             return true;
           },
           "no component reaches the bad location"}};
}

std::set<std::string> ViolatedProps(
    const std::vector<Violation<FuzzModel>>& vs) {
  std::set<std::string> names;
  for (const auto& v : vs) names.insert(v.property);
  return names;
}

TEST(ReductionFuzzTest, ReducedAgreesWithFullOver256Seeds) {
  int violating_models = 0;
  int reduced_models = 0;
  for (std::uint64_t seed = 1; seed <= 256; ++seed) {
    const FuzzModel m = RandomModel(seed);
    const auto props = BadPcProps(m);
    const auto full = Explore(m, props);
    ASSERT_FALSE(full.stats.truncated) << "seed " << seed;

    ExploreOptions por;
    por.reduction.por = true;
    const auto r_por = Explore(m, props, por);

    ExploreOptions both = por;
    both.reduction.symmetry = true;
    const auto r_both = Explore(m, props, both);

    const auto expected = ViolatedProps(full.violations);
    EXPECT_EQ(expected, ViolatedProps(r_por.violations)) << "seed " << seed;
    EXPECT_EQ(expected, ViolatedProps(r_both.violations)) << "seed " << seed;
    EXPECT_LE(r_por.stats.states_visited, full.stats.states_visited)
        << "seed " << seed;
    EXPECT_LE(r_both.stats.states_visited, full.stats.states_visited)
        << "seed " << seed;
    // Orbit accounting never undercounts the representatives.
    EXPECT_GE(r_both.stats.represented_states, r_both.stats.states_visited)
        << "seed " << seed;

    if (!expected.empty()) ++violating_models;
    if (r_both.stats.states_visited < full.stats.states_visited) {
      ++reduced_models;
    }
  }
  // The generator must produce a healthy mix: models where the property
  // actually breaks, and models where the reductions actually reduce —
  // otherwise the differential above proves nothing.
  EXPECT_GT(violating_models, 20);
  EXPECT_LT(violating_models, 236);
  EXPECT_GT(reduced_models, 20);
}

TEST(ReductionFuzzTest, ReducedParallelByteIdenticalOver64Seeds) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const FuzzModel m = RandomModel(seed * 7919);
    const auto props = BadPcProps(m);
    ExploreOptions both;
    both.reduction.por = true;
    both.reduction.symmetry = true;
    const auto serial = Explore(m, props, both);
    ParallelExploreOptions popt;
    popt.base = both;
    popt.jobs = 3;
    const auto par = ParallelExplore(m, props, popt);
    EXPECT_EQ(DeterministicView(serial.stats, /*include_occupancy=*/false),
              DeterministicView(par.stats, /*include_occupancy=*/false))
        << "seed " << seed;
    ASSERT_EQ(serial.violations.size(), par.violations.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < serial.violations.size(); ++i) {
      EXPECT_EQ(serial.violations[i].property, par.violations[i].property);
      EXPECT_EQ(serial.violations[i].trace.size(),
                par.violations[i].trace.size());
    }
  }
}

}  // namespace
}  // namespace cnv::mck
