// Determinism suite for the parallel campaign runner: a sweep run with
// parallelism N must produce byte-identical reports, traces and telemetry
// exports to the serial sweep, in the same order.
#include "fault/campaign.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace cnv::fault {
namespace {

CampaignConfig SmallConfig() {
  CampaignConfig cfg;
  cfg.seeds = {1, 2};
  cfg.plans = {plans::S2AttachDisruption(), plans::MmeCrashRestart()};
  cfg.profiles = {stack::OpI(), stack::OpII()};
  cfg.collect_telemetry = true;
  return cfg;
}

TEST(ParallelCampaignTest, ReportsAreByteIdenticalToSerial) {
  CampaignConfig serial_cfg = SmallConfig();
  serial_cfg.parallelism = 1;
  const CampaignResult serial = CampaignRunner(serial_cfg, true).Run();
  ASSERT_EQ(serial.runs.size(), 8u);

  for (const int parallelism : {2, 4}) {
    SCOPED_TRACE("parallelism=" + std::to_string(parallelism));
    CampaignConfig cfg = SmallConfig();
    cfg.parallelism = parallelism;
    const CampaignResult par = CampaignRunner(cfg, true).Run();

    EXPECT_EQ(par.Summary(), serial.Summary());
    EXPECT_EQ(par.ChromeTraceJson(), serial.ChromeTraceJson());
    EXPECT_EQ(par.runs_within_slo, serial.runs_within_slo);
    EXPECT_EQ(par.runs_with_findings, serial.runs_with_findings);

    ASSERT_EQ(par.runs.size(), serial.runs.size());
    for (std::size_t i = 0; i < par.runs.size(); ++i) {
      SCOPED_TRACE("run #" + std::to_string(i));
      EXPECT_EQ(par.runs[i].seed, serial.runs[i].seed);
      EXPECT_EQ(par.runs[i].plan, serial.runs[i].plan);
      EXPECT_EQ(par.runs[i].profile, serial.runs[i].profile);
      EXPECT_EQ(par.runs[i].faults_injected, serial.runs[i].faults_injected);
      EXPECT_EQ(par.runs[i].trace_log, serial.runs[i].trace_log);
      ASSERT_TRUE(par.runs[i].telemetry.has_value());
      ASSERT_TRUE(serial.runs[i].telemetry.has_value());
      EXPECT_EQ(par.runs[i].telemetry->ToJson(),
                serial.runs[i].telemetry->ToJson());
    }
  }
}

TEST(ParallelCampaignTest, HardwareParallelismKeepsSerialOrdering) {
  CampaignConfig cfg;
  cfg.seeds = {7, 8, 9};
  cfg.plans = {plans::S2AttachDisruption()};
  cfg.parallelism = 0;  // hardware concurrency
  const CampaignResult result = CampaignRunner(cfg).Run();
  ASSERT_EQ(result.runs.size(), 3u);
  EXPECT_EQ(result.runs[0].seed, 7u);
  EXPECT_EQ(result.runs[1].seed, 8u);
  EXPECT_EQ(result.runs[2].seed, 9u);
}

}  // namespace
}  // namespace cnv::fault
