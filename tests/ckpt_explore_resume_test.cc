// Kill-and-resume suite for exploration checkpoints: a snapshot captured at
// a wave boundary must resume — serially or in parallel at any job count —
// to results byte-identical to the uninterrupted run, on every toy model and
// every screening model. Also covers the snapshot codec's structural
// validation and the ExploreCheckpointer last-good rotation under file
// damage (truncation, flipped bytes, config mismatch).
#include "ckpt/explore_ckpt.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "mck/parallel_explorer.h"
#include "mck/toy_models.h"
#include "model/s1_model.h"
#include "model/s2_model.h"
#include "model/s3_model.h"
#include "model/s4_model.h"

namespace cnv::ckpt {
namespace {

namespace fs = std::filesystem;
using mck::DeterministicView;

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / "ckpt_explore" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void FlipPayloadByte(const std::string& path) {
  std::string bytes = ReadAll(path);
  ASSERT_FALSE(bytes.empty());
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  WriteAll(path, bytes);
}

template <typename M>
void ExpectSameViolations(const M& m, const std::vector<mck::Violation<M>>& a,
                          const std::vector<mck::Violation<M>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("violation #" + std::to_string(i));
    EXPECT_EQ(a[i].property, b[i].property);
    EXPECT_TRUE(a[i].state == b[i].state);
    EXPECT_EQ(mck::FormatTrace(m, a[i]), mck::FormatTrace(m, b[i]));
  }
}

// The core kill-and-resume property. Runs the model serially with snapshot
// hooks, picks a mid-exploration snapshot (simulating the last checkpoint
// before a crash), round-trips it through the binary codec, and resumes
// serially and at jobs 1 and 4 — every result must match the uninterrupted
// baseline on the full deterministic view, hash_occupancy included.
template <typename M>
void ExpectResumeIdentical(const M& m,
                           const mck::PropertySet<typename M::State>& props,
                           mck::ExploreOptions base = {}) {
  base.order = mck::SearchOrder::kBreadthFirst;

  std::vector<mck::ExploreSnapshot<M>> snaps;
  mck::SnapshotHooks<M> capture;
  capture.on_snapshot = [&snaps](const mck::ExploreSnapshot<M>& s) {
    snaps.push_back(s);
  };
  const auto baseline = mck::Explore(m, props, base, &capture);

  // Hooks only observe: the hooked baseline equals an unhooked run.
  const auto plain = mck::Explore(m, props, base);
  EXPECT_EQ(DeterministicView(baseline.stats), DeterministicView(plain.stats));
  ExpectSameViolations(m, baseline.violations, plain.violations);

  if (snaps.empty()) return;  // exhausted within the first wave

  // Pretend the run died right after the middle snapshot; resume from the
  // codec round-trip of that snapshot, exactly what a file resume sees.
  const auto& taken = snaps[snaps.size() / 2];
  const std::string payload = EncodeSnapshot<M>(taken);
  mck::ExploreSnapshot<M> snap;
  ASSERT_TRUE(DecodeSnapshot<M>(payload, &snap));
  EXPECT_EQ(EncodeSnapshot<M>(snap), payload);

  mck::SnapshotHooks<M> resume;
  resume.resume = &snap;
  const auto serial = mck::Explore(m, props, base, &resume);
  EXPECT_EQ(DeterministicView(serial.stats), DeterministicView(baseline.stats));
  ExpectSameViolations(m, serial.violations, baseline.violations);

  for (const int jobs : {1, 4}) {
    SCOPED_TRACE("resume jobs=" + std::to_string(jobs));
    mck::ParallelExploreOptions opt;
    opt.base = base;
    opt.jobs = jobs;
    const auto uninterrupted = mck::ParallelExplore(m, props, opt);
    const auto resumed = mck::ParallelExplore(m, props, opt, nullptr, &resume);
    EXPECT_EQ(DeterministicView(resumed.stats),
              DeterministicView(uninterrupted.stats));
    EXPECT_EQ(resumed.par.waves, uninterrupted.par.waves);
    ExpectSameViolations(m, resumed.violations, uninterrupted.violations);
  }
}

TEST(ExploreResumeTest, CounterModels) {
  for (const bool buggy : {false, true}) {
    SCOPED_TRACE(buggy ? "buggy" : "correct");
    mck::toys::CounterModel m{20, buggy};
    mck::PropertySet<mck::toys::CounterModel::State> props{
        {"below_cap", [](const auto& s) { return s.value <= 20; }, ""}};
    ExpectResumeIdentical(m, props);
  }
}

TEST(ExploreResumeTest, PetersonModels) {
  mck::PropertySet<mck::toys::PetersonModel::State> props{
      {"mutex",
       [](const auto& s) { return !mck::toys::PetersonModel::BothCritical(s); },
       ""}};
  ExpectResumeIdentical(mck::toys::PetersonModel{true}, props);
  ExpectResumeIdentical(mck::toys::PetersonModel{false}, props);
}

TEST(ExploreResumeTest, LossyPingWithDeadlockDetection) {
  mck::ExploreOptions base;
  base.detect_deadlock = true;
  mck::PropertySet<mck::toys::LossyPingModel::State> no_props;
  ExpectResumeIdentical(mck::toys::LossyPingModel{true}, no_props, base);
  ExpectResumeIdentical(mck::toys::LossyPingModel{false}, no_props, base);
}

TEST(ExploreResumeTest, DeadlockModel) {
  mck::ExploreOptions base;
  base.detect_deadlock = true;
  mck::PropertySet<mck::toys::DeadlockModel::State> no_props;
  ExpectResumeIdentical(mck::toys::DeadlockModel{}, no_props, base);
}

TEST(ExploreResumeTest, S1Model) {
  model::S1Model m{model::S1Model::Config{}};
  ExpectResumeIdentical(m, model::S1Model::Properties());
}

TEST(ExploreResumeTest, S2Model) {
  model::S2Model m{model::S2Model::Config{}};
  ExpectResumeIdentical(m, model::S2Model::Properties());
}

TEST(ExploreResumeTest, S3ModelEveryPolicy) {
  for (const auto policy : {model::SwitchPolicy::kReleaseWithRedirect,
                            model::SwitchPolicy::kHandover,
                            model::SwitchPolicy::kCellReselection}) {
    model::S3Model::Config cfg;
    cfg.policy = policy;
    model::S3Model m(cfg);
    ExpectResumeIdentical(m, m.Properties());
  }
}

TEST(ExploreResumeTest, S4Model) {
  model::S4Model m{model::S4Model::Config{}};
  ExpectResumeIdentical(m, model::S4Model::Properties());
}

TEST(ExploreResumeTest, ResumeFromEveryCapturedWave) {
  // Not just the middle snapshot: every wave boundary must be resumable.
  mck::toys::PetersonModel m{false};
  mck::PropertySet<mck::toys::PetersonModel::State> props{
      {"mutex",
       [](const auto& s) { return !mck::toys::PetersonModel::BothCritical(s); },
       ""}};
  std::vector<mck::ExploreSnapshot<mck::toys::PetersonModel>> snaps;
  mck::SnapshotHooks<mck::toys::PetersonModel> capture;
  capture.on_snapshot = [&snaps](const auto& s) { snaps.push_back(s); };
  const auto baseline = mck::Explore(m, props, {}, &capture);
  ASSERT_GE(snaps.size(), 2u);
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    SCOPED_TRACE("snapshot #" + std::to_string(i));
    mck::SnapshotHooks<mck::toys::PetersonModel> resume;
    resume.resume = &snaps[i];
    const auto r = mck::Explore(m, props, {}, &resume);
    EXPECT_EQ(DeterministicView(r.stats), DeterministicView(baseline.stats));
    ExpectSameViolations(m, r.violations, baseline.violations);
  }
}

TEST(SnapshotCodecTest, RejectsTruncatedPayload) {
  mck::toys::DeadlockModel m;
  std::vector<mck::ExploreSnapshot<mck::toys::DeadlockModel>> snaps;
  mck::SnapshotHooks<mck::toys::DeadlockModel> capture;
  capture.on_snapshot = [&snaps](const auto& s) { snaps.push_back(s); };
  mck::ExploreOptions opt;
  opt.detect_deadlock = true;
  (void)mck::Explore(m, {}, opt, &capture);
  ASSERT_FALSE(snaps.empty());
  const std::string payload = EncodeSnapshot(snaps.front());
  mck::ExploreSnapshot<mck::toys::DeadlockModel> out;
  for (const std::size_t cut : {payload.size() - 1, payload.size() / 2,
                                std::size_t{0}}) {
    EXPECT_FALSE(DecodeSnapshot<mck::toys::DeadlockModel>(
        std::string_view(payload).substr(0, cut), &out))
        << "cut=" << cut;
  }
  // Trailing garbage is a layout mismatch too.
  EXPECT_FALSE(
      DecodeSnapshot<mck::toys::DeadlockModel>(payload + "x", &out));
}

TEST(SnapshotCodecTest, RejectsStructurallyInvalidSnapshots) {
  using M = mck::toys::CounterModel;
  mck::ExploreSnapshot<M> snap;
  snap.nodes.resize(2);
  snap.nodes[0].parent = mck::kNoParentRank;
  snap.nodes[1].parent = 0;
  snap.frontier = {1};
  mck::ExploreSnapshot<M> out;
  ASSERT_TRUE(DecodeSnapshot<M>(EncodeSnapshot<M>(snap), &out));

  // A parent rank pointing forward would index into undiscovered state.
  auto bad_parent = snap;
  bad_parent.nodes[1].parent = 1;
  EXPECT_FALSE(DecodeSnapshot<M>(EncodeSnapshot<M>(bad_parent), &out));

  // A frontier rank past the node list would index out of bounds.
  auto bad_frontier = snap;
  bad_frontier.frontier = {5};
  EXPECT_FALSE(DecodeSnapshot<M>(EncodeSnapshot<M>(bad_frontier), &out));
}

// --- ExploreCheckpointer rotation under file damage -------------------------

class CheckpointerRotationTest : public testing::Test {
 protected:
  using M = model::S3Model;

  // Runs the S3 model with `cp` writing a snapshot every wave, so both the
  // primary and the .prev snapshot exist afterwards.
  void WriteCheckpoints(ExploreCheckpointer<M>& cp) {
    M m;
    baseline_ = mck::ParallelExplore(m, m.Properties(), {}, nullptr,
                                     cp.hooks(nullptr));
    ASSERT_GE(cp.snapshots_written(), 2u);
    EXPECT_EQ(cp.save_failures(), 0u);
    ASSERT_TRUE(fs::exists(cp.path()));
    ASSERT_TRUE(fs::exists(cp.prev_path()));
  }

  void ExpectResumedRunMatchesBaseline(const mck::ExploreSnapshot<M>& snap) {
    M m;
    mck::SnapshotHooks<M> resume;
    resume.resume = &snap;
    const auto r = mck::ParallelExplore(m, m.Properties(), {}, nullptr,
                                        &resume);
    EXPECT_EQ(DeterministicView(r.stats),
              DeterministicView(baseline_.stats));
    ExpectSameViolations(m, r.violations, baseline_.violations);
  }

  static constexpr std::uint64_t kDigest = 0x5335ull;
  mck::ParallelExploreResult<M> baseline_;
};

TEST_F(CheckpointerRotationTest, PristinePrimaryLoads) {
  ExploreCheckpointer<M> cp(FreshDir("pristine"), "s3", kDigest);
  WriteCheckpoints(cp);
  mck::ExploreSnapshot<M> snap;
  const auto rs = cp.TryLoad(&snap);
  EXPECT_TRUE(rs.loaded);
  EXPECT_FALSE(rs.fell_back);
  EXPECT_EQ(rs.primary, LoadStatus::kOk);
  ExpectResumedRunMatchesBaseline(snap);
}

TEST_F(CheckpointerRotationTest, FlippedByteFallsBackToLastGood) {
  ExploreCheckpointer<M> cp(FreshDir("flipped"), "s3", kDigest);
  WriteCheckpoints(cp);
  FlipPayloadByte(cp.path());
  mck::ExploreSnapshot<M> snap;
  const auto rs = cp.TryLoad(&snap);
  EXPECT_TRUE(rs.loaded);
  EXPECT_TRUE(rs.fell_back);
  EXPECT_EQ(rs.primary, LoadStatus::kChecksumMismatch);
  EXPECT_EQ(rs.fallback, LoadStatus::kOk);
  ExpectResumedRunMatchesBaseline(snap);
}

TEST_F(CheckpointerRotationTest, TruncationFallsBackToLastGood) {
  ExploreCheckpointer<M> cp(FreshDir("truncated"), "s3", kDigest);
  WriteCheckpoints(cp);
  const std::string bytes = ReadAll(cp.path());
  WriteAll(cp.path(), bytes.substr(0, bytes.size() / 2));
  mck::ExploreSnapshot<M> snap;
  const auto rs = cp.TryLoad(&snap);
  EXPECT_TRUE(rs.loaded);
  EXPECT_TRUE(rs.fell_back);
  EXPECT_EQ(rs.primary, LoadStatus::kTruncated);
  ExpectResumedRunMatchesBaseline(snap);
}

TEST_F(CheckpointerRotationTest, BothDamagedReportsFreshStart) {
  ExploreCheckpointer<M> cp(FreshDir("both-damaged"), "s3", kDigest);
  WriteCheckpoints(cp);
  FlipPayloadByte(cp.path());
  FlipPayloadByte(cp.prev_path());
  mck::ExploreSnapshot<M> snap;
  const auto rs = cp.TryLoad(&snap);
  EXPECT_FALSE(rs.loaded);
  EXPECT_EQ(rs.primary, LoadStatus::kChecksumMismatch);
  EXPECT_EQ(rs.fallback, LoadStatus::kChecksumMismatch);
}

TEST_F(CheckpointerRotationTest, ConfigMismatchRefusesToLoad) {
  const std::string dir = FreshDir("config-mismatch");
  ExploreCheckpointer<M> cp(dir, "s3", kDigest);
  WriteCheckpoints(cp);
  // Same files, different sweep definition: the resume must be rejected
  // rather than silently mixing incompatible state.
  ExploreCheckpointer<M> other(dir, "s3", kDigest + 1);
  mck::ExploreSnapshot<M> snap;
  const auto rs = other.TryLoad(&snap);
  EXPECT_FALSE(rs.loaded);
  EXPECT_EQ(rs.primary, LoadStatus::kConfigMismatch);
  EXPECT_EQ(rs.fallback, LoadStatus::kConfigMismatch);
}

}  // namespace
}  // namespace cnv::ckpt
