// Interactions between the Link fault hooks: combined drop+defer arming,
// forced drops on reliable legs, duplication, corruption, reordering, and
// counter consistency under randomized loss.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/link.h"

namespace cnv::sim {
namespace {

nas::Message Msg(nas::MsgKind kind, std::uint64_t uid = 0) {
  nas::Message m;
  m.kind = kind;
  m.protocol = nas::Protocol::kEmm;
  m.uid = uid;
  return m;
}

TEST(LinkFaultTest, ForceDropAndDeferOnSameMessage) {
  // Arm both hooks before a single Send: the drop wins, and the deferral
  // stays armed for the next message that actually goes out.
  Simulator sim;
  Rng rng(1);
  Link link(sim, rng, {.delay = Millis(10)}, "radio");
  std::vector<SimTime> arrivals;
  link.SetReceiver([&](const nas::Message&) { arrivals.push_back(sim.now()); });
  link.ForceDropNext(1);
  link.DeferNext(Millis(100));
  link.Send(Msg(nas::MsgKind::kAttachRequest));  // dropped
  link.Send(Msg(nas::MsgKind::kAttachRequest));  // deferred: 10 + 100
  link.Send(Msg(nas::MsgKind::kAttachRequest));  // normal: 10
  sim.RunAll();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], Millis(10));
  EXPECT_EQ(arrivals[1], Millis(110));
  EXPECT_EQ(link.dropped(), 1u);
  EXPECT_EQ(link.sent(), 3u);
}

TEST(LinkFaultTest, ForceDropAppliesOnReliableLeg) {
  Simulator sim;
  Rng rng(2);
  Link link(sim, rng, {.delay = Millis(1), .reliable = true}, "backhaul");
  int got = 0;
  link.SetReceiver([&](const nas::Message&) { ++got; });
  link.ForceDropNext(3);
  for (int i = 0; i < 10; ++i) link.Send(Msg(nas::MsgKind::kTauRequest));
  sim.RunAll();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(link.dropped(), 3u);
  EXPECT_EQ(link.delivered(), 7u);
}

TEST(LinkFaultTest, DuplicateDeliversTwiceInOrder) {
  Simulator sim;
  Rng rng(3);
  Link link(sim, rng, {.delay = Millis(10)}, "radio");
  std::vector<std::uint64_t> uids;
  std::vector<SimTime> arrivals;
  link.SetReceiver([&](const nas::Message& m) {
    uids.push_back(m.uid);
    arrivals.push_back(sim.now());
  });
  link.ForceDuplicateNext(1);
  link.Send(Msg(nas::MsgKind::kAttachRequest, 7));
  sim.RunAll();
  link.Send(Msg(nas::MsgKind::kAttachRequest, 8));
  sim.RunAll();
  ASSERT_EQ(uids.size(), 3u);
  EXPECT_EQ(uids[0], 7u);  // original
  EXPECT_EQ(uids[1], 7u);  // duplicate, 1 ms behind
  EXPECT_EQ(uids[2], 8u);
  EXPECT_EQ(arrivals[1], arrivals[0] + Millis(1));
  EXPECT_EQ(link.sent(), 2u);
  EXPECT_EQ(link.duplicated(), 1u);
  EXPECT_EQ(link.delivered(), 3u);
}

TEST(LinkFaultTest, CorruptedMessageNeverReachesReceiver) {
  Simulator sim;
  Rng rng(4);
  Link link(sim, rng, {.delay = Millis(1)}, "radio");
  int got = 0;
  link.SetReceiver([&](const nas::Message&) { ++got; });
  link.CorruptNext(2);
  for (int i = 0; i < 5; ++i) link.Send(Msg(nas::MsgKind::kAttachAccept));
  sim.RunAll();
  EXPECT_EQ(got, 3);
  EXPECT_EQ(link.corrupted(), 2u);
  EXPECT_EQ(link.dropped(), 0u);
  EXPECT_EQ(link.delivered(), 3u);
}

TEST(LinkFaultTest, ForceDropConsumesBeforeCorrupt) {
  // Both armed: the drop consumes the message first; the corruption stays
  // armed for the next one.
  Simulator sim;
  Rng rng(5);
  Link link(sim, rng, {.delay = Millis(1)}, "radio");
  int got = 0;
  link.SetReceiver([&](const nas::Message&) { ++got; });
  link.ForceDropNext(1);
  link.CorruptNext(1);
  link.Send(Msg(nas::MsgKind::kAttachRequest));  // dropped
  link.Send(Msg(nas::MsgKind::kAttachRequest));  // corrupted
  link.Send(Msg(nas::MsgKind::kAttachRequest));  // delivered
  sim.RunAll();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(link.dropped(), 1u);
  EXPECT_EQ(link.corrupted(), 1u);
}

TEST(LinkFaultTest, ReorderSwapsAdjacentMessages) {
  Simulator sim;
  Rng rng(6);
  Link link(sim, rng, {.delay = Millis(10)}, "radio");
  std::vector<std::uint64_t> uids;
  link.SetReceiver([&](const nas::Message& m) { uids.push_back(m.uid); });
  link.ReorderNext();
  link.Send(Msg(nas::MsgKind::kAttachRequest, 1));  // held
  link.Send(Msg(nas::MsgKind::kAttachRequest, 2));  // overtakes; 1 trails it
  sim.RunAll();
  link.Send(Msg(nas::MsgKind::kAttachRequest, 3));
  sim.RunAll();
  EXPECT_EQ(uids, (std::vector<std::uint64_t>{2, 1, 3}));
  EXPECT_FALSE(link.has_held_message());
  EXPECT_EQ(link.delivered(), 3u);
}

TEST(LinkFaultTest, HeldMessageFlushesWhenNoSuccessorArrives) {
  Simulator sim;
  Rng rng(7);
  Link link(sim, rng, {.delay = Millis(10)}, "radio");
  int got = 0;
  link.SetReceiver([&](const nas::Message&) { ++got; });
  link.ReorderNext();
  link.Send(Msg(nas::MsgKind::kTauRequest));
  sim.RunAll();
  EXPECT_EQ(got, 0);
  EXPECT_TRUE(link.has_held_message());
  EXPECT_EQ(link.in_flight(), 1u);
  link.FlushHeld();
  sim.RunAll();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(link.in_flight(), 0u);
}

TEST(LinkFaultTest, PersistentExtraDelayAppliesUntilCleared) {
  Simulator sim;
  Rng rng(8);
  Link link(sim, rng, {.delay = Millis(10)}, "radio");
  std::vector<SimTime> arrivals;
  link.SetReceiver([&](const nas::Message&) { arrivals.push_back(sim.now()); });
  link.set_extra_delay(Millis(40));
  link.Send(Msg(nas::MsgKind::kAttachRequest));
  sim.RunAll();
  link.set_extra_delay(0);
  const SimTime t0 = sim.now();
  link.Send(Msg(nas::MsgKind::kAttachRequest));
  sim.RunAll();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], Millis(50));
  EXPECT_EQ(arrivals[1], t0 + Millis(10));
}

TEST(LinkFaultTest, CountersConsistentUnderRandomizedLossAndFaults) {
  // Invariant after the queue drains with nothing held:
  //   delivered + dropped + corrupted == sent + duplicated.
  Simulator sim;
  Rng rng(9);
  Rng faults(10);
  Link link(sim, rng,
            {.delay = Millis(2), .loss_prob = 0.25, .reliable = false},
            "radio");
  std::uint64_t got = 0;
  link.SetReceiver([&](const nas::Message&) { ++got; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    switch (faults.UniformInt(0, 5)) {
      case 0: link.ForceDropNext(1); break;
      case 1: link.ForceDuplicateNext(1); break;
      case 2: link.CorruptNext(1); break;
      case 3: link.ReorderNext(); break;
      default: break;  // plain send
    }
    link.Send(Msg(nas::MsgKind::kAttachRequest, static_cast<std::uint64_t>(i)));
  }
  link.FlushHeld();
  sim.RunAll();
  EXPECT_EQ(link.sent(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(link.in_flight(), 0u);
  EXPECT_EQ(link.delivered() + link.dropped() + link.corrupted(),
            link.sent() + link.duplicated());
  EXPECT_EQ(got, link.delivered());
  EXPECT_GT(link.dropped(), 0u);
  EXPECT_GT(link.duplicated(), 0u);
  EXPECT_GT(link.corrupted(), 0u);
}

}  // namespace
}  // namespace cnv::sim
