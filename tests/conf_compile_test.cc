// Counterexample-to-scenario compiler: each S1–S4 screening-model violation
// must compile into a deterministic simulator script, and damaged
// counterexamples (truncated traces, unknown properties) must be refused
// rather than silently compiled.
#include "conf/compile.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "mck/explorer.h"
#include "mck/random_walk.h"
#include "model/s1_model.h"
#include "model/s2_model.h"
#include "model/s3_model.h"
#include "model/s4_model.h"
#include "model/vocab.h"

namespace cnv::conf {
namespace {

template <typename M>
mck::Violation<M> FirstViolation(const M& m, const std::string& property) {
  auto props = [&] {
    if constexpr (requires { M::Properties(); }) {
      return M::Properties();
    } else {
      return m.Properties();
    }
  }();
  const auto result = mck::Explore(m, props, {});
  const auto* v = result.FindViolation(property);
  EXPECT_NE(v, nullptr) << property;
  return v == nullptr ? mck::Violation<M>{} : *v;
}

bool HasOp(const ScenarioScript& s, Op op) {
  return std::any_of(s.steps.begin(), s.steps.end(),
                     [&](const ScriptStep& st) { return st.op == op; });
}

bool Expects(const ScenarioScript& s, AbstractKind k) {
  return std::find(s.expected.begin(), s.expected.end(), k) !=
         s.expected.end();
}

TEST(CompileS1Test, CanonicalCounterexampleCompiles) {
  const model::S1Model m;
  const auto v = FirstViolation(m, model::kPacketServiceOk);
  const auto r = CompileS1(m, v);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.script.scenario, Scenario::kS1);
  EXPECT_FALSE(r.script.required_policy.has_value());
  EXPECT_TRUE(r.script.isolate_background_faults);
  // The script starts from a registered 4G device, visits 3G, loses the PDP
  // context there and switches back.
  ASSERT_GE(r.script.steps.size(), 2u);
  EXPECT_EQ(r.script.steps[0].op, Op::kPowerOn4g);
  EXPECT_EQ(r.script.steps[1].op, Op::kAwaitAttach4g);
  EXPECT_TRUE(HasOp(r.script, Op::kSwitchTo3g));
  EXPECT_TRUE(HasOp(r.script, Op::kDeactivatePdp));
  EXPECT_TRUE(HasOp(r.script, Op::kSwitchTo4g));
  EXPECT_TRUE(Expects(r.script, AbstractKind::kPdpDeactivated));
  EXPECT_TRUE(Expects(r.script, AbstractKind::kNetworkDetach));
  EXPECT_FALSE(r.script.source.empty());
}

TEST(CompileS1Test, TruncatedTraceIsRejected) {
  const model::S1Model m;
  auto v = FirstViolation(m, model::kPacketServiceOk);
  ASSERT_GE(v.trace.size(), 2u);
  v.trace.resize(1);
  const auto r = CompileS1(m, v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("truncated"), std::string::npos) << r.error;
}

TEST(CompileS1Test, UnknownPropertyIsRejected) {
  const model::S1Model m;
  auto v = FirstViolation(m, model::kPacketServiceOk);
  v.property = "NoSuchProperty";
  EXPECT_FALSE(CompileS1(m, v).ok);
}

TEST(CompileS2Test, LostAttachCompleteShapeCompiles) {
  const model::S2Model m;
  const auto v = FirstViolation(m, model::kPacketServiceOk);
  const auto r = CompileS2(m, v);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.script.scenario, Scenario::kS2);
  // BFS finds the lost-Attach-Complete shape first: the replay drops the
  // Complete over the air, then a TAU surfaces the implicit detach.
  EXPECT_TRUE(HasOp(r.script, Op::kDropNextUplink4g));
  EXPECT_TRUE(HasOp(r.script, Op::kCrossAreaBoundary));
  EXPECT_TRUE(Expects(r.script, AbstractKind::kAttachComplete));
  EXPECT_TRUE(Expects(r.script, AbstractKind::kTauRequest));
  EXPECT_TRUE(Expects(r.script, AbstractKind::kNetworkDetach));
}

TEST(CompileS2Test, DuplicateAttachShapeCompiles) {
  // Figure 5(b): with loss disabled, the shortest counterexample is the
  // duplicate-attach shape — the held stale Attach Request is reprocessed
  // after the accepted one and the reject implicitly detaches the device.
  model::S2Model::Config cfg;
  cfg.allow_loss = false;
  cfg.allow_duplicate = true;
  const model::S2Model m(cfg);
  const auto v = FirstViolation(m, model::kPacketServiceOk);
  const auto r = CompileS2(m, v);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(HasOp(r.script, Op::kDeferNextUplink4g));
  EXPECT_TRUE(HasOp(r.script, Op::kDuplicateAttachRejects));
  EXPECT_FALSE(HasOp(r.script, Op::kDropNextUplink4g));
  EXPECT_TRUE(Expects(r.script, AbstractKind::kAttachReject));
  EXPECT_TRUE(Expects(r.script, AbstractKind::kNetworkDetach));
}

TEST(CompileS2Test, TruncatedTraceIsRejected) {
  const model::S2Model m;
  auto v = FirstViolation(m, model::kPacketServiceOk);
  v.trace.resize(2);
  EXPECT_FALSE(CompileS2(m, v).ok);
}

TEST(CompileS3Test, ReselectionCounterexampleCarriesRequiredPolicy) {
  model::S3Model::Config cfg;
  cfg.policy = model::SwitchPolicy::kCellReselection;
  const model::S3Model m(cfg);
  const auto v = FirstViolation(m, model::kMmOk);
  const auto r = CompileS3(m, v);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.script.scenario, Scenario::kS3);
  ASSERT_TRUE(r.script.required_policy.has_value());
  EXPECT_EQ(*r.script.required_policy, model::SwitchPolicy::kCellReselection);
  EXPECT_TRUE(HasOp(r.script, Op::kStartData));
  EXPECT_TRUE(HasOp(r.script, Op::kDial));
  EXPECT_TRUE(HasOp(r.script, Op::kHangUp));
  EXPECT_TRUE(Expects(r.script, AbstractKind::kCsfbFallback));
  EXPECT_TRUE(Expects(r.script, AbstractKind::kCallEnded));
}

TEST(CompileS3Test, TruncatedTraceIsRejected) {
  model::S3Model::Config cfg;
  cfg.policy = model::SwitchPolicy::kCellReselection;
  const model::S3Model m(cfg);
  auto v = FirstViolation(m, model::kMmOk);
  ASSERT_GE(v.trace.size(), 2u);
  v.trace.resize(1);
  EXPECT_FALSE(CompileS3(m, v).ok);
}

TEST(CompileS4Test, HolBlockingCounterexampleCompiles) {
  const model::S4Model m;
  const auto v = FirstViolation(m, model::kCallServiceOk);
  const auto r = CompileS4(m, v);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.script.scenario, Scenario::kS4);
  EXPECT_EQ(r.script.steps[0].op, Op::kPowerOn3g);
  EXPECT_TRUE(HasOp(r.script, Op::kCrossAreaBoundary));
  EXPECT_TRUE(HasOp(r.script, Op::kDial));
  EXPECT_TRUE(Expects(r.script, AbstractKind::kLocationUpdateStart));
  EXPECT_TRUE(Expects(r.script, AbstractKind::kCallDialed));
  EXPECT_TRUE(Expects(r.script, AbstractKind::kCallDeferred));
}

TEST(CompileS4Test, TruncatedTraceIsRejected) {
  const model::S4Model m;
  auto v = FirstViolation(m, model::kCallServiceOk);
  ASSERT_GE(v.trace.size(), 2u);
  v.trace.resize(1);
  EXPECT_FALSE(CompileS4(m, v).ok);
}

// Random walks yield longer, non-minimal counterexamples that exercise the
// compilers' full action vocabulary (data toggles, RRC demotions, serve/
// defer interleavings). Every walk counterexample must either compile or be
// refused with an explicit "unsupported" reason — never crash, never emit a
// half-translated script.
template <typename M, typename CompileFn>
void CompileAllWalkViolations(const M& m, const std::string& property,
                              CompileFn compile) {
  auto props = [&] {
    if constexpr (requires { M::Properties(); }) {
      return M::Properties();
    } else {
      return m.Properties();
    }
  }();
  int compiled = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    cnv::Rng rng(seed);
    mck::WalkOptions wopt;
    wopt.walks = 16;
    wopt.max_steps_per_walk = 48;
    wopt.first_violation_per_property = false;
    const auto result = mck::RandomWalk(m, props, rng, wopt);
    for (const auto& v : result.violations) {
      if (v.property != property) continue;
      const auto r = compile(m, v);
      if (r.ok) {
        ++compiled;
        EXPECT_FALSE(r.script.steps.empty());
        EXPECT_FALSE(r.script.expected.empty());
      } else {
        EXPECT_NE(r.error.find("unsupported"), std::string::npos) << r.error;
      }
    }
  }
  EXPECT_GT(compiled, 0) << "no walk counterexample compiled for " << property;
}

TEST(CompileWalkTest, S1WalkCounterexamplesCompileOrReportUnsupported) {
  CompileAllWalkViolations(model::S1Model(), model::kPacketServiceOk,
                           &CompileS1);
}

TEST(CompileWalkTest, S2WalkCounterexamplesCompileOrReportUnsupported) {
  CompileAllWalkViolations(model::S2Model(), model::kPacketServiceOk,
                           &CompileS2);
}

TEST(CompileWalkTest, S3WalkCounterexamplesCompileOrReportUnsupported) {
  model::S3Model::Config cfg;
  cfg.policy = model::SwitchPolicy::kCellReselection;
  CompileAllWalkViolations(model::S3Model(cfg), model::kMmOk, &CompileS3);
}

TEST(CompileWalkTest, S4WalkCounterexamplesCompileOrReportUnsupported) {
  CompileAllWalkViolations(model::S4Model(), model::kCallServiceOk,
                           &CompileS4);
}

TEST(CompileTest, ScriptsFormatDeterministically) {
  const model::S1Model m;
  const auto v = FirstViolation(m, model::kPacketServiceOk);
  const auto a = CompileS1(m, v);
  const auto b = CompileS1(m, v);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(FormatScript(a.script), FormatScript(b.script));
  EXPECT_FALSE(FormatScript(a.script).empty());
}

}  // namespace
}  // namespace cnv::conf
