// Chunk-boundary behaviour of the incremental QXDM stream parser: whatever
// the chunking, the record stream must be identical to a whole-buffer
// ParseLog of the same bytes.
#include "rtv/stream.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/qxdm.h"
#include "trace/record.h"

namespace cnv::rtv {
namespace {

const char kLog[] =
    "00:00:01.000 [MSG] [4G] [EMM] Attach Request sent\n"
    "00:00:01.100 [STATE] [4G] [EMM] EMM-REGISTERED\n"
    "\n"
    "this line is garbage\n"
    "00:00:02.250 [EVENT] [3G] [UE] data session starts (5.00 Mbps demand)\n";

std::vector<trace::TraceRecord> Collect(StreamParser& p,
                                        const std::string& text,
                                        std::size_t chunk) {
  std::vector<trace::TraceRecord> out;
  const auto sink = [&](trace::TraceRecord&& r, std::uint64_t ordinal) {
    EXPECT_EQ(ordinal, out.size());
    out.push_back(std::move(r));
  };
  for (std::size_t off = 0; off < text.size(); off += chunk) {
    p.Feed(std::string_view(text).substr(off, chunk), sink);
  }
  p.Finish(sink);
  return out;
}

TEST(StreamParserTest, WholeBufferMatchesParseLog) {
  StreamParser p;
  const auto got = Collect(p, kLog, sizeof kLog);
  const auto want = trace::ParseLog(kLog);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(trace::FormatRecord(got[i]), trace::FormatRecord(want[i]));
  }
  EXPECT_EQ(p.stats().records, 3u);
  EXPECT_EQ(p.stats().blank, 1u);
  EXPECT_EQ(p.stats().skipped, 1u);
}

TEST(StreamParserTest, EveryChunkSizeGivesIdenticalRecords) {
  const std::string text = kLog;
  const auto want = trace::ParseLog(text);
  for (std::size_t chunk = 1; chunk <= text.size(); ++chunk) {
    StreamParser p;
    const auto got = Collect(p, text, chunk);
    ASSERT_EQ(got.size(), want.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(trace::FormatRecord(got[i]), trace::FormatRecord(want[i]))
          << "chunk=" << chunk << " record=" << i;
    }
  }
}

TEST(StreamParserTest, FinishFlushesUnterminatedTrailingLine) {
  StreamParser p;
  std::vector<trace::TraceRecord> out;
  const auto sink = [&](trace::TraceRecord&& r, std::uint64_t) {
    out.push_back(std::move(r));
  };
  p.Feed("00:00:01.000 [MSG] [4G] [EMM] Attach Request sent", sink);
  EXPECT_TRUE(out.empty());  // no newline yet
  p.Finish(sink);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].description, "Attach Request sent");
  // Finish is idempotent once drained.
  p.Finish(sink);
  EXPECT_EQ(out.size(), 1u);
}

TEST(StreamParserTest, CrlfLineEndingsParse) {
  StreamParser p;
  std::vector<trace::TraceRecord> out;
  p.Feed("00:00:01.000 [MSG] [4G] [EMM] Attach Request sent\r\n",
         [&](trace::TraceRecord&& r, std::uint64_t) {
           out.push_back(std::move(r));
         });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].description, "Attach Request sent");
}

TEST(StreamParserTest, OverlongLineIsCountedAndDiscarded) {
  StreamParser p(/*max_line_bytes=*/32);
  std::vector<trace::TraceRecord> out;
  const auto sink = [&](trace::TraceRecord&& r, std::uint64_t) {
    out.push_back(std::move(r));
  };
  // One pseudo-line far beyond the cap, fed in small pieces, then a valid
  // record: the parser must bound its memory, count the discard and keep
  // parsing.
  for (int i = 0; i < 100; ++i) p.Feed("xxxxxxxxxx", sink);
  p.Feed("\n00:00:01.000 [MSG] [4G] [EMM] Attach Request sent\n", sink);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(p.stats().overlong, 1u);
  EXPECT_EQ(p.stats().records, 1u);
}

TEST(StreamParserTest, OverlongTrailingLineCountedOnFinish) {
  StreamParser p(/*max_line_bytes=*/8);
  int records = 0;
  const auto sink = [&](trace::TraceRecord&&, std::uint64_t) { ++records; };
  p.Feed("this never ends and never has a newline", sink);
  p.Finish(sink);
  EXPECT_EQ(records, 0);
  EXPECT_EQ(p.stats().overlong, 1u);
}

TEST(StreamParserTest, StatsCountBytesAndLines) {
  StreamParser p;
  const std::string text = kLog;
  Collect(p, text, 7);
  EXPECT_EQ(p.stats().bytes, text.size());
  EXPECT_EQ(p.stats().lines, 5u);
}

}  // namespace
}  // namespace cnv::rtv
