#include "core/screening.h"

#include <gtest/gtest.h>

#include "core/findings.h"

namespace cnv::core {
namespace {

TEST(FindingsTest, CatalogMatchesTable1) {
  const auto& all = AllFindings();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].code, "S1");
  EXPECT_EQ(all[5].code, "S6");
  // Types per Table 1: S1-S4 design, S5-S6 operation.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)].type, FindingType::kDesign);
  }
  EXPECT_EQ(all[4].type, FindingType::kOperation);
  EXPECT_EQ(all[5].type, FindingType::kOperation);
  // Categories: S1-S3 necessary-but-problematic, S4-S6 independent-coupled.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)].category,
              FindingCategory::kNecessaryButProblematic);
  }
  for (int i = 3; i < 6; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)].category,
              FindingCategory::kIndependentButCoupled);
  }
  // Screening discovers S1-S4; S5-S6 surface in validation (§4).
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(all[static_cast<std::size_t>(i)].found_by_screening);
  }
  EXPECT_FALSE(all[4].found_by_screening);
  EXPECT_FALSE(all[5].found_by_screening);
}

TEST(FindingsTest, DimensionsMatchTable1) {
  EXPECT_EQ(GetFinding(FindingId::kS1).dimension, Dimension::kCrossSystem);
  EXPECT_EQ(GetFinding(FindingId::kS2).dimension, Dimension::kCrossLayer);
  EXPECT_EQ(GetFinding(FindingId::kS3).dimension,
            Dimension::kCrossDomainAndSystem);
  EXPECT_EQ(GetFinding(FindingId::kS4).dimension, Dimension::kCrossLayer);
  EXPECT_EQ(GetFinding(FindingId::kS5).dimension, Dimension::kCrossDomain);
  EXPECT_EQ(GetFinding(FindingId::kS6).dimension, Dimension::kCrossSystem);
}

TEST(ScreeningTest, DiscoversAllFourDesignFindings) {
  ScreeningRunner runner;
  const auto report = runner.RunAll();
  EXPECT_TRUE(report.Found(FindingId::kS1));
  EXPECT_TRUE(report.Found(FindingId::kS2));
  EXPECT_TRUE(report.Found(FindingId::kS3));
  EXPECT_TRUE(report.Found(FindingId::kS4));
  // S5/S6 are operational slips; the screening phase cannot see them.
  EXPECT_FALSE(report.Found(FindingId::kS5));
  EXPECT_FALSE(report.Found(FindingId::kS6));
}

TEST(ScreeningTest, EveryViolationComesWithACounterexample) {
  ScreeningRunner runner;
  const auto report = runner.RunAll();
  for (const auto& cell : report.cells) {
    EXPECT_EQ(cell.violated_properties.size(), cell.counterexamples.size());
    for (const auto& cx : cell.counterexamples) {
      EXPECT_NE(cx.find("counterexample for"), std::string::npos);
    }
  }
}

TEST(ScreeningTest, HandoverAndRedirectCellsAreCleanForS3) {
  ScreeningRunner runner;
  const auto report = runner.RunAll();
  for (const auto& cell : report.cells) {
    if (cell.cell.find("inter-system handover") != std::string::npos ||
        cell.cell.find("release with redirect") != std::string::npos) {
      EXPECT_TRUE(cell.findings.empty()) << cell.cell;
    }
    if (cell.cell.find("cell reselection") != std::string::npos) {
      EXPECT_FALSE(cell.findings.empty()) << cell.cell;
    }
  }
}

TEST(ScreeningTest, SolutionsEliminateEveryViolation) {
  ScreeningOptions opt;
  opt.with_solutions = true;
  ScreeningRunner runner(opt);
  const auto report = runner.RunAll();
  EXPECT_TRUE(report.findings_found.empty());
  for (const auto& cell : report.cells) {
    EXPECT_TRUE(cell.violated_properties.empty()) << cell.cell;
    EXPECT_FALSE(cell.stats.truncated) << cell.cell;
  }
}

TEST(ScreeningTest, ExplorationIsExhaustiveNotTruncated) {
  ScreeningRunner runner;
  const auto report = runner.RunAll();
  for (const auto& cell : report.cells) {
    EXPECT_FALSE(cell.stats.truncated) << cell.cell;
  }
  // Exploration short-circuits once every property has a counterexample, so
  // totals are modest with defects present; the with-solutions run (no
  // violations) covers the full spaces.
  EXPECT_GT(report.total_states, 100u);
  ScreeningOptions fixed;
  fixed.with_solutions = true;
  const auto clean = ScreeningRunner(fixed).RunAll();
  EXPECT_GT(clean.total_states, report.total_states);
}

TEST(ScreeningTest, FormatListsCellsAndFindings) {
  ScreeningRunner runner;
  const auto report = runner.RunAll();
  const auto text = ScreeningRunner::Format(report);
  EXPECT_NE(text.find("S1 model"), std::string::npos);
  EXPECT_NE(text.find("S4 model"), std::string::npos);
  EXPECT_NE(text.find("VIOLATED"), std::string::npos);
  EXPECT_NE(text.find("S3"), std::string::npos);
}

TEST(ScreeningTest, DeterministicAcrossRuns) {
  ScreeningRunner runner;
  const auto a = runner.RunAll();
  const auto b = runner.RunAll();
  EXPECT_EQ(a.total_states, b.total_states);
  EXPECT_EQ(a.findings_found, b.findings_found);
}

}  // namespace
}  // namespace cnv::core
