#include "trace/matcher.h"

#include <gtest/gtest.h>

#include <functional>

#include "stack/testbed.h"

namespace cnv::trace {
namespace {

TraceRecord Rec(SimTime t, const std::string& desc) {
  return {t, TraceType::kMsg, nas::System::k4G, "EMM", desc};
}

TEST(MatcherTest, MatchesInOrderWithGaps) {
  const std::vector<TraceRecord> log = {
      Rec(1, "Attach Request sent"), Rec(2, "noise"),
      Rec(3, "Attach Accept received"), Rec(4, "more noise"),
      Rec(5, "Attach Complete sent")};
  const auto m = MatchesSequence(
      log, {"Attach Request", "Attach Accept", "Attach Complete"});
  EXPECT_TRUE(m.matched);
}

TEST(MatcherTest, OutOfOrderFails) {
  const std::vector<TraceRecord> log = {Rec(1, "Attach Accept received"),
                                        Rec(2, "Attach Request sent")};
  const auto m =
      MatchesSequence(log, {"Attach Request", "Attach Accept"});
  EXPECT_FALSE(m.matched);
  EXPECT_EQ(m.failed_index, 1u);
  EXPECT_EQ(m.missing, "Attach Accept");
}

TEST(MatcherTest, EmptyExpectationAlwaysMatches) {
  EXPECT_TRUE(MatchesSequence({}, {}).matched);
  EXPECT_TRUE(MatchesSequence({Rec(1, "x")}, {}).matched);
}

TEST(MatcherTest, EmptyLogFailsOnFirstNeedle) {
  const auto m = MatchesSequence({}, {"anything"});
  EXPECT_FALSE(m.matched);
  EXPECT_EQ(m.failed_index, 0u);
}

TEST(MatcherTest, OneRecordCannotSatisfyTwoNeedles) {
  // Each needle must be discharged by a distinct record in order.
  const std::vector<TraceRecord> log = {Rec(1, "Attach Request sent")};
  const auto m =
      MatchesSequence(log, {"Attach Request", "Attach Request"});
  EXPECT_FALSE(m.matched);
}

void RunUntil(stack::Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) tb.Run(Millis(100));
}

TEST(MatcherTest, AnticipatedS1SequenceMatchesTheRealScenario) {
  stack::Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
  tb.Run(Seconds(10));
  tb.sgsn().DeactivatePdp(nas::PdpDeactCause::kRegularDeactivation);
  tb.Run(Seconds(1));
  tb.ue().SwitchTo4g();
  RunUntil(tb, [&] { return !tb.ue().out_of_service(); }, Minutes(2));
  RunUntil(tb, [&] { return tb.ue().recovery_seconds().Count() == 1; },
           Minutes(2));
  const auto m =
      MatchesSequence(tb.traces().records(), AnticipatedS1Sequence());
  EXPECT_TRUE(m.matched) << "missing: " << m.missing;
}

TEST(MatcherTest, AnticipatedS2SequenceMatchesLossScenario) {
  stack::Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.ul4g().ForceDropNext(1);
  tb.Run(Seconds(2));
  tb.ue().CrossAreaBoundary();
  RunUntil(tb, [&] { return tb.ue().oos_events() > 0; }, Seconds(10));
  const auto m =
      MatchesSequence(tb.traces().records(), AnticipatedS2LossSequence());
  EXPECT_TRUE(m.matched) << "missing: " << m.missing;
}

TEST(MatcherTest, AnticipatedCsfbSequenceMatchesCallFlow) {
  stack::TestbedConfig cfg;
  cfg.profile = stack::OpI();
  cfg.profile.lu_failure_prob = 0;
  stack::Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().Dial();
  RunUntil(tb,
           [&] {
             return tb.ue().call_state() ==
                    stack::UeDevice::CallState::kActive;
           },
           Minutes(2));
  tb.Run(Seconds(5));
  tb.ue().HangUp();
  tb.Run(Seconds(5));
  const auto m =
      MatchesSequence(tb.traces().records(), AnticipatedCsfbSequence());
  EXPECT_TRUE(m.matched) << "missing: " << m.missing;
}

TEST(MatcherTest, WrongScenarioDoesNotMatchS1Sequence) {
  // A clean attach with no inter-system switch must not look like S1.
  stack::Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(3));
  const auto m =
      MatchesSequence(tb.traces().records(), AnticipatedS1Sequence());
  EXPECT_FALSE(m.matched);
}

}  // namespace
}  // namespace cnv::trace
