// Checkpoint envelope + codec tests: FNV digests, the bounds-checked binary
// reader, the full damage taxonomy of ReadCheckpointFile — missing,
// truncated, bad magic, wrong version/type, config mismatch, flipped byte —
// and the save-failure taxonomy of SaveCheckpointFile under an injected
// writer (disk-full, short write), proving the last-good-fallback contract.
#include "ckpt/io.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace cnv::ckpt {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / "ckpt_io_test";
  fs::create_directories(dir);
  return (dir / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Fnv1a64Test, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(DigestBuilderTest, SensitiveToValueTypeAndOrder) {
  const auto d = [](auto&&... parts) {
    DigestBuilder b;
    (b.Add(parts), ...);
    return b.Finish();
  };
  EXPECT_EQ(d(std::uint64_t{1}, std::uint64_t{2}),
            d(std::uint64_t{1}, std::uint64_t{2}));
  EXPECT_NE(d(std::uint64_t{1}, std::uint64_t{2}),
            d(std::uint64_t{2}, std::uint64_t{1}));
  EXPECT_NE(d(std::string_view("ab")), d(std::string_view("a"),
                                         std::string_view("b")));
  EXPECT_NE(d(true), d(false));
  EXPECT_NE(d(1.0), d(2.0));
}

TEST(BinaryCodecTest, RoundTripsEveryFieldKind) {
  struct Pod {
    int a;
    double b;
  };
  BinaryWriter w;
  w.U8(7);
  w.U32(0xdeadbeef);
  w.U64(1ull << 60);
  w.I64(-42);
  w.F64(3.25);
  w.Str("hello \0 world");
  w.Str("");
  w.PodVector(std::vector<std::uint32_t>{1, 2, 3});
  w.PodVector(std::vector<std::uint32_t>{});
  w.Pod(Pod{-1, 0.5});

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 1ull << 60);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_DOUBLE_EQ(r.F64(), 3.25);
  EXPECT_EQ(r.Str(), "hello ");  // string_view literal stops at the NUL
  EXPECT_EQ(r.Str(), "");
  EXPECT_EQ(r.PodVector<std::uint32_t>(), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(r.PodVector<std::uint32_t>().empty());
  const Pod p = r.Pod<Pod>();
  EXPECT_EQ(p.a, -1);
  EXPECT_DOUBLE_EQ(p.b, 0.5);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryReaderTest, OverrunLatchesAndReturnsZeroValues) {
  const std::string four(4, '\x01');
  BinaryReader r(four);
  EXPECT_EQ(r.U64(), 0u);  // needs 8, only 4 available
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U8(), 0u);  // still latched even though 4 bytes remain
  EXPECT_FALSE(r.AtEnd());
}

TEST(BinaryReaderTest, HugeStringLengthFailsInsteadOfAllocating) {
  BinaryWriter w;
  w.U64(~0ull);  // declared length far beyond the buffer
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.Str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(BinaryReaderTest, HugePodVectorLengthFailsInsteadOfAllocating) {
  BinaryWriter w;
  w.U64(1ull << 61);  // n * sizeof(u64) would overflow
  BinaryReader r(w.bytes());
  EXPECT_TRUE(r.PodVector<std::uint64_t>().empty());
  EXPECT_FALSE(r.ok());
}

TEST(BinaryReaderTest, AtEndRequiresFullConsumption) {
  BinaryWriter w;
  w.U32(1);
  w.U32(2);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.U32(), 1u);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.AtEnd());  // trailing bytes: a layout mismatch
}

TEST(CheckpointFileTest, RoundTripsAndReportsStoredDigest) {
  const std::string path = TempPath("roundtrip.ckpt");
  const std::string payload = "the payload bytes";
  ASSERT_TRUE(WriteCheckpointFile(path, PayloadType::kExploreSnapshot,
                                  /*payload_version=*/3, /*config_digest=*/77,
                                  payload));
  std::string got;
  EXPECT_EQ(ReadCheckpointFile(path, PayloadType::kExploreSnapshot, 3, 77,
                               &got),
            LoadStatus::kOk);
  EXPECT_EQ(got, payload);

  // kAnyConfigDigest skips the check and surfaces the stored digest.
  std::uint64_t stored = 0;
  EXPECT_EQ(ReadCheckpointFile(path, PayloadType::kExploreSnapshot, 3,
                               kAnyConfigDigest, &got, &stored),
            LoadStatus::kOk);
  EXPECT_EQ(stored, 77u);
}

TEST(CheckpointFileTest, EmptyPayloadRoundTrips) {
  const std::string path = TempPath("empty.ckpt");
  ASSERT_TRUE(WriteCheckpointFile(path, PayloadType::kCampaignManifest, 1, 1,
                                  ""));
  std::string got = "sentinel";
  EXPECT_EQ(ReadCheckpointFile(path, PayloadType::kCampaignManifest, 1, 1,
                               &got),
            LoadStatus::kOk);
  EXPECT_TRUE(got.empty());
}

TEST(CheckpointFileTest, MissingFile) {
  std::string got;
  EXPECT_EQ(ReadCheckpointFile(TempPath("nonexistent.ckpt"),
                               PayloadType::kCampaignCell, 1, 1, &got),
            LoadStatus::kMissing);
}

TEST(CheckpointFileTest, DamageTaxonomy) {
  const std::string path = TempPath("damage.ckpt");
  const std::string payload = "twelve bytes";
  ASSERT_TRUE(WriteCheckpointFile(path, PayloadType::kCampaignCell, 2, 9,
                                  payload));
  const std::string pristine = ReadAll(path);
  ASSERT_GT(pristine.size(), payload.size());
  std::string got;

  // Wrong expectations against a pristine file.
  EXPECT_EQ(ReadCheckpointFile(path, PayloadType::kCampaignManifest, 2, 9,
                               &got),
            LoadStatus::kBadType);
  EXPECT_EQ(ReadCheckpointFile(path, PayloadType::kCampaignCell, 3, 9, &got),
            LoadStatus::kBadVersion);
  EXPECT_EQ(ReadCheckpointFile(path, PayloadType::kCampaignCell, 2, 10, &got),
            LoadStatus::kConfigMismatch);

  // Truncated: the envelope declares more payload than the file holds.
  WriteAll(path, pristine.substr(0, pristine.size() - 1));
  EXPECT_EQ(ReadCheckpointFile(path, PayloadType::kCampaignCell, 2, 9, &got),
            LoadStatus::kTruncated);

  // Flipped payload byte: size intact, checksum catches it.
  std::string flipped = pristine;
  flipped.back() = static_cast<char>(flipped.back() ^ 0x40);
  WriteAll(path, flipped);
  EXPECT_EQ(ReadCheckpointFile(path, PayloadType::kCampaignCell, 2, 9, &got),
            LoadStatus::kChecksumMismatch);

  // Stomped magic: not a checkpoint file at all.
  std::string stomped = pristine;
  stomped[0] = 'X';
  WriteAll(path, stomped);
  EXPECT_EQ(ReadCheckpointFile(path, PayloadType::kCampaignCell, 2, 9, &got),
            LoadStatus::kBadMagic);

  // A pristine rewrite reads cleanly again — damage lives in the file, not
  // in any reader state.
  WriteAll(path, pristine);
  EXPECT_EQ(ReadCheckpointFile(path, PayloadType::kCampaignCell, 2, 9, &got),
            LoadStatus::kOk);
  EXPECT_EQ(got, payload);
}

TEST(CheckpointFileTest, WriteLeavesNoTmpFileBehind) {
  const std::string path = TempPath("clean.ckpt");
  ASSERT_TRUE(WriteCheckpointFile(path, PayloadType::kScreeningCell, 1, 1,
                                  "x"));
  for (const auto& e : fs::directory_iterator(fs::path(path).parent_path())) {
    EXPECT_EQ(e.path().extension(), ".ckpt") << e.path();
  }
}

// --- save fault injection ---------------------------------------------------
//
// The write shim stands in for ::write inside SaveCheckpointFile, so tests
// can exhaust a byte budget mid-save the way a full disk would — without
// needing an actual full volume. The shim is a plain function pointer, so
// its state lives in these file-scope variables.
std::size_t g_write_budget = 0;  // bytes the shim will accept before failing
int g_fail_errno = 0;            // errno once exhausted; 0 => short write of 0

long BudgetedWrite(int fd, const void* data, std::size_t size) {
  if (g_write_budget == 0) {
    if (g_fail_errno != 0) {
      errno = g_fail_errno;
      return -1;
    }
    return 0;  // kernel accepted nothing: a short write
  }
  const std::size_t n = std::min(size, g_write_budget);
  g_write_budget -= n;
  return static_cast<long>(::write(fd, data, n));
}

// RAII so a failing EXPECT cannot leave the shim installed for later tests.
struct ShimGuard {
  ShimGuard(std::size_t budget, int fail_errno) {
    g_write_budget = budget;
    g_fail_errno = fail_errno;
    SetWriteShimForTest(&BudgetedWrite);
  }
  ~ShimGuard() { SetWriteShimForTest(nullptr); }
};

TEST(SaveFaultTest, DiskFullMidPayloadReportsNoSpaceAndKeepsLastGood) {
  const std::string path = TempPath("diskfull.ckpt");
  const std::string good = "generation 1 survives";
  ASSERT_EQ(SaveCheckpointFile(path, PayloadType::kCampaignCell, 1, 5, good),
            SaveStatus::kOk);

  {
    // Envelope fits, then the volume "fills" a few bytes into the payload.
    ShimGuard shim(/*budget=*/48 + 3, /*fail_errno=*/ENOSPC);
    EXPECT_EQ(SaveCheckpointFile(path, PayloadType::kCampaignCell, 1, 5,
                                 "generation 2 must not land"),
              SaveStatus::kNoSpace);
  }

  // Last-good fallback: the failed save left no tmp debris and the previous
  // checkpoint still reads back byte-for-byte.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::string got;
  EXPECT_EQ(ReadCheckpointFile(path, PayloadType::kCampaignCell, 1, 5, &got),
            LoadStatus::kOk);
  EXPECT_EQ(got, good);
}

TEST(SaveFaultTest, ShortWriteIsDistinctFromDiskFull) {
  const std::string path = TempPath("shortwrite.ckpt");
  const std::string good = "old payload";
  ASSERT_TRUE(WriteCheckpointFile(path, PayloadType::kScreeningCell, 1, 6,
                                  good));

  {
    // The writer accepts nothing at all: short write, not disk-full.
    ShimGuard shim(/*budget=*/0, /*fail_errno=*/0);
    EXPECT_EQ(SaveCheckpointFile(path, PayloadType::kScreeningCell, 1, 6,
                                 "new payload"),
              SaveStatus::kShortWrite);
  }
  {
    // A hard I/O error that is not ENOSPC also maps to short-write.
    ShimGuard shim(/*budget=*/8, /*fail_errno=*/EIO);
    EXPECT_EQ(SaveCheckpointFile(path, PayloadType::kScreeningCell, 1, 6,
                                 "new payload"),
              SaveStatus::kShortWrite);
  }

  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::string got;
  EXPECT_EQ(ReadCheckpointFile(path, PayloadType::kScreeningCell, 1, 6, &got),
            LoadStatus::kOk);
  EXPECT_EQ(got, good);
}

TEST(SaveFaultTest, BoolWrapperStillReportsFailure) {
  const std::string path = TempPath("wrapper.ckpt");
  ShimGuard shim(/*budget=*/0, /*fail_errno=*/ENOSPC);
  EXPECT_FALSE(WriteCheckpointFile(path, PayloadType::kCampaignCell, 1, 1,
                                   "payload"));
}

TEST(SaveFaultTest, UnwritableParentReportsOpenFailed) {
  // The parent "directory" is a regular file, so neither create_directories
  // nor open can succeed.
  const std::string blocker = TempPath("blocker.ckpt");
  ASSERT_TRUE(WriteCheckpointFile(blocker, PayloadType::kCampaignCell, 1, 1,
                                  "x"));
  EXPECT_EQ(SaveCheckpointFile(blocker + "/nested.ckpt",
                               PayloadType::kCampaignCell, 1, 1, "y"),
            SaveStatus::kOpenFailed);
}

TEST(SaveFaultTest, TargetOccupiedByDirectoryReportsRenameFailed) {
  const std::string path = TempPath("occupied.ckpt");
  fs::create_directories(fs::path(path) / "occupant");
  EXPECT_EQ(SaveCheckpointFile(path, PayloadType::kCampaignCell, 1, 1, "z"),
            SaveStatus::kRenameFailed);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove_all(path);  // keep the shared temp dir .ckpt-only
}

TEST(SaveStatusTest, EveryStatusHasAName) {
  for (const auto s :
       {SaveStatus::kOk, SaveStatus::kOpenFailed, SaveStatus::kShortWrite,
        SaveStatus::kNoSpace, SaveStatus::kRenameFailed}) {
    EXPECT_FALSE(ToString(s).empty());
  }
}

TEST(LoadStatusTest, EveryStatusHasAName) {
  for (const auto s :
       {LoadStatus::kOk, LoadStatus::kMissing, LoadStatus::kTruncated,
        LoadStatus::kBadMagic, LoadStatus::kBadVersion, LoadStatus::kBadType,
        LoadStatus::kConfigMismatch, LoadStatus::kChecksumMismatch}) {
    EXPECT_FALSE(ToString(s).empty());
  }
}

}  // namespace
}  // namespace cnv::ckpt
