#include "stack/speedtest.h"

#include <gtest/gtest.h>

#include "stack/scenarios.h"

namespace cnv::stack {
namespace {

TEST(SpeedtestTest, MeasuresSteadyRateAndVolume) {
  Testbed tb({});
  ASSERT_TRUE(scenario::AttachIn3g(tb));
  tb.ue().StartDataSession(50.0);
  tb.Run(Seconds(2));
  const auto r = RunSpeedtest(tb, sim::Direction::kDownlink, 12);
  EXPECT_GT(r.MedianMbps(), 5.0);
  // Volume = rate x window (constant conditions).
  EXPECT_NEAR(r.megabytes, r.MedianMbps() * ToSeconds(r.window) / 8.0,
              r.megabytes * 0.01);
  EXPECT_EQ(r.window, Seconds(10));
}

TEST(SpeedtestTest, CapturesTheRateDropWhenACallStarts) {
  Testbed tb({});
  ASSERT_TRUE(scenario::AttachIn3g(tb));
  tb.Run(Seconds(10));
  tb.ue().StartDataSession(50.0);
  tb.Run(Seconds(2));
  const auto before = RunSpeedtest(tb, sim::Direction::kDownlink, 12);
  ASSERT_TRUE(scenario::EstablishCall(tb));
  const auto during = RunSpeedtest(tb, sim::Direction::kDownlink, 12);
  EXPECT_NEAR(1.0 - during.MedianMbps() / before.MedianMbps(), 0.74, 0.03);
  EXPECT_LT(during.megabytes, before.megabytes * 0.35);
}

TEST(SpeedtestTest, ZeroWithoutDataPath) {
  Testbed tb({});
  ASSERT_TRUE(scenario::AttachIn3g(tb));
  // Data enabled but no PDP context yet and no session: rate is 0.
  const auto r = RunSpeedtest(tb, sim::Direction::kUplink, 12, Seconds(2));
  EXPECT_DOUBLE_EQ(r.MedianMbps(), 0.0);
  EXPECT_DOUBLE_EQ(r.megabytes, 0.0);
}

TEST(SpeedtestTest, RejectsBadWindows) {
  Testbed tb({});
  EXPECT_THROW(RunSpeedtest(tb, sim::Direction::kDownlink, 12, 0),
               std::invalid_argument);
  EXPECT_THROW(
      RunSpeedtest(tb, sim::Direction::kDownlink, 12, Seconds(1), Seconds(2)),
      std::invalid_argument);
}

TEST(SpeedtestTest, AdvancesSimulatedTimeExactly) {
  Testbed tb({});
  ASSERT_TRUE(scenario::AttachIn4g(tb));
  const SimTime before = tb.sim().now();
  RunSpeedtest(tb, sim::Direction::kDownlink, 12, Seconds(7), Millis(300));
  EXPECT_EQ(tb.sim().now() - before, Seconds(7));
}

}  // namespace
}  // namespace cnv::stack
