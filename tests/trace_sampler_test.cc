// Sampling-sink suite: the O(1) 1-in-N trace sampler that keeps city-scale
// runs traceable. Properties pinned here: determinism of the admitted
// subset, whole-history coherence (an admitted key is always admitted),
// unbiased rate, exact emitted/dropped accounting, and the EmitAlways
// bypass for storm/overload records.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "trace/record.h"
#include "trace/sampler.h"

namespace cnv::trace {
namespace {

TEST(SamplingSinkTest, EveryOneAdmitsEverything) {
  int emitted = 0;
  SamplingSink sink(1, 42, [&](const TraceRecord&) { ++emitted; });
  TraceRecord r;
  for (std::uint64_t k = 0; k < 100; ++k) sink.Offer(k, r);
  EXPECT_EQ(emitted, 100);
  EXPECT_EQ(sink.emitted(), 100u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(SamplingSinkTest, AdmitDecisionIsDeterministicAndStable) {
  SamplingSink a(64, 7, [](const TraceRecord&) {});
  SamplingSink b(64, 7, [](const TraceRecord&) {});
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    ASSERT_EQ(a.Admits(k), b.Admits(k)) << k;
    // Whole-history coherence: re-asking never flips the answer.
    ASSERT_EQ(a.Admits(k), a.Admits(k)) << k;
  }
}

TEST(SamplingSinkTest, SeedDecorrelatesTheSubset) {
  SamplingSink a(64, 1, [](const TraceRecord&) {});
  SamplingSink b(64, 2, [](const TraceRecord&) {});
  int both = 0, a_only = 0;
  for (std::uint64_t k = 0; k < 100'000; ++k) {
    if (a.Admits(k) && b.Admits(k)) ++both;
    if (a.Admits(k) && !b.Admits(k)) ++a_only;
  }
  // Independent 1/64 subsets overlap on ~1/4096 of keys; identical subsets
  // would put everything in `both`.
  EXPECT_GT(a_only, both);
}

TEST(SamplingSinkTest, AdmitRateIsCloseToOneInN) {
  SamplingSink sink(64, 99, [](const TraceRecord&) {});
  int admitted = 0;
  const int keys = 200'000;
  for (std::uint64_t k = 0; k < keys; ++k) {
    if (sink.Admits(k)) ++admitted;
  }
  const double rate = static_cast<double>(admitted) / keys;
  EXPECT_GT(rate, 0.5 / 64);  // not starving
  EXPECT_LT(rate, 2.0 / 64);  // not flooding
}

TEST(SamplingSinkTest, OfferAndSuppressedAccountingBalances) {
  std::vector<TraceRecord> out;
  SamplingSink sink(8, 3, [&](const TraceRecord& r) { out.push_back(r); });
  TraceRecord r;
  const int keys = 1000;
  for (std::uint64_t k = 0; k < keys; ++k) sink.Offer(k, r);
  EXPECT_EQ(sink.emitted() + sink.dropped(), static_cast<std::uint64_t>(keys));
  EXPECT_EQ(sink.emitted(), out.size());

  // Hot paths skip record construction and count suppression afterwards.
  sink.CountSuppressed(500);
  EXPECT_EQ(sink.emitted() + sink.dropped(),
            static_cast<std::uint64_t>(keys) + 500);
}

TEST(SamplingSinkTest, EmitAlwaysBypassesSampling) {
  int emitted = 0;
  SamplingSink sink(1'000'000, 11, [&](const TraceRecord&) { ++emitted; });
  TraceRecord storm;
  storm.module = "STORM";
  for (int i = 0; i < 32; ++i) sink.EmitAlways(storm);
  EXPECT_EQ(emitted, 32);
  EXPECT_EQ(sink.emitted(), 32u);
}

TEST(SamplingSinkTest, ZeroEveryIsClampedToRecordEverything) {
  SamplingSink sink(0, 5, [](const TraceRecord&) {});
  EXPECT_EQ(sink.every(), 1u);
  EXPECT_TRUE(sink.Admits(1234567));
}

}  // namespace
}  // namespace cnv::trace
