#include "model/s2_model.h"

#include <gtest/gtest.h>

#include "mck/explorer.h"

namespace cnv::model {
namespace {

using mck::Explore;
using mck::ExploreOptions;

TEST(S2ModelTest, UnreliableRrcViolatesPacketServiceOk) {
  S2Model m;
  const auto r = Explore(m, S2Model::Properties());
  EXPECT_FALSE(r.Holds(kPacketServiceOk));
  EXPECT_FALSE(r.Holds("PacketService_NoTransientLoss"));
}

TEST(S2ModelTest, LostAttachCompleteLeadsToImplicitDetach) {
  // Figure 5(a) exactly: only the loss mechanism enabled.
  S2Model::Config cfg;
  cfg.allow_duplicate = false;
  S2Model m(cfg);
  const auto r = Explore(m, S2Model::Properties());
  const auto* v = r.FindViolation(kPacketServiceOk);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->state.out_of_service);
  // The violating run must contain a loss and a TAU.
  bool saw_loss = false, saw_tau = false;
  for (const auto& a : v->trace) {
    saw_loss |= a.kind == S2Model::Kind::kLoseUplink;
    saw_tau |= a.kind == S2Model::Kind::kUeTriggerTau;
  }
  EXPECT_TRUE(saw_loss);
  EXPECT_TRUE(saw_tau);
}

TEST(S2ModelTest, DuplicateAttachRequestLeadsToDetachOrInterruption) {
  // Figure 5(b) exactly: only the duplication mechanism enabled.
  S2Model::Config cfg;
  cfg.allow_loss = false;
  S2Model m(cfg);
  const auto r = Explore(m, S2Model::Properties());
  // Reject outcome: out of service.
  const auto* oos = r.FindViolation(kPacketServiceOk);
  ASSERT_NE(oos, nullptr);
  bool saw_defer = false;
  for (const auto& a : oos->trace) {
    saw_defer |= a.kind == S2Model::Kind::kDeferUplink;
  }
  EXPECT_TRUE(saw_defer);
  // Accept outcome: bearer torn down while registered.
  const auto* loss = r.FindViolation("PacketService_NoTransientLoss");
  ASSERT_NE(loss, nullptr);
  EXPECT_TRUE(loss->state.service_interrupted);
  EXPECT_FALSE(loss->state.out_of_service);
}

TEST(S2ModelTest, TraceReplayReachesViolation) {
  S2Model m;
  const auto r = Explore(m, S2Model::Properties());
  const auto* v = r.FindViolation(kPacketServiceOk);
  ASSERT_NE(v, nullptr);
  S2Model::State s = m.initial();
  for (const auto& a : v->trace) s = m.apply(s, a);
  EXPECT_TRUE(s == v->state);
}

TEST(S2ModelTest, HappyPathAttachCompletes) {
  S2Model m;
  auto s = m.initial();
  s = m.apply(s, {S2Model::Kind::kUeSendAttach});
  s = m.apply(s, {S2Model::Kind::kDeliverUplink});
  EXPECT_EQ(s.mme, S2Model::MmeEmm::kWaitComplete);
  s = m.apply(s, {S2Model::Kind::kDeliverDownlink});
  EXPECT_EQ(s.ue, S2Model::UeEmm::kRegistered);
  EXPECT_TRUE(s.ue_bearer);
  s = m.apply(s, {S2Model::Kind::kDeliverUplink});  // Attach Complete
  EXPECT_EQ(s.mme, S2Model::MmeEmm::kRegistered);
  EXPECT_TRUE(s.mme_bearer);
  // TAU then succeeds.
  s = m.apply(s, {S2Model::Kind::kUeTriggerTau});
  s = m.apply(s, {S2Model::Kind::kDeliverUplink});
  s = m.apply(s, {S2Model::Kind::kDeliverDownlink});
  EXPECT_EQ(s.ue, S2Model::UeEmm::kRegistered);
  EXPECT_FALSE(s.out_of_service);
}

TEST(S2ModelTest, ReliableShimEliminatesAllViolations) {
  S2Model::Config cfg;
  cfg.reliable_shim = true;
  S2Model m(cfg);
  const auto r = Explore(m, S2Model::Properties());
  EXPECT_TRUE(r.Holds(kPacketServiceOk));
  EXPECT_TRUE(r.Holds("PacketService_NoTransientLoss"));
  EXPECT_FALSE(r.stats.truncated);
}

TEST(S2ModelTest, ShimDisablesLossAndDeferActions) {
  S2Model::Config cfg;
  cfg.reliable_shim = true;
  S2Model m(cfg);
  auto s = m.initial();
  s = m.apply(s, {S2Model::Kind::kUeSendAttach});
  for (const auto& a : m.enabled(s)) {
    EXPECT_NE(a.kind, S2Model::Kind::kLoseUplink);
    EXPECT_NE(a.kind, S2Model::Kind::kDeferUplink);
  }
}

TEST(S2ModelTest, MmeWaitCompleteRejectsTauWithImplicitDetach) {
  S2Model m;
  auto s = m.initial();
  s = m.apply(s, {S2Model::Kind::kUeSendAttach});
  s = m.apply(s, {S2Model::Kind::kDeliverUplink});
  s = m.apply(s, {S2Model::Kind::kDeliverDownlink});
  s = m.apply(s, {S2Model::Kind::kLoseUplink});  // Attach Complete lost
  s = m.apply(s, {S2Model::Kind::kUeTriggerTau});
  s = m.apply(s, {S2Model::Kind::kDeliverUplink});
  EXPECT_EQ(s.downlink, S2Model::Msg::kTauRejectImplicitDetach);
  EXPECT_EQ(s.mme, S2Model::MmeEmm::kDeregistered);
  s = m.apply(s, {S2Model::Kind::kDeliverDownlink});
  EXPECT_TRUE(s.out_of_service);
  EXPECT_EQ(s.ue, S2Model::UeEmm::kDetached);
}

TEST(S2ModelTest, StateSpaceIsExhaustable) {
  S2Model m;
  const auto r = Explore(m, S2Model::Properties());
  EXPECT_FALSE(r.stats.truncated);
  EXPECT_LT(r.stats.states_visited, 20'000u);
}

TEST(S2ModelTest, StaleAcceptRebuildsRegistration) {
  S2Model::Config cfg;
  cfg.allow_loss = false;
  S2Model m(cfg);
  auto s = m.initial();
  s = m.apply(s, {S2Model::Kind::kUeSendAttach});
  s = m.apply(s, {S2Model::Kind::kDeferUplink});
  s = m.apply(s, {S2Model::Kind::kUeResendAttach});
  s = m.apply(s, {S2Model::Kind::kDeliverUplink});
  s = m.apply(s, {S2Model::Kind::kDeliverDownlink});
  s = m.apply(s, {S2Model::Kind::kDeliverUplink});  // Attach Complete
  ASSERT_EQ(s.mme, S2Model::MmeEmm::kRegistered);
  ASSERT_EQ(s.deferred, S2Model::Msg::kAttachRequest);
  s = m.apply(s, {S2Model::Kind::kMmeAcceptStaleAttach});
  EXPECT_TRUE(s.service_interrupted);
  EXPECT_FALSE(s.mme_bearer);  // torn down, pending rebuild
  s = m.apply(s, {S2Model::Kind::kDeliverDownlink});
  s = m.apply(s, {S2Model::Kind::kDeliverUplink});  // new Attach Complete
  EXPECT_EQ(s.mme, S2Model::MmeEmm::kRegistered);
  EXPECT_TRUE(s.mme_bearer);
}

}  // namespace
}  // namespace cnv::model
