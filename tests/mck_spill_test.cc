// Disk-backed frontier tests: codec round-trip, envelope failure taxonomy,
// byte-identity of spilled vs in-RAM exploration at several job counts,
// recovery from corrupted/truncated/deleted spill runs via deterministic
// re-expansion, and cleanup of consumed run files.
#include "mck/spill.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mck/explorer.h"
#include "mck/parallel_explorer.h"
#include "mck/toy_models.h"
#include "model/combined_model.h"

namespace cnv::mck {
namespace {

namespace fs = std::filesystem;
using model::CombinedModel;

std::string TempDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / "mck_spill" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

using Cand = internal::FrontierCandidate<CombinedModel::State,
                                         CombinedModel::Action>;

std::vector<Cand> SampleRun() {
  std::vector<Cand> run;
  for (int i = 0; i < 5; ++i) {
    Cand c;
    c.state.ue[0].calls = static_cast<std::uint8_t>(i);
    c.state.msc_busy = (i % 2) == 0;
    c.hash = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1);
    c.key = {static_cast<std::uint64_t>(i), static_cast<std::uint32_t>(i + 1)};
    c.parent = static_cast<std::uint64_t>(i * 3);
    c.via = {CombinedModel::Kind::kDial, static_cast<std::uint8_t>(i % 2)};
    run.push_back(c);
  }
  return run;
}

// --- codec ------------------------------------------------------------------

TEST(SpillTest, FrontierRunRoundTrips) {
  const auto run = SampleRun();
  const std::string payload = EncodeFrontierRun(run);
  std::vector<Cand> out;
  ASSERT_TRUE(DecodeFrontierRun(payload, &out));
  ASSERT_EQ(out.size(), run.size());
  for (std::size_t i = 0; i < run.size(); ++i) {
    EXPECT_EQ(out[i].state, run[i].state);
    EXPECT_EQ(out[i].hash, run[i].hash);
    EXPECT_EQ(out[i].key, run[i].key);
    EXPECT_EQ(out[i].parent, run[i].parent);
  }
}

TEST(SpillTest, TruncatedOrPaddedPayloadRejected) {
  const std::string payload = EncodeFrontierRun(SampleRun());
  std::vector<Cand> out;
  EXPECT_FALSE(DecodeFrontierRun(
      std::string_view(payload).substr(0, payload.size() - 3), &out));
  EXPECT_FALSE(DecodeFrontierRun(payload + "x", &out));
}

TEST(SpillTest, RunFileLoadStatusTaxonomy) {
  const std::string dir = TempDir("taxonomy");
  const std::string path = dir + "/w0_s0_j0.run";
  const auto run = SampleRun();
  const std::uint64_t digest = FrontierRunDigest(0, 0, 0);
  ASSERT_TRUE(SaveFrontierRun(path, digest, run));

  std::vector<Cand> out;
  EXPECT_EQ(LoadFrontierRun(path, digest, &out), ckpt::LoadStatus::kOk);
  EXPECT_EQ(out.size(), run.size());

  // Wrong coordinates -> the digest check refuses the file.
  EXPECT_EQ(LoadFrontierRun(path, FrontierRunDigest(1, 0, 0), &out),
            ckpt::LoadStatus::kConfigMismatch);
  EXPECT_EQ(LoadFrontierRun(path, FrontierRunDigest(0, 3, 0), &out),
            ckpt::LoadStatus::kConfigMismatch);

  EXPECT_EQ(LoadFrontierRun(dir + "/absent.run", digest, &out),
            ckpt::LoadStatus::kMissing);

  // Flip a payload byte -> checksum mismatch.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-5, std::ios::end);
    f.put('\xff');
  }
  EXPECT_EQ(LoadFrontierRun(path, digest, &out),
            ckpt::LoadStatus::kChecksumMismatch);
}

// --- spilled exploration is byte-identical ----------------------------------

TEST(SpillTest, SpilledExplorationMatchesInRam) {
  const CombinedModel m;
  const auto props = m.Properties();
  ParallelExploreOptions plain;
  plain.jobs = 4;
  const auto baseline = ParallelExplore(m, props, plain);

  for (const int jobs : {1, 2, 4}) {
    const std::string dir = TempDir("match_j" + std::to_string(jobs));
    ParallelExploreOptions spilled = plain;
    spilled.jobs = jobs;
    spilled.spill_dir = dir;
    const auto r = ParallelExplore(m, props, spilled);
    EXPECT_EQ(DeterministicView(baseline.stats), DeterministicView(r.stats))
        << "jobs=" << jobs;
    EXPECT_EQ(DeterministicView(baseline.par), DeterministicView(r.par));
    EXPECT_GT(r.par.spill_runs, 0u);
    EXPECT_EQ(r.par.spill_recovered, 0u);
    ASSERT_EQ(baseline.violations.size(), r.violations.size());
    for (std::size_t i = 0; i < baseline.violations.size(); ++i) {
      EXPECT_EQ(baseline.violations[i].property, r.violations[i].property);
      EXPECT_EQ(baseline.violations[i].state, r.violations[i].state);
    }
    // Consumed run files are deleted as the insert phase drains them.
    std::size_t leftovers = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      (void)e;
      ++leftovers;
    }
    EXPECT_EQ(leftovers, 0u) << "jobs=" << jobs;
  }
}

TEST(SpillTest, SpilledReducedExplorationMatchesSerial) {
  const CombinedModel m;
  const auto props = m.Properties();
  ExploreOptions base;
  base.reduction.por = true;
  base.reduction.symmetry = true;
  const auto serial = Explore(m, props, base);

  const std::string dir = TempDir("reduced");
  ParallelExploreOptions popt;
  popt.base = base;
  popt.jobs = 4;
  popt.spill_dir = dir;
  const auto par = ParallelExplore(m, props, popt);
  EXPECT_EQ(DeterministicView(serial.stats, /*include_occupancy=*/false),
            DeterministicView(par.stats, /*include_occupancy=*/false));
  EXPECT_GT(par.par.spill_runs, 0u);
}

// --- recovery from damaged runs ---------------------------------------------

void ExpectRecoveryMatchesBaseline(
    const std::function<void(const std::string&)>& damage,
    const std::string& dirname) {
  const CombinedModel m;
  const auto props = m.Properties();
  ParallelExploreOptions plain;
  plain.jobs = 4;
  const auto baseline = ParallelExplore(m, props, plain);

  const std::string dir = TempDir(dirname);
  ParallelExploreOptions spilled = plain;
  spilled.spill_dir = dir;
  int touched = 0;
  spilled.on_spill_write_for_test = [&](const std::string& path) {
    // Damage every third run file right after it is written.
    if (++touched % 3 == 0) damage(path);
  };
  const auto r = ParallelExplore(m, props, spilled);
  EXPECT_EQ(DeterministicView(baseline.stats), DeterministicView(r.stats));
  EXPECT_EQ(DeterministicView(baseline.par), DeterministicView(r.par));
  EXPECT_GT(r.par.spill_recovered, 0u);
  ASSERT_EQ(baseline.violations.size(), r.violations.size());
  for (std::size_t i = 0; i < baseline.violations.size(); ++i) {
    EXPECT_EQ(baseline.violations[i].property, r.violations[i].property);
    EXPECT_EQ(baseline.violations[i].trace.size(),
              r.violations[i].trace.size());
    EXPECT_EQ(baseline.violations[i].state, r.violations[i].state);
  }
}

TEST(SpillTest, RecoversFromCorruptedRuns) {
  ExpectRecoveryMatchesBaseline(
      [](const std::string& path) {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(-1, std::ios::end);
        f.put('\x5a');
      },
      "corrupt");
}

TEST(SpillTest, RecoversFromTruncatedRuns) {
  ExpectRecoveryMatchesBaseline(
      [](const std::string& path) {
        fs::resize_file(path, fs::file_size(path) / 2);
      },
      "truncate");
}

TEST(SpillTest, RecoversFromDeletedRuns) {
  ExpectRecoveryMatchesBaseline(
      [](const std::string& path) { fs::remove(path); }, "delete");
}

TEST(SpillTest, RecoversWhenEveryRunIsDamaged) {
  const CombinedModel m;
  const auto props = m.Properties();
  ParallelExploreOptions plain;
  plain.jobs = 2;
  const auto baseline = ParallelExplore(m, props, plain);

  const std::string dir = TempDir("all_bad");
  ParallelExploreOptions spilled = plain;
  spilled.spill_dir = dir;
  spilled.on_spill_write_for_test = [](const std::string& path) {
    fs::remove(path);
  };
  const auto r = ParallelExplore(m, props, spilled);
  EXPECT_EQ(DeterministicView(baseline.stats), DeterministicView(r.stats));
  EXPECT_EQ(r.par.spill_recovered, r.par.spill_runs);
}

// --- spill on a reduced run with recovery (everything at once) --------------

TEST(SpillTest, ReducedSpilledRecoveredStillByteIdentical) {
  const CombinedModel m;
  const auto props = m.Properties();
  ExploreOptions base;
  base.reduction.por = true;
  base.reduction.symmetry = true;
  const auto serial = Explore(m, props, base);

  const std::string dir = TempDir("reduced_recovery");
  ParallelExploreOptions popt;
  popt.base = base;
  popt.jobs = 4;
  popt.spill_dir = dir;
  int touched = 0;
  popt.on_spill_write_for_test = [&](const std::string& path) {
    if (++touched % 2 == 0) fs::remove(path);
  };
  const auto par = ParallelExplore(m, props, popt);
  EXPECT_EQ(DeterministicView(serial.stats, /*include_occupancy=*/false),
            DeterministicView(par.stats, /*include_occupancy=*/false));
  EXPECT_GT(par.par.spill_recovered, 0u);
  ASSERT_EQ(serial.violations.size(), par.violations.size());
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    EXPECT_EQ(serial.violations[i].property, par.violations[i].property);
    EXPECT_EQ(serial.violations[i].state, par.violations[i].state);
  }
}

}  // namespace
}  // namespace cnv::mck
