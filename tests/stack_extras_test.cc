// Mobile-terminated calls (paging), VoLTE, and periodic updates.
#include <gtest/gtest.h>

#include <functional>

#include "stack/testbed.h"
#include "trace/analyze.h"

namespace cnv::stack {
namespace {

void RunUntil(Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) {
    tb.Run(Millis(100));
  }
}

TEST(MtCallTest, PagedDeviceAnswersIncomingCall) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  ASSERT_TRUE(tb.msc().registered());
  EXPECT_TRUE(tb.msc().PageForIncomingCall());
  RunUntil(tb,
           [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
           Seconds(30));
  EXPECT_EQ(tb.ue().call_state(), UeDevice::CallState::kActive);
  tb.Run(Seconds(1));  // let the Connect reach the MSC
  EXPECT_TRUE(tb.msc().call_active());
  const auto& rec = tb.traces().records();
  EXPECT_GE(trace::CountContaining(rec, "Paging Request received"), 1u);
  EXPECT_GE(trace::CountContaining(rec, "incoming call answered"), 1u);
}

TEST(MtCallTest, IncomingCallDuringDataDegradesPsRate) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.ue().StartDataSession(10.0);
  tb.Run(Seconds(2));
  const double before =
      tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12);
  ASSERT_TRUE(tb.msc().PageForIncomingCall());
  RunUntil(tb,
           [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
           Seconds(30));
  const double during =
      tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12);
  EXPECT_LT(during, before * 0.5);  // S5 applies to MT calls too
  EXPECT_EQ(tb.ue().calls_with_data(), 1u);
}

TEST(MtCallTest, UnregisteredDeviceMissesIncomingCalls) {
  // §6.3's motivation for acting on LU failures: without a valid location
  // the incoming call cannot reach the user.
  Testbed tb({});
  // Never attach in 3G: the MSC has no registration.
  EXPECT_FALSE(tb.msc().PageForIncomingCall());
  EXPECT_EQ(tb.msc().missed_incoming_calls(), 1u);
}

TEST(MtCallTest, HangUpTerminatesMtCall) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.msc().PageForIncomingCall();
  RunUntil(tb,
           [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
           Seconds(30));
  tb.ue().HangUp();
  tb.Run(Seconds(2));
  EXPECT_EQ(tb.ue().call_state(), UeDevice::CallState::kNone);
  EXPECT_FALSE(tb.msc().call_active());
  EXPECT_FALSE(tb.channel3g().cs_call_active());
}

TEST(VolteTest, CallStaysIn4g) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  cfg.profile.volte_enabled = true;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().Dial();
  RunUntil(tb,
           [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
           Seconds(30));
  EXPECT_EQ(tb.ue().call_state(), UeDevice::CallState::kActive);
  EXPECT_EQ(tb.ue().serving(), nas::System::k4G);  // no fallback
  EXPECT_FALSE(tb.ue().in_csfb_call());
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "VoLTE call established"),
            1u);
}

TEST(VolteTest, NoCsfbDefectsWithVolte) {
  // The ablation claim: with PS voice there is no inter-system switch per
  // call, so S3 (stuck in 3G) and S6 (LU failure propagation) cannot occur.
  TestbedConfig cfg;
  cfg.profile = OpII();  // the policies that hurt CSFB users
  cfg.profile.volte_enabled = true;
  cfg.profile.lu_failure_prob = 1.0;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().StartDataSession(0.2);
  tb.Run(Seconds(1));
  tb.ue().Dial();
  RunUntil(tb,
           [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
           Seconds(30));
  tb.Run(Seconds(30));
  tb.ue().HangUp();
  tb.Run(Minutes(1));
  EXPECT_EQ(tb.ue().serving(), nas::System::k4G);
  EXPECT_EQ(tb.ue().oos_events(), 0u);
  EXPECT_EQ(tb.ue().stuck_in_3g_seconds().Count(), 0u);
}

TEST(VolteTest, VolteRateUnaffectedByCall) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  cfg.profile.volte_enabled = true;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().StartDataSession(10.0);
  tb.Run(Seconds(1));
  const double before =
      tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12);
  tb.ue().Dial();
  RunUntil(tb,
           [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
           Seconds(30));
  EXPECT_DOUBLE_EQ(tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12),
                   before);
}

TEST(PeriodicUpdateTest, RefreshesIn3gOnSchedule) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(20));
  tb.ue().EnablePeriodicUpdates(Minutes(5));
  tb.Run(Minutes(16));
  const auto& rec = tb.traces().records();
  EXPECT_GE(trace::CountContaining(rec, "periodic location refresh"), 3u);
  // Each refresh produced a full update exchange.
  EXPECT_GE(trace::CountContaining(rec, "Location Updating Accept"), 4u);
}

TEST(PeriodicUpdateTest, RefreshesIn4gWithTau) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().EnablePeriodicUpdates(Minutes(5));
  tb.Run(Minutes(11));
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "periodic tracking area update"),
            2u);
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
}

TEST(PeriodicUpdateTest, DisableStopsRefreshes) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(20));
  tb.ue().EnablePeriodicUpdates(Minutes(5));
  tb.Run(Minutes(6));
  tb.ue().EnablePeriodicUpdates(0);
  const auto count = trace::CountContaining(tb.traces().records(),
                                            "periodic location refresh");
  tb.Run(Minutes(20));
  EXPECT_EQ(trace::CountContaining(tb.traces().records(),
                                   "periodic location refresh"),
            count);
}

TEST(PeriodicUpdateTest, PeriodicLuCanCollideWithOutgoingCall) {
  // Table 4 scenario 2 colliding with a call: the S4 blocking does not need
  // mobility.
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(20));
  tb.ue().EnablePeriodicUpdates(Minutes(2));
  tb.Run(Minutes(2) + Millis(300));  // the refresh just fired
  ASSERT_NE(tb.ue().mm_state(), UeDevice::MmState::kIdle);
  tb.ue().Dial();
  tb.Run(Millis(500));
  EXPECT_GE(tb.ue().deferred_call_requests(), 1u);
}

}  // namespace
}  // namespace cnv::stack
