// Process-backend tests: byte-identity with the in-process backends, crash
// detection + lease reassignment + respawn (kill plans and workers that
// _exit mid-cell), poisoned-cell quarantine, heartbeat-timeout detection of
// a stopped worker, and drain via a pre-set cancel token.
#include <csignal>
#include <cstdlib>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/grid.h"
#include "dist/process.h"
#include "gtest/gtest.h"

namespace cnv::dist {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const fs::path dir =
      fs::path(testing::TempDir()) / "dist_process_test" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

bool Exists(const std::string& path) { return fs::exists(path); }

void Touch(const std::string& path) {
  std::ofstream(path, std::ios::binary).put('x');
}

class SquareGrid : public CellGrid {
 public:
  explicit SquareGrid(std::size_t n) : n_(n) {}
  std::size_t size() const override { return n_; }
  CellOutcome RunCell(std::size_t i, std::string_view) override {
    CellOutcome out;
    out.payload = "cell " + std::to_string(i) + " -> " + std::to_string(i * i);
    return out;
  }

 private:
  std::size_t n_;
};

TEST(ProcessBackendTest, MatchesThreadBackendByteForByte) {
  SquareGrid grid(24);
  DistOptions thread_opt;
  thread_opt.workers = 4;
  const GridResult threaded = RunGrid(grid, thread_opt);
  ASSERT_TRUE(threaded.complete);

  DistOptions proc_opt;
  proc_opt.backend = Backend::kProcess;
  proc_opt.workers = 4;
  const GridResult forked = RunGrid(grid, proc_opt);
  ASSERT_TRUE(forked.complete);
  EXPECT_EQ(forked.payloads, threaded.payloads);
  EXPECT_EQ(forked.exec.cells_run, 24u);
  EXPECT_EQ(forked.worker_deaths, 0u);
}

TEST(ProcessBackendTest, SingleWorkerAlsoMatches) {
  SquareGrid grid(8);
  DistOptions serial_opt;
  const GridResult serial = RunGrid(grid, serial_opt);

  DistOptions proc_opt;
  proc_opt.backend = Backend::kProcess;
  proc_opt.workers = 1;
  const GridResult forked = RunGrid(grid, proc_opt);
  ASSERT_TRUE(forked.complete);
  EXPECT_EQ(forked.payloads, serial.payloads);
}

// Crashes the whole worker process (via _exit, bypassing gtest teardown)
// the first time `crash_cell` runs; a marker file makes the retry succeed.
// RunCell only ever executes in forked workers here, so the _exit takes
// down a worker, never the test.
class CrashOnceGrid : public SquareGrid {
 public:
  CrashOnceGrid(std::size_t n, std::size_t crash_cell, std::string marker)
      : SquareGrid(n), crash_cell_(crash_cell), marker_(std::move(marker)) {}
  CellOutcome RunCell(std::size_t i, std::string_view carry) override {
    if (i == crash_cell_ && !Exists(marker_)) {
      Touch(marker_);
      _exit(3);
    }
    return SquareGrid::RunCell(i, carry);
  }

 private:
  std::size_t crash_cell_;
  std::string marker_;
};

TEST(ProcessBackendTest, WorkerCrashIsRetriedInAFreshWorker) {
  const std::string dir = TempDir("crash_once");
  SquareGrid reference(12);
  const DistOptions serial_opt;
  const GridResult serial = RunGrid(reference, serial_opt);

  CrashOnceGrid grid(12, 5, dir + "/crashed");
  DistOptions opt;
  opt.backend = Backend::kProcess;
  opt.workers = 3;
  const GridResult result = RunGrid(grid, opt);
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(result.quarantined.empty());
  EXPECT_EQ(result.payloads, serial.payloads);
  EXPECT_GE(result.worker_deaths, 1u);
  EXPECT_GE(result.worker_respawns, 1u);
}

// Always crashes its worker: a poisoned cell.
class PoisonGrid : public SquareGrid {
 public:
  PoisonGrid(std::size_t n, std::size_t poison)
      : SquareGrid(n), poison_(poison) {}
  CellOutcome RunCell(std::size_t i, std::string_view carry) override {
    if (i == poison_) _exit(7);
    return SquareGrid::RunCell(i, carry);
  }

 private:
  std::size_t poison_;
};

TEST(ProcessBackendTest, PoisonedCellIsQuarantinedNotLivelocked) {
  PoisonGrid grid(10, 4);
  DistOptions opt;
  opt.backend = Backend::kProcess;
  opt.workers = 2;
  opt.quarantine_after = 3;
  const GridResult result = RunGrid(grid, opt);

  // Everything except the poisoned cell completed; the poisoned cell was
  // quarantined after exactly quarantine_after worker deaths.
  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0].index, 4u);
  EXPECT_EQ(result.quarantined[0].strikes, 3u);
  EXPECT_EQ(result.states[4], CellState::kQuarantined);
  EXPECT_TRUE(result.payloads[4].empty());
  EXPECT_GE(result.worker_deaths, 3u);
  for (std::size_t i = 0; i < 10; ++i) {
    if (i == 4) continue;
    EXPECT_TRUE(result.Done(i)) << "cell " << i;
    EXPECT_EQ(result.payloads[i],
              "cell " + std::to_string(i) + " -> " + std::to_string(i * i));
  }
}

// Stops its own worker process cold (SIGSTOP) the first time `stall_cell`
// runs: no heartbeats, no result — only the coordinator's liveness deadline
// can detect it. The marker file makes the retry succeed.
class StallOnceGrid : public SquareGrid {
 public:
  StallOnceGrid(std::size_t n, std::size_t stall_cell, std::string marker)
      : SquareGrid(n), stall_cell_(stall_cell), marker_(std::move(marker)) {}
  CellOutcome RunCell(std::size_t i, std::string_view carry) override {
    if (i == stall_cell_ && !Exists(marker_)) {
      Touch(marker_);
      raise(SIGSTOP);  // frozen until the coordinator SIGKILLs us
    }
    return SquareGrid::RunCell(i, carry);
  }

 private:
  std::size_t stall_cell_;
  std::string marker_;
};

TEST(ProcessBackendTest, HeartbeatTimeoutDetectsAStoppedWorker) {
  const std::string dir = TempDir("stall_once");
  StallOnceGrid grid(6, 2, dir + "/stalled");
  DistOptions opt;
  opt.backend = Backend::kProcess;
  opt.workers = 2;
  opt.heartbeat_ms = 250;  // short deadline keeps the test fast
  const GridResult result = RunGrid(grid, opt);
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(result.quarantined.empty());
  EXPECT_GE(result.heartbeat_timeouts, 1u);
  EXPECT_GE(result.worker_deaths, 1u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result.payloads[i],
              "cell " + std::to_string(i) + " -> " + std::to_string(i * i));
  }
}

TEST(ProcessBackendTest, KillPlanSchedulesAreInvisibleInTheOutput) {
  SquareGrid reference(16);
  const DistOptions serial_opt;
  const GridResult serial = RunGrid(reference, serial_opt);

  DistOptions opt;
  opt.backend = Backend::kProcess;
  opt.workers = 4;
  opt.kill_plan.events.push_back({.after_results = 2, .slot = 0});
  opt.kill_plan.events.push_back({.after_results = 5, .slot = 3});
  opt.kill_plan.events.push_back({.after_results = 9, .slot = 1});
  SquareGrid grid(16);
  const GridResult result = RunGrid(grid, opt);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.payloads, serial.payloads);
  EXPECT_GE(result.worker_deaths, 3u);
  // The last scheduled kill can land when no work remains, in which case
  // the dead worker is deliberately not replaced.
  EXPECT_GE(result.worker_respawns, 2u);
}

TEST(ProcessBackendTest, PreCancelledFleetDrainsImmediately) {
  SquareGrid grid(8);
  DistOptions opt;
  opt.backend = Backend::kProcess;
  opt.workers = 2;
  std::atomic<bool> cancel{true};
  opt.cancel = &cancel;
  const GridResult result = RunGrid(grid, opt);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.exec.interrupted);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(result.states[i], CellState::kPending);
  }
}

TEST(ProcessBackendTest, CheckpointedProcessRunResumesOnThreadBackend) {
  // Backend symmetry across the checkpoint boundary: a process-backend run
  // persists cells the thread backend can replay, and vice versa.
  const std::string dir = TempDir("cross_backend");
  ckpt::ManifestStore store(dir, 11);

  SquareGrid grid(10);
  DistOptions proc_opt;
  proc_opt.backend = Backend::kProcess;
  proc_opt.workers = 2;
  proc_opt.store = &store;
  const GridResult written = RunGrid(grid, proc_opt);
  ASSERT_TRUE(written.complete);

  DistOptions thread_opt;
  thread_opt.workers = 2;
  thread_opt.store = &store;
  thread_opt.resume = true;
  const GridResult resumed = RunGrid(grid, thread_opt);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.exec.cells_resumed, 10u);
  EXPECT_EQ(resumed.payloads, written.payloads);
}

}  // namespace
}  // namespace cnv::dist
