#include "sim/channel.h"

#include <gtest/gtest.h>

namespace cnv::sim {
namespace {

TEST(ChannelTest, PeakRatesMatchPaperFigures) {
  EXPECT_DOUBLE_EQ(PeakRateMbps(Modulation::k64Qam, Direction::kDownlink),
                   21.1);
  EXPECT_DOUBLE_EQ(PeakRateMbps(Modulation::k16Qam, Direction::kDownlink),
                   11.0);
  EXPECT_GT(PeakRateMbps(Modulation::k16Qam, Direction::kUplink),
            PeakRateMbps(Modulation::kQpsk, Direction::kUplink));
}

TEST(ChannelTest, IdleChannelUses64QamDownlink) {
  SharedChannel ch;
  EXPECT_EQ(ch.PsModulation(Direction::kDownlink), Modulation::k64Qam);
  EXPECT_EQ(ch.PsModulation(Direction::kUplink), Modulation::k16Qam);
}

TEST(ChannelTest, CsCallDisables64Qam) {
  // Figure 10: once the voice call starts, 64QAM is disabled.
  SharedChannel ch;
  ch.SetCsCallActive(true);
  EXPECT_EQ(ch.PsModulation(Direction::kDownlink), Modulation::k16Qam);
  EXPECT_EQ(ch.PsModulation(Direction::kUplink), Modulation::kQpsk);
}

TEST(ChannelTest, DecouplingKeepsHighRateModulation) {
  SharedChannel ch;
  ch.set_decoupled(true);
  ch.SetCsCallActive(true);
  EXPECT_EQ(ch.PsModulation(Direction::kDownlink), Modulation::k64Qam);
  EXPECT_EQ(ch.PsModulation(Direction::kUplink), Modulation::k16Qam);
}

TEST(ChannelTest, DownlinkDropIsLargeAndBeyondModulationAlone) {
  // §6.2: the PS rate degrades "beyond expectation": ~74% down, although
  // the modulation halving alone would predict ~48%.
  SharedChannel ch;  // default policy: 16QAM + 0.5 scheduler penalty
  const double load = 0.6;
  const double without = ch.PsThroughputMbps(Direction::kDownlink, load);
  ch.SetCsCallActive(true);
  const double with = ch.PsThroughputMbps(Direction::kDownlink, load);
  const double drop = 1.0 - with / without;
  EXPECT_NEAR(drop, 0.74, 0.02);
}

TEST(ChannelTest, OpIUplinkDropMatchesModulationChange) {
  // OP-I's 51.1% uplink drop is explained by 16QAM -> QPSK alone.
  ChannelPolicy op1;
  op1.ul_call_penalty = 1.0;
  SharedChannel ch(op1);
  const double load = 0.6;
  const double without = ch.PsThroughputMbps(Direction::kUplink, load);
  ch.SetCsCallActive(true);
  const double with = ch.PsThroughputMbps(Direction::kUplink, load);
  EXPECT_NEAR(1.0 - with / without, 0.51, 0.02);
}

TEST(ChannelTest, OpIIUplinkCollapses) {
  // OP-II throttles uplink PS to near nothing during calls (96.1% drop).
  ChannelPolicy op2;
  op2.ul_call_penalty = 0.08;
  SharedChannel ch(op2);
  const double load = 0.6;
  const double without = ch.PsThroughputMbps(Direction::kUplink, load);
  ch.SetCsCallActive(true);
  const double with = ch.PsThroughputMbps(Direction::kUplink, load);
  EXPECT_NEAR(1.0 - with / without, 0.96, 0.02);
}

TEST(ChannelTest, DecoupledThroughputUnaffectedByCall) {
  SharedChannel ch;
  ch.set_decoupled(true);
  const double before = ch.PsThroughputMbps(Direction::kDownlink, 0.6);
  ch.SetCsCallActive(true);
  const double after = ch.PsThroughputMbps(Direction::kDownlink, 0.6);
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(ChannelTest, VoiceAlwaysSatisfied) {
  SharedChannel coupled;
  coupled.SetCsCallActive(true);
  EXPECT_DOUBLE_EQ(coupled.CsThroughputKbps(), kCsVoiceRateKbps);
  SharedChannel idle;
  EXPECT_DOUBLE_EQ(idle.CsThroughputKbps(), 0.0);
}

TEST(ChannelTest, ThroughputScalesWithLoad) {
  SharedChannel ch;
  EXPECT_GT(ch.PsThroughputMbps(Direction::kDownlink, 0.8),
            ch.PsThroughputMbps(Direction::kDownlink, 0.4));
  EXPECT_DOUBLE_EQ(ch.PsThroughputMbps(Direction::kDownlink, 0.0), 0.0);
  EXPECT_THROW(ch.PsThroughputMbps(Direction::kDownlink, 1.5),
               std::invalid_argument);
  EXPECT_THROW(ch.PsThroughputMbps(Direction::kDownlink, -0.1),
               std::invalid_argument);
}

TEST(ChannelTest, TimeOfDayLoadCoversAllBinsAndWraps) {
  for (int h = 0; h < 24; ++h) {
    const double l = TimeOfDayLoad(h);
    EXPECT_GT(l, 0.3) << h;
    EXPECT_LT(l, 0.9) << h;
  }
  EXPECT_DOUBLE_EQ(TimeOfDayLoad(25), TimeOfDayLoad(1));
  EXPECT_DOUBLE_EQ(TimeOfDayLoad(-1), TimeOfDayLoad(23));
  // Evenings are busier than nights.
  EXPECT_LT(TimeOfDayLoad(18), TimeOfDayLoad(0));
}

TEST(ChannelTest, ModulationNames) {
  EXPECT_EQ(ToString(Modulation::k64Qam), "64QAM");
  EXPECT_EQ(ToString(Modulation::k16Qam), "16QAM");
  EXPECT_EQ(ToString(Modulation::kQpsk), "QPSK");
}

}  // namespace
}  // namespace cnv::sim
