// Crash-safe campaign execution: the RunOutcome codec must be lossless, a
// resumed campaign must replay completed cells from their blobs into a
// byte-identical report at any parallelism, corrupted cell blobs must be
// discarded and re-run, the watchdog/retry loop must account its work, and
// a fired cancel token must drain gracefully.
#include "fault/campaign.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/manifest.h"
#include "fault/checkpoint.h"
#include "gtest/gtest.h"

namespace cnv::fault {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / "campaign_resume" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void FlipPayloadByte(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(in), {});
  in.close();
  ASSERT_FALSE(bytes.empty());
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A small but non-trivial sweep: 2 seeds x 2 finding plans = 4 cells.
CampaignConfig SmallConfig() {
  CampaignConfig cfg;
  cfg.seeds = {1, 2};
  const auto all = plans::Findings();
  cfg.plans = {all[0], all[1]};
  return cfg;
}

void ExpectSameReport(const MonitorReport& a, const MonitorReport& b) {
  ASSERT_EQ(a.properties.size(), b.properties.size());
  for (std::size_t i = 0; i < a.properties.size(); ++i) {
    SCOPED_TRACE("property #" + std::to_string(i));
    EXPECT_EQ(a.properties[i].name, b.properties[i].name);
    EXPECT_EQ(a.properties[i].established, b.properties[i].established);
    EXPECT_EQ(a.properties[i].ok_at_end, b.properties[i].ok_at_end);
    EXPECT_EQ(a.properties[i].outages, b.properties[i].outages);
    EXPECT_EQ(a.properties[i].total_outage, b.properties[i].total_outage);
    EXPECT_EQ(a.properties[i].longest_outage, b.properties[i].longest_outage);
    EXPECT_EQ(a.properties[i].slo, b.properties[i].slo);
  }
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].id, b.findings[i].id);
    EXPECT_EQ(a.findings[i].detail, b.findings[i].detail);
  }
}

void ExpectSameOutcome(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.profile, b.profile);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.trace_log, b.trace_log);
  ExpectSameReport(a.report, b.report);
  ASSERT_EQ(a.telemetry.has_value(), b.telemetry.has_value());
  if (a.telemetry.has_value()) {
    EXPECT_EQ(a.telemetry->ToJson(), b.telemetry->ToJson());
  }
}

TEST(RunOutcomeCodecTest, RoundTripsWithTelemetryAndTrace) {
  CampaignConfig cfg = SmallConfig();
  cfg.collect_telemetry = true;
  const CampaignRunner runner(cfg, /*keep_traces=*/true);
  const RunOutcome out = runner.RunOne(1, cfg.plans[0], stack::OpI());
  ASSERT_TRUE(out.telemetry.has_value());
  ASSERT_FALSE(out.trace_log.empty());

  const std::string payload = EncodeRunOutcome(out);
  RunOutcome decoded;
  ASSERT_TRUE(DecodeRunOutcome(payload, &decoded));
  ExpectSameOutcome(decoded, out);
  // Re-encoding the decoded outcome is the strongest lossless check.
  EXPECT_EQ(EncodeRunOutcome(decoded), payload);
}

TEST(RunOutcomeCodecTest, RoundTripsWithoutTelemetry) {
  const CampaignConfig cfg = SmallConfig();
  const CampaignRunner runner(cfg);
  const RunOutcome out = runner.RunOne(2, cfg.plans[1], stack::OpI());
  EXPECT_FALSE(out.telemetry.has_value());
  RunOutcome decoded;
  ASSERT_TRUE(DecodeRunOutcome(EncodeRunOutcome(out), &decoded));
  ExpectSameOutcome(decoded, out);
}

TEST(RunOutcomeCodecTest, RejectsDamagedPayloads) {
  const CampaignConfig cfg = SmallConfig();
  const std::string payload =
      EncodeRunOutcome(CampaignRunner(cfg).RunOne(1, cfg.plans[0],
                                                  stack::OpI()));
  RunOutcome out;
  EXPECT_FALSE(DecodeRunOutcome("", &out));
  EXPECT_FALSE(DecodeRunOutcome("garbage", &out));
  EXPECT_FALSE(DecodeRunOutcome(
      std::string_view(payload).substr(0, payload.size() / 2), &out));
  EXPECT_FALSE(DecodeRunOutcome(payload + "x", &out));
}

TEST(CampaignConfigDigestTest, IgnoresExecutionKnobsButNotTheSweep) {
  CampaignConfig base = SmallConfig();
  const std::uint64_t digest = CampaignRunner(base).ConfigDigest();

  CampaignConfig execution = base;
  execution.parallelism = 4;
  execution.checkpoint_dir = "/somewhere/else";
  execution.resume = true;
  execution.retry.max_retries = 3;
  execution.retry.cell_timeout_ms = 1000;
  EXPECT_EQ(CampaignRunner(execution).ConfigDigest(), digest);

  CampaignConfig more_seeds = base;
  more_seeds.seeds.push_back(3);
  EXPECT_NE(CampaignRunner(more_seeds).ConfigDigest(), digest);

  CampaignConfig fewer_plans = base;
  fewer_plans.plans.pop_back();
  EXPECT_NE(CampaignRunner(fewer_plans).ConfigDigest(), digest);
}

class CampaignResumeTest : public testing::Test {
 protected:
  // Full checkpointed run: the baseline report plus a complete manifest.
  CampaignResult Baseline(const std::string& dir) {
    CampaignConfig cfg = SmallConfig();
    cfg.checkpoint_dir = dir;
    const CampaignResult result = CampaignRunner(cfg).Run();
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.exec.cells_run, result.runs.size());
    EXPECT_EQ(result.exec.cells_resumed, 0u);
    return result;
  }

  // Clears the done bit for `cleared` cells, simulating a crash that lost
  // that part of the sweep's progress.
  void ClearCells(const std::string& dir,
                  const std::vector<std::size_t>& cleared) {
    const ckpt::ManifestStore store(
        dir, CampaignRunner(SmallConfig()).ConfigDigest());
    ckpt::Manifest manifest;
    ASSERT_EQ(store.LoadManifest(&manifest), ckpt::LoadStatus::kOk);
    for (const std::size_t i : cleared) {
      ASSERT_LT(i, manifest.cells.size());
      manifest.cells[i] = ckpt::CellRecord{};
    }
    ASSERT_TRUE(store.SaveManifest(manifest));
  }

  CampaignResult Resume(const std::string& dir, int parallelism) {
    CampaignConfig cfg = SmallConfig();
    cfg.checkpoint_dir = dir;
    cfg.resume = true;
    cfg.parallelism = parallelism;
    return CampaignRunner(cfg).Run();
  }
};

TEST_F(CampaignResumeTest, PartialManifestResumesByteIdentical) {
  for (const int parallelism : {1, 4}) {
    SCOPED_TRACE("parallelism=" + std::to_string(parallelism));
    const std::string dir =
        FreshDir("partial-p" + std::to_string(parallelism));
    const CampaignResult baseline = Baseline(dir);
    ClearCells(dir, {1, 3});

    const CampaignResult resumed = Resume(dir, parallelism);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.exec.cells_total, baseline.runs.size());
    EXPECT_EQ(resumed.exec.cells_resumed, 2u);
    EXPECT_EQ(resumed.exec.cells_run, 2u);
    EXPECT_EQ(resumed.exec.corrupt_cells_discarded, 0u);

    EXPECT_EQ(resumed.Summary(), baseline.Summary());
    ASSERT_EQ(resumed.runs.size(), baseline.runs.size());
    for (std::size_t i = 0; i < resumed.runs.size(); ++i) {
      SCOPED_TRACE("cell #" + std::to_string(i));
      ExpectSameOutcome(resumed.runs[i], baseline.runs[i]);
    }
  }
}

TEST_F(CampaignResumeTest, FullyCompleteManifestReplaysEverything) {
  const std::string dir = FreshDir("complete");
  const CampaignResult baseline = Baseline(dir);
  const CampaignResult resumed = Resume(dir, 1);
  EXPECT_EQ(resumed.exec.cells_resumed, baseline.runs.size());
  EXPECT_EQ(resumed.exec.cells_run, 0u);
  EXPECT_EQ(resumed.Summary(), baseline.Summary());
}

TEST_F(CampaignResumeTest, CorruptedCellBlobIsDiscardedAndReRun) {
  const std::string dir = FreshDir("corrupt-cell");
  const CampaignResult baseline = Baseline(dir);
  const ckpt::ManifestStore store(
      dir, CampaignRunner(SmallConfig()).ConfigDigest());
  FlipPayloadByte(store.CellPath(0));

  const CampaignResult resumed = Resume(dir, 1);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.exec.corrupt_cells_discarded, 1u);
  EXPECT_EQ(resumed.exec.cells_run, 1u);
  EXPECT_EQ(resumed.exec.cells_resumed, baseline.runs.size() - 1);
  EXPECT_EQ(resumed.Summary(), baseline.Summary());
}

TEST_F(CampaignResumeTest, MissingCellBlobIsDiscardedAndReRun) {
  const std::string dir = FreshDir("missing-cell");
  const CampaignResult baseline = Baseline(dir);
  const ckpt::ManifestStore store(
      dir, CampaignRunner(SmallConfig()).ConfigDigest());
  fs::remove(store.CellPath(2));

  const CampaignResult resumed = Resume(dir, 1);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.exec.corrupt_cells_discarded, 1u);
  EXPECT_EQ(resumed.Summary(), baseline.Summary());
}

TEST(CampaignCancelTest, PreCancelledTokenDrainsImmediately) {
  ckpt::CancelToken cancel;
  cancel.Cancel();
  CampaignConfig cfg = SmallConfig();
  cfg.cancel = &cancel;
  const CampaignResult result = CampaignRunner(cfg).Run();
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.exec.interrupted);
  EXPECT_EQ(result.exec.cells_run, 0u);
}

TEST(CampaignCancelTest, DrainedRunResumesToCompletion) {
  // Cancel before the sweep, but with a checkpoint dir: the manifest must
  // land on disk so a later resume can finish the job.
  const std::string dir = FreshDir("drain-resume");
  ckpt::CancelToken cancel;
  cancel.Cancel();
  CampaignConfig cfg = SmallConfig();
  cfg.cancel = &cancel;
  cfg.checkpoint_dir = dir;
  const CampaignResult interrupted = CampaignRunner(cfg).Run();
  ASSERT_FALSE(interrupted.complete);

  CampaignConfig resume_cfg = SmallConfig();
  resume_cfg.checkpoint_dir = dir;
  resume_cfg.resume = true;
  const CampaignResult resumed = CampaignRunner(resume_cfg).Run();
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.exec.cells_run, resumed.runs.size());

  // And it matches a never-interrupted run of the same sweep.
  const CampaignResult plain = CampaignRunner(SmallConfig()).Run();
  EXPECT_EQ(resumed.Summary(), plain.Summary());
}

TEST(CampaignWatchdogTest, OverrunningCellsAreRetriedAndAccounted) {
  // A fake clock that advances 10ms per sample makes every attempt overrun
  // the 1ms budget; each of the 4 cells burns its one retry and keeps the
  // last attempt's (deterministic) outcome anyway.
  CampaignConfig cfg = SmallConfig();
  cfg.retry.cell_timeout_ms = 1;
  cfg.retry.max_retries = 1;
  auto now = std::make_shared<std::int64_t>(0);
  cfg.retry.wall_ms_for_test = [now] { return *now += 10; };
  auto slept = std::make_shared<std::vector<std::int64_t>>();
  cfg.retry.sleep_ms_for_test = [slept](std::int64_t ms) {
    slept->push_back(ms);
  };
  const CampaignResult result = CampaignRunner(cfg).Run();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.exec.retries, 4u);
  EXPECT_EQ(result.exec.watchdog_hits, 8u);  // 2 attempts per cell overran
  EXPECT_EQ(slept->size(), 4u);  // one backoff sleep per retried cell

  const CampaignResult plain = CampaignRunner(SmallConfig()).Run();
  EXPECT_EQ(result.Summary(), plain.Summary());
}

TEST(RunWithRetriesTest, WatchdogOverrunTriggersRetry) {
  ckpt::RetryPolicy policy;
  policy.cell_timeout_ms = 100;
  policy.max_retries = 2;
  // Clock samples: attempt 1 spans 0 -> 200 (overrun), attempt 2 spans
  // 200 -> 250 (within budget).
  auto samples = std::make_shared<std::vector<std::int64_t>>(
      std::vector<std::int64_t>{0, 200, 200, 250});
  auto idx = std::make_shared<std::size_t>(0);
  policy.wall_ms_for_test = [samples, idx]() -> std::int64_t {
    const std::size_t i = std::min(*idx, samples->size() - 1);
    ++*idx;
    return (*samples)[i];
  };
  std::vector<std::int64_t> slept;
  policy.sleep_ms_for_test = [&slept](std::int64_t ms) {
    slept.push_back(ms);
  };
  int attempts = 0;
  const ckpt::RetryOutcome out =
      ckpt::RunWithRetries(policy, [&attempts] { return ++attempts > 0; });
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.retries, 1u);
  EXPECT_EQ(out.watchdog_hits, 1u);
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(slept, (std::vector<std::int64_t>{100}));
}

TEST(RunWithRetriesTest, FailingAttemptExhaustsRetriesWithBackoff) {
  ckpt::RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_initial_ms = 100;
  policy.backoff_multiplier = 2.0;
  std::vector<std::int64_t> slept;
  policy.sleep_ms_for_test = [&slept](std::int64_t ms) {
    slept.push_back(ms);
  };
  int attempts = 0;
  const ckpt::RetryOutcome out = ckpt::RunWithRetries(policy, [&attempts] {
    ++attempts;
    return false;
  });
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.retries, 2u);
  EXPECT_EQ(out.watchdog_hits, 0u);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(slept, (std::vector<std::int64_t>{100, 200}));
}

TEST(RunWithRetriesTest, BackoffIsCappedAtBackoffMax) {
  ckpt::RetryPolicy policy;
  policy.max_retries = 4;
  policy.backoff_initial_ms = 100;
  policy.backoff_multiplier = 3.0;
  policy.backoff_max_ms = 500;
  std::vector<std::int64_t> slept;
  policy.sleep_ms_for_test = [&slept](std::int64_t ms) {
    slept.push_back(ms);
  };
  const ckpt::RetryOutcome out =
      ckpt::RunWithRetries(policy, [] { return false; });
  EXPECT_FALSE(out.ok);
  // 100 -> 300 -> 900-capped-to-500 -> stays 500.
  EXPECT_EQ(slept, (std::vector<std::int64_t>{100, 300, 500, 500}));
}

TEST(RunWithRetriesTest, CapAppliesToAnOversizedInitialBackoff) {
  ckpt::RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_initial_ms = 10'000;
  policy.backoff_max_ms = 250;
  std::vector<std::int64_t> slept;
  policy.sleep_ms_for_test = [&slept](std::int64_t ms) {
    slept.push_back(ms);
  };
  (void)ckpt::RunWithRetries(policy, [] { return false; });
  EXPECT_EQ(slept, (std::vector<std::int64_t>{250, 250}));
}

TEST(RunWithRetriesTest, HugeMultiplierManyRetriesDoesNotOverflow) {
  // Without the double-precision clamp, ~40 doublings of the backoff
  // overflow int64 (UB on the cast). With the cap the sleeps saturate.
  ckpt::RetryPolicy policy;
  policy.max_retries = 100;
  policy.backoff_initial_ms = 1;
  policy.backoff_multiplier = 1e9;
  policy.backoff_max_ms = 3;
  std::vector<std::int64_t> slept;
  policy.sleep_ms_for_test = [&slept](std::int64_t ms) {
    slept.push_back(ms);
  };
  int attempts = 0;
  const ckpt::RetryOutcome out = ckpt::RunWithRetries(policy, [&attempts] {
    ++attempts;
    return false;
  });
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(attempts, 101);
  ASSERT_EQ(slept.size(), 100u);
  EXPECT_EQ(slept.front(), 1);
  for (const std::int64_t ms : slept) {
    EXPECT_GE(ms, 1);
    EXPECT_LE(ms, 3);
  }
  EXPECT_EQ(slept.back(), 3);
}

TEST(RunWithRetriesTest, ZeroCapMeansUncapped) {
  ckpt::RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_initial_ms = 100;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_ms = 0;  // explicit opt-out
  std::vector<std::int64_t> slept;
  policy.sleep_ms_for_test = [&slept](std::int64_t ms) {
    slept.push_back(ms);
  };
  (void)ckpt::RunWithRetries(policy, [] { return false; });
  EXPECT_EQ(slept, (std::vector<std::int64_t>{100, 200, 400}));
}

TEST(RunWithRetriesTest, FirstTrySuccessNeedsNoRetry) {
  ckpt::RetryPolicy policy;
  policy.max_retries = 5;
  const ckpt::RetryOutcome out =
      ckpt::RunWithRetries(policy, [] { return true; });
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_EQ(out.watchdog_hits, 0u);
}

}  // namespace
}  // namespace cnv::fault
