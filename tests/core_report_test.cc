#include "core/report.h"

#include <gtest/gtest.h>

namespace cnv::core {
namespace {

TEST(ReportTest, StandardsPipelineConfirmsAllSix) {
  const auto report = RunPipeline();
  EXPECT_FALSE(report.Clean());
  ASSERT_EQ(report.confirmed.size(), 6u);
  EXPECT_EQ(report.confirmed.front(), FindingId::kS1);
  EXPECT_EQ(report.confirmed.back(), FindingId::kS6);
}

TEST(ReportTest, RemediedPipelineIsClean) {
  PipelineOptions opt;
  opt.with_solutions = true;
  const auto report = RunPipeline(opt);
  EXPECT_TRUE(report.Clean());
  EXPECT_TRUE(report.screening.findings_found.empty());
}

TEST(ReportTest, MarkdownContainsAllSections) {
  const auto report = RunPipeline();
  const auto md = RenderMarkdown(report);
  EXPECT_NE(md.find("# CNetVerifier diagnosis report"), std::string::npos);
  EXPECT_NE(md.find("## Finding summary"), std::string::npos);
  EXPECT_NE(md.find("## Validation evidence"), std::string::npos);
  EXPECT_NE(md.find("## Screening statistics"), std::string::npos);
  EXPECT_NE(md.find("## Counterexamples"), std::string::npos);
  EXPECT_NE(md.find("## Verdict"), std::string::npos);
  for (const char* code : {"S1", "S2", "S3", "S4", "S5", "S6"}) {
    EXPECT_NE(md.find(std::string("| ") + code + " |"), std::string::npos);
  }
  EXPECT_NE(md.find("counterexample"), std::string::npos);
  EXPECT_NE(md.find("Confirmed findings: S1 S2 S3 S4 S5 S6"),
            std::string::npos);
}

TEST(ReportTest, MarkdownReflectsCarrierAsymmetryForS3) {
  const auto report = RunPipeline();
  const auto md = RenderMarkdown(report);
  // S3 row: screening counterexample + observed on OP-II, not on OP-I.
  const auto s3_row_start = md.find("| S3 |");
  ASSERT_NE(s3_row_start, std::string::npos);
  const auto s3_row =
      md.substr(s3_row_start, md.find('\n', s3_row_start) - s3_row_start);
  EXPECT_NE(s3_row.find("counterexample"), std::string::npos);
  EXPECT_NE(s3_row.find("| - | observed |"), std::string::npos);
}

TEST(ReportTest, CounterexamplesCanBeOmitted) {
  const auto report = RunPipeline();
  PipelineOptions opt;
  opt.include_counterexamples = false;
  const auto md = RenderMarkdown(report, opt);
  EXPECT_EQ(md.find("## Counterexamples"), std::string::npos);
}

TEST(ReportTest, CleanVerdictText) {
  PipelineOptions opt;
  opt.with_solutions = true;
  const auto md = RenderMarkdown(RunPipeline(opt), opt);
  EXPECT_NE(md.find("No problematic protocol interactions confirmed"),
            std::string::npos);
  EXPECT_NE(md.find("remedies enabled"), std::string::npos);
}

}  // namespace
}  // namespace cnv::core
