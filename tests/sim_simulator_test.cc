#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/timer.h"

namespace cnv::sim {
namespace {

TEST(SimulatorTest, StartsAtZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Millis(30));
}

TEST(SimulatorTest, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  SimTime fired = -1;
  sim.ScheduleAt(Millis(10), [&] {
    sim.ScheduleIn(Millis(5), [&] { fired = sim.now(); });
  });
  sim.RunAll();
  EXPECT_EQ(fired, Millis(15));
}

TEST(SimulatorTest, RejectsPastAndInvalid) {
  Simulator sim;
  sim.ScheduleAt(Millis(10), [] {});
  sim.RunAll();
  EXPECT_THROW(sim.ScheduleAt(Millis(5), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.ScheduleIn(-1, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.ScheduleAt(Millis(20), nullptr), std::invalid_argument);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(sim.now(), Seconds(5));
  EXPECT_THROW(sim.RunUntil(Seconds(1)), std::invalid_argument);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(Millis(10), [&] { ++fired; });
  sim.ScheduleAt(Millis(30), [&] { ++fired; });
  sim.RunUntil(Millis(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Millis(20));
  sim.RunUntil(Millis(40));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.ScheduleAt(Millis(10), [&] { ++fired; });
  sim.Cancel(id);
  sim.RunAll();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.ExecutedEvents(), 0u);
}

TEST(SimulatorTest, CancelledHeadDoesNotBlockRunUntil) {
  // Regression: a cancelled event at the queue head must not let a later
  // event run past the RunUntil boundary.
  Simulator sim;
  int fired = 0;
  const auto id = sim.ScheduleAt(Millis(10), [&] { ++fired; });
  sim.ScheduleAt(Millis(50), [&] { ++fired; });
  sim.Cancel(id);
  sim.RunUntil(Millis(20));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), Millis(20));
}

TEST(SimulatorTest, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.ScheduleAt(Millis(10), [&] { ++fired; });
  sim.RunAll();
  sim.Cancel(id);          // already fired: no-op
  sim.Cancel(id);          // repeated: no-op
  sim.Cancel(987654321u);  // unknown: no-op
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, HandlerMayScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.ScheduleIn(Millis(1), chain);
  };
  sim.ScheduleIn(Millis(1), chain);
  sim.RunAll();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), Millis(10));
  EXPECT_EQ(sim.ExecutedEvents(), 10u);
}

TEST(SimulatorTest, RunAllHonorsLimit) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(Seconds(1), [&] { ++fired; });
  sim.ScheduleAt(Seconds(10), [&] { ++fired; });
  sim.RunAll(Seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Seconds(5));
}

TEST(SimulatorTest, HandlerSlotsStayBoundedAcrossManyCycles) {
  // Regression: handlers_ used to be indexed by the ever-increasing EventId
  // and never shrank, leaking one slot per scheduled event. With the free
  // list, slot usage is bounded by the peak number of pending events.
  Simulator sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    sim.ScheduleIn(Millis(1), [&] { ++fired; });
    sim.Step();
  }
  EXPECT_EQ(fired, 1'000'000u);
  // One live event at a time plus the reserved slot 0.
  EXPECT_LE(sim.HandlerSlots(), 4u);
}

TEST(SimulatorTest, CancelledEventsAlsoRecycleSlots) {
  Simulator sim;
  for (int i = 0; i < 100'000; ++i) {
    const auto id = sim.ScheduleIn(Millis(1), [] {});
    sim.Cancel(id);
    sim.RunUntil(sim.now() + Millis(1));
  }
  EXPECT_EQ(sim.ExecutedEvents(), 0u);
  EXPECT_LE(sim.HandlerSlots(), 4u);
}

TEST(SimulatorTest, StaleIdCannotCancelRecycledSlot) {
  // A handle kept past its event's execution must not cancel a newer event
  // that happens to reuse the same handler slot.
  Simulator sim;
  int first = 0, second = 0;
  const auto id = sim.ScheduleAt(Millis(1), [&] { ++first; });
  sim.RunAll();
  const auto id2 = sim.ScheduleAt(Millis(2), [&] { ++second; });
  EXPECT_NE(id, id2);  // same slot, different generation
  sim.Cancel(id);      // stale: must be a no-op
  sim.RunAll();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(SimulatorTest, TelemetryCountersTrackQueueActivity) {
  Simulator sim;
  const auto id = sim.ScheduleAt(Millis(10), [] {});
  sim.ScheduleAt(Millis(20), [] {});
  sim.ScheduleAt(Millis(30), [] {});
  EXPECT_EQ(sim.ScheduledEvents(), 3u);
  EXPECT_EQ(sim.PeakQueueDepth(), 3u);
  sim.Cancel(id);
  EXPECT_EQ(sim.CancelledEvents(), 1u);
  sim.Cancel(id);  // repeated cancel must not double-count
  EXPECT_EQ(sim.CancelledEvents(), 1u);
  sim.RunAll();
  EXPECT_EQ(sim.ExecutedEvents(), 2u);
  EXPECT_EQ(sim.PeakQueueDepth(), 3u);  // peak is sticky after drain
}

TEST(TimerTest, TimerStatsCountArmedFiredCancelled) {
  Simulator sim;
  Timer a(sim, "fires"), b(sim, "stopped");
  a.Start(Seconds(1), [] {});
  b.Start(Seconds(2), [] {});
  b.Stop();
  a.Start(Seconds(1), [] {});  // re-arm counts as a new arming
  sim.RunAll();
  EXPECT_EQ(sim.timer_stats().armed, 3u);
  EXPECT_EQ(sim.timer_stats().fired, 1u);
  EXPECT_EQ(sim.timer_stats().cancelled, 2u);  // explicit Stop + re-arm
}

TEST(TimerTest, FiresOnceAfterDuration) {
  Simulator sim;
  Timer t(sim, "T3410");
  int fired = 0;
  t.Start(Seconds(15), [&] { ++fired; });
  EXPECT_TRUE(t.IsRunning());
  sim.RunAll();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.IsRunning());
  EXPECT_EQ(sim.now(), Seconds(15));
}

TEST(TimerTest, StopCancels) {
  Simulator sim;
  Timer t(sim, "T3410");
  int fired = 0;
  t.Start(Seconds(15), [&] { ++fired; });
  t.Stop();
  sim.RunAll();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(t.IsRunning());
}

TEST(TimerTest, RestartSupersedesPreviousDeadline) {
  Simulator sim;
  Timer t(sim, "guard");
  std::vector<SimTime> fires;
  t.Start(Seconds(10), [&] { fires.push_back(sim.now()); });
  sim.RunUntil(Seconds(5));
  t.Start(Seconds(10), [&] { fires.push_back(sim.now()); });  // re-arm
  sim.RunAll();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], Seconds(15));
}

TEST(TimerTest, DestructionCancelsPending) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim, "scoped");
    t.Start(Seconds(1), [&] { ++fired; });
  }
  sim.RunAll();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace cnv::sim
