#include "mck/dot.h"

#include <gtest/gtest.h>

#include "mck/toy_models.h"
#include "model/s3_model.h"

namespace cnv::mck {
namespace {

using toys::CounterModel;

TEST(DotTest, ContainsAllNodesAndEdges) {
  CounterModel m;  // 5 states in a chain
  const auto dot = ExportDot(m);
  EXPECT_NE(dot.find("digraph model"), std::string::npos);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " [label="),
              std::string::npos);
  }
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n3 -> n4"), std::string::npos);
  EXPECT_NE(dot.find("increment by 1"), std::string::npos);
  EXPECT_EQ(dot.find("truncated"), std::string::npos);
}

TEST(DotTest, InitialNodeIsBold) {
  CounterModel m;
  const auto dot = ExportDot(m);
  EXPECT_NE(dot.find("n0 [label=\"s0\", style=bold]"), std::string::npos);
}

TEST(DotTest, CustomLabelsAndHighlights) {
  CounterModel m;
  m.buggy = true;
  DotOptions<CounterModel::State> opt;
  opt.label = [](const CounterModel::State& s) {
    return "value=" + std::to_string(s.value);
  };
  opt.highlight = [&m](const CounterModel::State& s) {
    return s.value > m.cap;
  };
  const auto dot = ExportDot(m, opt);
  EXPECT_NE(dot.find("value=0"), std::string::npos);
  EXPECT_NE(dot.find("value=5"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightcoral"), std::string::npos);
}

TEST(DotTest, TruncationIsMarked) {
  CounterModel m;
  m.cap = 1000;
  DotOptions<CounterModel::State> opt;
  opt.max_states = 10;
  const auto dot = ExportDot(m, opt);
  EXPECT_NE(dot.find("truncated"), std::string::npos);
}

TEST(DotTest, EscapesQuotesInLabels) {
  CounterModel m;
  DotOptions<CounterModel::State> opt;
  opt.label = [](const CounterModel::State&) { return "say \"hi\""; };
  const auto dot = ExportDot(m, opt);
  EXPECT_NE(dot.find("say \\\"hi\\\""), std::string::npos);
}

TEST(DotTest, S3ModelExportsItsRrcGraph) {
  model::S3Model m;
  DotOptions<model::S3Model::State> opt;
  opt.label = [](const model::S3Model::State& s) {
    return model::ToString(s.rrc3g) + "/" + model::ToString(s.data);
  };
  opt.highlight = [&m](const model::S3Model::State& s) {
    return m.StuckIn3g(s);
  };
  const auto dot = ExportDot(m, opt);
  EXPECT_NE(dot.find("DCH"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightcoral"), std::string::npos);  // stuck
  EXPECT_NE(dot.find("CSFB call"), std::string::npos);
}

}  // namespace
}  // namespace cnv::mck
