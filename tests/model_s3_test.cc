#include "model/s3_model.h"

#include <gtest/gtest.h>

#include "mck/explorer.h"

namespace cnv::model {
namespace {

using mck::Explore;

TEST(S3ModelTest, CellReselectionPolicyViolatesMmOk) {
  S3Model m;  // default: cell reselection (the OP-II configuration)
  const auto r = Explore(m, m.Properties());
  ASSERT_FALSE(r.Holds(kMmOk));
  const auto* v = r.FindViolation(kMmOk);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(m.StuckIn3g(v->state));
  EXPECT_EQ(v->state.call, S3Model::Call::kEnded);
  EXPECT_NE(v->state.data, DataRate::kNone);
}

TEST(S3ModelTest, HighRateDataSticksAtDch) {
  S3Model::Config cfg;
  cfg.allow_low_rate = false;  // only the high-rate scenario of this paper
  S3Model m(cfg);
  const auto r = Explore(m, m.Properties());
  const auto* v = r.FindViolation(kMmOk);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->state.rrc3g, Rrc3g::kDch);
  EXPECT_EQ(v->state.data, DataRate::kHigh);
}

TEST(S3ModelTest, LowRateDataAlsoGetsStuck) {
  // The prior-work ([27]) variant: low-rate data pins FACH, still != IDLE.
  S3Model::Config cfg;
  cfg.allow_high_rate = false;
  S3Model m(cfg);
  const auto r = Explore(m, m.Properties());
  const auto* v = r.FindViolation(kMmOk);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->state.rrc3g, Rrc3g::kIdle);
}

TEST(S3ModelTest, ReleaseWithRedirectDoesNotGetStuck) {
  S3Model::Config cfg;
  cfg.policy = SwitchPolicy::kReleaseWithRedirect;  // the OP-I configuration
  S3Model m(cfg);
  const auto r = Explore(m, m.Properties());
  EXPECT_TRUE(r.Holds(kMmOk));
}

TEST(S3ModelTest, ReleaseWithRedirectDisruptsData) {
  // The OP-I trade-off (§5.3.2): the switch works but the ongoing data
  // session is disrupted.
  S3Model::Config cfg;
  cfg.policy = SwitchPolicy::kReleaseWithRedirect;
  S3Model m(cfg);
  auto s = m.initial();
  s = m.apply(s, {S3Model::Kind::kStartData, DataRate::kHigh});
  s = m.apply(s, {S3Model::Kind::kMakeCsfbCall, {}});
  s = m.apply(s, {S3Model::Kind::kEndCall, {}});
  s = m.apply(s, {S3Model::Kind::kSwitchBackTo4g, {}});
  EXPECT_EQ(s.serving, S3Model::Sys::k4G);
  EXPECT_TRUE(s.data_disrupted);
}

TEST(S3ModelTest, HandoverAvoidsBothProblems) {
  S3Model::Config cfg;
  cfg.policy = SwitchPolicy::kHandover;
  S3Model m(cfg);
  const auto r = Explore(m, m.Properties());
  EXPECT_TRUE(r.Holds(kMmOk));
  auto s = m.initial();
  s = m.apply(s, {S3Model::Kind::kStartData, DataRate::kHigh});
  s = m.apply(s, {S3Model::Kind::kMakeCsfbCall, {}});
  s = m.apply(s, {S3Model::Kind::kEndCall, {}});
  s = m.apply(s, {S3Model::Kind::kSwitchBackTo4g, {}});
  EXPECT_FALSE(s.data_disrupted);
}

TEST(S3ModelTest, CsfbTagFixUnsticksCellReselection) {
  S3Model::Config cfg;
  cfg.policy = SwitchPolicy::kCellReselection;
  cfg.fix_csfb_tag = true;  // §8 domain decoupling remedy
  S3Model m(cfg);
  const auto r = Explore(m, m.Properties());
  EXPECT_TRUE(r.Holds(kMmOk));
}

TEST(S3ModelTest, WithoutDataTheCallEventuallyReturnsTo4g) {
  S3Model m;
  auto s = m.initial();
  s = m.apply(s, {S3Model::Kind::kMakeCsfbCall, {}});
  EXPECT_EQ(s.serving, S3Model::Sys::k3G);
  EXPECT_EQ(s.rrc3g, Rrc3g::kDch);
  s = m.apply(s, {S3Model::Kind::kEndCall, {}});
  EXPECT_FALSE(m.StuckIn3g(s));  // no data: demotion path exists
  s = m.apply(s, {S3Model::Kind::kRrcDemote, {}});
  EXPECT_EQ(s.rrc3g, Rrc3g::kFach);
  s = m.apply(s, {S3Model::Kind::kRrcDemote, {}});
  EXPECT_EQ(s.rrc3g, Rrc3g::kIdle);
  // Now reselection is enabled.
  bool switch_enabled = false;
  for (const auto& a : m.enabled(s)) {
    switch_enabled |= a.kind == S3Model::Kind::kSwitchBackTo4g;
  }
  EXPECT_TRUE(switch_enabled);
  s = m.apply(s, {S3Model::Kind::kSwitchBackTo4g, {}});
  EXPECT_EQ(s.serving, S3Model::Sys::k4G);
}

TEST(S3ModelTest, StuckStateOffersNoSwitchAction) {
  S3Model m;
  auto s = m.initial();
  s = m.apply(s, {S3Model::Kind::kStartData, DataRate::kHigh});
  s = m.apply(s, {S3Model::Kind::kMakeCsfbCall, {}});
  s = m.apply(s, {S3Model::Kind::kEndCall, {}});
  ASSERT_TRUE(m.StuckIn3g(s));
  for (const auto& a : m.enabled(s)) {
    EXPECT_NE(a.kind, S3Model::Kind::kSwitchBackTo4g);
    EXPECT_NE(a.kind, S3Model::Kind::kRrcDemote);  // DCH pinned by data
  }
}

TEST(S3ModelTest, StoppingDataUnsticksTheDevice) {
  S3Model m;
  auto s = m.initial();
  s = m.apply(s, {S3Model::Kind::kStartData, DataRate::kHigh});
  s = m.apply(s, {S3Model::Kind::kMakeCsfbCall, {}});
  s = m.apply(s, {S3Model::Kind::kEndCall, {}});
  s = m.apply(s, {S3Model::Kind::kStopData, {}});
  EXPECT_FALSE(m.StuckIn3g(s));  // the stuck period ends with the session
  s = m.apply(s, {S3Model::Kind::kRrcDemote, {}});
  s = m.apply(s, {S3Model::Kind::kRrcDemote, {}});
  EXPECT_EQ(s.rrc3g, Rrc3g::kIdle);
}

TEST(S3ModelTest, StateSpaceIsExhaustable) {
  S3Model m;
  const auto r = Explore(m, m.Properties());
  EXPECT_FALSE(r.stats.truncated);
  EXPECT_LT(r.stats.states_visited, 5000u);
}

}  // namespace
}  // namespace cnv::model
