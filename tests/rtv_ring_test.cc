// Unit and two-thread stress tests for the bounded lock-free SPSC ring that
// hands records from the ingest thread to the monitor thread. The stress
// tests are the ones CI runs under TSan.
#include "rtv/ring.h"

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cnv::rtv {
namespace {

TEST(RingCapacityForTest, RoundsUpToPowersOfTwo) {
  EXPECT_EQ(RingCapacityFor(0), 2u);  // minimum capacity is 2
  EXPECT_EQ(RingCapacityFor(1), 2u);
  EXPECT_EQ(RingCapacityFor(2), 2u);
  EXPECT_EQ(RingCapacityFor(3), 4u);
  EXPECT_EQ(RingCapacityFor(1000), 1024u);
  EXPECT_EQ(RingCapacityFor(1024), 1024u);
  EXPECT_EQ(RingCapacityFor(1025), 2048u);
}

TEST(SpscRingTest, PushPopSingleThreaded) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.EmptyApprox());
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_EQ(ring.SizeApprox(), 2u);
  int v = 0;
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(SpscRingTest, FullRingRejectsPush) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  int v = 0;
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ring.TryPush(99));  // freed slot is reusable
  for (const int want : {1, 2, 3, 99}) {
    EXPECT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, want);
  }
}

TEST(SpscRingTest, WrapsAroundManyTimes) {
  SpscRing<int> ring(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
    int v = -1;
    EXPECT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
}

TEST(SpscRingTest, MoveOnlyElements) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  EXPECT_TRUE(ring.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// --- drop-newest at exact capacity ------------------------------------------
//
// The gateway's kDropNewest policy discards the incoming record whenever
// TryPush reports full, so the ring's full-detection must be exact at every
// tail position: one slot too eager and records are dropped while space
// remains; one slot too lax and the producer overwrites the slot the
// consumer is reading. These tests pin the boundary as the cursors cross
// multiples of the power-of-two capacity.

TEST(SpscRingTest, DropNewestKeepsOldestAndCountsExactlyAcrossWraps) {
  SpscRing<int> ring(8);
  ASSERT_EQ(ring.capacity(), 8u);

  int next = 0;
  std::uint64_t dropped = 0;
  // 100 fill/drain cycles march the cursors across the 2^n boundary 100
  // times. Each cycle offers 13 records to the empty ring: exactly 8 fit,
  // exactly 5 drop, and the survivors are the OLDEST 8 — drop-newest never
  // evicts a record that already made it in.
  for (int cycle = 0; cycle < 100; ++cycle) {
    const int first = next;
    for (int k = 0; k < 13; ++k) {
      if (!ring.TryPush(int{next})) ++dropped;
      ++next;
    }
    EXPECT_EQ(ring.SizeApprox(), 8u);
    for (int k = 0; k < 8; ++k) {
      int v = -1;
      ASSERT_TRUE(ring.TryPop(&v));
      EXPECT_EQ(v, first + k) << "cycle " << cycle;
    }
    int v = -1;
    EXPECT_FALSE(ring.TryPop(&v));
  }
  EXPECT_EQ(dropped, 100u * 5u);
}

TEST(SpscRingTest, FullDetectionIsExactWhenProducerLapsConsumer) {
  // Lockstep at full occupancy: the producer stays exactly one lap ahead of
  // the consumer, so `tail - head` sits at the capacity boundary on every
  // iteration. An off-by-one in the full check would surface as either a
  // rejected push into a free slot or a corrupted FIFO order.
  SpscRing<int> ring(4);
  ASSERT_EQ(ring.capacity(), 4u);
  int next = 0;
  for (; next < 4; ++next) ASSERT_TRUE(ring.TryPush(int{next}));

  for (int i = 0; i < 1000; ++i) {
    int rejected = next;
    EXPECT_FALSE(ring.TryPush(std::move(rejected)));  // full: drop-newest
    int v = -1;
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, next - 4);
    ASSERT_TRUE(ring.TryPush(int{next}));  // freed slot, same iteration
    ++next;
  }
  for (int k = 0; k < 4; ++k) {
    int v = -1;
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, next - 4 + k);
  }
}

// The concurrent tests: one producer, one consumer, every value must come
// out exactly once and in order. Run under TSan in the CI `rtv` job.
TEST(SpscRingTest, ConcurrentOrderedTransfer) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(1024);
  std::vector<std::uint64_t> got;
  got.reserve(kCount);

  std::thread consumer([&] {
    std::uint64_t v = 0;
    while (got.size() < kCount) {
      if (ring.TryPop(&v)) {
        got.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!ring.TryPush(std::uint64_t{i})) std::this_thread::yield();
  }
  consumer.join();

  ASSERT_EQ(got.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(got[i], i) << "out-of-order at " << i;
  }
}

TEST(SpscRingTest, ConcurrentDropNewestConservesEveryRecord) {
  // Under drop-newest with a racing consumer, the exact drop count is
  // schedule-dependent — but conservation is not: every offered value is
  // either delivered exactly once, in order, or counted dropped.
  constexpr std::uint64_t kCount = 200'000;
  constexpr std::uint64_t kEnd = ~0ull;  // sentinel, pushed with retry
  SpscRing<std::uint64_t> ring(16);
  std::vector<std::uint64_t> got;
  std::uint64_t dropped = 0;

  std::thread consumer([&] {
    std::uint64_t v = 0;
    for (;;) {
      if (!ring.TryPop(&v)) {
        std::this_thread::yield();
        continue;
      }
      if (v == kEnd) return;
      got.push_back(v);
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    if (!ring.TryPush(std::uint64_t{i})) ++dropped;  // drop-newest: no retry
  }
  while (!ring.TryPush(std::uint64_t{kEnd})) std::this_thread::yield();
  consumer.join();

  EXPECT_EQ(got.size() + dropped, kCount);
  for (std::size_t i = 1; i < got.size(); ++i) {
    ASSERT_LT(got[i - 1], got[i]) << "reordered at " << i;
  }
}

TEST(SpscRingTest, ConcurrentStringsSurviveIntact) {
  constexpr int kCount = 50'000;
  SpscRing<std::string> ring(64);
  std::uint64_t sum = 0;

  std::thread consumer([&] {
    std::string v;
    for (int i = 0; i < kCount;) {
      if (ring.TryPop(&v)) {
        sum += std::stoull(v);
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kCount; ++i) {
    std::string s = std::to_string(i);
    while (!ring.TryPush(std::move(s))) std::this_thread::yield();
  }
  consumer.join();

  EXPECT_EQ(sum, static_cast<std::uint64_t>(kCount) * (kCount - 1) / 2);
}

}  // namespace
}  // namespace cnv::rtv
