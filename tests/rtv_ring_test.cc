// Unit and two-thread stress tests for the bounded lock-free SPSC ring that
// hands records from the ingest thread to the monitor thread. The stress
// tests are the ones CI runs under TSan.
#include "rtv/ring.h"

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cnv::rtv {
namespace {

TEST(RingCapacityForTest, RoundsUpToPowersOfTwo) {
  EXPECT_EQ(RingCapacityFor(0), 2u);  // minimum capacity is 2
  EXPECT_EQ(RingCapacityFor(1), 2u);
  EXPECT_EQ(RingCapacityFor(2), 2u);
  EXPECT_EQ(RingCapacityFor(3), 4u);
  EXPECT_EQ(RingCapacityFor(1000), 1024u);
  EXPECT_EQ(RingCapacityFor(1024), 1024u);
  EXPECT_EQ(RingCapacityFor(1025), 2048u);
}

TEST(SpscRingTest, PushPopSingleThreaded) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.EmptyApprox());
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_EQ(ring.SizeApprox(), 2u);
  int v = 0;
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(SpscRingTest, FullRingRejectsPush) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  int v = 0;
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ring.TryPush(99));  // freed slot is reusable
  for (const int want : {1, 2, 3, 99}) {
    EXPECT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, want);
  }
}

TEST(SpscRingTest, WrapsAroundManyTimes) {
  SpscRing<int> ring(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
    int v = -1;
    EXPECT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
}

TEST(SpscRingTest, MoveOnlyElements) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  EXPECT_TRUE(ring.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// The concurrent tests: one producer, one consumer, every value must come
// out exactly once and in order. Run under TSan in the CI `rtv` job.
TEST(SpscRingTest, ConcurrentOrderedTransfer) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(1024);
  std::vector<std::uint64_t> got;
  got.reserve(kCount);

  std::thread consumer([&] {
    std::uint64_t v = 0;
    while (got.size() < kCount) {
      if (ring.TryPop(&v)) {
        got.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!ring.TryPush(std::uint64_t{i})) std::this_thread::yield();
  }
  consumer.join();

  ASSERT_EQ(got.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(got[i], i) << "out-of-order at " << i;
  }
}

TEST(SpscRingTest, ConcurrentStringsSurviveIntact) {
  constexpr int kCount = 50'000;
  SpscRing<std::string> ring(64);
  std::uint64_t sum = 0;

  std::thread consumer([&] {
    std::string v;
    for (int i = 0; i < kCount;) {
      if (ring.TryPop(&v)) {
        sum += std::stoull(v);
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kCount; ++i) {
    std::string s = std::to_string(i);
    while (!ring.TryPush(std::move(s))) std::this_thread::yield();
  }
  consumer.join();

  EXPECT_EQ(sum, static_cast<std::uint64_t>(kCount) * (kCount - 1) / 2);
}

}  // namespace
}  // namespace cnv::rtv
