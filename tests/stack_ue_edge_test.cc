// Edge cases and defensive behaviour of the UE state machines.
#include <gtest/gtest.h>

#include "nas/timers.h"
#include "stack/scenarios.h"
#include "stack/testbed.h"
#include "trace/analyze.h"

namespace cnv::stack {
namespace {

TEST(UeEdgeTest, OpsBeforePowerOnAreIgnored) {
  Testbed tb({});
  tb.ue().Dial();
  tb.ue().HangUp();
  tb.ue().CrossAreaBoundary();
  tb.ue().StartDataSession(1.0);
  tb.ue().SwitchTo4g();
  tb.Run(Seconds(1));
  EXPECT_EQ(tb.ue().serving(), nas::System::kNone);
  EXPECT_EQ(tb.ue().call_state(), UeDevice::CallState::kNone);
  EXPECT_EQ(tb.sim().PendingEvents(), 0u);
}

TEST(UeEdgeTest, DoublePowerOnIsIdempotent) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.ue().PowerOn(nas::System::k3G);  // ignored: already powered
  tb.Run(Seconds(3));
  EXPECT_EQ(tb.ue().serving(), nas::System::k4G);
  EXPECT_EQ(tb.ue().attach_attempts_total(), 1u);
}

TEST(UeEdgeTest, AttachGivesUpAfterMaxRetries) {
  TestbedConfig cfg;
  cfg.radio_loss = 1.0;  // nothing gets through
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Minutes(3));
  EXPECT_TRUE(tb.ue().out_of_service());
  EXPECT_EQ(tb.ue().attach_attempts_total(),
            static_cast<std::uint64_t>(nas::timers::kMaxAttachAttempts));
  EXPECT_GE(trace::CountContaining(tb.traces().records(),
                                   "maximum attach attempts reached"),
            1u);
}

TEST(UeEdgeTest, DialWhileCallInProgressIsIgnored) {
  Testbed tb({});
  ASSERT_TRUE(scenario::AttachIn3g(tb));
  tb.Run(Seconds(10));
  tb.ue().Dial();
  tb.ue().Dial();  // second dial: no-op
  ASSERT_TRUE(scenario::RunUntil(
      tb,
      [&] { return tb.ue().call_state() == UeDevice::CallState::kActive; },
      Minutes(2)));
  EXPECT_EQ(tb.ue().calls_connected(), 1u);
}

TEST(UeEdgeTest, HangUpDuringSetupAbandonsCleanly) {
  Testbed tb({});
  ASSERT_TRUE(scenario::AttachIn3g(tb));
  tb.Run(Seconds(10));
  tb.ue().Dial();
  tb.Run(Seconds(2));  // CM accepted, Setup in flight, not yet connected
  tb.ue().HangUp();
  tb.Run(Seconds(30));
  EXPECT_EQ(tb.ue().call_state(), UeDevice::CallState::kNone);
  EXPECT_EQ(tb.ue().calls_connected(), 0u);
  EXPECT_FALSE(tb.channel3g().cs_call_active());
  // The stale Connect from the MSC must not resurrect the call.
  EXPECT_EQ(tb.ue().call_state(), UeDevice::CallState::kNone);
}

TEST(UeEdgeTest, SwitchTo3gWhileAlreadyOn3gIsIgnored) {
  Testbed tb({});
  ASSERT_TRUE(scenario::AttachIn3g(tb));
  const auto traces_before = tb.traces().records().size();
  tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
  tb.Run(Seconds(1));
  EXPECT_EQ(tb.traces().records().size(), traces_before);
}

TEST(UeEdgeTest, EnableDataTwiceIsIdempotent) {
  Testbed tb({});
  ASSERT_TRUE(scenario::AttachIn3g(tb));
  tb.ue().EnableData(true);  // already enabled: no-op
  tb.ue().EnableData(false);
  tb.ue().EnableData(false);  // repeated: no-op
  tb.Run(Seconds(2));
  EXPECT_FALSE(tb.ue().pdp_active());
  const auto deactivations = trace::CountContaining(
      tb.traces().records(), "Deactivate PDP Context Request sent");
  EXPECT_LE(deactivations, 1u);
}

TEST(UeEdgeTest, PowerOffCancelsEverything) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().EnablePeriodicUpdates(Minutes(1));
  tb.ue().StartDataSession(1.0);
  tb.ue().Dial();  // CSFB in flight
  tb.Run(Millis(100));
  tb.ue().PowerOff();
  tb.Run(Minutes(5));
  EXPECT_EQ(tb.ue().serving(), nas::System::kNone);
  EXPECT_EQ(tb.ue().call_state(), UeDevice::CallState::kNone);
  EXPECT_FALSE(tb.ue().data_session_active());
}

TEST(UeEdgeTest, WeakSignalSlowsButDoesNotBreakAttach) {
  TestbedConfig cfg;
  cfg.seed = 9;
  Testbed tb(cfg);
  tb.ue().SetRssi(-112.0);  // the paper's S2 trigger zone (§5.2.2)
  tb.ue().PowerOn(nas::System::k4G);
  const bool attached = scenario::RunUntil(
      tb,
      [&] { return tb.ue().emm_state() == UeDevice::EmmState::kRegistered; },
      Minutes(5));
  // With ~35% loss per leg the attach may need retransmissions, but the
  // guard timers eventually drive it through (or the device retries).
  EXPECT_TRUE(attached);
  EXPECT_GE(tb.ue().attach_attempts_total(), 1u);
}

TEST(UeEdgeTest, CsfbDialWhileDeregisteredDoesNothingHarmful) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  // Dial immediately, before the attach completes.
  tb.ue().Dial();
  tb.Run(Minutes(1));
  // The ESR still goes out; the call eventually establishes after attach.
  EXPECT_TRUE(tb.ue().call_state() == UeDevice::CallState::kActive ||
              tb.ue().call_state() == UeDevice::CallState::kPending ||
              tb.ue().call_state() == UeDevice::CallState::kWaitConnect ||
              tb.ue().call_state() == UeDevice::CallState::kWaitCmAccept);
  EXPECT_FALSE(tb.ue().out_of_service());
}

TEST(UeEdgeTest, StopDataSessionWithoutSessionIsNoOp) {
  Testbed tb({});
  ASSERT_TRUE(scenario::AttachIn4g(tb));
  tb.ue().StopDataSession();
  tb.Run(Seconds(1));
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
}

}  // namespace
}  // namespace cnv::stack
