// End-to-end attach / detach / TAU behaviour of the validation stack.
#include <gtest/gtest.h>

#include "stack/testbed.h"
#include "trace/analyze.h"

namespace cnv::stack {
namespace {

TEST(StackAttachTest, PowerOn4gAttachCompletes) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_TRUE(tb.ue().eps_bearer_active());
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);
  EXPECT_TRUE(tb.mme().bearer_active());
}

TEST(StackAttachTest, AttachTraceHasPaperSequence) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  const auto& rec = tb.traces().records();
  const auto t_req = trace::TimeOfFirst(rec, "Attach Request sent");
  const auto t_acc = trace::TimeOfFirst(rec, "Attach Accept received");
  const auto t_cmp = trace::TimeOfFirst(rec, "Attach Complete sent");
  ASSERT_TRUE(t_req && t_acc && t_cmp);
  EXPECT_LT(*t_req, *t_acc);
  EXPECT_LE(*t_acc, *t_cmp);  // Complete is sent in the same handling step
  EXPECT_EQ(trace::CountContaining(rec, "EMM-REGISTERED"), 1u);
  EXPECT_EQ(trace::CountContaining(rec, "EPS bearer context activated"), 1u);
}

TEST(StackAttachTest, AttachRetransmitsUnderLossAndSucceeds) {
  TestbedConfig cfg;
  cfg.radio_loss = 0.5;
  cfg.seed = 3;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Minutes(3));
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_GE(tb.ue().attach_attempts_total(), 1u);
}

TEST(StackAttachTest, PowerOffSendsDetach) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().PowerOff();
  tb.Run(Seconds(1));
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kDeregistered);
  EXPECT_EQ(tb.ue().serving(), nas::System::kNone);
}

TEST(StackAttachTest, TauAfterAreaCrossingSucceeds) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().CrossAreaBoundary();
  tb.Run(Seconds(2));
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_EQ(trace::CountContaining(tb.traces().records(),
                                   "Tracking Area Update Accept"),
            1u);
}

TEST(StackAttachTest, PowerOn3gRegistersBothDomains) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(10));
  EXPECT_TRUE(tb.msc().registered());
  EXPECT_TRUE(tb.sgsn().registered());
  const auto& rec = tb.traces().records();
  EXPECT_GE(trace::CountContaining(rec, "Location Updating Accept"), 1u);
  EXPECT_GE(trace::CountContaining(rec, "GPRS Attach Accept"), 1u);
}

TEST(StackAttachTest, DataSessionIn3gActivatesPdp) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(10));
  tb.ue().StartDataSession(1.0);
  tb.Run(Seconds(2));
  EXPECT_TRUE(tb.ue().pdp_active());
  EXPECT_TRUE(tb.sgsn().pdp_active());
  EXPECT_EQ(tb.ue().rrc3g(), model::Rrc3g::kDch);  // 1 Mbps holds DCH
}

TEST(StackAttachTest, LowRateDataHoldsFach) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(10));
  tb.ue().StartDataSession(0.05);
  tb.Run(Seconds(30));
  EXPECT_EQ(tb.ue().rrc3g(), model::Rrc3g::kFach);
}

TEST(StackAttachTest, Rrc3gDecaysToIdleWithoutTraffic) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(10));
  tb.ue().StartDataSession(1.0);
  tb.Run(Seconds(5));
  tb.ue().StopDataSession();
  tb.Run(Seconds(30));  // DCH -5s-> FACH -12s-> IDLE
  EXPECT_EQ(tb.ue().rrc3g(), model::Rrc3g::kIdle);
}

TEST(StackAttachTest, ShimLayerCarriesAttachTraffic) {
  TestbedConfig cfg;
  cfg.solutions.shim_layer = true;
  Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);
  ASSERT_NE(tb.ue_shim(), nullptr);
  EXPECT_GE(tb.ue_shim()->delivered(), 1u);  // downlink NAS went through it
}

TEST(StackAttachTest, CurrentRateReflectsServingSystem) {
  Testbed tb({});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  EXPECT_GT(tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12), 5.0);
  tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
  tb.Run(Seconds(10));
  tb.ue().StartDataSession(10.0);
  tb.Run(Seconds(2));
  const double r3g = tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12);
  EXPECT_GT(r3g, 2.0);
  EXPECT_LT(r3g, 21.1);
}

}  // namespace
}  // namespace cnv::stack
