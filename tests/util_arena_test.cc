// Arena allocator suite: zero-initialization, alignment, exact byte
// accounting, and the chunk-sizing policy the struct-of-arrays population
// state depends on (one huge array never straddles chunks).

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "util/arena.h"

namespace cnv {
namespace {

TEST(ArenaTest, ArraysAreZeroInitialized) {
  Arena a;
  auto* p = a.AllocArray<std::uint64_t>(4096);
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 4096; ++i) ASSERT_EQ(p[i], 0u) << i;
}

TEST(ArenaTest, RespectsAlignment) {
  Arena a;
  a.AllocArray<std::uint8_t>(3);  // misalign the bump pointer
  auto* d = a.AllocArray<double>(8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  a.AllocArray<std::uint8_t>(1);
  auto* q = a.AllocArray<std::uint64_t>(8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % alignof(std::uint64_t), 0u);
}

TEST(ArenaTest, TotalBytesCountsPayloadExactly) {
  Arena a;
  EXPECT_EQ(a.TotalBytes(), 0u);
  a.AllocArray<std::uint32_t>(1000);
  EXPECT_EQ(a.TotalBytes(), 4000u);
  a.AllocArray<std::uint8_t>(1);
  EXPECT_EQ(a.TotalBytes(), 4001u);
  EXPECT_GE(a.ReservedBytes(), a.TotalBytes());
}

TEST(ArenaTest, HugeArrayGetsOneChunk) {
  Arena a;
  // Population-scale request far above the chunk floor: must be served out
  // of a single dedicated chunk, not split.
  const std::size_t n = (std::size_t{8} << 20) / sizeof(std::uint64_t);
  auto* p = a.AllocArray<std::uint64_t>(n);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.ChunkCount(), 1u);
  p[0] = 1;
  p[n - 1] = 2;  // both ends writable: contiguous storage
  EXPECT_EQ(p[0] + p[n - 1], 3u);
}

TEST(ArenaTest, SmallAllocationsShareChunks) {
  Arena a;
  for (int i = 0; i < 100; ++i) a.AllocArray<std::uint64_t>(16);
  // 100 x 128 B fits comfortably inside the 1 MiB chunk floor.
  EXPECT_EQ(a.ChunkCount(), 1u);
  EXPECT_EQ(a.TotalBytes(), 100u * 16 * sizeof(std::uint64_t));
}

TEST(ArenaTest, ZeroByteRequestIsNull) {
  Arena a;
  EXPECT_EQ(a.AllocArray<std::uint32_t>(0), nullptr);
  EXPECT_EQ(a.TotalBytes(), 0u);
  EXPECT_EQ(a.ChunkCount(), 0u);
}

}  // namespace
}  // namespace cnv
