#include "par/pool.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace cnv::par {
namespace {

TEST(WorkerPoolTest, HardwareJobsIsPositive) {
  EXPECT_GE(HardwareJobs(), 1);
  EXPECT_EQ(ResolveJobs(0), HardwareJobs());
  EXPECT_EQ(ResolveJobs(1), 1);
  EXPECT_EQ(ResolveJobs(-3), 1);
  EXPECT_EQ(ResolveJobs(7), 7);
}

TEST(WorkerPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 3, 8}) {
    WorkerPool pool(jobs);
    ASSERT_EQ(pool.jobs(), jobs);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&](int worker, std::size_t begin, std::size_t end) {
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, jobs);
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
    }
  }
}

TEST(WorkerPoolTest, ParallelForSlicesAreContiguousAndDeterministic) {
  // The slice split must depend only on (n, jobs): worker w owns
  // [n*w/jobs, n*(w+1)/jobs). The exploration engine's candidate keys rely
  // on this.
  WorkerPool pool(4);
  const std::size_t n = 10;
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> slices(4, {0, 0});
  pool.ParallelFor(n, [&](int worker, std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    slices[static_cast<std::size_t>(worker)] = {begin, end};
  });
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(slices[static_cast<std::size_t>(w)].first, n * w / 4);
    EXPECT_EQ(slices[static_cast<std::size_t>(w)].second, n * (w + 1) / 4);
  }
}

TEST(WorkerPoolTest, ParallelEachCoversEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 8}) {
    WorkerPool pool(jobs);
    const std::size_t n = 257;
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelEach(n, [&](int, std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(WorkerPoolTest, PoolIsReusableAcrossDispatches) {
  WorkerPool pool(3);
  std::uint64_t total = 0;
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.ParallelFor(100, [&](int, std::size_t begin, std::size_t end) {
      std::uint64_t local = 0;
      for (std::size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
    total += sum.load();
  }
  EXPECT_EQ(total, 50u * (99u * 100u / 2));
}

TEST(WorkerPoolTest, SingleJobRunsInlineOnCallingThread) {
  WorkerPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.ParallelFor(10, [&](int worker, std::size_t, std::size_t) {
    EXPECT_EQ(worker, 0);
    seen.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
}

TEST(WorkerPoolTest, BusySecondsTracksEveryWorkerMonotonically) {
  WorkerPool pool(2);
  const std::vector<double> before = pool.BusySeconds();
  ASSERT_EQ(before.size(), 2u);
  pool.ParallelEach(64, [&](int, std::size_t) {
    volatile std::uint64_t x = 0;
    for (int i = 0; i < 1000; ++i) x += static_cast<std::uint64_t>(i);
  });
  const std::vector<double> after = pool.BusySeconds();
  ASSERT_EQ(after.size(), 2u);
  for (std::size_t w = 0; w < after.size(); ++w) {
    EXPECT_GE(after[w], before[w]);
  }
  const double total = std::accumulate(after.begin(), after.end(), 0.0);
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace cnv::par
