// Overload-control unit tests: bounded core queues, admission policies,
// ingress screening, the replay cache, the HSS op budget, and the UE's
// T3346 congestion-backoff discipline.
#include <gtest/gtest.h>

#include <string>

#include "stack/testbed.h"
#include "trace/qxdm.h"

namespace cnv::stack {
namespace {

TestbedConfig WithOverload(AdmissionPolicy policy,
                           std::size_t capacity = 16) {
  TestbedConfig cfg;
  cfg.profile = OpI();
  cfg.seed = 7;
  cfg.overload.enabled = true;
  cfg.overload.policy = policy;
  cfg.overload.queue_capacity = capacity;
  cfg.overload.service_time = Millis(5);
  cfg.overload.t3346_backoff = Seconds(5);
  return cfg;
}

bool TraceContains(Testbed& tb, const std::string& needle) {
  return trace::FormatLog(tb.traces().records()).find(needle) !=
         std::string::npos;
}

TEST(OverloadTest, LegacyCoreNeverQueues) {
  Testbed tb({.profile = OpI(), .seed = 7});  // overload disabled
  tb.storm().MassAttach(Millis(10), 1000, Millis(1));
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(10));
  const OverloadStats& s = tb.mme().overload_stats();
  EXPECT_EQ(s.queue_peak, 0u);
  EXPECT_EQ(s.rejected_congestion, 0u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.background_served, 1000u);
  // The foreground attach is untouched by the (free) background load.
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_EQ(tb.ue().congestion_rejects(), 0u);
}

TEST(OverloadTest, UnboundedQueueAbsorbsEverythingButBacklogs) {
  Testbed tb(WithOverload(AdmissionPolicy::kUnbounded));
  // 1000 msgs at 1 ms spacing into a 5 ms/msg server: backlog ~800.
  tb.storm().MassAttach(Millis(10), 1000, Millis(1));
  tb.Run(Seconds(2));
  const OverloadStats& s = tb.mme().overload_stats();
  EXPECT_GT(s.queue_peak, 500u);
  EXPECT_EQ(s.rejected_congestion, 0u);
  EXPECT_EQ(s.shed, 0u);
  // Run long enough and the backlog drains completely.
  tb.Run(Seconds(10));
  EXPECT_EQ(tb.mme().queue_depth(), 0u);
  EXPECT_EQ(tb.mme().overload_stats().background_served, 1000u);
}

TEST(OverloadTest, RejectBackoffBoundsTheQueue) {
  Testbed tb(WithOverload(AdmissionPolicy::kRejectBackoff, 8));
  tb.storm().MassAttach(Millis(10), 1000, Millis(1));
  tb.Run(Seconds(10));
  const OverloadStats& s = tb.mme().overload_stats();
  EXPECT_LE(s.queue_peak, 8u);
  EXPECT_GT(s.rejected_congestion, 0u);
  EXPECT_EQ(s.offered(), 1000u);
  EXPECT_EQ(tb.mme().queue_depth(), 0u);
}

TEST(OverloadTest, ForegroundAttachIsCongestionRejectedThenRetriesAfterT3346) {
  auto cfg = WithOverload(AdmissionPolicy::kRejectBackoff, 4);
  Testbed tb(cfg);
  // The storm saturates the queue before and while the device powers on.
  tb.storm().MassAttach(Millis(10), 2000, Millis(1));
  tb.sim().ScheduleAt(Millis(100),
                      [&tb] { tb.ue().PowerOn(nas::System::k4G); });
  tb.Run(Seconds(30));
  EXPECT_GE(tb.ue().congestion_rejects(), 1u);
  EXPECT_GE(tb.ue().congestion_backoffs(), 1u);
  // After the backoff expires (storm long gone), the retry succeeds.
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_TRUE(TraceContains(tb, "cause: congestion"));
  EXPECT_TRUE(TraceContains(tb, "T3346 armed"));
}

TEST(OverloadTest, PriorityShedPrefersBulkVictimsAndNotifiesRealOnes) {
  // Bulk attach storm + the real device's attach: under shed, bulk storm
  // entries are displaced first, and when the real (bulk-class) attach is
  // itself shed it gets a congestion notification instead of silence.
  Testbed tb(WithOverload(AdmissionPolicy::kPriorityShed, 4));
  tb.storm().MassAttach(Millis(10), 2000, Millis(1));
  tb.sim().ScheduleAt(Millis(100),
                      [&tb] { tb.ue().PowerOn(nas::System::k4G); });
  tb.Run(Seconds(30));
  const OverloadStats& s = tb.mme().overload_stats();
  EXPECT_GT(s.shed, 0u);
  EXPECT_EQ(s.rejected_congestion, 0u);
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
}

TEST(OverloadTest, PriorityOrderingFavoursEmergencyOverBulk) {
  EXPECT_LT(static_cast<int>(PriorityOf(nas::MsgKind::kPagingResponse)),
            static_cast<int>(PriorityOf(nas::MsgKind::kTauRequest)));
  EXPECT_LT(static_cast<int>(PriorityOf(nas::MsgKind::kTauRequest)),
            static_cast<int>(PriorityOf(nas::MsgKind::kAttachRequest)));
}

TEST(OverloadTest, PagingFloodSurvivesPriorityShedAtTheMsc) {
  Testbed tb(WithOverload(AdmissionPolicy::kPriorityShed, 4));
  // Paging responses are emergency class: even a flood beyond the queue
  // bound is never displaced by later bulk; the shed victims are the bulk
  // location updates injected alongside.
  tb.storm().PagingFlood(Millis(10), 100, Millis(1));
  tb.Run(Seconds(5));
  const OverloadStats& s = tb.msc().overload_stats();
  EXPECT_EQ(s.offered(), 100u);
  // All paging eventually served: shed only triggers when the queue is
  // full of equal-or-lower priority — the flood itself drains in order.
  EXPECT_EQ(s.background_served + s.shed, 100u);
}

TEST(OverloadTest, ScreeningRejectsMalformedWithoutStateChange) {
  Testbed tb({.profile = OpI(), .seed = 7});
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(5));
  ASSERT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  ASSERT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);

  nas::Message m;
  m.kind = nas::MsgKind::kAttachRequest;
  m.protocol = nas::Protocol::kEmm;
  m.integrity = nas::MsgIntegrity::kMalformed;
  tb.mme().OnUplink(m);
  nas::Message t = m;
  t.integrity = nas::MsgIntegrity::kTruncated;
  tb.mme().OnUplink(t);
  tb.Run(Seconds(1));

  EXPECT_EQ(tb.mme().overload_stats().integrity_rejected, 2u);
  EXPECT_EQ(tb.mme().state(), Mme::EmmState::kRegistered);  // untouched
  EXPECT_EQ(tb.ue().emm_state(), UeDevice::EmmState::kRegistered);
  EXPECT_TRUE(
      TraceContains(tb, "cause: semantically incorrect message"));
}

TEST(OverloadTest, ReplayCacheDropsDuplicateUids) {
  Testbed tb({.profile = OpI(), .seed = 7});
  nas::Message m;
  m.kind = nas::MsgKind::kAttachComplete;
  m.protocol = nas::Protocol::kEmm;
  m.uid = 42;
  tb.mme().OnUplink(m);
  tb.mme().OnUplink(m);  // replay
  tb.mme().OnUplink(m);  // and again
  tb.Run(Seconds(1));
  EXPECT_EQ(tb.mme().overload_stats().replay_dropped, 2u);
  EXPECT_TRUE(TraceContains(tb, "Dropped replayed"));
}

TEST(OverloadTest, DrainedAfterFindsTheFirstCatchUp) {
  Testbed tb(WithOverload(AdmissionPolicy::kUnbounded));
  // Burst ends at 10ms + 99ms; backlog of ~80 drains by ~0.5 s.
  tb.storm().MassAttach(Millis(10), 100, Millis(1));
  tb.Run(Seconds(30));
  const SimTime storm_end = tb.storm().last_injection_at();
  const SimTime drained = tb.mme().DrainedAfter(storm_end);
  ASSERT_GE(drained, storm_end);
  EXPECT_LT(ToSeconds(drained - storm_end), 1.0);
  // A probe instant long after the backlog cleared: empty right away.
  EXPECT_EQ(tb.mme().DrainedAfter(Seconds(20)), Seconds(20));
}

TEST(OverloadTest, HssOpBudgetShedsOverBudgetLocationOps) {
  // Core elements stay legacy (zero queueing); only the HSS gets an op
  // budget of 1 location op per 60 s window.
  Testbed tb({.profile = OpI(), .seed = 7});
  OverloadConfig budget;
  budget.enabled = true;
  budget.policy = AdmissionPolicy::kRejectBackoff;
  budget.queue_capacity = 1;
  budget.service_time = Seconds(60);
  tb.hss().ConfigureOverload(budget);
  // Attach performs an HSS location update (op 1, in budget); the periodic
  // TAUs that follow in the same window are over budget and shed.
  tb.ue().PowerOn(nas::System::k4G);
  tb.ue().EnablePeriodicUpdates(Seconds(10));
  tb.Run(Seconds(55));
  EXPECT_GT(tb.hss().overload_stats().shed, 0u);
  EXPECT_GT(tb.hss().overload_stats().admitted, 0u);
}

}  // namespace
}  // namespace cnv::stack
