// Checkpoint/resume for the screening catalog: completed cells replay from
// their blobs with the shared RNG stream restored to the exact position the
// blob recorded, so a resumed report — including the random-walk
// counterexamples of cells that run *after* the resume point — is identical
// to an uninterrupted run. Damaged blobs are discarded and re-run; a fired
// cancel token stops between cells with the completed prefix intact.
#include "core/screening.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/manifest.h"
#include "gtest/gtest.h"

namespace cnv::core {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / "screening_resume" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void FlipPayloadByte(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(in), {});
  in.close();
  ASSERT_FALSE(bytes.empty());
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Few walks keep the suite fast while still exercising the shared RNG
// stream that makes resume ordering matter.
ScreeningOptions SmallOptions() {
  ScreeningOptions opt;
  opt.random_walks = 5;
  opt.jobs = 1;
  return opt;
}

// Every deterministic field of the report; wall-clock times are excluded
// because re-run cells legitimately time differently than the baseline.
void ExpectSameDeterministicReport(const ScreeningReport& a,
                                   const ScreeningReport& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    SCOPED_TRACE("cell #" + std::to_string(i) + " (" + b.cells[i].cell + ")");
    EXPECT_EQ(a.cells[i].cell, b.cells[i].cell);
    EXPECT_EQ(a.cells[i].findings, b.cells[i].findings);
    EXPECT_EQ(a.cells[i].violated_properties, b.cells[i].violated_properties);
    EXPECT_EQ(a.cells[i].counterexamples, b.cells[i].counterexamples);
    EXPECT_EQ(mck::DeterministicView(a.cells[i].stats),
              mck::DeterministicView(b.cells[i].stats));
  }
  EXPECT_EQ(a.findings_found, b.findings_found);
  EXPECT_EQ(a.total_states, b.total_states);
  EXPECT_EQ(a.total_transitions, b.total_transitions);
}

class ScreeningResumeTest : public testing::Test {
 protected:
  ScreeningReport Baseline(const std::string& dir) {
    ScreeningOptions opt = SmallOptions();
    opt.checkpoint_dir = dir;
    const ScreeningReport report = ScreeningRunner(opt).RunAll();
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.exec.cells_run, report.cells.size());
    EXPECT_EQ(report.exec.checkpoints_written, report.cells.size());
    return report;
  }

  void ClearCells(const std::string& dir,
                  const std::vector<std::size_t>& cleared) {
    const ckpt::ManifestStore store(
        dir, ScreeningRunner(SmallOptions()).ConfigDigest());
    ckpt::Manifest manifest;
    ASSERT_EQ(store.LoadManifest(&manifest), ckpt::LoadStatus::kOk);
    for (const std::size_t i : cleared) {
      ASSERT_LT(i, manifest.cells.size());
      manifest.cells[i] = ckpt::CellRecord{};
    }
    ASSERT_TRUE(store.SaveManifest(manifest));
  }

  ScreeningReport Resume(const std::string& dir) {
    ScreeningOptions opt = SmallOptions();
    opt.checkpoint_dir = dir;
    opt.resume = true;
    return ScreeningRunner(opt).RunAll();
  }
};

TEST_F(ScreeningResumeTest, MidCatalogCrashResumesIdentical) {
  const std::string dir = FreshDir("mid-catalog");
  const ScreeningReport baseline = Baseline(dir);
  ASSERT_GE(baseline.cells.size(), 6u);
  // Lose two mid-catalog cells: the re-run of cell 2 must leave the RNG
  // stream exactly where the baseline did, or every later random-walk
  // counterexample would diverge.
  ClearCells(dir, {2, 5});

  const ScreeningReport resumed = Resume(dir);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.exec.cells_resumed, baseline.cells.size() - 2);
  EXPECT_EQ(resumed.exec.cells_run, 2u);
  ExpectSameDeterministicReport(resumed, baseline);
}

TEST_F(ScreeningResumeTest, LostTailResumesIdentical) {
  const std::string dir = FreshDir("lost-tail");
  const ScreeningReport baseline = Baseline(dir);
  // A real crash loses the tail of the catalog, not arbitrary cells.
  std::vector<std::size_t> tail;
  for (std::size_t i = baseline.cells.size() / 2; i < baseline.cells.size();
       ++i) {
    tail.push_back(i);
  }
  ClearCells(dir, tail);

  const ScreeningReport resumed = Resume(dir);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.exec.cells_run, tail.size());
  ExpectSameDeterministicReport(resumed, baseline);
}

TEST_F(ScreeningResumeTest, FullyResumedReportIsByteIdentical) {
  const std::string dir = FreshDir("full-replay");
  const ScreeningReport baseline = Baseline(dir);
  const ScreeningReport resumed = Resume(dir);
  EXPECT_EQ(resumed.exec.cells_resumed, baseline.cells.size());
  EXPECT_EQ(resumed.exec.cells_run, 0u);
  // Replayed cells carry their stored wall-clock stats, so even the
  // formatted report — throughput lines included — matches byte for byte.
  EXPECT_EQ(ScreeningRunner::Format(resumed),
            ScreeningRunner::Format(baseline));
}

TEST_F(ScreeningResumeTest, CorruptedCellBlobIsDiscardedAndReRun) {
  const std::string dir = FreshDir("corrupt-cell");
  const ScreeningReport baseline = Baseline(dir);
  const ckpt::ManifestStore store(
      dir, ScreeningRunner(SmallOptions()).ConfigDigest());
  FlipPayloadByte(store.CellPath(1));

  const ScreeningReport resumed = Resume(dir);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.exec.corrupt_cells_discarded, 1u);
  EXPECT_EQ(resumed.exec.cells_run, 1u);
  EXPECT_EQ(resumed.exec.cells_resumed, baseline.cells.size() - 1);
  ExpectSameDeterministicReport(resumed, baseline);
}

TEST_F(ScreeningResumeTest, CancelStopsBetweenCellsWithPrefixIntact) {
  const std::string dir = FreshDir("cancel");
  ckpt::CancelToken cancel;
  cancel.Cancel();
  ScreeningOptions opt = SmallOptions();
  opt.checkpoint_dir = dir;
  opt.cancel = &cancel;
  const ScreeningReport report = ScreeningRunner(opt).RunAll();
  EXPECT_FALSE(report.complete);
  EXPECT_TRUE(report.exec.interrupted);
  EXPECT_TRUE(report.cells.empty());

  // The interrupted directory resumes to a complete, identical report.
  const ScreeningReport resumed = Resume(dir);
  EXPECT_TRUE(resumed.complete);
  const ScreeningReport plain = ScreeningRunner(SmallOptions()).RunAll();
  ExpectSameDeterministicReport(resumed, plain);
}

TEST(ScreeningConfigDigestTest, IgnoresExecutionKnobsButNotTheCatalog) {
  const std::uint64_t digest = ScreeningRunner(SmallOptions()).ConfigDigest();

  ScreeningOptions execution = SmallOptions();
  execution.jobs = 4;
  execution.checkpoint_dir = "/somewhere/else";
  execution.resume = true;
  execution.retry.max_retries = 2;
  EXPECT_EQ(ScreeningRunner(execution).ConfigDigest(), digest);

  ScreeningOptions more_walks = SmallOptions();
  more_walks.random_walks += 1;
  EXPECT_NE(ScreeningRunner(more_walks).ConfigDigest(), digest);

  ScreeningOptions other_seed = SmallOptions();
  other_seed.seed += 1;
  EXPECT_NE(ScreeningRunner(other_seed).ConfigDigest(), digest);

  ScreeningOptions solutions = SmallOptions();
  solutions.with_solutions = true;
  EXPECT_NE(ScreeningRunner(solutions).ConfigDigest(), digest);
}

TEST(ScreeningRetryTest, RetriedCellsDoNotSkewTheRngStream) {
  // Force one retry per cell with a fake clock; because every attempt
  // restores the cell's starting RNG state, the report must still match a
  // run with no retries at all.
  ScreeningOptions opt = SmallOptions();
  opt.retry.cell_timeout_ms = 1;
  opt.retry.max_retries = 1;
  auto now = std::make_shared<std::int64_t>(0);
  opt.retry.wall_ms_for_test = [now] { return *now += 10; };
  opt.retry.sleep_ms_for_test = [](std::int64_t) {};
  const ScreeningReport retried = ScreeningRunner(opt).RunAll();
  EXPECT_EQ(retried.exec.retries, retried.cells.size());
  EXPECT_EQ(retried.exec.watchdog_hits, 2 * retried.cells.size());

  const ScreeningReport plain = ScreeningRunner(SmallOptions()).RunAll();
  ExpectSameDeterministicReport(retried, plain);
}

}  // namespace
}  // namespace cnv::core
