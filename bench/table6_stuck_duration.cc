// Regenerates Table 6: duration in 3G after the CSFB call ends, per
// carrier, over CSFB calls carrying data sessions with random remaining
// lifetimes. OP-I (release with redirect) returns within seconds; OP-II
// (cell reselection) stays until the data session ends and RRC decays.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "util/stats.h"

using namespace cnv;

namespace {

Samples MeasureStuck(const stack::CarrierProfile& base, int calls) {
  Samples out;
  for (int i = 0; i < calls; ++i) {
    stack::TestbedConfig cfg;
    cfg.profile = base;
    cfg.profile.lu_failure_prob = 0;  // isolate S3 from S6
    cfg.seed = 500 + static_cast<std::uint64_t>(i);
    stack::Testbed tb(cfg);
    Rng rng(cfg.seed ^ 0xabcdef);

    tb.ue().PowerOn(nas::System::k4G);
    tb.Run(Seconds(2));
    // A data session with a random remaining lifetime after the call.
    tb.ue().StartDataSession(0.2);
    tb.Run(Seconds(1));
    tb.ue().Dial();
    bench::RunUntil(tb,
                    [&] {
                      return tb.ue().call_state() ==
                             stack::UeDevice::CallState::kActive;
                    },
                    Minutes(2));
    if (tb.ue().call_state() != stack::UeDevice::CallState::kActive) continue;
    tb.Run(FromSeconds(std::max(10.0, rng.Exponential(67.0))));
    tb.ue().HangUp();
    // Remaining data-session lifetime (the stuck period's upper bound).
    const double remaining_s = rng.Exponential(25.0);
    tb.Run(FromSeconds(remaining_s));
    if (tb.ue().serving() == nas::System::k3G) {
      tb.ue().StopDataSession();
    }
    bench::RunUntil(tb,
                    [&] { return tb.ue().serving() == nas::System::k4G; },
                    Minutes(5));
    if (tb.ue().stuck_in_3g_seconds().Count() > 0) {
      out.Add(tb.ue().stuck_in_3g_seconds().Values().back());
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::Banner("Duration in 3G after the CSFB call ends",
                "Table 6 (§7); paper: OP-I 1.1/2.3/52.6s, OP-II "
                "14.7/24.3/253.9s (min/median/max)");

  std::printf("%-8s %-6s %-8s %-8s %-8s %-8s %s\n", "carrier", "n", "min",
              "median", "max", "90th", "avg");
  for (const auto& profile : {stack::OpI(), stack::OpII()}) {
    const Samples s = MeasureStuck(profile, 40);
    std::printf("%-8s %-6zu %-8.1f %-8.1f %-8.1f %-8.1f %.1f\n",
                profile.name.c_str(), s.Count(), s.Min(), s.Median(),
                s.Max(), s.Percentile(90), s.Mean());
  }
  std::printf("\nOP-I uses RRC release with redirect (works from non-IDLE);\n"
              "OP-II uses cell reselection, so the stuck time tracks the\n"
              "remaining lifetime of the data session plus RRC decay.\n");
  return 0;
}
