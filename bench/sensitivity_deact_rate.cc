// Sensitivity analysis: out-of-service exposure vs the network's
// PDP-deactivation rate. §7 notes that issues arising with small natural
// probability can be inflated if the triggering events become frequent;
// this harness quantifies how the S1 exposure (HSS-visible deregistered
// time) scales with the deactivation rate, with and without the §8
// cross-system remedy — the remedy flattens the curve to zero.
#include <cstdio>

#include "bench/bench_util.h"
#include "stack/scenarios.h"

using namespace cnv;

namespace {

// Fraction of a busy hour (one 3G camp + return per 2 minutes) the device
// spends deregistered, for a given per-camp deactivation probability.
double OosFraction(double deact_prob, bool remedy, std::uint64_t seed) {
  stack::TestbedConfig cfg;
  cfg.profile = stack::OpI();
  cfg.profile.lu_failure_prob = 0;
  cfg.solutions.reactivate_bearer = remedy;
  cfg.seed = seed;
  stack::Testbed tb(cfg);
  Rng rng(seed * 31 + 1);

  if (!stack::scenario::AttachIn4g(tb)) return -1;
  tb.ue().StartDataSession(0.5);
  tb.Run(Seconds(2));

  const SimTime start = tb.sim().now();
  for (int cycle = 0; cycle < 30; ++cycle) {
    tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
    tb.Run(Seconds(60));
    if (rng.Bernoulli(deact_prob)) {
      tb.sgsn().DeactivatePdp(nas::PdpDeactCause::kRegularDeactivation);
      tb.Run(Seconds(1));
    }
    tb.ue().SwitchTo4g();
    stack::scenario::RunUntil(tb, [&] { return !tb.ue().out_of_service(); },
                              Minutes(2));
    tb.Run(Seconds(59));
  }
  const double elapsed = ToSeconds(tb.sim().now() - start);
  return ToSeconds(tb.hss().DeregisteredTime(tb.imsi())) / elapsed;
}

}  // namespace

int main() {
  bench::Banner("Sensitivity: out-of-service exposure vs deactivation rate",
                "§7 remark on inflated trigger rates; S1 + §8 remedy");

  std::printf("%-18s %-22s %s\n", "deact prob/camp", "OOS fraction w/o fix",
              "OOS fraction w/ reactivation");
  for (const double p : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    const double without = OosFraction(p, /*remedy=*/false, 42);
    const double with = OosFraction(p, /*remedy=*/true, 42);
    std::printf("%-18.2f %-22.3f %.3f   |%s|\n", p, without, with,
                bench::Bar(without, 0.2, 30).c_str());
  }
  std::printf(
      "\nThe exposure grows linearly with the deactivation rate (each hit\n"
      "costs one operator-controlled re-attach); the bearer-reactivation\n"
      "remedy keeps the device registered at every rate.\n");
  return 0;
}
