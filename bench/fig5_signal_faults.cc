// Regenerates Figure 5: the two S2 signaling-fault shapes. (a) the Attach
// Complete is lost over the air and the next tracking area update is
// rejected with "implicitly detach"; (b) a BS under heavy load defers the
// Attach Request past T3410, the retransmitted copy completes the attach,
// and the stale duplicate makes the MME delete the bearer and reprocess.
// The message sequences are printed from the device's collected trace.
#include <cstdio>

#include "bench/bench_util.h"
#include "trace/qxdm.h"

using namespace cnv;

namespace {

void PrintTrace(stack::Testbed& tb, const char* title) {
  std::printf("--- %s ---\n", title);
  for (const auto& rec : tb.traces().records()) {
    if (rec.module == "EMM" || rec.module == "ESM") {
      std::printf("%s\n", trace::FormatRecord(rec).c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::Banner("Detach by lost / duplicate signals", "Figure 5 (§5.2)");

  {
    stack::Testbed tb({});
    tb.ue().PowerOn(nas::System::k4G);
    tb.ul4g().ForceDropNext(1);  // drop the Attach Complete
    tb.Run(Seconds(2));
    tb.ue().CrossAreaBoundary();
    bench::RunUntil(tb, [&] { return tb.ue().oos_events() > 0; },
                    Seconds(10));
    bench::RunUntil(tb, [&] { return !tb.ue().out_of_service(); },
                    Minutes(2));
    PrintTrace(tb, "Figure 5(a): lost Attach Complete");
  }

  {
    stack::TestbedConfig cfg;
    stack::Testbed tb(cfg);
    tb.mme().set_duplicate_attach_rejects(true);
    tb.ul4g().DeferNext(Seconds(16));  // BS1 defers past T3410 (15 s)
    tb.ue().PowerOn(nas::System::k4G);
    bench::RunUntil(tb, [&] { return tb.ue().oos_events() > 0; },
                    Seconds(40));
    PrintTrace(tb, "Figure 5(b): duplicate Attach Request (rejected)");
  }

  {
    stack::Testbed tb({});
    tb.mme().set_duplicate_attach_rejects(false);
    tb.ul4g().DeferNext(Seconds(16));
    tb.ue().PowerOn(nas::System::k4G);
    tb.Run(Seconds(40));
    PrintTrace(tb,
               "Figure 5(b'): duplicate Attach Request (re-accepted; EPS "
               "bearer rebuilt, transient service loss)");
  }
  return 0;
}
