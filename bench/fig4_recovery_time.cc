// Regenerates Figure 4: recovery time from the S1 detach event (time from
// the Tracking Area Update Reject to the completed re-attach) over 50+ runs
// per carrier. The re-attach is operator-controlled, hence the carrier
// difference.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/stats.h"

using namespace cnv;

namespace {

Samples MeasureRecovery(const stack::CarrierProfile& profile, int runs) {
  Samples out;
  for (int i = 0; i < runs; ++i) {
    stack::TestbedConfig cfg;
    cfg.profile = profile;
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    stack::Testbed tb(cfg);
    tb.ue().PowerOn(nas::System::k4G);
    tb.Run(Seconds(2));
    tb.ue().SwitchTo3g(model::SwitchReason::kCsfbCall);
    tb.Run(Seconds(5));
    tb.sgsn().DeactivatePdp(nas::PdpDeactCause::kRegularDeactivation);
    tb.Run(Seconds(1));
    tb.ue().SwitchTo4g();
    bench::RunUntil(
        tb, [&] { return tb.ue().recovery_seconds().Count() == 1; },
        Minutes(2));
    if (tb.ue().recovery_seconds().Count() == 1) {
      out.Add(tb.ue().recovery_seconds().Values()[0]);
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::Banner("Recovery time from the detached event",
                "Figure 4 (§5.1.3); paper range 2.4s - 24.7s");

  constexpr int kRuns = 50;
  for (const auto& profile : {stack::OpI(), stack::OpII()}) {
    const Samples s = MeasureRecovery(profile, kRuns);
    std::printf("%-6s (%zu runs): min %.1fs  median %.1fs  max %.1fs\n",
                profile.name.c_str(), s.Count(), s.Min(), s.Median(),
                s.Max());
    std::printf("        |%s| median\n",
                bench::Bar(s.Median(), 25.0).c_str());
    std::printf("        |%s| max\n\n", bench::Bar(s.Max(), 25.0).c_str());
  }
  std::printf("The device is unreachable (out of service) for the whole\n"
              "recovery window; re-attach latency is controlled by the\n"
              "operator (§5.1.3).\n");
  return 0;
}
