// Chaos recovery comparison: runs every canned fault plan over both
// carriers, baseline stack vs robust stack (NAS retries, attach backoff,
// bounded CM re-requests, core queue-and-replay), and tabulates per-plan
// SLO compliance and worst-case outage. Quantifies how much of the paper's
// fragility is recoverable with §8-style machinery alone.
#include <cstdio>

#include "bench/bench_util.h"
#include "fault/campaign.h"

using namespace cnv;

namespace {

struct PlanRow {
  std::string plan;
  std::size_t runs = 0;
  std::size_t ok = 0;
  double worst_outage_s = 0.0;
};

std::vector<PlanRow> Tabulate(const fault::CampaignResult& result) {
  std::vector<PlanRow> rows;
  for (const auto& run : result.runs) {
    PlanRow* row = nullptr;
    for (auto& r : rows) {
      if (r.plan == run.plan) row = &r;
    }
    if (row == nullptr) {
      rows.push_back({.plan = run.plan});
      row = &rows.back();
    }
    ++row->runs;
    if (run.report.all_within_slo()) ++row->ok;
    for (const auto& p : run.report.properties) {
      row->worst_outage_s =
          std::max(row->worst_outage_s, ToSeconds(p.longest_outage));
    }
  }
  return rows;
}

fault::CampaignResult RunSweep(bool robust) {
  fault::CampaignConfig cfg;
  cfg.seeds = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  cfg.plans = fault::plans::All();
  cfg.profiles = {stack::OpI(), stack::OpII()};
  if (robust) {
    cfg.robustness = {.nas_retry = true,
                      .attach_backoff = true,
                      .cm_reattempt = true,
                      .core_queue_replay = true};
  }
  return fault::CampaignRunner(cfg).Run();
}

}  // namespace

int main() {
  bench::Banner("chaos recovery: baseline vs robust stack",
                "fault-injection campaign over the S1-S6 + generic plans");

  const auto baseline = Tabulate(RunSweep(/*robust=*/false));
  const auto robust = Tabulate(RunSweep(/*robust=*/true));

  std::printf("%-26s %14s %14s %12s %12s\n", "plan", "baseline-ok",
              "robust-ok", "base-worst", "robust-worst");
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    const PlanRow& b = baseline[i];
    const PlanRow& r = robust[i];
    std::printf("%-26s %8zu/%-5zu %8zu/%-5zu %10.1fs %10.1fs\n",
                b.plan.c_str(), b.ok, b.runs, r.ok, r.runs, b.worst_outage_s,
                r.worst_outage_s);
  }

  std::size_t b_ok = 0, b_n = 0, r_ok = 0;
  for (const auto& row : baseline) {
    b_ok += row.ok;
    b_n += row.runs;
  }
  for (const auto& row : robust) r_ok += row.ok;
  std::printf("\ntotal within SLO: baseline %zu/%zu, robust %zu/%zu\n", b_ok,
              b_n, r_ok, b_n);
  return 0;
}
