// Ablation: CSFB vs VoLTE. The paper notes (§2) that VoLTE is the designed
// 4G voice solution but carriers deploy CSFB instead; this ablation
// quantifies what that deployment choice costs by re-running the voice
// workloads with PS voice in 4G: the CSFB-specific defects (S3 stuck-in-3G,
// S6 failure propagation) and the per-call inter-system switches disappear,
// and the data session never migrates to the degraded 3G channel.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/stats.h"

using namespace cnv;

namespace {

struct Outcome {
  Samples setup_s;
  Samples stuck_s;
  int oos_events = 0;
  int data_disruptions = 0;
  double rate_during_call_mbps = 0;
};

Outcome RunCalls(bool volte, int calls) {
  Outcome out;
  for (int i = 0; i < calls; ++i) {
    stack::TestbedConfig cfg;
    cfg.profile = stack::OpII();  // the policies that hurt CSFB users
    cfg.profile.volte_enabled = volte;
    cfg.profile.lu_failure_prob = 0.2;  // exaggerate S6 for contrast
    cfg.seed = 3000 + static_cast<std::uint64_t>(i);
    stack::Testbed tb(cfg);
    tb.ue().PowerOn(nas::System::k4G);
    tb.Run(Seconds(2));
    tb.ue().StartDataSession(0.2);
    tb.Run(Seconds(1));
    tb.ue().Dial();
    bench::RunUntil(tb,
                    [&] {
                      return tb.ue().call_state() ==
                             stack::UeDevice::CallState::kActive;
                    },
                    Minutes(2));
    if (tb.ue().call_state() != stack::UeDevice::CallState::kActive) continue;
    if (tb.ue().call_setup_seconds().Count() > 0) {
      out.setup_s.Add(tb.ue().call_setup_seconds().Values().back());
    }
    out.rate_during_call_mbps +=
        tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12) / calls;
    tb.Run(Seconds(30));
    tb.ue().HangUp();
    tb.Run(Seconds(45));
    if (tb.ue().serving() == nas::System::k3G) {
      tb.ue().StopDataSession();
      bench::RunUntil(tb,
                      [&] { return tb.ue().serving() == nas::System::k4G; },
                      Minutes(2));
    }
    bench::RunUntil(tb, [&] { return !tb.ue().out_of_service(); },
                    Minutes(2));
    for (const double s : tb.ue().stuck_in_3g_seconds().Values()) {
      out.stuck_s.Add(s);
    }
    out.oos_events += static_cast<int>(tb.ue().oos_events());
    out.data_disruptions += static_cast<int>(tb.ue().data_disruptions());
  }
  return out;
}

void Print(const char* name, const Outcome& o, int calls) {
  std::printf("%-8s setup %s\n", name, SummaryLine(o.setup_s, "s").c_str());
  std::printf("         time out of 4G after call: %s\n",
              o.stuck_s.Empty() ? "none"
                                : SummaryLine(o.stuck_s, "s").c_str());
  std::printf("         out-of-service events: %d / %d calls\n",
              o.oos_events, calls);
  std::printf("         DL rate during call: %.1f Mbps\n\n",
              o.rate_during_call_mbps);
}

}  // namespace

int main() {
  bench::Banner("Ablation: CSFB vs VoLTE voice on OP-II policies",
                "§2 (VoLTE as the designed solution); S3/S6 disappear");

  constexpr int kCalls = 25;
  const Outcome csfb = RunCalls(/*volte=*/false, kCalls);
  const Outcome volte = RunCalls(/*volte=*/true, kCalls);
  Print("CSFB", csfb, kCalls);
  Print("VoLTE", volte, kCalls);

  std::printf("VoLTE keeps voice in the PS domain: no per-call 4G->3G\n"
              "switches, no shared-channel modulation downgrade, no CSFB\n"
              "location updates to fail — at the deployment cost the paper\n"
              "notes kept carriers on CSFB.\n");
  return 0;
}
