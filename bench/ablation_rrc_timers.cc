// Ablation: 3G RRC inactivity timer settings vs the S3 stuck time. On the
// cell-reselection path the device cannot leave 3G before RRC decays to
// IDLE, so even without data the stuck time is bounded below by the
// carrier's DCH->FACH + FACH->IDLE timers (design-space context for §5.3's
// "bullet-proof RRC" remark).
#include <cstdio>

#include "bench/bench_util.h"

using namespace cnv;

namespace {

double StuckSeconds(SimDuration dch_to_fach, SimDuration fach_to_idle) {
  stack::TestbedConfig cfg;
  cfg.profile = stack::OpII();
  cfg.profile.lu_failure_prob = 0;
  cfg.profile.rrc_dch_to_fach = dch_to_fach;
  cfg.profile.rrc_fach_to_idle = fach_to_idle;
  stack::Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
  tb.ue().Dial();
  bench::RunUntil(tb,
                  [&] {
                    return tb.ue().call_state() ==
                           stack::UeDevice::CallState::kActive;
                  },
                  Minutes(2));
  tb.Run(Seconds(10));
  tb.ue().HangUp();
  bench::RunUntil(tb, [&] { return tb.ue().serving() == nas::System::k4G; },
                  Minutes(5));
  return tb.ue().stuck_in_3g_seconds().Count() > 0
             ? tb.ue().stuck_in_3g_seconds().Values().back()
             : -1.0;
}

}  // namespace

int main() {
  bench::Banner("Ablation: RRC inactivity timers vs stuck time (no data)",
                "S3 design space (§5.3); OP-II cell-reselection path");

  std::printf("%-16s %-16s %-14s %s\n", "DCH->FACH (s)", "FACH->IDLE (s)",
              "stuck (s)", "");
  for (const int dch : {1, 3, 5, 8}) {
    for (const int fach : {2, 6, 12, 20}) {
      const double stuck = StuckSeconds(Seconds(dch), Seconds(fach));
      std::printf("%-16d %-16d %-14.1f |%s|\n", dch, fach, stuck,
                  bench::Bar(stuck, 30.0, 28).c_str());
    }
  }
  std::printf(
      "\nstuck time tracks DCH->FACH + FACH->IDLE almost exactly: the\n"
      "reselection fires as soon as RRC reaches IDLE. Shorter inactivity\n"
      "timers shrink the no-data stuck window but cannot help while a data\n"
      "session pins DCH/FACH — that needs the CSFB tag (fig12/sec9) or\n"
      "a different switching option.\n");
  return 0;
}
