// City-scale event-kernel benchmark: drives the CityEngine population
// workload (busy-hour attach front, paging, drive-route location updates,
// far-future guard timers) through the sharded timer-wheel kernel and, for
// comparison, through the seed binary-heap kernel on the same workload.
//
// The sweep reports events/sec, wall seconds, bytes/UE and the determinism
// digest per population size; at the baseline comparison size it prints the
// wheel-vs-heap speedup. Digests are checked serial-vs-parallel on every
// wheel run, so a perf gain that broke determinism fails loudly here before
// any golden does.
//
// Usage:  ./perf_city [options]
//   --bench-json PATH   machine-readable report (default BENCH_perf_city.json)
//   --quick             small smoke sweep for CI
//   --full              extend the sweep to 1M UEs
//   --ues N             single run at N UEs instead of the sweep
//   --jobs N            worker threads for wheel runs (0 = hardware)
//   --baseline          single run uses the heap kernel
//   --emit-trace        single run prints its sampled QXDM trace to stdout
//   --overload          single run starves attach admission (storm/backoff)
//   --seed S            workload seed (default 1)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/export.h"
#include "par/pool.h"
#include "stack/city.h"
#include "trace/qxdm.h"

namespace cnv {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CityOutcome {
  std::string name;
  std::uint32_t ues = 0;
  std::string kernel;
  int jobs = 1;
  stack::CityReport report;
  double wall_seconds = 0;
  double events_per_sec = 0;
  bool digest_checked = false;  // serial-vs-parallel byte-identity
  bool digest_ok = true;
};

stack::CityConfig ConfigFor(std::uint32_t ues, std::uint64_t seed) {
  stack::CityConfig cfg;
  cfg.ues = ues;
  // Cell count grows with the population: ~250 UEs/cell, at least 16 cells.
  cfg.cells = std::max<std::uint32_t>(16, ues / 250);
  cfg.horizon = Minutes(10);
  cfg.seed = seed;
  // Busy-hour density: sessions every ~30 s, pages every ~45 s, cell dwell
  // ~1 min on the drive routes. This is the load regime the paper measures
  // (peak-hour metro signalling), and the regime where kernel choice
  // matters — hundreds of thousands of events in flight keep the seed
  // heap's log(n) pops and tombstone churn on every critical path.
  cfg.activity_mean_s = 30.0;
  cfg.paging_mean_s = 45.0;
  cfg.dwell_mean_s = 60.0;
  // Keep the sampled trace volume roughly constant across sizes.
  cfg.sample_every = std::max<std::uint32_t>(1, ues / 64);
  return cfg;
}

// Events/sec counts productive (non-tombstone) executions only, so the two
// kernels are scored on identical numerators for a given workload: the heap
// is not credited for popping tombstones, and the wheel is not credited for
// the handful of stale entries its reaper misses.
double ProductiveEps(const stack::CityReport& r, double wall) {
  if (wall <= 0) return 0.0;
  return static_cast<double>(r.events_executed - r.stale_events) / wall;
}

CityOutcome RunCity(const std::string& name, const stack::CityConfig& cfg,
                    stack::CityKernelMode mode, int jobs,
                    bool check_determinism) {
  CityOutcome out;
  out.name = name;
  out.ues = cfg.ues;
  out.kernel = mode == stack::CityKernelMode::kWheel ? "wheel" : "heap";
  out.jobs = mode == stack::CityKernelMode::kWheel ? jobs : 1;

  par::WorkerPool pool(out.jobs);
  stack::CityEngine engine(cfg, mode);
  const double t0 = Now();
  out.report = engine.Run(out.jobs > 1 ? &pool : nullptr);
  out.wall_seconds = Now() - t0;
  out.events_per_sec = ProductiveEps(out.report, out.wall_seconds);

  if (check_determinism && mode == stack::CityKernelMode::kWheel &&
      out.jobs > 1) {
    stack::CityEngine serial(cfg, mode);
    const stack::CityReport sr = serial.Run(nullptr);
    out.digest_checked = true;
    out.digest_ok = sr.digest == out.report.digest &&
                    sr.events_executed == out.report.events_executed &&
                    sr.trace_emitted == out.report.trace_emitted;
  }
  return out;
}

void PrintRow(const CityOutcome& o) {
  std::printf(
      "%-22s %8u UEs  %-5s jobs=%-2d %9.3fs  %12.0f ev/s  %9llu ev  "
      "%5.1f B/UE  digest=%016llx%s\n",
      o.name.c_str(), o.ues, o.kernel.c_str(), o.jobs, o.wall_seconds,
      o.events_per_sec, (unsigned long long)o.report.events_executed,
      o.report.bytes_per_ue, (unsigned long long)o.report.digest,
      o.digest_checked ? (o.digest_ok ? "  [serial==parallel]"
                                      : "  [DETERMINISM BROKEN]")
                       : "");
}

std::string JsonRow(const CityOutcome& o) {
  const auto& r = o.report;
  return "    {\"name\": \"" + o.name + "\", \"ues\": " +
         std::to_string(o.ues) + ", \"kernel\": \"" + o.kernel +
         "\", \"jobs\": " + std::to_string(o.jobs) +
         ", \"wall_seconds\": " + std::to_string(o.wall_seconds) +
         ", \"events_per_sec\": " + std::to_string(o.events_per_sec) +
         ", \"events_executed\": " + std::to_string(r.events_executed) +
         ", \"events_cancelled\": " + std::to_string(r.events_cancelled) +
         ", \"stale_events\": " + std::to_string(r.stale_events) +
         ", \"reaped\": " + std::to_string(r.wheel.reaped) +
         ", \"bytes_per_ue\": " + std::to_string(r.bytes_per_ue) +
         ", \"arena_bytes\": " + std::to_string(r.arena_bytes) +
         ", \"attaches_completed\": " + std::to_string(r.attaches_completed) +
         ", \"handovers\": " + std::to_string(r.handovers) +
         ", \"storms_flagged\": " + std::to_string(r.storms_flagged) +
         ", \"windows\": " + std::to_string(r.windows) +
         ", \"shard_stalls\": " + std::to_string(r.shard_stalls) +
         ", \"cross_cell_messages\": " + std::to_string(r.cross_cell_messages) +
         ", \"trace_emitted\": " + std::to_string(r.trace_emitted) +
         ", \"trace_dropped\": " + std::to_string(r.trace_dropped) +
         ", \"digest\": \"" + std::to_string(r.digest) +
         "\", \"determinism_checked\": " +
         (o.digest_checked ? std::string("true") : std::string("false")) +
         ", \"determinism_ok\": " +
         (o.digest_ok ? std::string("true") : std::string("false")) + "}";
}

}  // namespace
}  // namespace cnv

int main(int argc, char** argv) {
  using namespace cnv;
  std::string json_path = "BENCH_perf_city.json";
  bool quick = false;
  bool full = false;
  bool baseline = false;
  bool emit_trace = false;
  bool overload = false;
  std::uint32_t single_ues = 0;
  std::uint64_t seed = 1;
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline = true;
    } else if (std::strcmp(argv[i], "--emit-trace") == 0) {
      emit_trace = true;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--ues") == 0 && i + 1 < argc) {
      single_ues = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--bench-json PATH] [--quick] [--full] "
                   "[--ues N] [--jobs N] [--baseline] [--emit-trace] "
                   "[--overload] [--seed S]\n",
                   argv[0]);
      return 2;
    }
  }
  const int wheel_jobs = par::ResolveJobs(jobs);

  // Single-run mode: one population, optionally heap kernel / trace tap.
  if (single_ues > 0) {
    stack::CityConfig cfg = ConfigFor(single_ues, seed);
    if (overload) {
      // Capacity-starved variant: the attach front overwhelms admission, so
      // the run exercises T3346 backoff and the storm detector. Used by CI
      // to tap a city run into the rtv watchdog and assert overload alerts.
      cfg.attach_capacity = 8;
      cfg.storm_threshold = 30;
      cfg.storm_fraction = 0.9;
    }
    const auto mode =
        baseline ? stack::CityKernelMode::kHeap : stack::CityKernelMode::kWheel;
    par::WorkerPool pool(baseline ? 1 : wheel_jobs);
    stack::CityEngine engine(cfg, mode);
    if (emit_trace) {
      engine.set_trace_sink([](const trace::TraceRecord& r) {
        std::printf("%s\n", trace::FormatRecord(r).c_str());
      });
    }
    const double t0 = Now();
    const stack::CityReport rep = engine.Run(pool.jobs() > 1 ? &pool : nullptr);
    const double wall = Now() - t0;
    CityOutcome o;
    o.name = "single";
    o.ues = single_ues;
    o.kernel = baseline ? "heap" : "wheel";
    o.jobs = pool.jobs();
    o.report = rep;
    o.wall_seconds = wall;
    o.events_per_sec = ProductiveEps(rep, wall);
    if (!emit_trace) PrintRow(o);
    std::string json = "{\n  \"mode\": \"single\",\n  \"rows\": [\n" +
                       JsonRow(o) + "\n  ]\n}\n";
    if (!emit_trace && !obs::WriteFile(json_path, json)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    return 0;
  }

  // Sweep mode. The comparison size carries the wheel-vs-heap speedup claim.
  std::vector<std::uint32_t> sizes;
  std::uint32_t compare_ues;
  if (quick) {
    sizes = {10'000, 25'000};
    compare_ues = 10'000;
  } else {
    sizes = {10'000, 50'000, 100'000};
    if (full) sizes.push_back(1'000'000);
    compare_ues = 100'000;
  }

  std::printf("city busy-hour sweep (10 min horizon, jobs=%d)\n\n",
              wheel_jobs);
  std::vector<CityOutcome> rows;
  for (const std::uint32_t n : sizes) {
    rows.push_back(RunCity("wheel @ " + std::to_string(n),
                           ConfigFor(n, seed), stack::CityKernelMode::kWheel,
                           wheel_jobs, /*check_determinism=*/true));
    PrintRow(rows.back());
    if (!rows.back().digest_ok) {
      std::fprintf(stderr, "determinism broken at %u UEs\n", n);
      return 1;
    }
  }
  rows.push_back(RunCity("heap  @ " + std::to_string(compare_ues),
                         ConfigFor(compare_ues, seed),
                         stack::CityKernelMode::kHeap, 1,
                         /*check_determinism=*/false));
  PrintRow(rows.back());

  double wheel_eps = 0, heap_eps = 0;
  for (const auto& o : rows) {
    if (o.ues == compare_ues && o.kernel == "wheel") wheel_eps = o.events_per_sec;
    if (o.ues == compare_ues && o.kernel == "heap") heap_eps = o.events_per_sec;
  }
  const double speedup = heap_eps > 0 ? wheel_eps / heap_eps : 0;
  std::printf("\nwheel-vs-heap speedup @ %u UEs: %.2fx\n", compare_ues,
              speedup);

  std::string json = "{\n  \"compare_ues\": " + std::to_string(compare_ues) +
                     ",\n  \"jobs\": " + std::to_string(wheel_jobs) +
                     ",\n  \"speedup\": " + std::to_string(speedup) +
                     ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) json += ",\n";
    json += JsonRow(rows[i]);
  }
  json += "\n  ]\n}\n";
  if (!obs::WriteFile(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
