// Runtime-verification gateway throughput: records/sec sustained through
// ingest parse -> SPSC ring -> abstraction -> S1-S6 monitors, single-stream
// and multiplexed across stream counts. The corpus is the golden S1-S6
// scenario catalog concatenated and repeated, so every finding signature
// keeps firing at full rate; the alert count is reported next to the wall
// time so a perf change that also changed monitor behaviour is visible.
//
// Usage:  ./rtv_throughput [--bench-json PATH] [--quick]
//   --bench-json PATH   also write a machine-readable report (default
//                       BENCH_rtv.json in the working directory)
//   --quick             shrink the corpus for smoke runs
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "conf/golden.h"
#include "obs/export.h"
#include "rtv/gateway.h"
#include "trace/qxdm.h"

namespace cnv {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunOutcome {
  std::string name;
  std::size_t streams = 0;
  std::uint64_t records = 0;
  std::uint64_t alerts = 0;
  double wall_seconds = 0;
  double records_per_sec = 0;
};

// Feeds `corpus` (repeated `reps` times) round-robin across `streams`
// gateway streams in 64 KiB chunks; best wall time over `tries`.
RunOutcome RunIngest(const std::string& name, const std::string& corpus,
                     std::size_t corpus_records, std::size_t reps,
                     std::size_t streams, bool threaded, int tries) {
  RunOutcome out;
  out.name = name;
  out.streams = streams;
  constexpr std::size_t kChunk = 64 * 1024;
  double best = 1e300;
  for (int t = 0; t < tries; ++t) {
    rtv::GatewayConfig cfg;
    cfg.threaded = threaded;
    cfg.latency_sample_every = 4096;
    rtv::Gateway gw(cfg);
    gw.Start();
    const double t0 = Now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      for (std::size_t off = 0; off < corpus.size(); off += kChunk) {
        // Whole repetitions round-robin across streams, so every stream
        // sees complete scenarios and every signature still fires.
        gw.Feed(static_cast<std::uint32_t>(rep % streams),
                std::string_view(corpus).substr(off, kChunk));
      }
    }
    gw.Finish();
    const double dt = Now() - t0;
    if (dt < best) best = dt;
    if (t == 0) {
      out.records = gw.stats().records_processed;
      out.alerts = gw.stats().alerts;
    }
  }
  out.wall_seconds = best;
  out.records_per_sec =
      best > 0 ? static_cast<double>(corpus_records) *
                     static_cast<double>(reps) / best
               : 0.0;
  return out;
}

void PrintRow(const RunOutcome& o) {
  std::printf("%-24s %2zu stream(s)  %9llu records  %8.4fs  %12.0f rec/s  "
              "alerts=%llu\n",
              o.name.c_str(), o.streams, (unsigned long long)o.records,
              o.wall_seconds, o.records_per_sec,
              (unsigned long long)o.alerts);
}

std::string JsonRow(const RunOutcome& o) {
  return "    {\"name\": \"" + o.name + "\", \"streams\": " +
         std::to_string(o.streams) + ", \"records\": " +
         std::to_string(o.records) + ", \"alerts\": " +
         std::to_string(o.alerts) + ", \"wall_seconds\": " +
         std::to_string(o.wall_seconds) + ", \"records_per_sec\": " +
         std::to_string(o.records_per_sec) + "}";
}

}  // namespace
}  // namespace cnv

int main(int argc, char** argv) {
  using namespace cnv;
  std::string json_path = "BENCH_rtv.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--bench-json PATH] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  // Corpus: every golden scenario once, concatenated.
  std::string corpus;
  for (const auto& scenario : conf::GoldenScenarios()) {
    corpus += scenario.generate();
  }
  const std::size_t corpus_records = trace::ParseLog(corpus).size();
  const std::uint64_t target_records = quick ? 200'000 : 2'000'000;
  const std::size_t reps =
      (target_records + corpus_records - 1) / corpus_records;
  const int tries = quick ? 2 : 3;
  std::printf("corpus: %zu records (%zu bytes), %zu repetition(s) -> "
              "%zu records per run\n\n",
              corpus_records, corpus.size(), reps, corpus_records * reps);

  std::vector<RunOutcome> rows;
  rows.push_back(RunIngest("inline (no ring)", corpus, corpus_records, reps,
                           1, /*threaded=*/false, tries));
  PrintRow(rows.back());
  rows.push_back(RunIngest("pipelined", corpus, corpus_records, reps, 1,
                           /*threaded=*/true, tries));
  PrintRow(rows.back());
  for (const std::size_t streams : {2u, 4u, 8u}) {
    rows.push_back(RunIngest("pipelined x" + std::to_string(streams), corpus,
                             corpus_records, reps, streams,
                             /*threaded=*/true, tries));
    PrintRow(rows.back());
  }

  std::string json = "{\n  \"corpus_records\": " +
                     std::to_string(corpus_records) +
                     ",\n  \"records_per_run\": " +
                     std::to_string(corpus_records * reps) +
                     ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) json += ",\n";
    json += JsonRow(rows[i]);
  }
  json += "\n  ]\n}\n";
  if (!obs::WriteFile(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
