// Regenerates Figure 8: CDFs of location-area-update (CS) and
// routing-area-update (PS) durations for both carriers, measured at the
// device from Request-sent to Accept-received over repeated updates.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/stats.h"

using namespace cnv;

namespace {

struct UpdateSamples {
  Samples lau;
  Samples rau;
};

UpdateSamples Measure(const stack::CarrierProfile& profile, int updates) {
  stack::TestbedConfig cfg;
  cfg.profile = profile;
  cfg.seed = 77;
  stack::Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(20));
  for (int i = 0; i < updates; ++i) {
    tb.ue().CrossAreaBoundary();  // triggers both LAU and RAU
    bench::RunUntil(tb,
                    [&] {
                      return tb.ue().mm_state() ==
                             stack::UeDevice::MmState::kIdle;
                    },
                    Minutes(1));
    tb.Run(Seconds(3));
  }
  return {tb.ue().lau_duration_seconds(), tb.ue().rau_duration_seconds()};
}

void PrintCdf(const char* title, const Samples& op1, const Samples& op2) {
  std::printf("\n(%s)  n(OP-I)=%zu n(OP-II)=%zu\n", title, op1.Count(),
              op2.Count());
  std::printf("%-8s %-12s %s\n", "CDF(%)", "OP-I (s)", "OP-II (s)");
  for (int pct = 0; pct <= 100; pct += 10) {
    std::printf("%-8d %-12.2f %.2f\n", pct, op1.Percentile(pct),
                op2.Percentile(pct));
  }
  std::printf("average: OP-I %.1fs, OP-II %.1fs\n", op1.Mean(), op2.Mean());
}

}  // namespace

int main() {
  bench::Banner("CDF of location/routing area update durations",
                "Figure 8 (§6.1.2)");

  constexpr int kUpdates = 100;
  const auto op1 = Measure(stack::OpI(), kUpdates);
  const auto op2 = Measure(stack::OpII(), kUpdates);

  PrintCdf("a) location area update, CS domain", op1.lau, op2.lau);
  PrintCdf("b) routing area update, PS domain", op1.rau, op2.rau);

  std::printf(
      "\npaper's observations to compare against:\n"
      "  LAU: OP-I all > 2s, avg ~3s; OP-II 72%% within 1.2-2.1s, avg 1.9s\n"
      "  RAU: OP-I ~75%% within 1-3.6s; OP-II 90%% within 1.6-4.1s\n");
  return 0;
}
