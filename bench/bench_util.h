// Shared helpers for the experiment harnesses in bench/. Each binary
// regenerates one table or figure from the paper's evaluation.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "stack/testbed.h"

namespace cnv::bench {

inline void RunUntil(stack::Testbed& tb, const std::function<bool()>& pred,
                     SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) {
    tb.Run(Millis(100));
  }
}

inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

// Renders an ASCII bar scaled to `max` over `width` columns.
inline std::string Bar(double value, double max, int width = 40) {
  if (max <= 0) return "";
  int n = static_cast<int>(value / max * width + 0.5);
  if (n < 0) n = 0;
  if (n > width) n = width;
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace cnv::bench
