// Regenerates Table 3 (PDP context deactivation causes) and, per cause,
// whether it leads to the S1 detach in the screening model and whether the
// §8 keep-context remedy can retain the context instead.
#include <cstdio>

#include "bench/bench_util.h"
#include "mck/explorer.h"
#include "model/s1_model.h"
#include "nas/causes.h"
#include "nas/context.h"

using namespace cnv;

namespace {

// Explores the S1 model with the environment restricted to one cause.
bool CauseLeadsToDetach(nas::PdpDeactCause cause, bool keep_context_fix) {
  model::S1Model::Config cfg;
  cfg.allow_user_data_toggle = false;
  cfg.fix_keep_context = keep_context_fix;
  model::S1Model m(cfg);

  // Manual drive: 4G -> 3G, deactivate with this cause, 3G -> 4G.
  auto s = m.initial();
  s = m.apply(s, {model::S1Model::Kind::kSwitchTo3G,
                  model::SwitchReason::kMobility, {}});
  s = m.apply(s, {model::S1Model::Kind::kDeactivatePdp, {}, cause});
  s = m.apply(s, {model::S1Model::Kind::kSwitchTo4G, {}, {}});
  return s.out_of_service;
}

}  // namespace

int main() {
  bench::Banner("PDP context deactivation causes", "Table 3 (§5.1.2)");

  std::printf("%-24s %-22s %-10s %-14s %s\n", "Originator", "Cause",
              "Avoidable", "S1 detach", "S1 detach w/ keep-context fix");
  for (const auto& info : nas::AllPdpDeactCauses()) {
    const bool detach = CauseLeadsToDetach(info.cause, false);
    const bool detach_fixed = CauseLeadsToDetach(info.cause, true);
    std::printf("%-24s %-22s %-10s %-14s %s\n",
                nas::ToString(info.originator).c_str(),
                info.description.c_str(), info.avoidable ? "yes" : "no",
                detach ? "yes" : "no", detach_fixed ? "yes" : "no");
  }

  std::printf(
      "\nNote: every cause deletes the context in the standard design, so\n"
      "every cause triggers the S1 detach; the keep-context remedy retains\n"
      "the context for the avoidable causes, and the reactivate-bearer\n"
      "remedy (sec9_coordination) removes the detach for the rest.\n");
  return 0;
}
