// Regenerates Table 1 (finding summary): the screening phase discovers
// S1-S4 from the protocol models with counterexamples; the validation phase
// confirms them on both simulated carriers and additionally uncovers the
// operational slips S5 and S6 — exactly the paper's two-phase split (§4).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/findings.h"
#include "core/screening.h"
#include "core/validation.h"

using namespace cnv;

int main() {
  bench::Banner("CNetVerifier finding summary", "Table 1 (§4)");

  core::ScreeningRunner screening;
  const auto sreport = screening.RunAll();
  std::printf("%s\n", core::ScreeningRunner::Format(sreport).c_str());

  std::printf("example counterexamples from the screening phase:\n\n");
  int shown = 0;
  for (const auto& cell : sreport.cells) {
    if (!cell.counterexamples.empty() && shown < 4) {
      std::printf("[%s]\n%s\n", cell.cell.c_str(),
                  cell.counterexamples.front().c_str());
      ++shown;
    }
  }

  core::ValidationRunner validation;
  for (const auto& profile : {stack::OpI(), stack::OpII()}) {
    std::printf("%s\n",
                core::ValidationRunner::Format(validation.RunAll(profile))
                    .c_str());
  }

  std::printf("Table 1: finding summary\n");
  std::printf("%-4s %-10s %-18s %-28s %s\n", "Id", "Type", "Protocols",
              "Dimension", "Problem");
  for (const auto& f : core::AllFindings()) {
    std::printf("%-4s %-10s %-18s %-28s %s\n", f.code.c_str(),
                core::ToString(f.type).c_str(), f.protocols.c_str(),
                core::ToString(f.dimension).c_str(), f.problem.c_str());
  }
  std::printf("\nRoot causes:\n");
  for (const auto& f : core::AllFindings()) {
    std::printf("  %s: %s\n", f.code.c_str(), f.root_cause.c_str());
  }
  return 0;
}
