// Regenerates Figure 9: downlink and uplink PS speed with and without a
// concurrent CS call across 3-hour bins of the day, for both carriers. The
// drop comes from the shared-channel modulation downgrade plus the
// carrier's CS-priority scheduling (S5, §6.2).
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/channel.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace cnv;

namespace {

// Repeated speed tests within one bin; load jitters around the bin mean
// like real cell load does.
Samples SpeedTests(const stack::CarrierProfile& profile, int hour,
                   bool with_call, sim::Direction dir, Rng& rng) {
  sim::SharedChannel ch(profile.channel_policy);
  ch.SetCsCallActive(with_call);
  Samples s;
  for (int i = 0; i < 25; ++i) {
    const double load = std::clamp(
        sim::TimeOfDayLoad(hour) * rng.Uniform(0.85, 1.15), 0.05, 1.0);
    s.Add(ch.PsThroughputMbps(dir, load));
  }
  return s;
}

void PrintDirection(const stack::CarrierProfile& profile, sim::Direction dir,
                    const char* title) {
  Rng rng(7);
  std::printf("\n%s (%s): Mbps as max/median/min\n", title,
              profile.name.c_str());
  std::printf("%-8s %-24s %-24s %s\n", "bin", "w/o call", "w/ call",
              "drop(median)");
  const int bins[6] = {8, 11, 14, 17, 20, 23};
  for (const int h : bins) {
    const auto without = SpeedTests(profile, h, false, dir, rng);
    const auto with = SpeedTests(profile, h, true, dir, rng);
    std::printf("%02d-%02d    %5.1f/%5.1f/%5.1f        %5.2f/%5.2f/%5.2f       %5.1f%%\n",
                h, (h + 3) % 24, without.Max(), without.Median(),
                without.Min(), with.Max(), with.Median(), with.Min(),
                (1.0 - with.Median() / without.Median()) * 100.0);
  }
}

}  // namespace

int main() {
  bench::Banner("PS data speed with/without CS calls",
                "Figure 9 (§6.2); paper: DL drop ~73.9%/74.8%, UL drop "
                "51.1% (OP-I) / 96.1% (OP-II)");

  for (const auto& profile : {stack::OpI(), stack::OpII()}) {
    PrintDirection(profile, sim::Direction::kDownlink, "downlink");
    PrintDirection(profile, sim::Direction::kUplink, "uplink");
  }
  return 0;
}
