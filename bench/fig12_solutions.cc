// Regenerates Figure 12 (§9.1, layer extension):
//   left:  number of detaches over 100 attach+TAU rounds as a function of
//          the EMM-signal drop rate, with and without the reliable shim;
//   right: call service delay as a function of the location-update
//          processing time, with and without MM/GMM decoupling.
#include <cstdio>

#include "bench/bench_util.h"
#include "trace/analyze.h"

using namespace cnv;

namespace {

int CountDetaches(double drop_rate, bool shim, int rounds) {
  stack::TestbedConfig cfg;
  cfg.profile = stack::OpI();
  cfg.profile.reattach_delay = {.median_s = 0.5, .sigma = 0.1, .min_s = 0.2,
                                .max_s = 1.0};  // keep rounds short
  cfg.solutions.shim_layer = shim;
  cfg.radio_loss = drop_rate;
  cfg.seed = 11 + static_cast<std::uint64_t>(drop_rate * 1000);
  stack::Testbed tb(cfg);

  // The paper's harness: the device does both attach and tracking area
  // update, `rounds` times; every attach's final signal and every TAU
  // exchange is exposed to the drop rate.
  for (int i = 0; i < rounds; ++i) {
    tb.ue().PowerOn(nas::System::k4G);
    bench::RunUntil(tb,
                    [&] {
                      return tb.ue().emm_state() ==
                             stack::UeDevice::EmmState::kRegistered;
                    },
                    Minutes(3));
    tb.ue().CrossAreaBoundary();  // tracking area update
    bench::RunUntil(tb,
                    [&] {
                      return tb.ue().emm_state() !=
                             stack::UeDevice::EmmState::kWaitTauAccept;
                    },
                    Minutes(3));
    bench::RunUntil(tb, [&] { return !tb.ue().out_of_service(); },
                    Minutes(3));
    tb.ue().PowerOff();
    tb.Run(Seconds(1));
  }
  return static_cast<int>(tb.ue().oos_events());
}

double CallServiceDelay(double lu_seconds, bool decoupled) {
  stack::TestbedConfig cfg;
  cfg.profile = stack::OpI();
  cfg.profile.lau_processing = {.median_s = std::max(0.01, lu_seconds),
                                .sigma = 0.001,
                                .min_s = lu_seconds,
                                .max_s = lu_seconds};
  cfg.profile.mm_wait_net_cmd = 0;  // isolate the LU processing time
  cfg.solutions.mm_decoupled = decoupled;
  cfg.seed = 21;
  stack::Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.ue().CrossAreaBoundary();  // LU starts
  tb.Run(Millis(150));
  tb.ue().Dial();
  bench::RunUntil(tb,
                  [&] {
                    return trace::TimeOfFirst(tb.traces().records(),
                                              "CM Service Request sent")
                        .has_value();
                  },
                  Minutes(2));
  const auto dialed =
      trace::TimeOfFirst(tb.traces().records(), "user dials");
  const auto sent =
      trace::TimeOfFirst(tb.traces().records(), "CM Service Request sent");
  if (!dialed || !sent) return -1;
  return ToSeconds(*sent - *dialed);
}

}  // namespace

int main() {
  bench::Banner("Solution evaluation: reliable shim + MM decoupling",
                "Figure 12 (§9.1)");

  constexpr int kRounds = 100;
  std::printf("left: detaches over %d attach+TAU rounds vs EMM drop rate\n",
              kRounds);
  std::printf("%-12s %-14s %s\n", "drop rate", "w/o solution", "w/ shim");
  for (const double rate : {0.0, 0.02, 0.04, 0.06, 0.08, 0.10}) {
    const int without = CountDetaches(rate, /*shim=*/false, kRounds);
    const int with = CountDetaches(rate, /*shim=*/true, kRounds);
    std::printf("%3.0f%%         %-14d %d\n", rate * 100, without, with);
  }
  std::printf("(paper: detaches grow linearly with the drop rate without "
              "the solution; zero with it)\n\n");

  std::printf("right: call service delay vs location update time\n");
  std::printf("%-18s %-16s %s\n", "LU time (s)", "w/o solution",
              "w/ decoupling");
  for (const double lu : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    std::printf("%-18.1f %-16.2f %.2f\n", lu,
                CallServiceDelay(lu, /*decoupled=*/false),
                CallServiceDelay(lu, /*decoupled=*/true));
  }
  std::printf("(paper: delay tracks the LU processing time without the "
              "solution; ~0 with two MM threads)\n");
  return 0;
}
