// Engine microbenchmarks (google-benchmark): throughput of the substrates —
// the explicit-state explorer, the random walker, the discrete-event
// simulator kernel, the shim layer and a full simulated attach.
//
// Pass `--bench-json PATH` (stripped before google-benchmark sees the
// command line) to additionally write a machine-readable report of the
// explorer headline numbers — serial wall seconds and states/second on the
// Peterson and S2 full-space workloads, plus the parallel engine's wall
// time and speedup at hardware concurrency. CI consumes this as
// BENCH_engine.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "ckpt/explore_ckpt.h"
#include "mck/parallel_explorer.h"
#include "mck/random_walk.h"
#include "obs/export.h"
#include "mck/toy_models.h"
#include "model/combined_model.h"
#include "model/s2_model.h"
#include "obs/harvest.h"
#include "obs/span.h"
#include "sim/simulator.h"
#include "solution/shim.h"
#include "stack/testbed.h"

namespace cnv {
namespace {

void BM_ExplorePeterson(benchmark::State& state) {
  mck::toys::PetersonModel m;
  mck::PropertySet<mck::toys::PetersonModel::State> props = {
      {"mutex",
       [](const mck::toys::PetersonModel::State& s) {
         return !mck::toys::PetersonModel::BothCritical(s);
       },
       ""}};
  for (auto _ : state) {
    auto r = mck::Explore(m, props);
    benchmark::DoNotOptimize(r.stats.states_visited);
    state.counters["states"] = static_cast<double>(r.stats.states_visited);
  }
}
BENCHMARK(BM_ExplorePeterson);

void BM_ExploreS2Model(benchmark::State& state) {
  model::S2Model m;
  const auto props = model::S2Model::Properties();
  for (auto _ : state) {
    mck::ExploreOptions opt;
    opt.first_violation_per_property = false;  // full space
    auto r = mck::Explore(m, {}, opt);
    benchmark::DoNotOptimize(r.stats.states_visited);
    state.counters["states"] = static_cast<double>(r.stats.states_visited);
  }
  (void)props;
}
BENCHMARK(BM_ExploreS2Model);

void BM_RandomWalkS2(benchmark::State& state) {
  model::S2Model m;
  const auto props = model::S2Model::Properties();
  Rng rng(1);
  for (auto _ : state) {
    mck::WalkOptions opt;
    opt.walks = 100;
    opt.first_violation_per_property = false;
    auto r = mck::RandomWalk(m, props, rng, opt);
    benchmark::DoNotOptimize(r.stats.steps_taken);
  }
}
BENCHMARK(BM_RandomWalkS2);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
      if (++fired < 10'000) sim.ScheduleIn(1, chain);
    };
    sim.ScheduleIn(1, chain);
    sim.RunAll();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_ShimTransferOverLossyLink(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    Rng rng(3);
    sim::Link ab(sim, rng,
                 {.delay = Millis(30), .loss_prob = 0.2, .reliable = false},
                 "a->b");
    sim::Link ba(sim, rng,
                 {.delay = Millis(30), .loss_prob = 0.2, .reliable = false},
                 "b->a");
    solution::ShimEndpoint a(sim, "A");
    solution::ShimEndpoint b(sim, "B");
    a.SetTransmit([&](const nas::Message& m) { ab.Send(m); });
    b.SetTransmit([&](const nas::Message& m) { ba.Send(m); });
    ab.SetReceiver([&](const nas::Message& m) { b.OnRaw(m); });
    ba.SetReceiver([&](const nas::Message& m) { a.OnRaw(m); });
    int delivered = 0;
    b.SetDeliver([&](const nas::Message&) { ++delivered; });
    for (int i = 0; i < 100; ++i) {
      nas::Message m;
      m.kind = nas::MsgKind::kTauRequest;
      a.Send(m);
    }
    sim.RunAll(Minutes(30));
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ShimTransferOverLossyLink);

void BM_FullAttachOnTestbed(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    stack::TestbedConfig cfg;
    cfg.seed = seed++;
    stack::Testbed tb(cfg);
    tb.ue().PowerOn(nas::System::k4G);
    tb.Run(Seconds(3));
    benchmark::DoNotOptimize(tb.ue().eps_bearer_active());
  }
}
BENCHMARK(BM_FullAttachOnTestbed);

void BM_CsfbCallRoundTrip(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    stack::TestbedConfig cfg;
    cfg.profile = stack::OpI();
    cfg.seed = seed++;
    stack::Testbed tb(cfg);
    tb.ue().PowerOn(nas::System::k4G);
    tb.Run(Seconds(3));
    tb.ue().Dial();
    tb.Run(Seconds(40));
    tb.ue().HangUp();
    tb.Run(Seconds(20));
    benchmark::DoNotOptimize(tb.ue().serving());
  }
}
BENCHMARK(BM_CsfbCallRoundTrip);

// Telemetry-layer cost on a populated run: harvesting every counter and
// latency series of a finished testbed into a registry and serializing the
// JSON snapshot.
void BM_TelemetryHarvestAndExport(benchmark::State& state) {
  stack::TestbedConfig cfg;
  cfg.seed = 7;
  stack::Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(3));
  tb.ue().Dial();
  tb.Run(Seconds(40));
  tb.ue().HangUp();
  tb.Run(Seconds(20));
  for (auto _ : state) {
    obs::Registry reg;
    obs::HarvestTestbed(reg, tb);
    const std::string json = reg.ToJson(tb.sim().now());
    benchmark::DoNotOptimize(json.data());
  }
}
BENCHMARK(BM_TelemetryHarvestAndExport);

// Span stitching over the full trace of a CSFB call round trip.
void BM_SpanStitching(benchmark::State& state) {
  stack::TestbedConfig cfg;
  cfg.seed = 7;
  stack::Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(3));
  tb.ue().Dial();
  tb.Run(Seconds(40));
  tb.ue().HangUp();
  tb.Run(Seconds(20));
  const auto& records = tb.traces().records();
  for (auto _ : state) {
    auto spans = obs::StitchSpans(records);
    benchmark::DoNotOptimize(spans.size());
    state.counters["spans"] = static_cast<double>(spans.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_SpanStitching);

// --- headline report ------------------------------------------------------

// Best-of-reps wall seconds of fn().
template <typename Fn>
double TimeBest(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (dt < best) best = dt;
  }
  return best;
}

std::string JsonEntry(const std::string& name, std::uint64_t states,
                      double seconds) {
  return "    \"" + name + "\": {\"states\": " + std::to_string(states) +
         ", \"wall_seconds\": " + std::to_string(seconds) +
         ", \"states_per_second\": " +
         std::to_string(seconds > 0 ? static_cast<double>(states) / seconds
                                    : 0.0) +
         "}";
}

// Serial + parallel explorer headline numbers, written as JSON.
bool WriteBenchJson(const std::string& path) {
  mck::toys::PetersonModel peterson;
  mck::PropertySet<mck::toys::PetersonModel::State> mutex_prop = {
      {"mutex",
       [](const mck::toys::PetersonModel::State& s) {
         return !mck::toys::PetersonModel::BothCritical(s);
       },
       ""}};
  model::S2Model s2;
  mck::ExploreOptions full;
  full.first_violation_per_property = false;

  const auto peterson_ref = mck::Explore(peterson, mutex_prop);
  const double peterson_secs =
      TimeBest(20, [&] { (void)mck::Explore(peterson, mutex_prop); });

  const auto s2_ref = mck::Explore(s2, {}, full);
  const double s2_secs = TimeBest(20, [&] { (void)mck::Explore(s2, {}, full); });

  mck::ParallelExploreOptions popt;
  popt.base = full;
  popt.jobs = 0;  // hardware
  const auto s2_par_ref = mck::ParallelExplore(s2, {}, popt);
  const double s2_par_secs =
      TimeBest(20, [&] { (void)mck::ParallelExplore(s2, {}, popt); });

  // Checkpoint overhead: the same serial S2 full-space exploration with
  // snapshot hooks armed at a 5000-state cadence — the steady-state cost a
  // checkpoint-enabled run pays between snapshot writes (hash caching and
  // cadence checks; the writes themselves amortize over the cadence). A
  // single explore is ~5us, far too small for a stable ratio, so each
  // sample times a batch. The crash-safety budget is < 5% over the
  // checkpoint-disabled run.
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "cnv_perf_engine_ckpt")
          .string();
  constexpr int kCkptBatch = 2000;
  ckpt::ExploreCheckpointer<model::S2Model> checkpointer(
      ckpt_dir, "bench_s2", /*config_digest=*/1, /*every_states=*/5000);
  const auto plain_batch = [&] {
    for (int i = 0; i < kCkptBatch; ++i) (void)mck::Explore(s2, {}, full);
  };
  const auto ckpt_batch = [&] {
    for (int i = 0; i < kCkptBatch; ++i) {
      (void)mck::Explore(s2, {}, full, checkpointer.hooks(nullptr));
    }
  };
  // Interleave the reps so frequency scaling, cache state and thermal drift
  // hit both variants alike — back-to-back blocks showed swings larger than
  // the budget itself.
  plain_batch();
  ckpt_batch();  // warm-up
  double s2_batch_secs = 1e300;
  double s2_ckpt_secs = 1e300;
  for (int r = 0; r < 20; ++r) {
    s2_batch_secs = std::min(s2_batch_secs, TimeBest(1, plain_batch));
    s2_ckpt_secs = std::min(s2_ckpt_secs, TimeBest(1, ckpt_batch));
  }
  std::error_code ec;
  std::filesystem::remove_all(ckpt_dir, ec);
  const double ckpt_overhead_pct =
      s2_batch_secs > 0 ? (s2_ckpt_secs / s2_batch_secs - 1.0) * 100.0 : 0.0;
  const bool ckpt_within_budget = ckpt_overhead_pct < 5.0;
  std::printf("checkpoint overhead on explore_s2_full: %.2f%% — %s 5%% budget\n",
              ckpt_overhead_pct, ckpt_within_budget ? "within" : "EXCEEDS");

  std::string json = "{\n  \"engine\": {\n";
  json += JsonEntry("explore_peterson", peterson_ref.stats.states_visited,
                    peterson_secs) +
          ",\n";
  json += JsonEntry("explore_s2_full", s2_ref.stats.states_visited, s2_secs) +
          ",\n";
  json += JsonEntry("parallel_explore_s2_full",
                    s2_par_ref.stats.states_visited, s2_par_secs);
  json += "\n  },\n  \"parallel\": {\"jobs\": " +
          std::to_string(s2_par_ref.par.jobs) +
          ", \"speedup_vs_serial\": " +
          std::to_string(s2_par_secs > 0 ? s2_secs / s2_par_secs : 0.0) +
          "},\n";
  json += "  \"checkpoint\": {\"batch_explores\": " +
          std::to_string(kCkptBatch) +
          ", \"wall_seconds_plain\": " + std::to_string(s2_batch_secs) +
          ", \"wall_seconds_checkpointed\": " + std::to_string(s2_ckpt_secs) +
          ", \"overhead_pct\": " + std::to_string(ckpt_overhead_pct) +
          ", \"budget_pct\": 5.0, \"within_budget\": " +
          (ckpt_within_budget ? "true" : "false") + "},\n";

  // State-space reduction factors: unreduced vs POR+symmetry state counts
  // on the symmetric workloads. The independent-workers product is the
  // clean-room case ((L+1)^K states collapse to K*L+1 schedules); the
  // combined CSFB+LU+PDP multi-UE model is the paper-shaped one. The CI
  // reduction job greps meets_10x_floor — the contract is a >= 10x
  // state-count cut on at least one model, with identical violations
  // (pinned separately by the differential test suite).
  mck::ExploreOptions reduced;
  reduced.reduction.por = true;
  reduced.reduction.symmetry = true;
  const mck::toys::IndepWorkersModel indep;
  const auto indep_full = mck::Explore(indep, {});
  const auto indep_red = mck::Explore(indep, {}, reduced);
  const double indep_red_secs =
      TimeBest(20, [&] { (void)mck::Explore(indep, {}, reduced); });
  model::CombinedModel::Config combined_cfg;
  combined_cfg.ues = 2;
  const model::CombinedModel combined(combined_cfg);
  const auto combined_props = combined.Properties();
  const auto combined_full = mck::Explore(combined, combined_props);
  const auto combined_red = mck::Explore(combined, combined_props, reduced);
  const double combined_red_secs = TimeBest(
      20, [&] { (void)mck::Explore(combined, combined_props, reduced); });
  const double indep_factor =
      indep_red.stats.states_visited > 0
          ? static_cast<double>(indep_full.stats.states_visited) /
                static_cast<double>(indep_red.stats.states_visited)
          : 0.0;
  const double combined_factor =
      combined_red.stats.states_visited > 0
          ? static_cast<double>(combined_full.stats.states_visited) /
                static_cast<double>(combined_red.stats.states_visited)
          : 0.0;
  const bool meets_10x = indep_factor >= 10.0 || combined_factor >= 10.0;
  std::printf(
      "reduction factors: indep_workers %.1fx (%llu -> %llu), combined N=2 "
      "%.1fx (%llu -> %llu)\n",
      indep_factor, (unsigned long long)indep_full.stats.states_visited,
      (unsigned long long)indep_red.stats.states_visited, combined_factor,
      (unsigned long long)combined_full.stats.states_visited,
      (unsigned long long)combined_red.stats.states_visited);
  json += "  \"reduction\": {\n";
  json += JsonEntry("reduced_indep_workers", indep_red.stats.states_visited,
                    indep_red_secs) +
          ",\n";
  json += JsonEntry("reduced_combined_n2", combined_red.stats.states_visited,
                    combined_red_secs) +
          ",\n";
  json += "    \"full_states_indep_workers\": " +
          std::to_string(indep_full.stats.states_visited) +
          ", \"factor_indep_workers\": " + std::to_string(indep_factor) +
          ",\n    \"full_states_combined_n2\": " +
          std::to_string(combined_full.stats.states_visited) +
          ", \"factor_combined_n2\": " + std::to_string(combined_factor) +
          ",\n    \"meets_10x_floor\": " + (meets_10x ? "true" : "false") +
          "\n  }\n}\n";
  return obs::WriteFile(path, json);
}

}  // namespace
}  // namespace cnv

int main(int argc, char** argv) {
  // Strip --bench-json PATH before google-benchmark parses the flags.
  std::string json_path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--bench-json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!json_path.empty()) {
    if (!cnv::WriteBenchJson(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
