// Engine microbenchmarks (google-benchmark): throughput of the substrates —
// the explicit-state explorer, the random walker, the discrete-event
// simulator kernel, the shim layer and a full simulated attach.
#include <benchmark/benchmark.h>

#include "mck/explorer.h"
#include "mck/random_walk.h"
#include "mck/toy_models.h"
#include "model/s2_model.h"
#include "obs/harvest.h"
#include "obs/span.h"
#include "sim/simulator.h"
#include "solution/shim.h"
#include "stack/testbed.h"

namespace cnv {
namespace {

void BM_ExplorePeterson(benchmark::State& state) {
  mck::toys::PetersonModel m;
  mck::PropertySet<mck::toys::PetersonModel::State> props = {
      {"mutex",
       [](const mck::toys::PetersonModel::State& s) {
         return !mck::toys::PetersonModel::BothCritical(s);
       },
       ""}};
  for (auto _ : state) {
    auto r = mck::Explore(m, props);
    benchmark::DoNotOptimize(r.stats.states_visited);
    state.counters["states"] = static_cast<double>(r.stats.states_visited);
  }
}
BENCHMARK(BM_ExplorePeterson);

void BM_ExploreS2Model(benchmark::State& state) {
  model::S2Model m;
  const auto props = model::S2Model::Properties();
  for (auto _ : state) {
    mck::ExploreOptions opt;
    opt.first_violation_per_property = false;  // full space
    auto r = mck::Explore(m, {}, opt);
    benchmark::DoNotOptimize(r.stats.states_visited);
    state.counters["states"] = static_cast<double>(r.stats.states_visited);
  }
  (void)props;
}
BENCHMARK(BM_ExploreS2Model);

void BM_RandomWalkS2(benchmark::State& state) {
  model::S2Model m;
  const auto props = model::S2Model::Properties();
  Rng rng(1);
  for (auto _ : state) {
    mck::WalkOptions opt;
    opt.walks = 100;
    opt.first_violation_per_property = false;
    auto r = mck::RandomWalk(m, props, rng, opt);
    benchmark::DoNotOptimize(r.stats.steps_taken);
  }
}
BENCHMARK(BM_RandomWalkS2);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
      if (++fired < 10'000) sim.ScheduleIn(1, chain);
    };
    sim.ScheduleIn(1, chain);
    sim.RunAll();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_ShimTransferOverLossyLink(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    Rng rng(3);
    sim::Link ab(sim, rng,
                 {.delay = Millis(30), .loss_prob = 0.2, .reliable = false},
                 "a->b");
    sim::Link ba(sim, rng,
                 {.delay = Millis(30), .loss_prob = 0.2, .reliable = false},
                 "b->a");
    solution::ShimEndpoint a(sim, "A");
    solution::ShimEndpoint b(sim, "B");
    a.SetTransmit([&](const nas::Message& m) { ab.Send(m); });
    b.SetTransmit([&](const nas::Message& m) { ba.Send(m); });
    ab.SetReceiver([&](const nas::Message& m) { b.OnRaw(m); });
    ba.SetReceiver([&](const nas::Message& m) { a.OnRaw(m); });
    int delivered = 0;
    b.SetDeliver([&](const nas::Message&) { ++delivered; });
    for (int i = 0; i < 100; ++i) {
      nas::Message m;
      m.kind = nas::MsgKind::kTauRequest;
      a.Send(m);
    }
    sim.RunAll(Minutes(30));
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ShimTransferOverLossyLink);

void BM_FullAttachOnTestbed(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    stack::TestbedConfig cfg;
    cfg.seed = seed++;
    stack::Testbed tb(cfg);
    tb.ue().PowerOn(nas::System::k4G);
    tb.Run(Seconds(3));
    benchmark::DoNotOptimize(tb.ue().eps_bearer_active());
  }
}
BENCHMARK(BM_FullAttachOnTestbed);

void BM_CsfbCallRoundTrip(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    stack::TestbedConfig cfg;
    cfg.profile = stack::OpI();
    cfg.seed = seed++;
    stack::Testbed tb(cfg);
    tb.ue().PowerOn(nas::System::k4G);
    tb.Run(Seconds(3));
    tb.ue().Dial();
    tb.Run(Seconds(40));
    tb.ue().HangUp();
    tb.Run(Seconds(20));
    benchmark::DoNotOptimize(tb.ue().serving());
  }
}
BENCHMARK(BM_CsfbCallRoundTrip);

// Telemetry-layer cost on a populated run: harvesting every counter and
// latency series of a finished testbed into a registry and serializing the
// JSON snapshot.
void BM_TelemetryHarvestAndExport(benchmark::State& state) {
  stack::TestbedConfig cfg;
  cfg.seed = 7;
  stack::Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(3));
  tb.ue().Dial();
  tb.Run(Seconds(40));
  tb.ue().HangUp();
  tb.Run(Seconds(20));
  for (auto _ : state) {
    obs::Registry reg;
    obs::HarvestTestbed(reg, tb);
    const std::string json = reg.ToJson(tb.sim().now());
    benchmark::DoNotOptimize(json.data());
  }
}
BENCHMARK(BM_TelemetryHarvestAndExport);

// Span stitching over the full trace of a CSFB call round trip.
void BM_SpanStitching(benchmark::State& state) {
  stack::TestbedConfig cfg;
  cfg.seed = 7;
  stack::Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(3));
  tb.ue().Dial();
  tb.Run(Seconds(40));
  tb.ue().HangUp();
  tb.Run(Seconds(20));
  const auto& records = tb.traces().records();
  for (auto _ : state) {
    auto spans = obs::StitchSpans(records);
    benchmark::DoNotOptimize(spans.size());
    state.counters["spans"] = static_cast<double>(spans.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_SpanStitching);

}  // namespace
}  // namespace cnv

BENCHMARK_MAIN();
