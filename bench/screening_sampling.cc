// Methodology experiment (§3.2.1): "By increasing the sampling rate, we
// expect that more defects can be revealed." This harness runs the
// screening catalog in pure random-walk mode (no exhaustive pass) at
// increasing sampling budgets and reports how many of the four design
// defects each budget exposes — the paper's sampling-rate claim, made
// measurable.
#include <cstdio>
#include <set>
#include <string>

#include "bench/bench_util.h"
#include "mck/random_walk.h"
#include "model/s1_model.h"
#include "model/s2_model.h"
#include "model/s3_model.h"
#include "model/s4_model.h"

using namespace cnv;

namespace {

// Walks one model and reports whether any property was violated.
template <typename M>
bool WalkFinds(const M& m, const mck::PropertySet<typename M::State>& props,
               Rng& rng, std::uint64_t walks, std::uint64_t steps) {
  mck::WalkOptions opt;
  opt.walks = walks;
  opt.max_steps_per_walk = steps;
  return !mck::RandomWalk(m, props, rng, opt).violations.empty();
}

int DefectsFound(std::uint64_t walks, std::uint64_t steps,
                 std::uint64_t seed) {
  Rng rng(seed);
  int found = 0;
  {
    model::S1Model m;
    if (WalkFinds(m, model::S1Model::Properties(), rng, walks, steps)) {
      ++found;
    }
  }
  {
    model::S2Model m;
    if (WalkFinds(m, model::S2Model::Properties(), rng, walks, steps)) {
      ++found;
    }
  }
  {
    model::S3Model m;  // cell-reselection default
    if (WalkFinds(m, m.Properties(), rng, walks, steps)) ++found;
  }
  {
    model::S4Model m;
    if (WalkFinds(m, model::S4Model::Properties(), rng, walks, steps)) {
      ++found;
    }
  }
  return found;
}

}  // namespace

int main() {
  bench::Banner("Random-sampling rate vs defects revealed",
                "§3.2.1 methodology claim");

  std::printf("%-12s %-12s %s\n", "walks", "steps/walk",
              "design defects found (of 4), 5 seeds");
  for (const std::uint64_t walks : {1u, 2u, 5u, 10u, 50u, 200u}) {
    for (const std::uint64_t steps : {3u, 8u, 30u}) {
      std::string marks;
      int total = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const int n = DefectsFound(walks, steps, seed);
        total += n;
        marks += std::to_string(n);
        marks += " ";
      }
      std::printf("%-12llu %-12llu %s  (avg %.1f)\n",
                  static_cast<unsigned long long>(walks),
                  static_cast<unsigned long long>(steps), marks.c_str(),
                  total / 5.0);
    }
  }
  std::printf(
      "\nShort, few walks miss the deep interleavings (S2 needs the loss or\n"
      "the deferral to line up with the TAU); the count rises monotonically\n"
      "with the sampling budget until all four defects are found — the\n"
      "paper's rationale for its random-sampling scenario treatment.\n");
  return 0;
}
