// Regenerates Figure 7: call setup time and RSSI along Route-1 (15-mile
// freeway). The caller repeatedly dials, hangs up, and immediately redials;
// location area updates fire at the 9.5-mile and 13.2-mile spots. Calls
// that collide with an update show the ~8 s setup inflation (S4).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/radio.h"

using namespace cnv;

int main() {
  bench::Banner("Call setup time and RSSI on Route-1",
                "Figure 7 (§6.1.2), OP-I");

  stack::TestbedConfig cfg;
  cfg.profile = stack::OpI();
  cfg.seed = 42;
  stack::Testbed tb(cfg);
  const sim::RssiProfile route = sim::Route1Profile();

  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));

  constexpr double kMph = 60.0;  // one mile per minute
  const SimTime start = tb.sim().now();
  auto mile_now = [&] {
    return ToSeconds(tb.sim().now() - start) / 60.0 * (kMph / 60.0);
  };

  const std::vector<double> update_spots = {9.5, 13.2};
  std::size_t next_spot = 0;

  struct CallRow {
    double mile;
    double rssi;
    double setup_s;
    bool during_update;
  };
  std::vector<CallRow> rows;

  while (mile_now() < 15.0) {
    // Keep RSSI and update spots current.
    tb.ue().SetRssi(route.At(mile_now()));
    if (next_spot < update_spots.size() &&
        mile_now() >= update_spots[next_spot]) {
      ++next_spot;
      tb.ue().CrossAreaBoundary();
    }
    const double dial_mile = mile_now();
    const bool lu_busy =
        tb.ue().mm_state() != stack::UeDevice::MmState::kIdle;
    const std::size_t calls_before = tb.ue().call_setup_seconds().Count();
    tb.ue().Dial();
    bench::RunUntil(tb,
                    [&] {
                      return tb.ue().call_setup_seconds().Count() >
                             calls_before;
                    },
                    Minutes(2));
    if (tb.ue().call_setup_seconds().Count() == calls_before) break;
    rows.push_back({dial_mile, route.At(dial_mile),
                    tb.ue().call_setup_seconds().Values().back(), lu_busy});
    tb.Run(Seconds(8));  // short call, then hang up and redial
    tb.ue().HangUp();
    tb.Run(Seconds(2));
  }

  std::printf("%-8s %-10s %-12s %s\n", "mile", "RSSI(dBm)", "setup(s)",
              "collided with location update?");
  double plain_sum = 0, plain_n = 0, inflated_max = 0;
  for (const auto& r : rows) {
    std::printf("%-8.1f %-10.0f %-12.1f %s  |%s|\n", r.mile, r.rssi,
                r.setup_s, r.during_update ? "YES" : "no ",
                bench::Bar(r.setup_s, 22.0, 30).c_str());
    if (!r.during_update) {
      plain_sum += r.setup_s;
      plain_n += 1;
    } else {
      if (r.setup_s > inflated_max) inflated_max = r.setup_s;
    }
  }
  if (plain_n > 0) {
    std::printf("\naverage setup without collision: %.1fs (paper: ~11.4s)\n",
                plain_sum / plain_n);
  }
  if (inflated_max > 0) {
    std::printf("worst collided setup: %.1fs (paper: ~19.7s)\n",
                inflated_max);
  }
  std::printf("RSSI stays within the good-signal band [-95,-51] dBm, so the\n"
              "inflation is attributable to the location update, not radio.\n");
  return 0;
}
