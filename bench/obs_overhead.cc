// Instrumentation-overhead micro-bench: the telemetry layer must cost the
// simulator hot path less than 5%. Three configurations run the same
// 200k-event timer-heavy workload:
//
//   baseline   the kernel as-is (its always-on event/timer counters are
//              plain integer increments — they ARE the hot-path cost)
//   harvested  baseline + one full registry harvest + JSON export at the
//              end of the run (the chaos-campaign end-of-run pattern)
//   sampled    baseline + a SnapshotScheduler serializing a registry
//              snapshot every simulated second (the periodic-export mode)
//
// Reported per-config: best-of-rounds wall time (configs interleaved per
// round to cancel drift) and the overhead vs baseline. The <5% claim is about `harvested`, since the
// always-on counters plus one export is what every instrumented run pays;
// periodic sampling cost scales with the chosen cadence, and is printed
// for calibration.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/export.h"
#include "obs/harvest.h"
#include "sim/simulator.h"
#include "sim/timer.h"

using namespace cnv;

namespace {

constexpr int kEvents = 200'000;
constexpr int kReps = 7;

// Timer-heavy event chain: every event re-arms a guard timer and cancels
// it on the next firing, mirroring how the NAS procedures drive the kernel.
void Workload(sim::Simulator& sim) {
  sim::Timer guard(sim, "guard");
  int fired = 0;
  std::function<void()> chain = [&] {
    guard.Start(Millis(50), [] {});
    if (++fired < kEvents) sim.ScheduleIn(Millis(1), chain);
  };
  sim.ScheduleIn(Millis(1), chain);
  // Bounded: with a SnapshotScheduler attached the queue never drains (the
  // scheduler perpetually re-arms), so an unbounded RunAll would spin
  // forever. 220 s covers the 200 s chain plus the last guard expiry.
  sim.RunAll(Seconds(220));
}

double TimeOnce(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench::Banner("obs_overhead: telemetry cost on the simulator hot path",
                "instrumentation budget (< 5% vs registry-disabled run)");

  const std::function<void()> run_baseline = [] {
    sim::Simulator sim;
    Workload(sim);
  };
  const std::function<void()> run_harvested = [] {
    sim::Simulator sim;
    Workload(sim);
    obs::Registry reg;
    obs::HarvestSimulator(reg, sim);
    const std::string json = reg.ToJson(sim.now());
    if (json.empty()) std::abort();  // keep the export from being elided
  };
  const std::function<void()> run_sampled = [] {
    sim::Simulator sim;
    obs::SnapshotScheduler snaps(
        sim, [&sim](obs::Registry& reg) { obs::HarvestSimulator(reg, sim); },
        Seconds(1));
    snaps.Start();
    Workload(sim);
    if (snaps.snapshots().empty()) std::abort();
  };

  // Interleave the configurations within each round so slow drift (CPU
  // frequency, page cache, allocator warmup) hits all three equally, and
  // take the per-config minimum — the least-noise estimate of true cost.
  run_baseline();  // warmup round, untimed
  double baseline = 1e9, harvested = 1e9, sampled = 1e9;
  for (int r = 0; r < kReps; ++r) {
    baseline = std::min(baseline, TimeOnce(run_baseline));
    harvested = std::min(harvested, TimeOnce(run_harvested));
    sampled = std::min(sampled, TimeOnce(run_sampled));
  }

  const auto pct = [&](double t) { return (t / baseline - 1.0) * 100.0; };
  std::printf("\n%d events x %d reps, best-of-rounds wall time:\n", kEvents, kReps);
  std::printf("  baseline (no registry):        %8.2f ms\n", baseline * 1e3);
  std::printf("  + end-of-run harvest/export:   %8.2f ms  (%+.2f%%)\n",
              harvested * 1e3, pct(harvested));
  std::printf("  + 1 Hz sim-clock snapshots:    %8.2f ms  (%+.2f%%)\n",
              sampled * 1e3, pct(sampled));

  const bool ok = pct(harvested) < 5.0;
  std::printf("\nend-of-run instrumentation overhead %.2f%% — %s 5%% budget\n",
              pct(harvested), ok ? "within" : "EXCEEDS");
  return ok ? 0 : 1;
}
