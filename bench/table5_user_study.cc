// Regenerates Table 5 (and the §7 activity counts): the two-week user study
// over 20 simulated volunteers, 12 with 4G-capable phones, split across the
// two carriers. Also prints the S5 affected-data statistics the section
// reports (average call 67s, average affected volume ~368KB).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/user_study.h"

using namespace cnv;

int main() {
  bench::Banner("Two-week user study", "Table 5 + §7");

  core::UserStudy study;  // defaults: 20 users / 12 with 4G / 14 days
  const auto r = study.Run();

  std::printf("%s\n", core::UserStudy::FormatTable5(r).c_str());
  std::printf("paper's Table 5 for comparison:\n"
              "  S1 3.1%% (4/129)   S2 0.0%% (0/30)    S3 62.1%% (64/103)\n"
              "  S4 7.6%% (6/79)    S5 77.4%% (113/146) S6 2.6%% (5/190)\n\n");

  std::printf("%s\n", core::UserStudy::FormatTable6(r).c_str());

  if (!r.call_durations_s.Empty()) {
    std::printf("S5 detail: average call duration %.0fs (paper: 67s)\n",
                r.call_durations_s.Mean());
  }
  if (!r.affected_data_mb.Empty()) {
    std::printf("           average affected data per call %.2f MB "
                "(paper: ~0.37 MB, max 18.5 MB)\n",
                r.affected_data_mb.Mean());
    std::printf("           largest affected volume %.1f MB\n",
                r.affected_data_mb.Max());
  }
  return 0;
}
