// Regenerates §9.3 (cross-system coordination):
//  1) 3G->4G switch time without an active PDP context, with the
//     EPS-bearer-reactivation remedy (no detach, ~sub-second) versus the
//     standard behaviour (detach + operator-controlled re-attach);
//  2) the MME absorbing a 3G location-update failure instead of detaching
//     the device.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/stats.h"

using namespace cnv;

namespace {

Samples SwitchTimes(bool remedy, const stack::CarrierProfile& profile,
                    int runs) {
  Samples out;
  for (int i = 0; i < runs; ++i) {
    stack::TestbedConfig cfg;
    cfg.profile = profile;
    cfg.solutions.reactivate_bearer = remedy;
    cfg.seed = 900 + static_cast<std::uint64_t>(i);
    stack::Testbed tb(cfg);
    tb.ue().PowerOn(nas::System::k4G);
    tb.Run(Seconds(2));
    tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
    tb.Run(Seconds(5));
    tb.sgsn().DeactivatePdp(nas::PdpDeactCause::kRegularDeactivation);
    tb.Run(Seconds(1));
    const SimTime start = tb.sim().now();
    tb.ue().SwitchTo4g();
    bench::RunUntil(tb,
                    [&] {
                      return !tb.ue().out_of_service() &&
                             tb.ue().emm_state() ==
                                 stack::UeDevice::EmmState::kRegistered &&
                             tb.ue().eps_bearer_active();
                    },
                    Minutes(2));
    out.Add(ToSeconds(tb.sim().now() - start));
  }
  return out;
}

}  // namespace

int main() {
  bench::Banner("Cross-system coordination remedies",
                "§9.3; paper: 0.1-0.4s (median 0.27s) with the remedy vs "
                "0.3-1.3s+ (median 0.9s, up to 24.7s) without");

  std::printf("1) 3G->4G switch time with no active PDP context (%d runs "
              "each, OP-I):\n",
              30);
  for (const bool remedy : {true, false}) {
    const Samples s = SwitchTimes(remedy, stack::OpI(), 30);
    std::printf("   %-22s min %.2fs  median %.2fs  max %.2fs\n",
                remedy ? "with reactivation" : "without (detach+reattach)",
                s.Min(), s.Median(), s.Max());
  }

  std::printf("\n2) MME handling of a 3G location-update failure after a "
              "CSFB call:\n");
  for (const bool remedy : {false, true}) {
    stack::TestbedConfig cfg;
    cfg.profile = stack::OpII();
    cfg.profile.lu_failure_prob = 1.0;  // force the race
    cfg.solutions.mme_lu_recovery = remedy;
    stack::Testbed tb(cfg);
    tb.ue().PowerOn(nas::System::k4G);
    tb.Run(Seconds(2));
    tb.ue().Dial();
    bench::RunUntil(tb,
                    [&] {
                      return tb.ue().call_state() ==
                             stack::UeDevice::CallState::kActive;
                    },
                    Minutes(2));
    tb.Run(Seconds(10));
    tb.ue().HangUp();
    bench::RunUntil(tb,
                    [&] { return tb.ue().serving() == nas::System::k4G; },
                    Minutes(2));
    tb.Run(Seconds(20));
    bench::RunUntil(tb, [&] { return !tb.ue().out_of_service(); },
                    Minutes(2));
    std::printf("   %-22s detaches sent: %llu, MME LU recoveries: %llu, "
                "MSC registered: %s\n",
                remedy ? "with MME recovery" : "without",
                static_cast<unsigned long long>(tb.mme().detaches_sent()),
                static_cast<unsigned long long>(tb.mme().lu_recoveries()),
                tb.msc().registered() ? "yes" : "no");
  }
  return 0;
}
