// Signalling-storm throughput benchmark: wall-clock cost of pushing a
// mass-attach storm through the core under each admission policy, plus a
// storm-size scaling sweep. The simulated outcome (served / rejected /
// shed counts, queue peak, drain) is deterministic per configuration and
// is reported next to the wall time so a perf regression that also changed
// behaviour is visible immediately.
//
// Usage:  ./perf_storm [--bench-json PATH] [--quick]
//   --bench-json PATH   also write a machine-readable report (default
//                       BENCH_storm.json in the working directory)
//   --quick             shrink the storms for smoke runs
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/export.h"
#include "stack/testbed.h"

namespace cnv {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct StormOutcome {
  std::string name;
  std::uint64_t injected = 0;
  std::uint64_t offered = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::size_t queue_peak = 0;
  double wall_seconds = 0;
  double msgs_per_sec = 0;
};

// One storm cell: `count` synthetic attaches at 500/s into the MME while
// the foreground device powers on mid-storm, run to quiescence.
StormOutcome RunStorm(const std::string& name,
                      const stack::OverloadConfig& overload,
                      std::size_t count, int reps) {
  StormOutcome out;
  out.name = name;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    stack::TestbedConfig cfg;
    cfg.profile = stack::OpI();
    cfg.seed = 7;
    cfg.overload = overload;
    stack::Testbed tb(cfg);
    tb.storm().MassAttach(Millis(10), count, Millis(2));
    tb.sim().ScheduleAt(Millis(100),
                        [&tb] { tb.ue().PowerOn(nas::System::k4G); });
    const double t0 = Now();
    // Long enough for even the unbounded backlog to drain at 5 ms/msg.
    tb.Run(Seconds(ToSeconds(Millis(2)) * static_cast<double>(count)) +
           Seconds(200));
    const double dt = Now() - t0;
    if (dt < best) best = dt;
    if (r == 0) {
      const stack::OverloadStats& s = tb.mme().overload_stats();
      out.injected = tb.storm().injected();
      out.offered = s.offered();
      out.served = s.admitted + s.background_served;
      out.rejected = s.rejected_congestion;
      out.shed = s.shed;
      out.queue_peak = s.queue_peak;
    }
  }
  out.wall_seconds = best;
  out.msgs_per_sec =
      best > 0 ? static_cast<double>(out.injected) / best : 0.0;
  return out;
}

void PrintRow(const StormOutcome& o) {
  std::printf(
      "%-28s %8llu msgs  %8.4fs  %10.0f msg/s  served=%llu rejected=%llu "
      "shed=%llu queue-peak=%zu\n",
      o.name.c_str(), (unsigned long long)o.injected, o.wall_seconds,
      o.msgs_per_sec, (unsigned long long)o.served,
      (unsigned long long)o.rejected, (unsigned long long)o.shed,
      o.queue_peak);
}

std::string JsonRow(const StormOutcome& o) {
  return "    {\"name\": \"" + o.name + "\", \"injected\": " +
         std::to_string(o.injected) + ", \"offered\": " +
         std::to_string(o.offered) + ", \"served\": " +
         std::to_string(o.served) + ", \"rejected\": " +
         std::to_string(o.rejected) + ", \"shed\": " +
         std::to_string(o.shed) + ", \"queue_peak\": " +
         std::to_string(o.queue_peak) + ", \"wall_seconds\": " +
         std::to_string(o.wall_seconds) + ", \"msgs_per_sec\": " +
         std::to_string(o.msgs_per_sec) + "}";
}

}  // namespace
}  // namespace cnv

int main(int argc, char** argv) {
  using namespace cnv;
  std::string json_path = "BENCH_storm.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--bench-json PATH] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::size_t base = quick ? 5'000 : 30'000;
  const int reps = quick ? 2 : 3;

  stack::OverloadConfig off;  // legacy zero-queueing core
  stack::OverloadConfig unbounded;
  unbounded.enabled = true;
  unbounded.policy = stack::AdmissionPolicy::kUnbounded;
  stack::OverloadConfig reject = unbounded;
  reject.policy = stack::AdmissionPolicy::kRejectBackoff;
  stack::OverloadConfig shed = unbounded;
  shed.policy = stack::AdmissionPolicy::kPriorityShed;

  std::printf("storm throughput by admission policy (%zu msgs)\n\n", base);
  std::vector<StormOutcome> policy_rows = {
      RunStorm("legacy (overload off)", off, base, reps),
      RunStorm("unbounded queue", unbounded, base, reps),
      RunStorm("reject-backoff", reject, base, reps),
      RunStorm("priority-shed", shed, base, reps),
  };
  for (const auto& o : policy_rows) PrintRow(o);

  std::printf("\nstorm-size scaling (reject-backoff)\n");
  std::vector<StormOutcome> scale_rows;
  for (const std::size_t n :
       {base / 10, base / 2, base, quick ? base : base * 2}) {
    scale_rows.push_back(
        RunStorm("reject @ " + std::to_string(n), reject, n, reps));
    PrintRow(scale_rows.back());
  }

  std::string json = "{\n  \"storm_msgs\": " + std::to_string(base) +
                     ",\n  \"policies\": [\n";
  for (std::size_t i = 0; i < policy_rows.size(); ++i) {
    if (i > 0) json += ",\n";
    json += JsonRow(policy_rows[i]);
  }
  json += "\n  ],\n  \"scaling\": [\n";
  for (std::size_t i = 0; i < scale_rows.size(); ++i) {
    if (i > 0) json += ",\n";
    json += JsonRow(scale_rows[i]);
  }
  json += "\n  ]\n}\n";
  if (!obs::WriteFile(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
