// Parallel-engine scaling benchmark: serial Explore vs ParallelExplore at
// 1/2/4/8 workers, plus campaign-sweep scaling. Every parallel run is
// verified against the serial stats before its time is reported — a speedup
// with wrong results would be meaningless.
//
// Beyond the screening models (which are small — the paper's scenario cells
// exhaust in milliseconds), the harness includes a parameterized product-
// space model (k bounded counters, (cap+1)^k states) so the sharded table
// is exercised at the state counts where parallelism pays.
//
// Usage:  ./perf_parallel [--bench-json PATH] [--quick]
//   --bench-json PATH   also write a machine-readable report (default
//                       BENCH_parallel.json in the working directory)
//   --quick             shrink the product-space model for smoke runs
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fault/campaign.h"
#include "mck/hash.h"
#include "mck/parallel_explorer.h"
#include "model/s2_model.h"
#include "model/s3_model.h"
#include "model/s4_model.h"
#include "obs/export.h"

namespace cnv {
namespace {

// k independent bounded counters; any counter may be incremented while below
// cap. Reachable states: (cap + 1)^k — a dial for state-space size.
struct ProductCounterModel {
  int counters = 6;
  int cap = 7;

  struct State {
    std::array<std::int8_t, 8> v{};
    bool operator==(const State&) const = default;
  };
  struct Action {
    int counter = 0;
  };

  State initial() const { return {}; }
  std::vector<Action> enabled(const State& s) const {
    std::vector<Action> acts;
    acts.reserve(static_cast<std::size_t>(counters));
    for (int i = 0; i < counters; ++i) {
      if (s.v[static_cast<std::size_t>(i)] < cap) acts.push_back({i});
    }
    return acts;
  }
  State apply(const State& s, const Action& a) const {
    State next = s;
    ++next.v[static_cast<std::size_t>(a.counter)];
    return next;
  }
  std::string describe(const Action& a) const {
    return "inc c" + std::to_string(a.counter);
  }
};

std::size_t HashValue(const ProductCounterModel::State& s) {
  mck::Hasher h;
  for (const auto x : s.v) h.Mix(static_cast<std::uint64_t>(x));
  return h.Digest();
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Best-of-reps wall time of fn() in seconds.
template <typename Fn>
double TimeBest(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = Now();
    fn();
    const double dt = Now() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

struct ExploreRow {
  std::string name;
  std::uint64_t states = 0;
  double serial_seconds = 0;
  std::vector<std::pair<int, double>> parallel_seconds;  // (jobs, secs)
};

bool g_mismatch = false;

template <typename M>
ExploreRow BenchExplore(const std::string& name, const M& m,
                        const mck::PropertySet<typename M::State>& props,
                        mck::ExploreOptions base, int reps) {
  ExploreRow row;
  row.name = name;

  const auto serial_ref = mck::Explore(m, props, base);
  row.states = serial_ref.stats.states_visited;
  row.serial_seconds =
      TimeBest(reps, [&] { (void)mck::Explore(m, props, base); });

  for (const int jobs : {1, 2, 4, 8}) {
    mck::ParallelExploreOptions opt;
    opt.base = base;
    opt.jobs = jobs;
    const auto par = mck::ParallelExplore(m, props, opt);
    if (par.stats.states_visited != serial_ref.stats.states_visited ||
        par.stats.transitions != serial_ref.stats.transitions ||
        par.violations.size() != serial_ref.violations.size()) {
      std::fprintf(stderr,
                   "FATAL: %s at jobs=%d diverged from serial "
                   "(states %llu vs %llu)\n",
                   name.c_str(), jobs,
                   (unsigned long long)par.stats.states_visited,
                   (unsigned long long)serial_ref.stats.states_visited);
      g_mismatch = true;
    }
    const double secs = TimeBest(
        reps, [&] { (void)mck::ParallelExplore(m, props, opt); });
    row.parallel_seconds.emplace_back(jobs, secs);
  }
  return row;
}

void PrintRow(const ExploreRow& row) {
  std::printf("%-34s %9llu states  serial %8.4fs (%.0f st/s)\n",
              row.name.c_str(), (unsigned long long)row.states,
              row.serial_seconds,
              row.serial_seconds > 0
                  ? static_cast<double>(row.states) / row.serial_seconds
                  : 0.0);
  for (const auto& [jobs, secs] : row.parallel_seconds) {
    std::printf("    jobs=%d  %8.4fs  speedup vs serial: %.2fx\n", jobs, secs,
                secs > 0 ? row.serial_seconds / secs : 0.0);
  }
}

std::string JsonRow(const ExploreRow& row) {
  std::string out = "    {\"name\": \"" + row.name + "\", \"states\": " +
                    std::to_string(row.states) + ", \"serial_seconds\": " +
                    std::to_string(row.serial_seconds) + ", \"parallel\": [";
  for (std::size_t i = 0; i < row.parallel_seconds.size(); ++i) {
    const auto& [jobs, secs] = row.parallel_seconds[i];
    if (i > 0) out += ", ";
    out += "{\"jobs\": " + std::to_string(jobs) + ", \"seconds\": " +
           std::to_string(secs) + ", \"speedup\": " +
           std::to_string(secs > 0 ? row.serial_seconds / secs : 0.0) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace
}  // namespace cnv

int main(int argc, char** argv) {
  using namespace cnv;
  std::string json_path = "BENCH_parallel.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--bench-json PATH] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("parallel engine scaling (hardware jobs: %d)\n\n",
              par::HardwareJobs());
  std::vector<ExploreRow> rows;

  {
    mck::ExploreOptions full;
    full.first_violation_per_property = false;
    rows.push_back(BenchExplore("S2 model / full space", model::S2Model{},
                                model::S2Model::Properties(), full, 5));
    rows.push_back(BenchExplore("S4 model / both domains", model::S4Model{},
                                model::S4Model::Properties(), full, 5));
    model::S3Model s3;
    rows.push_back(
        BenchExplore("S3 model / cell reselection", s3, s3.Properties(), full, 5));
  }
  {
    ProductCounterModel big;
    big.counters = quick ? 4 : 6;
    big.cap = 7;  // (cap+1)^counters reachable states
    mck::PropertySet<ProductCounterModel::State> props{
        {"sum_bound",
         [](const ProductCounterModel::State& s) {
           int sum = 0;
           for (const auto x : s.v) sum += x;
           return sum <= 8 * 8;  // holds: full exploration
         },
         ""}};
    rows.push_back(BenchExplore("product counters (synthetic)", big, props,
                                mck::ExploreOptions{}, quick ? 3 : 2));
  }

  for (const auto& row : rows) PrintRow(row);

  // Campaign sweep scaling: the same sweep at parallelism 1/2/4.
  std::printf("\ncampaign sweep scaling\n");
  fault::CampaignConfig cfg;
  cfg.seeds = {1, 2, 3, 4};
  cfg.plans = {fault::plans::S2AttachDisruption(),
               fault::plans::MmeCrashRestart()};
  std::vector<std::pair<int, double>> campaign_rows;
  double campaign_serial = 0;
  for (const int jobs : {1, 2, 4}) {
    fault::CampaignConfig c = cfg;
    c.parallelism = jobs;
    const double secs =
        TimeBest(3, [&] { (void)fault::CampaignRunner(c).Run(); });
    if (jobs == 1) campaign_serial = secs;
    campaign_rows.emplace_back(jobs, secs);
    std::printf("    jobs=%d  %8.4fs  speedup vs serial: %.2fx\n", jobs, secs,
                secs > 0 ? campaign_serial / secs : 0.0);
  }

  std::string json = "{\n  \"hardware_jobs\": " +
                     std::to_string(par::HardwareJobs()) +
                     ",\n  \"explore\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) json += ",\n";
    json += JsonRow(rows[i]);
  }
  json += "\n  ],\n  \"campaign\": [";
  for (std::size_t i = 0; i < campaign_rows.size(); ++i) {
    if (i > 0) json += ", ";
    json += "{\"jobs\": " + std::to_string(campaign_rows[i].first) +
            ", \"seconds\": " + std::to_string(campaign_rows[i].second) +
            ", \"speedup\": " +
            std::to_string(campaign_rows[i].second > 0
                               ? campaign_serial / campaign_rows[i].second
                               : 0.0) +
            "}";
  }
  json += "]\n}\n";
  if (!obs::WriteFile(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return g_mismatch ? 1 : 0;
}
