// Regenerates Figure 10: an example protocol trace showing 64QAM being
// disabled by the RRC channel configuration when a CS voice call starts
// (and re-enabled when it ends), in the paper's modem-log format.
#include <cstdio>

#include "bench/bench_util.h"
#include "trace/qxdm.h"

using namespace cnv;

int main() {
  bench::Banner("Example protocol trace: 64QAM disabled during CS call",
                "Figure 10 (§6.2), OP-I");

  stack::TestbedConfig cfg;
  cfg.profile = stack::OpI();
  stack::Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.ue().StartDataSession(50.0);
  tb.Run(Seconds(5));
  std::printf("downlink speed before the call: %.1f Mbps (64QAM, up to 21 "
              "Mbps theoretical)\n\n",
              tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12));

  tb.ue().Dial();
  bench::RunUntil(tb,
                  [&] {
                    return tb.ue().call_state() ==
                           stack::UeDevice::CallState::kActive;
                  },
                  Minutes(2));
  const double during =
      tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12);
  tb.Run(Seconds(20));
  tb.ue().HangUp();
  tb.Run(Seconds(2));

  // Print the trace segment around the call, like the figure.
  for (const auto& rec : tb.traces().records()) {
    if (rec.module == "3G-RRC" || rec.module == "CM/CC" ||
        rec.module == "SM") {
      std::printf("%s\n", trace::FormatRecord(rec).c_str());
    }
  }
  std::printf("\ndownlink speed during the call: %.1f Mbps (16QAM, 11 Mbps "
              "theoretical ceiling)\n",
              during);
  return 0;
}
