// Regenerates Figure 6: (a) the RRC states each inter-system switching
// option can start from, enumerated from the S3 screening model; (b) the
// CSFB + high-rate-data trajectory that leaves the device pinned at DCH.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mck/explorer.h"
#include "model/s3_model.h"

using namespace cnv;

namespace {

// Finds, for a policy, from which 3G RRC states the post-call switch back
// to 4G is enabled — by scanning every reachable state of the model.
void ReportPolicy(model::SwitchPolicy policy) {
  model::S3Model::Config cfg;
  cfg.policy = policy;
  model::S3Model m(cfg);

  bool from[3] = {false, false, false};
  // Enumerate reachable states by exhaustive exploration with a property
  // that never fails, then probe enabled() on each visited state. The
  // explorer does not expose its arena, so re-walk: collect states via a
  // recording property.
  std::vector<model::S3Model::State> seen;
  mck::PropertySet<model::S3Model::State> collect = {
      {"collect",
       [&seen](const model::S3Model::State& s) {
         seen.push_back(s);
         return true;
       },
       ""}};
  mck::Explore(m, collect);
  for (const auto& s : seen) {
    if (s.call != model::S3Model::Call::kEnded) continue;
    for (const auto& a : m.enabled(s)) {
      if (a.kind == model::S3Model::Kind::kSwitchBackTo4g) {
        from[static_cast<int>(s.rrc3g)] = true;
      }
    }
  }
  std::printf("%-38s starts from:", model::ToString(policy).c_str());
  const char* names[3] = {"IDLE", "FACH", "DCH"};
  bool any = false;
  for (int i = 0; i < 3; ++i) {
    if (from[i]) {
      std::printf(" %s", names[i]);
      any = true;
    }
  }
  if (!any) std::printf(" (never enabled in reachable states)");
  std::printf("\n");
}

}  // namespace

int main() {
  bench::Banner("RRC states in inter-system switching options",
                "Figure 6 (§5.3)");

  std::printf("(a) switch-back options and their admissible RRC states:\n");
  ReportPolicy(model::SwitchPolicy::kReleaseWithRedirect);
  ReportPolicy(model::SwitchPolicy::kHandover);
  ReportPolicy(model::SwitchPolicy::kCellReselection);

  std::printf("\n(b) CSFB + high-rate data trajectory:\n");
  model::S3Model m;
  auto s = m.initial();
  auto step = [&](model::S3Model::Action a) {
    s = m.apply(s, a);
    std::printf("  %-55s -> 3G-RRC %s, serving %s\n", m.describe(a).c_str(),
                model::ToString(s.rrc3g).c_str(),
                s.serving == model::S3Model::Sys::k3G ? "3G" : "4G");
  };
  step({model::S3Model::Kind::kStartData, model::DataRate::kHigh});
  step({model::S3Model::Kind::kMakeCsfbCall, {}});
  step({model::S3Model::Kind::kEndCall, {}});
  std::printf("  => stuck: %s (cell reselection needs IDLE; data pins DCH)\n",
              m.StuckIn3g(s) ? "YES" : "no");
  return 0;
}
