// Regenerates Figure 13 (§9.2, domain decoupling): voice and data speeds
// with the CS/PS traffic coupled on one shared channel (single modulation)
// versus decoupled onto per-domain channels (64QAM for PS, a robust scheme
// for CS). The paper reports ~1.6x data improvement from decoupling.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/channel.h"

using namespace cnv;

namespace {

void Report(sim::Direction dir, const char* title) {
  std::printf("\n%s speeds (Mbps):\n", title);
  std::printf("%-12s %-12s %-12s\n", "", "voice", "data");
  double coupled_rate = 0, decoupled_rate = 0;
  // The paper's prototype emulates the two modulations with 802.11a rates
  // and no carrier scheduler, so the comparison isolates the modulation
  // effect: no CS-priority penalty here.
  sim::ChannelPolicy modulation_only;
  modulation_only.dl_call_penalty = 1.0;
  modulation_only.ul_call_penalty = 1.0;
  for (const bool decoupled : {false, true}) {
    sim::SharedChannel ch(modulation_only);
    ch.set_decoupled(decoupled);
    ch.SetCsCallActive(true);  // VoIP call ongoing in both cases
    const double load = 0.62;
    const double data = ch.PsThroughputMbps(dir, load);
    const double voice = ch.CsThroughputKbps() / 1000.0;
    std::printf("%-12s %-12.3f %-12.2f |%s|\n",
                decoupled ? "decoupled" : "coupled", voice, data,
                bench::Bar(data, 14.0, 28).c_str());
    (decoupled ? decoupled_rate : coupled_rate) = data;
  }
  std::printf("data improvement from decoupling: %.1fx (paper: ~1.6x)\n",
              decoupled_rate / coupled_rate);
}

}  // namespace

int main() {
  bench::Banner("Coupled vs decoupled voice + data on the 3G channel",
                "Figure 13 (§9.2)");
  Report(sim::Direction::kDownlink, "downlink");
  Report(sim::Direction::kUplink, "uplink");
  std::printf(
      "\nvoice stays on a robust modulation in both cases (12.2 kbps AMR\n"
      "is always satisfied); decoupling lets PS keep the high-rate scheme.\n");
  return 0;
}
