// Distributed-core dispatch benchmark: the same synthetic cell grid through
// dist::RunGrid on the thread and process backends at 1/2/4/8 workers,
// against the serial (workers=1 inline) baseline. Reports cells/sec and the
// per-cell dispatch overhead of each configuration, and asserts the process
// backend's supervision tax — fork, frame protocol, heartbeats — stays
// under 10% of the thread backend's wall time at 4 workers.
//
// Every timed configuration is first verified byte-identical to the serial
// payload vector; a fast backend with wrong results would be meaningless.
//
// Usage:  ./perf_dist [--bench-json PATH] [--quick]
//   --bench-json PATH   also write a machine-readable report (default
//                       BENCH_dist.json in the working directory)
//   --quick             fewer cells / reps for smoke runs
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/grid.h"
#include "obs/export.h"
#include "par/pool.h"

namespace cnv {
namespace {

// A cell is a fixed slab of FNV mixing — deterministic, CPU-bound, a stand-in
// for one campaign run. `iters` dials the per-cell cost so the dispatch
// overhead under measurement stays a small fraction of the work.
class MixGrid : public dist::CellGrid {
 public:
  MixGrid(std::size_t cells, std::uint64_t iters)
      : cells_(cells), iters_(iters) {}
  std::size_t size() const override { return cells_; }
  dist::CellOutcome RunCell(std::size_t i, std::string_view) override {
    std::uint64_t h = 0xcbf29ce484222325ull ^ (i * 0x9e3779b97f4a7c15ull);
    for (std::uint64_t k = 0; k < iters_; ++k) {
      h = (h ^ (h >> 29)) * 0x100000001b3ull;
    }
    dist::CellOutcome out;
    out.payload = "cell " + std::to_string(i) + " -> " + std::to_string(h);
    return out;
  }

 private:
  std::size_t cells_;
  std::uint64_t iters_;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double TimeBest(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = Now();
    fn();
    const double dt = Now() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

struct Row {
  dist::Backend backend = dist::Backend::kThread;
  int workers = 1;
  double seconds = 0;
  double cells_per_sec = 0;
  double per_cell_overhead_us = 0;  // vs ideal serial_seconds / workers
};

}  // namespace
}  // namespace cnv

int main(int argc, char** argv) {
  using namespace cnv;
  std::string json_path = "BENCH_dist.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--bench-json PATH] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::size_t cells = quick ? 96 : 256;
  const std::uint64_t iters = 1'500'000;  // ~1 ms of mixing per cell
  const int reps = quick ? 2 : 3;
  MixGrid grid(cells, iters);

  const dist::GridResult serial = dist::RunGrid(grid, dist::DistOptions{});
  const double serial_seconds =
      TimeBest(reps, [&] { (void)dist::RunGrid(grid, dist::DistOptions{}); });
  std::printf(
      "dist dispatch benchmark: %zu cells x %llu mixes "
      "(hardware jobs: %d)\n\n",
      cells, static_cast<unsigned long long>(iters), par::HardwareJobs());
  std::printf("serial baseline: %8.4fs  (%.0f cells/s)\n\n", serial_seconds,
              static_cast<double>(cells) / serial_seconds);

  bool mismatch = false;
  std::vector<Row> rows;
  for (const auto backend : {dist::Backend::kThread, dist::Backend::kProcess}) {
    for (const int workers : {1, 2, 4, 8}) {
      dist::DistOptions opt;
      opt.backend = backend;
      opt.workers = workers;
      const dist::GridResult check = dist::RunGrid(grid, opt);
      if (!check.complete || check.payloads != serial.payloads) {
        std::fprintf(stderr, "FATAL: %s at workers=%d diverged from serial\n",
                     ToString(backend).c_str(), workers);
        mismatch = true;
      }
      Row row;
      row.backend = backend;
      row.workers = workers;
      row.seconds = TimeBest(reps, [&] { (void)dist::RunGrid(grid, opt); });
      row.cells_per_sec = static_cast<double>(cells) / row.seconds;
      // Overhead vs embarrassingly-parallel ideal: everything the backend
      // spends beyond serial_work / workers, amortized per cell.
      row.per_cell_overhead_us =
          (row.seconds - serial_seconds / workers) * 1e6 /
          static_cast<double>(cells);
      rows.push_back(row);
      std::printf(
          "%-8s workers=%d  %8.4fs  %8.0f cells/s  overhead %7.1f us/cell\n",
          ToString(backend).c_str(), workers, row.seconds, row.cells_per_sec,
          row.per_cell_overhead_us);
    }
    std::printf("\n");
  }

  // The budget: at 4 workers, supervised processes may cost at most 10%
  // more wall time than in-process threads on the same grid.
  double thread4 = 0, process4 = 0;
  for (const auto& r : rows) {
    if (r.workers != 4) continue;
    (r.backend == dist::Backend::kThread ? thread4 : process4) = r.seconds;
  }
  const double overhead = thread4 > 0 ? process4 / thread4 - 1.0 : 0.0;
  const bool within_budget = overhead < 0.10;
  std::printf("process vs thread at 4 workers: %+.1f%% (budget < 10%%: %s)\n",
              overhead * 100.0, within_budget ? "OK" : "EXCEEDED");

  std::string json = "{\n";
  json += "  \"cells\": " + std::to_string(cells) + ",\n";
  json += "  \"iters_per_cell\": " + std::to_string(iters) + ",\n";
  json += "  \"hardware_jobs\": " + std::to_string(par::HardwareJobs()) +
          ",\n";
  json += "  \"serial_seconds\": " + std::to_string(serial_seconds) + ",\n";
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i > 0) json += ",\n";
    json += "    {\"backend\": \"" + ToString(r.backend) + "\", \"workers\": " +
            std::to_string(r.workers) + ", \"seconds\": " +
            std::to_string(r.seconds) + ", \"cells_per_sec\": " +
            std::to_string(r.cells_per_sec) + ", \"per_cell_overhead_us\": " +
            std::to_string(r.per_cell_overhead_us) + "}";
  }
  json += "\n  ],\n";
  json += "  \"process_overhead_at_4_workers\": " + std::to_string(overhead) +
          ",\n";
  json += std::string("  \"within_budget\": ") +
          (within_budget ? "true" : "false") + "\n}\n";
  if (!obs::WriteFile(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return (mismatch || !within_budget) ? 1 : 0;
}
