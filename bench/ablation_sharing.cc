// Ablation: the channel-sharing schemes of §6.2 on a multi-user cell. The
// carrier practice couples each device's CS and PS on one channel under one
// modulation; the paper sketches clustering PS sessions of many devices
// together (CS grouped separately) and letting each flow adopt its own
// modulation. This bench sweeps the user mix and radio diversity.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/cell.h"
#include "util/rng.h"

using namespace cnv;

namespace {

std::vector<sim::CellUser> MakeUsers(int n_data, int n_calls,
                                     bool diverse_radio, Rng& rng) {
  std::vector<sim::CellUser> users;
  for (int i = 0; i < n_data; ++i) {
    sim::CellUser u;
    u.data_demand_mbps = 50.0;  // saturating
    u.rssi_dbm = diverse_radio ? rng.Uniform(-100.0, -60.0) : -70.0;
    users.push_back(u);
  }
  for (int i = 0; i < n_calls; ++i) {
    sim::CellUser u;
    u.cs_call = true;
    u.rssi_dbm = -75.0;
    users.push_back(u);
  }
  return users;
}

void Sweep(bool diverse_radio) {
  Rng rng(17);
  std::printf("\nradio conditions: %s\n",
              diverse_radio ? "diverse (-100..-60 dBm)" : "uniform (-70 dBm)");
  std::printf("%-14s %-44s %s\n", "PS users/calls", "scheme",
              "total PS DL Mbps (per-user)");
  for (const auto& [n_data, n_calls] :
       std::vector<std::pair<int, int>>{{4, 0}, {4, 1}, {4, 3}, {8, 2}}) {
    const auto users = MakeUsers(n_data, n_calls, diverse_radio, rng);
    for (const auto scheme : {sim::SharingScheme::kCoupledSharedChannel,
                              sim::SharingScheme::kClusteredByDomain,
                              sim::SharingScheme::kPerUserModulation}) {
      sim::Cell cell(scheme, stack::OpI().channel_policy);
      cell.SetUsers(users);
      const double total =
          cell.TotalPsThroughputMbps(sim::Direction::kDownlink, 0.62);
      std::printf("%2d/%-11d %-44s %6.2f (%.2f)\n", n_data, n_calls,
                  sim::ToString(scheme).c_str(), total,
                  total / n_data);
    }
  }
}

}  // namespace

int main() {
  bench::Banner("Ablation: channel sharing schemes on a multi-user cell",
                "§6.2 alternative sharing discussion");

  Sweep(/*diverse_radio=*/false);
  Sweep(/*diverse_radio=*/true);

  std::printf(
      "\nReading: with any CS call, the coupled scheme drags every PS user\n"
      "to the robust modulation plus the CS-priority penalty. Clustering\n"
      "PS away from CS restores the high-rate scheme unless a weak-signal\n"
      "member drags the cluster down; per-user modulation is additionally\n"
      "immune to that, matching §6.2's 'each adopts his own scheme'.\n");
  return 0;
}
