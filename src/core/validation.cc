#include "core/validation.h"

#include <functional>

#include "stack/testbed.h"
#include "trace/analyze.h"
#include "util/strings.h"

namespace cnv::core {

namespace {

void RunUntil(stack::Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) {
    tb.Run(Millis(100));
  }
}

void AttachIn4g(stack::Testbed& tb) {
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(2));
}

void DriveCallToActive(stack::Testbed& tb) {
  tb.ue().Dial();
  RunUntil(tb,
           [&] {
             return tb.ue().call_state() ==
                    stack::UeDevice::CallState::kActive;
           },
           Minutes(2));
}

}  // namespace

ValidationRunner::ValidationRunner(ValidationOptions options)
    : options_(options) {}

ValidationResult ValidationRunner::RunS1(
    const stack::CarrierProfile& profile) const {
  stack::TestbedConfig cfg{.profile = profile,
                           .solutions = options_.solutions,
                           .seed = options_.seed};
  stack::Testbed tb(cfg);
  AttachIn4g(tb);
  tb.ue().SwitchTo3g(model::SwitchReason::kCsfbCall);
  tb.Run(Seconds(10));
  tb.sgsn().DeactivatePdp(nas::PdpDeactCause::kRegularDeactivation);
  tb.Run(Seconds(1));
  tb.ue().SwitchTo4g();
  RunUntil(tb,
           [&] {
             return tb.ue().recovery_seconds().Count() == 1 ||
                    (!tb.ue().out_of_service() &&
                     tb.ue().emm_state() ==
                         stack::UeDevice::EmmState::kRegistered);
           },
           Minutes(2));

  ValidationResult r{FindingId::kS1, profile.name, false, ""};
  r.observed = tb.ue().detaches_no_eps_bearer() > 0;
  if (r.observed) {
    r.evidence = cnv::Format(
        "detached with \"No EPS Bearer Context Activated\"; recovery took "
        "%.1fs",
        tb.ue().recovery_seconds().Count() > 0
            ? tb.ue().recovery_seconds().Values()[0]
            : -1.0);
  } else {
    r.evidence = cnv::Format("no detach; bearer reactivations at MME: %llu",
                        static_cast<unsigned long long>(
                            tb.mme().bearer_reactivations()));
  }
  return r;
}

ValidationResult ValidationRunner::RunS2(
    const stack::CarrierProfile& profile) const {
  stack::TestbedConfig cfg{.profile = profile,
                           .solutions = options_.solutions,
                           .seed = options_.seed};
  stack::Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k4G);
  tb.ul4g().ForceDropNext(1);  // the Attach Complete is lost over the air
  tb.Run(Seconds(2));
  tb.ue().CrossAreaBoundary();
  RunUntil(tb, [&] { return tb.ue().oos_events() > 0; }, Seconds(10));

  ValidationResult r{FindingId::kS2, profile.name, false, ""};
  r.observed = tb.ue().oos_events() > 0;
  r.evidence =
      r.observed
          ? "lost Attach Complete -> TAU rejected (implicitly detached)"
          : "attach survived the loss (reliable shim retransmitted)";
  return r;
}

ValidationResult ValidationRunner::RunS3(
    const stack::CarrierProfile& profile) const {
  stack::TestbedConfig cfg{.profile = profile,
                           .solutions = options_.solutions,
                           .seed = options_.seed};
  cfg.profile.lu_failure_prob = 0;  // isolate from S6
  stack::Testbed tb(cfg);
  AttachIn4g(tb);
  tb.ue().StartDataSession(0.2);  // the paper's 200 kbps UDP session
  tb.Run(Seconds(1));
  DriveCallToActive(tb);
  tb.Run(Seconds(10));
  tb.ue().HangUp();
  tb.Run(Minutes(2));

  ValidationResult r{FindingId::kS3, profile.name, false, ""};
  const bool stuck = tb.ue().serving() == nas::System::k3G;
  r.observed = stuck;
  if (stuck) {
    r.evidence = cnv::Format(
        "still in 3G 120s after the CSFB call ended (RRC %s, data ongoing)",
        model::ToString(tb.ue().rrc3g()).c_str());
  } else if (tb.ue().stuck_in_3g_seconds().Count() > 0) {
    r.evidence = cnv::Format("returned to 4G %.1fs after call end",
                        tb.ue().stuck_in_3g_seconds().Values()[0]);
  }
  return r;
}

ValidationResult ValidationRunner::RunS4(
    const stack::CarrierProfile& profile) const {
  stack::TestbedConfig cfg{.profile = profile,
                           .solutions = options_.solutions,
                           .seed = options_.seed};
  stack::Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.ue().CrossAreaBoundary();
  tb.Run(Millis(200));
  DriveCallToActive(tb);

  ValidationResult r{FindingId::kS4, profile.name, false, ""};
  r.observed = tb.ue().deferred_service_requests() > 0;
  const double setup = tb.ue().call_setup_seconds().Count() > 0
                           ? tb.ue().call_setup_seconds().Values().back()
                           : -1.0;
  r.evidence = cnv::Format("call setup %.1fs, %llu service request(s) deferred "
                      "behind the location update",
                      setup,
                      static_cast<unsigned long long>(
                          tb.ue().deferred_service_requests()));
  return r;
}

ValidationResult ValidationRunner::RunS5(
    const stack::CarrierProfile& profile) const {
  stack::TestbedConfig cfg{.profile = profile,
                           .solutions = options_.solutions,
                           .seed = options_.seed};
  stack::Testbed tb(cfg);
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.ue().StartDataSession(50.0);  // saturating speed test
  tb.Run(Seconds(2));
  const double dl_before =
      tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12);
  const double ul_before =
      tb.ue().CurrentPsRateMbps(sim::Direction::kUplink, 12);
  DriveCallToActive(tb);
  const double dl_during =
      tb.ue().CurrentPsRateMbps(sim::Direction::kDownlink, 12);
  const double ul_during =
      tb.ue().CurrentPsRateMbps(sim::Direction::kUplink, 12);

  ValidationResult r{FindingId::kS5, profile.name, false, ""};
  const double dl_drop = 1.0 - dl_during / dl_before;
  const double ul_drop = 1.0 - ul_during / ul_before;
  r.observed = dl_drop > 0.25 || ul_drop > 0.25;
  r.evidence = cnv::Format("PS rate during CS call: DL %.1f -> %.1f Mbps "
                      "(%.1f%% drop), UL %.2f -> %.2f Mbps (%.1f%% drop)",
                      dl_before, dl_during, dl_drop * 100.0, ul_before,
                      ul_during, ul_drop * 100.0);
  return r;
}

ValidationResult ValidationRunner::RunS6(
    const stack::CarrierProfile& profile) const {
  stack::TestbedConfig cfg{.profile = profile,
                           .solutions = options_.solutions,
                           .seed = options_.seed};
  if (options_.force_s6_race) cfg.profile.lu_failure_prob = 1.0;
  stack::Testbed tb(cfg);
  AttachIn4g(tb);
  DriveCallToActive(tb);
  tb.Run(Seconds(10));
  tb.ue().HangUp();
  RunUntil(tb, [&] { return tb.ue().serving() == nas::System::k4G; },
           Minutes(2));
  RunUntil(tb, [&] { return tb.ue().oos_events() > 0; }, Seconds(10));

  ValidationResult r{FindingId::kS6, profile.name, false, ""};
  r.observed = tb.ue().detaches_implicit() + tb.ue().detaches_msc_unreachable() > 0;
  if (r.observed) {
    r.evidence = profile.lu_failure_mode ==
                         stack::LuFailureMode::kFirstUpdateDisrupted
                     ? "disrupted first 3G update propagated to 4G: "
                       "\"implicitly detach\""
                     : "MSC refused the relayed second update: \"MSC "
                       "temporarily not reachable\" -> detach";
  } else {
    r.evidence = cnv::Format(
        "no detach; MME absorbed the failure (LU recoveries: %llu)",
        static_cast<unsigned long long>(tb.mme().lu_recoveries()));
  }
  return r;
}

std::vector<ValidationResult> ValidationRunner::RunAll(
    const stack::CarrierProfile& profile) const {
  return {RunS1(profile), RunS2(profile), RunS3(profile),
          RunS4(profile), RunS5(profile), RunS6(profile)};
}

std::string ValidationRunner::Format(
    const std::vector<ValidationResult>& results) {
  std::string out = "=== CNetVerifier validation phase ===\n";
  for (const auto& r : results) {
    out += cnv::Format("%-3s [%s] %-12s %s\n", ToString(r.id).c_str(),
                       r.observed ? "OBSERVED" : "not seen",
                       r.carrier.c_str(), r.evidence.c_str());
  }
  return out;
}

}  // namespace cnv::core
