#include "core/conformance.h"

#include "conf/abstract.h"
#include "conf/compile.h"
#include "conf/script.h"
#include "mck/explorer.h"
#include "model/s1_model.h"
#include "model/s2_model.h"
#include "model/s3_model.h"
#include "model/s4_model.h"

namespace cnv::core {

namespace {

template <typename M>
mck::PropertySet<typename M::State> PropsOf(const M& m) {
  if constexpr (requires { M::Properties(); }) {
    (void)m;
    return M::Properties();
  } else {
    return m.Properties();
  }
}

// Everything one scenario cross-check needs: the configured model (decides
// the model-side verdict), the baseline defect-enabled model (provides the
// canonical counterexample the script is compiled from), the property under
// check, and the scenario's compiler.
template <typename M>
struct ScenarioPlan {
  M configured;
  M baseline;
  std::string property;
  conf::CompileResult (*compile)(const M&, const mck::Violation<M>&);
};

template <typename M>
ConformanceResult CrossCheckImpl(FindingId id, conf::Scenario scenario,
                                 const ScenarioPlan<M>& plan,
                                 const ConformanceOptions& options,
                                 const stack::CarrierProfile& profile) {
  ConformanceResult res;
  res.id = id;
  res.carrier = profile.name;

  mck::ExploreOptions eopt;
  eopt.reduction = options.reduction;
  res.model_violation =
      !mck::Explore(plan.configured, PropsOf(plan.configured), eopt)
           .Holds(plan.property);

  // The canonical counterexample always comes from the baseline model, so
  // the sim side can run (and catch sim-only divergences) even when the
  // configured model holds.
  const auto baseline_result =
      mck::Explore(plan.baseline, PropsOf(plan.baseline), eopt);
  const auto* violation = baseline_result.FindViolation(plan.property);
  if (violation == nullptr) {
    res.verdict = conf::Verdict::kBadCounterexample;
    res.detail = "baseline model produced no counterexample for " +
                 plan.property;
    return res;
  }
  mck::Violation<M> candidate = *violation;
  if (options.truncate_trace > 0 &&
      candidate.trace.size() > options.truncate_trace) {
    candidate.trace.resize(options.truncate_trace);
  }

  const conf::CompileResult compiled = plan.compile(plan.baseline, candidate);
  if (!compiled.ok) {
    res.verdict = conf::Verdict::kBadCounterexample;
    res.detail = compiled.error;
    return res;
  }
  res.counterexample = compiled.script.source;

  // Reproduction is only expected on a carrier whose policy admits the
  // counterexample (S3's stuck state needs cell reselection).
  if (res.model_violation && compiled.script.required_policy &&
      *compiled.script.required_policy != profile.csfb_return_policy) {
    res.verdict = conf::Verdict::kCarrierMismatch;
    res.detail = "counterexample requires the " +
                 model::ToString(*compiled.script.required_policy) +
                 " return policy; " + profile.name + " uses " +
                 model::ToString(profile.csfb_return_policy);
    return res;
  }

  conf::ReplayOptions ropt;
  ropt.seed = options.seed;
  ropt.solutions = options.solutions;
  const conf::ReplayOutcome outcome =
      conf::Replay(compiled.script, profile, ropt);
  res.probe_reproduced = outcome.HasProbe(scenario);
  const conf::RefinementCheck refinement = conf::CheckRefinement(
      conf::AbstractTrace(outcome.records), compiled.script.expected);
  res.refined = refinement.refines;
  res.verdict = ConformanceRunner::Classify(res.model_violation,
                                            res.probe_reproduced, res.refined);

  switch (res.verdict) {
    case conf::Verdict::kConfirmed:
      res.detail = "model violates " + plan.property +
                   "; replay reproduced the probe and the abstracted trace "
                   "refines the counterexample";
      break;
    case conf::Verdict::kAgreedAbsent:
      res.detail = "model holds " + plan.property +
                   " and the replay showed no probe";
      break;
    case conf::Verdict::kModelOnlyDivergence:
      res.detail = "model violates " + plan.property +
                   " but the replay showed no probe" +
                   (outcome.awaits_satisfied
                        ? std::string()
                        : "; replay stalled at: " + outcome.first_missed_await);
      break;
    case conf::Verdict::kSimOnlyDivergence:
      res.detail = "model holds " + plan.property +
                   " but the replay reproduced the probe";
      break;
    case conf::Verdict::kRefinementMismatch: {
      res.detail =
          "probe reproduced, but the abstracted trace is missing, in order:";
      for (const auto k : refinement.missing) {
        res.detail += " " + conf::ToString(k);
      }
      break;
    }
    default:
      break;
  }
  return res;
}

}  // namespace

ConformanceRunner::ConformanceRunner(ConformanceOptions options)
    : options_(std::move(options)) {}

conf::Verdict ConformanceRunner::Classify(bool model_violation,
                                          bool sim_observed, bool refined) {
  if (model_violation && sim_observed) {
    return refined ? conf::Verdict::kConfirmed
                   : conf::Verdict::kRefinementMismatch;
  }
  if (model_violation) return conf::Verdict::kModelOnlyDivergence;
  if (sim_observed) return conf::Verdict::kSimOnlyDivergence;
  return conf::Verdict::kAgreedAbsent;
}

ConformanceResult ConformanceRunner::CrossCheck(
    FindingId id, const stack::CarrierProfile& profile) const {
  switch (id) {
    case FindingId::kS1: {
      ScenarioPlan<model::S1Model> plan;
      model::S1Model::Config cfg;
      cfg.fix_keep_context = options_.model_solutions;
      cfg.fix_reactivate_bearer = options_.model_solutions;
      plan.configured = model::S1Model(cfg);
      plan.baseline = model::S1Model();
      plan.property = model::kPacketServiceOk;
      plan.compile = &conf::CompileS1;
      return CrossCheckImpl(id, conf::Scenario::kS1, plan, options_, profile);
    }
    case FindingId::kS2: {
      ScenarioPlan<model::S2Model> plan;
      model::S2Model::Config cfg;
      cfg.reliable_shim = options_.model_solutions;
      plan.configured = model::S2Model(cfg);
      plan.baseline = model::S2Model();
      plan.property = model::kPacketServiceOk;
      plan.compile = &conf::CompileS2;
      return CrossCheckImpl(id, conf::Scenario::kS2, plan, options_, profile);
    }
    case FindingId::kS3: {
      ScenarioPlan<model::S3Model> plan;
      model::S3Model::Config cfg;
      cfg.policy = options_.s3_policy.value_or(profile.csfb_return_policy);
      cfg.fix_csfb_tag = options_.model_solutions;
      plan.configured = model::S3Model(cfg);
      model::S3Model::Config base;
      base.policy = model::SwitchPolicy::kCellReselection;
      plan.baseline = model::S3Model(base);
      plan.property = model::kMmOk;
      plan.compile = &conf::CompileS3;
      return CrossCheckImpl(id, conf::Scenario::kS3, plan, options_, profile);
    }
    case FindingId::kS4: {
      ScenarioPlan<model::S4Model> plan;
      model::S4Model::Config cfg;
      cfg.decoupled = options_.model_solutions;
      plan.configured = model::S4Model(cfg);
      plan.baseline = model::S4Model();
      plan.property = model::kCallServiceOk;
      plan.compile = &conf::CompileS4;
      return CrossCheckImpl(id, conf::Scenario::kS4, plan, options_, profile);
    }
    default: {
      ConformanceResult res;
      res.id = id;
      res.carrier = profile.name;
      res.verdict = conf::Verdict::kAgreedAbsent;
      res.detail = ToString(id) +
                   " is a validation-only finding (no screening model to "
                   "cross-check)";
      return res;
    }
  }
}

std::vector<ConformanceResult> ConformanceRunner::RunAll(
    const stack::CarrierProfile& profile) const {
  std::vector<ConformanceResult> out;
  for (const FindingId id :
       {FindingId::kS1, FindingId::kS2, FindingId::kS3, FindingId::kS4}) {
    out.push_back(CrossCheck(id, profile));
  }
  return out;
}

std::string ConformanceRunner::Format(
    const std::vector<ConformanceResult>& results) {
  std::string out = "=== CNetVerifier conformance phase ===\n";
  for (const auto& r : results) {
    out += "\n--- " + ToString(r.id) + " on " + r.carrier + " ---\n";
    out += "    verdict: " + conf::ToString(r.verdict) + "\n";
    out += "    " + r.detail + "\n";
    if (!r.counterexample.empty()) {
      out += "    " + r.counterexample;  // already multi-line, indented
    }
  }
  return out;
}

}  // namespace cnv::core
