// The catalog of problematic protocol interactions the paper uncovers
// (Table 1): six instances spanning cross-layer, cross-domain and
// cross-system dimensions, split between design defects in the 3GPP
// standards and operational slips by carriers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cnv::core {

enum class FindingId : std::uint8_t { kS1, kS2, kS3, kS4, kS5, kS6 };

enum class FindingType : std::uint8_t { kDesign, kOperation };

enum class Dimension : std::uint8_t {
  kCrossLayer,
  kCrossDomain,
  kCrossSystem,
  kCrossDomainAndSystem,
};

enum class FindingCategory : std::uint8_t {
  kNecessaryButProblematic,  // required cooperations that misbehave (S1-S3)
  kIndependentButCoupled,    // unnecessary couplings with bad effects (S4-S6)
};

struct FindingInfo {
  FindingId id;
  std::string code;       // "S1".."S6"
  std::string problem;    // Table 1 "Problems" column
  FindingType type;       // Design / Operation
  std::string protocols;  // involved protocols
  Dimension dimension;
  FindingCategory category;
  std::string root_cause;
  // Whether the screening phase (model checking) can discover it; S5/S6 are
  // operational and surface only in validation (§4).
  bool found_by_screening;
};

const std::vector<FindingInfo>& AllFindings();
const FindingInfo& GetFinding(FindingId id);

std::string ToString(FindingId id);
std::string ToString(FindingType t);
std::string ToString(Dimension d);
std::string ToString(FindingCategory c);

}  // namespace cnv::core
