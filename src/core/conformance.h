// Conformance phase: closes the paper's screening -> validation loop
// automatically. For each S1–S4 finding the runner explores the screening
// model, compiles the counterexample into a simulator script
// (conf/compile.h), replays it on a carrier-profiled testbed, and
// cross-checks the two sides: the replay must reproduce the same finding
// probe AND its abstracted trace must refine the model counterexample.
// Every cross-check ends in a machine-readable conf::Verdict — divergences
// (model-only, sim-only, refinement or carrier mismatches, damaged
// counterexamples) are first-class results, never silent passes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "conf/verdict.h"
#include "core/findings.h"
#include "mck/reduction.h"
#include "model/vocab.h"
#include "stack/carrier.h"
#include "stack/testbed.h"

namespace cnv::core {

struct ConformanceOptions {
  std::uint64_t seed = 1;
  // §8 remedies deployed in the replayed stack (sim side only). A stack
  // remedy the model does not know about surfaces as a model-only
  // divergence — the expected shape when validating fixes.
  stack::SolutionConfig solutions;
  // §8 remedies enabled in the screening models (model side only). A fixed
  // model over an unfixed stack surfaces as a sim-only divergence.
  bool model_solutions = false;
  // Overrides the S3 model's carrier-derived CSFB return policy; replaying
  // a reselection counterexample on a release-with-redirect carrier is how
  // the carrier-mismatch verdict is exercised.
  std::optional<model::SwitchPolicy> s3_policy;
  // Test hook: keep only the first N counterexample steps before
  // compiling (0 = intact). A truncated trace no longer ends in a
  // violating state and must be rejected as kBadCounterexample.
  std::size_t truncate_trace = 0;
  // State-space reductions applied on the model-side explorations. The
  // S1–S4 slices are single-UE models with trivial reduction specs, so
  // enabling --por/--symmetry here is a sound no-op on results — the sweep
  // must stay green either way (pinned by the conformance CI step).
  mck::ReductionOptions reduction;
};

struct ConformanceResult {
  FindingId id = FindingId::kS1;
  std::string carrier;
  conf::Verdict verdict = conf::Verdict::kAgreedAbsent;
  bool model_violation = false;
  bool probe_reproduced = false;
  bool refined = false;
  std::string counterexample;  // formatted model trace ("" when none)
  std::string detail;          // human-readable cross-check summary
};

class ConformanceRunner {
 public:
  explicit ConformanceRunner(ConformanceOptions options = {});

  // Cross-checks one finding on one carrier. S5/S6 have no screening model
  // (they are validation-only findings); asking for them reports that in
  // `detail` with an agreed-absent verdict.
  ConformanceResult CrossCheck(FindingId id,
                               const stack::CarrierProfile& profile) const;

  // S1–S4 in order. The paper's affected carriers: S1/S2/S4 reproduce on
  // either profile, S3 only on the cell-reselection one (OP-II).
  std::vector<ConformanceResult> RunAll(
      const stack::CarrierProfile& profile) const;

  // The divergence lattice shared with the validation phase: model verdict
  // x observed reproduction x trace refinement -> verdict.
  static conf::Verdict Classify(bool model_violation, bool sim_observed,
                                bool refined);

  static std::string Format(const std::vector<ConformanceResult>& results);

 private:
  ConformanceOptions options_;
};

}  // namespace cnv::core
