// Phase 2 of CNetVerifier (§3.3): experimental validation. For each
// screening counterexample class an experiment scenario is set up on the
// simulated carrier testbed, protocol traces are collected from the device,
// and the anticipated misbehaviour is checked against them. The two
// operational slips (S5, S6) are — as in the paper — only discoverable
// here, not by screening.
#pragma once

#include <string>
#include <vector>

#include "core/findings.h"
#include "stack/carrier.h"
#include "stack/ue.h"

namespace cnv::core {

struct ValidationResult {
  FindingId id = FindingId::kS1;
  std::string carrier;
  bool observed = false;
  std::string evidence;  // measurement / trace summary
};

struct ValidationOptions {
  stack::SolutionConfig solutions;  // all-off reproduces the findings
  std::uint64_t seed = 1;
  // Force the S6 race so the bounded run demonstrates the failure path
  // (its natural frequency, 2.6% of CSFB calls, is measured by the user
  // study instead).
  bool force_s6_race = true;
};

class ValidationRunner {
 public:
  explicit ValidationRunner(ValidationOptions options = ValidationOptions{});

  // Runs the six experiments against one carrier profile.
  std::vector<ValidationResult> RunAll(
      const stack::CarrierProfile& profile) const;

  ValidationResult RunS1(const stack::CarrierProfile& profile) const;
  ValidationResult RunS2(const stack::CarrierProfile& profile) const;
  ValidationResult RunS3(const stack::CarrierProfile& profile) const;
  ValidationResult RunS4(const stack::CarrierProfile& profile) const;
  ValidationResult RunS5(const stack::CarrierProfile& profile) const;
  ValidationResult RunS6(const stack::CarrierProfile& profile) const;

  static std::string Format(const std::vector<ValidationResult>& results);

 private:
  ValidationOptions options_;
};

}  // namespace cnv::core
