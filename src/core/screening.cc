#include "core/screening.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "ckpt/io.h"
#include "dist/coordinator.h"
#include "mck/parallel_explorer.h"
#include "mck/random_walk.h"
#include "model/s1_model.h"
#include "model/s2_model.h"
#include "model/s3_model.h"
#include "model/s4_model.h"
#include "util/strings.h"

namespace cnv::core {

namespace {

// Explores one scenario cell exhaustively plus by random walks, collecting
// violations as (property, trace) pairs.
template <typename M>
ScenarioCellResult ExploreCell(const std::string& name, const M& m,
                               const mck::PropertySet<typename M::State>& props,
                               FindingId classify_as, Rng& rng,
                               const ScreeningOptions& options,
                               dist::Executor& exec) {
  ScenarioCellResult cell;
  cell.cell = name;

  // The exhaustive pass runs on the shared worker pool; results are
  // byte-identical to serial mck::Explore at any worker count.
  mck::ParallelExploreOptions popt;
  popt.base.reduction = options.reduction;
  const auto result = mck::ParallelExplore(m, props, popt, &exec);
  cell.stats = result.stats;
  for (const auto& v : result.violations) {
    cell.violated_properties.push_back(v.property);
    cell.counterexamples.push_back(mck::FormatTrace(m, v));
    if (std::find(cell.findings.begin(), cell.findings.end(), classify_as) ==
        cell.findings.end()) {
      cell.findings.push_back(classify_as);
    }
  }

  // Random-walk sampling (§3.2.1) — a defect found only here would indicate
  // the exhaustive pass was truncated.
  mck::WalkOptions wopt;
  wopt.walks = options.random_walks;
  const auto walked = mck::RandomWalk(m, props, rng, wopt);
  for (const auto& v : walked.violations) {
    if (std::find(cell.violated_properties.begin(),
                  cell.violated_properties.end(),
                  v.property) == cell.violated_properties.end()) {
      cell.violated_properties.push_back(v.property);
      cell.counterexamples.push_back(mck::FormatTrace(m, v));
      if (std::find(cell.findings.begin(), cell.findings.end(),
                    classify_as) == cell.findings.end()) {
        cell.findings.push_back(classify_as);
      }
    }
  }
  return cell;
}

// One catalog entry: a name-bearing closure that builds the model and
// explores the cell. Materializing the catalog as data (instead of inline
// blocks) is what lets the runner checkpoint, resume, retry and cancel at
// cell granularity.
struct CellSpec {
  std::string name;
  std::function<ScenarioCellResult(Rng&, dist::Executor&)> run;
};

std::vector<CellSpec> BuildCatalog(const ScreeningOptions& options) {
  const bool fix = options.with_solutions;
  std::vector<CellSpec> catalog;

  // --- S1 cells: inter-system context sharing.
  {
    model::S1Model::Config cfg;
    cfg.fix_keep_context = fix;
    cfg.fix_reactivate_bearer = fix;
    catalog.push_back(
        {"S1 model / inter-system switches x all PDP deactivation causes",
         [cfg, options](Rng& rng, dist::Executor& exec) {
      model::S1Model m(cfg);
      return ExploreCell(
          "S1 model / inter-system switches x all PDP deactivation causes", m,
          model::S1Model::Properties(), FindingId::kS1, rng, options, exec);
    }});
  }
  {
    model::S1Model::Config cfg;
    cfg.allow_user_data_toggle = false;
    cfg.fix_keep_context = fix;
    cfg.fix_reactivate_bearer = fix;
    catalog.push_back(
        {"S1 model / network-initiated deactivations only",
         [cfg, options](Rng& rng, dist::Executor& exec) {
      model::S1Model m(cfg);
      return ExploreCell("S1 model / network-initiated deactivations only", m,
                         model::S1Model::Properties(), FindingId::kS1, rng,
                         options, exec);
    }});
  }

  // --- S2 cells: unreliable RRC under the attach procedure.
  {
    model::S2Model::Config cfg;
    cfg.allow_duplicate = false;
    cfg.reliable_shim = fix;
    catalog.push_back(
        {"S2 model / lost signaling (Figure 5a)",
         [cfg, options](Rng& rng, dist::Executor& exec) {
      model::S2Model m(cfg);
      return ExploreCell("S2 model / lost signaling (Figure 5a)", m,
                         model::S2Model::Properties(), FindingId::kS2, rng,
                         options, exec);
    }});
  }
  {
    model::S2Model::Config cfg;
    cfg.allow_loss = false;
    cfg.reliable_shim = fix;
    catalog.push_back(
        {"S2 model / duplicate signaling (Figure 5b)",
         [cfg, options](Rng& rng, dist::Executor& exec) {
      model::S2Model m(cfg);
      return ExploreCell("S2 model / duplicate signaling (Figure 5b)", m,
                         model::S2Model::Properties(), FindingId::kS2, rng,
                         options, exec);
    }});
  }
  {
    model::S2Model::Config cfg;
    cfg.reliable_shim = fix;
    catalog.push_back(
        {"S2 model / loss + duplication combined",
         [cfg, options](Rng& rng, dist::Executor& exec) {
      model::S2Model m(cfg);
      return ExploreCell("S2 model / loss + duplication combined", m,
                         model::S2Model::Properties(), FindingId::kS2, rng,
                         options, exec);
    }});
  }

  // --- S3 cells: every inter-system switching option (Figure 6a).
  for (const auto policy : {model::SwitchPolicy::kReleaseWithRedirect,
                            model::SwitchPolicy::kHandover,
                            model::SwitchPolicy::kCellReselection}) {
    model::S3Model::Config cfg;
    cfg.policy = policy;
    cfg.fix_csfb_tag = fix;
    catalog.push_back(
        {"S3 model / " + model::ToString(policy),
         [cfg, policy, options](Rng& rng, dist::Executor& exec) {
      model::S3Model m(cfg);
      return ExploreCell("S3 model / " + model::ToString(policy), m,
                         m.Properties(), FindingId::kS3, rng, options, exec);
    }});
  }

  // --- S4 cells: CS-only, PS-only and combined HOL blocking.
  {
    model::S4Model::Config cfg;
    cfg.model_ps = false;
    cfg.decoupled = fix;
    catalog.push_back(
        {"S4 model / CS domain (CM over MM)",
         [cfg, options](Rng& rng, dist::Executor& exec) {
      model::S4Model m(cfg);
      return ExploreCell("S4 model / CS domain (CM over MM)", m,
                         model::S4Model::Properties(), FindingId::kS4, rng,
                         options, exec);
    }});
  }
  {
    model::S4Model::Config cfg;
    cfg.model_cs = false;
    cfg.decoupled = fix;
    catalog.push_back(
        {"S4 model / PS domain (SM over GMM)",
         [cfg, options](Rng& rng, dist::Executor& exec) {
      model::S4Model m(cfg);
      return ExploreCell("S4 model / PS domain (SM over GMM)", m,
                         model::S4Model::Properties(), FindingId::kS4, rng,
                         options, exec);
    }});
  }
  {
    model::S4Model::Config cfg;
    cfg.decoupled = fix;
    catalog.push_back(
        {"S4 model / both domains",
         [cfg, options](Rng& rng, dist::Executor& exec) {
      model::S4Model m(cfg);
      return ExploreCell("S4 model / both domains", m,
                         model::S4Model::Properties(), FindingId::kS4, rng,
                         options, exec);
    }});
  }

  return catalog;
}

// Cell blob: the cell result plus the RNG state *after* the cell, so a
// resumed run re-enters the shared random stream exactly where the
// checkpointed run left it.
std::string EncodeCell(const ScenarioCellResult& cell,
                       const std::string& rng_state) {
  ckpt::BinaryWriter w;
  w.Str(cell.cell);
  w.U64(cell.findings.size());
  for (const auto f : cell.findings) w.U8(static_cast<std::uint8_t>(f));
  w.U64(cell.violated_properties.size());
  for (const auto& p : cell.violated_properties) w.Str(p);
  w.U64(cell.counterexamples.size());
  for (const auto& c : cell.counterexamples) w.Str(c);
  w.U64(cell.stats.states_visited);
  w.U64(cell.stats.transitions);
  w.U64(cell.stats.max_depth_reached);
  w.U8(cell.stats.truncated ? 1 : 0);
  w.U64(cell.stats.frontier_peak);
  w.F64(cell.stats.hash_occupancy);
  w.U64(cell.stats.ample_states);
  w.U64(cell.stats.represented_states);
  w.F64(cell.stats.elapsed_wall_seconds);
  w.Str(rng_state);
  return w.Take();
}

bool DecodeCell(std::string_view payload, ScenarioCellResult* cell,
                std::string* rng_state) {
  ckpt::BinaryReader r(payload);
  ScenarioCellResult out;
  out.cell = r.Str();
  const std::uint64_t n_findings = r.U64();
  if (n_findings > payload.size()) return false;
  for (std::uint64_t i = 0; i < n_findings && r.ok(); ++i) {
    out.findings.push_back(static_cast<FindingId>(r.U8()));
  }
  const std::uint64_t n_props = r.U64();
  if (n_props > payload.size()) return false;
  for (std::uint64_t i = 0; i < n_props && r.ok(); ++i) {
    out.violated_properties.push_back(r.Str());
  }
  const std::uint64_t n_cex = r.U64();
  if (n_cex > payload.size()) return false;
  for (std::uint64_t i = 0; i < n_cex && r.ok(); ++i) {
    out.counterexamples.push_back(r.Str());
  }
  out.stats.states_visited = r.U64();
  out.stats.transitions = r.U64();
  out.stats.max_depth_reached = r.U64();
  out.stats.truncated = r.U8() != 0;
  out.stats.frontier_peak = r.U64();
  out.stats.hash_occupancy = r.F64();
  out.stats.ample_states = r.U64();
  out.stats.represented_states = r.U64();
  out.stats.elapsed_wall_seconds = r.F64();
  *rng_state = r.Str();
  if (!r.AtEnd()) return false;
  *cell = std::move(out);
  return true;
}

}  // namespace

bool ScreeningReport::Found(FindingId id) const {
  return std::find(findings_found.begin(), findings_found.end(), id) !=
         findings_found.end();
}

ScreeningRunner::ScreeningRunner(ScreeningOptions options)
    : options_(options) {}

std::uint64_t ScreeningRunner::ConfigDigest() const {
  ckpt::DigestBuilder d;
  d.Add(std::string_view("screening"));
  d.Add(options_.with_solutions);
  d.Add(options_.random_walks);
  d.Add(options_.seed);
  d.Add(options_.reduction.por);
  d.Add(options_.reduction.symmetry);
  return d.Finish();
}

// The catalog as a *chained* cell grid: the shared random-walk RNG stream
// is the chain carry (cell i's carry-in is the post-cell-(i-1) RNG state),
// which is exactly what the cell blobs have always recorded — so process
// workers, retries and resumes all re-enter the stream stream-exactly. The
// intra-cell executor is created lazily on first use *in each process*, so
// a forked worker never inherits another process's threads.
class ScreeningGrid final : public dist::CellGrid {
 public:
  ScreeningGrid(const std::vector<CellSpec>& catalog,
                const ScreeningOptions& options)
      : catalog_(catalog), options_(options) {}

  std::size_t size() const override { return catalog_.size(); }
  std::string CellName(std::size_t i) const override {
    return catalog_[i].name;
  }
  bool chained() const override { return true; }

  std::string InitialCarry() const override {
    return Rng(options_.seed).SaveState();
  }

  bool CarryFromPayload(std::string_view payload,
                        std::string* carry) const override {
    ScenarioCellResult cell;
    std::string rng_state;
    if (!DecodeCell(payload, &cell, &rng_state)) return false;
    Rng scratch(0);
    if (!scratch.RestoreState(rng_state)) return false;
    *carry = std::move(rng_state);
    return true;
  }

  dist::CellOutcome RunCell(std::size_t i, std::string_view carry_in) override {
    dist::CellOutcome out;
    Rng rng(options_.seed);
    if (!rng.RestoreState(std::string(carry_in))) {
      out.ok = false;
      out.error = "undecodable RNG carry";
      return out;
    }
    if (exec_ == nullptr) {
      exec_ = std::make_unique<dist::Executor>(options_.jobs);
    }
    const ScenarioCellResult cell = catalog_[i].run(rng, *exec_);
    out.carry = rng.SaveState();
    out.payload = EncodeCell(cell, out.carry);
    return out;
  }

 private:
  const std::vector<CellSpec>& catalog_;
  const ScreeningOptions& options_;
  std::unique_ptr<dist::Executor> exec_;  // lazy: fork safety
};

ScreeningReport ScreeningRunner::RunAll() const {
  ScreeningReport report;
  const std::vector<CellSpec> catalog = BuildCatalog(options_);

  ScreeningGrid grid(catalog, options_);
  dist::DistOptions opt;
  opt.backend = options_.backend;
  opt.workers = options_.jobs;  // chained: fleet of 1; jobs drive the cell
  opt.heartbeat_ms = options_.heartbeat_ms;
  opt.quarantine_after = options_.quarantine_after;
  opt.retry = options_.retry;
  opt.kill_plan = options_.kill_plan;
  opt.cancel = options_.cancel != nullptr ? &options_.cancel->flag() : nullptr;
  opt.cell_type = ckpt::PayloadType::kScreeningCell;
  std::unique_ptr<ckpt::ManifestStore> store;
  if (!options_.checkpoint_dir.empty()) {
    store = std::make_unique<ckpt::ManifestStore>(options_.checkpoint_dir,
                                                  ConfigDigest());
    opt.store = store.get();
    opt.resume = options_.resume;
  }

  dist::GridResult cells = dist::RunGrid(grid, opt);
  report.exec = cells.exec;
  report.quarantined = std::move(cells.quarantined);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (!cells.Done(i)) {
      report.complete = false;
      break;  // chained: nothing after the first incomplete cell ran
    }
    ScenarioCellResult cell;
    std::string rng_state;
    if (DecodeCell(cells.payloads[i], &cell, &rng_state)) {
      report.cells.push_back(std::move(cell));
    }
  }

  // Aggregate.
  for (const auto& cell : report.cells) {
    report.total_states += cell.stats.states_visited;
    report.total_transitions += cell.stats.transitions;
    report.total_wall_seconds += cell.stats.elapsed_wall_seconds;
    for (const auto f : cell.findings) {
      if (!report.Found(f)) report.findings_found.push_back(f);
    }
  }
  std::sort(report.findings_found.begin(), report.findings_found.end());
  return report;
}

std::string ScreeningRunner::Format(const ScreeningReport& report) {
  std::string out;
  out += "=== CNetVerifier screening phase ===\n";
  for (const auto& cell : report.cells) {
    out += cnv::Format("\n--- %s ---\n", cell.cell.c_str());
    out += cnv::Format("    states: %llu  transitions: %llu%s\n",
                   static_cast<unsigned long long>(cell.stats.states_visited),
                   static_cast<unsigned long long>(cell.stats.transitions),
                   cell.stats.truncated ? "  (truncated)" : "");
    out += cnv::Format(
        "    wall: %.3fs  throughput: %.0f states/s  frontier peak: %llu\n",
        cell.stats.elapsed_wall_seconds, cell.stats.StatesPerSecond(),
        static_cast<unsigned long long>(cell.stats.frontier_peak));
    if (cell.findings.empty()) {
      out += "    all properties hold\n";
      continue;
    }
    for (std::size_t i = 0; i < cell.violated_properties.size(); ++i) {
      out += "    VIOLATED: " + cell.violated_properties[i] + " -> finding " +
             ToString(cell.findings.front()) + "\n";
    }
  }
  out += cnv::Format(
      "\ntotal: %llu states, %llu transitions in %.3fs wall "
      "(%.0f states/s)\n",
      static_cast<unsigned long long>(report.total_states),
      static_cast<unsigned long long>(report.total_transitions),
      report.total_wall_seconds, report.StatesPerSecond());
  out += "\n=== findings discovered by screening: ";
  if (report.findings_found.empty()) {
    out += "(none)";
  }
  for (const auto f : report.findings_found) {
    out += ToString(f) + " ";
  }
  out += "===\n";
  return out;
}

}  // namespace cnv::core
