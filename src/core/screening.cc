#include "core/screening.h"

#include <algorithm>

#include "mck/parallel_explorer.h"
#include "mck/random_walk.h"
#include "model/s1_model.h"
#include "model/s2_model.h"
#include "model/s3_model.h"
#include "model/s4_model.h"
#include "util/strings.h"

namespace cnv::core {

namespace {

// Explores one scenario cell exhaustively plus by random walks, collecting
// violations as (property, trace) pairs.
template <typename M>
ScenarioCellResult ExploreCell(const std::string& name, const M& m,
                               const mck::PropertySet<typename M::State>& props,
                               FindingId classify_as, Rng& rng,
                               const ScreeningOptions& options,
                               par::WorkerPool& pool) {
  ScenarioCellResult cell;
  cell.cell = name;

  // The exhaustive pass runs on the shared worker pool; results are
  // byte-identical to serial mck::Explore at any worker count.
  const auto result = mck::ParallelExplore(m, props, {}, &pool);
  cell.stats = result.stats;
  for (const auto& v : result.violations) {
    cell.violated_properties.push_back(v.property);
    cell.counterexamples.push_back(mck::FormatTrace(m, v));
    if (std::find(cell.findings.begin(), cell.findings.end(), classify_as) ==
        cell.findings.end()) {
      cell.findings.push_back(classify_as);
    }
  }

  // Random-walk sampling (§3.2.1) — a defect found only here would indicate
  // the exhaustive pass was truncated.
  mck::WalkOptions wopt;
  wopt.walks = options.random_walks;
  const auto walked = mck::RandomWalk(m, props, rng, wopt);
  for (const auto& v : walked.violations) {
    if (std::find(cell.violated_properties.begin(),
                  cell.violated_properties.end(),
                  v.property) == cell.violated_properties.end()) {
      cell.violated_properties.push_back(v.property);
      cell.counterexamples.push_back(mck::FormatTrace(m, v));
      if (std::find(cell.findings.begin(), cell.findings.end(),
                    classify_as) == cell.findings.end()) {
        cell.findings.push_back(classify_as);
      }
    }
  }
  return cell;
}

}  // namespace

bool ScreeningReport::Found(FindingId id) const {
  return std::find(findings_found.begin(), findings_found.end(), id) !=
         findings_found.end();
}

ScreeningRunner::ScreeningRunner(ScreeningOptions options)
    : options_(options) {}

ScreeningReport ScreeningRunner::RunAll() const {
  ScreeningReport report;
  Rng rng(options_.seed);
  const bool fix = options_.with_solutions;
  // One pool for all exhaustive passes; jobs == 1 runs inline.
  par::WorkerPool pool(options_.jobs);

  // --- S1 cells: inter-system context sharing.
  {
    model::S1Model::Config cfg;
    cfg.fix_keep_context = fix;
    cfg.fix_reactivate_bearer = fix;
    model::S1Model m(cfg);
    report.cells.push_back(ExploreCell(
        "S1 model / inter-system switches x all PDP deactivation causes", m,
        model::S1Model::Properties(), FindingId::kS1, rng, options_, pool));
  }
  {
    model::S1Model::Config cfg;
    cfg.allow_user_data_toggle = false;
    cfg.fix_keep_context = fix;
    cfg.fix_reactivate_bearer = fix;
    model::S1Model m(cfg);
    report.cells.push_back(
        ExploreCell("S1 model / network-initiated deactivations only", m,
                    model::S1Model::Properties(), FindingId::kS1, rng,
                    options_, pool));
  }

  // --- S2 cells: unreliable RRC under the attach procedure.
  {
    model::S2Model::Config cfg;
    cfg.allow_duplicate = false;
    cfg.reliable_shim = fix;
    model::S2Model m(cfg);
    report.cells.push_back(
        ExploreCell("S2 model / lost signaling (Figure 5a)", m,
                    model::S2Model::Properties(), FindingId::kS2, rng,
                    options_, pool));
  }
  {
    model::S2Model::Config cfg;
    cfg.allow_loss = false;
    cfg.reliable_shim = fix;
    model::S2Model m(cfg);
    report.cells.push_back(
        ExploreCell("S2 model / duplicate signaling (Figure 5b)", m,
                    model::S2Model::Properties(), FindingId::kS2, rng,
                    options_, pool));
  }
  {
    model::S2Model::Config cfg;
    cfg.reliable_shim = fix;
    model::S2Model m(cfg);
    report.cells.push_back(
        ExploreCell("S2 model / loss + duplication combined", m,
                    model::S2Model::Properties(), FindingId::kS2, rng,
                    options_, pool));
  }

  // --- S3 cells: every inter-system switching option (Figure 6a).
  for (const auto policy : {model::SwitchPolicy::kReleaseWithRedirect,
                            model::SwitchPolicy::kHandover,
                            model::SwitchPolicy::kCellReselection}) {
    model::S3Model::Config cfg;
    cfg.policy = policy;
    cfg.fix_csfb_tag = fix;
    model::S3Model m(cfg);
    report.cells.push_back(ExploreCell(
        "S3 model / " + model::ToString(policy), m, m.Properties(),
        FindingId::kS3, rng, options_, pool));
  }

  // --- S4 cells: CS-only, PS-only and combined HOL blocking.
  {
    model::S4Model::Config cfg;
    cfg.model_ps = false;
    cfg.decoupled = fix;
    model::S4Model m(cfg);
    report.cells.push_back(ExploreCell("S4 model / CS domain (CM over MM)", m,
                                       model::S4Model::Properties(),
                                       FindingId::kS4, rng, options_, pool));
  }
  {
    model::S4Model::Config cfg;
    cfg.model_cs = false;
    cfg.decoupled = fix;
    model::S4Model m(cfg);
    report.cells.push_back(ExploreCell("S4 model / PS domain (SM over GMM)",
                                       m, model::S4Model::Properties(),
                                       FindingId::kS4, rng, options_, pool));
  }
  {
    model::S4Model::Config cfg;
    cfg.decoupled = fix;
    model::S4Model m(cfg);
    report.cells.push_back(ExploreCell("S4 model / both domains", m,
                                       model::S4Model::Properties(),
                                       FindingId::kS4, rng, options_, pool));
  }

  // Aggregate.
  for (const auto& cell : report.cells) {
    report.total_states += cell.stats.states_visited;
    report.total_transitions += cell.stats.transitions;
    report.total_wall_seconds += cell.stats.elapsed_wall_seconds;
    for (const auto f : cell.findings) {
      if (!report.Found(f)) report.findings_found.push_back(f);
    }
  }
  std::sort(report.findings_found.begin(), report.findings_found.end());
  return report;
}

std::string ScreeningRunner::Format(const ScreeningReport& report) {
  std::string out;
  out += "=== CNetVerifier screening phase ===\n";
  for (const auto& cell : report.cells) {
    out += cnv::Format("\n--- %s ---\n", cell.cell.c_str());
    out += cnv::Format("    states: %llu  transitions: %llu%s\n",
                   static_cast<unsigned long long>(cell.stats.states_visited),
                   static_cast<unsigned long long>(cell.stats.transitions),
                   cell.stats.truncated ? "  (truncated)" : "");
    out += cnv::Format(
        "    wall: %.3fs  throughput: %.0f states/s  frontier peak: %llu\n",
        cell.stats.elapsed_wall_seconds, cell.stats.StatesPerSecond(),
        static_cast<unsigned long long>(cell.stats.frontier_peak));
    if (cell.findings.empty()) {
      out += "    all properties hold\n";
      continue;
    }
    for (std::size_t i = 0; i < cell.violated_properties.size(); ++i) {
      out += "    VIOLATED: " + cell.violated_properties[i] + " -> finding " +
             ToString(cell.findings.front()) + "\n";
    }
  }
  out += cnv::Format(
      "\ntotal: %llu states, %llu transitions in %.3fs wall "
      "(%.0f states/s)\n",
      static_cast<unsigned long long>(report.total_states),
      static_cast<unsigned long long>(report.total_transitions),
      report.total_wall_seconds, report.StatesPerSecond());
  out += "\n=== findings discovered by screening: ";
  if (report.findings_found.empty()) {
    out += "(none)";
  }
  for (const auto f : report.findings_found) {
    out += ToString(f) + " ";
  }
  out += "===\n";
  return out;
}

}  // namespace cnv::core
