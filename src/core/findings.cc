#include "core/findings.h"

#include <stdexcept>

namespace cnv::core {

const std::vector<FindingInfo>& AllFindings() {
  static const std::vector<FindingInfo> kFindings = {
      {FindingId::kS1, "S1",
       "User device is temporarily \"out-of-service\" during 3G->4G "
       "switching",
       FindingType::kDesign, "SM/ESM, GMM/EMM", Dimension::kCrossSystem,
       FindingCategory::kNecessaryButProblematic,
       "States are shared but unprotected between 3G and 4G; states are "
       "deleted during inter-system switching (5.1)",
       /*found_by_screening=*/true},
      {FindingId::kS2, "S2",
       "User device is temporarily \"out-of-service\" during the attach "
       "procedure",
       FindingType::kDesign, "EMM, 4G-RRC", Dimension::kCrossLayer,
       FindingCategory::kNecessaryButProblematic,
       "MME assumes reliable transfer of signals by RRC; RRC cannot ensure "
       "it (5.2)",
       /*found_by_screening=*/true},
      {FindingId::kS3, "S3", "User device gets stuck in 3G",
       FindingType::kDesign, "3G-RRC, CM, SM",
       Dimension::kCrossDomainAndSystem,
       FindingCategory::kNecessaryButProblematic,
       "RRC state change policy is inconsistent for inter-system switching "
       "(5.3)",
       /*found_by_screening=*/true},
      {FindingId::kS4, "S4", "Outgoing call/Internet access is delayed",
       FindingType::kDesign, "CM/MM, SM/GMM", Dimension::kCrossLayer,
       FindingCategory::kIndependentButCoupled,
       "Location update does not need to be, but is served with higher "
       "priority than outgoing call/data requests (6.1)",
       /*found_by_screening=*/true},
      {FindingId::kS5, "S5",
       "PS rate declines (e.g., 96.1% in OP-II) during ongoing CS service",
       FindingType::kOperation, "3G-RRC, CM, SM", Dimension::kCrossDomain,
       FindingCategory::kIndependentButCoupled,
       "3G-RRC configures the shared channel with a single modulation "
       "scheme for both data and voice (6.2)",
       /*found_by_screening=*/false},
      {FindingId::kS6, "S6",
       "User device is temporarily \"out-of-service\" after 3G->4G "
       "switching",
       FindingType::kOperation, "MM, EMM", Dimension::kCrossSystem,
       FindingCategory::kIndependentButCoupled,
       "Information and action on location update failure in 3G are exposed "
       "to 4G (6.3)",
       /*found_by_screening=*/false},
  };
  return kFindings;
}

const FindingInfo& GetFinding(FindingId id) {
  for (const auto& f : AllFindings()) {
    if (f.id == id) return f;
  }
  throw std::invalid_argument("GetFinding: unknown id");
}

std::string ToString(FindingId id) { return GetFinding(id).code; }

std::string ToString(FindingType t) {
  return t == FindingType::kDesign ? "Design" : "Operation";
}

std::string ToString(Dimension d) {
  switch (d) {
    case Dimension::kCrossLayer:
      return "Cross-layer";
    case Dimension::kCrossDomain:
      return "Cross-domain";
    case Dimension::kCrossSystem:
      return "Cross-system";
    case Dimension::kCrossDomainAndSystem:
      return "Cross-domain; Cross-system";
  }
  return "?";
}

std::string ToString(FindingCategory c) {
  return c == FindingCategory::kNecessaryButProblematic
             ? "Necessary but problematic cooperations"
             : "Independent but coupled operations";
}

}  // namespace cnv::core
