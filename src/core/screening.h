// Phase 1 of CNetVerifier (§3.2): domain-specific protocol screening. The
// runner owns a catalog of usage-scenario cells — each a screening model
// plus a configuration drawn from the bounded-option enumeration of §3.2.1
// (all PDP deactivation causes, all switch mechanisms, all data intensities,
// loss/duplication on radio legs) — explores each cell exhaustively, and
// classifies every property violation into a Table 1 finding. Scenario
// cells with unbounded behaviour are additionally random-walk sampled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/manifest.h"
#include "core/findings.h"
#include "dist/grid.h"
#include "mck/explorer.h"
#include "util/rng.h"

namespace cnv::core {

struct ScreeningOptions {
  // Check the §8 remedies instead of the standard behaviour; the expected
  // outcome is zero violations.
  bool with_solutions = false;
  // Extra random-walk sampling on top of exhaustive exploration, mirroring
  // the paper's scenario sampling. Walks per cell.
  std::uint64_t random_walks = 200;
  std::uint64_t seed = 1;
  // Workers for the exhaustive passes (0 = hardware concurrency, 1 =
  // serial). Cells run in catalog order either way — the random-walk
  // sampling consumes one shared RNG stream — and exploration results are
  // byte-identical at any worker count.
  int jobs = 1;
  // Crash safety: when checkpoint_dir is set, each completed catalog cell is
  // persisted (result plus the post-cell RNG state) together with a
  // manifest. With resume, completed cells replay from their blobs — the
  // shared RNG stream picks up exactly where the blob left it, so the final
  // report is byte-identical to an uninterrupted run. The config digest
  // excludes `jobs`, so a resume may use a different worker count.
  std::string checkpoint_dir;
  bool resume = false;
  // Self-healing: per-cell watchdog + bounded retries. A retried cell
  // restores the RNG state it started from, so retries never skew the
  // shared stream.
  ckpt::RetryPolicy retry;
  // Graceful drain: checked between cells; the report is then marked
  // interrupted/incomplete.
  ckpt::CancelToken* cancel = nullptr;
  // Distributed execution (dist::RunGrid). The catalog is a *chained* grid
  // (the shared RNG stream is the chain carry), so cells always run in
  // order; the process backend still buys failure-domain isolation — a
  // crashing or hanging cell is retried in a fresh worker and quarantined
  // after `quarantine_after` strikes instead of killing the run.
  dist::Backend backend = dist::Backend::kThread;
  std::int64_t heartbeat_ms = 2000;
  int quarantine_after = 3;
  dist::KillPlan kill_plan;
  // State-space reduction for the exhaustive passes (mck/reduction.h). The
  // S1–S4 screening models declare single-component specs, so turning the
  // flags on must not change any cell result — the `reduction` CI job pins
  // that. Part of the checkpoint config digest.
  mck::ReductionOptions reduction;
};

struct ScenarioCellResult {
  std::string cell;                  // e.g. "S3 model / cell reselection / high-rate data"
  std::vector<FindingId> findings;   // classified violations (deduplicated)
  std::vector<std::string> violated_properties;
  std::vector<std::string> counterexamples;  // formatted traces
  mck::ExploreStats stats;
};

struct ScreeningReport {
  std::vector<ScenarioCellResult> cells;
  std::vector<FindingId> findings_found;  // union over cells, S-order
  std::uint64_t total_states = 0;
  std::uint64_t total_transitions = 0;
  // Wall-clock total across cells; throughput figure only, never part of a
  // determinism comparison.
  double total_wall_seconds = 0;
  // Process-level accounting; never part of Format() or any byte-compared
  // export (drivers print it to stderr).
  ckpt::ExecutionStats exec;
  // Cells quarantined after repeatedly crashing/hanging their workers. A
  // chained catalog stops at the first quarantined cell (its carry-out is
  // lost), so at most one entry today.
  std::vector<dist::QuarantineRecord> quarantined;
  // False when a drain stopped the catalog early; `cells` then holds only
  // the completed prefix.
  bool complete = true;

  double StatesPerSecond() const {
    return total_wall_seconds > 0
               ? static_cast<double>(total_states) / total_wall_seconds
               : 0;
  }

  bool Found(FindingId id) const;
};

class ScreeningRunner {
 public:
  explicit ScreeningRunner(ScreeningOptions options = {});

  // Runs the whole catalog.
  ScreeningReport RunAll() const;

  // Renders the report as text (scenario cells, findings, statistics).
  static std::string Format(const ScreeningReport& report);

  // Digest of the catalog-shaping options (solutions flag, walk count,
  // seed) guarding checkpoint resume; excludes jobs, retry policy and
  // checkpoint paths.
  std::uint64_t ConfigDigest() const;

 private:
  ScreeningOptions options_;
};

}  // namespace cnv::core
