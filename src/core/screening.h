// Phase 1 of CNetVerifier (§3.2): domain-specific protocol screening. The
// runner owns a catalog of usage-scenario cells — each a screening model
// plus a configuration drawn from the bounded-option enumeration of §3.2.1
// (all PDP deactivation causes, all switch mechanisms, all data intensities,
// loss/duplication on radio legs) — explores each cell exhaustively, and
// classifies every property violation into a Table 1 finding. Scenario
// cells with unbounded behaviour are additionally random-walk sampled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/findings.h"
#include "mck/explorer.h"
#include "util/rng.h"

namespace cnv::core {

struct ScreeningOptions {
  // Check the §8 remedies instead of the standard behaviour; the expected
  // outcome is zero violations.
  bool with_solutions = false;
  // Extra random-walk sampling on top of exhaustive exploration, mirroring
  // the paper's scenario sampling. Walks per cell.
  std::uint64_t random_walks = 200;
  std::uint64_t seed = 1;
  // Workers for the exhaustive passes (0 = hardware concurrency, 1 =
  // serial). Cells run in catalog order either way — the random-walk
  // sampling consumes one shared RNG stream — and exploration results are
  // byte-identical at any worker count.
  int jobs = 1;
};

struct ScenarioCellResult {
  std::string cell;                  // e.g. "S3 model / cell reselection / high-rate data"
  std::vector<FindingId> findings;   // classified violations (deduplicated)
  std::vector<std::string> violated_properties;
  std::vector<std::string> counterexamples;  // formatted traces
  mck::ExploreStats stats;
};

struct ScreeningReport {
  std::vector<ScenarioCellResult> cells;
  std::vector<FindingId> findings_found;  // union over cells, S-order
  std::uint64_t total_states = 0;
  std::uint64_t total_transitions = 0;
  // Wall-clock total across cells; throughput figure only, never part of a
  // determinism comparison.
  double total_wall_seconds = 0;

  double StatesPerSecond() const {
    return total_wall_seconds > 0
               ? static_cast<double>(total_states) / total_wall_seconds
               : 0;
  }

  bool Found(FindingId id) const;
};

class ScreeningRunner {
 public:
  explicit ScreeningRunner(ScreeningOptions options = {});

  // Runs the whole catalog.
  ScreeningReport RunAll() const;

  // Renders the report as text (scenario cells, findings, statistics).
  static std::string Format(const ScreeningReport& report);

 private:
  ScreeningOptions options_;
};

}  // namespace cnv::core
