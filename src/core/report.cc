#include "core/report.h"

#include <algorithm>

#include "util/strings.h"

namespace cnv::core {

PipelineReport RunPipeline(const PipelineOptions& options) {
  PipelineReport report;
  report.with_solutions = options.with_solutions;

  ScreeningOptions sopt;
  sopt.with_solutions = options.with_solutions;
  sopt.seed = options.seed;
  report.screening = ScreeningRunner(sopt).RunAll();

  ValidationOptions vopt;
  vopt.seed = options.seed;
  if (options.with_solutions) {
    vopt.solutions = {.shim_layer = true,
                      .mm_decoupled = true,
                      .domain_decoupled = true,
                      .csfb_tag = true,
                      .reactivate_bearer = true,
                      .mme_lu_recovery = true};
  }
  ValidationRunner validation(vopt);
  report.op1 = validation.RunAll(stack::OpI());
  report.op2 = validation.RunAll(stack::OpII());

  auto confirm = [&report](FindingId id) {
    if (std::find(report.confirmed.begin(), report.confirmed.end(), id) ==
        report.confirmed.end()) {
      report.confirmed.push_back(id);
    }
  };
  for (const auto f : report.screening.findings_found) confirm(f);
  for (const auto* results : {&report.op1, &report.op2}) {
    for (const auto& r : *results) {
      if (r.observed) confirm(r.id);
    }
  }
  std::sort(report.confirmed.begin(), report.confirmed.end());
  return report;
}

std::string RenderMarkdown(const PipelineReport& report,
                           const PipelineOptions& options) {
  std::string out;
  out += "# CNetVerifier diagnosis report\n\n";
  out += report.with_solutions
             ? "Configuration: standards behaviour **with the §8 remedies "
               "enabled**.\n\n"
             : "Configuration: standards behaviour as deployed (no "
               "remedies).\n\n";

  out += "## Finding summary\n\n";
  out += "| Id | Problem | Type | Dimension | Screening | OP-I | OP-II |\n";
  out += "|----|---------|------|-----------|-----------|------|-------|\n";
  for (const auto& f : AllFindings()) {
    const auto observed = [&](const std::vector<ValidationResult>& v) {
      for (const auto& r : v) {
        if (r.id == f.id) return r.observed ? "observed" : "-";
      }
      return "-";
    };
    out += Format("| %s | %s | %s | %s | %s | %s | %s |\n", f.code.c_str(),
                  f.problem.c_str(), ToString(f.type).c_str(),
                  ToString(f.dimension).c_str(),
                  report.screening.Found(f.id) ? "counterexample" : "-",
                  observed(report.op1), observed(report.op2));
  }

  out += "\n## Validation evidence\n\n";
  for (const auto* results : {&report.op1, &report.op2}) {
    for (const auto& r : *results) {
      out += Format("- **%s / %s**: %s\n", ToString(r.id).c_str(),
                    r.carrier.c_str(), r.evidence.c_str());
    }
  }

  out += Format("\n## Screening statistics\n\n"
                "%zu scenario cells, %llu states, %llu transitions.\n",
                report.screening.cells.size(),
                static_cast<unsigned long long>(report.screening.total_states),
                static_cast<unsigned long long>(
                    report.screening.total_transitions));

  if (options.include_counterexamples) {
    out += "\n## Counterexamples\n";
    for (const auto& cell : report.screening.cells) {
      for (const auto& cx : cell.counterexamples) {
        out += "\n```\n[" + cell.cell + "]\n" + cx + "```\n";
      }
    }
  }

  out += "\n## Verdict\n\n";
  if (report.Clean()) {
    out += "No problematic protocol interactions confirmed.\n";
  } else {
    out += "Confirmed findings:";
    for (const auto f : report.confirmed) out += " " + ToString(f);
    out += "\n";
  }
  return out;
}

}  // namespace cnv::core
