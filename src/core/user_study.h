// The two-week user study (§7, Table 5 / Table 6): a Monte-Carlo population
// of volunteers — 4G-capable and 3G-only phones split across the two
// carriers — living on the simulated testbed for `days` days. Occurrences
// of S1-S6 are produced by the *mechanisms* in the stack (PDP deactivations
// while camping on 3G, CSFB returns, update/call collisions during drives,
// shared-channel calls), not by sampling outcome labels.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/findings.h"
#include "util/stats.h"

namespace cnv::core {

struct UserStudyConfig {
  int users = 20;
  int users_with_4g = 12;  // the paper's 12 4G-capable phones
  int days = 14;
  std::uint64_t seed = 2014;

  // Behaviour rates, chosen to land near the paper's observed event counts
  // (190 CSFB calls, ~146 3G CS calls, 436 switches, 30 attaches).
  double csfb_calls_per_user_day = 1.15;        // 4G users
  double cs_calls_per_user_day = 0.35;  // 3G-only users (plus drive calls)
  double extra_switches_per_user_day = 0.11;    // roaming/carrier switches
  double restart_prob_per_user_day = 0.036;  // + initial power-ons: ~30 attaches
  double prob_data_at_csfb_call = 103.0 / 190;  // mobile data on at call
  double prob_data_at_cs_call = 113.0 / 146;    // ongoing data at 3G calls
  double prob_data_at_switch = 129.0 / 218;     // data on at 4G->3G switch
  double call_duration_mean_s = 67.0;           // §7, S5 row
  // Drive-time mobility for 3G users: one drive per day; boundary
  // crossings during the drive produce the S4 collisions.
  double drive_minutes_per_day = 20.0;
  double crossing_interval_mean_s = 90.0;
};

struct FindingStats {
  int occurrences = 0;
  int opportunities = 0;

  double Rate() const {
    return opportunities == 0
               ? 0.0
               : static_cast<double>(occurrences) / opportunities;
  }
};

struct UserStudyResult {
  // Aggregate activity (the §7 headline counts).
  int csfb_calls = 0;
  int cs_calls_3g = 0;
  int inter_system_switches = 0;
  int attaches = 0;

  std::array<FindingStats, 6> per_finding;  // indexed by FindingId

  // Table 6: time in 3G after the CSFB call ends, per carrier.
  Samples stuck_seconds_op1;
  Samples stuck_seconds_op2;
  // S5 row: affected data per call with ongoing traffic.
  Samples affected_data_mb;
  Samples call_durations_s;

  FindingStats& Stats(FindingId id) {
    return per_finding[static_cast<std::size_t>(id)];
  }
  const FindingStats& Stats(FindingId id) const {
    return per_finding[static_cast<std::size_t>(id)];
  }
};

class UserStudy {
 public:
  explicit UserStudy(UserStudyConfig config = UserStudyConfig{});

  UserStudyResult Run() const;

  // Renders the Table 5 rows (observed / occurrence probability).
  static std::string FormatTable5(const UserStudyResult& r);
  // Renders the Table 6 rows (duration in 3G after CSFB call ends).
  static std::string FormatTable6(const UserStudyResult& r);

 private:
  UserStudyConfig config_;
};

}  // namespace cnv::core
