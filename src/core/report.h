// One-call execution of the full CNetVerifier pipeline (screening on the
// models, validation on both simulated carriers, optionally with the §8
// remedies) plus a markdown rendering of the outcome — the report an
// operator or standards body would read.
#pragma once

#include <string>
#include <vector>

#include "core/screening.h"
#include "core/validation.h"

namespace cnv::core {

struct PipelineOptions {
  bool with_solutions = false;
  std::uint64_t seed = 1;
  // Include the screening counterexample traces in the rendering.
  bool include_counterexamples = true;
};

struct PipelineReport {
  bool with_solutions = false;
  ScreeningReport screening;
  std::vector<ValidationResult> op1;
  std::vector<ValidationResult> op2;

  // Findings confirmed anywhere (screening or either carrier).
  std::vector<FindingId> confirmed;
  bool Clean() const { return confirmed.empty(); }
};

// Runs screening + validation end to end.
PipelineReport RunPipeline(const PipelineOptions& options = {});

// Renders the report as markdown (Table 1-style summary, per-carrier
// validation evidence, screening statistics, counterexamples).
std::string RenderMarkdown(const PipelineReport& report,
                           const PipelineOptions& options = {});

}  // namespace cnv::core
