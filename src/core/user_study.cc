#include "core/user_study.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "stack/testbed.h"
#include "util/strings.h"

namespace cnv::core {

namespace {

using stack::Testbed;

void RunUntil(Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) {
    tb.Run(Millis(200));
  }
}

// One simulated participant. Returns through the aggregate references.
struct Participant {
  const UserStudyConfig& cfg;
  UserStudyResult& agg;
  bool has_4g;
  bool on_op1;
  std::uint64_t seed;

  int switches_to_3g_with_data = 0;
  int csfb_with_data = 0;

  void Live() {
    stack::TestbedConfig tb_cfg;
    tb_cfg.profile = on_op1 ? stack::OpI() : stack::OpII();
    tb_cfg.seed = seed;
    Testbed tb(tb_cfg);
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);

    ++agg.attaches;  // the initial power-on attach
    tb.ue().PowerOn(has_4g ? nas::System::k4G : nas::System::k3G);
    tb.Run(Seconds(30));

    for (int day = 0; day < cfg.days; ++day) {
      LiveOneDay(tb, rng, day);
    }

    Harvest(tb);
  }

  // Builds and executes one day of activity in time order.
  void LiveOneDay(Testbed& tb, Rng& rng, int day) {
    struct Event {
      double at_s;  // seconds into the day
      char kind;    // 'c' call, 's' switch, 'r' restart, 'd' drive
    };
    std::vector<Event> events;

    const double calls = has_4g ? cfg.csfb_calls_per_user_day
                                : cfg.cs_calls_per_user_day;
    const int n_calls =
        std::max(0, static_cast<int>(std::round(rng.Normal(calls, 0.7))));
    for (int i = 0; i < n_calls; ++i) {
      // Phone calls happen during waking hours.
      events.push_back({rng.Uniform(8 * 3600.0, 22 * 3600.0), 'c'});
    }
    if (has_4g) {
      const int n_switches = rng.Bernoulli(cfg.extra_switches_per_user_day)
                                 ? 1
                                 : 0;
      for (int i = 0; i < n_switches; ++i) {
        events.push_back({rng.Uniform(7 * 3600.0, 23 * 3600.0), 's'});
      }
    } else {
      events.push_back({rng.Uniform(8 * 3600.0, 18 * 3600.0), 'd'});
    }
    if (rng.Bernoulli(cfg.restart_prob_per_user_day)) {
      events.push_back({rng.Uniform(7 * 3600.0, 23 * 3600.0), 'r'});
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.at_s < b.at_s; });

    const SimTime day_start = static_cast<SimTime>(day + 1) * kHour * 24;
    for (const Event& e : events) {
      const SimTime at = day_start + FromSeconds(e.at_s);
      if (at > tb.sim().now()) tb.sim().RunUntil(at);
      switch (e.kind) {
        case 'c':
          DoCall(tb, rng);
          break;
        case 's':
          DoRoamingSwitch(tb, rng);
          break;
        case 'r':
          DoRestart(tb);
          break;
        case 'd':
          DoDrive(tb, rng);
          break;
      }
    }
  }

  void DoCall(Testbed& tb, Rng& rng) {
    if (tb.ue().out_of_service()) return;
    const bool with_data = rng.Bernoulli(has_4g ? cfg.prob_data_at_csfb_call
                                                : cfg.prob_data_at_cs_call);
    if (with_data && !tb.ue().data_session_active()) {
      // Mostly light background traffic, occasionally a heavy transfer
      // (the paper's largest affected call carried 18.5 MB).
      const double demand = rng.Bernoulli(0.05) ? rng.Uniform(0.5, 1.5)
                                                : rng.Uniform(0.01, 0.06);
      tb.ue().StartDataSession(demand);
      tb.Run(Seconds(2));
    }
    const bool session_at_dial = with_data || tb.ue().data_session_active();
    const bool is_csfb = has_4g && tb.ue().serving() == nas::System::k4G;
    if (is_csfb) {
      ++agg.csfb_calls;
      agg.inter_system_switches += 2;  // fallback + return
      if (session_at_dial) ++csfb_with_data;
    }
    tb.ue().Dial();
    RunUntil(tb,
             [&] {
               return tb.ue().call_state() ==
                          stack::UeDevice::CallState::kActive ||
                      tb.ue().call_state() ==
                          stack::UeDevice::CallState::kNone;
             },
             Minutes(2));
    if (tb.ue().call_state() == stack::UeDevice::CallState::kActive) {
      tb.Run(FromSeconds(std::max(5.0, rng.Exponential(
                                            cfg.call_duration_mean_s))));
      // While the call holds the device on 3G, the network may deactivate
      // the PDP context (the S1 trigger, ~3.1% per switch with data).
      if (is_csfb && session_at_dial && tb.ue().serving() == nas::System::k3G &&
          rng.Bernoulli(tb.profile().pdp_deact_in_3g_prob)) {
        tb.sgsn().DeactivatePdp(nas::PdpDeactCause::kRegularDeactivation);
        tb.Run(Seconds(1));
      }
      tb.ue().HangUp();
    }
    // Let the CSFB return play out. On OP-I the redirect lands within
    // seconds; on OP-II the device stays until the data session ends and
    // RRC decays to IDLE.
    if (has_4g) {
      RunUntil(tb, [&] { return tb.ue().serving() == nas::System::k4G; },
               Minutes(1));
      if (tb.ue().serving() == nas::System::k3G &&
          tb.ue().data_session_active()) {
        // Remaining lifetime of the data session after the call.
        tb.Run(FromSeconds(rng.Exponential(25.0)));
        tb.ue().StopDataSession();
        RunUntil(tb, [&] { return tb.ue().serving() == nas::System::k4G; },
                 Minutes(2));
      }
    }
    if (tb.ue().data_session_active() && rng.Bernoulli(0.8)) {
      tb.ue().StopDataSession();
    }
    tb.Run(Seconds(5));
  }

  void DoRoamingSwitch(Testbed& tb, Rng& rng) {
    if (tb.ue().serving() != nas::System::k4G || tb.ue().out_of_service()) {
      return;
    }
    const bool data_on = rng.Bernoulli(cfg.prob_data_at_switch);
    if (data_on && !tb.ue().data_session_active()) {
      tb.ue().StartDataSession(rng.Uniform(0.05, 1.0));
      tb.Run(Seconds(2));
    } else if (!data_on && tb.ue().data_session_active()) {
      tb.ue().StopDataSession();
    }
    ++agg.inter_system_switches;
    if (data_on) ++switches_to_3g_with_data;
    tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
    tb.Run(FromSeconds(rng.Uniform(60.0, 600.0)));  // camp on 3G
    // While camping, the network may deactivate the PDP context (Table 3).
    if (data_on && rng.Bernoulli(tb.profile().pdp_deact_in_3g_prob)) {
      const auto& causes = nas::AllPdpDeactCauses();
      tb.sgsn().DeactivatePdp(
          causes[static_cast<std::size_t>(
                     rng.UniformInt(0, static_cast<std::int64_t>(
                                           causes.size()) - 1))]
              .cause);
      tb.Run(Seconds(1));
    }
    ++agg.inter_system_switches;  // the return switch
    tb.ue().SwitchTo4g();
    RunUntil(tb, [&] { return !tb.ue().out_of_service(); }, Minutes(2));
    tb.Run(Seconds(5));
  }

  void DoRestart(Testbed& tb) {
    tb.ue().PowerOff();
    tb.Run(Seconds(10));
    ++agg.attaches;
    tb.ue().PowerOn(has_4g ? nas::System::k4G : nas::System::k3G);
    RunUntil(tb,
             [&] {
               return has_4g ? tb.ue().emm_state() ==
                                   stack::UeDevice::EmmState::kRegistered
                             : tb.msc().registered();
             },
             Minutes(2));
    tb.Run(Seconds(5));
  }

  // 3G users: a drive with periodic area crossings; some calls of the day
  // collide with the resulting location updates (S4).
  void DoDrive(Testbed& tb, Rng& rng) {
    const double total_s = cfg.drive_minutes_per_day * 60.0;
    double elapsed = 0;
    while (elapsed < total_s) {
      const double gap =
          std::max(20.0, rng.Exponential(cfg.crossing_interval_mean_s));
      elapsed += gap;
      // Calls are placed uniformly in time, so a fraction of them lands in
      // the busy window (LAU + MM-WAIT-FOR-NET-CMD) right after a crossing
      // — the natural S4 collision rate.
      if (rng.Bernoulli(0.10)) {
        const double offset = rng.Uniform(0.0, gap);
        tb.Run(FromSeconds(offset));
        DoCall(tb, rng);  // advances past the call; close enough to `gap`
      } else {
        tb.Run(FromSeconds(gap));
      }
      tb.ue().CrossAreaBoundary();
    }
    tb.Run(Seconds(30));
  }

  void Harvest(Testbed& tb) {
    const auto& ue = tb.ue();
    if (!has_4g) agg.cs_calls_3g += static_cast<int>(ue.calls_connected());

    // S1: detaches for missing EPS bearer context, per 4G->3G switch with
    // data enabled.
    agg.Stats(FindingId::kS1).occurrences +=
        static_cast<int>(ue.detaches_no_eps_bearer());
    agg.Stats(FindingId::kS1).opportunities +=
        switches_to_3g_with_data + csfb_with_data;

    // S2: attach failures. Radio conditions are good for all participants,
    // so none occur (matching the paper's 0/30); the opportunity count is
    // filled in from the aggregate attach count after all users ran.

    // S3: CSFB calls with data that did not return to 4G promptly.
    for (const double s : ue.stuck_in_3g_seconds().Values()) {
      auto& samples = on_op1 ? agg.stuck_seconds_op1 : agg.stuck_seconds_op2;
      samples.Add(s);
      // The plain RRC decay path (no data) takes ~17s on OP-II; only
      // longer strandings are the S3 defect (data pinning the state).
      if (s > 20.0) ++agg.Stats(FindingId::kS3).occurrences;
    }
    agg.Stats(FindingId::kS3).opportunities += csfb_with_data;
    if (ue.awaiting_cell_reselection()) {
      // Still stranded in 3G at the end of the study.
      ++agg.Stats(FindingId::kS3).occurrences;
    }

    // S4: outgoing 3G calls deferred behind location updates.
    if (!has_4g) {
      agg.Stats(FindingId::kS4).occurrences +=
          static_cast<int>(ue.deferred_call_requests());
      agg.Stats(FindingId::kS4).opportunities +=
          static_cast<int>(ue.calls_connected());
    }

    // S5: 3G CS calls overlapping data traffic.
    if (!has_4g) {
      agg.Stats(FindingId::kS5).occurrences +=
          static_cast<int>(ue.calls_with_data());
      agg.Stats(FindingId::kS5).opportunities +=
          static_cast<int>(ue.calls_connected());
      for (const double mb : ue.affected_call_data_mb().Values()) {
        agg.affected_data_mb.Add(mb);
      }
      for (const double s : ue.call_durations_seconds().Values()) {
        agg.call_durations_s.Add(s);
      }
    }

    // S6: CSFB location-update failures propagated to 4G.
    if (has_4g) {
      agg.Stats(FindingId::kS6).occurrences += static_cast<int>(
          ue.detaches_implicit() + ue.detaches_msc_unreachable());
    }
  }
};

}  // namespace

UserStudy::UserStudy(UserStudyConfig config) : config_(config) {}

UserStudyResult UserStudy::Run() const {
  UserStudyResult result;
  Rng seeder(config_.seed);
  for (int u = 0; u < config_.users; ++u) {
    Participant p{.cfg = config_,
                  .agg = result,
                  .has_4g = u < config_.users_with_4g,
                  .on_op1 = (u % 2) == 0,
                  .seed = static_cast<std::uint64_t>(seeder.UniformInt(
                      1, 1'000'000'000))};
    p.Live();
  }
  result.Stats(FindingId::kS2).opportunities = result.attaches;
  result.Stats(FindingId::kS6).opportunities = result.csfb_calls;
  return result;
}

std::string UserStudy::FormatTable5(const UserStudyResult& r) {
  std::string out;
  out += "Table 5: user study summary (occurrence probability per finding)\n";
  out += Format("  activity: %d CSFB calls, %d 3G CS calls, %d switches, %d "
                "attaches\n",
                r.csfb_calls, r.cs_calls_3g, r.inter_system_switches,
                r.attaches);
  out += "  Problem     Observed   Occurrence\n";
  for (const auto& f : AllFindings()) {
    const auto& s = r.Stats(f.id);
    out += Format("  %-4s        %-9s  %5.1f%%  (%d/%d)\n", f.code.c_str(),
                  s.occurrences > 0 ? "yes" : "no", s.Rate() * 100.0,
                  s.occurrences, s.opportunities);
  }
  return out;
}

std::string UserStudy::FormatTable6(const UserStudyResult& r) {
  std::string out;
  out += "Table 6: duration in 3G after the CSFB call ends\n";
  out += "  Operator  Min     Median  Max      90th    Avg\n";
  const auto row = [](const char* name, const Samples& s) {
    if (s.Empty()) return Format("  %-9s (no samples)\n", name);
    return Format("  %-9s %-7.1fs %-6.1fs %-8.1fs %-7.1fs %-6.1fs\n", name,
                  s.Min(), s.Median(), s.Max(), s.Percentile(90), s.Mean());
  };
  out += row("OP-I", r.stuck_seconds_op1);
  out += row("OP-II", r.stuck_seconds_op2);
  return out;
}

}  // namespace cnv::core
