// Minimal leveled logger. Experiments run quietly by default; tests and
// examples can raise the level to see protocol activity.
#pragma once

#include <sstream>
#include <string>

namespace cnv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr if `level` passes the filter.
void LogLine(LogLevel level, const std::string& message);

namespace internal {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogLine(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace internal
}  // namespace cnv

#define CNV_LOG_DEBUG ::cnv::internal::LogStream(::cnv::LogLevel::kDebug)
#define CNV_LOG_INFO ::cnv::internal::LogStream(::cnv::LogLevel::kInfo)
#define CNV_LOG_WARN ::cnv::internal::LogStream(::cnv::LogLevel::kWarn)
#define CNV_LOG_ERROR ::cnv::internal::LogStream(::cnv::LogLevel::kError)
