// Deterministic random number generation for scenario sampling and
// workload generation. Every experiment takes an explicit seed so that
// reported numbers are reproducible run to run.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cnv {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Log-normal such that the underlying normal has the given parameters.
  // Used for heavy-tailed latencies (re-attach and update durations).
  double LogNormal(double mu, double sigma);

  // Exponential with the given mean (> 0). Used for inter-arrival times.
  double Exponential(double mean);

  // Picks one element uniformly. Requires a non-empty span.
  template <typename T>
  const T& Pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::Pick: empty span");
    return items[static_cast<std::size_t>(
        UniformInt(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return Pick(std::span<const T>(items));
  }

  // Picks an index according to non-negative weights (at least one > 0).
  std::size_t PickWeighted(std::span<const double> weights);

  // Derives an independent child generator; used to give each simulated
  // user / node its own stream without cross-coupling.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

  // Serializes / restores the full engine state (the distributions are
  // created per call, so the engine is the only state). Lets a checkpointed
  // run resume its random stream exactly where it left off.
  std::string SaveState() const;
  bool RestoreState(const std::string& state);

 private:
  std::mt19937_64 engine_;
};

}  // namespace cnv
