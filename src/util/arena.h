// Bump-pointer arena for population-scale struct-of-arrays state. The city
// engine holds per-UE state as parallel primitive arrays; allocating them
// from one arena keeps the whole population in a handful of large
// contiguous blocks (cache-friendly sweeps, no per-object malloc overhead)
// and makes the bytes-per-UE figure an exact measurement: TotalBytes() is
// the entire footprint.
//
// Allocation only — no free. Everything dies together when the arena does,
// which is exactly the lifetime of a simulation run's population.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

namespace cnv {

class Arena {
 public:
  static constexpr std::size_t kMinChunk = std::size_t{1} << 20;  // 1 MiB

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Zeroed storage for `bytes` at alignment `align` (a power of two).
  void* Allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) return nullptr;
    std::size_t off = (used_ + align - 1) & ~(align - 1);
    if (chunks_.empty() || off + bytes > chunk_size_) {
      // Population arrays are huge relative to the chunk floor; size the
      // chunk to the request so one array never straddles chunks.
      NewChunk(bytes < kMinChunk ? kMinChunk : bytes);
      off = 0;
    }
    used_ = off + bytes;
    total_ += bytes;
    return chunks_.back().get() + off;
  }

  // A zero-initialized array of `n` trivially-destructible Ts.
  template <typename T>
  T* AllocArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // Bytes handed out (the payload figure reported as bytes/UE).
  std::size_t TotalBytes() const { return total_; }
  // Bytes reserved from the OS, including chunk slack.
  std::size_t ReservedBytes() const { return reserved_; }
  std::size_t ChunkCount() const { return chunks_.size(); }

 private:
  void NewChunk(std::size_t size) {
    chunks_.emplace_back(new std::byte[size]);
    std::memset(chunks_.back().get(), 0, size);
    chunk_size_ = size;
    used_ = 0;
    reserved_ += size;
  }

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::size_t chunk_size_ = 0;
  std::size_t used_ = 0;
  std::size_t total_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace cnv
