#include "util/strings.h"

#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "util/time.h"

namespace cnv {

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args2);
    throw std::runtime_error("Format: encoding error");
  }
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string PadLeft(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

// Defined here (declared in time.h) to keep util a single small library.
std::string FormatClock(SimTime t) {
  const std::int64_t total_ms = t / kMillisecond;
  const std::int64_t ms = total_ms % 1000;
  const std::int64_t total_s = total_ms / 1000;
  const std::int64_t s = total_s % 60;
  const std::int64_t m = (total_s / 60) % 60;
  const std::int64_t h = total_s / 3600;
  return Format("%02lld:%02lld:%02lld.%03lld", static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s),
                static_cast<long long>(ms));
}

std::string FormatDuration(SimDuration d) {
  if (d < kMillisecond) {
    return Format("%lldus", static_cast<long long>(d));
  }
  if (d < kSecond) {
    return Format("%lldms", static_cast<long long>(d / kMillisecond));
  }
  return Format("%.2fs", ToSeconds(d));
}

}  // namespace cnv
