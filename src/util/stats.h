// Descriptive statistics used by the experiment harnesses: summaries
// (min / median / max / percentiles, as in the paper's Figure 4 and
// Table 6) and empirical CDFs (Figure 8).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cnv {

// Accumulates samples and answers order-statistic queries.
class Samples {
 public:
  Samples() = default;
  explicit Samples(std::vector<double> values);

  void Add(double v);
  void Clear();

  std::size_t Count() const { return values_.size(); }
  bool Empty() const { return values_.empty(); }

  // Min/Max/Mean/Median/Percentile/CdfAt are order-statistic queries over
  // the accumulated samples; all of them throw std::logic_error when the
  // set is empty (there is no neutral answer to report into a table).
  double Min() const;
  double Max() const;
  double Mean() const;
  double Stddev() const;  // sample standard deviation; 0 for < 2 samples
  double Median() const { return Percentile(50.0); }

  // Linear-interpolated percentile; p is clamped to [0, 100]. Throws
  // std::logic_error on an empty sample set.
  double Percentile(double p) const;

  // Fraction of samples <= x, in [0, 1]. Throws std::logic_error on an
  // empty sample set.
  double CdfAt(double x) const;

  // Sorted copy of the samples (the empirical CDF support points).
  std::vector<double> Sorted() const;

  const std::vector<double>& Values() const { return values_; }

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// One row of a rendered CDF: (value, cumulative fraction in percent).
struct CdfPoint {
  double value = 0;
  double percent = 0;
};

// Samples the empirical CDF of `s` at `points` evenly spaced quantiles.
// Degenerate inputs collapse gracefully: empty samples or points == 0
// yield an empty curve; points == 1 yields the single 100th-percentile
// point (the maximum).
std::vector<CdfPoint> RenderCdf(const Samples& s, std::size_t points);

// "min / median / max (90th, avg)" rendering used in several tables.
std::string SummaryLine(const Samples& s, const std::string& unit);

}  // namespace cnv
