#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cnv {

Samples::Samples(std::vector<double> values) : values_(std::move(values)) {}

void Samples::Add(double v) {
  values_.push_back(v);
  sorted_valid_ = false;
}

void Samples::Clear() {
  values_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void Samples::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Samples::Min() const {
  EnsureSorted();
  if (sorted_.empty()) throw std::logic_error("Samples::Min: empty");
  return sorted_.front();
}

double Samples::Max() const {
  EnsureSorted();
  if (sorted_.empty()) throw std::logic_error("Samples::Max: empty");
  return sorted_.back();
}

double Samples::Mean() const {
  if (values_.empty()) throw std::logic_error("Samples::Mean: empty");
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Samples::Stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = Mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::Percentile(double p) const {
  EnsureSorted();
  if (sorted_.empty()) throw std::logic_error("Samples::Percentile: empty");
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

double Samples::CdfAt(double x) const {
  EnsureSorted();
  if (sorted_.empty()) throw std::logic_error("Samples::CdfAt: empty");
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::vector<double> Samples::Sorted() const {
  EnsureSorted();
  return sorted_;
}

std::vector<CdfPoint> RenderCdf(const Samples& s, std::size_t points) {
  std::vector<CdfPoint> out;
  if (s.Empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double pct =
        (points == 1) ? 100.0
                      : 100.0 * static_cast<double>(i) /
                            static_cast<double>(points - 1);
    out.push_back({s.Percentile(pct), pct});
  }
  return out;
}

std::string SummaryLine(const Samples& s, const std::string& unit) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  if (s.Empty()) {
    os << "(no samples)";
    return os.str();
  }
  os << s.Min() << unit << " / " << s.Median() << unit << " / " << s.Max()
     << unit << " (90th " << s.Percentile(90.0) << unit << ", avg "
     << s.Mean() << unit << ")";
  return os.str();
}

}  // namespace cnv
