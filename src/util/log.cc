#include "util/log.h"

#include <atomic>
#include <iostream>

#include "util/time.h"

namespace cnv {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

}  // namespace cnv
