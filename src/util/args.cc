#include "util/args.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cnv::args {

bool ParseI64(const std::string& s, std::int64_t* out) {
  // strtoll skips leading whitespace; strict parsing must not.
  if (s.empty() || !(s[0] == '-' || (s[0] >= '0' && s[0] <= '9'))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] < '0' || s[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

ArgParser::ArgParser(int argc, char* const* argv, std::string usage)
    : prog_(argc > 0 ? argv[0] : "prog"), usage_(std::move(usage)) {
  for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
}

void ArgParser::Fail(const std::string& message) const {
  std::fprintf(stderr, "%s: %s\n%s\n", prog_.c_str(), message.c_str(),
               usage_.c_str());
  std::exit(2);
}

bool ArgParser::Flag(const std::string& name) {
  bool present = false;
  for (std::size_t i = 0; i < args_.size();) {
    if (args_[i] == name) {
      args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
      present = true;
    } else {
      ++i;
    }
  }
  return present;
}

bool ArgParser::TakeValue(const std::string& name, std::string* value) {
  bool present = false;
  for (std::size_t i = 0; i < args_.size();) {
    if (args_[i] == name) {
      if (i + 1 >= args_.size()) Fail(name + " needs a value");
      *value = args_[i + 1];
      args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i),
                  args_.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      present = true;
    } else if (args_[i].size() > name.size() &&
               args_[i].compare(0, name.size(), name) == 0 &&
               args_[i][name.size()] == '=') {
      // "--flag=value" form; an empty value ("--flag=") is taken literally
      // and rejected by the strict value parsers just like a bad "--flag ''".
      *value = args_[i].substr(name.size() + 1);
      args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
      present = true;
    } else {
      ++i;
    }
  }
  return present;
}

bool ArgParser::IntValue(const std::string& name, int* out, int min_value) {
  std::int64_t v = 0;
  if (!I64Value(name, &v, min_value)) return false;
  if (v > INT32_MAX) Fail(name + ": value out of range");
  *out = static_cast<int>(v);
  return true;
}

bool ArgParser::I64Value(const std::string& name, std::int64_t* out,
                         std::int64_t min_value) {
  std::string raw;
  if (!TakeValue(name, &raw)) return false;
  std::int64_t v = 0;
  if (!ParseI64(raw, &v)) Fail(name + ": not an integer: '" + raw + "'");
  if (v < min_value) {
    Fail(name + ": must be >= " + std::to_string(min_value));
  }
  *out = v;
  return true;
}

bool ArgParser::DoubleValue(const std::string& name, double* out) {
  std::string raw;
  if (!TakeValue(name, &raw)) return false;
  // strtod skips leading whitespace; strict parsing must not.
  if (raw.empty() || !(raw[0] == '-' || raw[0] == '.' ||
                       (raw[0] >= '0' && raw[0] <= '9'))) {
    Fail(name + ": not a number: '" + raw + "'");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (errno != 0 || end != raw.c_str() + raw.size()) {
    Fail(name + ": not a number: '" + raw + "'");
  }
  *out = v;
  return true;
}

bool ArgParser::U64Value(const std::string& name, std::uint64_t* out) {
  std::string raw;
  if (!TakeValue(name, &raw)) return false;
  std::uint64_t v = 0;
  if (!ParseU64(raw, &v)) {
    Fail(name + ": not a non-negative integer: '" + raw + "'");
  }
  *out = v;
  return true;
}

bool ArgParser::StrValue(const std::string& name, std::string* out) {
  return TakeValue(name, out);
}

std::vector<std::string> ArgParser::Finish(std::size_t max_positional) {
  for (const auto& a : args_) {
    if (a.size() >= 2 && a[0] == '-' && a[1] == '-') {
      Fail("unknown flag '" + a + "'");
    }
  }
  if (args_.size() > max_positional) {
    Fail("too many arguments (got " + std::to_string(args_.size()) +
         ", expected at most " + std::to_string(max_positional) + ")");
  }
  return std::move(args_);
}

}  // namespace cnv::args
