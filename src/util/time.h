// Simulated-time types shared by the simulator, the protocol stack and the
// experiment harnesses. Simulated time is an integral count of microseconds
// so that event ordering is exact and runs are reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace cnv {

// Microseconds since the start of a simulation run.
using SimTime = std::int64_t;

// Durations share the representation of absolute times.
using SimDuration = std::int64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;

constexpr SimDuration Millis(std::int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(std::int64_t n) { return n * kSecond; }
constexpr SimDuration Minutes(std::int64_t n) { return n * kMinute; }

// Converts a duration to fractional seconds, e.g. for reporting.
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr SimDuration FromSeconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

// Formats an absolute simulated time as "hh:mm:ss.mmm", the timestamp format
// used by the paper's modem trace items (§3.3).
std::string FormatClock(SimTime t);

// Formats a duration compactly, e.g. "2.40s" or "350ms".
std::string FormatDuration(SimDuration d);

}  // namespace cnv
