// Strict command-line parsing shared by the example drivers. A typo'd flag
// or a non-numeric `--jobs`/`--seed` value is a hard error — usage on
// stderr, exit status 2 — instead of being silently swallowed into a
// multi-hour campaign run with the wrong configuration.
//
// Usage pattern (flags first, then Finish() for the positionals):
//
//   args::ArgParser p(argc, argv, "usage: prog [seeds] [--jobs N]");
//   int jobs = 0;
//   p.IntValue("--jobs", &jobs, 0);
//   const bool robust = p.Flag("--robust");
//   const auto pos = p.Finish(/*max_positional=*/1);  // rejects unknown --x
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cnv::args {

// Strict integer parsing: the whole string must be a base-10 integer (an
// optional leading '-' for the signed form); "", "12x", "4.5" all fail.
bool ParseI64(const std::string& s, std::int64_t* out);
bool ParseU64(const std::string& s, std::uint64_t* out);

class ArgParser {
 public:
  // Copies argv[1..); `usage` is printed on every parse failure.
  ArgParser(int argc, char* const* argv, std::string usage);

  // True when `name` (e.g. "--robust") is present; consumes it.
  bool Flag(const std::string& name);

  // Valued flags: consume `name value` or `name=value`, returning true when
  // present. The value is parsed strictly; a missing or malformed value is
  // fatal. When given more than once (either spelling), the last occurrence
  // wins. `min_value` guards nonsensical counts (e.g. negative --jobs).
  bool IntValue(const std::string& name, int* out,
                int min_value = INT32_MIN);
  bool U64Value(const std::string& name, std::uint64_t* out);
  bool I64Value(const std::string& name, std::int64_t* out,
                std::int64_t min_value = INT64_MIN);
  bool StrValue(const std::string& name, std::string* out);
  bool DoubleValue(const std::string& name, double* out);

  // Call after all flags have been extracted: any remaining token that
  // still looks like a flag is unknown and fatal, and more than
  // `max_positional` leftover tokens is fatal too. Returns the positionals
  // in order.
  std::vector<std::string> Finish(std::size_t max_positional);

  // Prints "<prog>: <message>" and the usage string to stderr, then exits
  // with status 2.
  [[noreturn]] void Fail(const std::string& message) const;

 private:
  // Finds the last occurrence of `name`; consumes every occurrence together
  // with its value and returns the last value. Returns false when absent.
  bool TakeValue(const std::string& name, std::string* value);

  std::string prog_;
  std::string usage_;
  std::vector<std::string> args_;
};

}  // namespace cnv::args
