#include "util/rng.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace cnv {

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::UniformInt: lo > hi");
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution d(p);
  return d(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

double Rng::Exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::Exponential: mean <= 0");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

std::size_t Rng::PickWeighted(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0) throw std::invalid_argument("Rng::PickWeighted: no weight");
  double x = Uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(engine_()); }

std::string Rng::SaveState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

bool Rng::RestoreState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 engine;
  in >> engine;
  if (in.fail()) return false;
  engine_ = engine;
  return true;
}

}  // namespace cnv
