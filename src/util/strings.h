// Small string helpers used by trace formatting and report rendering.
#pragma once

#include <string>
#include <vector>

namespace cnv {

// Joins the pieces with `sep` between them.
std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep);

// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& s);

// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Left-pads / right-pads with spaces to a minimum width.
std::string PadLeft(const std::string& s, std::size_t width);
std::string PadRight(const std::string& s, std::size_t width);

}  // namespace cnv
