#include "stack/speedtest.h"

#include <stdexcept>

namespace cnv::stack {

SpeedtestResult RunSpeedtest(Testbed& tb, sim::Direction direction,
                             int hour_of_day, SimDuration window,
                             SimDuration sample_every) {
  if (window <= 0 || sample_every <= 0 || sample_every > window) {
    throw std::invalid_argument("RunSpeedtest: bad window");
  }
  SpeedtestResult result;
  result.window = window;
  const SimTime end = tb.sim().now() + window;
  while (tb.sim().now() < end) {
    const double rate =
        tb.ue().CurrentPsRateMbps(direction, hour_of_day);
    result.mbps.Add(rate);
    const SimDuration step =
        std::min<SimDuration>(sample_every, end - tb.sim().now());
    tb.Run(step);
    result.megabytes += rate * ToSeconds(step) / 8.0;
  }
  return result;
}

}  // namespace cnv::stack
