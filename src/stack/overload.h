// Overload control for the core-network elements: bounded signalling queues
// with a configurable admission policy. The paper's findings are all
// stress-induced protocol interactions; this layer makes overload, shedding
// and backoff first-class deterministic behaviours so storm campaigns can
// compare how admission policies degrade (ROADMAP: congested-cell storms).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "nas/messages.h"
#include "nas/timers.h"
#include "util/time.h"

namespace cnv::stack {

// What a core element does when its signalling queue is full.
enum class AdmissionPolicy : std::uint8_t {
  // No bound: every uplink is processed immediately (the pre-overload
  // behaviour, and the baseline storms blow past SLOs against).
  kUnbounded,
  // Reject the overflow with cause "congestion" plus a T3346-style backoff
  // grant; the UE must not retry before the timer expires (TS 24.301
  // §5.3.5). Kinds with no reject counterpart are dropped silently.
  kRejectBackoff,
  // Shed the lowest-priority message (queued or incoming), preserving
  // emergency and paging traffic while dropping bulk attach. Real (non-
  // synthetic) victims whose procedure defines a reject are notified with
  // cause "congestion" so they back off like under kRejectBackoff.
  kPriorityShed,
};

std::string ToString(AdmissionPolicy p);
// Parses "off"/"unbounded", "reject", "shed". Returns false on junk.
bool ParseAdmissionPolicy(const std::string& s, AdmissionPolicy* out);

// Scheduling class of a signalling message under priority shed. Lower value
// = more important = shed last.
enum class MsgPriority : std::uint8_t {
  kEmergency = 0,  // paging + call-path traffic: never shed before bulk
  kSignalling = 1, // mobility updates, session management, completes
  kBulk = 2,       // initial attach floods (the storm traffic)
};

MsgPriority PriorityOf(nas::MsgKind k);

struct OverloadConfig {
  // Master switch. Disabled = the legacy zero-queueing core: every uplink
  // is processed the instant it arrives (existing tests and goldens rely on
  // this byte-for-byte). Enabled = signalling is serialized through a
  // service queue; `policy` then decides what happens on overflow. Note
  // that kUnbounded + enabled is the "admission control off" storm
  // baseline: everything is accepted and the queue grows without bound.
  bool enabled = false;
  AdmissionPolicy policy = AdmissionPolicy::kUnbounded;
  // Bounded-queue depth (ignored under kUnbounded).
  std::size_t queue_capacity = 16;
  // Deterministic per-message service time while draining the queue.
  SimDuration service_time = Millis(5);
  // Backoff granted with congestion rejects (Message::backoff).
  SimDuration t3346_backoff = nas::timers::kT3346CongestionBackoff;
};

// Per-element overload counters, harvested by obs and the fault monitor.
struct OverloadStats {
  std::uint64_t admitted = 0;             // dispatched to the protocol FSMs
  std::uint64_t rejected_congestion = 0;  // overflow answered with a reject
  std::uint64_t shed = 0;                 // overflow dropped without a reply
  std::uint64_t background_served = 0;    // synthetic storm load drained
  std::uint64_t integrity_rejected = 0;   // malformed/truncated NAS refused
  std::uint64_t replay_dropped = 0;       // duplicate uid caught by the cache
  std::size_t queue_peak = 0;             // high-water mark of the queue

  // Messages that asked for core capacity, by any outcome.
  std::uint64_t offered() const {
    return admitted + rejected_congestion + shed + background_served;
  }
  // Fraction of offered signalling that was turned away (reject or shed).
  double shed_fraction() const {
    const std::uint64_t off = offered();
    if (off == 0) return 0.0;
    return static_cast<double>(rejected_congestion + shed) /
           static_cast<double>(off);
  }
};

}  // namespace cnv::stack
