#include "stack/network.h"

#include <stdexcept>

#include "stack/hss.h"

#include "nas/timers.h"
#include "util/log.h"

namespace cnv::stack {

namespace {
// Core-network processing time for simple request/answer exchanges.
constexpr SimDuration kCoreProcessing = Millis(50);
}  // namespace

// --------------------------------------------------------- CoreElement ---

CoreElement::CoreElement(sim::Simulator& sim, nas::System system,
                         std::string module)
    : sim_(sim), system_(system), module_(std::move(module)) {}

bool CoreElement::Admit(const nas::Message& m) {
  if (available_) return true;
  if (queue_while_down_) {
    pending_.push_back(m);
  } else {
    CNV_LOG_DEBUG << "core element down: uplink lost (" << m.Describe() << ")";
  }
  return false;
}

void CoreElement::Restart(bool lose_state) {
  available_ = true;
  if (lose_state) OnStateLoss();
  // Buffered uplinks live in the transport in front of the element, so they
  // survive even a lossy restart and replay in arrival order.
  std::vector<nas::Message> pending = std::move(pending_);
  pending_.clear();
  for (const auto& m : pending) OnUplink(m);
  // Signalling that was already in the service queue resumes draining.
  EnsureDraining();
}

void CoreElement::TraceEvent(const std::string& description) {
  if (trace_ != nullptr) trace_->Event(system_, module_, description);
}

bool CoreElement::Screen(const nas::Message& m) {
  if (m.integrity != nas::MsgIntegrity::kOk) {
    // Adversarial NAS: refuse without touching any FSM state. TS 24.301
    // §7.x / TS 24.008 §8: semantically incorrect messages are rejected
    // with cause "semantically incorrect message".
    ++stats_.integrity_rejected;
    if (!m.synthetic) {
      TraceEvent("Rejected " + ToString(m.integrity) + " " +
                 ToString(m.kind) +
                 " (cause: semantically incorrect message)");
    }
    return false;
  }
  if (m.uid != 0) {
    // Replay cache: normal stack traffic never stamps uids, so only
    // adversarial duplicates can hit this path.
    if (!seen_uids_.insert(m.uid).second) {
      ++stats_.replay_dropped;
      if (!m.synthetic) {
        TraceEvent("Dropped replayed " + ToString(m.kind) +
                   " (duplicate uid)");
      }
      return false;
    }
  }
  return true;
}

void CoreElement::OnUplink(const nas::Message& m) {
  if (!Admit(m)) return;
  if (!Screen(m)) return;
  if (!overload_.enabled) {
    // Legacy zero-queueing core: dispatch immediately. Synthetic storm
    // load is still "served" (it consumes nothing here — exactly why an
    // unmodeled core cannot degrade gracefully).
    if (m.synthetic) {
      ++stats_.background_served;
      return;
    }
    ++stats_.admitted;
    Dispatch(m);
    return;
  }
  if (overload_.policy != AdmissionPolicy::kUnbounded &&
      queue_.size() >= overload_.queue_capacity) {
    Overflow(m);
    return;
  }
  Enqueue(m);
}

void CoreElement::Enqueue(const nas::Message& m) {
  if (queue_.empty()) busy_since_ = sim_.now();
  queue_.push_back(m);
  if (queue_.size() > stats_.queue_peak) stats_.queue_peak = queue_.size();
  EnsureDraining();
}

SimTime CoreElement::DrainedAfter(SimTime t) const {
  for (const auto& [start, emptied] : busy_periods_) {
    if (emptied < t) continue;
    // The first busy period reaching past t: either it started after t
    // (the queue was already empty at t) or it emptied the backlog.
    return start > t ? t : emptied;
  }
  if (queue_.empty()) return t;        // empty ever since the last record
  return busy_since_ > t ? t : -1;     // ongoing backlog spans t: not drained
}

void CoreElement::Overflow(const nas::Message& m) {
  if (overload_.policy == AdmissionPolicy::kRejectBackoff) {
    nas::Message r;
    if (MakeCongestionReject(m, &r)) {
      r.backoff = overload_.t3346_backoff;
      ++stats_.rejected_congestion;
      if (!m.synthetic) {
        TraceEvent("Overload reject: " + r.Describe() + " [backoff " +
                   FormatDuration(r.backoff) + "]");
        Send(r);
      }
    } else {
      // No reject counterpart for this kind: the overflow is shed.
      ++stats_.shed;
      if (!m.synthetic) TraceEvent("Overload shed: " + ToString(m.kind));
    }
    return;
  }
  // Priority shed: drop the least important message, favouring the newest
  // among equals, so emergency and paging traffic survives bulk attach
  // floods deterministically.
  const MsgPriority incoming = PriorityOf(m.kind);
  std::size_t victim = queue_.size();  // sentinel: shed the incoming message
  MsgPriority worst = incoming;
  for (std::size_t i = queue_.size(); i-- > 0;) {
    const MsgPriority p = PriorityOf(queue_[i].kind);
    if (p > worst) {
      worst = p;
      victim = i;
    }
  }
  if (victim == queue_.size()) {
    Shed(m, "");
    return;
  }
  const nas::Message dropped = queue_[victim];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
  Shed(dropped, " (displaced by " + ToString(m.kind) + ")");
  Enqueue(m);
}

void CoreElement::Shed(const nas::Message& victim, const std::string& how) {
  ++stats_.shed;
  if (victim.synthetic) return;
  // Real devices get told about the shed when the procedure defines a
  // reject, so they back off instead of hammering their guard timers.
  nas::Message r;
  if (MakeCongestionReject(victim, &r)) {
    r.backoff = overload_.t3346_backoff;
    TraceEvent("Overload shed: " + ToString(victim.kind) + how +
               " [notified, backoff " + FormatDuration(r.backoff) + "]");
    Send(r);
  } else {
    TraceEvent("Overload shed: " + ToString(victim.kind) + how);
  }
}

void CoreElement::EnsureDraining() {
  if (draining_ || queue_.empty() || !available_) return;
  draining_ = true;
  sim_.ScheduleIn(overload_.service_time, [this] { DrainOne(); });
}

void CoreElement::DrainOne() {
  if (!available_) {
    // Outage mid-drain: the backlog stays queued; Restart resumes it.
    draining_ = false;
    return;
  }
  if (queue_.empty()) {
    draining_ = false;
    busy_periods_.emplace_back(busy_since_, sim_.now());
    return;
  }
  const nas::Message m = queue_.front();
  queue_.pop_front();
  if (m.synthetic) {
    ++stats_.background_served;
  } else {
    ++stats_.admitted;
    Dispatch(m);
  }
  if (queue_.empty()) {
    draining_ = false;
    busy_periods_.emplace_back(busy_since_, sim_.now());
    return;
  }
  sim_.ScheduleIn(overload_.service_time, [this] { DrainOne(); });
}

// ---------------------------------------------------------------- Sgsn ---

Sgsn::Sgsn(sim::Simulator& sim, Rng& rng, const CarrierProfile& profile)
    : CoreElement(sim, nas::System::k3G, "GMM"), rng_(rng),
      profile_(profile) {}

void Sgsn::Send(nas::Message m) {
  if (!available()) return;  // reply lost: element went down mid-processing
  if (downlink_ == nullptr) throw std::logic_error("Sgsn: no downlink");
  downlink_->Send(m);
}

void Sgsn::OnStateLoss() {
  registered_ = false;
  pdp_.active = false;
}

bool Sgsn::MakeCongestionReject(const nas::Message& m, nas::Message* r) const {
  switch (m.kind) {
    case nas::MsgKind::kGprsAttachRequest:
      r->kind = nas::MsgKind::kGprsAttachReject;
      r->protocol = nas::Protocol::kGmm;
      r->mm_cause = nas::MmCause::kCongestion;
      return true;
    case nas::MsgKind::kRauRequest:
      r->kind = nas::MsgKind::kRauReject;
      r->protocol = nas::Protocol::kGmm;
      r->mm_cause = nas::MmCause::kCongestion;
      return true;
    case nas::MsgKind::kPdpActivateRequest:
      r->kind = nas::MsgKind::kPdpActivateReject;
      r->protocol = nas::Protocol::kSm;
      r->pdp_cause = nas::PdpDeactCause::kInsufficientResources;
      return true;
    default:
      return false;
  }
}

void Sgsn::Dispatch(const nas::Message& m) {
  switch (m.kind) {
    case nas::MsgKind::kGprsAttachRequest: {
      registered_ = true;
      nas::Message r;
      r.kind = nas::MsgKind::kGprsAttachAccept;
      r.protocol = nas::Protocol::kGmm;
      sim_.ScheduleIn(kCoreProcessing, [this, r] { Send(r); });
      break;
    }
    case nas::MsgKind::kRauRequest: {
      registered_ = true;
      nas::Message r;
      r.kind = nas::MsgKind::kRauAccept;
      r.protocol = nas::Protocol::kGmm;
      sim_.ScheduleIn(profile_.rau_processing.Sample(rng_),
                      [this, r] { Send(r); });
      break;
    }
    case nas::MsgKind::kPdpActivateRequest: {
      pdp_ = m.pdp;
      pdp_.active = true;
      if (pdp_.ip_address == 0) pdp_.ip_address = next_ip_++;
      nas::Message r;
      r.kind = nas::MsgKind::kPdpActivateAccept;
      r.protocol = nas::Protocol::kSm;
      r.pdp = pdp_;
      sim_.ScheduleIn(kCoreProcessing, [this, r] { Send(r); });
      break;
    }
    case nas::MsgKind::kPdpDeactivateRequest: {
      // UE-initiated deactivation (e.g. mobile data disabled).
      pdp_.active = false;
      nas::Message r;
      r.kind = nas::MsgKind::kPdpDeactivateAccept;
      r.protocol = nas::Protocol::kSm;
      sim_.ScheduleIn(kCoreProcessing, [this, r] { Send(r); });
      break;
    }
    case nas::MsgKind::kPdpDeactivateAccept:
      break;  // UE confirmed a network-initiated deactivation
    default:
      CNV_LOG_WARN << "Sgsn: unexpected " << m.Describe();
      break;
  }
}

void Sgsn::StoreMigratedContext(const nas::PdpContext& pdp) {
  pdp_ = pdp;
  registered_ = true;
}

std::optional<nas::PdpContext> Sgsn::TakeContextFor4g() {
  if (!pdp_.active) return std::nullopt;
  nas::PdpContext out = pdp_;
  // Resources on the 3G side are released after the migration.
  pdp_.active = false;
  registered_ = false;
  return out;
}

void Sgsn::DeactivatePdp(nas::PdpDeactCause cause) {
  if (!pdp_.active) return;
  pdp_.active = false;
  nas::Message r;
  r.kind = nas::MsgKind::kPdpDeactivateRequest;
  r.protocol = nas::Protocol::kSm;
  r.pdp_cause = cause;
  Send(r);
}

// ----------------------------------------------------------------- Msc ---

Msc::Msc(sim::Simulator& sim, Rng& rng, const CarrierProfile& profile)
    : CoreElement(sim, nas::System::k3G, "MM"), rng_(rng),
      profile_(profile) {}

void Msc::Send(nas::Message m) {
  if (!available()) return;  // reply lost: element went down mid-processing
  if (downlink_ == nullptr) throw std::logic_error("Msc: no downlink");
  downlink_->Send(m);
}

void Msc::OnStateLoss() {
  registered_ = false;
  call_active_ = false;
  last_lu_completed_ = false;
  disrupt_next_lu_ = false;
}

bool Msc::MakeCongestionReject(const nas::Message& m, nas::Message* r) const {
  switch (m.kind) {
    case nas::MsgKind::kLocationUpdateRequest:
      r->kind = nas::MsgKind::kLocationUpdateReject;
      r->protocol = nas::Protocol::kMm;
      r->mm_cause = nas::MmCause::kCongestion;
      return true;
    case nas::MsgKind::kCmServiceRequest:
      r->kind = nas::MsgKind::kCmServiceReject;
      r->protocol = nas::Protocol::kMm;
      r->mm_cause = nas::MmCause::kCongestion;
      return true;
    default:
      return false;
  }
}

void Msc::Dispatch(const nas::Message& m) {
  switch (m.kind) {
    case nas::MsgKind::kLocationUpdateRequest: {
      if (disrupt_next_lu_) {
        // OP-I's S6 mode: the fast switch back to 4G cuts the deferred
        // update short. No accept is ever sent; the incomplete status is
        // later reported over SGs.
        disrupt_next_lu_ = false;
        last_lu_completed_ = false;
        break;
      }
      nas::Message r;
      r.kind = nas::MsgKind::kLocationUpdateAccept;
      r.protocol = nas::Protocol::kMm;
      sim_.ScheduleIn(profile_.lau_processing.Sample(rng_), [this, r] {
        registered_ = true;
        last_lu_completed_ = true;
        if (hss_ != nullptr) hss_->UpdateLocation(imsi_, nas::System::k3G);
        Send(r);
      });
      break;
    }
    case nas::MsgKind::kCmServiceRequest: {
      nas::Message r;
      r.kind = nas::MsgKind::kCmServiceAccept;
      r.protocol = nas::Protocol::kMm;
      sim_.ScheduleIn(kCoreProcessing, [this, r] {
        // Serving the outbound request implicitly refreshes the location.
        registered_ = true;
        Send(r);
      });
      break;
    }
    case nas::MsgKind::kCallSetup: {
      nas::Message r;
      r.kind = nas::MsgKind::kCallConnect;
      r.protocol = nas::Protocol::kCm;
      sim_.ScheduleIn(call_setup_latency_.Sample(rng_), [this, r] {
        call_active_ = true;
        Send(r);
      });
      break;
    }
    case nas::MsgKind::kCallDisconnect:
      call_active_ = false;
      break;
    case nas::MsgKind::kCallConnect:
      // MT call: the device answered.
      call_active_ = true;
      break;
    case nas::MsgKind::kPagingResponse: {
      // MT call setup: the device answered the page; connect the call.
      nas::Message r;
      r.kind = nas::MsgKind::kCallSetup;
      r.protocol = nas::Protocol::kCm;
      sim_.ScheduleIn(kCoreProcessing, [this, r] { Send(r); });
      break;
    }
    case nas::MsgKind::kImsiDetach:
      registered_ = false;
      if (hss_ != nullptr) hss_->PurgeLocation(imsi_);
      break;
    default:
      CNV_LOG_WARN << "Msc: unexpected " << m.Describe();
      break;
  }
}

void Msc::RecoverLocationUpdate() {
  registered_ = true;
  last_lu_completed_ = true;
  if (hss_ != nullptr) hss_->UpdateLocation(imsi_, nas::System::k3G);
}

bool Msc::PageForIncomingCall() {
  if (!registered_) {
    // No (valid) location: the incoming call cannot be routed.
    ++missed_incoming_calls_;
    return false;
  }
  nas::Message r;
  r.kind = nas::MsgKind::kPagingRequest;
  r.protocol = nas::Protocol::kMm;
  Send(r);
  return true;
}

nas::MmCause Msc::OnSgsLocationUpdate(bool first_update_completed) {
  if (profile_.lu_failure_mode == LuFailureMode::kFirstUpdateDisrupted &&
      !first_update_completed) {
    // The device-initiated first update never finished; the incomplete
    // status propagates (OP-I, §6.3).
    return nas::MmCause::kUpdateDisrupted;
  }
  if (profile_.lu_failure_mode == LuFailureMode::kSecondUpdateRejected &&
      first_update_completed && registered_) {
    // The first update already succeeded, so the MSC refuses the relayed
    // second one (OP-II, §6.3).
    return nas::MmCause::kMscTemporarilyNotReachable;
  }
  registered_ = true;
  return nas::MmCause::kNone;
}

// ----------------------------------------------------------------- Mme ---

Mme::Mme(sim::Simulator& sim, Rng& rng, const CarrierProfile& profile,
         bool lu_recovery_fix)
    : CoreElement(sim, nas::System::k4G, "EMM"), rng_(rng), profile_(profile),
      lu_recovery_fix_(lu_recovery_fix) {}

void Mme::Send(nas::Message m) {
  if (!available()) return;  // reply lost: element went down mid-processing
  if (transport_) {
    transport_(m);
    return;
  }
  if (downlink_ == nullptr) throw std::logic_error("Mme: no downlink");
  downlink_->Send(m);
}

void Mme::OnStateLoss() {
  // A crashed MME forgets its EMM contexts; the HSS keeps its (now stale)
  // view until the UE re-registers — exactly the mismatch the recovery
  // monitors are after.
  state_ = EmmState::kDeregistered;
  bearer_.active = false;
  pending_sgs_ = false;
  next_attach_delay_ = 0;
}

void Mme::DetachUe(nas::EmmCause cause) {
  state_ = EmmState::kDeregistered;
  bearer_.active = false;
  ++detaches_sent_;
  if (hss_ != nullptr) hss_->PurgeLocation(imsi_);
  // The re-registration that follows is operator-controlled and slow
  // (Figure 4): arm the extra processing for the next attach.
  next_attach_delay_ = profile_.reattach_delay.Sample(rng_);
  nas::Message r;
  r.kind = nas::MsgKind::kDetachRequest;
  r.protocol = nas::Protocol::kEmm;
  r.emm_cause = cause;
  Send(r);
}

bool Mme::MakeCongestionReject(const nas::Message& m, nas::Message* r) const {
  switch (m.kind) {
    case nas::MsgKind::kAttachRequest:
      r->kind = nas::MsgKind::kAttachReject;
      r->protocol = nas::Protocol::kEmm;
      r->emm_cause = nas::EmmCause::kCongestion;
      return true;
    case nas::MsgKind::kTauRequest:
      r->kind = nas::MsgKind::kTauReject;
      r->protocol = nas::Protocol::kEmm;
      r->emm_cause = nas::EmmCause::kCongestion;
      return true;
    default:
      return false;
  }
}

void Mme::Dispatch(const nas::Message& m) {
  switch (m.kind) {
    case nas::MsgKind::kAttachRequest: {
      if (state_ == EmmState::kRegistered) {
        // Duplicate attach at a registered MME (Figure 5b): TS 24.301 —
        // delete the bearer contexts and reprocess the request. Both
        // outcomes are allowed; rejecting is the damaging one.
        bearer_.active = false;
        const bool reject = duplicate_attach_rejects_.has_value()
                                ? *duplicate_attach_rejects_
                                : rng_.Bernoulli(0.5);
        if (reject) {
          nas::Message r;
          r.kind = nas::MsgKind::kAttachReject;
          r.protocol = nas::Protocol::kEmm;
          r.emm_cause = nas::EmmCause::kImplicitlyDetached;
          state_ = EmmState::kDeregistered;
          ++detaches_sent_;
          ++stale_attach_detaches_;
          if (hss_ != nullptr) hss_->PurgeLocation(imsi_);
          sim_.ScheduleIn(kCoreProcessing, [this, r] { Send(r); });
          break;
        }
      }
      const SimDuration delay = kCoreProcessing + next_attach_delay_;
      next_attach_delay_ = 0;
      nas::Message r;
      r.kind = nas::MsgKind::kAttachAccept;
      r.protocol = nas::Protocol::kEmm;
      bearer_.ip_address = next_ip_++;
      bearer_.active = false;  // staged until Attach Complete
      r.eps = bearer_;
      r.eps.active = true;
      sim_.ScheduleIn(delay, [this, r] {
        state_ = EmmState::kWaitComplete;
        Send(r);
      });
      break;
    }
    case nas::MsgKind::kAttachComplete:
      if (state_ == EmmState::kWaitComplete) {
        state_ = EmmState::kRegistered;
        bearer_.active = true;
        if (hss_ != nullptr) hss_->UpdateLocation(imsi_, nas::System::k4G);
      }
      break;
    case nas::MsgKind::kTauRequest: {
      if (state_ == EmmState::kWaitComplete ||
          state_ == EmmState::kDeregistered) {
        // §5.2.1: the MME believes the attach never completed; the update
        // is rejected with "implicitly detach".
        nas::Message r;
        r.kind = nas::MsgKind::kTauReject;
        r.protocol = nas::Protocol::kEmm;
        r.emm_cause = nas::EmmCause::kImplicitlyDetached;
        state_ = EmmState::kDeregistered;
        bearer_.active = false;
        ++detaches_sent_;
        ++stale_attach_detaches_;
        if (hss_ != nullptr) hss_->PurgeLocation(imsi_);
        next_attach_delay_ = profile_.reattach_delay.Sample(rng_);
        sim_.ScheduleIn(kCoreProcessing, [this, r] { Send(r); });
        break;
      }
      // Inter-system TAU: try to rebuild the EPS bearer context from the
      // 3G PDP context (§5.1.1).
      if (!bearer_.active) {
        std::optional<nas::PdpContext> pdp;
        if (sgsn_ != nullptr) pdp = sgsn_->TakeContextFor4g();
        if (pdp.has_value()) {
          const auto eps = nas::ToEpsBearerContext(*pdp);
          bearer_ = *eps;  // guaranteed active: TakeContextFor4g filters
        } else if (m.eps.active) {
          // §8 remedy on the UE side: the TAU carries a request to
          // activate a fresh default bearer instead of detaching.
          bearer_.ip_address = next_ip_++;
          bearer_.active = true;
          ++bearer_reactivations_;
        } else {
          // 4G mandates the context: reject and detach (S1).
          nas::Message r;
          r.kind = nas::MsgKind::kTauReject;
          r.protocol = nas::Protocol::kEmm;
          r.emm_cause = nas::EmmCause::kNoEpsBearerContextActive;
          state_ = EmmState::kDeregistered;
          ++detaches_sent_;
          if (hss_ != nullptr) hss_->PurgeLocation(imsi_);
          next_attach_delay_ = profile_.reattach_delay.Sample(rng_);
          sim_.ScheduleIn(kCoreProcessing, [this, r] { Send(r); });
          break;
        }
      }
      nas::Message r;
      r.kind = nas::MsgKind::kTauAccept;
      r.protocol = nas::Protocol::kEmm;
      r.eps = bearer_;
      if (hss_ != nullptr) hss_->UpdateLocation(imsi_, nas::System::k4G);
      sim_.ScheduleIn(kCoreProcessing, [this, r] { Send(r); });
      if (pending_sgs_) {
        // Post-CSFB: relay the location update to the 3G MSC over SGs
        // (§6.3) once the TAU has been answered.
        pending_sgs_ = false;
        const bool race_hit =
            force_sgs_race_ || rng_.Bernoulli(profile_.lu_failure_prob);
        force_sgs_race_ = false;
        sim_.ScheduleIn(kCoreProcessing + Millis(100), [this, race_hit] {
          RunSgsLocationUpdate(race_hit);
        });
      }
      break;
    }
    case nas::MsgKind::kExtendedServiceRequest:
      // CSFB: order the BS to release the RRC connection with redirection
      // to the 3G cell (TS 23.272).
      if (on_csfb_redirect_) {
        sim_.ScheduleIn(kCoreProcessing, [this] { on_csfb_redirect_(); });
      }
      break;
    case nas::MsgKind::kEsmActivateBearerRequest: {
      bearer_.ip_address = next_ip_++;
      bearer_.active = true;
      nas::Message r;
      r.kind = nas::MsgKind::kEsmActivateBearerAccept;
      r.protocol = nas::Protocol::kEsm;
      r.eps = bearer_;
      sim_.ScheduleIn(kCoreProcessing, [this, r] { Send(r); });
      break;
    }
    case nas::MsgKind::kDetachRequest:
      // UE-initiated detach (power off).
      state_ = EmmState::kDeregistered;
      bearer_.active = false;
      if (hss_ != nullptr) hss_->PurgeLocation(imsi_);
      break;
    default:
      CNV_LOG_WARN << "Mme: unexpected " << m.Describe();
      break;
  }
}

void Mme::RunSgsLocationUpdate(bool race_hit) {
  if (msc_ == nullptr) throw std::logic_error("Mme: no MSC for SGs");
  if (!race_hit) {
    // The common case: the relayed update simply completes.
    msc_->RecoverLocationUpdate();
    return;
  }
  // The §6.3 race engaged. The failure shape depends on the carrier: OP-I's
  // deferred first update was cut short (report it incomplete); OP-II's
  // first update completed, so the MSC refuses the relayed second one.
  const bool first_update_completed =
      profile_.lu_failure_mode == LuFailureMode::kSecondUpdateRejected;
  const nas::MmCause cause = msc_->OnSgsLocationUpdate(first_update_completed);
  if (cause == nas::MmCause::kNone) return;
  ++sgs_update_failures_;
  if (lu_recovery_fix_) {
    // §8 cross-system coordination: absorb the 3G failure inside the core
    // and redo the update on the device's behalf; never detach the UE.
    ++lu_recoveries_;
    msc_->RecoverLocationUpdate();
    return;
  }
  // Operational slip (S6): the 3G failure is propagated to the device.
  DetachUe(cause == nas::MmCause::kMscTemporarilyNotReachable
               ? nas::EmmCause::kMscTemporarilyNotReachable
               : nas::EmmCause::kImplicitlyDetached);
}

void Mme::ReleaseBearerOnSwitchAway() {
  // The 4G-side bearer reservation is released after the context migration
  // (§5.1.1); the EMM registration itself survives the inter-system switch.
  bearer_.active = false;
}

}  // namespace cnv::stack
