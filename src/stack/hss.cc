#include "stack/hss.h"

namespace cnv::stack {

void Hss::UpdateLocation(nas::Imsi imsi, nas::System system) {
  ++updates_;
  auto& loc = locations_[imsi.value];
  if (loc.system == nas::System::kNone && system != nas::System::kNone) {
    loc.deregistered_total += sim_.now() - loc.since;
  }
  loc.system = system;
  loc.since = sim_.now();
}

void Hss::PurgeLocation(nas::Imsi imsi) {
  ++updates_;
  auto& loc = locations_[imsi.value];
  if (loc.system != nas::System::kNone) {
    loc.system = nas::System::kNone;
    loc.since = sim_.now();
  }
}

nas::System Hss::CurrentSystem(nas::Imsi imsi) const {
  const auto it = locations_.find(imsi.value);
  return it == locations_.end() ? nas::System::kNone : it->second.system;
}

SimDuration Hss::DeregisteredTime(nas::Imsi imsi) const {
  const auto it = locations_.find(imsi.value);
  if (it == locations_.end()) return sim_.now();  // never registered
  SimDuration total = it->second.deregistered_total;
  if (it->second.system == nas::System::kNone) {
    total += sim_.now() - it->second.since;
  }
  return total;
}

}  // namespace cnv::stack
