#include "stack/hss.h"

namespace cnv::stack {

bool Hss::AdmitOp() {
  if (!overload_.enabled) {
    ++stats_.admitted;
    return true;
  }
  if (sim_.now() >= window_start_ + overload_.service_time) {
    window_start_ = sim_.now();
    ops_in_window_ = 0;
  }
  if (overload_.policy != AdmissionPolicy::kUnbounded &&
      ops_in_window_ >= overload_.queue_capacity) {
    ++stats_.shed;
    return false;
  }
  ++ops_in_window_;
  if (ops_in_window_ > stats_.queue_peak) stats_.queue_peak = ops_in_window_;
  ++stats_.admitted;
  return true;
}

void Hss::UpdateLocation(nas::Imsi imsi, nas::System system) {
  if (!available_) {
    if (queue_while_down_) pending_.push_back({imsi, system, false});
    return;
  }
  if (!AdmitOp()) return;
  ++updates_;
  auto& loc = locations_[imsi.value];
  if (loc.system == nas::System::kNone && system != nas::System::kNone) {
    loc.deregistered_total += sim_.now() - loc.since;
  }
  loc.system = system;
  loc.since = sim_.now();
}

void Hss::PurgeLocation(nas::Imsi imsi) {
  if (!available_) {
    if (queue_while_down_) pending_.push_back({imsi, nas::System::kNone, true});
    return;
  }
  if (!AdmitOp()) return;
  ++updates_;
  auto& loc = locations_[imsi.value];
  if (loc.system != nas::System::kNone) {
    loc.system = nas::System::kNone;
    loc.since = sim_.now();
  }
}

void Hss::Restart(bool lose_state) {
  available_ = true;
  if (lose_state) locations_.clear();
  std::vector<PendingOp> pending = std::move(pending_);
  pending_.clear();
  for (const auto& op : pending) {
    if (op.purge) {
      PurgeLocation(op.imsi);
    } else {
      UpdateLocation(op.imsi, op.system);
    }
  }
}

nas::System Hss::CurrentSystem(nas::Imsi imsi) const {
  const auto it = locations_.find(imsi.value);
  return it == locations_.end() ? nas::System::kNone : it->second.system;
}

SimDuration Hss::DeregisteredTime(nas::Imsi imsi) const {
  const auto it = locations_.find(imsi.value);
  if (it == locations_.end()) return sim_.now();  // never registered
  SimDuration total = it->second.deregistered_total;
  if (it->second.system == nas::System::kNone) {
    total += sim_.now() - it->second.since;
  }
  return total;
}

}  // namespace cnv::stack
