#include "stack/hss.h"

namespace cnv::stack {

void Hss::UpdateLocation(nas::Imsi imsi, nas::System system) {
  if (!available_) {
    if (queue_while_down_) pending_.push_back({imsi, system, false});
    return;
  }
  ++updates_;
  auto& loc = locations_[imsi.value];
  if (loc.system == nas::System::kNone && system != nas::System::kNone) {
    loc.deregistered_total += sim_.now() - loc.since;
  }
  loc.system = system;
  loc.since = sim_.now();
}

void Hss::PurgeLocation(nas::Imsi imsi) {
  if (!available_) {
    if (queue_while_down_) pending_.push_back({imsi, nas::System::kNone, true});
    return;
  }
  ++updates_;
  auto& loc = locations_[imsi.value];
  if (loc.system != nas::System::kNone) {
    loc.system = nas::System::kNone;
    loc.since = sim_.now();
  }
}

void Hss::Restart(bool lose_state) {
  available_ = true;
  if (lose_state) locations_.clear();
  std::vector<PendingOp> pending = std::move(pending_);
  pending_.clear();
  for (const auto& op : pending) {
    if (op.purge) {
      PurgeLocation(op.imsi);
    } else {
      UpdateLocation(op.imsi, op.system);
    }
  }
}

nas::System Hss::CurrentSystem(nas::Imsi imsi) const {
  const auto it = locations_.find(imsi.value);
  return it == locations_.end() ? nas::System::kNone : it->second.system;
}

SimDuration Hss::DeregisteredTime(nas::Imsi imsi) const {
  const auto it = locations_.find(imsi.value);
  if (it == locations_.end()) return sim_.now();  // never registered
  SimDuration total = it->second.deregistered_total;
  if (it->second.system == nas::System::kNone) {
    total += sim_.now() - it->second.since;
  }
  return total;
}

}  // namespace cnv::stack
