// HSS (Home Subscriber Server): stores subscription data and the current
// registration of each subscriber (Figure 1 places one in each core
// network; they share the subscriber view). The MME and MSC report location
// updates here, which gives experiments a network-wide view of where the
// subscriber is registered — and of windows during which no system has a
// valid registration (the out-of-service windows of S1/S2/S6).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "nas/ids.h"
#include "sim/simulator.h"
#include "stack/overload.h"
#include "util/time.h"

namespace cnv::stack {

class Hss {
 public:
  explicit Hss(sim::Simulator& sim) : sim_(sim) {}

  struct Subscription {
    nas::Imsi imsi;
    bool data_plan = true;
    bool roaming_allowed = true;
  };

  void Provision(const Subscription& sub) {
    subscribers_[sub.imsi.value] = sub;
  }
  bool IsProvisioned(nas::Imsi imsi) const {
    return subscribers_.contains(imsi.value);
  }

  // Registration reports from the serving elements.
  void UpdateLocation(nas::Imsi imsi, nas::System system);
  void PurgeLocation(nas::Imsi imsi);

  // Fault hooks: element outage + restart. While down, registration
  // reports are lost — unless queue-and-replay is enabled, in which case
  // they buffer and replay in order on restart. A lossy restart forgets the
  // location registry (subscription data survives: it is provisioned, not
  // volatile).
  void BeginOutage() { available_ = false; }
  void Restart(bool lose_state);
  void set_queue_while_down(bool q) { queue_while_down_ = q; }
  bool available() const { return available_; }
  std::size_t queued_while_down() const { return pending_.size(); }

  // Current registration (kNone when deregistered everywhere).
  nas::System CurrentSystem(nas::Imsi imsi) const;

  // Accumulated time the subscriber spent deregistered from both systems —
  // the aggregate out-of-service exposure of the run.
  SimDuration DeregisteredTime(nas::Imsi imsi) const;

  std::uint64_t updates_processed() const { return updates_; }

  // Overload control: the HSS is op-based (location updates/purges), so its
  // bounded "queue" is an op budget of `queue_capacity` per `service_time`
  // window; over-budget ops are shed. Disabled = unlimited (legacy).
  void ConfigureOverload(const OverloadConfig& cfg) { overload_ = cfg; }
  const OverloadStats& overload_stats() const { return stats_; }

 private:
  // Charges one location op against the overload budget; false = shed.
  bool AdmitOp();

  struct LocationState {
    nas::System system = nas::System::kNone;
    SimTime since = 0;
    SimDuration deregistered_total = 0;
  };

  struct PendingOp {
    nas::Imsi imsi;
    nas::System system = nas::System::kNone;
    bool purge = false;
  };

  sim::Simulator& sim_;
  std::unordered_map<std::uint64_t, Subscription> subscribers_;
  std::unordered_map<std::uint64_t, LocationState> locations_;
  std::uint64_t updates_ = 0;
  bool available_ = true;
  bool queue_while_down_ = false;
  std::vector<PendingOp> pending_;
  OverloadConfig overload_;
  OverloadStats stats_;
  SimTime window_start_ = 0;
  std::size_t ops_in_window_ = 0;
};

}  // namespace cnv::stack
