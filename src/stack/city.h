// City-scale control-plane population engine. Where stack::Testbed walks one
// UE through full per-message protocol machinery, CityEngine drives an
// entire metropolitan population — up to a million UEs across thousands of
// cells — through the signalling workload the paper measures at operator
// scale: busy-hour attach fronts, paging load, location-update hotspots
// along drive routes, periodic TAU, and T3346 congestion backoff.
//
// Scale machinery:
//
//   * Struct-of-arrays UE/bearer state carved from one util Arena: a few
//     primitive arrays indexed by UE id, a fixed handful of bytes per UE,
//     no per-UE objects. CityReport::bytes_per_ue is measured, not
//     estimated.
//   * Per-cell event sharding: each cell owns a hierarchical TimerWheel,
//     an outbox, and its own FIFO sequence — no shared event queue.
//   * Conservative parallel discrete-event windows: cross-cell signalling
//     (handover/LU) takes at least `lookahead` of latency, so all cells can
//     advance one lookahead window independently on a par::WorkerPool.
//     Window barriers exchange outbox messages in a deterministically
//     sorted order; per-UE decisions come from counter-hash draws rather
//     than shared RNG streams. Result: byte-identical runs (digest, trace
//     stream, every counter) at any --jobs value.
//   * O(1) cancellation: pending events carry the owning UE's epoch (and
//     guard timers a guard generation); cancelling or handing over just
//     bumps the tag and lets stale entries fall out when their tick drains.
//   * Sampled tracing: a trace::SamplingSink admits 1-in-N UEs whose whole
//     protocol history is recorded; storm/overload onsets bypass sampling.
//
// The same protocol logic also runs on the retired single-heap kernel
// (CityKernelMode::kHeap, sim/heap_ref.h) so bench/perf_city can report the
// wheel's events/sec against the seed design on an identical workload.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "par/pool.h"
#include "sim/heap_ref.h"
#include "sim/wheel.h"
#include "trace/record.h"
#include "trace/sampler.h"
#include "util/arena.h"
#include "util/time.h"

namespace cnv::stack {

struct CityConfig {
  std::uint32_t ues = 10'000;
  std::uint32_t cells = 64;
  // Every Nth cell is a drive-route junction: mobility draws are biased
  // toward these cells, concentrating location-update load (paper Fig. 7).
  std::uint32_t hotspot_every = 16;
  SimTime horizon = Minutes(10);
  // Cross-cell signalling latency; also the conservative window width.
  SimTime lookahead = Millis(50);
  std::uint64_t seed = 1;
  std::uint32_t sample_every = 1024;  // trace 1-in-N UEs

  // Time-of-day load model. A `storm_fraction` of the population powers on
  // in an exponential front starting at `storm_start` (mass re-attach after
  // an outage / morning busy hour); the rest trickle in uniformly. Session
  // and paging intensity peaks by `busy_boost`x mid-front and relaxes to
  // the off-peak mean afterwards.
  double storm_fraction = 0.7;
  SimTime storm_start = Seconds(5);
  SimTime storm_ramp = Seconds(30);
  double busy_boost = 3.0;
  double activity_mean_s = 60.0;  // off-peak think time between sessions
  double paging_mean_s = 90.0;
  double dwell_mean_s = 120.0;  // time in a cell before moving on

  // Overload model: a cell processing more than this many simultaneous
  // attaches rejects newcomers into T3346 backoff; this many attach
  // arrivals within one second flags a signalling storm in the trace.
  std::uint32_t attach_capacity = 64;
  std::uint32_t storm_threshold = 50;
};

enum class CityKernelMode {
  kWheel,  // sharded timer wheels, epoch-tag cancellation, parallel windows
  kHeap,   // seed kernel: one global binary heap + hash-set cancellation
};

struct CityReport {
  // Kernel accounting (summed over shards).
  std::uint64_t events_executed = 0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t stale_events = 0;  // epoch/generation-mismatched pops

  // Protocol accounting.
  std::uint64_t attaches_started = 0;
  std::uint64_t attaches_completed = 0;
  std::uint64_t attaches_rejected = 0;
  std::uint64_t guard_expiries = 0;
  std::uint64_t backoffs_armed = 0;
  std::uint64_t sessions = 0;
  std::uint64_t pagings = 0;
  std::uint64_t handovers = 0;
  std::uint64_t location_updates = 0;
  std::uint64_t taus = 0;
  std::uint64_t storms_flagged = 0;

  // Determinism digest over the executed event stream (per-shard FNV-1a,
  // combined in cell order). Byte-identical across --jobs values for the
  // wheel kernel; the heap kernel digests its global order instead.
  std::uint64_t digest = 0;

  // Trace accounting.
  std::uint64_t trace_emitted = 0;
  std::uint64_t trace_dropped = 0;

  // Memory.
  std::size_t arena_bytes = 0;
  double bytes_per_ue = 0.0;

  // Parallel-window execution shape (deterministic at any job count).
  std::uint64_t windows = 0;
  std::uint64_t shard_stalls = 0;  // cell-windows skipped: no event due
  std::uint64_t cross_cell_messages = 0;

  // Wheel-tier usage aggregated over shards (wheel mode only; peaks are
  // sums of per-shard peaks, an upper bound on the global peak).
  sim::TimerWheel::Stats wheel;
};

class CityEngine {
 public:
  CityEngine(const CityConfig& cfg, CityKernelMode mode);
  ~CityEngine();
  CityEngine(const CityEngine&) = delete;
  CityEngine& operator=(const CityEngine&) = delete;

  // Receives the sampled trace stream in deterministic order. Optional;
  // records are counted either way.
  void set_trace_sink(std::function<void(const trace::TraceRecord&)> sink) {
    trace_sink_ = std::move(sink);
  }

  // Runs the population to cfg.horizon. `pool` may be null (serial); with a
  // pool, cells advance in parallel inside lookahead windows. Wheel-mode
  // results are byte-identical for any pool size.
  CityReport Run(par::WorkerPool* pool);

 private:
  struct Msg {
    SimTime time;
    std::uint32_t dst;
    std::uint32_t src;
    std::uint64_t seq;  // per-source counter; part of the merge sort key
    std::uint64_t payload;
  };

  struct Counters {
    std::uint64_t attaches_started = 0;
    std::uint64_t attaches_completed = 0;
    std::uint64_t attaches_rejected = 0;
    std::uint64_t guard_expiries = 0;
    std::uint64_t backoffs_armed = 0;
    std::uint64_t sessions = 0;
    std::uint64_t pagings = 0;
    std::uint64_t handovers = 0;
    std::uint64_t location_updates = 0;
    std::uint64_t taus = 0;
    std::uint64_t storms_flagged = 0;
    std::uint64_t stale_events = 0;
  };

  struct Shard {
    std::uint32_t id = 0;
    sim::TimerWheel wheel;
    std::uint64_t next_seq = 1;
    std::uint64_t msg_seq = 0;
    std::vector<Msg> outbox;
    std::vector<trace::TraceRecord> tracebuf;
    std::unique_ptr<trace::SamplingSink> sink;
    std::uint64_t digest = 14695981039346656037ull;  // FNV-1a offset basis
    std::uint64_t executed = 0;
    std::uint64_t scheduled = 0;
    std::uint64_t cancelled = 0;
    std::uint32_t attach_inflight = 0;
    SimTime storm_bucket = -1;
    std::uint32_t storm_arrivals = 0;
    Counters c;
  };

  // Per-UE counter-hash draws: deterministic no matter which worker, cell,
  // or kernel executes the UE's events.
  double UnitDraw(std::uint32_t ue);
  SimTime ExpDraw(std::uint32_t ue, double mean_seconds);
  // Session/paging intensity multiplier at simulated time t (>= 1),
  // quantized per simulated second and served from a precomputed table.
  double Intensity(SimTime t) const {
    const auto s = static_cast<std::size_t>(t / kSecond);
    return intensity_[s < intensity_.size() ? s : intensity_.size() - 1];
  }

  // TimerWheel reaper: true when the entry's tag no longer matches the
  // owning UE's epoch / guard generation, so the wheel may drop it at the
  // first cascade or drain instead of carrying it to a sorted pop.
  static bool ReapDead(void* ctx, std::uint64_t payload);

  void SeedPopulation();
  void ScheduleUe(Shard& s, SimTime t, std::uint8_t kind, std::uint32_t ue,
                  std::uint16_t tag);
  void Send(Shard& s, std::uint32_t dst, SimTime t, std::uint8_t kind,
            std::uint32_t ue, std::uint16_t tag);
  void ArmGuard(Shard& s, std::uint32_t ue, SimTime expiry);
  void CancelGuard(Shard& s, std::uint32_t ue);
  void Execute(Shard& s, SimTime t, std::uint64_t payload);
  void Dispatch(Shard& s, SimTime t, std::uint8_t kind, std::uint32_t ue);
  // The description is built lazily — only for the 1-in-N admitted UEs —
  // so the un-sampled hot path never touches a std::string.
  template <class DescFn>
  void Trace(Shard& s, SimTime t, std::uint32_t ue, trace::TraceType type,
             const char* module, DescFn&& desc) {
    if (!s.sink->Admits(ue)) {
      s.sink->CountSuppressed(1);
      return;
    }
    trace::TraceRecord r;
    r.time = t;
    r.type = type;
    r.system = nas::System::k4G;
    r.module = module;
    r.description = desc();
    s.sink->EmitAlways(r);
  }

  void RunWheel(par::WorkerPool* pool);
  void RunHeap();
  void MergeWindow();
  void FlushTraces();
  CityReport BuildReport() const;

  const CityConfig cfg_;
  const CityKernelMode mode_;
  std::function<void(const trace::TraceRecord&)> trace_sink_;

  Arena arena_;
  // UE struct-of-arrays (arena-backed, zero-initialized).
  std::uint8_t* mm_ = nullptr;       // 0 dereg, 1 attaching, 2 registered, 3 backoff
  std::uint8_t* sess_ = nullptr;     // in an active session
  std::uint8_t* bearers_ = nullptr;  // active EPS bearers
  // Tag arrays are written only by the UE's owning shard, but a handed-over
  // UE's tombstoned timers can pop in the old cell concurrently — relaxed
  // atomics make that read clean. Tags only ever grow, so a racing stale
  // check reaches the same (mismatch) verdict whichever value it sees.
  std::atomic<std::uint16_t>* epoch_ = nullptr;  // invalidates pending events
  std::atomic<std::uint16_t>* ggen_ = nullptr;   // invalidates the armed guard
  std::uint32_t* cell_ = nullptr;
  std::uint32_t* draws_ = nullptr;   // counter-hash draw index
  std::uint64_t* guard_id_ = nullptr;  // heap mode: EventId for real Cancel

  std::vector<Shard> shards_;
  std::vector<double> intensity_;  // per-second busy-hour multiplier table

  // Compact per-cell mirrors scanned by the window loop. The serial driver
  // visits every cell every window; reading these few cache lines instead
  // of the fat Shard structs makes an idle cell cost a flag test. Each slot
  // is written only by its cell's owning worker (or the serial barrier), so
  // parallel windows stay race-free.
  std::vector<SimTime> resume_;           // mirror of wheel.ResumeAt()
  std::vector<std::uint64_t> stalls_;     // windows skipped per cell
  std::vector<std::uint8_t> out_flag_;    // outbox non-empty
  std::vector<std::uint8_t> trace_flag_;  // tracebuf non-empty
  std::unique_ptr<sim::ReferenceHeapSimulator> heap_;  // kHeap only
  std::vector<Msg> merge_scratch_;
  std::uint64_t windows_ = 0;
  std::uint64_t cross_cell_messages_ = 0;
};

}  // namespace cnv::stack
