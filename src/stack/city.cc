#include "stack/city.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <utility>

namespace cnv::stack {

namespace {

// Event kinds packed into the payload's top byte.
enum : std::uint8_t {
  kAttachStart = 1,  // UE powers on / retries registration
  kAttachDone,       // attach processing finished (success or soft fail)
  kGuardExpiry,      // procedure guard timer (T3410/T3430-class) fired
  kBackoffDone,      // T3346 congestion backoff elapsed
  kActivity,         // UE-originated session begins
  kActivityDone,     // session teardown
  kPaging,           // network-originated page
  kMove,             // dwell elapsed: hand over to the next cell on the route
  kArrive,           // handover arrival in the target cell (cross-cell msg)
  kLuDone,           // location-update processing finished
  kTau,              // periodic tracking-area update timer fired
  kTauDone,          // TAU processing finished
};

constexpr std::uint64_t Pack(std::uint8_t kind, std::uint32_t ue,
                             std::uint16_t tag) {
  return (std::uint64_t{kind} << 56) | (std::uint64_t{ue} << 16) | tag;
}
constexpr std::uint8_t KindOf(std::uint64_t p) {
  return static_cast<std::uint8_t>(p >> 56);
}
constexpr std::uint32_t UeOf(std::uint64_t p) {
  return static_cast<std::uint32_t>((p >> 16) & 0xFFFFFFFFull);
}
constexpr std::uint16_t TagOf(std::uint64_t p) {
  return static_cast<std::uint16_t>(p & 0xFFFF);
}

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint16_t LoadTag(const std::atomic<std::uint16_t>* a, std::uint32_t i) {
  return a[i].load(std::memory_order_relaxed);
}

std::uint16_t BumpTag(std::atomic<std::uint16_t>* a, std::uint32_t i) {
  const auto v =
      static_cast<std::uint16_t>(a[i].load(std::memory_order_relaxed) + 1);
  a[i].store(v, std::memory_order_relaxed);
  return v;
}

std::uint64_t SplitMix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// MM states.
enum : std::uint8_t { kDereg = 0, kAttaching, kRegistered, kBackoff };

}  // namespace

CityEngine::CityEngine(const CityConfig& cfg, CityKernelMode mode)
    : cfg_(cfg),
      mode_(mode),
      shards_(cfg.cells),
      resume_(cfg.cells, 0),
      stalls_(cfg.cells, 0),
      out_flag_(cfg.cells, 0),
      trace_flag_(cfg.cells, 0) {
  mm_ = arena_.AllocArray<std::uint8_t>(cfg_.ues);
  sess_ = arena_.AllocArray<std::uint8_t>(cfg_.ues);
  bearers_ = arena_.AllocArray<std::uint8_t>(cfg_.ues);
  epoch_ = arena_.AllocArray<std::atomic<std::uint16_t>>(cfg_.ues);
  ggen_ = arena_.AllocArray<std::atomic<std::uint16_t>>(cfg_.ues);
  cell_ = arena_.AllocArray<std::uint32_t>(cfg_.ues);
  draws_ = arena_.AllocArray<std::uint32_t>(cfg_.ues);
  if (mode_ == CityKernelMode::kHeap) {
    guard_id_ = arena_.AllocArray<std::uint64_t>(cfg_.ues);
    heap_ = std::make_unique<sim::ReferenceHeapSimulator>();
  }
  for (std::uint32_t c = 0; c < cfg_.cells; ++c) {
    shards_[c].sink = std::make_unique<trace::SamplingSink>(
        cfg_.sample_every, cfg_.seed,
        [this, c](const trace::TraceRecord& r) {
          shards_[c].tracebuf.push_back(r);
          trace_flag_[c] = 1;
        });
    if (mode_ == CityKernelMode::kWheel) {
      shards_[c].wheel.SetReaper(&CityEngine::ReapDead, this);
    }
  }

  // Busy-hour intensity, tabulated per simulated second: a Gaussian bump
  // centered shortly after the attach front, relaxing to the off-peak mean.
  const double center =
      ToSeconds(cfg_.storm_start) + 2.0 * ToSeconds(cfg_.storm_ramp);
  const double width = std::max(4.0 * ToSeconds(cfg_.storm_ramp), 120.0);
  const auto seconds = static_cast<std::size_t>(
      std::min<SimTime>(cfg_.horizon / kSecond + 2, 4 * 3600));
  intensity_.resize(seconds);
  for (std::size_t sec = 0; sec < seconds; ++sec) {
    const double x = (static_cast<double>(sec) - center) / width;
    intensity_[sec] = 1.0 + (cfg_.busy_boost - 1.0) * std::exp(-x * x);
  }
}

bool CityEngine::ReapDead(void* ctx, std::uint64_t payload) {
  auto* self = static_cast<CityEngine*>(ctx);
  const std::uint32_t ue = UeOf(payload);
  const std::uint16_t want = KindOf(payload) == kGuardExpiry
                                 ? LoadTag(self->ggen_, ue)
                                 : LoadTag(self->epoch_, ue);
  return TagOf(payload) != want;
}

CityEngine::~CityEngine() = default;

double CityEngine::UnitDraw(std::uint32_t ue) {
  const std::uint64_t x =
      (std::uint64_t{ue} << 32) | draws_[ue]++;
  const std::uint64_t h = SplitMix(x ^ (cfg_.seed * 0x9e3779b97f4a7c15ull));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

SimTime CityEngine::ExpDraw(std::uint32_t ue, double mean_seconds) {
  const double u = UnitDraw(ue);
  const double d = -mean_seconds * std::log(1.0 - u);
  const SimTime t = FromSeconds(d);
  return t < 1 ? 1 : t;
}

void CityEngine::ScheduleUe(Shard& s, SimTime t, std::uint8_t kind,
                            std::uint32_t ue, std::uint16_t tag) {
  const std::uint64_t payload = Pack(kind, ue, tag);
  if (mode_ == CityKernelMode::kWheel) {
    s.wheel.Schedule(t, s.next_seq++, payload);
  } else {
    const auto id = heap_->ScheduleAt(t, [this, payload] {
      Shard& owner = shards_[cell_[UeOf(payload)]];
      Execute(owner, heap_->now(), payload);
    });
    if (kind == kGuardExpiry) guard_id_[ue] = id;
  }
  ++s.scheduled;
}

void CityEngine::Send(Shard& s, std::uint32_t dst, SimTime t,
                      std::uint8_t kind, std::uint32_t ue, std::uint16_t tag) {
  const std::uint64_t payload = Pack(kind, ue, tag);
  if (mode_ == CityKernelMode::kWheel) {
    s.outbox.push_back(Msg{t, dst, s.id, s.msg_seq++, payload});
    out_flag_[s.id] = 1;
  } else {
    // No windows in heap mode: same latency, scheduled directly — but the
    // event must execute in the *destination* shard's context (cell_[ue]
    // still points at the source until the arrival runs).
    heap_->ScheduleAt(t, [this, dst, payload] {
      Execute(shards_[dst], heap_->now(), payload);
    });
    ++s.scheduled;
  }
}

void CityEngine::ArmGuard(Shard& s, std::uint32_t ue, SimTime expiry) {
  const std::uint16_t g =
      static_cast<std::uint16_t>(ggen_[ue].load(std::memory_order_relaxed) + 1);
  ggen_[ue].store(g, std::memory_order_relaxed);
  ScheduleUe(s, expiry, kGuardExpiry, ue, g);
}

void CityEngine::CancelGuard(Shard& s, std::uint32_t ue) {
  // The pending expiry becomes a stale tombstone.
  ggen_[ue].store(
      static_cast<std::uint16_t>(ggen_[ue].load(std::memory_order_relaxed) + 1),
      std::memory_order_relaxed);
  ++s.cancelled;
  if (mode_ == CityKernelMode::kHeap) {
    heap_->Cancel(guard_id_[ue]);
    guard_id_[ue] = 0;
  }
}

void CityEngine::Execute(Shard& s, SimTime t, std::uint64_t payload) {
  ++s.executed;
  // Digest the executed stream: (time, kind, ue) in execution order.
  s.digest = (s.digest ^ static_cast<std::uint64_t>(t)) * kFnvPrime;
  s.digest = (s.digest ^ payload) * kFnvPrime;

  const std::uint8_t kind = KindOf(payload);
  const std::uint32_t ue = UeOf(payload);
  const std::uint16_t tag = TagOf(payload);
  // Tag check: guard expiries validate against the guard generation, every
  // other event against the UE's ownership epoch. A mismatch is a tombstone
  // — cancelled guard, superseded procedure, or a handed-over UE's old
  // timers — and costs exactly this comparison.
  const std::uint16_t want =
      (kind == kGuardExpiry) ? LoadTag(ggen_, ue) : LoadTag(epoch_, ue);
  if (tag != want) {
    ++s.c.stale_events;
    return;
  }
  Dispatch(s, t, kind, ue);
}

void CityEngine::Dispatch(Shard& s, SimTime t, std::uint8_t kind,
                          std::uint32_t ue) {
  switch (kind) {
    case kAttachStart: {
      if (mm_[ue] == kRegistered || mm_[ue] == kAttaching) break;
      // Storm detector: attach arrivals per wall second in this cell.
      const SimTime bucket = t / kSecond;
      if (bucket != s.storm_bucket) {
        s.storm_bucket = bucket;
        s.storm_arrivals = 0;
      }
      if (++s.storm_arrivals == cfg_.storm_threshold) {
        ++s.c.storms_flagged;
        trace::TraceRecord r;
        r.time = t;
        r.type = trace::TraceType::kEvent;
        r.system = nas::System::k4G;
        r.module = "STORM";
        r.description = "Mass attach storm begins (rate=" +
                        std::to_string(s.storm_arrivals) + "/s)";
        s.sink->EmitAlways(r);
      }
      ++s.c.attaches_started;
      if (s.attach_inflight >= cfg_.attach_capacity) {
        // MME overload: reject into T3346 congestion backoff (15-30 min —
        // deep wheel tiers by design).
        ++s.c.attaches_rejected;
        ++s.c.backoffs_armed;
        mm_[ue] = kBackoff;
        const SimTime backoff =
            Minutes(15) + static_cast<SimTime>(UnitDraw(ue) * Minutes(15));
        ScheduleUe(s, t + backoff, kBackoffDone, ue, LoadTag(epoch_, ue));
        Trace(s, t, ue, trace::TraceType::kState, "EMM", [backoff] {
          return "T3346 armed (" + std::to_string(backoff / kSecond) +
                 "s congestion backoff)";
        });
        break;
      }
      mm_[ue] = kAttaching;
      ++s.attach_inflight;
      ArmGuard(s, ue, t + Seconds(15));  // T3410
      // A stalled attach (lost response) outlives its guard.
      const bool stalled = UnitDraw(ue) < 0.05;
      const SimTime proc =
          stalled ? Seconds(20) + ExpDraw(ue, 10.0)
                  : Millis(50) + ExpDraw(ue, 0.4);
      ScheduleUe(s, t + proc, kAttachDone, ue, LoadTag(epoch_, ue));
      Trace(s, t, ue, trace::TraceType::kMsg, "EMM",
            [] { return std::string("Attach request"); });
      break;
    }
    case kAttachDone: {
      CancelGuard(s, ue);
      if (s.attach_inflight > 0) --s.attach_inflight;
      if (UnitDraw(ue) < 0.02) {
        // Soft failure: retry shortly.
        mm_[ue] = kDereg;
        ScheduleUe(s, t + Seconds(1) + ExpDraw(ue, 2.0), kAttachStart, ue,
                   epoch_[ue]);
        break;
      }
      mm_[ue] = kRegistered;
      if (bearers_[ue] < 255) ++bearers_[ue];
      ++s.c.attaches_completed;
      Trace(s, t, ue, trace::TraceType::kState, "EMM",
            [] { return std::string("Attach complete, EMM-REGISTERED"); });
      const std::uint16_t e = LoadTag(epoch_, ue);
      ScheduleUe(s, t + ExpDraw(ue, cfg_.activity_mean_s / Intensity(t)),
                 kActivity, ue, e);
      ScheduleUe(s, t + ExpDraw(ue, cfg_.paging_mean_s / Intensity(t)),
                 kPaging, ue, e);
      ScheduleUe(s, t + ExpDraw(ue, cfg_.dwell_mean_s), kMove, ue, e);
      // Periodic TAU: 30-120 min, landing in the top tier or the calendar.
      const SimTime tau =
          Minutes(30) + static_cast<SimTime>(UnitDraw(ue) * Minutes(90));
      ScheduleUe(s, t + tau, kTau, ue, e);
      break;
    }
    case kGuardExpiry: {
      ++s.c.guard_expiries;
      if (mm_[ue] == kAttaching) {
        // T3410 expiry: the stalled attach is abandoned; the epoch bump
        // tombstones the in-flight kAttachDone before the retry.
        if (s.attach_inflight > 0) --s.attach_inflight;
        mm_[ue] = kDereg;
        ScheduleUe(s, t + Seconds(2) + ExpDraw(ue, 4.0), kAttachStart, ue,
                   BumpTag(epoch_, ue));
      } else if (sess_[ue]) {
        sess_[ue] = 0;
        ScheduleUe(s, t + ExpDraw(ue, cfg_.activity_mean_s / Intensity(t)),
                   kActivity, ue, LoadTag(epoch_, ue));
      }
      break;
    }
    case kBackoffDone: {
      if (mm_[ue] != kBackoff) break;
      mm_[ue] = kDereg;
      ScheduleUe(s, t + static_cast<SimTime>(UnitDraw(ue) * Seconds(5)) + 1,
                 kAttachStart, ue, LoadTag(epoch_, ue));
      break;
    }
    case kActivity: {
      if (mm_[ue] != kRegistered || sess_[ue]) break;
      sess_[ue] = 1;
      ++s.c.sessions;
      ArmGuard(s, ue, t + Seconds(5));
      ScheduleUe(s, t + Millis(100) + ExpDraw(ue, 0.8), kActivityDone, ue,
                 epoch_[ue]);
      break;
    }
    case kActivityDone: {
      CancelGuard(s, ue);
      sess_[ue] = 0;
      ScheduleUe(s, t + ExpDraw(ue, cfg_.activity_mean_s / Intensity(t)),
                 kActivity, ue, LoadTag(epoch_, ue));
      break;
    }
    case kPaging: {
      if (mm_[ue] == kRegistered) {
        ++s.c.pagings;
        Trace(s, t, ue, trace::TraceType::kMsg, "EMM",
              [] { return std::string("Paging, S-TMSI"); });
      }
      ScheduleUe(s, t + ExpDraw(ue, cfg_.paging_mean_s / Intensity(t)),
                 kPaging, ue, LoadTag(epoch_, ue));
      break;
    }
    case kMove: {
      if (mm_[ue] != kRegistered || sess_[ue]) {
        // Mid-procedure or not registered: try again after a short dwell.
        ScheduleUe(s, t + ExpDraw(ue, cfg_.dwell_mean_s / 4.0), kMove, ue,
                   epoch_[ue]);
        break;
      }
      // Route model: mostly the next cell on the ring road, with a bias
      // toward drive-route junction cells (the LU hotspots of Fig. 7).
      std::uint32_t dst;
      const double r = UnitDraw(ue);
      const std::uint32_t hotspots =
          std::max<std::uint32_t>(1, cfg_.cells / cfg_.hotspot_every);
      if (r < 0.3) {
        dst = static_cast<std::uint32_t>(UnitDraw(ue) * hotspots) *
              cfg_.hotspot_every % cfg_.cells;
      } else if (r < 0.65) {
        dst = (cell_[ue] + 1) % cfg_.cells;
      } else {
        dst = (cell_[ue] + cfg_.cells - 1) % cfg_.cells;
      }
      if (dst == cell_[ue]) dst = (dst + 1) % cfg_.cells;
      ++s.c.handovers;
      // The epoch bump tombstones every timer the UE holds in this cell;
      // the arrival re-establishes its chains in the target cell after one
      // lookahead of signalling latency.
      BumpTag(ggen_, ue);
      Send(s, dst, t + cfg_.lookahead, kArrive, ue, BumpTag(epoch_, ue));
      break;
    }
    case kArrive: {
      cell_[ue] = s.id;
      ++s.c.location_updates;
      ArmGuard(s, ue, t + Seconds(10));  // T3430-class LU guard
      ScheduleUe(s, t + Millis(20) + ExpDraw(ue, 0.2), kLuDone, ue,
                 epoch_[ue]);
      Trace(s, t, ue, trace::TraceType::kMsg, "EMM", [&s] {
        return "Tracking area update request (cell=" + std::to_string(s.id) +
               ")";
      });
      break;
    }
    case kLuDone: {
      CancelGuard(s, ue);
      const std::uint16_t e = LoadTag(epoch_, ue);
      ScheduleUe(s, t + ExpDraw(ue, cfg_.activity_mean_s / Intensity(t)),
                 kActivity, ue, e);
      ScheduleUe(s, t + ExpDraw(ue, cfg_.paging_mean_s / Intensity(t)),
                 kPaging, ue, e);
      ScheduleUe(s, t + ExpDraw(ue, cfg_.dwell_mean_s), kMove, ue, e);
      const SimTime tau =
          Minutes(30) + static_cast<SimTime>(UnitDraw(ue) * Minutes(90));
      ScheduleUe(s, t + tau, kTau, ue, e);
      break;
    }
    case kTau: {
      if (mm_[ue] != kRegistered) break;
      ++s.c.taus;
      ArmGuard(s, ue, t + Seconds(10));
      ScheduleUe(s, t + Millis(20) + ExpDraw(ue, 0.2), kTauDone, ue,
                 epoch_[ue]);
      Trace(s, t, ue, trace::TraceType::kMsg, "EMM",
            [] { return std::string("Periodic TAU request"); });
      break;
    }
    case kTauDone: {
      CancelGuard(s, ue);
      const SimTime tau =
          Minutes(30) + static_cast<SimTime>(UnitDraw(ue) * Minutes(90));
      ScheduleUe(s, t + tau, kTau, ue, LoadTag(epoch_, ue));
      break;
    }
    default:
      break;
  }
}

void CityEngine::SeedPopulation() {
  for (std::uint32_t c = 0; c < cfg_.cells; ++c) shards_[c].id = c;
  const double uniform_span = 0.8 * ToSeconds(cfg_.horizon);
  for (std::uint32_t ue = 0; ue < cfg_.ues; ++ue) {
    cell_[ue] = ue % cfg_.cells;
    SimTime t0;
    if (UnitDraw(ue) < cfg_.storm_fraction) {
      t0 = cfg_.storm_start + ExpDraw(ue, ToSeconds(cfg_.storm_ramp));
    } else {
      t0 = FromSeconds(UnitDraw(ue) * uniform_span);
    }
    if (t0 >= cfg_.horizon) t0 = cfg_.horizon - 1;
    ScheduleUe(shards_[cell_[ue]], t0, kAttachStart, ue, 0);
  }
}

void CityEngine::MergeWindow() {
  // Cross-cell deliveries: gather every outbox (cell order), then impose a
  // total order independent of which worker produced what. (dst, time, src
  // msg seq) is unique, so the sort is a permutation with one outcome.
  merge_scratch_.clear();
  for (std::uint32_t c = 0; c < cfg_.cells; ++c) {
    if (!out_flag_[c]) continue;  // most cells sent nothing this window
    out_flag_[c] = 0;
    Shard& s = shards_[c];
    merge_scratch_.insert(merge_scratch_.end(), s.outbox.begin(),
                          s.outbox.end());
    s.outbox.clear();
  }
  if (!merge_scratch_.empty()) {
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const Msg& a, const Msg& b) {
                return std::tie(a.dst, a.time, a.src, a.seq) <
                       std::tie(b.dst, b.time, b.src, b.seq);
              });
    cross_cell_messages_ += merge_scratch_.size();
    for (const Msg& m : merge_scratch_) {
      Shard& d = shards_[m.dst];
      d.wheel.Schedule(m.time, d.next_seq++, m.payload);
      ++d.scheduled;
      resume_[m.dst] = d.wheel.ResumeAt();
    }
  }
  FlushTraces();
}

void CityEngine::FlushTraces() {
  // Deterministic global trace order: (time, cell, in-cell order).
  struct Key {
    SimTime time;
    std::uint32_t cell;
    std::uint32_t idx;
  };
  std::vector<Key> keys;
  for (std::uint32_t c = 0; c < cfg_.cells; ++c) {
    if (!trace_flag_[c]) continue;  // sampled tracing: usually nothing
    for (std::uint32_t i = 0; i < shards_[c].tracebuf.size(); ++i) {
      keys.push_back(Key{shards_[c].tracebuf[i].time, c, i});
    }
  }
  if (keys.empty()) return;
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    return std::tie(a.time, a.cell, a.idx) < std::tie(b.time, b.cell, b.idx);
  });
  if (trace_sink_) {
    for (const Key& k : keys) trace_sink_(shards_[k.cell].tracebuf[k.idx]);
  }
  for (std::uint32_t c = 0; c < cfg_.cells; ++c) {
    if (!trace_flag_[c]) continue;
    trace_flag_[c] = 0;
    shards_[c].tracebuf.clear();
  }
}

void CityEngine::RunWheel(par::WorkerPool* pool) {
  const auto advance = [this](std::size_t c, SimTime end) {
    // resume_[c] mirrors the wheel's lower bound on its next entry: a cell
    // whose next signalling lies beyond this window costs one array read.
    if (resume_[c] >= end) {
      ++stalls_[c];
      return;
    }
    Shard& s = shards_[c];
    s.wheel.DrainUntil(
        end - 1, [this, &s](const sim::WheelEntry& e) {
          Execute(s, e.time, e.payload);
        });
    resume_[c] = s.wheel.ResumeAt();
  };
  SimTime t = 0;
  while (t < cfg_.horizon) {
    const SimTime end = std::min(t + cfg_.lookahead, cfg_.horizon);
    if (pool != nullptr && pool->jobs() > 1) {
      pool->ParallelEach(cfg_.cells,
                         [&](int, std::size_t c) { advance(c, end); });
    } else {
      for (std::size_t c = 0; c < cfg_.cells; ++c) advance(c, end);
    }
    ++windows_;
    MergeWindow();
    t = end;
  }
}

void CityEngine::RunHeap() {
  heap_->RunUntil(cfg_.horizon);
  FlushTraces();
}

CityReport CityEngine::BuildReport() const {
  CityReport r;
  std::uint64_t digest = 14695981039346656037ull;
  for (const Shard& s : shards_) {
    r.events_executed += s.executed;
    r.events_scheduled += s.scheduled;
    r.events_cancelled += s.cancelled;
    r.stale_events += s.c.stale_events;
    r.attaches_started += s.c.attaches_started;
    r.attaches_completed += s.c.attaches_completed;
    r.attaches_rejected += s.c.attaches_rejected;
    r.guard_expiries += s.c.guard_expiries;
    r.backoffs_armed += s.c.backoffs_armed;
    r.sessions += s.c.sessions;
    r.pagings += s.c.pagings;
    r.handovers += s.c.handovers;
    r.location_updates += s.c.location_updates;
    r.taus += s.c.taus;
    r.storms_flagged += s.c.storms_flagged;
    r.shard_stalls += stalls_[s.id];
    r.trace_emitted += s.sink->emitted();
    r.trace_dropped += s.sink->dropped();
    digest = (digest ^ s.digest) * kFnvPrime;
    const auto& ws = s.wheel.stats();
    for (int level = 0; level < sim::TimerWheel::kLevels; ++level) {
      r.wheel.inserts[level] += ws.inserts[level];
      r.wheel.occupancy[level] += ws.occupancy[level];
      r.wheel.peak_occupancy[level] += ws.peak_occupancy[level];
    }
    r.wheel.overflow_inserts += ws.overflow_inserts;
    r.wheel.overflow_occupancy += ws.overflow_occupancy;
    r.wheel.overflow_peak += ws.overflow_peak;
    r.wheel.cascaded += ws.cascaded;
    r.wheel.migrated += ws.migrated;
    r.wheel.sorted_ticks += ws.sorted_ticks;
    r.wheel.reaped += ws.reaped;
  }
  r.digest = digest;
  r.arena_bytes = arena_.TotalBytes();
  r.bytes_per_ue =
      static_cast<double>(arena_.TotalBytes()) / static_cast<double>(cfg_.ues);
  r.windows = windows_;
  r.cross_cell_messages = cross_cell_messages_;
  return r;
}

CityReport CityEngine::Run(par::WorkerPool* pool) {
  SeedPopulation();
  if (mode_ == CityKernelMode::kWheel) {
    RunWheel(pool);
  } else {
    RunHeap();
  }
  return BuildReport();
}

}  // namespace cnv::stack
