// Network-side protocol entities for the validation phase: the 4G MME, the
// 3G MSC (CS domain) and the 3G SGSN / gateways (PS domain). Base-station
// behaviour is split between the lossy radio Links (relaying, deferral under
// load) and the SharedChannel (modulation configuration); the redirect
// commands that a BS would transmit are issued through the MME/MSC paths
// that trigger them, which is sufficient for every experiment in the paper.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "nas/causes.h"
#include "nas/ids.h"
#include "nas/context.h"
#include "nas/messages.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "stack/carrier.h"
#include "stack/overload.h"
#include "trace/collector.h"
#include "util/rng.h"

namespace cnv::stack {

class Hss;
class Msc;
class Sgsn;

// Availability plumbing shared by the core elements (fault injection:
// element outage + restart with state loss). While an element is down, its
// uplink traffic is silently lost — unless queue-and-replay is enabled
// (graceful degradation), in which case the transport in front of the
// element buffers the uplinks and replays them in order on restart.
// Replies an element had scheduled before going down are also lost: every
// downlink send funnels through the element's Send(), which checks
// available().
//
// On top of the outage machinery sits overload control: an ingress screen
// (malformed/truncated NAS refused with "semantically incorrect", duplicate
// uids caught by a replay cache) and an optional bounded signalling queue
// with a configurable admission policy (see stack/overload.h). With the
// queue disabled (default) every screened uplink dispatches immediately —
// the legacy behaviour all pre-storm tests and goldens depend on.
class CoreElement {
 public:
  bool available() const { return available_; }
  void set_queue_while_down(bool q) { queue_while_down_ = q; }
  std::size_t queued_while_down() const { return pending_.size(); }

  // Element goes down (crash / maintenance). Uplinks stop being processed.
  void BeginOutage() { available_ = false; }

  // Element comes back. With `lose_state`, all volatile protocol state
  // (registrations, contexts) is forgotten first — the restart-with-state-
  // loss scenario. Buffered uplinks (if any) replay in arrival order.
  void Restart(bool lose_state);

  // --- overload control
  void ConfigureOverload(const OverloadConfig& cfg) { overload_ = cfg; }
  const OverloadConfig& overload_config() const { return overload_; }
  const OverloadStats& overload_stats() const { return stats_; }
  // Optional collector for overload / adversarial-rejection trace records
  // (only events outside legacy behaviour are traced, so attaching a
  // collector never perturbs existing golden traces).
  void SetTrace(trace::Collector* t) { trace_ = t; }
  std::size_t queue_depth() const { return queue_.size(); }
  // First instant at or after `t` when the service queue was empty, or -1
  // when the backlog present at `t` never cleared. The fault monitor
  // derives time-to-drain after a storm from this.
  SimTime DrainedAfter(SimTime t) const;

  // Uplink entry point: outage absorption, integrity + replay screening,
  // then admission per the configured policy.
  void OnUplink(const nas::Message& m);

 protected:
  CoreElement(sim::Simulator& sim, nas::System system, std::string module);
  ~CoreElement() = default;

  // Clears the element's volatile protocol state on a lossy restart.
  virtual void OnStateLoss() = 0;
  // Processes one admitted message in the element's protocol FSMs.
  virtual void Dispatch(const nas::Message& m) = 0;
  // Builds the element-specific congestion reject for an overflowed
  // request into `*r`; returns false when `m.kind` has no reject
  // counterpart (the overflow is shed instead).
  virtual bool MakeCongestionReject(const nas::Message& m,
                                    nas::Message* r) const = 0;
  // Downlink transmission (subclass-owned transport).
  virtual void Send(nas::Message m) = 0;

  // Returns true when the element should process `m` now; false when the
  // outage absorbed it (lost, or buffered for replay).
  bool Admit(const nas::Message& m);

  sim::Simulator& sim_;

 private:
  // True when the ingress screen passed `m` (well-formed, not a replay).
  bool Screen(const nas::Message& m);
  void Enqueue(const nas::Message& m);
  void Overflow(const nas::Message& m);
  void Shed(const nas::Message& victim, const std::string& how);
  void EnsureDraining();
  void DrainOne();
  void TraceEvent(const std::string& description);

  nas::System system_;
  std::string module_;
  bool available_ = true;
  bool queue_while_down_ = false;
  std::vector<nas::Message> pending_;

  OverloadConfig overload_;
  OverloadStats stats_;
  trace::Collector* trace_ = nullptr;
  std::deque<nas::Message> queue_;
  bool draining_ = false;
  // Completed busy periods: {start of backlog, instant it emptied}. Small
  // (one entry per burst), deterministic, and enough to reconstruct "when
  // did the queue first catch up after time t".
  std::vector<std::pair<SimTime, SimTime>> busy_periods_;
  SimTime busy_since_ = 0;
  std::unordered_set<std::uint64_t> seen_uids_;
};

// --- SGSN / 3G gateways: GPRS attach, routing area updates, PDP contexts.
class Sgsn : public CoreElement {
 public:
  Sgsn(sim::Simulator& sim, Rng& rng, const CarrierProfile& profile);

  void SetDownlink(sim::Link* to_ue) { downlink_ = to_ue; }

  // MME <-> SGSN context transfer (inter-system switch, §5.1.1).
  void StoreMigratedContext(const nas::PdpContext& pdp);
  std::optional<nas::PdpContext> TakeContextFor4g();

  // Network-initiated PDP deactivation (Table 3 causes).
  void DeactivatePdp(nas::PdpDeactCause cause);

  bool registered() const { return registered_; }
  bool pdp_active() const { return pdp_.active; }
  const nas::PdpContext& pdp() const { return pdp_; }

 protected:
  void OnStateLoss() override;
  void Dispatch(const nas::Message& m) override;
  bool MakeCongestionReject(const nas::Message& m,
                            nas::Message* r) const override;
  void Send(nas::Message m) override;

 private:
  Rng& rng_;
  const CarrierProfile& profile_;
  sim::Link* downlink_ = nullptr;
  bool registered_ = false;
  nas::PdpContext pdp_;
  std::uint32_t next_ip_ = 0x0A00'0001;
};

// --- MSC: location updates, CM service, call control (3G CS domain).
class Msc : public CoreElement {
 public:
  Msc(sim::Simulator& sim, Rng& rng, const CarrierProfile& profile);

  void SetDownlink(sim::Link* to_ue) { downlink_ = to_ue; }
  void SetHss(Hss* hss, nas::Imsi imsi) {
    hss_ = hss;
    imsi_ = imsi;
  }

  // SGs interface: the MME relays the post-CSFB location update (§6.3).
  // Returns the MM cause (kNone on success).
  nas::MmCause OnSgsLocationUpdate(bool first_update_completed);

  // §8 remedy path: the MME re-runs the update with the MSC on the
  // device's behalf after a failure; always succeeds.
  void RecoverLocationUpdate();

  // Experiment hook: the next location update is disrupted mid-flight
  // (OP-I's S6 mode) — the accept is never sent and the incomplete status
  // is reported to whoever asks via `first_update_completed`.
  void DisruptNextLocationUpdate() { disrupt_next_lu_ = true; }

  // Mobile-terminated call: pages the device. Returns false when the MSC
  // has no valid registration — without a completed location update the
  // network cannot route incoming calls (§6.1.1, §6.3), so the call is
  // missed.
  bool PageForIncomingCall();

  bool registered() const { return registered_; }
  bool last_lu_completed() const { return last_lu_completed_; }
  bool call_active() const { return call_active_; }
  std::uint64_t missed_incoming_calls() const {
    return missed_incoming_calls_;
  }

  // Latency of CS call establishment at the network (paging the callee,
  // trunk setup, ...). Dominates the paper's 11.4 s average setup time.
  void set_call_setup_latency(LatencyDist d) { call_setup_latency_ = d; }

 protected:
  void OnStateLoss() override;
  void Dispatch(const nas::Message& m) override;
  bool MakeCongestionReject(const nas::Message& m,
                            nas::Message* r) const override;
  void Send(nas::Message m) override;

 private:
  Rng& rng_;
  const CarrierProfile& profile_;
  sim::Link* downlink_ = nullptr;
  Hss* hss_ = nullptr;
  nas::Imsi imsi_;
  bool registered_ = false;
  bool call_active_ = false;
  bool disrupt_next_lu_ = false;
  bool last_lu_completed_ = false;
  std::uint64_t missed_incoming_calls_ = 0;
  LatencyDist call_setup_latency_{.median_s = 10.8, .sigma = 0.07,
                                  .min_s = 8.5, .max_s = 14.0};
};

// --- MME: 4G attach/detach, tracking area updates, CSFB triggering.
class Mme : public CoreElement {
 public:
  enum class EmmState : std::uint8_t {
    kDeregistered,
    kWaitComplete,  // Attach Accept sent, waiting for Attach Complete
    kRegistered,
  };

  // `on_csfb_redirect` is invoked when the MME orders the 4G BS to release
  // the UE's RRC connection with redirection to 3G (the CSFB fallback).
  Mme(sim::Simulator& sim, Rng& rng, const CarrierProfile& profile,
      bool lu_recovery_fix);

  void SetDownlink(sim::Link* to_ue) { downlink_ = to_ue; }
  // Optional interposer for downlink NAS traffic (the §8 shim layer).
  void SetTransport(std::function<void(const nas::Message&)> t) {
    transport_ = std::move(t);
  }
  void SetSgsn(Sgsn* sgsn) { sgsn_ = sgsn; }
  void SetMsc(Msc* msc) { msc_ = msc; }
  void SetHss(Hss* hss, nas::Imsi imsi) {
    hss_ = hss;
    imsi_ = imsi;
  }
  void SetCsfbRedirectHandler(std::function<void()> h) {
    on_csfb_redirect_ = std::move(h);
  }

  // Arms the network-initiated post-CSFB location update over SGs (§6.3):
  // it runs shortly after the next tracking area update is accepted.
  // Whether the race that makes it fail is hit is drawn from the carrier's
  // lu_failure_prob.
  void ArmCsfbReturnUpdate() { pending_sgs_ = true; }

  // Runs the SGs update now; `race_hit` forces the §6.3 failure condition
  // (exposed for deterministic tests and fault-injection benches).
  void RunSgsLocationUpdate(bool race_hit);

  // Test/bench hook: forces the outcome of reprocessing a duplicate Attach
  // Request (TS 24.301 allows both); unset = random 50/50.
  void set_duplicate_attach_rejects(std::optional<bool> v) {
    duplicate_attach_rejects_ = v;
  }

  // Fault hook: the next SGs location update hits the §6.3 race regardless
  // of the carrier's lu_failure_prob (chaos plans reproduce S6 on demand).
  void ForceNextSgsRace() { force_sgs_race_ = true; }

  // Releases 4G-side resources when the UE migrates to 3G (§5.1.1).
  void ReleaseBearerOnSwitchAway();

  EmmState state() const { return state_; }
  bool bearer_active() const { return bearer_.active; }
  std::uint64_t detaches_sent() const { return detaches_sent_; }
  std::uint64_t bearer_reactivations() const { return bearer_reactivations_; }
  std::uint64_t lu_recoveries() const { return lu_recoveries_; }
  // Detaches caused by stale/duplicated attach signaling (the S2 defect):
  // duplicate Attach Request rejects plus TAUs hitting an attach the MME
  // believes never completed.
  std::uint64_t stale_attach_detaches() const {
    return stale_attach_detaches_;
  }
  // SGs location updates that engaged the §6.3 race and failed (S6).
  std::uint64_t sgs_update_failures() const { return sgs_update_failures_; }

 protected:
  void OnStateLoss() override;
  void Dispatch(const nas::Message& m) override;
  bool MakeCongestionReject(const nas::Message& m,
                            nas::Message* r) const override;
  void Send(nas::Message m) override;

 private:
  void DetachUe(nas::EmmCause cause);

  Rng& rng_;
  const CarrierProfile& profile_;
  bool lu_recovery_fix_;
  sim::Link* downlink_ = nullptr;
  std::function<void(const nas::Message&)> transport_;
  Sgsn* sgsn_ = nullptr;
  Msc* msc_ = nullptr;
  Hss* hss_ = nullptr;
  nas::Imsi imsi_;
  std::function<void()> on_csfb_redirect_;

  EmmState state_ = EmmState::kDeregistered;
  nas::EpsBearerContext bearer_;
  bool pending_sgs_ = false;
  std::optional<bool> duplicate_attach_rejects_;
  // Operator-controlled extra latency for the next attach handling; armed
  // when the MME detaches the UE (Figure 4's recovery time).
  SimDuration next_attach_delay_ = 0;
  std::uint32_t next_ip_ = 0x0A01'0001;
  std::uint64_t detaches_sent_ = 0;
  std::uint64_t bearer_reactivations_ = 0;
  std::uint64_t lu_recoveries_ = 0;
  std::uint64_t stale_attach_detaches_ = 0;
  std::uint64_t sgs_update_failures_ = 0;
  bool force_sgs_race_ = false;
};

}  // namespace cnv::stack
