// Carrier operational profiles. The paper validates against two anonymized
// US operators, OP-I and OP-II, whose observed policy differences drive
// several findings: the CSFB switch-back option (S3 / Table 6), the
// location-update latency distributions (Figure 8), the re-attach latency
// after a detach (Figure 4), which of the two CSFB location updates fails
// (S6), and the uplink scheduling during voice calls (S5 / Figure 9).
#pragma once

#include <string>

#include "model/vocab.h"
#include "sim/channel.h"
#include "util/rng.h"
#include "util/time.h"

namespace cnv::stack {

// Clamped log-normal latency distribution (seconds).
struct LatencyDist {
  double median_s = 1.0;
  double sigma = 0.3;   // log-space spread
  double min_s = 0.0;
  double max_s = 1e9;

  SimDuration Sample(Rng& rng) const;
};

// Which of the two CSFB-related 3G location updates fails when S6 strikes
// (§6.3): OP-I's deferred first update is disrupted by the fast switch back
// to 4G; OP-II's network-initiated second update is refused by the MSC.
enum class LuFailureMode {
  kFirstUpdateDisrupted,   // OP-I: error "implicitly detach"
  kSecondUpdateRejected,   // OP-II: error "MSC temporarily not reachable"
};

struct CarrierProfile {
  std::string name;

  // CSFB return option (Figure 6a). OP-I: release-with-redirect (fast, but
  // disrupts data); OP-II: cell reselection (stuck while data is ongoing).
  model::SwitchPolicy csfb_return_policy =
      model::SwitchPolicy::kReleaseWithRedirect;

  // Shared-channel scheduling during CS calls (S5).
  sim::ChannelPolicy channel_policy;

  // Network-side processing latencies.
  LatencyDist lau_processing;   // location area update (Figure 8a)
  LatencyDist rau_processing;   // routing area update (Figure 8b)
  LatencyDist reattach_delay;   // operator-controlled re-attach (Figure 4)

  // 3G RRC inactivity demotion timers (carrier-configured; TS 25.331).
  // They bound how fast a device without traffic reaches RRC IDLE — and
  // hence the minimum stuck time on the cell-reselection path (S3).
  SimDuration rrc_dch_to_fach = Seconds(5);
  SimDuration rrc_fach_to_idle = Seconds(12);

  // MM chain effect: time spent in MM-WAIT-FOR-NET-CMD after an update,
  // during which call requests keep being deferred (§6.1.2).
  SimDuration mm_wait_net_cmd = Millis(4300);

  // How long after the CSFB call ends the network initiates the return to
  // 4G (applies to the release-with-redirect option). Varies with network
  // load — Table 6 reports 1.1s to 52.6s for OP-I.
  LatencyDist csfb_return_latency{.median_s = 2.3, .sigma = 0.6,
                                  .min_s = 1.1, .max_s = 55.0};

  // S6 (§6.3) operational failure: which update fails and how often a CSFB
  // call hits the race.
  LuFailureMode lu_failure_mode = LuFailureMode::kFirstUpdateDisrupted;
  double lu_failure_prob = 0.0;

  // Probability that the network deactivates the PDP context while the
  // device camps on 3G with data enabled (feeds S1 occurrence, Table 5).
  double pdp_deact_in_3g_prob = 0.0;

  // Whether the first CSFB location update is deferred until the call ends
  // (the standards allow it; OP-I does it, §6.3).
  bool defer_csfb_lu = false;

  // VoLTE (§2): voice over PS in 4G instead of CSFB. Most 4G operators in
  // the paper's timeframe had not deployed it; enabling it is the designed
  // long-term fix that removes the CSFB-specific defects (S3, S6) — used
  // by the ablation experiments.
  bool volte_enabled = false;
};

// The two profiles used throughout the experiments.
CarrierProfile OpI();
CarrierProfile OpII();

}  // namespace cnv::stack
