#include "stack/ue.h"

#include <algorithm>
#include <stdexcept>

#include "nas/timers.h"
#include "sim/radio.h"
#include "util/log.h"
#include "util/strings.h"

namespace cnv::stack {

namespace {
// Data demand at or above this holds the 3G DCH state (the paper's S3
// experiments use 200 kbps UDP, which stays on DCH).
constexpr double kDchDemandMbps = 0.15;
// RRC state forced by the §8 CSFB-tag remedy right after the call ends.
constexpr SimDuration kCsfbTagSwitchDelay = Millis(300);
}  // namespace

std::string ToString(UeDevice::EmmState s) {
  switch (s) {
    case UeDevice::EmmState::kDeregistered:
      return "EMM-DEREGISTERED";
    case UeDevice::EmmState::kWaitAttachAccept:
      return "EMM-REGISTERED-INITIATED";
    case UeDevice::EmmState::kRegistered:
      return "EMM-REGISTERED";
    case UeDevice::EmmState::kWaitTauAccept:
      return "EMM-TRACKING-AREA-UPDATING-INITIATED";
    case UeDevice::EmmState::kOutOfService:
      return "EMM-DEREGISTERED (out of service)";
  }
  return "?";
}

std::string ToString(UeDevice::CallState s) {
  switch (s) {
    case UeDevice::CallState::kNone:
      return "no call";
    case UeDevice::CallState::kPending:
      return "call pending";
    case UeDevice::CallState::kWaitCmAccept:
      return "awaiting CM service accept";
    case UeDevice::CallState::kWaitConnect:
      return "awaiting connect";
    case UeDevice::CallState::kActive:
      return "call active";
  }
  return "?";
}

UeDevice::UeDevice(sim::Simulator& sim, Rng& rng, trace::Collector& trace,
                   const CarrierProfile& profile, SolutionConfig solutions,
                   sim::SharedChannel& channel3g, RobustnessConfig robustness)
    : sim_(sim),
      rng_(rng),
      trace_(trace),
      profile_(profile),
      solutions_(solutions),
      robustness_(robustness),
      channel3g_(channel3g),
      t3410_(sim, "T3410"),
      t3430_(sim, "T3430"),
      mm_wait_timer_(sim, "MM-WAIT-FOR-NET-CMD"),
      rrc_demote_(sim, "3G-RRC inactivity"),
      periodic_(sim, "periodic-update"),
      lu_guard_(sim, "T3210"),
      gmm_guard_(sim, "T3330"),
      pdp_guard_(sim, "T3380"),
      cm_guard_(sim, "T3230"),
      attach_backoff_(sim, "T3411"),
      t3346_(sim, "T3346") {
  channel3g_.set_decoupled(solutions_.domain_decoupled);
}

// ------------------------------------------------- robustness machinery ---

SimDuration UeDevice::Scaled(SimDuration d) const {
  if (timer_scale_ == 1.0) return d;
  const auto scaled =
      static_cast<SimDuration>(static_cast<double>(d) * timer_scale_);
  return std::max<SimDuration>(scaled, Millis(1));
}

SimDuration UeDevice::BackoffDelayFrom(SimDuration base, int cycle) const {
  SimDuration d = base;
  for (int i = 0; i < cycle && d < nas::timers::kNasBackoffCap; ++i) d *= 2;
  return std::min(d, nas::timers::kNasBackoffCap);
}

SimDuration UeDevice::BackoffDelay(int cycle) const {
  return BackoffDelayFrom(nas::timers::kT3411AttachRetry, cycle);
}

SimDuration UeDevice::CongestionBackoff(const nas::Message& m, int cycle) {
  ++congestion_rejects_;
  ++congestion_backoffs_;
  const SimDuration base =
      m.backoff > 0 ? m.backoff : nas::timers::kT3346CongestionBackoff;
  return Scaled(BackoffDelayFrom(base, cycle));
}

void UeDevice::StopNasGuards() {
  lu_guard_.Stop();
  gmm_guard_.Stop();
  pdp_guard_.Stop();
  cm_guard_.Stop();
  attach_backoff_.Stop();
  t3346_.Stop();
}

void UeDevice::ArmLuGuard() {
  if (!robustness_.nas_retry) return;
  lu_guard_.Start(Scaled(nas::timers::kT3210LuGuard),
                  [this] { OnLuTimeout(); });
}

void UeDevice::OnLuTimeout() {
  if (serving_ != nas::System::k3G || mm_ != MmState::kLuInProgress) return;
  if (lu_attempts_ < nas::timers::kMaxNasQuickRetries) {
    ++lu_attempts_;
    ++lu_retries_;
    trace_.Event(nas::System::k3G, "MM",
                 "T3210 expiry; Location Updating Request retransmitted");
    nas::Message m;
    m.kind = nas::MsgKind::kLocationUpdateRequest;
    m.protocol = nas::Protocol::kMm;
    SendCs(m);
    ArmLuGuard();
    return;
  }
  // Quick retransmissions exhausted: back off, then restart the procedure.
  mm_ = MmState::kIdle;
  lau_started_at_.reset();
  const int cycle = lu_backoff_cycles_++;
  trace_.Event(nas::System::k3G, "MM",
               "location update abandoned; exponential backoff armed");
  lu_guard_.Start(Scaled(BackoffDelay(cycle)), [this] {
    if (powered_ && serving_ == nas::System::k3G && !mm_registered_) {
      lu_attempts_ = 0;
      StartLau();
    }
  });
}

void UeDevice::ArmGmmGuard() {
  if (!robustness_.nas_retry) return;
  gmm_guard_.Start(Scaled(nas::timers::kT3330RauGuard),
                   [this] { OnGmmTimeout(); });
}

void UeDevice::OnGmmTimeout() {
  if (serving_ != nas::System::k3G || gmm_ != GmmState::kRauInProgress) return;
  if (gmm_attempts_ < nas::timers::kMaxNasQuickRetries) {
    ++gmm_attempts_;
    ++gmm_retries_;
    nas::Message m;
    m.protocol = nas::Protocol::kGmm;
    if (gmm_attached_) {
      m.kind = nas::MsgKind::kRauRequest;
      trace_.Event(nas::System::k3G, "GMM",
                   "T3330 expiry; Routing Area Update Request retransmitted");
    } else {
      m.kind = nas::MsgKind::kGprsAttachRequest;
      trace_.Event(nas::System::k3G, "GMM",
                   "T3330 expiry; GPRS Attach Request retransmitted");
    }
    SendPs(m);
    ArmGmmGuard();
    return;
  }
  gmm_ = GmmState::kIdle;
  rau_started_at_.reset();
  const int cycle = gmm_backoff_cycles_++;
  trace_.Event(nas::System::k3G, "GMM",
               "GMM procedure abandoned; exponential backoff armed");
  gmm_guard_.Start(Scaled(BackoffDelay(cycle)), [this] {
    if (!powered_ || serving_ != nas::System::k3G) return;
    gmm_attempts_ = 0;
    if (!gmm_attached_) {
      StartGprsAttach();
    } else {
      StartRau();
    }
  });
}

void UeDevice::ArmPdpGuard() {
  if (!robustness_.nas_retry) return;
  pdp_guard_.Start(Scaled(nas::timers::kT3380PdpGuard),
                   [this] { OnPdpTimeout(); });
}

void UeDevice::OnPdpTimeout() {
  if (serving_ != nas::System::k3G || pdp_.active || !data_enabled_) return;
  if (pdp_attempts_ < nas::timers::kMaxNasQuickRetries) {
    ++pdp_attempts_;
    ++pdp_retries_;
    trace_.Event(nas::System::k3G, "SM",
                 "T3380 expiry; Activate PDP Context Request retransmitted");
    nas::Message m;
    m.kind = nas::MsgKind::kPdpActivateRequest;
    m.protocol = nas::Protocol::kSm;
    m.pdp = pdp_;
    SendPs(m);
    ArmPdpGuard();
    return;
  }
  const int cycle = pdp_backoff_cycles_++;
  trace_.Event(nas::System::k3G, "SM",
               "PDP activation abandoned; exponential backoff armed");
  pdp_guard_.Start(Scaled(BackoffDelay(cycle)), [this] {
    if (powered_ && serving_ == nas::System::k3G && data_enabled_ &&
        !pdp_.active && (data_session_ || pdp_activation_pending_)) {
      pdp_attempts_ = 0;
      ActivatePdp();
    }
  });
}

void UeDevice::ArmCmGuard() {
  if (!robustness_.cm_reattempt) return;
  cm_guard_.Start(Scaled(nas::timers::kT3230CmGuard),
                  [this] { OnCmTimeout(); });
}

void UeDevice::OnCmTimeout() {
  if (serving_ != nas::System::k3G || call_ != CallState::kWaitCmAccept) {
    return;
  }
  if (cm_attempts_ < nas::timers::kMaxNasQuickRetries) {
    ++cm_attempts_;
    ++cm_retries_;
    trace_.Event(nas::System::k3G, "MM",
                 "T3230 expiry; CM Service Request re-requested");
    nas::Message m;
    m.kind = nas::MsgKind::kCmServiceRequest;
    m.protocol = nas::Protocol::kMm;
    SendCs(m);
    ArmCmGuard();
    return;
  }
  ++cm_abandoned_;
  call_ = CallState::kNone;
  dialed_at_.reset();
  trace_.Event(nas::System::k3G, "MM",
               "CM service abandoned after bounded re-requests");
}

// ------------------------------------------------------------- transmit ---

void UeDevice::SendEmm(nas::Message m) {
  if (serving_ != nas::System::k4G) {
    CNV_LOG_WARN << "UE: EMM send while not on 4G, dropped";
    return;
  }
  if (emm_transport_) {
    emm_transport_(m);
    return;
  }
  if (ul4g_ == nullptr) throw std::logic_error("UE: 4G uplink not wired");
  ul4g_->Send(m);
}

void UeDevice::SendCs(nas::Message m) {
  if (serving_ != nas::System::k3G) {
    CNV_LOG_WARN << "UE: CS send while not on 3G, dropped";
    return;
  }
  if (ul3g_cs_ == nullptr) throw std::logic_error("UE: 3G CS uplink not wired");
  ul3g_cs_->Send(m);
}

void UeDevice::SendPs(nas::Message m) {
  if (serving_ != nas::System::k3G) {
    CNV_LOG_WARN << "UE: PS send while not on 3G, dropped";
    return;
  }
  if (ul3g_ps_ == nullptr) throw std::logic_error("UE: 3G PS uplink not wired");
  ul3g_ps_->Send(m);
}

// ------------------------------------------------------------ user ops ---

void UeDevice::PowerOn(nas::System system) {
  if (powered_) return;
  powered_ = true;
  serving_ = system;
  trace_.Event(system, "UE", "device powers on");
  if (system == nas::System::k4G) {
    rrc4g_ = model::Rrc4g::kConnected;
    trace_.State(nas::System::k4G, "4G-RRC", "RRC IDLE -> CONNECTED");
    attach_attempts_ = 0;
    StartAttach();
  } else {
    Promote3g(model::Rrc3g::kFach);
    StartLau();
    if (!gmm_attached_) StartGprsAttach();
  }
}

void UeDevice::PowerOff() {
  if (!powered_) return;
  trace_.Event(serving_, "UE", "device powers off");
  if (serving_ == nas::System::k4G && emm_ == EmmState::kRegistered) {
    nas::Message m;
    m.kind = nas::MsgKind::kDetachRequest;
    m.protocol = nas::Protocol::kEmm;
    trace_.Msg(nas::System::k4G, "EMM", "Detach Request sent (switch off)");
    SendEmm(m);
  } else if (serving_ == nas::System::k3G && mm_registered_) {
    nas::Message m;
    m.kind = nas::MsgKind::kImsiDetach;
    m.protocol = nas::Protocol::kMm;
    trace_.Msg(nas::System::k3G, "MM", "IMSI Detach Indication sent");
    SendCs(m);
  }
  powered_ = false;
  serving_ = nas::System::kNone;
  emm_ = EmmState::kDeregistered;
  mm_ = MmState::kIdle;
  gmm_ = GmmState::kIdle;
  call_ = CallState::kNone;
  mm_registered_ = false;
  gmm_attached_ = false;
  eps_.active = false;
  pdp_.active = false;
  data_session_ = false;
  in_csfb_ = false;
  reselect_pending_ = false;
  t3410_.Stop();
  t3430_.Stop();
  mm_wait_timer_.Stop();
  rrc_demote_.Stop();
  StopNasGuards();
  rrc3g_ = model::Rrc3g::kIdle;
  rrc4g_ = model::Rrc4g::kIdle;
}

void UeDevice::Dial() {
  if (!powered_ || call_ != CallState::kNone) return;
  dialed_at_ = sim_.now();
  if (serving_ == nas::System::k4G && profile_.volte_enabled) {
    // VoLTE: carrier-grade voice over PS in 4G — no fallback, no shared
    // 3G channel, hence none of the CSFB-specific defects (§2).
    call_ = CallState::kWaitConnect;
    trace_.Msg(nas::System::k4G, "EMM", "VoLTE call setup (PS voice in 4G)");
    sim_.ScheduleIn(FromSeconds(rng_.Uniform(1.5, 3.0)), [this] {
      if (call_ != CallState::kWaitConnect ||
          serving_ != nas::System::k4G) {
        return;
      }
      call_ = CallState::kActive;
      ++calls_connected_;
      call_connected_at_ = sim_.now();
      current_call_has_data_ = false;  // no 3G shared-channel coupling
      if (dialed_at_) call_setup_s_.Add(ToSeconds(sim_.now() - *dialed_at_));
      trace_.Msg(nas::System::k4G, "EMM", "VoLTE call established");
    });
    return;
  }
  if (serving_ == nas::System::k4G) {
    // CSFB: the 4G network has no CS domain; fall back to 3G (TS 23.272).
    in_csfb_ = true;
    call_ = CallState::kPending;
    trace_.Msg(nas::System::k4G, "EMM",
               "Extended Service Request (CSFB) sent");
    nas::Message m;
    m.kind = nas::MsgKind::kExtendedServiceRequest;
    m.protocol = nas::Protocol::kEmm;
    SendEmm(m);
    return;
  }
  trace_.Event(nas::System::k3G, "CM/CC", "user dials an outgoing call");
  call_ = CallState::kPending;
  TryServePendingCall();
}

void UeDevice::TryServePendingCall() {
  if (call_ != CallState::kPending || serving_ != nas::System::k3G) return;
  if (!solutions_.mm_decoupled && mm_ != MmState::kIdle) {
    // TS 24.008: MM may defer (or reject) the CM service request while a
    // location update runs — the S4 head-of-line blocking.
    ++deferred_service_requests_;
    ++deferred_call_requests_;
    trace_.Event(nas::System::k3G, "MM",
                 "CM service request deferred: location update in progress");
    return;
  }
  call_ = CallState::kWaitCmAccept;
  Promote3g(model::Rrc3g::kFach);
  trace_.Msg(nas::System::k3G, "MM", "CM Service Request sent");
  nas::Message m;
  m.kind = nas::MsgKind::kCmServiceRequest;
  m.protocol = nas::Protocol::kMm;
  SendCs(m);
  cm_attempts_ = 0;
  ArmCmGuard();
}

void UeDevice::HangUp() {
  if (call_ == CallState::kNone) return;
  if (serving_ == nas::System::k3G) {
    nas::Message m;
    m.kind = nas::MsgKind::kCallDisconnect;
    m.protocol = nas::Protocol::kCm;
    trace_.Msg(nas::System::k3G, "CM/CC", "Disconnect sent (call ends)");
    SendCs(m);
  }
  const bool was_active = call_ == CallState::kActive;
  if (was_active && call_connected_at_) {
    const double duration_s = ToSeconds(sim_.now() - *call_connected_at_);
    call_durations_s_.Add(duration_s);
    if (current_call_has_data_) {
      // Data volume transferred while the call was up (the Table 5
      // "affected data" metric): bounded by both the session's demand and
      // the degraded shared-channel rate.
      const double rate_mbps =
          std::min(data_demand_mbps_,
                   channel3g_.PsThroughputMbps(sim::Direction::kDownlink,
                                               sim::TimeOfDayLoad(12)));
      affected_call_data_mb_.Add(rate_mbps * duration_s / 8.0);
    }
  }
  call_connected_at_.reset();
  current_call_has_data_ = false;
  call_ = CallState::kNone;
  dialed_at_.reset();
  if (channel3g_.cs_call_active()) {
    channel3g_.SetCsCallActive(false);
    trace_.Msg(nas::System::k3G, "3G-RRC",
               "RRC Channel Config: 64QAM re-enabled after voice call");
  }
  Reevaluate3gPinning();
  if (!was_active || !in_csfb_ || serving_ != nas::System::k3G) return;

  // CSFB post-call handling: the device should move back to 4G (§5.3).
  csfb_call_ended_at_ = sim_.now();
  if (csfb_lu_deferred_pending_) {
    // OP-I defers the first 3G location update until the call completes.
    csfb_lu_deferred_pending_ = false;
    trace_.Event(nas::System::k3G, "MM",
                 "deferred CSFB location update starts");
    StartLau();
  }
  if (solutions_.csfb_tag) {
    // §8 domain decoupling: the BS tagged this RRC connection as
    // CSFB-induced and forces a proper state for the switch back.
    trace_.Event(nas::System::k3G, "3G-RRC",
                 "CSFB tag: BS forces RRC state for inter-system switch");
    sim_.ScheduleIn(kCsfbTagSwitchDelay, [this] { ReturnTo4gAfterCsfb(); });
    return;
  }
  switch (profile_.csfb_return_policy) {
    case model::SwitchPolicy::kReleaseWithRedirect:
    case model::SwitchPolicy::kHandover:
      sim_.ScheduleIn(profile_.csfb_return_latency.Sample(rng_),
                      [this] { ReturnTo4gAfterCsfb(); });
      break;
    case model::SwitchPolicy::kCellReselection:
      // Works only from RRC IDLE: the device reselects once the inactivity
      // demotions bring RRC down — which ongoing data prevents (S3).
      reselect_pending_ = true;
      trace_.Event(nas::System::k3G, "3G-RRC",
                   "awaiting RRC IDLE for inter-system cell reselection");
      Reevaluate3gPinning();
      TryCellReselection();
      break;
  }
}

void UeDevice::EnableData(bool on) {
  if (on == data_enabled_) return;
  data_enabled_ = on;
  if (!on) {
    trace_.Event(serving_, "UE", "user disables mobile data");
    data_session_ = false;
    if (serving_ == nas::System::k3G && pdp_.active) {
      // Observed phone behaviour (§5.1.3): all PDP contexts deactivated.
      nas::Message m;
      m.kind = nas::MsgKind::kPdpDeactivateRequest;
      m.protocol = nas::Protocol::kSm;
      m.pdp_cause = nas::PdpDeactCause::kRegularDeactivation;
      trace_.Msg(nas::System::k3G, "SM",
                 "Deactivate PDP Context Request sent (regular deactivation)");
      SendPs(m);
      pdp_.active = false;
    }
    Reevaluate3gPinning();
  } else {
    trace_.Event(serving_, "UE", "user enables mobile data");
    if (serving_ == nas::System::k3G && gmm_attached_) ActivatePdp();
  }
}

void UeDevice::StartDataSession(double demand_mbps) {
  if (!powered_ || !data_enabled_) return;
  data_session_ = true;
  data_demand_mbps_ = demand_mbps;
  trace_.Event(serving_, "UE",
               Format("data session starts (%.2f Mbps demand)", demand_mbps));
  if (serving_ == nas::System::k3G) {
    if (!pdp_.active) ActivatePdp();
    Reevaluate3gPinning();
  } else if (serving_ == nas::System::k4G && !eps_.active &&
             emm_ == EmmState::kRegistered) {
    nas::Message m;
    m.kind = nas::MsgKind::kEsmActivateBearerRequest;
    m.protocol = nas::Protocol::kEsm;
    trace_.Msg(nas::System::k4G, "ESM", "Activate EPS Bearer Request sent");
    SendEmm(m);
  }
}

void UeDevice::StopDataSession() {
  if (!data_session_) return;
  data_session_ = false;
  trace_.Event(serving_, "UE", "data session ends");
  Reevaluate3gPinning();
}

void UeDevice::CrossAreaBoundary() {
  if (!powered_) return;
  if (serving_ == nas::System::k3G) {
    trace_.Event(nas::System::k3G, "UE", "crossed location/routing area");
    StartLau();
    if (gmm_attached_) StartRau();
  } else if (serving_ == nas::System::k4G &&
             emm_ == EmmState::kRegistered) {
    trace_.Event(nas::System::k4G, "UE", "crossed tracking area");
    StartTau();
  }
}

void UeDevice::EnablePeriodicUpdates(SimDuration interval) {
  periodic_interval_ = interval;
  periodic_.Stop();
  if (interval <= 0) return;
  periodic_.Start(interval, [this] {
    if (powered_) {
      if (serving_ == nas::System::k3G) {
        trace_.Event(nas::System::k3G, "UE", "periodic location refresh");
        StartLau();
        if (gmm_attached_) StartRau();
      } else if (serving_ == nas::System::k4G &&
                 emm_ == EmmState::kRegistered) {
        trace_.Event(nas::System::k4G, "UE", "periodic tracking area update");
        StartTau();
      }
    }
    EnablePeriodicUpdates(periodic_interval_);  // re-arm
  });
}

void UeDevice::SetRssi(double dbm) {
  rssi_dbm_ = dbm;
  const double loss = sim::LossFromRssi(dbm);
  if (ul4g_ != nullptr) ul4g_->set_loss_prob(loss);
  if (ul3g_cs_ != nullptr) ul3g_cs_->set_loss_prob(loss);
  if (ul3g_ps_ != nullptr) ul3g_ps_->set_loss_prob(loss);
}

// ------------------------------------------------------ system switches ---

void UeDevice::MigrateContextsTo3g() {
  // EPS bearer -> PDP context translation (§5.1.1); 4G resources released.
  if (eps_.active && data_enabled_) {
    pdp_ = nas::ToPdpContext(eps_);
    trace_.Event(nas::System::k3G, "SM",
                 "EPS bearer context migrated to PDP context");
  } else {
    pdp_.active = false;
  }
  eps_.active = false;
  if (on_switch_away_from_4g_) on_switch_away_from_4g_(pdp_);
}

void UeDevice::SwitchTo3g(model::SwitchReason reason) {
  if (!powered_ || serving_ != nas::System::k4G) return;
  trace_.Event(nas::System::k3G, "UE",
               "4G->3G switch (" + model::ToString(reason) + ")");
  t3410_.Stop();
  t3430_.Stop();
  attach_backoff_.Stop();
  rrc4g_ = model::Rrc4g::kIdle;
  trace_.State(nas::System::k4G, "4G-RRC", "RRC CONNECTED -> IDLE");
  MigrateContextsTo3g();
  serving_ = nas::System::k3G;
  emm_ = EmmState::kDeregistered;  // single-radio: 4G context parked
  Promote3g(pdp_.active && data_session_ &&
                    data_demand_mbps_ >= kDchDemandMbps
                ? model::Rrc3g::kDch
                : model::Rrc3g::kFach);

  const bool csfb = reason == model::SwitchReason::kCsfbCall;
  if (csfb && profile_.defer_csfb_lu) {
    csfb_lu_deferred_pending_ = true;
    trace_.Event(nas::System::k3G, "MM",
                 "location update deferred until the CSFB call completes");
  } else {
    StartLau();
  }
  if (!gmm_attached_) {
    StartGprsAttach();
  } else if (pdp_.active) {
    StartRau();
  }
  if (csfb) TryServePendingCall();
}

void UeDevice::OnCsfbRedirectTo3g() {
  if (serving_ != nas::System::k4G) return;
  trace_.Msg(nas::System::k4G, "4G-RRC",
             "RRC Connection Release (redirect to 3G) received");
  SwitchTo3g(model::SwitchReason::kCsfbCall);
}

void UeDevice::ReturnTo4gAfterCsfb() {
  if (serving_ != nas::System::k3G || !in_csfb_) return;
  if (csfb_call_ended_at_) {
    stuck_in_3g_s_.Add(ToSeconds(sim_.now() - *csfb_call_ended_at_));
    csfb_call_ended_at_.reset();
  }
  if (data_session_ && !solutions_.csfb_tag &&
      profile_.csfb_return_policy ==
          model::SwitchPolicy::kReleaseWithRedirect) {
    ++data_disruptions_;
    trace_.Event(nas::System::k3G, "3G-RRC",
                 "ongoing data session disrupted by RRC connection release");
  }
  in_csfb_ = false;
  reselect_pending_ = false;
  SwitchTo4g();
  // The MME will perform the network-side SGs location update after the
  // tracking area update completes (§6.3).
  if (on_csfb_return_) on_csfb_return_();
}

void UeDevice::SwitchTo4g() {
  if (!powered_ || serving_ != nas::System::k3G) return;
  trace_.Event(nas::System::k4G, "UE", "3G->4G switch");
  if (mm_ == MmState::kLuInProgress) {
    trace_.Event(nas::System::k3G, "MM",
                 "location update disrupted by inter-system switch");
    lau_started_at_.reset();
  }
  mm_ = MmState::kIdle;
  gmm_ = GmmState::kIdle;
  mm_wait_timer_.Stop();
  rrc_demote_.Stop();
  lu_guard_.Stop();
  gmm_guard_.Stop();
  pdp_guard_.Stop();
  cm_guard_.Stop();
  if (rrc3g_ != model::Rrc3g::kIdle) {
    trace_.State(nas::System::k3G, "3G-RRC",
                 model::ToString(rrc3g_) + " -> IDLE (leaving 3G)");
    rrc3g_ = model::Rrc3g::kIdle;
  }
  serving_ = nas::System::k4G;
  // The PDP context is handed to the network side for migration into the
  // EPS bearer context during the TAU (§5.1.1); it no longer lives on the
  // 3G side of the device.
  pdp_.active = false;
  rrc4g_ = model::Rrc4g::kConnected;
  trace_.State(nas::System::k4G, "4G-RRC", "RRC IDLE -> CONNECTED");
  StartTau();
}

// ----------------------------------------------------------- EMM / ESM ---

void UeDevice::StartAttach() {
  if (!powered_ || serving_ != nas::System::k4G) return;
  emm_ = EmmState::kWaitAttachAccept;
  if (!attach_started_at_) attach_started_at_ = sim_.now();
  ++attach_attempts_;
  ++attach_attempts_total_;
  trace_.Msg(nas::System::k4G, "EMM",
             attach_attempts_ == 1 ? "Attach Request sent"
                                   : "Attach Request retransmitted");
  t3410_.Start(Scaled(nas::timers::kT3410AttachGuard),
               [this] { OnAttachTimeout(); });
  nas::Message m;
  m.kind = nas::MsgKind::kAttachRequest;
  m.protocol = nas::Protocol::kEmm;
  SendEmm(m);
}

void UeDevice::OnAttachTimeout() {
  if (emm_ != EmmState::kWaitAttachAccept) return;
  if (attach_attempts_ < nas::timers::kMaxAttachAttempts) {
    trace_.Event(nas::System::k4G, "EMM", "T3410 expiry");
    StartAttach();
    return;
  }
  if (robustness_.attach_backoff) {
    // T3411/T3402-class behaviour: rest, then restart the whole attach
    // cycle with an exponentially growing pause instead of giving up.
    const auto cycle = static_cast<int>(attach_backoff_cycles_++);
    const SimDuration pause = Scaled(BackoffDelay(cycle));
    trace_.Event(nas::System::k4G, "EMM",
                 Format("maximum attach attempts reached; re-attach backoff "
                        "armed (%.0f s)",
                        ToSeconds(pause)));
    emm_ = EmmState::kOutOfService;
    attach_backoff_.Start(pause, [this] {
      if (powered_ && serving_ == nas::System::k4G &&
          emm_ == EmmState::kOutOfService) {
        attach_attempts_ = 0;
        StartAttach();
      }
    });
    return;
  }
  trace_.Event(nas::System::k4G, "EMM",
               "maximum attach attempts reached; device stays out of service");
  emm_ = EmmState::kOutOfService;
}

void UeDevice::StartTau() {
  if (serving_ != nas::System::k4G) return;
  emm_ = EmmState::kWaitTauAccept;
  t3430_.Start(Scaled(nas::timers::kT3430TauGuard), [this] {
    if (emm_ != EmmState::kWaitTauAccept) return;
    if (tau_attempts_ < 3) {
      ++tau_attempts_;
      trace_.Event(nas::System::k4G, "EMM", "T3430 expiry; TAU retransmitted");
      StartTau();
    } else {
      // Give up: fall back to the registered state and retry on the next
      // trigger (the standards eventually restart the procedure).
      tau_attempts_ = 0;
      emm_ = EmmState::kRegistered;
    }
  });
  trace_.Msg(nas::System::k4G, "EMM", "Tracking Area Update Request sent");
  nas::Message m;
  m.kind = nas::MsgKind::kTauRequest;
  m.protocol = nas::Protocol::kEmm;
  // §8 cross-system coordination: piggy-back a request to activate a fresh
  // EPS bearer instead of being detached when no context can be migrated.
  m.eps.active = solutions_.reactivate_bearer;
  SendEmm(m);
}

void UeDevice::HandleDetach(nas::EmmCause cause, const std::string& who) {
  trace_.State(nas::System::k4G, "EMM",
               "detached by network via " + who + " (cause: " +
                   nas::ToString(cause) + ")");
  switch (cause) {
    case nas::EmmCause::kNoEpsBearerContextActive:
      ++detaches_no_eps_bearer_;
      break;
    case nas::EmmCause::kImplicitlyDetached:
      ++detaches_implicit_;
      break;
    case nas::EmmCause::kMscTemporarilyNotReachable:
      ++detaches_msc_unreachable_;
      break;
    default:
      break;
  }
  emm_ = EmmState::kOutOfService;
  eps_.active = false;
  ++oos_events_;
  if (!recovery_started_at_) recovery_started_at_ = sim_.now();
  // Observed phone behaviour (§5.1.3): immediately try to re-register; the
  // re-attach completion is mostly operator-controlled (Figure 4).
  attach_attempts_ = 0;
  StartAttach();
}

void UeDevice::OnDownlink4g(const nas::Message& m) {
  if (serving_ != nas::System::k4G) return;  // stale: device left 4G
  switch (m.kind) {
    case nas::MsgKind::kAttachAccept:
      // Accepted while registered happens when the MME reprocesses a stale
      // duplicate Attach Request (§5.2.1): the bearer is rebuilt by
      // completing the procedure again.
      if (emm_ != EmmState::kWaitAttachAccept &&
          emm_ != EmmState::kRegistered) {
        break;
      }
      t3410_.Stop();
      attach_backoff_.Stop();
      t3346_.Stop();
      t3346_cycles_ = 0;
      emm_ = EmmState::kRegistered;
      eps_ = m.eps;
      if (attach_started_at_) {
        attach_latency_s_.Add(ToSeconds(sim_.now() - *attach_started_at_));
        attach_started_at_.reset();
      }
      trace_.Msg(nas::System::k4G, "EMM", "Attach Accept received");
      trace_.State(nas::System::k4G, "EMM", "EMM-REGISTERED");
      trace_.State(nas::System::k4G, "ESM", "EPS bearer context activated");
      {
        nas::Message r;
        r.kind = nas::MsgKind::kAttachComplete;
        r.protocol = nas::Protocol::kEmm;
        trace_.Msg(nas::System::k4G, "EMM", "Attach Complete sent");
        SendEmm(r);
      }
      attach_attempts_ = 0;
      if (recovery_started_at_) {
        recovery_s_.Add(ToSeconds(sim_.now() - *recovery_started_at_));
        recovery_started_at_.reset();
        trace_.Event(nas::System::k4G, "EMM",
                     "service recovered: re-attach succeeded");
      }
      break;

    case nas::MsgKind::kAttachReject:
      trace_.Msg(nas::System::k4G, "EMM",
                 "Attach Reject received (cause: " +
                     nas::ToString(m.emm_cause) + ")");
      t3410_.Stop();
      if (m.emm_cause == nas::EmmCause::kCongestion) {
        // T3346: the network is overloaded, not rejecting the subscriber.
        // Hold off (capped exponential per consecutive reject) instead of
        // treating this as a detach; service is degraded meanwhile.
        const SimDuration pause = CongestionBackoff(m, t3346_cycles_++);
        trace_.Event(nas::System::k4G, "EMM",
                     "T3346 armed (" + FormatDuration(pause) +
                     "); attach retry deferred");
        emm_ = EmmState::kOutOfService;
        if (!recovery_started_at_) recovery_started_at_ = sim_.now();
        t3346_.Start(pause, [this] {
          if (powered_ && serving_ == nas::System::k4G &&
              emm_ == EmmState::kOutOfService) {
            attach_attempts_ = 0;
            StartAttach();
          }
        });
        break;
      }
      HandleDetach(m.emm_cause, "Attach Reject");
      break;

    case nas::MsgKind::kTauAccept:
      if (emm_ != EmmState::kWaitTauAccept) break;
      t3430_.Stop();
      tau_attempts_ = 0;
      t3346_cycles_ = 0;
      emm_ = EmmState::kRegistered;
      eps_ = m.eps;
      trace_.Msg(nas::System::k4G, "EMM",
                 "Tracking Area Update Accept received");
      break;

    case nas::MsgKind::kTauReject:
      trace_.Msg(nas::System::k4G, "EMM",
                 "Tracking Area Update Reject received (cause: " +
                     nas::ToString(m.emm_cause) + ")");
      if (m.emm_cause == nas::EmmCause::kCongestion) {
        // T3346 for mobility management: stay registered with the old
        // tracking area and retry the TAU once the backoff expires.
        t3430_.Stop();
        tau_attempts_ = 0;
        const SimDuration pause = CongestionBackoff(m, t3346_cycles_++);
        trace_.Event(nas::System::k4G, "EMM",
                     "T3346 armed (" + FormatDuration(pause) +
                     "); TAU retry deferred");
        emm_ = EmmState::kRegistered;
        t3346_.Start(pause, [this] {
          if (powered_ && serving_ == nas::System::k4G &&
              emm_ == EmmState::kRegistered) {
            StartTau();
          }
        });
        break;
      }
      HandleDetach(m.emm_cause, "Tracking Area Update Reject");
      break;

    case nas::MsgKind::kDetachRequest:
      trace_.Msg(nas::System::k4G, "EMM",
                 "Detach Request received (cause: " +
                     nas::ToString(m.emm_cause) + ")");
      HandleDetach(m.emm_cause, "network Detach Request");
      break;

    case nas::MsgKind::kEsmActivateBearerAccept:
      eps_ = m.eps;
      trace_.Msg(nas::System::k4G, "ESM",
                 "Activate EPS Bearer Accept received");
      trace_.State(nas::System::k4G, "ESM", "EPS bearer context activated");
      break;

    default:
      CNV_LOG_WARN << "UE(4G): unexpected " << m.Describe();
      break;
  }
}

// ------------------------------------------------------------- MM / CM ---

void UeDevice::StartLau() {
  if (serving_ != nas::System::k3G || mm_ == MmState::kLuInProgress) return;
  mm_wait_timer_.Stop();
  mm_ = MmState::kLuInProgress;
  lau_started_at_ = sim_.now();
  Promote3g(model::Rrc3g::kFach);
  trace_.Msg(nas::System::k3G, "MM", "Location Updating Request sent");
  nas::Message m;
  m.kind = nas::MsgKind::kLocationUpdateRequest;
  m.protocol = nas::Protocol::kMm;
  SendCs(m);
  lu_attempts_ = 0;
  ArmLuGuard();
}

void UeDevice::OnDownlink3gCs(const nas::Message& m) {
  if (serving_ != nas::System::k3G) return;
  switch (m.kind) {
    case nas::MsgKind::kLocationUpdateAccept:
      if (mm_ != MmState::kLuInProgress) break;
      trace_.Msg(nas::System::k3G, "MM", "Location Updating Accept received");
      lu_guard_.Stop();
      lu_attempts_ = 0;
      lu_backoff_cycles_ = 0;
      mm_registered_ = true;
      if (lau_started_at_) {
        lau_duration_s_.Add(ToSeconds(sim_.now() - *lau_started_at_));
        lau_started_at_.reset();
      }
      // Chain effect (§6.1.2): MM keeps processing MM/RRC commands before
      // serving anything else.
      mm_ = MmState::kWaitNetCmd;
      trace_.State(nas::System::k3G, "MM", "MM-WAIT-FOR-NET-CMD");
      mm_wait_timer_.Start(profile_.mm_wait_net_cmd, [this] {
        mm_ = MmState::kIdle;
        trace_.State(nas::System::k3G, "MM", "MM-IDLE");
        TryServePendingCall();
      });
      if (solutions_.mm_decoupled) TryServePendingCall();
      break;

    case nas::MsgKind::kLocationUpdateReject:
      trace_.Msg(nas::System::k3G, "MM",
                 "Location Updating Reject received (cause: " +
                     nas::ToString(m.mm_cause) + ")");
      mm_ = MmState::kIdle;
      mm_registered_ = false;
      if (m.mm_cause == nas::MmCause::kCongestion) {
        // T3346 (TS 24.008 §4.1.1.7): honoured regardless of the optional
        // robustness machinery — congestion backoff is mandated behaviour.
        const SimDuration pause = CongestionBackoff(m, lu_backoff_cycles_++);
        trace_.Event(nas::System::k3G, "MM",
                     "T3346 armed (" + FormatDuration(pause) +
                     "); location update retry deferred");
        lu_guard_.Start(pause, [this] {
          if (powered_ && serving_ == nas::System::k3G && !mm_registered_) {
            lu_attempts_ = 0;
            StartLau();
          }
        });
        break;
      }
      if (robustness_.nas_retry) {
        // Retry the update after a growing pause instead of staying
        // unregistered until the next mobility trigger.
        const int cycle = lu_backoff_cycles_++;
        lu_guard_.Start(Scaled(BackoffDelay(cycle)), [this] {
          if (powered_ && serving_ == nas::System::k3G && !mm_registered_) {
            lu_attempts_ = 0;
            StartLau();
          }
        });
      }
      break;

    case nas::MsgKind::kCmServiceAccept:
      if (call_ != CallState::kWaitCmAccept) break;
      cm_guard_.Stop();
      trace_.Msg(nas::System::k3G, "MM", "CM Service Accept received");
      call_ = CallState::kWaitConnect;
      trace_.Msg(nas::System::k3G, "CM/CC", "Setup sent");
      {
        nas::Message r;
        r.kind = nas::MsgKind::kCallSetup;
        r.protocol = nas::Protocol::kCm;
        SendCs(r);
      }
      break;

    case nas::MsgKind::kPagingRequest:
      // Mobile-terminated call: answer the page (§2, "MSC pages and
      // establishes CS services").
      if (call_ != CallState::kNone) break;
      trace_.Msg(nas::System::k3G, "MM", "Paging Request received");
      {
        nas::Message r;
        r.kind = nas::MsgKind::kPagingResponse;
        r.protocol = nas::Protocol::kMm;
        trace_.Msg(nas::System::k3G, "MM", "Paging Response sent");
        Promote3g(model::Rrc3g::kFach);
        SendCs(r);
      }
      call_ = CallState::kWaitConnect;
      break;

    case nas::MsgKind::kCallSetup:
      // MT leg: the network set up the incoming call; ring, then answer.
      if (call_ != CallState::kWaitConnect) break;
      trace_.Msg(nas::System::k3G, "CM/CC", "Setup received (incoming call)");
      sim_.ScheduleIn(
          FromSeconds(rng_.Uniform(1.5, 4.0)), [this] {
            if (call_ != CallState::kWaitConnect ||
                serving_ != nas::System::k3G) {
              return;
            }
            trace_.Msg(nas::System::k3G, "CM/CC",
                       "Connect sent (incoming call answered)");
            nas::Message r;
            r.kind = nas::MsgKind::kCallConnect;
            r.protocol = nas::Protocol::kCm;
            SendCs(r);
            call_ = CallState::kActive;
            ++calls_connected_;
            call_connected_at_ = sim_.now();
            current_call_has_data_ = data_session_ && pdp_.active;
            if (current_call_has_data_) ++calls_with_data_;
            Promote3g(model::Rrc3g::kDch);
            channel3g_.SetCsCallActive(true);
            trace_.Msg(nas::System::k3G, "3G-RRC",
                       solutions_.domain_decoupled
                           ? "RRC Channel Config: dedicated CS channel "
                             "assigned; PS keeps 64QAM"
                           : "RRC Channel Config: 64QAM disabled during CS "
                             "voice call (16QAM)");
          });
      break;

    case nas::MsgKind::kCmServiceReject:
      trace_.Msg(nas::System::k3G, "MM",
                 m.mm_cause == nas::MmCause::kNone
                     ? "CM Service Reject received"
                     : "CM Service Reject received (cause: " +
                           nas::ToString(m.mm_cause) + ")");
      if (m.mm_cause == nas::MmCause::kCongestion) ++congestion_rejects_;
      cm_guard_.Stop();
      call_ = CallState::kNone;
      dialed_at_.reset();
      break;

    case nas::MsgKind::kCallConnect:
      if (call_ != CallState::kWaitConnect) break;
      call_ = CallState::kActive;
      trace_.Msg(nas::System::k3G, "CM/CC", "a call is established");
      if (dialed_at_) {
        call_setup_s_.Add(ToSeconds(sim_.now() - *dialed_at_));
      }
      ++calls_connected_;
      call_connected_at_ = sim_.now();
      current_call_has_data_ = data_session_ && pdp_.active;
      if (current_call_has_data_) ++calls_with_data_;
      Promote3g(model::Rrc3g::kDch);
      channel3g_.SetCsCallActive(true);
      if (solutions_.domain_decoupled) {
        trace_.Msg(nas::System::k3G, "3G-RRC",
                   "RRC Channel Config: dedicated CS channel assigned; PS "
                   "keeps 64QAM");
      } else {
        trace_.Msg(nas::System::k3G, "3G-RRC",
                   "RRC Channel Config: 64QAM disabled during CS voice call "
                   "(16QAM)");
      }
      break;

    default:
      CNV_LOG_WARN << "UE(3G-CS): unexpected " << m.Describe();
      break;
  }
}

// ------------------------------------------------------------ GMM / SM ---

void UeDevice::StartGprsAttach() {
  if (serving_ != nas::System::k3G || gmm_attached_) return;
  gmm_ = GmmState::kRauInProgress;
  rau_started_at_ = sim_.now();
  trace_.Msg(nas::System::k3G, "GMM", "GPRS Attach Request sent");
  nas::Message m;
  m.kind = nas::MsgKind::kGprsAttachRequest;
  m.protocol = nas::Protocol::kGmm;
  SendPs(m);
  gmm_attempts_ = 0;
  ArmGmmGuard();
}

void UeDevice::StartRau() {
  if (serving_ != nas::System::k3G || gmm_ != GmmState::kIdle ||
      !gmm_attached_) {
    return;
  }
  gmm_ = GmmState::kRauInProgress;
  rau_started_at_ = sim_.now();
  Promote3g(model::Rrc3g::kFach);
  trace_.Msg(nas::System::k3G, "GMM", "Routing Area Update Request sent");
  nas::Message m;
  m.kind = nas::MsgKind::kRauRequest;
  m.protocol = nas::Protocol::kGmm;
  SendPs(m);
  gmm_attempts_ = 0;
  ArmGmmGuard();
}

void UeDevice::ActivatePdp() {
  if (serving_ != nas::System::k3G || pdp_.active || !data_enabled_) return;
  if (!solutions_.mm_decoupled && gmm_ != GmmState::kIdle) {
    // S4, PS flavour: the SM request waits behind the routing area update.
    ++deferred_service_requests_;
    trace_.Event(nas::System::k3G, "GMM",
                 "SM request deferred: routing area update in progress");
    pdp_activation_pending_ = true;
    return;
  }
  pdp_activation_pending_ = false;
  trace_.Msg(nas::System::k3G, "SM", "Activate PDP Context Request sent");
  nas::Message m;
  m.kind = nas::MsgKind::kPdpActivateRequest;
  m.protocol = nas::Protocol::kSm;
  m.pdp = pdp_;
  SendPs(m);
  pdp_attempts_ = 0;
  ArmPdpGuard();
}

void UeDevice::OnDownlink3gPs(const nas::Message& m) {
  if (serving_ != nas::System::k3G) return;
  switch (m.kind) {
    case nas::MsgKind::kGprsAttachAccept:
      gmm_attached_ = true;
      gmm_ = GmmState::kIdle;
      gmm_guard_.Stop();
      gmm_backoff_cycles_ = 0;
      trace_.Msg(nas::System::k3G, "GMM", "GPRS Attach Accept received");
      if (rau_started_at_) {
        rau_duration_s_.Add(ToSeconds(sim_.now() - *rau_started_at_));
        rau_started_at_.reset();
      }
      if ((data_session_ || pdp_activation_pending_) && data_enabled_ &&
          !pdp_.active) {
        ActivatePdp();
      }
      break;

    case nas::MsgKind::kRauAccept:
      if (gmm_ != GmmState::kRauInProgress) break;
      gmm_ = GmmState::kIdle;
      gmm_guard_.Stop();
      gmm_backoff_cycles_ = 0;
      trace_.Msg(nas::System::k3G, "GMM",
                 "Routing Area Update Accept received");
      if (rau_started_at_) {
        rau_duration_s_.Add(ToSeconds(sim_.now() - *rau_started_at_));
        rau_started_at_.reset();
      }
      if (pdp_activation_pending_) ActivatePdp();
      break;

    case nas::MsgKind::kPdpActivateAccept:
      pdp_ = m.pdp;
      pdp_guard_.Stop();
      pdp_backoff_cycles_ = 0;
      trace_.Msg(nas::System::k3G, "SM", "Activate PDP Context Accept received");
      trace_.State(nas::System::k3G, "SM", "PDP context activated");
      Reevaluate3gPinning();
      break;

    case nas::MsgKind::kPdpDeactivateRequest:
      // Network-initiated deactivation (Table 3 causes) — the S1 trigger.
      pdp_.active = false;
      trace_.Msg(nas::System::k3G, "SM",
                 "Deactivate PDP Context Request received (cause: " +
                     nas::ToString(m.pdp_cause) + ")");
      trace_.State(nas::System::k3G, "SM", "PDP context deactivated");
      {
        nas::Message r;
        r.kind = nas::MsgKind::kPdpDeactivateAccept;
        r.protocol = nas::Protocol::kSm;
        SendPs(r);
      }
      Reevaluate3gPinning();
      break;

    case nas::MsgKind::kGprsAttachReject:
      trace_.Msg(nas::System::k3G, "GMM",
                 "GPRS Attach Reject received (cause: " +
                     nas::ToString(m.mm_cause) + ")");
      gmm_ = GmmState::kIdle;
      gmm_guard_.Stop();
      rau_started_at_.reset();
      if (m.mm_cause == nas::MmCause::kCongestion) {
        const SimDuration pause = CongestionBackoff(m, gmm_backoff_cycles_++);
        trace_.Event(nas::System::k3G, "GMM",
                     "T3346 armed (" + FormatDuration(pause) +
                     "); GPRS attach retry deferred");
        gmm_guard_.Start(pause, [this] {
          if (powered_ && serving_ == nas::System::k3G && !gmm_attached_) {
            gmm_attempts_ = 0;
            StartGprsAttach();
          }
        });
      }
      break;

    case nas::MsgKind::kRauReject:
      if (gmm_ != GmmState::kRauInProgress) break;
      trace_.Msg(nas::System::k3G, "GMM",
                 "Routing Area Update Reject received (cause: " +
                     nas::ToString(m.mm_cause) + ")");
      gmm_ = GmmState::kIdle;
      gmm_guard_.Stop();
      rau_started_at_.reset();
      if (m.mm_cause == nas::MmCause::kCongestion) {
        const SimDuration pause = CongestionBackoff(m, gmm_backoff_cycles_++);
        trace_.Event(nas::System::k3G, "GMM",
                     "T3346 armed (" + FormatDuration(pause) +
                     "); RAU retry deferred");
        gmm_guard_.Start(pause, [this] {
          if (powered_ && serving_ == nas::System::k3G && gmm_attached_) {
            gmm_attempts_ = 0;
            StartRau();
          }
        });
      }
      break;

    case nas::MsgKind::kPdpActivateReject:
      trace_.Msg(nas::System::k3G, "SM",
                 "Activate PDP Context Reject received (cause: " +
                     nas::ToString(m.pdp_cause) + ")");
      pdp_guard_.Stop();
      if (m.pdp_cause == nas::PdpDeactCause::kInsufficientResources) {
        // The SM analogue of a congestion reject: retry once the network
        // has drained (same capped-exponential discipline).
        const SimDuration pause = CongestionBackoff(m, pdp_backoff_cycles_++);
        trace_.Event(nas::System::k3G, "SM",
                     "SM backoff armed (" + FormatDuration(pause) +
                     "); PDP activation retry deferred");
        pdp_guard_.Start(pause, [this] {
          if (powered_ && serving_ == nas::System::k3G && data_enabled_ &&
              !pdp_.active && (data_session_ || pdp_activation_pending_)) {
            pdp_attempts_ = 0;
            ActivatePdp();
          }
        });
      }
      break;

    case nas::MsgKind::kPdpDeactivateAccept:
      break;  // answer to a UE-initiated deactivation

    default:
      CNV_LOG_WARN << "UE(3G-PS): unexpected " << m.Describe();
      break;
  }
}

// ----------------------------------------------------------------- RRC ---

void UeDevice::Promote3g(model::Rrc3g at_least) {
  if (serving_ != nas::System::k3G) return;
  if (static_cast<int>(rrc3g_) < static_cast<int>(at_least)) {
    trace_.State(nas::System::k3G, "3G-RRC",
                 model::ToString(rrc3g_) + " -> " + model::ToString(at_least));
    rrc3g_ = at_least;
  }
  Reevaluate3gPinning();
}

model::Rrc3g UeDevice::PinnedLevel() const {
  // What pins the RRC state: an active (or in-setup) call pins DCH; a
  // high-rate data session pins DCH; any data session pins at least FACH.
  if (call_ == CallState::kActive || call_ == CallState::kWaitConnect ||
      (data_session_ && pdp_.active &&
       data_demand_mbps_ >= kDchDemandMbps)) {
    return model::Rrc3g::kDch;
  }
  if (data_session_ && pdp_.active) return model::Rrc3g::kFach;
  return model::Rrc3g::kIdle;
}

void UeDevice::Reevaluate3gPinning() {
  if (serving_ != nas::System::k3G) return;
  const model::Rrc3g pinned = PinnedLevel();
  if (static_cast<int>(rrc3g_) < static_cast<int>(pinned)) {
    trace_.State(nas::System::k3G, "3G-RRC",
                 model::ToString(rrc3g_) + " -> " + model::ToString(pinned));
    rrc3g_ = pinned;
  }
  if (static_cast<int>(rrc3g_) > static_cast<int>(pinned)) {
    // Above the pinned level: arm the inactivity demotion.
    if (!rrc_demote_.IsRunning()) {
      const SimDuration d = rrc3g_ == model::Rrc3g::kDch
                                ? profile_.rrc_dch_to_fach
                                : profile_.rrc_fach_to_idle;
      rrc_demote_.Start(d, [this] { On3gDemoteTimer(); });
    }
  } else {
    rrc_demote_.Stop();
  }
}

void UeDevice::On3gDemoteTimer() {
  if (serving_ != nas::System::k3G || rrc3g_ == model::Rrc3g::kIdle) return;
  if (static_cast<int>(rrc3g_) <= static_cast<int>(PinnedLevel())) {
    // Activity resumed since the timer was armed: no demotion.
    Reevaluate3gPinning();
    return;
  }
  const model::Rrc3g next = rrc3g_ == model::Rrc3g::kDch
                                ? model::Rrc3g::kFach
                                : model::Rrc3g::kIdle;
  trace_.State(nas::System::k3G, "3G-RRC",
               model::ToString(rrc3g_) + " -> " + model::ToString(next) +
                   " (inactivity)");
  rrc3g_ = next;
  Reevaluate3gPinning();
  TryCellReselection();
}

void UeDevice::TryCellReselection() {
  if (!reselect_pending_ || serving_ != nas::System::k3G ||
      rrc3g_ != model::Rrc3g::kIdle) {
    return;
  }
  trace_.Event(nas::System::k3G, "3G-RRC",
               "inter-system cell reselection to 4G");
  ReturnTo4gAfterCsfb();
}

// ------------------------------------------------------------- queries ---

double UeDevice::CurrentPsRateMbps(sim::Direction dir, int hour_of_day) const {
  if (!powered_ || !data_enabled_) return 0.0;
  const double load = sim::TimeOfDayLoad(hour_of_day);
  if (serving_ == nas::System::k3G) {
    if (!pdp_.active) return 0.0;
    return channel3g_.PsThroughputMbps(dir, load);
  }
  if (serving_ == nas::System::k4G) {
    if (!eps_.active || emm_ != EmmState::kRegistered) return 0.0;
    // LTE-class rates; the experiments only use these as a baseline.
    return (dir == sim::Direction::kDownlink ? 25.0 : 8.0) * load;
  }
  return 0.0;
}

}  // namespace cnv::stack
