// Signalling-storm workload generators. Each generator schedules a
// deterministic burst of background ("synthetic") or adversarial NAS
// messages straight into a core element's uplink path, modelling the crowd
// of other subscribers a congested cell serves: mass attach after an outage
// restart, tracking-area ping-pong, paging floods, and an adversarial UE
// replaying malformed/truncated/reordered NAS. No randomness is consumed —
// bursts are fixed (start, count, spacing) grids, so runs stay byte-
// identical per seed at any parallelism.
#pragma once

#include <cstddef>
#include <cstdint>

#include "nas/messages.h"
#include "sim/simulator.h"
#include "trace/collector.h"
#include "util/time.h"

namespace cnv::stack {

class Mme;
class Msc;
class Sgsn;

class StormGenerator {
 public:
  StormGenerator(sim::Simulator& sim, trace::Collector& trace, Mme& mme,
                 Msc& msc, Sgsn& sgsn);
  StormGenerator(const StormGenerator&) = delete;
  StormGenerator& operator=(const StormGenerator&) = delete;

  // Mass attach (outage-restart stampede): `count` background subscribers
  // power on from `start`, one every `spacing`, each sending a bulk Attach
  // Request to the MME.
  void MassAttach(SimTime start, std::size_t count, SimDuration spacing);

  // Tracking-area ping-pong: devices on a cell border re-registering back
  // and forth, a burst of `count` TAU requests at the MME.
  void TaPingPong(SimTime start, std::size_t count, SimDuration spacing);

  // Paging flood: a burst of `count` paging responses at the MSC (the
  // emergency-priority class — admission control must not starve it).
  void PagingFlood(SimTime start, std::size_t count, SimDuration spacing);

  // Adversarial UE: cycles a deterministic corpus of malformed, truncated,
  // wrong-protocol and replayed NAS messages across MME/MSC/SGSN. These are
  // injected as foreground traffic (not synthetic) so the rejects and their
  // causes are visible in traces; every corpus entry is screened out or
  // dispatches as a state-safe no-op.
  void AdversarialNas(SimTime start, std::size_t count, SimDuration spacing);

  // Messages injected so far (replay duplicates count individually).
  std::uint64_t injected() const { return injected_; }
  // Latest scheduled injection instant across all bursts (0 = no storm);
  // the recovery monitor measures time-to-drain from here.
  SimTime last_injection_at() const { return last_injection_at_; }

 private:
  void NoteBurst(SimTime start, std::size_t count, SimDuration spacing);

  sim::Simulator& sim_;
  trace::Collector& trace_;
  Mme& mme_;
  Msc& msc_;
  Sgsn& sgsn_;
  std::uint64_t injected_ = 0;
  SimTime last_injection_at_ = 0;
  std::uint64_t next_uid_ = 1;
  std::uint64_t next_bg_imsi_ = 901'000'000'000'001ULL;
};

}  // namespace cnv::stack
