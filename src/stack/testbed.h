// Experiment harness: one UE plus the 3G/4G network side of one carrier,
// wired together over radio and backhaul links — the stand-in for the
// paper's phone-plus-two-carriers validation testbed (§3.3, §9). Radio legs
// are unreliable (UDP in the paper's prototype); backhaul legs are reliable
// (TCP). All fault-injection hooks used by the experiments live on the
// links and network elements this class exposes.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "sim/channel.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "solution/shim.h"
#include "stack/carrier.h"
#include "stack/hss.h"
#include "stack/network.h"
#include "stack/overload.h"
#include "stack/storm.h"
#include "stack/ue.h"
#include "trace/collector.h"
#include "util/rng.h"

namespace cnv::stack {

struct TestbedConfig {
  CarrierProfile profile = OpI();
  SolutionConfig solutions;
  std::uint64_t seed = 1;
  // Baseline loss probability on the (unreliable) radio legs.
  double radio_loss = 0.0;
  // Robustness machinery (UE retries/backoff, core queue-and-replay);
  // default off so the baseline reproduces the S1-S6 defects.
  RobustnessConfig robustness = {};
  // Core overload control (bounded signalling queues + admission policy);
  // default disabled = the legacy unbounded core.
  OverloadConfig overload = {};
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Simulator& sim() { return sim_; }
  Rng& rng() { return rng_; }
  trace::Collector& traces() { return trace_; }
  UeDevice& ue() { return *ue_; }
  Mme& mme() { return *mme_; }
  Msc& msc() { return *msc_; }
  Sgsn& sgsn() { return *sgsn_; }
  Hss& hss() { return *hss_; }
  StormGenerator& storm() { return *storm_; }
  nas::Imsi imsi() const { return kImsi; }
  sim::SharedChannel& channel3g() { return channel3g_; }
  const CarrierProfile& profile() const { return config_.profile; }

  // Links, exposed for fault injection (drop / defer / duplicate / reorder
  // / corrupt hooks).
  sim::Link& ul4g() { return *ul4g_; }
  sim::Link& dl4g() { return *dl4g_; }
  sim::Link& ul3g_cs() { return *ul3g_cs_; }
  sim::Link& dl3g_cs() { return *dl3g_cs_; }
  sim::Link& ul3g_ps() { return *ul3g_ps_; }
  sim::Link& dl3g_ps() { return *dl3g_ps_; }

  // Shim endpoints (§8 layer extension); null unless solutions.shim_layer.
  solution::ShimEndpoint* ue_shim() { return ue_shim_.get(); }
  solution::ShimEndpoint* mme_shim() { return mme_shim_.get(); }

  // Live trace tap: every record the testbed collects is also handed to
  // `tap` the moment it happens, so an online consumer — typically the
  // runtime-verification gateway, via rtv::FeedRecord — can watch the run
  // instead of post-processing traces().records(). Pass nullptr to detach.
  void TapTraces(trace::Collector::Tap tap) { trace_.SetTap(std::move(tap)); }

  // Advances simulated time by `d`.
  void Run(SimDuration d) { sim_.RunUntil(sim_.now() + d); }

 private:
  TestbedConfig config_;
  sim::Simulator sim_;
  Rng rng_;
  trace::Collector trace_;
  sim::SharedChannel channel3g_;

  std::unique_ptr<sim::Link> ul4g_;
  std::unique_ptr<sim::Link> dl4g_;
  std::unique_ptr<sim::Link> ul3g_cs_;
  std::unique_ptr<sim::Link> dl3g_cs_;
  std::unique_ptr<sim::Link> ul3g_ps_;
  std::unique_ptr<sim::Link> dl3g_ps_;

  static constexpr nas::Imsi kImsi{310'150'123'456'789ULL};

  std::unique_ptr<Hss> hss_;
  std::unique_ptr<Mme> mme_;
  std::unique_ptr<Msc> msc_;
  std::unique_ptr<Sgsn> sgsn_;
  std::unique_ptr<UeDevice> ue_;
  std::unique_ptr<StormGenerator> storm_;

  std::unique_ptr<solution::ShimEndpoint> ue_shim_;
  std::unique_ptr<solution::ShimEndpoint> mme_shim_;
};

}  // namespace cnv::stack
