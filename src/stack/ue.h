// The user device: a dual-mode (3G/4G) phone running the full control-plane
// stack of Table 2 — EMM/ESM towards the MME, MM/CM towards the MSC,
// GMM/SM towards the SGSN, and RRC state machines for both radios. One
// radio is active at a time (§3.2.1: "the phone device uses at most one
// network at a time"), so inter-system switches retune the device.
//
// The §8 solution modules are toggled through SolutionConfig; with all of
// them off the device and network reproduce the standards-mandated (and
// carrier-practiced) behaviours behind findings S1-S6.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "model/vocab.h"
#include "nas/context.h"
#include "nas/messages.h"
#include "sim/channel.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "stack/carrier.h"
#include "trace/collector.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cnv::stack {

// §8 remedies, one knob per module.
struct SolutionConfig {
  bool shim_layer = false;         // reliable EMM<->RRC transfer (S2)
  bool mm_decoupled = false;       // parallel LU / service threads (S4)
  bool domain_decoupled = false;   // per-domain channels+modulation (S5)
  bool csfb_tag = false;           // forced post-CSFB switch state (S3)
  bool reactivate_bearer = false;  // no detach on missing PDP context (S1)
  bool mme_lu_recovery = false;    // absorb 3G LU failures in the core (S6)
};

// Robustness machinery the paper's §8 implies but the standards-mandated
// baseline lacks: NAS procedure retries with exponential backoff, bounded
// CM-service re-requests, and queue-and-replay in front of a core element
// that is down. Off by default so the baseline reproduces the S1-S6 defect
// behaviours; the chaos campaigns switch it on to assert that the three
// user-visible properties recover within bounded time.
struct RobustnessConfig {
  bool nas_retry = false;        // LU/RAU/GPRS-attach/PDP guard + retry
  bool attach_backoff = false;   // T3411/T3402-style re-attach cycles
  bool cm_reattempt = false;     // bounded CM-service re-requests
  bool core_queue_replay = false;  // buffer uplinks while an element is down
};

class UeDevice {
 public:
  enum class EmmState : std::uint8_t {
    kDeregistered,
    kWaitAttachAccept,
    kRegistered,
    kWaitTauAccept,
    kOutOfService,  // involuntarily detached; recovery in progress
  };
  enum class MmState : std::uint8_t { kIdle, kLuInProgress, kWaitNetCmd };
  enum class GmmState : std::uint8_t { kIdle, kRauInProgress };
  enum class CallState : std::uint8_t {
    kNone,
    kPending,        // dialed, CM service request not yet sent (HOL block)
    kWaitCmAccept,
    kWaitConnect,
    kActive,
  };

  UeDevice(sim::Simulator& sim, Rng& rng, trace::Collector& trace,
           const CarrierProfile& profile, SolutionConfig solutions,
           sim::SharedChannel& channel3g, RobustnessConfig robustness = {});

  // --- wiring (done by the Testbed)
  void SetUplink4g(sim::Link* l) { ul4g_ = l; }
  // Optional interposer for EMM/ESM uplink traffic; the Testbed routes it
  // through the §8 reliable shim layer when that solution is enabled.
  void SetEmmTransport(std::function<void(const nas::Message&)> t) {
    emm_transport_ = std::move(t);
  }
  void SetUplink3gCs(sim::Link* l) { ul3g_cs_ = l; }
  void SetUplink3gPs(sim::Link* l) { ul3g_ps_ = l; }
  // Invoked when the device leaves 4G with an active EPS bearer so the
  // network side can migrate contexts (MME -> SGSN).
  void SetSwitchAwayHandler(std::function<void(const nas::PdpContext&)> h) {
    on_switch_away_from_4g_ = std::move(h);
  }
  // Invoked when the device returns to 4G after a CSFB call so the MME can
  // run the network-initiated SGs location update (§6.3).
  void SetCsfbReturnHandler(std::function<void()> h) {
    on_csfb_return_ = std::move(h);
  }

  // --- downlink entry points (receivers of the per-domain links)
  void OnDownlink4g(const nas::Message& m);
  void OnDownlink3gCs(const nas::Message& m);
  void OnDownlink3gPs(const nas::Message& m);

  // --- user / environment operations
  void PowerOn(nas::System system);
  void PowerOff();
  void Dial();    // outgoing call; in 4G this is a CSFB call
  void HangUp();
  void EnableData(bool on);  // the mobile-data switch
  void StartDataSession(double demand_mbps);
  void StopDataSession();
  void CrossAreaBoundary();  // roaming: triggers LAU/RAU (3G) or TAU (4G)
  // Periodic refresh without mobility (Table 4: T3212 / T3312 class
  // timers): every `interval` the device refreshes its location in the
  // serving system. Pass 0 to disable.
  void EnablePeriodicUpdates(SimDuration interval);
  void SwitchTo3g(model::SwitchReason reason);  // network/mobility-initiated
  void SwitchTo4g();                            // mobility-initiated return
  void SetRssi(double dbm);

  // Fault hook (timer skew): scales every NAS guard/backoff duration the
  // device arms from now on. 1.0 is nominal; >1 slows the device's clock.
  void set_timer_scale(double s) { timer_scale_ = s; }
  double timer_scale() const { return timer_scale_; }

  // CSFB fallback command (RRC connection release with redirect), issued by
  // the MME through the 4G BS.
  void OnCsfbRedirectTo3g();

  // --- queries for experiments and tests
  nas::System serving() const { return serving_; }
  EmmState emm_state() const { return emm_; }
  MmState mm_state() const { return mm_; }
  CallState call_state() const { return call_; }
  model::Rrc3g rrc3g() const { return rrc3g_; }
  // True from the involuntary detach until the re-attach completes: the
  // paper counts the whole recovery window as out of service (§5.1.3).
  bool out_of_service() const {
    return emm_ == EmmState::kOutOfService || recovery_started_at_.has_value();
  }
  bool eps_bearer_active() const { return eps_.active; }
  bool pdp_active() const { return pdp_.active; }
  bool data_session_active() const { return data_session_; }
  bool in_csfb_call() const { return in_csfb_; }
  bool awaiting_cell_reselection() const { return reselect_pending_; }

  // Effective PS throughput right now (Mbps) for a saturating transfer.
  double CurrentPsRateMbps(sim::Direction dir, int hour_of_day) const;

  // Measurement series collected over the device's lifetime.
  const Samples& call_setup_seconds() const { return call_setup_s_; }
  const Samples& lau_duration_seconds() const { return lau_duration_s_; }
  const Samples& rau_duration_seconds() const { return rau_duration_s_; }
  const Samples& recovery_seconds() const { return recovery_s_; }
  const Samples& stuck_in_3g_seconds() const { return stuck_in_3g_s_; }
  std::uint64_t oos_events() const { return oos_events_; }
  std::uint64_t attach_attempts_total() const { return attach_attempts_total_; }
  std::uint64_t data_disruptions() const { return data_disruptions_; }
  std::uint64_t deferred_service_requests() const {
    return deferred_service_requests_;
  }
  std::uint64_t deferred_call_requests() const {
    return deferred_call_requests_;
  }
  // Robustness-machinery bookkeeping (all zero unless RobustnessConfig
  // enables the corresponding mechanism).
  std::uint64_t lu_retries() const { return lu_retries_; }
  std::uint64_t gmm_retries() const { return gmm_retries_; }
  std::uint64_t pdp_retries() const { return pdp_retries_; }
  std::uint64_t cm_retries() const { return cm_retries_; }
  std::uint64_t cm_abandoned() const { return cm_abandoned_; }
  std::uint64_t attach_backoff_cycles() const { return attach_backoff_cycles_; }
  // Congestion-control bookkeeping (T3346): rejects with cause "congestion"
  // received, and backoff waits the device honoured before retrying.
  std::uint64_t congestion_rejects() const { return congestion_rejects_; }
  std::uint64_t congestion_backoffs() const { return congestion_backoffs_; }
  // Completed attach procedure durations (first request to accept) — the
  // storm campaigns report their p99 as a degradation SLO.
  const Samples& attach_latency_seconds() const { return attach_latency_s_; }
  // Detach causes, split so the user study can attribute events to findings
  // (S1: missing bearer context; S6: propagated 3G LU failures).
  std::uint64_t detaches_no_eps_bearer() const {
    return detaches_no_eps_bearer_;
  }
  std::uint64_t detaches_implicit() const { return detaches_implicit_; }
  std::uint64_t detaches_msc_unreachable() const {
    return detaches_msc_unreachable_;
  }
  // Call bookkeeping for the S5 rows of Table 5.
  std::uint64_t calls_connected() const { return calls_connected_; }
  std::uint64_t calls_with_data() const { return calls_with_data_; }
  const Samples& affected_call_data_mb() const {
    return affected_call_data_mb_;
  }
  const Samples& call_durations_seconds() const { return call_durations_s_; }

 private:
  // EMM / ESM (4G)
  void StartAttach();
  void OnAttachTimeout();
  void StartTau();
  void SendEmm(nas::Message m);
  void HandleDetach(nas::EmmCause cause, const std::string& who);

  // MM / CM (3G CS)
  void StartLau();
  void TryServePendingCall();
  void SendCs(nas::Message m);

  // GMM / SM (3G PS)
  void StartGprsAttach();
  void StartRau();
  void ActivatePdp();
  void SendPs(nas::Message m);

  // Robustness machinery (guard expiries + backoff; no-ops unless enabled).
  SimDuration Scaled(SimDuration d) const;
  SimDuration BackoffDelay(int cycle) const;
  // Capped-exponential backoff from an arbitrary base (T3346 congestion
  // grants double per consecutive reject, capped at kNasBackoffCap).
  SimDuration BackoffDelayFrom(SimDuration base, int cycle) const;
  // Congestion-reject plumbing (TS 24.301 §5.3.5 / TS 24.008 §4.1.1.7):
  // the granted (or default) T3346 value, exponentiated per retry cycle.
  SimDuration CongestionBackoff(const nas::Message& m, int cycle);
  void ArmLuGuard();
  void OnLuTimeout();
  void ArmGmmGuard();
  void OnGmmTimeout();
  void ArmPdpGuard();
  void OnPdpTimeout();
  void ArmCmGuard();
  void OnCmTimeout();
  void StopNasGuards();

  // RRC helpers
  model::Rrc3g PinnedLevel() const;
  void Promote3g(model::Rrc3g at_least);
  void Reevaluate3gPinning();
  void On3gDemoteTimer();
  void TryCellReselection();
  void ReturnTo4gAfterCsfb();

  void MigrateContextsTo3g();

  sim::Simulator& sim_;
  Rng& rng_;
  trace::Collector& trace_;
  const CarrierProfile& profile_;
  SolutionConfig solutions_;
  RobustnessConfig robustness_;
  sim::SharedChannel& channel3g_;

  sim::Link* ul4g_ = nullptr;
  std::function<void(const nas::Message&)> emm_transport_;
  sim::Link* ul3g_cs_ = nullptr;
  sim::Link* ul3g_ps_ = nullptr;
  std::function<void(const nas::PdpContext&)> on_switch_away_from_4g_;
  std::function<void()> on_csfb_return_;

  // Device state.
  bool powered_ = false;
  nas::System serving_ = nas::System::kNone;
  EmmState emm_ = EmmState::kDeregistered;
  MmState mm_ = MmState::kIdle;
  GmmState gmm_ = GmmState::kIdle;
  CallState call_ = CallState::kNone;
  model::Rrc3g rrc3g_ = model::Rrc3g::kIdle;
  model::Rrc4g rrc4g_ = model::Rrc4g::kIdle;
  bool gmm_attached_ = false;  // GPRS-attached in 3G PS
  bool mm_registered_ = false;
  bool data_enabled_ = true;
  bool data_session_ = false;
  bool pdp_activation_pending_ = false;
  double data_demand_mbps_ = 0;
  nas::EpsBearerContext eps_;
  nas::PdpContext pdp_;
  double rssi_dbm_ = -70.0;

  // CSFB bookkeeping.
  bool in_csfb_ = false;
  bool csfb_lu_deferred_pending_ = false;
  bool reselect_pending_ = false;
  std::optional<SimTime> csfb_call_ended_at_;

  // Timers.
  sim::Timer t3410_;         // attach guard
  sim::Timer t3430_;         // tracking-area-update guard
  int tau_attempts_ = 0;
  sim::Timer mm_wait_timer_; // MM-WAIT-FOR-NET-CMD dwell
  sim::Timer rrc_demote_;    // 3G RRC inactivity demotion
  sim::Timer periodic_;      // periodic location refresh (T3212/T3312 class)
  SimDuration periodic_interval_ = 0;

  // Robustness-machinery timers (armed only when RobustnessConfig enables
  // the mechanism). Each doubles as the procedure's backoff timer once the
  // quick retransmissions are exhausted.
  sim::Timer lu_guard_;      // T3210 class (LU)
  sim::Timer gmm_guard_;     // T3330 class (GPRS attach / RAU)
  sim::Timer pdp_guard_;     // T3380 class (PDP activation)
  sim::Timer cm_guard_;      // T3230 class (CM service)
  sim::Timer attach_backoff_;  // T3411/T3402 class (re-attach cycles)
  sim::Timer t3346_;           // congestion backoff (4G attach/TAU)
  int t3346_cycles_ = 0;
  double timer_scale_ = 1.0;
  int lu_attempts_ = 0;
  int lu_backoff_cycles_ = 0;
  int gmm_attempts_ = 0;
  int gmm_backoff_cycles_ = 0;
  int pdp_attempts_ = 0;
  int pdp_backoff_cycles_ = 0;
  int cm_attempts_ = 0;
  std::uint64_t lu_retries_ = 0;
  std::uint64_t gmm_retries_ = 0;
  std::uint64_t pdp_retries_ = 0;
  std::uint64_t cm_retries_ = 0;
  std::uint64_t cm_abandoned_ = 0;
  std::uint64_t attach_backoff_cycles_ = 0;
  std::uint64_t congestion_rejects_ = 0;
  std::uint64_t congestion_backoffs_ = 0;

  // Attach retry state.
  int attach_attempts_ = 0;
  std::optional<SimTime> recovery_started_at_;

  // Measurements.
  std::optional<SimTime> dialed_at_;
  std::optional<SimTime> attach_started_at_;
  Samples attach_latency_s_;
  std::optional<SimTime> lau_started_at_;
  std::optional<SimTime> rau_started_at_;
  Samples call_setup_s_;
  Samples lau_duration_s_;
  Samples rau_duration_s_;
  Samples recovery_s_;
  Samples stuck_in_3g_s_;
  std::uint64_t oos_events_ = 0;
  std::uint64_t attach_attempts_total_ = 0;
  std::uint64_t data_disruptions_ = 0;
  std::uint64_t deferred_service_requests_ = 0;
  std::uint64_t deferred_call_requests_ = 0;
  std::uint64_t detaches_no_eps_bearer_ = 0;
  std::uint64_t detaches_implicit_ = 0;
  std::uint64_t detaches_msc_unreachable_ = 0;
  std::uint64_t calls_connected_ = 0;
  std::uint64_t calls_with_data_ = 0;
  bool current_call_has_data_ = false;
  std::optional<SimTime> call_connected_at_;
  Samples affected_call_data_mb_;
  Samples call_durations_s_;
};

std::string ToString(UeDevice::EmmState s);
std::string ToString(UeDevice::CallState s);

}  // namespace cnv::stack
