#include "stack/scenarios.h"

namespace cnv::stack::scenario {

bool RunUntil(Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) {
    tb.Run(Millis(100));
  }
  return pred();
}

bool AttachIn4g(Testbed& tb) {
  tb.ue().PowerOn(nas::System::k4G);
  return RunUntil(tb,
                  [&] {
                    return tb.ue().emm_state() ==
                               UeDevice::EmmState::kRegistered &&
                           tb.ue().eps_bearer_active();
                  },
                  Minutes(3));
}

bool AttachIn3g(Testbed& tb) {
  tb.ue().PowerOn(nas::System::k3G);
  return RunUntil(
      tb, [&] { return tb.msc().registered() && tb.sgsn().registered(); },
      Minutes(3));
}

bool EstablishCall(Testbed& tb) {
  tb.ue().Dial();
  return RunUntil(tb,
                  [&] {
                    return tb.ue().call_state() ==
                           UeDevice::CallState::kActive;
                  },
                  Minutes(2));
}

bool ProvokeS1(Testbed& tb, nas::PdpDeactCause cause) {
  if (!AttachIn4g(tb)) return false;
  tb.ue().SwitchTo3g(model::SwitchReason::kMobility);
  if (!RunUntil(tb, [&] { return tb.ue().pdp_active(); }, Minutes(1))) {
    return false;
  }
  tb.sgsn().DeactivatePdp(cause);
  tb.Run(Seconds(1));
  return !tb.ue().pdp_active();
}

bool CsfbCallRoundTrip(Testbed& tb, SimDuration hold) {
  if (!EstablishCall(tb)) return false;
  tb.Run(hold);
  tb.ue().HangUp();
  RunUntil(tb, [&] { return tb.ue().serving() == nas::System::k4G; },
           Minutes(1));
  if (tb.ue().serving() == nas::System::k3G &&
      tb.ue().data_session_active()) {
    // The S3 stuck condition: the session pins the RRC state.
    tb.ue().StopDataSession();
    RunUntil(tb, [&] { return tb.ue().serving() == nas::System::k4G; },
             Minutes(2));
  }
  RunUntil(tb, [&] { return !tb.ue().out_of_service(); }, Minutes(2));
  return tb.ue().serving() == nas::System::k4G;
}

}  // namespace cnv::stack::scenario
