// Speedtest stand-in (§3.3 uses speedtest.net to measure uplink/downlink on
// the phone): samples the device's effective PS rate over a measurement
// window and integrates the transferred volume. Used for the Figure 9
// measurements and the Table 5 affected-data accounting.
#pragma once

#include "sim/channel.h"
#include "stack/testbed.h"
#include "util/stats.h"

namespace cnv::stack {

struct SpeedtestResult {
  Samples mbps;           // sampled rates over the window
  double megabytes = 0;   // volume transferred during the window
  SimDuration window = 0;

  double MedianMbps() const { return mbps.Empty() ? 0.0 : mbps.Median(); }
};

// Runs a speed test on the testbed's device: samples the rate every
// `sample_every` over `window` of simulated time (advancing the simulation)
// and integrates the volume.
SpeedtestResult RunSpeedtest(Testbed& tb, sim::Direction direction,
                             int hour_of_day, SimDuration window = Seconds(10),
                             SimDuration sample_every = Millis(500));

}  // namespace cnv::stack
