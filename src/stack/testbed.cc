#include "stack/testbed.h"

#include "nas/timers.h"

namespace cnv::stack {

namespace {
// One-way latency of a UE <-> core-element path: radio leg + backhaul leg.
constexpr SimDuration kPathDelay =
    nas::timers::kRadioLegDelay + nas::timers::kCoreLegDelay;
}  // namespace

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      trace_(sim_),
      channel3g_(config_.profile.channel_policy) {
  const sim::Link::Params radio{.delay = kPathDelay,
                                .loss_prob = config_.radio_loss,
                                .reliable = false,
                                .jitter = Millis(5)};

  ul4g_ = std::make_unique<sim::Link>(sim_, rng_, radio, "UE->MME");
  dl4g_ = std::make_unique<sim::Link>(sim_, rng_, radio, "MME->UE");
  ul3g_cs_ = std::make_unique<sim::Link>(sim_, rng_, radio, "UE->MSC");
  dl3g_cs_ = std::make_unique<sim::Link>(sim_, rng_, radio, "MSC->UE");
  ul3g_ps_ = std::make_unique<sim::Link>(sim_, rng_, radio, "UE->SGSN");
  dl3g_ps_ = std::make_unique<sim::Link>(sim_, rng_, radio, "SGSN->UE");

  hss_ = std::make_unique<Hss>(sim_);
  hss_->Provision({.imsi = kImsi});
  mme_ = std::make_unique<Mme>(sim_, rng_, config_.profile,
                               config_.solutions.mme_lu_recovery);
  msc_ = std::make_unique<Msc>(sim_, rng_, config_.profile);
  sgsn_ = std::make_unique<Sgsn>(sim_, rng_, config_.profile);
  mme_->SetHss(hss_.get(), kImsi);
  msc_->SetHss(hss_.get(), kImsi);
  if (config_.robustness.core_queue_replay) {
    mme_->set_queue_while_down(true);
    msc_->set_queue_while_down(true);
    sgsn_->set_queue_while_down(true);
    hss_->set_queue_while_down(true);
  }
  mme_->ConfigureOverload(config_.overload);
  msc_->ConfigureOverload(config_.overload);
  sgsn_->ConfigureOverload(config_.overload);
  hss_->ConfigureOverload(config_.overload);
  mme_->SetTrace(&trace_);
  msc_->SetTrace(&trace_);
  sgsn_->SetTrace(&trace_);
  ue_ = std::make_unique<UeDevice>(sim_, rng_, trace_, config_.profile,
                                   config_.solutions, channel3g_,
                                   config_.robustness);
  storm_ = std::make_unique<StormGenerator>(sim_, trace_, *mme_, *msc_,
                                            *sgsn_);

  mme_->SetDownlink(dl4g_.get());
  mme_->SetMsc(msc_.get());
  mme_->SetSgsn(sgsn_.get());
  msc_->SetDownlink(dl3g_cs_.get());
  sgsn_->SetDownlink(dl3g_ps_.get());

  ue_->SetUplink4g(ul4g_.get());
  ue_->SetUplink3gCs(ul3g_cs_.get());
  ue_->SetUplink3gPs(ul3g_ps_.get());

  // NAS routing. The 4G leg optionally runs through the §8 reliable shim.
  if (config_.solutions.shim_layer) {
    ue_shim_ = std::make_unique<solution::ShimEndpoint>(sim_, "UE-shim");
    mme_shim_ = std::make_unique<solution::ShimEndpoint>(sim_, "MME-shim");
    ue_shim_->SetTransmit([this](const nas::Message& m) { ul4g_->Send(m); });
    ue_shim_->SetDeliver(
        [this](const nas::Message& m) { ue_->OnDownlink4g(m); });
    mme_shim_->SetTransmit([this](const nas::Message& m) { dl4g_->Send(m); });
    mme_shim_->SetDeliver(
        [this](const nas::Message& m) { mme_->OnUplink(m); });
    ue_->SetEmmTransport(
        [this](const nas::Message& m) { ue_shim_->Send(m); });
    mme_->SetTransport([this](const nas::Message& m) { mme_shim_->Send(m); });
    ul4g_->SetReceiver(
        [this](const nas::Message& m) { mme_shim_->OnRaw(m); });
    dl4g_->SetReceiver([this](const nas::Message& m) { ue_shim_->OnRaw(m); });
  } else {
    ul4g_->SetReceiver([this](const nas::Message& m) { mme_->OnUplink(m); });
    dl4g_->SetReceiver([this](const nas::Message& m) { ue_->OnDownlink4g(m); });
  }
  ul3g_cs_->SetReceiver([this](const nas::Message& m) { msc_->OnUplink(m); });
  dl3g_cs_->SetReceiver(
      [this](const nas::Message& m) { ue_->OnDownlink3gCs(m); });
  ul3g_ps_->SetReceiver([this](const nas::Message& m) { sgsn_->OnUplink(m); });
  dl3g_ps_->SetReceiver(
      [this](const nas::Message& m) { ue_->OnDownlink3gPs(m); });

  // Cross-element glue the harness provides in place of S1AP/SGs plumbing.
  mme_->SetCsfbRedirectHandler([this] {
    // The redirect command travels BS -> UE over the radio.
    sim_.ScheduleIn(nas::timers::kRadioLegDelay,
                    [this] { ue_->OnCsfbRedirectTo3g(); });
  });
  ue_->SetSwitchAwayHandler([this](const nas::PdpContext& pdp) {
    if (pdp.active) sgsn_->StoreMigratedContext(pdp);
    mme_->ReleaseBearerOnSwitchAway();
  });
  ue_->SetCsfbReturnHandler([this] { mme_->ArmCsfbReturnUpdate(); });
}

}  // namespace cnv::stack
