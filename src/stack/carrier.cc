#include "stack/carrier.h"

#include <algorithm>
#include <cmath>

namespace cnv::stack {

SimDuration LatencyDist::Sample(Rng& rng) const {
  const double mu = std::log(median_s);
  const double v = rng.LogNormal(mu, sigma);
  return FromSeconds(std::clamp(v, min_s, max_s));
}

CarrierProfile OpI() {
  CarrierProfile p;
  p.name = "OP-I";
  // §5.3.2: OP-I returns to 4G within a few seconds via RRC release with
  // redirect, disrupting the data session.
  p.csfb_return_policy = model::SwitchPolicy::kReleaseWithRedirect;
  // Table 6, OP-I: 1.1s / 2.3s / 52.6s (min / median / max).
  p.csfb_return_latency = {.median_s = 2.3, .sigma = 0.6, .min_s = 1.1,
                           .max_s = 52.6};

  // §6.2: downlink drop ~73.9%; uplink only ~51% (explained by the
  // modulation change alone).
  p.channel_policy.dl_call_penalty = 0.5;
  p.channel_policy.ul_call_penalty = 1.0;

  // Figure 8a: all OP-I location updates take > 2 s, average ~3 s.
  p.lau_processing = {.median_s = 3.0, .sigma = 0.18, .min_s = 2.1, .max_s = 5.0};
  // Figure 8b: ~75% of routing updates in 1-3.6 s.
  p.rau_processing = {.median_s = 2.1, .sigma = 0.35, .min_s = 1.0, .max_s = 4.5};
  // Figure 4: OP-I recovers faster (lower spread of re-attach latency).
  p.reattach_delay = {.median_s = 4.0, .sigma = 0.55, .min_s = 2.4, .max_s = 15.0};

  p.mm_wait_net_cmd = Millis(4300);  // the measured 4.3 s chain effect
  p.lu_failure_mode = LuFailureMode::kFirstUpdateDisrupted;
  p.lu_failure_prob = 0.026;  // Table 5: 5 failures / 190 CSFB calls overall
  p.pdp_deact_in_3g_prob = 0.031;  // Table 5: 4 / 129 switches with data on
  p.defer_csfb_lu = true;  // OP-I defers the first update until call end
  return p;
}

CarrierProfile OpII() {
  CarrierProfile p;
  p.name = "OP-II";
  // §5.3.2: OP-II uses inter-system cell reselection, so devices with
  // ongoing data get stuck in 3G for the lifetime of the session.
  p.csfb_return_policy = model::SwitchPolicy::kCellReselection;
  // Unused on the reselection path (the UE triggers it from RRC IDLE).
  p.csfb_return_latency = {.median_s = 4.0, .sigma = 0.3, .min_s = 2.0,
                           .max_s = 10.0};

  // §6.2: OP-II throttles uplink PS during calls (96.1% drop).
  p.channel_policy.dl_call_penalty = 0.5;
  p.channel_policy.ul_call_penalty = 0.08;

  // Figure 8a: 72% of OP-II updates take 1.2-2.1 s, average 1.9 s.
  p.lau_processing = {.median_s = 1.8, .sigma = 0.22, .min_s = 1.2, .max_s = 3.5};
  // Figure 8b: 90% of routing updates in 1.6-4.1 s.
  p.rau_processing = {.median_s = 2.6, .sigma = 0.28, .min_s = 1.6, .max_s = 4.8};
  // Figure 4: OP-II shows the long tail up to ~24.7 s.
  p.reattach_delay = {.median_s = 7.0, .sigma = 0.65, .min_s = 3.0, .max_s = 24.7};

  p.mm_wait_net_cmd = Millis(3500);
  p.lu_failure_mode = LuFailureMode::kSecondUpdateRejected;
  p.lu_failure_prob = 0.026;
  p.pdp_deact_in_3g_prob = 0.031;
  p.defer_csfb_lu = false;  // first update completes; the second one fails
  return p;
}

}  // namespace cnv::stack
