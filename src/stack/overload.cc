#include "stack/overload.h"

namespace cnv::stack {

std::string ToString(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kUnbounded:
      return "unbounded";
    case AdmissionPolicy::kRejectBackoff:
      return "reject-backoff";
    case AdmissionPolicy::kPriorityShed:
      return "priority-shed";
  }
  return "?";
}

bool ParseAdmissionPolicy(const std::string& s, AdmissionPolicy* out) {
  if (s == "off" || s == "unbounded") {
    *out = AdmissionPolicy::kUnbounded;
    return true;
  }
  if (s == "reject" || s == "reject-backoff") {
    *out = AdmissionPolicy::kRejectBackoff;
    return true;
  }
  if (s == "shed" || s == "priority-shed") {
    *out = AdmissionPolicy::kPriorityShed;
    return true;
  }
  return false;
}

MsgPriority PriorityOf(nas::MsgKind k) {
  switch (k) {
    // Paging and call-path traffic: the class graceful degradation must
    // preserve (missed pages = missed calls, §6.1.1).
    case nas::MsgKind::kPagingRequest:
    case nas::MsgKind::kPagingResponse:
    case nas::MsgKind::kCallSetup:
    case nas::MsgKind::kCallConnect:
    case nas::MsgKind::kCallDisconnect:
    case nas::MsgKind::kExtendedServiceRequest:  // CSFB call origination
      return MsgPriority::kEmergency;
    // Initial registrations are the storm bulk: shed first.
    case nas::MsgKind::kAttachRequest:
    case nas::MsgKind::kGprsAttachRequest:
      return MsgPriority::kBulk;
    default:
      return MsgPriority::kSignalling;
  }
}

}  // namespace cnv::stack
