// Canned validation scenarios: the experiment scripts that the validation
// runner, benches and examples replay on a Testbed. Each returns once the
// scenario has settled (or the bounded wait expires), so callers can read
// the counters/traces directly.
#pragma once

#include <functional>

#include "stack/testbed.h"

namespace cnv::stack::scenario {

// Steps the simulation in 100 ms slices until `pred` holds or `limit`
// simulated time has elapsed. Returns whether the predicate held.
bool RunUntil(Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit);

// Powers on in 4G and waits for the attach to complete.
bool AttachIn4g(Testbed& tb);

// Powers on in 3G and waits for both CS and PS registrations.
bool AttachIn3g(Testbed& tb);

// Dials and waits until the call is active (through CSFB when on 4G).
bool EstablishCall(Testbed& tb);

// The S1 precondition: attached in 4G, switched to 3G with data, PDP
// context deactivated by the network with `cause`.
bool ProvokeS1(Testbed& tb, nas::PdpDeactCause cause =
                                nas::PdpDeactCause::kRegularDeactivation);

// Full CSFB call: dial in 4G, hold `hold` of talk time, hang up, and wait
// for the device to settle back on 4G (ending the data session if it is
// what keeps the device stranded). Returns whether 4G was reached.
bool CsfbCallRoundTrip(Testbed& tb, SimDuration hold = Seconds(10));

}  // namespace cnv::stack::scenario
