#include "stack/storm.h"

#include <string>

#include "stack/network.h"

namespace cnv::stack {

namespace {
std::string BurstLabel(std::size_t count, SimDuration spacing) {
  return "count=" + std::to_string(count) + " spacing=" +
         FormatDuration(spacing);
}
}  // namespace

StormGenerator::StormGenerator(sim::Simulator& sim, trace::Collector& trace,
                               Mme& mme, Msc& msc, Sgsn& sgsn)
    : sim_(sim), trace_(trace), mme_(mme), msc_(msc), sgsn_(sgsn) {}

void StormGenerator::NoteBurst(SimTime start, std::size_t count,
                               SimDuration spacing) {
  if (count == 0) return;
  const SimTime end =
      start + static_cast<SimDuration>(count - 1) * spacing;
  if (end > last_injection_at_) last_injection_at_ = end;
}

void StormGenerator::MassAttach(SimTime start, std::size_t count,
                                SimDuration spacing) {
  NoteBurst(start, count, spacing);
  if (count == 0) return;
  sim_.ScheduleAt(start, [this, count, spacing] {
    trace_.Event(nas::System::k4G, "STORM",
                 "Mass attach storm begins (" + BurstLabel(count, spacing) +
                 ")");
  });
  for (std::size_t i = 0; i < count; ++i) {
    nas::Message m;
    m.kind = nas::MsgKind::kAttachRequest;
    m.protocol = nas::Protocol::kEmm;
    m.imsi = nas::Imsi{next_bg_imsi_++};
    m.synthetic = true;
    sim_.ScheduleAt(start + static_cast<SimDuration>(i) * spacing,
                    [this, m] {
                      ++injected_;
                      mme_.OnUplink(m);
                    });
  }
}

void StormGenerator::TaPingPong(SimTime start, std::size_t count,
                                SimDuration spacing) {
  NoteBurst(start, count, spacing);
  if (count == 0) return;
  sim_.ScheduleAt(start, [this, count, spacing] {
    trace_.Event(nas::System::k4G, "STORM",
                 "TA ping-pong burst begins (" + BurstLabel(count, spacing) +
                 ")");
  });
  for (std::size_t i = 0; i < count; ++i) {
    nas::Message m;
    m.kind = nas::MsgKind::kTauRequest;
    m.protocol = nas::Protocol::kEmm;
    m.imsi = nas::Imsi{next_bg_imsi_++};
    // Border devices alternate between two tracking areas.
    m.tai.tac = (i % 2 == 0) ? 0x0101 : 0x0102;
    m.synthetic = true;
    sim_.ScheduleAt(start + static_cast<SimDuration>(i) * spacing,
                    [this, m] {
                      ++injected_;
                      mme_.OnUplink(m);
                    });
  }
}

void StormGenerator::PagingFlood(SimTime start, std::size_t count,
                                 SimDuration spacing) {
  NoteBurst(start, count, spacing);
  if (count == 0) return;
  sim_.ScheduleAt(start, [this, count, spacing] {
    trace_.Event(nas::System::k3G, "STORM",
                 "Paging flood begins (" + BurstLabel(count, spacing) + ")");
  });
  for (std::size_t i = 0; i < count; ++i) {
    nas::Message m;
    m.kind = nas::MsgKind::kPagingResponse;
    m.protocol = nas::Protocol::kMm;
    m.imsi = nas::Imsi{next_bg_imsi_++};
    m.synthetic = true;
    sim_.ScheduleAt(start + static_cast<SimDuration>(i) * spacing,
                    [this, m] {
                      ++injected_;
                      msc_.OnUplink(m);
                    });
  }
}

void StormGenerator::AdversarialNas(SimTime start, std::size_t count,
                                    SimDuration spacing) {
  // Replayed entries inject twice, so they advance the burst grid like a
  // single slot but count as two messages.
  NoteBurst(start, count, spacing);
  if (count == 0) return;
  sim_.ScheduleAt(start, [this, count, spacing] {
    trace_.Event(nas::System::k4G, "STORM",
                 "Adversarial NAS burst begins (" + BurstLabel(count, spacing) +
                 ")");
  });
  for (std::size_t i = 0; i < count; ++i) {
    const SimTime at = start + static_cast<SimDuration>(i) * spacing;
    nas::Message m;
    m.imsi = nas::Imsi{next_bg_imsi_};
    // Deterministic corpus cycle. Valid-integrity entries are restricted to
    // kinds whose dispatch is a no-op outside an in-flight procedure and
    // which have no congestion-reject counterpart, so an adversarial burst
    // can never push spurious rejects to the real device.
    switch (i % 7) {
      case 0:
        m.kind = nas::MsgKind::kAttachRequest;
        m.protocol = nas::Protocol::kEmm;
        m.integrity = nas::MsgIntegrity::kMalformed;
        sim_.ScheduleAt(at, [this, m] {
          ++injected_;
          mme_.OnUplink(m);
        });
        break;
      case 1:
        m.kind = nas::MsgKind::kTauRequest;
        m.protocol = nas::Protocol::kEmm;
        m.integrity = nas::MsgIntegrity::kTruncated;
        sim_.ScheduleAt(at, [this, m] {
          ++injected_;
          mme_.OnUplink(m);
        });
        break;
      case 2:
        m.kind = nas::MsgKind::kLocationUpdateRequest;
        m.protocol = nas::Protocol::kEsm;  // discriminator mismatch
        m.integrity = nas::MsgIntegrity::kWrongProtocol;
        sim_.ScheduleAt(at, [this, m] {
          ++injected_;
          msc_.OnUplink(m);
        });
        break;
      case 3:
        // Replay: a captured (valid) Attach Complete sent twice. The first
        // copy is a no-op unless an attach is mid-flight; the duplicate is
        // caught by the replay cache.
        m.kind = nas::MsgKind::kAttachComplete;
        m.protocol = nas::Protocol::kEmm;
        m.uid = next_uid_++;
        sim_.ScheduleAt(at, [this, m] {
          ++injected_;
          mme_.OnUplink(m);
          ++injected_;
          mme_.OnUplink(m);
        });
        break;
      case 4:
        m.kind = nas::MsgKind::kGprsAttachRequest;
        m.protocol = nas::Protocol::kGmm;
        m.integrity = nas::MsgIntegrity::kMalformed;
        sim_.ScheduleAt(at, [this, m] {
          ++injected_;
          sgsn_.OnUplink(m);
        });
        break;
      case 5:
        m.kind = nas::MsgKind::kCmServiceRequest;
        m.protocol = nas::Protocol::kMm;
        m.integrity = nas::MsgIntegrity::kTruncated;
        sim_.ScheduleAt(at, [this, m] {
          ++injected_;
          msc_.OnUplink(m);
        });
        break;
      default:
        // Replay at the SGSN: a duplicated (valid) deactivation confirm.
        m.kind = nas::MsgKind::kPdpDeactivateAccept;
        m.protocol = nas::Protocol::kSm;
        m.uid = next_uid_++;
        sim_.ScheduleAt(at, [this, m] {
          ++injected_;
          sgsn_.OnUplink(m);
          ++injected_;
          sgsn_.OnUplink(m);
        });
        break;
    }
  }
}

}  // namespace cnv::stack
