#include "sim/link.h"

#include <stdexcept>

#include "util/log.h"

namespace cnv::sim {

SimDuration Link::ComputeDelay() {
  SimDuration delay = params_.delay + extra_delay_;
  if (params_.jitter > 0) {
    delay += static_cast<SimDuration>(
        rng_.Uniform(0.0, static_cast<double>(params_.jitter)));
  }
  if (defer_next_ > 0) {
    delay += defer_next_;
    defer_next_ = 0;
  }
  return delay;
}

void Link::Transmit(const nas::Message& m, SimDuration delay) {
  sim_.ScheduleIn(delay, [this, m] {
    ++delivered_;
    receiver_(m);
  });
}

void Link::Send(const nas::Message& m) {
  if (!receiver_) throw std::logic_error("Link::Send: no receiver on " + name_);
  ++sent_;

  bool drop = false;
  if (force_drops_ > 0) {
    --force_drops_;
    drop = true;
  } else if (!params_.reliable && params_.loss_prob > 0.0) {
    drop = rng_.Bernoulli(params_.loss_prob);
  }
  if (drop) {
    ++dropped_;
    CNV_LOG_DEBUG << name_ << " drops " << m.Describe();
    return;
  }

  if (force_corrupt_ > 0) {
    // The frame reaches the receiver but fails the NAS integrity check
    // there; from the stack's perspective it was never delivered.
    --force_corrupt_;
    ++corrupted_;
    CNV_LOG_DEBUG << name_ << " corrupts " << m.Describe();
    return;
  }

  if (reorder_armed_ && !held_.has_value()) {
    // Buffer this message; the next Send() overtakes it on the wire. If a
    // message is already held, this Send() acts as its successor below and
    // the arming carries over to a later message.
    reorder_armed_ = false;
    held_ = m;
    return;
  }

  const SimDuration delay = ComputeDelay();
  Transmit(m, delay);
  if (force_dups_ > 0) {
    --force_dups_;
    ++duplicated_;
    CNV_LOG_DEBUG << name_ << " duplicates " << m.Describe();
    Transmit(m, delay + Millis(1));
  }

  if (held_.has_value()) {
    // Release the reordered message right behind the one that overtook it.
    const nas::Message overtaken = *held_;
    held_.reset();
    Transmit(overtaken, delay + Millis(1));
  }
}

void Link::FlushHeld() {
  reorder_armed_ = false;
  if (!held_.has_value()) return;
  const nas::Message m = *held_;
  held_.reset();
  Transmit(m, ComputeDelay());
}

}  // namespace cnv::sim
