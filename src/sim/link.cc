#include "sim/link.h"

#include <stdexcept>

#include "util/log.h"

namespace cnv::sim {

void Link::Send(const nas::Message& m) {
  if (!receiver_) throw std::logic_error("Link::Send: no receiver on " + name_);
  ++sent_;

  bool drop = false;
  if (force_drops_ > 0) {
    --force_drops_;
    drop = true;
  } else if (!params_.reliable && params_.loss_prob > 0.0) {
    drop = rng_.Bernoulli(params_.loss_prob);
  }
  if (drop) {
    ++dropped_;
    CNV_LOG_DEBUG << name_ << " drops " << m.Describe();
    return;
  }

  SimDuration delay = params_.delay;
  if (params_.jitter > 0) {
    delay += static_cast<SimDuration>(
        rng_.Uniform(0.0, static_cast<double>(params_.jitter)));
  }
  if (defer_next_ > 0) {
    delay += defer_next_;
    defer_next_ = 0;
  }
  sim_.ScheduleIn(delay, [this, m] {
    ++delivered_;
    receiver_(m);
  });
}

}  // namespace cnv::sim
