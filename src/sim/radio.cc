#include "sim/radio.h"

#include <algorithm>
#include <stdexcept>

namespace cnv::sim {

double LossFromRssi(double rssi_dbm) {
  if (rssi_dbm >= -95.0) return 0.001;   // good signal: essentially lossless
  if (rssi_dbm >= -105.0) return 0.02;   // marginal
  if (rssi_dbm >= -110.0) return 0.10;   // weak
  if (rssi_dbm >= -115.0) return 0.35;   // very weak (paper's S2 trigger zone)
  return 0.70;                           // edge of coverage
}

RssiProfile::RssiProfile(std::vector<Anchor> anchors)
    : anchors_(std::move(anchors)) {
  if (anchors_.empty()) {
    throw std::invalid_argument("RssiProfile: no anchors");
  }
  if (!std::is_sorted(anchors_.begin(), anchors_.end(),
                      [](const Anchor& a, const Anchor& b) {
                        return a.mile < b.mile;
                      })) {
    throw std::invalid_argument("RssiProfile: anchors not sorted by mile");
  }
}

double RssiProfile::At(double mile) const {
  if (mile <= anchors_.front().mile) return anchors_.front().rssi_dbm;
  if (mile >= anchors_.back().mile) return anchors_.back().rssi_dbm;
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    if (mile <= anchors_[i].mile) {
      const auto& a = anchors_[i - 1];
      const auto& b = anchors_[i];
      const double frac = (mile - a.mile) / (b.mile - a.mile);
      return a.rssi_dbm + frac * (b.rssi_dbm - a.rssi_dbm);
    }
  }
  return anchors_.back().rssi_dbm;
}

RssiProfile Route1Profile() {
  // Matches Figure 7's bottom panel: RSSI stays within [-51, -95] dBm, with
  // dips near the location-update spots at 9.5 and 13.2 miles.
  return RssiProfile({
      {0.0, -60.0},
      {2.0, -55.0},
      {4.0, -70.0},
      {6.0, -62.0},
      {8.0, -68.0},
      {9.5, -73.0},
      {11.0, -65.0},
      {13.2, -87.0},
      {14.0, -80.0},
      {15.0, -72.0},
  });
}

RssiProfile Route2Profile() {
  return RssiProfile({
      {0.0, -58.0},
      {5.0, -75.0},
      {10.0, -66.0},
      {14.0, -90.0},
      {18.0, -72.0},
      {22.0, -85.0},
      {25.0, -93.0},
      {28.3, -70.0},
  });
}

}  // namespace cnv::sim
