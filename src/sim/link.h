// Message transport between protocol entities. A Link applies one-way delay
// and (for radio legs) loss; reliability is a property the upper layers must
// NOT assume on radio legs — that assumption is exactly the S2 defect. The
// paper's prototype used UDP for the radio leg and TCP for backhaul (§9);
// the Link::Params mirror that split.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "nas/messages.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/time.h"

namespace cnv::sim {

class Link {
 public:
  struct Params {
    SimDuration delay = Millis(30);
    double loss_prob = 0.0;      // applied per message when !reliable
    bool reliable = true;        // backhaul legs are reliable
    SimDuration jitter = 0;      // uniform extra delay in [0, jitter]
  };

  using Receiver = std::function<void(const nas::Message&)>;

  Link(Simulator& sim, Rng& rng, Params params, std::string name)
      : sim_(sim), rng_(rng), params_(params), name_(std::move(name)) {}
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void SetReceiver(Receiver r) { receiver_ = std::move(r); }

  // Sends a copy of `m`; it is delivered (or dropped) after the link delay.
  void Send(const nas::Message& m);

  // Experiment hook: force-drop the next `n` messages regardless of the
  // loss probability (used by the Figure 12 drop-rate sweep and S2/S6
  // fault-injection runs).
  void ForceDropNext(int n) { force_drops_ += n; }

  // Experiment hook: hold the next message for `extra` beyond the normal
  // delay — models a loaded BS deferring delivery (Figure 5b).
  void DeferNext(SimDuration extra) { defer_next_ = extra; }

  void set_loss_prob(double p) { params_.loss_prob = p; }
  const Params& params() const { return params_; }
  const std::string& name() const { return name_; }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  Simulator& sim_;
  Rng& rng_;
  Params params_;
  std::string name_;
  Receiver receiver_;
  int force_drops_ = 0;
  SimDuration defer_next_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace cnv::sim
