// Message transport between protocol entities. A Link applies one-way delay
// and (for radio legs) loss; reliability is a property the upper layers must
// NOT assume on radio legs — that assumption is exactly the S2 defect. The
// paper's prototype used UDP for the radio leg and TCP for backhaul (§9);
// the Link::Params mirror that split.
//
// Fault-injection hooks: beyond the long-standing ForceDropNext/DeferNext,
// a link can duplicate, corrupt, reorder and persistently delay messages.
// All hooks are deterministic (no randomness beyond the configured loss
// probability), so a scripted FaultPlan replays identically under one seed.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "nas/messages.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/time.h"

namespace cnv::sim {

class Link {
 public:
  struct Params {
    SimDuration delay = Millis(30);
    double loss_prob = 0.0;      // applied per message when !reliable
    bool reliable = true;        // backhaul legs are reliable
    SimDuration jitter = 0;      // uniform extra delay in [0, jitter]
  };

  using Receiver = std::function<void(const nas::Message&)>;

  Link(Simulator& sim, Rng& rng, Params params, std::string name)
      : sim_(sim), rng_(rng), params_(params), name_(std::move(name)) {}
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void SetReceiver(Receiver r) { receiver_ = std::move(r); }

  // Sends a copy of `m`; it is delivered (or dropped) after the link delay.
  void Send(const nas::Message& m);

  // Experiment hook: force-drop the next `n` messages regardless of the
  // loss probability (used by the Figure 12 drop-rate sweep and S2/S6
  // fault-injection runs). Applies on reliable legs too: a forced drop
  // models the radio bearer tearing down mid-transfer, which no transport
  // reliability below NAS can mask.
  void ForceDropNext(int n) { force_drops_ += n; }

  // Experiment hook: hold the next message for `extra` beyond the normal
  // delay — models a loaded BS deferring delivery (Figure 5b).
  void DeferNext(SimDuration extra) { defer_next_ = extra; }

  // Fault hook: deliver the next `n` messages twice (the duplicate arrives
  // 1 ms after the original) — models link-layer retransmission of a frame
  // whose ack was lost, the S2 duplicate-attach trigger.
  void ForceDuplicateNext(int n) { force_dups_ += n; }

  // Fault hook: corrupt the next `n` messages. A corrupted NAS message
  // fails its integrity check at the receiving stack, so the link discards
  // it at delivery time; it is counted in corrupted(), not dropped().
  void CorruptNext(int n) { force_corrupt_ += n; }

  // Fault hook: hold the next message until the one after it has been
  // transmitted, swapping their order on the wire. If no second message is
  // sent, the held message stays buffered until FlushHeld() (the injector
  // flushes at the end of a plan).
  void ReorderNext() { reorder_armed_ = true; }
  bool has_held_message() const { return held_.has_value(); }
  void FlushHeld();

  // Fault hook: persistent extra one-way delay (backhaul congestion /
  // timer-skewing transport). Applies until reset to 0.
  void set_extra_delay(SimDuration d) { extra_delay_ = d; }
  SimDuration extra_delay() const { return extra_delay_; }

  void set_loss_prob(double p) { params_.loss_prob = p; }
  const Params& params() const { return params_; }
  const std::string& name() const { return name_; }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t corrupted() const { return corrupted_; }
  // Messages accepted by Send() but not yet resolved into delivered /
  // dropped / corrupted (scheduled in-flight plus a held reorder buffer).
  std::uint64_t in_flight() const {
    return sent_ + duplicated_ - delivered_ - dropped_ - corrupted_;
  }

 private:
  // Schedules delivery of `m` after `delay`; bumps delivered_ on arrival.
  void Transmit(const nas::Message& m, SimDuration delay);
  SimDuration ComputeDelay();

  Simulator& sim_;
  Rng& rng_;
  Params params_;
  std::string name_;
  Receiver receiver_;
  int force_drops_ = 0;
  int force_dups_ = 0;
  int force_corrupt_ = 0;
  bool reorder_armed_ = false;
  std::optional<nas::Message> held_;
  SimDuration defer_next_ = 0;
  SimDuration extra_delay_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t corrupted_ = 0;
};

}  // namespace cnv::sim
