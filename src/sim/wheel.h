// Hierarchical timer wheel: the population-scale event queue under the
// simulation kernel. Replaces the single binary heap for city-scale runs
// where hundreds of thousands of UEs keep millions of events in flight.
//
// Layout (microsecond timestamps, ~1.05 s level-0 ticks):
//
//   level 0   256 slots x 2^20 us (~1.05 s)    horizon  ~4.5 min
//   level 1    64 slots x 2^28 us (~4.5 min)   horizon  ~4.8 h
//   level 2    16 slots x 2^34 us (~4.8 h)     horizon ~76.4 h
//   overflow   calendar buckets of 2^31 us, for far-future guard timers
//              (T3412 periodic TAU, long T3346 congestion backoff, ...)
//
// The tick width is tuned to the control-plane delay profile: procedure
// completions (tens of ms to seconds) and the activity / paging / dwell
// inter-arrivals that dominate a busy hour (up to a few minutes) all
// insert straight into level 0 and are touched exactly once; periodic-TAU
// class guard timers (tens of minutes) sit one level up and cascade once.
// The seed design's 1 us ticks made the same entries walk four or five
// levels. A tick spanning ~1 s of simulated time is safe because a drained
// slot is sorted before popping (see the ordering contract below) — the
// coarser the tick, the more of the queue discipline shifts into that one
// cheap sort, and the fewer slots FindNextTick has to scan.
//
// Scheduling is O(1): pick the smallest level whose horizon covers the
// delay, index by the absolute expiry time. When virtual time crosses into
// an occupied higher-level slot, its entries cascade down; per-level
// occupancy bitmaps let the wheel jump straight from event to event instead
// of walking empty ticks, so sparse hours cost the same as dense ones.
// Entries beyond the top-level horizon wait in the calendar overflow tier
// and migrate into the wheels as time approaches.
//
// Ordering contract: entries pop in exact (time, seq) lexicographic order —
// byte-identical to the retired binary-heap kernel (sim/heap_ref.h), FIFO
// tie-break at equal timestamps included. A draining level-0 slot spans
// many timestamps, so the drain buffer is sorted by (time, seq); a handler
// that schedules back into the tick currently draining parks its entry in
// a small side heap which every pop weighs against the drain head, keeping
// the contract exact even for zero-delay self-schedules.
//
// The wheel knows nothing about cancellation: a 64-bit payload travels with
// every entry, and callers that need O(1) cancel tag payloads with a
// generation and simply ignore stale entries when they pop (see
// sim::Simulator and stack::CityEngine). That is what removes the seed
// kernel's `unordered_set` tombstone hashing from the hot path. Callers may
// additionally install a *reaper* — a predicate over payloads — and the
// wheel then drops dead entries the next time it touches them (cascade,
// calendar migration, or drain load) instead of carrying them all the way
// to a sorted pop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <queue>
#include <vector>

#include "util/time.h"

namespace cnv::sim {

struct WheelEntry {
  SimTime time = 0;
  std::uint64_t seq = 0;      // global FIFO tie-break for equal timestamps
  std::uint64_t payload = 0;  // opaque to the wheel
};

class TimerWheel {
 public:
  static constexpr int kLevels = 3;
  static constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

  // Returns true when the entry carrying `payload` is dead and may be
  // dropped without ever popping. Must be stable: once true, always true.
  using Reaper = bool (*)(void* ctx, std::uint64_t payload);

  // Cumulative + current occupancy accounting, harvested by the telemetry
  // layer. Everything here is deterministic (event counts, not wall clock).
  struct Stats {
    std::uint64_t inserts[kLevels] = {};  // entries placed per tier
    std::uint64_t overflow_inserts = 0;   // entries placed in the calendar
    std::uint64_t cascaded = 0;           // entries moved down a tier
    std::uint64_t migrated = 0;           // calendar entries pulled into wheels
    std::uint64_t sorted_ticks = 0;       // level-0 slots drained (and sorted)
    std::uint64_t reaped = 0;             // dead entries dropped pre-pop
    std::size_t occupancy[kLevels] = {};  // entries currently per tier
    std::size_t overflow_occupancy = 0;
    std::size_t peak_occupancy[kLevels] = {};
    std::size_t overflow_peak = 0;
  };

  TimerWheel() = default;
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Inserts an entry. `seq` values must be unique and, for the FIFO
  // contract to mean anything, issued in increasing order. `t` may lag the
  // wheel position (the kernel's clock can sit behind it after cancelled
  // stragglers drain); such entries park in a small side heap and still pop
  // in exact (time, seq) order.
  //
  // Kept inline: the level-0 fast path below covers the overwhelming bulk
  // of schedules (every delay under the level-0 horizon), and at millions
  // of schedules per second the call saved matters.
  void Schedule(SimTime t, std::uint64_t seq, std::uint64_t payload) {
    ++size_;
    if (t < resume_at_) resume_at_ = t;
    const SimTime tick = t >> kShift[0];
    if (t >= pos_ && t - pos_ < Horizon(0) && tick != drained_tick_)
        [[likely]] {
      const int slot = static_cast<int>(tick & 255);
      slots0_[slot].push_back(WheelEntry{t, seq, payload});
      bitmap0_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
      ++stats_.inserts[0];
      if (++stats_.occupancy[0] > stats_.peak_occupancy[0]) {
        stats_.peak_occupancy[0] = stats_.occupancy[0];
      }
      return;
    }
    ScheduleSlow(t, seq, payload);
  }

  // Pops the earliest entry (by (time, seq)) with time <= limit into *out.
  // Returns false — touching nothing — when no such entry exists. The wheel
  // position only ever advances to ticks that actually hold entries.
  bool PopUntil(SimTime limit, WheelEntry* out);

  // Pops every entry with time <= limit, in exact (time, seq) order,
  // invoking fn(entry) for each. Equivalent to a PopUntil loop but keeps
  // the drain fast path inline — the per-event branch chain matters at
  // millions of events per second. fn may schedule back into the wheel.
  template <class Fn>
  void DrainUntil(SimTime limit, Fn&& fn) {
    for (;;) {
      if (past_.empty()) [[likely]] {
        while (past_.empty() && drain_pos_ < drain_.size()) {
          const WheelEntry e = drain_[drain_pos_];  // fn may push into past_
          if (e.time > limit) {
            resume_at_ = e.time;
            return;
          }
          ++drain_pos_;
          --size_;
          fn(e);
        }
        if (!past_.empty()) continue;
        const SimTime tick = pos_ >> kShift[0];
        if (tick != drained_tick_ && !slots0_[tick & 255].empty()) {
          if (pos_ > limit) {
            resume_at_ = pos_;
            return;
          }
          LoadDrainSlot();
          continue;
        }
        if (FindNextTick(limit) == kNoEvent) return;
        LoadDrainSlot();
        continue;
      }
      WheelEntry e;  // rare path: entries parked behind the position
      if (!PopUntil(limit, &e)) return;
      fn(e);
    }
  }

  // Installs (or clears, with nullptr) the dead-entry predicate. Reaped
  // entries leave Size() silently; only stats().reaped records them.
  void SetReaper(Reaper reaper, void* ctx) {
    reaper_ = reaper;
    reaper_ctx_ = ctx;
  }

  // Lower bound on the earliest pending entry's time, valid after a
  // PopUntil that returned false. Never later than the true next event, so
  // a driver may skip the shard until its window reaches this time. Fresh
  // schedules pull it back; an empty wheel reports kNoEvent.
  SimTime ResumeAt() const { return resume_at_; }

  bool Empty() const { return size_ == 0; }
  std::size_t Size() const { return size_; }
  const Stats& stats() const { return stats_; }

 private:
  static constexpr int kShift[kLevels] = {20, 28, 34};
  static constexpr int kBits[kLevels] = {8, 6, 4};
  // Slot width and level horizon, in microseconds.
  static constexpr SimTime Width(int level) {
    return SimTime{1} << kShift[level];
  }
  static constexpr SimTime Horizon(int level) {
    return SimTime{1} << (kShift[level] + kBits[level]);
  }
  // Calendar buckets are far narrower than the top horizon, so a whole
  // bucket fits under the wheels' horizon by the time its migration
  // boundary (one bucket width ahead of the bucket start) passes.
  static constexpr int kBucketShift = 31;

  struct SeqGreater {
    bool operator()(const WheelEntry& a, const WheelEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool Dead(const WheelEntry& e) const {
    return reaper_ != nullptr && reaper_(reaper_ctx_, e.payload);
  }

  // Past-position, overflow, drained-tick, and higher-level cases the
  // inline Schedule fast path punts on.
  void ScheduleSlow(SimTime t, std::uint64_t seq, std::uint64_t payload);
  void Insert(const WheelEntry& e);  // into wheels; t - pos_ must be < top horizon
  void CascadeSlot(int level, int slot);
  void MigrateHeadBucket();
  void LoadDrainSlot();  // moves the level-0 slot at pos_ into drain_
  // Advances pos_ (with cascades) to the start of the next level-0 tick
  // <= limit that holds entries; returns that tick start or kNoEvent (the
  // position never advances past `limit` or past pending entries).
  SimTime FindNextTick(SimTime limit);

  // Occupancy bitmap helpers.
  void SetBit(int level, int slot);
  void ClearBit(int level, int slot);
  int ScanLevel0(int from) const;  // first set slot >= from, or -1

  SimTime pos_ = 0;  // level-0 tick start cascades are current to
  std::size_t size_ = 0;
  Stats stats_;
  Reaper reaper_ = nullptr;
  void* reaper_ctx_ = nullptr;
  SimTime resume_at_ = 0;

  std::vector<WheelEntry> slots0_[256];
  std::vector<WheelEntry> slots_[kLevels - 1][64];  // levels 1..kLevels-1
  std::uint64_t bitmap0_[4] = {};
  std::uint64_t bitmap_[kLevels - 1] = {};

  // Level-0 tick currently draining, sorted by (time, seq). Immutable while
  // draining: schedules landing back in this tick park in the side heap.
  std::vector<WheelEntry> drain_;
  std::size_t drain_pos_ = 0;
  SimTime drained_tick_ = -1;  // pos_ >> kShift[0] of the loaded tick

  // Side heap, merged against the drain buffer on every pop. Holds entries
  // scheduled behind the wheel position (time < pos_) and same-tick
  // re-schedules into the tick currently draining. Both pop before the
  // wheel may advance, so everything in here precedes all slot content;
  // it stays small and is usually empty.
  std::priority_queue<WheelEntry, std::vector<WheelEntry>, SeqGreater> past_;

  // Far-future calendar: bucket index -> entries, min-keyed map.
  std::map<std::int64_t, std::vector<WheelEntry>> overflow_;
  std::vector<WheelEntry> scratch_;  // cascade/migration staging
};

}  // namespace cnv::sim
