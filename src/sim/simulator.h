// Discrete-event simulation kernel. All validation-phase experiments run on
// this: protocol stacks schedule message deliveries and guard timers as
// events; virtual time advances from event to event, so runs are exact and
// reproducible regardless of wall-clock load.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace cnv::sim {

class Simulator {
 public:
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `t` (>= now). Returns a handle usable
  // with Cancel().
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  // Schedules `fn` after `d` (>= 0) from now.
  EventId ScheduleIn(SimDuration d, std::function<void()> fn);

  // Cancels a pending event; cancelling an already-fired or unknown event is
  // a no-op (guard timers routinely race their own expiry).
  void Cancel(EventId id);

  // Executes the next event, advancing time. Returns false when idle.
  bool Step();

  // Runs events with time <= t, then sets now() to t.
  void RunUntil(SimTime t);

  // Runs until the queue drains or `limit` is reached.
  void RunAll(SimTime limit = std::numeric_limits<SimTime>::max());

  std::size_t PendingEvents() const { return queue_.size() - cancelled_.size(); }
  std::uint64_t ExecutedEvents() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    EventId id;
    // Ordered as a min-heap via std::greater.
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  // Drops cancelled entries off the head so queue_.top() is always live.
  void PruneCancelled();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<std::function<void()>> handlers_{std::function<void()>{}};
  std::unordered_set<EventId> cancelled_;
};

}  // namespace cnv::sim
