// Discrete-event simulation kernel. All validation-phase experiments run on
// this: protocol stacks schedule message deliveries and guard timers as
// events; virtual time advances from event to event, so runs are exact and
// reproducible regardless of wall-clock load.
//
// The event queue is a hierarchical timer wheel (sim/wheel.h) rather than
// the seed's binary heap: O(1) schedule, O(1) amortized pop, and — key for
// protocol workloads where most guard timers are cancelled long before they
// expire — O(1) cancellation through generation-checked slot tombstones. A
// cancelled event's handler slot is released immediately; the entry left in
// the wheel is recognized as stale when its tick drains because its
// generation no longer matches, so neither Cancel() nor Step() does any
// hashing. Pop order is exactly (time, seq): byte-identical event order to
// the retired heap kernel, FIFO tie-break at equal timestamps included
// (sim/heap_ref.h keeps that kernel as a differential oracle).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/wheel.h"
#include "util/time.h"

namespace cnv::sim {

class Simulator {
 public:
  // An EventId packs a handler-slot index (low 32 bits) and that slot's
  // generation (high 32 bits). Slots are recycled through a free list once
  // their event fires or is cancelled, so long campaigns run in bounded
  // memory; the generation tag keeps a stale id from cancelling an
  // unrelated event that later reuses the slot.
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `t` (>= now). Returns a handle usable
  // with Cancel().
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  // Schedules `fn` after `d` (>= 0) from now.
  EventId ScheduleIn(SimDuration d, std::function<void()> fn);

  // Cancels a pending event; cancelling an already-fired or unknown event is
  // a no-op (guard timers routinely race their own expiry). O(1): the
  // handler slot is released on the spot and the wheel entry becomes a
  // generation-mismatched tombstone skipped when its tick drains.
  void Cancel(EventId id);

  // Executes the next event, advancing time. Returns false when idle.
  bool Step();

  // Runs events with time <= t, then sets now() to t.
  void RunUntil(SimTime t);

  // Runs until the queue drains or `limit` is reached.
  void RunAll(SimTime limit = std::numeric_limits<SimTime>::max());

  // Live (scheduled, not yet fired or cancelled) events. Counted directly,
  // so interleaved schedule/cancel/fire sequences can never skew it — the
  // seed derived this from queue size minus a tombstone set, which drifted
  // while cancelled stragglers lingered unpruned.
  std::size_t PendingEvents() const { return live_; }
  std::uint64_t ExecutedEvents() const { return executed_; }
  std::uint64_t ScheduledEvents() const { return scheduled_; }
  std::uint64_t CancelledEvents() const { return cancelled_total_; }
  // Peak number of simultaneously queued entries (cancelled-but-undrained
  // tombstones included, as they still occupy wheel slots).
  std::size_t PeakQueueDepth() const { return peak_queue_depth_; }
  // Number of handler slots ever allocated; bounded by the peak number of
  // simultaneously pending events, not by the total scheduled over time.
  std::size_t HandlerSlots() const { return slots_.size(); }

  // The underlying wheel, exposed read-only for per-tier occupancy
  // telemetry (obs::HarvestTimerWheel).
  const TimerWheel& wheel() const { return wheel_; }

  // Guard-timer bookkeeping, incremented by sim::Timer. Lives on the
  // simulator so every timer bound to this run aggregates into one place
  // the telemetry layer can read without extra wiring.
  struct TimerStats {
    std::uint64_t armed = 0;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
  };
  TimerStats& timer_stats() { return timer_stats_; }
  const TimerStats& timer_stats() const { return timer_stats_; }

 private:
  struct Slot {
    std::function<void()> fn;
    std::uint32_t gen = 0;
  };

  static constexpr std::uint32_t SlotOf(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static constexpr std::uint32_t GenOf(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static constexpr EventId MakeId(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  // True when the popped entry's generation still matches its slot, i.e. the
  // event was neither cancelled nor superseded.
  bool IsLive(const WheelEntry& e) const {
    const std::uint32_t slot = SlotOf(e.payload);
    return slots_[slot].gen == GenOf(e.payload) &&
           static_cast<bool>(slots_[slot].fn);
  }

  // Returns the slot's handler and recycles the slot for reuse.
  std::function<void()> ReleaseSlot(EventId id);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_total_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_queue_depth_ = 0;
  TimerStats timer_stats_;
  TimerWheel wheel_;
  // Slot 0 is reserved so no live event ever gets id kInvalidEvent.
  std::vector<Slot> slots_{Slot{}};
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace cnv::sim
