// Multi-user cell model for §6.2's discussion of alternative channel
// sharing schemes. The paper observes that carriers put one device's CS and
// PS traffic on a shared channel under a single modulation scheme, and
// sketches two alternatives: cluster PS sessions of *multiple* devices on
// one channel (CS sessions grouped on another), or let each flow adopt its
// own modulation. This model evaluates all of them for a population of
// users with differing radio conditions.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/channel.h"

namespace cnv::sim {

enum class SharingScheme : std::uint8_t {
  // Carrier practice (S5): the device's CS and PS share one channel; one
  // modulation for everything; CS satisfied first.
  kCoupledSharedChannel,
  // §6.2 alternative 1: PS sessions from all devices clustered on one
  // channel (one modulation robust enough for every member), CS sessions
  // grouped on another.
  kClusteredByDomain,
  // §6.2 alternative 2: every flow uses its own modulation scheme on its
  // share of the cell resource.
  kPerUserModulation,
};

std::string ToString(SharingScheme s);

struct CellUser {
  bool cs_call = false;
  double data_demand_mbps = 0;  // 0 = no PS session
  double rssi_dbm = -70.0;      // drives the feasible modulation
};

// Highest modulation the user's radio conditions support.
Modulation FeasibleModulation(double rssi_dbm, Direction d);

class Cell {
 public:
  explicit Cell(SharingScheme scheme,
                ChannelPolicy policy = ChannelPolicy{})
      : scheme_(scheme), policy_(policy) {}

  void SetUsers(std::vector<CellUser> users) { users_ = std::move(users); }
  const std::vector<CellUser>& users() const { return users_; }
  SharingScheme scheme() const { return scheme_; }

  // Modulation applied to user i's PS traffic under the scheme.
  Modulation PsModulationFor(std::size_t i, Direction d) const;

  // Effective PS throughput (Mbps) for user i: its modulation's peak rate,
  // scaled by cell load and split across the PS users sharing the resource,
  // capped by the user's demand. Users without a PS session get 0.
  double PsThroughputMbps(std::size_t i, Direction d,
                          double load_factor) const;

  // Aggregate PS throughput across the cell.
  double TotalPsThroughputMbps(Direction d, double load_factor) const;

  // Voice is always satisfied, in every scheme.
  double CsThroughputKbps(std::size_t i) const {
    return users_.at(i).cs_call ? kCsVoiceRateKbps : 0.0;
  }

 private:
  std::size_t PsUserCount() const;
  bool AnyCsCall() const;
  // Most robust (lowest) modulation needed by any PS member of a cluster.
  Modulation ClusterModulation(Direction d) const;

  SharingScheme scheme_;
  ChannelPolicy policy_;
  std::vector<CellUser> users_;
};

}  // namespace cnv::sim
