#include "sim/channel.h"

#include <stdexcept>

namespace cnv::sim {

std::string ToString(Modulation m) {
  switch (m) {
    case Modulation::kQpsk:
      return "QPSK";
    case Modulation::k16Qam:
      return "16QAM";
    case Modulation::k64Qam:
      return "64QAM";
  }
  return "?";
}

double PeakRateMbps(Modulation m, Direction d) {
  if (d == Direction::kDownlink) {
    switch (m) {
      case Modulation::k64Qam:
        return 21.1;  // HSDPA cat-14, the paper's "up to 21 Mbps"
      case Modulation::k16Qam:
        return 11.0;  // the paper's "reduced theoretical 11 Mbps"
      case Modulation::kQpsk:
        return 5.5;
    }
  } else {
    switch (m) {
      case Modulation::k64Qam:  // not used on 3G uplink; treat as 16QAM
      case Modulation::k16Qam:
        return 4.6;
      case Modulation::kQpsk:
        return 2.3;
    }
  }
  throw std::logic_error("PeakRateMbps: bad modulation");
}

double TimeOfDayLoad(int hour) {
  hour = ((hour % 24) + 24) % 24;
  // 3-hour bins matching Figure 9's x axis; evenings are busiest.
  if (hour >= 8 && hour < 11) return 0.62;
  if (hour >= 11 && hour < 14) return 0.58;
  if (hour >= 14 && hour < 17) return 0.55;
  if (hour >= 17 && hour < 20) return 0.48;
  if (hour >= 20 && hour < 23) return 0.52;
  return 0.70;  // 23-02 and small hours: lightly loaded
}

Modulation SharedChannel::PsModulation(Direction d) const {
  if (decoupled_ || !cs_call_active_) {
    // PS alone (or on its own channel) gets the high-rate scheme; 3G uplink
    // tops out at 16QAM.
    return d == Direction::kDownlink ? Modulation::k64Qam
                                     : Modulation::k16Qam;
  }
  return d == Direction::kDownlink ? policy_.dl_with_call
                                   : policy_.ul_with_call;
}

double SharedChannel::PsThroughputMbps(Direction d,
                                       double load_factor) const {
  if (load_factor < 0.0 || load_factor > 1.0) {
    throw std::invalid_argument("PsThroughputMbps: load_factor not in [0,1]");
  }
  double rate = PeakRateMbps(PsModulation(d), d) * load_factor;
  if (cs_call_active_ && !decoupled_) {
    rate *= (d == Direction::kDownlink) ? policy_.dl_call_penalty
                                        : policy_.ul_call_penalty;
    // The 12.2 kbps voice flow itself is negligible but still subtracted.
    rate -= kCsVoiceRateKbps / 1000.0;
    if (rate < 0.0) rate = 0.0;
  }
  return rate;
}

}  // namespace cnv::sim
