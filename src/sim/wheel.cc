#include "sim/wheel.h"

#include <algorithm>
#include <bit>

namespace cnv::sim {

namespace {

constexpr SimTime kBucketWidth = SimTime{1} << 31;

inline int Ctz(std::uint64_t x) { return std::countr_zero(x); }

struct EntryLess {
  bool operator()(const WheelEntry& a, const WheelEntry& b) const {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};

// First set bit in [0, p), or -1. Used for level-0 slots that wrapped past
// the current 256-tick window into the next one.
int ScanBelow(const std::uint64_t* bm, int p) {
  for (int word = 0; word < 4; ++word) {
    const int base = word << 6;
    if (base >= p) return -1;
    std::uint64_t b = bm[word];
    if (base + 64 > p) b &= (std::uint64_t{1} << (p - base)) - 1;
    if (b) return base + Ctz(b);
  }
  return -1;
}

}  // namespace

void TimerWheel::SetBit(int level, int slot) {
  if (level == 0) {
    bitmap0_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  } else {
    bitmap_[level - 1] |= std::uint64_t{1} << slot;
  }
}

void TimerWheel::ClearBit(int level, int slot) {
  if (level == 0) {
    bitmap0_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  } else {
    bitmap_[level - 1] &= ~(std::uint64_t{1} << slot);
  }
}

int TimerWheel::ScanLevel0(int from) const {
  int word = from >> 6;
  std::uint64_t b = bitmap0_[word] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (b) return (word << 6) + Ctz(b);
    if (++word == 4) return -1;
    b = bitmap0_[word];
  }
}

void TimerWheel::Insert(const WheelEntry& e) {
  const SimTime d = e.time - pos_;
  int level = 0;
  while (d >= Horizon(level)) ++level;
  // Indexing is by absolute time, so an entry whose slot the position is
  // already inside (that slot's cascade has passed) steps down a level; the
  // shared slot bounds the remaining delay under the lower level's horizon.
  while (level > 0 && (e.time >> kShift[level]) == (pos_ >> kShift[level])) {
    --level;
  }
  if (level == 0) {
    const SimTime tick = e.time >> kShift[0];
    if (tick == drained_tick_) {
      // The tick is mid-drain: the slot list already moved to the drain
      // buffer. Parking the entry in the side heap keeps the (time, seq)
      // merge exact — the pop paths always weigh the heap top against the
      // drain head — without the O(n) memmove a sorted vector insert would
      // cost, and a coarse tick sees plenty of same-tick re-schedules.
      past_.push(e);
      ++stats_.inserts[0];
      return;
    }
    const int slot = static_cast<int>(tick & 255);
    slots0_[slot].push_back(e);
    SetBit(0, slot);
  } else {
    const int slot = static_cast<int>((e.time >> kShift[level]) &
                                      ((SimTime{1} << kBits[level]) - 1));
    slots_[level - 1][slot].push_back(e);
    SetBit(level, slot);
  }
  ++stats_.inserts[level];
  if (++stats_.occupancy[level] > stats_.peak_occupancy[level]) {
    stats_.peak_occupancy[level] = stats_.occupancy[level];
  }
}

void TimerWheel::ScheduleSlow(SimTime t, std::uint64_t seq,
                              std::uint64_t payload) {
  // size_ and resume_at_ already updated by the inline fast path.
  const WheelEntry e{t, seq, payload};
  if (t < pos_) {
    past_.push(e);
    return;
  }
  if (t - pos_ >= Horizon(kLevels - 1)) {
    auto& bucket = overflow_[t >> kBucketShift];
    bucket.push_back(e);
    ++stats_.overflow_inserts;
    if (++stats_.overflow_occupancy > stats_.overflow_peak) {
      stats_.overflow_peak = stats_.overflow_occupancy;
    }
    return;
  }
  Insert(e);
}

void TimerWheel::CascadeSlot(int level, int slot) {
  auto& src = slots_[level - 1][slot];
  if (src.empty()) return;
  scratch_.clear();
  std::swap(scratch_, src);
  ClearBit(level, slot);
  stats_.occupancy[level] -= scratch_.size();
  for (const WheelEntry& e : scratch_) {
    if (Dead(e)) {
      --size_;
      ++stats_.reaped;
      continue;
    }
    ++stats_.cascaded;
    Insert(e);
  }
  scratch_.clear();
}

void TimerWheel::MigrateHeadBucket() {
  const auto it = overflow_.begin();
  scratch_.clear();
  std::swap(scratch_, it->second);
  overflow_.erase(it);
  stats_.overflow_occupancy -= scratch_.size();
  for (const WheelEntry& e : scratch_) {
    if (Dead(e)) {
      --size_;
      ++stats_.reaped;
      continue;
    }
    ++stats_.migrated;
    Insert(e);
  }
  scratch_.clear();
}

void TimerWheel::LoadDrainSlot() {
  const SimTime tick = pos_ >> kShift[0];
  const int slot = static_cast<int>(tick & 255);
  drain_.clear();
  std::swap(drain_, slots0_[slot]);
  drain_pos_ = 0;
  drained_tick_ = tick;
  ClearBit(0, slot);
  stats_.occupancy[0] -= drain_.size();
  ++stats_.sorted_ticks;
  if (reaper_ != nullptr) {
    auto keep = drain_.begin();
    for (const WheelEntry& e : drain_) {
      if (!Dead(e)) *keep++ = e;
    }
    const auto reaped =
        static_cast<std::size_t>(drain_.end() - keep);
    drain_.erase(keep, drain_.end());
    size_ -= reaped;
    stats_.reaped += reaped;
  }
  // A tick spans many timestamps, so restoring exact pop order needs the
  // full (time, seq) key, not seq alone. Most ticks hold a single entry at
  // city scale — skip the sort call outright then.
  if (drain_.size() > 1) {
    std::sort(drain_.begin(), drain_.end(), EntryLess{});
  }
}

SimTime TimerWheel::FindNextTick(SimTime limit) {
  for (;;) {
    // Calendar buckets whose migration boundary has passed fit entirely
    // under the wheels' horizon now; pull them in.
    while (!overflow_.empty() &&
           (overflow_.begin()->first - 1) * kBucketWidth <= pos_) {
      MigrateHeadBucket();
    }
    const SimTime tick = pos_ >> kShift[0];
    const int p = static_cast<int>(tick & 255);
    const int s = ScanLevel0(p);
    if (s >= 0) {
      const SimTime t = (tick - p + s) << kShift[0];
      if (t > limit) {
        resume_at_ = t;
        return kNoEvent;
      }
      pos_ = t;
      return t;
    }
    // Nothing left in the current level-0 window. The next work is the
    // earliest of: a wrapped level-0 slot (next window), the start of an
    // occupied higher-level slot, or the next calendar migration boundary.
    // Jumping straight there skips every empty boundary in between —
    // boundaries matter only when the slot being entered holds entries.
    SimTime cand = kNoEvent;
    const int s0 = ScanBelow(bitmap0_, p);
    if (s0 >= 0) cand = (tick - p + 256 + s0) << kShift[0];
    for (int level = 1; level < kLevels; ++level) {
      const std::uint64_t bm = bitmap_[level - 1];
      if (!bm) continue;
      const int n = 1 << kBits[level];
      const int lp = static_cast<int>((pos_ >> kShift[level]) & (n - 1));
      int o;
      const std::uint64_t above = lp < n - 1 ? bm >> (lp + 1) : 0;
      if (above) {
        o = Ctz(above) + 1;
      } else {
        // Ring wrap: occupied slots at ring index <= lp belong to the next
        // revolution (occupied slots always start strictly ahead of pos_).
        o = Ctz(bm) + n - lp;
      }
      const SimTime start = ((pos_ >> kShift[level]) + o) << kShift[level];
      if (start < cand) cand = start;
    }
    if (!overflow_.empty()) {
      const SimTime boundary = (overflow_.begin()->first - 1) * kBucketWidth;
      if (boundary < cand) cand = boundary;
    }
    if (cand == kNoEvent || cand > limit) {
      resume_at_ = cand;
      return kNoEvent;
    }
    pos_ = cand;
    // Entering one or more new higher-level slots: cascade them top-down so
    // entries trickle toward level 0 (re-inserting an entry places it at
    // the right lower tier directly, so lower cascades may find nothing).
    for (int level = kLevels - 1; level >= 1; --level) {
      if ((pos_ & (Width(level) - 1)) == 0) {
        CascadeSlot(level,
                    static_cast<int>((pos_ >> kShift[level]) &
                                     ((SimTime{1} << kBits[level]) - 1)));
      }
    }
  }
}

bool TimerWheel::PopUntil(SimTime limit, WheelEntry* out) {
  for (;;) {
    const bool have_drain = drain_pos_ < drain_.size();
    if (!past_.empty()) {
      // The side heap holds behind-position entries and same-tick
      // re-schedules, so it can interleave with the draining tick —
      // compare (time, seq) against the drain head.
      const WheelEntry& p = past_.top();
      bool use_past = true;
      if (have_drain) use_past = EntryLess{}(p, drain_[drain_pos_]);
      if (use_past) {
        if (p.time > limit) {
          resume_at_ = p.time;
          return false;
        }
        *out = p;
        past_.pop();
        --size_;
        return true;
      }
    }
    if (have_drain) {
      const WheelEntry& d = drain_[drain_pos_];
      if (d.time > limit) {
        resume_at_ = d.time;
        return false;
      }
      *out = d;
      ++drain_pos_;
      --size_;
      return true;
    }
    // The slot at the current position may hold entries the wheel has not
    // drained yet (fresh start, or a position parked on a future tick).
    // Once a tick is draining, new same-tick entries merge into the drain
    // buffer instead, so a loaded tick's slot stays empty.
    const SimTime tick = pos_ >> kShift[0];
    if (tick != drained_tick_ && !slots0_[tick & 255].empty()) {
      if (pos_ > limit) {
        resume_at_ = pos_;
        return false;
      }
      LoadDrainSlot();
      continue;
    }
    if (FindNextTick(limit) == kNoEvent) return false;  // resume_at_ set there
    LoadDrainSlot();
  }
}

}  // namespace cnv::sim
