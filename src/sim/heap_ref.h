// The seed event kernel — a single binary heap with an unordered_set of
// cancelled ids — kept verbatim after the timer-wheel rewrite for two jobs:
//
//   1. Differential oracle: the queue-discipline property suite
//      (tests/sim_wheel_test.cc) replays randomized schedule / cancel /
//      equal-timestamp workloads through this kernel and the wheel-backed
//      Simulator side by side and asserts identical execution order, clock
//      positions, accounting, and TimerStats.
//   2. Benchmark baseline: bench/perf_city drives the same city workload
//      through this kernel to measure what the hierarchical wheel buys.
//
// Nothing in the production stack links against it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/time.h"

namespace cnv::sim {

class ReferenceHeapSimulator {
 public:
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  ReferenceHeapSimulator() = default;
  ReferenceHeapSimulator(const ReferenceHeapSimulator&) = delete;
  ReferenceHeapSimulator& operator=(const ReferenceHeapSimulator&) = delete;

  SimTime now() const { return now_; }

  EventId ScheduleAt(SimTime t, std::function<void()> fn) {
    if (t < now_) throw std::invalid_argument("ScheduleAt: time in the past");
    if (!fn) throw std::invalid_argument("ScheduleAt: empty handler");
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot].fn = std::move(fn);
    const EventId id = MakeId(slot, slots_[slot].gen);
    queue_.push({t, next_seq_++, id});
    ++scheduled_;
    peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
    return id;
  }

  EventId ScheduleIn(SimDuration d, std::function<void()> fn) {
    if (d < 0) throw std::invalid_argument("ScheduleIn: negative delay");
    return ScheduleAt(now_ + d, std::move(fn));
  }

  void Cancel(EventId id) {
    if (id == kInvalidEvent) return;
    const std::uint32_t slot = SlotOf(id);
    if (slot >= slots_.size()) return;
    if (slots_[slot].gen != GenOf(id) || !slots_[slot].fn) return;
    if (cancelled_.insert(id).second) ++cancelled_total_;
  }

  bool Step() {
    PruneCancelled();
    if (queue_.empty()) return false;
    const Entry e = queue_.top();
    queue_.pop();
    now_ = e.time;
    std::function<void()> fn = ReleaseSlot(e.id);
    ++executed_;
    fn();
    return true;
  }

  void RunUntil(SimTime t) {
    if (t < now_) throw std::invalid_argument("RunUntil: time in the past");
    for (;;) {
      PruneCancelled();
      if (queue_.empty() || queue_.top().time > t) break;
      Step();
    }
    now_ = t;
  }

  void RunAll(SimTime limit = std::numeric_limits<SimTime>::max()) {
    for (;;) {
      PruneCancelled();
      if (queue_.empty() || queue_.top().time > limit) break;
      Step();
    }
    if (now_ < limit && limit != std::numeric_limits<SimTime>::max()) {
      now_ = limit;
    }
  }

  std::size_t PendingEvents() const { return queue_.size() - cancelled_.size(); }
  std::uint64_t ExecutedEvents() const { return executed_; }
  std::uint64_t ScheduledEvents() const { return scheduled_; }
  std::uint64_t CancelledEvents() const { return cancelled_total_; }
  std::size_t PeakQueueDepth() const { return peak_queue_depth_; }
  std::size_t HandlerSlots() const { return slots_.size(); }

  struct TimerStats {
    std::uint64_t armed = 0;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
  };
  TimerStats& timer_stats() { return timer_stats_; }
  const TimerStats& timer_stats() const { return timer_stats_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  struct Slot {
    std::function<void()> fn;
    std::uint32_t gen = 0;
  };

  static constexpr std::uint32_t SlotOf(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static constexpr std::uint32_t GenOf(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static constexpr EventId MakeId(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  std::function<void()> ReleaseSlot(EventId id) {
    const std::uint32_t slot = SlotOf(id);
    std::function<void()> fn = std::move(slots_[slot].fn);
    slots_[slot].fn = nullptr;
    ++slots_[slot].gen;
    free_slots_.push_back(slot);
    return fn;
  }

  void PruneCancelled() {
    while (!queue_.empty()) {
      const Entry& e = queue_.top();
      const auto it = cancelled_.find(e.id);
      if (it == cancelled_.end()) break;
      cancelled_.erase(it);
      ReleaseSlot(e.id);
      queue_.pop();
    }
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_total_ = 0;
  std::size_t peak_queue_depth_ = 0;
  TimerStats timer_stats_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<Slot> slots_{Slot{}};
  std::vector<std::uint32_t> free_slots_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace cnv::sim
