#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace cnv::sim {

Simulator::EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("ScheduleAt: time in the past");
  if (!fn) throw std::invalid_argument("ScheduleAt: empty handler");
  const EventId id = next_id_++;
  handlers_.push_back(std::move(fn));
  queue_.push({t, next_seq_++, id});
  return id;
}

Simulator::EventId Simulator::ScheduleIn(SimDuration d,
                                         std::function<void()> fn) {
  if (d < 0) throw std::invalid_argument("ScheduleIn: negative delay");
  return ScheduleAt(now_ + d, std::move(fn));
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return;
  if (handlers_[id]) cancelled_.insert(id);
}

void Simulator::PruneCancelled() {
  while (!queue_.empty()) {
    const Entry& e = queue_.top();
    const auto it = cancelled_.find(e.id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    handlers_[e.id] = nullptr;
    queue_.pop();
  }
}

bool Simulator::Step() {
  PruneCancelled();
  if (queue_.empty()) return false;
  const Entry e = queue_.top();
  queue_.pop();
  now_ = e.time;
  // Move out so re-entrant scheduling cannot alias the running handler.
  std::function<void()> fn = std::move(handlers_[e.id]);
  handlers_[e.id] = nullptr;
  ++executed_;
  fn();
  return true;
}

void Simulator::RunUntil(SimTime t) {
  if (t < now_) throw std::invalid_argument("RunUntil: time in the past");
  for (;;) {
    PruneCancelled();
    if (queue_.empty() || queue_.top().time > t) break;
    Step();
  }
  now_ = t;
}

void Simulator::RunAll(SimTime limit) {
  for (;;) {
    PruneCancelled();
    if (queue_.empty() || queue_.top().time > limit) break;
    Step();
  }
  if (now_ < limit && limit != std::numeric_limits<SimTime>::max()) {
    now_ = limit;
  }
}

}  // namespace cnv::sim
