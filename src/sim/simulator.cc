#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cnv::sim {

Simulator::EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("ScheduleAt: time in the past");
  if (!fn) throw std::invalid_argument("ScheduleAt: empty handler");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  const EventId id = MakeId(slot, slots_[slot].gen);
  wheel_.Schedule(t, next_seq_++, id);
  ++scheduled_;
  ++live_;
  peak_queue_depth_ = std::max(peak_queue_depth_, wheel_.Size());
  return id;
}

Simulator::EventId Simulator::ScheduleIn(SimDuration d,
                                         std::function<void()> fn) {
  if (d < 0) throw std::invalid_argument("ScheduleIn: negative delay");
  return ScheduleAt(now_ + d, std::move(fn));
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEvent) return;
  const std::uint32_t slot = SlotOf(id);
  if (slot >= slots_.size()) return;
  // A stale id (the slot moved on to a newer generation, or the event
  // already fired) is a no-op.
  if (slots_[slot].gen != GenOf(id) || !slots_[slot].fn) return;
  ReleaseSlot(id);
  ++cancelled_total_;
  --live_;
}

std::function<void()> Simulator::ReleaseSlot(EventId id) {
  const std::uint32_t slot = SlotOf(id);
  std::function<void()> fn = std::move(slots_[slot].fn);
  slots_[slot].fn = nullptr;
  ++slots_[slot].gen;
  free_slots_.push_back(slot);
  return fn;
}

bool Simulator::Step() {
  WheelEntry e;
  while (wheel_.PopUntil(std::numeric_limits<SimTime>::max(), &e)) {
    if (!IsLive(e)) continue;  // cancelled straggler: drop the tombstone
    now_ = e.time;
    // Move out so re-entrant scheduling cannot alias the running handler.
    std::function<void()> fn = ReleaseSlot(e.payload);
    ++executed_;
    --live_;
    fn();
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime t) {
  if (t < now_) throw std::invalid_argument("RunUntil: time in the past");
  WheelEntry e;
  while (wheel_.PopUntil(t, &e)) {
    if (!IsLive(e)) continue;
    now_ = e.time;
    std::function<void()> fn = ReleaseSlot(e.payload);
    ++executed_;
    --live_;
    fn();
  }
  now_ = t;
}

void Simulator::RunAll(SimTime limit) {
  WheelEntry e;
  while (wheel_.PopUntil(limit, &e)) {
    if (!IsLive(e)) continue;
    now_ = e.time;
    std::function<void()> fn = ReleaseSlot(e.payload);
    ++executed_;
    --live_;
    fn();
  }
  if (now_ < limit && limit != std::numeric_limits<SimTime>::max()) {
    now_ = limit;
  }
}

}  // namespace cnv::sim
