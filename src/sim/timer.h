// Protocol guard timer (T3410, T3210, RRC inactivity, ...) bound to a
// simulation kernel. Restartable; stopping or destroying the timer cancels
// the pending expiry.
//
// Templated on the kernel so the queue-discipline property suite can bind
// the same timer logic to the reference heap kernel (sim/heap_ref.h) and
// diff TimerStats against the wheel-backed Simulator. Production code uses
// the `Timer` alias and never sees the template.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "sim/simulator.h"
#include "util/time.h"

namespace cnv::sim {

template <class Sim>
class BasicTimer {
 public:
  BasicTimer(Sim& sim, std::string name) : sim_(sim), name_(std::move(name)) {}
  ~BasicTimer() { Stop(); }
  BasicTimer(const BasicTimer&) = delete;
  BasicTimer& operator=(const BasicTimer&) = delete;

  // (Re)starts the timer: `on_expiry` fires once after `d` unless stopped.
  void Start(SimDuration d, std::function<void()> on_expiry) {
    Stop();
    running_ = true;
    ++sim_.timer_stats().armed;
    id_ = sim_.ScheduleIn(d, [this, cb = std::move(on_expiry)] {
      running_ = false;
      id_ = Sim::kInvalidEvent;
      ++sim_.timer_stats().fired;
      cb();
    });
  }

  void Stop() {
    if (running_) {
      sim_.Cancel(id_);
      running_ = false;
      id_ = Sim::kInvalidEvent;
      ++sim_.timer_stats().cancelled;
    }
  }

  bool IsRunning() const { return running_; }
  const std::string& name() const { return name_; }

 private:
  Sim& sim_;
  std::string name_;
  bool running_ = false;
  typename Sim::EventId id_ = Sim::kInvalidEvent;
};

using Timer = BasicTimer<Simulator>;

}  // namespace cnv::sim
