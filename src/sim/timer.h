// Protocol guard timer (T3410, T3210, RRC inactivity, ...) bound to a
// Simulator. Restartable; stopping or destroying the timer cancels the
// pending expiry.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "sim/simulator.h"
#include "util/time.h"

namespace cnv::sim {

class Timer {
 public:
  Timer(Simulator& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}
  ~Timer() { Stop(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // (Re)starts the timer: `on_expiry` fires once after `d` unless stopped.
  void Start(SimDuration d, std::function<void()> on_expiry) {
    Stop();
    running_ = true;
    ++sim_.timer_stats().armed;
    id_ = sim_.ScheduleIn(d, [this, cb = std::move(on_expiry)] {
      running_ = false;
      id_ = Simulator::kInvalidEvent;
      ++sim_.timer_stats().fired;
      cb();
    });
  }

  void Stop() {
    if (running_) {
      sim_.Cancel(id_);
      running_ = false;
      id_ = Simulator::kInvalidEvent;
      ++sim_.timer_stats().cancelled;
    }
  }

  bool IsRunning() const { return running_; }
  const std::string& name() const { return name_; }

 private:
  Simulator& sim_;
  std::string name_;
  bool running_ = false;
  Simulator::EventId id_ = Simulator::kInvalidEvent;
};

}  // namespace cnv::sim
