#include "sim/cell.h"

#include <algorithm>
#include <stdexcept>

namespace cnv::sim {

std::string ToString(SharingScheme s) {
  switch (s) {
    case SharingScheme::kCoupledSharedChannel:
      return "coupled shared channel (carrier practice)";
    case SharingScheme::kClusteredByDomain:
      return "PS clustered / CS grouped (per-domain channels)";
    case SharingScheme::kPerUserModulation:
      return "per-user modulation";
  }
  return "?";
}

Modulation FeasibleModulation(double rssi_dbm, Direction d) {
  Modulation m;
  if (rssi_dbm >= -80.0) {
    m = Modulation::k64Qam;
  } else if (rssi_dbm >= -95.0) {
    m = Modulation::k16Qam;
  } else {
    m = Modulation::kQpsk;
  }
  // The 3G uplink tops out at 16QAM.
  if (d == Direction::kUplink && m == Modulation::k64Qam) {
    m = Modulation::k16Qam;
  }
  return m;
}

std::size_t Cell::PsUserCount() const {
  std::size_t n = 0;
  for (const auto& u : users_) {
    if (u.data_demand_mbps > 0) ++n;
  }
  return n;
}

bool Cell::AnyCsCall() const {
  return std::any_of(users_.begin(), users_.end(),
                     [](const CellUser& u) { return u.cs_call; });
}

Modulation Cell::ClusterModulation(Direction d) const {
  // The whole cluster runs at the scheme the weakest member can decode.
  Modulation m = d == Direction::kDownlink ? Modulation::k64Qam
                                           : Modulation::k16Qam;
  for (const auto& u : users_) {
    if (u.data_demand_mbps <= 0) continue;
    const Modulation f = FeasibleModulation(u.rssi_dbm, d);
    if (static_cast<int>(f) < static_cast<int>(m)) m = f;
  }
  return m;
}

Modulation Cell::PsModulationFor(std::size_t i, Direction d) const {
  const CellUser& u = users_.at(i);
  switch (scheme_) {
    case SharingScheme::kCoupledSharedChannel: {
      // The device's own CS call forces the robust scheme (S5); otherwise
      // the shared channel still serves every PS member at the cluster's
      // modulation.
      if (u.cs_call || AnyCsCall()) {
        return d == Direction::kDownlink ? policy_.dl_with_call
                                         : policy_.ul_with_call;
      }
      return ClusterModulation(d);
    }
    case SharingScheme::kClusteredByDomain:
      // CS lives on its own channel; PS keeps the cluster's best scheme.
      return ClusterModulation(d);
    case SharingScheme::kPerUserModulation:
      return FeasibleModulation(u.rssi_dbm, d);
  }
  throw std::logic_error("Cell: bad scheme");
}

double Cell::PsThroughputMbps(std::size_t i, Direction d,
                              double load_factor) const {
  if (load_factor < 0.0 || load_factor > 1.0) {
    throw std::invalid_argument("Cell: load_factor not in [0,1]");
  }
  const CellUser& u = users_.at(i);
  if (u.data_demand_mbps <= 0) return 0.0;
  const std::size_t n = PsUserCount();
  double rate = PeakRateMbps(PsModulationFor(i, d), d) * load_factor /
                static_cast<double>(n);
  if (scheme_ == SharingScheme::kCoupledSharedChannel && AnyCsCall()) {
    rate *= (d == Direction::kDownlink) ? policy_.dl_call_penalty
                                        : policy_.ul_call_penalty;
  }
  return std::min(rate, u.data_demand_mbps);
}

double Cell::TotalPsThroughputMbps(Direction d, double load_factor) const {
  double total = 0;
  for (std::size_t i = 0; i < users_.size(); ++i) {
    total += PsThroughputMbps(i, d, load_factor);
  }
  return total;
}

}  // namespace cnv::sim
