// Radio propagation abstractions: RSSI as a function of position along a
// drive route (Figure 7 bottom panel) and signal-loss probability as a
// function of RSSI (the paper triggers S2 in areas below -110 dBm).
#pragma once

#include <vector>

namespace cnv::sim {

// Signal-loss probability for one control message over the air. The paper's
// observations: good signal in [-95, -51] dBm rarely loses signaling;
// below -110 dBm losses become common (§5.2.2).
double LossFromRssi(double rssi_dbm);

// Piecewise-linear RSSI profile along a route, in (mile, dBm) anchors.
class RssiProfile {
 public:
  struct Anchor {
    double mile;
    double rssi_dbm;
  };

  // Anchors must be non-empty and sorted by mile.
  explicit RssiProfile(std::vector<Anchor> anchors);

  // Interpolated RSSI at `mile` (clamped to the profile's ends).
  double At(double mile) const;

  double StartMile() const { return anchors_.front().mile; }
  double EndMile() const { return anchors_.back().mile; }

 private:
  std::vector<Anchor> anchors_;
};

// The paper's Route-1: a 15-mile freeway stretch with RSSI varying in the
// good-signal range [-51, -95] dBm (Figure 7, bottom).
RssiProfile Route1Profile();

// Route-2: 28.3 miles of freeway + local streets.
RssiProfile Route2Profile();

}  // namespace cnv::sim
