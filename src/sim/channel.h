// Shared-channel capacity model for the 3G radio (S5, §6.2). The carrier
// configures one modulation scheme for the shared channel via RRC; when a CS
// voice call is active on the same channel, the modulation is downgraded so
// the voice traffic is robust (64QAM disabled -> 16QAM, Figure 10), and the
// scheduler additionally favours the CS flow. The model computes effective
// PS throughput from peak modulation rate x time-of-day load x CS-sharing
// penalty; carrier policies differ (OP-I vs OP-II uplink handling).
#pragma once

#include <cstdint>
#include <string>

namespace cnv::sim {

enum class Modulation : std::uint8_t { kQpsk, k16Qam, k64Qam };
enum class Direction : std::uint8_t { kDownlink, kUplink };

std::string ToString(Modulation m);

// Peak physical-layer rate (Mbps) for one device on the channel. Downlink
// follows HSDPA category figures the paper quotes (21 Mbps at 64QAM,
// 11 Mbps at 16QAM); uplink follows HSUPA-class figures.
double PeakRateMbps(Modulation m, Direction d);

// 3GPP AMR voice codec rate (kbps), the paper's "best 3G CS voice" figure.
inline constexpr double kCsVoiceRateKbps = 12.2;

// Cell load multiplier for a 3-hour bin starting at `hour` (0-23): effective
// throughput = peak * load. Busy evening hours are the most loaded.
double TimeOfDayLoad(int hour);

// How a carrier runs CS+PS on the shared channel (operational policy).
struct ChannelPolicy {
  // Modulation while a CS call shares the channel (coupled mode).
  Modulation dl_with_call = Modulation::k16Qam;
  Modulation ul_with_call = Modulation::kQpsk;
  // Extra scheduler penalty on PS while the call is active (1 = none).
  double dl_call_penalty = 0.5;
  double ul_call_penalty = 1.0;
};

// One 3G cell's shared channel from the point of view of a single device.
class SharedChannel {
 public:
  explicit SharedChannel(ChannelPolicy policy) : policy_(policy) {}
  SharedChannel() = default;

  // Solution (§8 domain decoupling): give CS its own channel so PS keeps
  // the high-rate modulation.
  void set_decoupled(bool d) { decoupled_ = d; }
  bool decoupled() const { return decoupled_; }

  void SetCsCallActive(bool active) { cs_call_active_ = active; }
  bool cs_call_active() const { return cs_call_active_; }

  // Modulation currently applied to PS traffic (what an RRC Channel Config
  // trace item would report).
  Modulation PsModulation(Direction d) const;

  // Effective PS throughput for the device (Mbps).
  double PsThroughputMbps(Direction d, double load_factor) const;

  // Effective CS voice throughput (kbps); the call is always satisfied
  // first, in both modes.
  double CsThroughputKbps() const { return cs_call_active_ ? kCsVoiceRateKbps : 0.0; }

  const ChannelPolicy& policy() const { return policy_; }

 private:
  ChannelPolicy policy_{};
  bool decoupled_ = false;
  bool cs_call_active_ = false;
};

}  // namespace cnv::sim
