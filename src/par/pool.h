// Shared worker-pool utility for the parallel exploration engine and the
// campaign runner. A pool owns `jobs - 1` helper threads; the calling thread
// always participates as worker 0, so `jobs == 1` degenerates to inline
// execution with no threads spawned and no synchronization — byte-identical
// to the code paths that existed before the pool.
//
// Two dispatch shapes:
//
//   ParallelFor(n, fn)   fn(worker, begin, end) over contiguous slices of
//                        [0, n). The slice boundaries depend only on (n,
//                        jobs), never on scheduling, which is what lets the
//                        exploration engine keep candidate ordering
//                        deterministic (see mck/parallel_explorer.h).
//   ParallelEach(n, fn)  fn(worker, i) with indices claimed dynamically from
//                        an atomic counter — the right shape for irregular
//                        work like campaign runs, where callers index results
//                        by `i` so ordering never depends on scheduling.
//
// Both calls are barriers: they return only after every index has been
// processed, and the completion handshake establishes a happens-before edge
// from all worker writes to the caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cnv::par {

// Number of hardware threads, always >= 1.
int HardwareJobs();

// Resolves a user-facing `--jobs` value: 0 means "use the hardware", anything
// else is clamped to >= 1.
int ResolveJobs(int jobs);

class WorkerPool {
 public:
  // jobs == 0 selects HardwareJobs(). The pool spawns jobs - 1 threads.
  explicit WorkerPool(int jobs = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int jobs() const { return jobs_; }

  // Runs fn(worker, begin, end) where worker w owns [n*w/jobs, n*(w+1)/jobs).
  void ParallelFor(std::size_t n,
                   const std::function<void(int, std::size_t, std::size_t)>& fn);

  // Runs fn(worker, i) for every i in [0, n); indices are claimed dynamically.
  void ParallelEach(std::size_t n,
                    const std::function<void(int, std::size_t)>& fn);

  // ParallelEach with a graceful drain: once *stop becomes true, workers
  // finish the indices they already claimed and stop claiming new ones. The
  // call still barriers; indices beyond the drain point are simply never
  // dispatched. `stop == nullptr` behaves exactly like ParallelEach.
  void ParallelEachUntil(std::size_t n,
                         const std::function<void(int, std::size_t)>& fn,
                         const std::atomic<bool>* stop);

  // Cumulative wall-clock seconds each worker spent inside task bodies.
  // Telemetry only (worker-utilization gauges); never feeds a deterministic
  // output.
  std::vector<double> BusySeconds() const;

 private:
  void WorkerMain(int worker);
  // Dispatches body(worker) on all workers (including the caller) and waits.
  void RunOnAll(const std::function<void(int)>& body);
  // Runs body(worker) and accrues its wall time to busy_[worker].
  void RunTimed(int worker, const std::function<void(int)>& body);

  int jobs_ = 1;
  std::vector<std::thread> threads_;
  std::vector<double> busy_;  // one slot per worker; owner-thread writes only

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped per dispatched task
  int pending_ = 0;               // helpers still running the current task
  bool stopping_ = false;
  std::function<void(int)> task_;

  std::atomic<std::size_t> next_index_{0};  // for ParallelEach
};

}  // namespace cnv::par
