#include "par/pool.h"

#include <chrono>

namespace cnv::par {

int HardwareJobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ResolveJobs(int jobs) {
  if (jobs == 0) return HardwareJobs();
  return jobs < 1 ? 1 : jobs;
}

WorkerPool::WorkerPool(int jobs) : jobs_(ResolveJobs(jobs)) {
  busy_.assign(static_cast<std::size_t>(jobs_), 0.0);
  threads_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int w = 1; w < jobs_; ++w) {
    threads_.emplace_back([this, w] { WorkerMain(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::RunTimed(int worker, const std::function<void(int)>& body) {
  const auto start = std::chrono::steady_clock::now();
  body(worker);
  busy_[static_cast<std::size_t>(worker)] +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

void WorkerPool::WorkerMain(int worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::function<void(int)> body;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      body = task_;
    }
    RunTimed(worker, body);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void WorkerPool::RunOnAll(const std::function<void(int)>& body) {
  if (jobs_ == 1) {
    RunTimed(0, body);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = body;
    pending_ = jobs_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  RunTimed(0, body);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

void WorkerPool::ParallelFor(
    std::size_t n,
    const std::function<void(int, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t jobs = static_cast<std::size_t>(jobs_);
  RunOnAll([&fn, n, jobs](int worker) {
    const std::size_t w = static_cast<std::size_t>(worker);
    const std::size_t begin = n * w / jobs;
    const std::size_t end = n * (w + 1) / jobs;
    if (begin < end) fn(worker, begin, end);
  });
}

void WorkerPool::ParallelEach(std::size_t n,
                              const std::function<void(int, std::size_t)>& fn) {
  ParallelEachUntil(n, fn, nullptr);
}

void WorkerPool::ParallelEachUntil(
    std::size_t n, const std::function<void(int, std::size_t)>& fn,
    const std::atomic<bool>* stop) {
  if (n == 0) return;
  next_index_.store(0, std::memory_order_relaxed);
  RunOnAll([this, &fn, n, stop](int worker) {
    for (;;) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
      const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(worker, i);
    }
  });
}

std::vector<double> WorkerPool::BusySeconds() const { return busy_; }

}  // namespace cnv::par
