#include "solution/shim.h"

#include <stdexcept>

#include "util/log.h"

namespace cnv::solution {

ShimEndpoint::ShimEndpoint(sim::Simulator& sim, std::string name,
                           SimDuration retransmit_timeout)
    : sim_(sim),
      name_(std::move(name)),
      rto_(retransmit_timeout),
      retransmit_timer_(sim, name_ + "-rto") {}

void ShimEndpoint::Send(nas::Message m) {
  m.seq = next_seq_++;
  m.is_shim_ack = false;
  if (inflight_.has_value()) {
    queue_.push_back(std::move(m));
    return;
  }
  inflight_ = std::move(m);
  TransmitInflight();
}

void ShimEndpoint::TransmitInflight() {
  if (!transmit_) throw std::logic_error(name_ + ": no transmit function");
  transmit_(*inflight_);
  retransmit_timer_.Start(rto_, [this] { OnRetransmitTimeout(); });
}

void ShimEndpoint::OnRetransmitTimeout() {
  if (!inflight_.has_value()) return;
  ++retransmissions_;
  CNV_LOG_DEBUG << name_ << ": retransmitting seq "
                << inflight_->seq;
  TransmitInflight();
}

void ShimEndpoint::SendAck(std::uint32_t seq) {
  nas::Message ack;
  ack.is_shim_ack = true;
  ack.seq = seq;
  transmit_(ack);
}

void ShimEndpoint::OnRaw(const nas::Message& m) {
  if (m.is_shim_ack) {
    if (inflight_.has_value() && m.seq == inflight_->seq) {
      inflight_.reset();
      retransmit_timer_.Stop();
      if (!queue_.empty()) {
        inflight_ = std::move(queue_.front());
        queue_.pop_front();
        TransmitInflight();
      }
    }
    return;
  }
  // Data path: acknowledge everything at or below the expected sequence so
  // lost acks are healed by the retransmitted copy.
  if (m.seq == expected_seq_) {
    ++expected_seq_;
    SendAck(m.seq);
    ++delivered_;
    if (deliver_) deliver_(m);
  } else if (m.seq < expected_seq_) {
    // Duplicate of something already delivered: re-ack, never re-deliver.
    ++duplicates_discarded_;
    SendAck(m.seq);
  } else {
    // Ahead of sequence (should not happen with stop-and-wait): drop; the
    // sender will retransmit in order.
    ++duplicates_discarded_;
  }
}

}  // namespace cnv::solution
