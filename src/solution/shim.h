// §8 "layer extension": a slim reliable-transfer layer inserted between EMM
// and RRC. RRC does not guarantee reliable in-sequence delivery end to end
// (the S2 root cause), so the shim adds sequence numbers, acknowledgements,
// retransmission and duplicate suppression — restoring exactly the
// assumptions EMM already makes. It bridges the existing interfaces: NAS
// hands messages to Send(), raw link traffic enters through OnRaw(), and
// in-order deliveries come out of the `deliver` callback.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "nas/messages.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "util/time.h"

namespace cnv::solution {

class ShimEndpoint {
 public:
  using SendFn = std::function<void(const nas::Message&)>;

  ShimEndpoint(sim::Simulator& sim, std::string name,
               SimDuration retransmit_timeout = Millis(200));

  // Raw transmit towards the peer (typically Link::Send).
  void SetTransmit(SendFn t) { transmit_ = std::move(t); }
  // Upward in-order delivery to the NAS layer.
  void SetDeliver(SendFn d) { deliver_ = std::move(d); }

  // Reliable send: stop-and-wait with retransmission until acknowledged.
  void Send(nas::Message m);

  // Entry point for everything arriving from the link (data + acks).
  void OnRaw(const nas::Message& m);

  bool idle() const { return !inflight_.has_value() && queue_.empty(); }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t duplicates_discarded() const { return duplicates_discarded_; }
  std::uint64_t delivered() const { return delivered_; }

 private:
  void TransmitInflight();
  void OnRetransmitTimeout();
  void SendAck(std::uint32_t seq);

  sim::Simulator& sim_;
  std::string name_;
  SimDuration rto_;
  SendFn transmit_;
  SendFn deliver_;

  // Sender side.
  std::uint32_t next_seq_ = 1;
  std::optional<nas::Message> inflight_;
  std::deque<nas::Message> queue_;
  sim::Timer retransmit_timer_;

  // Receiver side.
  std::uint32_t expected_seq_ = 1;

  std::uint64_t retransmissions_ = 0;
  std::uint64_t duplicates_discarded_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace cnv::solution
